GO      ?= go
FUZZTIME ?= 10s

.PHONY: build test race lint fuzz check fmt bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/mclint ./...

fuzz:
	$(GO) test ./internal/edfvd -run='^$$' -fuzz='^FuzzTheorem1Feasible$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/edfvd -run='^$$' -fuzz='^FuzzDualAgreement$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/taskgen -run='^$$' -fuzz='^FuzzGenerate$$' -fuzztime=$(FUZZTIME)

fmt:
	gofmt -w .

# bench runs the partitioning fast-path benchmarks with fixed flags and
# writes BENCH_PR2.json with speedups against the pre-fast-path baseline.
bench:
	scripts/bench.sh


# check is the full tier-2 gate: fmt/vet/mclint/race tests/short fuzz.
check:
	scripts/check.sh $(FUZZTIME)
