// Sensitivity: a miniature version of the paper's Figure 1 run
// through the public API — how the schedulability ratio of each
// heuristic degrades as the normalized system utilization grows, with
// ASCII plots. Increase -sets for smoother curves (the paper uses
// 50,000 per point).
package main

import (
	"flag"
	"fmt"
	"time"
)

import "catpa"

func main() {
	sets := flag.Int("sets", 500, "task sets per data point")
	flag.Parse()

	sw := catpa.Figure(1, *sets, 2016)
	start := time.Now()
	res := sw.Run()
	fmt.Printf("figure 1 with %d sets/point in %v\n\n", *sets, time.Since(start).Round(time.Millisecond))

	ratio := res.Chart(catpa.SchedRatio)
	fmt.Print(ratio.Table())
	fmt.Println()
	fmt.Print(ratio.Plot(14))

	// Where does CA-TPA gain the most? Compare against FFD per point.
	fmt.Println("\nCA-TPA advantage over FFD (percentage points):")
	for pi, x := range sw.Values {
		ca := res.Value(pi, 4, catpa.SchedRatio)  // CA-TPA is scheme index 4
		ffd := res.Value(pi, 1, catpa.SchedRatio) // FFD is scheme index 1
		fmt.Printf("  NSU=%.1f: %+.1f pp\n", x, (ca-ffd)*100)
	}
}
