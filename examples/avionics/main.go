// Avionics: an Integrated Modular Avionics (IMA) style workload in the
// spirit of the paper's motivation — DO-178C design-assurance levels
// mapped to a dual-criticality system. Safety-critical flight
// functions (DAL A/B -> HI) share four cores with mission and cabin
// functions (DAL C-E -> LO).
//
// The example compares all five partitioning heuristics on the
// workload, then stresses the CA-TPA partition with three execution
// scenarios: nominal, sporadic overruns, and the certified worst case.
package main

import (
	"fmt"
	"log"

	"catpa"
)

// ima returns the workload. Periods in milliseconds.
func ima() *catpa.TaskSet {
	hi := func(name string, p, c1, c2 float64) catpa.Task {
		return catpa.MustTask(0, name, p, c1, c2)
	}
	lo := func(name string, p, c1 float64) catpa.Task {
		return catpa.MustTask(0, name, p, c1)
	}
	return catpa.NewTaskSet(
		// DAL A/B: flight-critical (HI).
		hi("fbw_inner_loop", 5, 0.8, 1.6),
		hi("fbw_outer_loop", 20, 2.0, 4.4),
		hi("air_data", 10, 1.2, 2.6),
		hi("autopilot", 40, 4.0, 9.0),
		hi("engine_fadec", 25, 2.5, 6.0),
		hi("ground_prox", 50, 4.5, 10.0),
		hi("traffic_cas", 100, 8.0, 18.0),
		// DAL C-E: mission and cabin (LO).
		lo("fms_route", 200, 36),
		lo("weather_radar", 100, 17),
		lo("acars_link", 250, 40),
		lo("efb_display", 50, 8.5),
		lo("cabin_pressure_ui", 100, 15),
		lo("maintenance_log", 500, 70),
		lo("ife_media", 40, 6.5),
		lo("galley_mgmt", 400, 52),
	)
}

func main() {
	ts := ima()
	if err := ts.Validate(); err != nil {
		log.Fatal(err)
	}
	const cores, levels = 4, 2
	fmt.Printf("IMA workload: %d tasks, raw LO utilization %.2f on %d cores\n\n",
		ts.Len(), ts.RawUtil(), cores)

	fmt.Println("heuristic comparison:")
	var best *catpa.PartitionResult
	for _, s := range catpa.Schemes {
		r := catpa.Partition(ts, cores, levels, s, nil)
		status := "infeasible"
		if r.Feasible {
			status = fmt.Sprintf("Usys=%.3f Uavg=%.3f imbalance=%.3f", r.Usys, r.Uavg, r.Imbalance)
		}
		fmt.Printf("  %-7s %s\n", s, status)
		if s == catpa.CATPA {
			best = r
		}
	}
	if best == nil || !best.Feasible {
		log.Fatal("CA-TPA found no feasible partition")
	}

	fmt.Println("\nCA-TPA placement:")
	for c, ci := range best.Cores {
		fmt.Printf("  P%d (U=%.3f):", c+1, ci.Util)
		for _, ti := range ci.Tasks {
			fmt.Printf(" %s", ts.Tasks[ti].Label())
		}
		fmt.Println()
	}

	scenarios := []struct {
		name  string
		model func(core int) catpa.ExecModel
	}{
		{"nominal (all jobs within LO budgets)", func(int) catpa.ExecModel { return catpa.NominalModel{} }},
		{"sporadic overruns (5% of jobs)", func(core int) catpa.ExecModel { return catpa.NewRandomModel(0.4, 0.05, int64(core)) }},
		{"certified worst case (every HI job overruns)", func(int) catpa.ExecModel { return catpa.WorstCaseModel{} }},
	}
	fmt.Println("\nruntime validation (10 s of simulated time):")
	for _, sc := range scenarios {
		stats := catpa.SimulateSystem(catpa.SystemConfig{
			Subsets:  best.Subsets(ts),
			K:        levels,
			Horizon:  10000,
			ModelFor: sc.model,
		})
		fmt.Printf("  %-46s completed=%-6d missed=%d switches=%d\n",
			sc.name, stats.Completed(), stats.Missed(), stats.ModeSwitches())
		if stats.Missed() > 0 {
			log.Fatalf("deadline miss under %q — analysis violated", sc.name)
		}
	}
	fmt.Println("\nall scenarios miss-free: the partition holds its certification story.")

	// Graceful degradation: instead of discarding cabin/mission tasks
	// when a core enters high-criticality mode, demote them to
	// background priority. Flight functions keep their guarantees;
	// the cabin keeps whatever slack remains.
	strict := catpa.SimulateSystem(catpa.SystemConfig{
		Subsets: best.Subsets(ts), K: levels, Horizon: 10000,
	})
	var bgDone, bgMiss int
	for _, sub := range best.Subsets(ts) {
		st := catpa.SimulateCore(catpa.CoreConfig{
			Tasks: sub.Tasks, K: levels, Horizon: 10000,
			Model:        catpa.WorstCaseModel{},
			BackgroundLO: true,
		})
		if st.Missed > 0 {
			log.Fatal("graceful degradation endangered a guaranteed task")
		}
		bgDone += st.BackgroundCompleted
		bgMiss += st.BackgroundMisses
	}
	dropped := 0
	for _, c := range strict.Cores {
		dropped += c.DroppedJobs + c.SkippedReleases
	}
	fmt.Printf("\ngraceful degradation under permanent worst case:\n")
	fmt.Printf("  strict AMC:         %d LO jobs dropped or suppressed\n", dropped)
	fmt.Printf("  background service: %d LO jobs still completed on time, %d late/lost — flight tasks unaffected\n",
		bgDone, bgMiss)
}
