// Quickstart: build a small dual-criticality task set, check per-core
// schedulability, partition it with CA-TPA and execute the partition
// in the worst-case runtime simulation.
package main

import (
	"fmt"
	"log"

	"catpa"
)

func main() {
	// A hand-built dual-criticality workload. WCET[0] is the
	// low-criticality budget, WCET[1] the certified high-criticality
	// budget (HI tasks only).
	ts := catpa.NewTaskSet(
		catpa.MustTask(0, "sensor_fusion", 50, 8, 20),
		catpa.MustTask(0, "flight_ctl", 20, 3, 7),
		catpa.MustTask(0, "telemetry", 100, 30),
		catpa.MustTask(0, "logging", 200, 70),
		catpa.MustTask(0, "display", 25, 6),
	)
	if err := ts.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("task set:", ts)

	// Inspect the whole set as if it ran on one core: the EDF-VD
	// analysis exposes the Theorem-1 conditions.
	m := catpa.NewUtilMatrix(2)
	for i := range ts.Tasks {
		m.Add(&ts.Tasks[i])
	}
	rep := catpa.Analyze(m)
	fmt.Printf("single core: feasible=%v coreUtil=%.3f lambda2=%.3f\n",
		rep.Feasible(), rep.CoreUtil, rep.Lambda[1])

	// Partition onto two cores with CA-TPA, tracing each decision.
	res := catpa.Partition(ts, 2, 2, catpa.CATPA, &catpa.PartitionOptions{Trace: true})
	fmt.Println(res)
	fmt.Print(res.FormatTrace(ts))
	if !res.Feasible {
		log.Fatal("no feasible partition")
	}
	for c, ci := range res.Cores {
		fmt.Printf("P%d (U=%.3f):", c+1, ci.Util)
		for _, ti := range ci.Tasks {
			fmt.Printf(" %s", ts.Tasks[ti].Label())
		}
		fmt.Println()
	}

	// Execute the partition adversarially: every job runs to its
	// own-level WCET, forcing mode switches. The analysis guarantees
	// zero deadline misses of non-dropped jobs.
	stats := catpa.SimulateSystem(catpa.SystemConfig{
		Subsets: res.Subsets(ts),
		K:       2,
		Horizon: 10000,
	})
	fmt.Print(stats)
	fmt.Printf("worst-case run: %d completed, %d missed, %d mode switches\n",
		stats.Completed(), stats.Missed(), stats.ModeSwitches())
}
