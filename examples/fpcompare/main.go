// FP compare: partitioned EDF-VD (the paper's setting) versus
// partitioned fixed-priority AMC-rtb (the related-work family of
// Baruah/Burns/Davis and Kelly/Aydin/Zhao) on the same dual-criticality
// populations. For each normalized utilization level the example
// reports the acceptance ratio of:
//
//   - CA-TPA over the EDF-VD Theorem-1 test,
//   - FFD over the EDF-VD test,
//   - FFD over the fixed-priority AMC-rtb test,
//   - CA-TPA over the AMC-rtb test (the criticality-aware heuristic
//     running atop the fixed-priority backend, possible since the
//     pluggable-backend refactor),
//
// and additionally how much the classical (stronger) dual-criticality
// EDF-VD test of Baruah et al. (2012) would add over the paper's
// Eq. 7-style condition on a single core.
package main

import (
	"flag"
	"fmt"

	"catpa"
)

func main() {
	sets := flag.Int("sets", 500, "task sets per point")
	cores := flag.Int("m", 4, "cores")
	flag.Parse()

	cfg := catpa.DefaultGenConfig()
	cfg.K = 2
	cfg.M = *cores
	cfg.N = catpa.IntRange{Lo: 30, Hi: 80}

	fmt.Printf("dual-criticality acceptance, M=%d, %d sets/point\n\n", *cores, *sets)
	fmt.Printf("%-6s %12s %12s %12s %12s\n", "NSU", "EDFVD/CATPA", "EDFVD/FFD", "FP/FFD", "FP/CATPA")
	for _, nsu := range []float64{0.4, 0.5, 0.6, 0.7, 0.8} {
		cfg.NSU = nsu
		var ca, edfFFD, fpFFD, fpCA int
		for i := 0; i < *sets; i++ {
			ts := catpa.GenerateTaskSet(&cfg, 99, i)
			if catpa.Partition(ts, *cores, 2, catpa.CATPA, nil).Feasible {
				ca++
			}
			if catpa.Partition(ts, *cores, 2, catpa.FFD, nil).Feasible {
				edfFFD++
			}
			if r, err := catpa.FPPartition(ts, *cores, catpa.FFD); err == nil && r.Feasible {
				fpFFD++
			}
			if r, err := catpa.FPPartition(ts, *cores, catpa.CATPA); err == nil && r.Feasible {
				fpCA++
			}
		}
		n := float64(*sets)
		fmt.Printf("%-6.1f %12.3f %12.3f %12.3f %12.3f\n", nsu,
			float64(ca)/n, float64(edfFFD)/n, float64(fpFFD)/n, float64(fpCA)/n)
	}

	// Single-core comparison of the two dual-criticality EDF-VD tests.
	fmt.Println("\nsingle-core dual tests (Eq. 7-style vs classic Baruah et al. 2012):")
	cfg.M = 1
	cfg.N = catpa.IntRange{Lo: 8, Hi: 20}
	fmt.Printf("%-6s %10s %10s\n", "NSU", "Eq.7", "classic")
	for _, nsu := range []float64{0.6, 0.7, 0.8, 0.9} {
		cfg.NSU = nsu
		var eq7, classic int
		for i := 0; i < *sets; i++ {
			ts := catpa.GenerateTaskSet(&cfg, 7, i)
			m := catpa.NewUtilMatrix(2)
			for j := range ts.Tasks {
				m.Add(&ts.Tasks[j])
			}
			if catpa.Feasible(m) {
				eq7++
			}
			if catpa.ClassicDualFeasible(m) {
				classic++
			}
		}
		n := float64(*sets)
		fmt.Printf("%-6.1f %10.3f %10.3f\n", nsu, float64(eq7)/n, float64(classic)/n)
	}
}
