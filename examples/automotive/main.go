// Automotive: a four-level mixed-criticality workload in the style of
// ISO 26262 ASIL partitioning (QM -> level 1 through ASIL-D -> level
// 4) running on a domain controller. The example searches for the
// smallest core count each heuristic needs, demonstrating that CA-TPA
// usually matches or beats the classical heuristics, then verifies
// the minimal CA-TPA configuration at every behavioural level of the
// runtime simulator.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"catpa"
)

// domainController synthesizes a plausible vehicle workload: a few
// heavyweight ASIL-D control loops, mid-criticality chassis and
// powertrain functions, and a long tail of QM infotainment tasks.
func domainController() *catpa.TaskSet {
	rng := rand.New(rand.NewSource(26262))
	var tasks []catpa.Task
	add := func(name string, p float64, crit int, u1 float64, ifc float64) {
		w := make([]float64, crit)
		c := u1 * p
		for k := range w {
			w[k] = c
			c *= 1 + ifc
		}
		tasks = append(tasks, catpa.MustTask(0, name, p, w...))
	}
	// ASIL-D (level 4): braking and steering.
	add("brake_actuation", 10, 4, 0.06, 0.5)
	add("steering_torque", 10, 4, 0.05, 0.5)
	add("airbag_arbiter", 20, 4, 0.04, 0.5)
	// ASIL-B/C (level 3): stability and powertrain.
	add("esc_stability", 20, 3, 0.07, 0.45)
	add("torque_mgmt", 25, 3, 0.06, 0.45)
	add("battery_mgmt", 50, 3, 0.05, 0.45)
	// ASIL-A (level 2): comfort with safety relevance.
	add("adaptive_cruise", 40, 2, 0.08, 0.4)
	add("lane_keep_assist", 30, 2, 0.07, 0.4)
	add("parking_assist", 60, 2, 0.05, 0.4)
	// QM (level 1): infotainment and diagnostics tail.
	for i := 0; i < 12; i++ {
		p := []float64{80, 100, 160, 200, 400}[rng.Intn(5)]
		add(fmt.Sprintf("qm_task_%02d", i+1), p, 1, 0.03+rng.Float64()*0.06, 0)
	}
	return catpa.NewTaskSet(tasks...)
}

// minCores returns the smallest M in [1, maxM] for which the scheme
// finds a feasible partition, or 0 if none.
func minCores(ts *catpa.TaskSet, levels int, s catpa.Scheme, maxM int) int {
	for m := 1; m <= maxM; m++ {
		if catpa.Partition(ts, m, levels, s, nil).Feasible {
			return m
		}
	}
	return 0
}

func main() {
	ts := domainController()
	if err := ts.Validate(); err != nil {
		log.Fatal(err)
	}
	const levels = 4
	fmt.Printf("domain controller: %d tasks, %d criticality levels, raw QM-level load %.2f\n\n",
		ts.Len(), levels, ts.RawUtil())

	fmt.Println("minimum cores required per heuristic:")
	bestM := 0
	for _, s := range catpa.Schemes {
		m := minCores(ts, levels, s, 16)
		if m == 0 {
			fmt.Printf("  %-7s none up to 16 cores\n", s)
			continue
		}
		fmt.Printf("  %-7s %d cores\n", s, m)
		if s == catpa.CATPA {
			bestM = m
		}
	}
	if bestM == 0 {
		log.Fatal("CA-TPA found no feasible configuration")
	}

	res := catpa.Partition(ts, bestM, levels, catpa.CATPA, nil)
	fmt.Printf("\nCA-TPA on %d cores: %v\n", bestM, res)
	for c, ci := range res.Cores {
		fmt.Printf("  P%d (U=%.3f, %d tasks)\n", c+1, ci.Util, len(ci.Tasks))
	}

	// Validate the minimal configuration at every behavioural level:
	// LevelModel{k} makes every job run exactly to its level-k budget,
	// exercising each mode plateau of the AMC protocol.
	fmt.Println("\nruntime validation per behavioural level:")
	for k := 1; k <= levels; k++ {
		stats := catpa.SimulateSystem(catpa.SystemConfig{
			Subsets: res.Subsets(ts),
			K:       levels,
			Horizon: 20000,
			ModelFor: func(int) catpa.ExecModel {
				return catpa.LevelModel{Level: k}
			},
		})
		fmt.Printf("  level-%d behaviour: completed=%-6d missed=%d maxSwitches/core=%d\n",
			k, stats.Completed(), stats.Missed(), maxSwitches(stats))
		if stats.Missed() > 0 {
			log.Fatalf("deadline miss at behavioural level %d", k)
		}
	}
	fmt.Println("\nminimal CA-TPA configuration verified at all behavioural levels.")
}

func maxSwitches(stats *catpa.SystemStats) int {
	max := 0
	for _, c := range stats.Cores {
		if c.ModeSwitches > max {
			max = c.ModeSwitches
		}
	}
	return max
}
