// Paper example: replays the worked example of Han et al. (ICPP 2016),
// Tables I-III — five mixed-criticality tasks on two cores, where FFD
// fails to place the last task while CA-TPA finds a feasible
// partition. The instance is the reconstruction documented in
// internal/paperexample (the original WCET columns were lost in the
// source-text extraction; all surviving fragments are matched).
package main

import (
	"fmt"

	"catpa"
	"catpa/internal/paperexample"
	"catpa/internal/textplot"
)

func main() {
	ts := paperexample.TaskSet()

	// Table I: task parameters and utilization contributions.
	fmt.Println("Table I — timing parameters (reconstructed):")
	rows := [][]string{{"task", "c(1)", "c(2)", "p", "l", "u(1)", "u(2)", "C_i"}}
	contrib := catpa.Contributions(ts)
	for i := range ts.Tasks {
		t := &ts.Tasks[i]
		c2, u2 := "-", "-"
		if t.Crit >= 2 {
			c2 = fmt.Sprintf("%.2f", t.WCET[1])
			u2 = fmt.Sprintf("%.3f", t.Util(2))
		}
		rows = append(rows, []string{
			t.Label(),
			fmt.Sprintf("%.2f", t.WCET[0]), c2,
			fmt.Sprintf("%g", t.Period),
			fmt.Sprintf("%d", t.Crit),
			fmt.Sprintf("%.3f", t.Util(1)), u2,
			fmt.Sprintf("%.3f", contrib[i].Max),
		})
	}
	fmt.Print(textplot.AlignedTable(rows))

	// Table II: FFD fails.
	fmt.Println("\nTable II — FFD allocation (max-utilization order):")
	ffd := catpa.Partition(ts, paperexample.Cores, paperexample.Levels,
		catpa.FFD, &catpa.PartitionOptions{Trace: true})
	fmt.Print(ffd.FormatTrace(ts))
	fmt.Println("result:", ffd)

	// Table III: CA-TPA succeeds.
	fmt.Println("\nTable III — CA-TPA allocation (contribution order):")
	ca := catpa.Partition(ts, paperexample.Cores, paperexample.Levels,
		catpa.CATPA, &catpa.PartitionOptions{Trace: true})
	fmt.Print(ca.FormatTrace(ts))
	fmt.Println("result:", ca)
	for c, ci := range ca.Cores {
		fmt.Printf("  P%d (U=%.3f):", c+1, ci.Util)
		for _, ti := range ci.Tasks {
			fmt.Printf(" %s", ts.Tasks[ti].Label())
		}
		fmt.Println()
	}

	// And the part the paper only promises: execute CA-TPA's partition
	// under full overruns and observe zero misses.
	stats := catpa.SimulateSystem(catpa.SystemConfig{
		Subsets: ca.Subsets(ts),
		K:       paperexample.Levels,
		Horizon: 50 * paperexample.Period,
	})
	fmt.Printf("\nworst-case execution of the CA-TPA partition: %d completed, %d missed\n",
		stats.Completed(), stats.Missed())
}
