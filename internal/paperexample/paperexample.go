// Package paperexample reconstructs the worked example of Han et al.
// (ICPP 2016), Tables I-III: five mixed-criticality tasks on a
// dual-criticality two-core system, on which FFD fails to place the
// last task while CA-TPA finds a feasible partition.
//
// The numeric columns of Table I did not survive the lossy text
// extraction of the paper, so the instance below is reconstructed to
// be consistent with every fragment that did survive:
//
//   - tau4 is high-criticality with u4(1) = 0.339, u4(2) = 0.633, and
//     alone on a core yields U^Psi = 0 + min{0.633, 0.339/(1-0.633)}
//     = 0.633;
//   - tau2 is high-criticality with u2(2) = 0.326 and alone on a core
//     yields U^Psi = min{0.326, u2(1)/(1-0.326)} = 0.26 (pinning
//     u2(1) = 0.26 * 0.674);
//   - the FFD allocation order is tau4, tau1, tau2, tau5, tau3, with
//     tau4 -> P1, tau1 -> P2, tau2 -> P1, tau5 -> P2 and tau3 failing
//     on both cores (Table II);
//   - the CA-TPA allocation order is tau4, tau2, tau1, tau5, tau3 and
//     the final mapping is P1 = {tau4, tau5}, P2 = {tau2, tau1, tau3}
//     (Table III).
//
// The reconstruction makes tau1, tau3 and tau5 low-criticality with
// u1(1) = 0.372, u3(1) = 0.31, u5(1) = 0.32; the regression tests
// verify that all of the above properties hold exactly.
package paperexample

import "catpa/internal/mc"

// Period is the common task period of the reconstructed instance (the
// original periods are unknown; only utilizations matter to every
// property being reproduced).
const Period = 1000

// U21 is tau2's reconstructed level-1 utilization, pinned by the
// surviving fragment U^Psi2 = 0.26 (see the package comment).
const U21 = 0.26 * (1 - 0.326)

// Cores is the number of cores (M) in the example.
const Cores = 2

// Levels is the number of criticality levels (K) in the example.
const Levels = 2

// TaskSet returns the reconstructed five-task instance of Table I.
func TaskSet() *mc.TaskSet {
	mk := func(id int, us ...float64) mc.Task {
		w := make([]float64, len(us))
		for i, u := range us {
			w[i] = u * Period
		}
		return mc.MustTask(id, "", Period, w...)
	}
	return mc.NewTaskSet(
		mk(1, 0.372),
		mk(2, U21, 0.326),
		mk(3, 0.31),
		mk(4, 0.339, 0.633),
		mk(5, 0.32),
	)
}

// CATPAOrder is the allocation order of Table III (task IDs).
var CATPAOrder = []int{4, 2, 1, 5, 3}

// FFDOrder is the allocation order of Table II (task IDs).
var FFDOrder = []int{4, 1, 2, 5, 3}

// CATPAMapping is the final task-to-core mapping of Table III:
// core index (0-based) per task ID.
var CATPAMapping = map[int]int{4: 0, 5: 0, 2: 1, 1: 1, 3: 1}
