package paperexample

import (
	"catpa/internal/mc"
	"catpa/internal/sim"
)

// simulateSubset runs one core's subset under the adversarial
// worst-case model and returns the number of deadline misses.
func simulateSubset(sub *mc.TaskSet) int {
	stats := sim.SimulateCore(sim.CoreConfig{
		Tasks:   sub.Tasks,
		K:       Levels,
		Horizon: 50 * Period,
		Model:   sim.WorstCaseModel{},
	})
	return stats.Missed
}
