package paperexample

import (
	"math"
	"testing"

	"catpa/internal/edfvd"
	"catpa/internal/mc"
	"catpa/internal/partition"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

// TestTableIFragments verifies the surviving numeric fragments of
// Table I against the reconstruction.
func TestTableIFragments(t *testing.T) {
	ts := TaskSet()
	byID := map[int]*mc.Task{}
	for i := range ts.Tasks {
		byID[ts.Tasks[i].ID] = &ts.Tasks[i]
	}
	if !almost(byID[4].Util(1), 0.339) || !almost(byID[4].Util(2), 0.633) {
		t.Errorf("tau4 utilizations = %v, %v", byID[4].Util(1), byID[4].Util(2))
	}
	if !almost(byID[2].Util(2), 0.326) {
		t.Errorf("tau2 u(2) = %v", byID[2].Util(2))
	}
	// tau4 alone: U^Psi = 0.633; tau2 alone: U^Psi = 0.26.
	m := mc.NewUtilMatrix(Levels)
	m.Add(byID[4])
	if u := edfvd.CoreUtil(m); !almost(u, 0.633) {
		t.Errorf("tau4 alone: U = %v, want 0.633", u)
	}
	m.Reset()
	m.Add(byID[2])
	if u := edfvd.CoreUtil(m); !almost(u, 0.26) {
		t.Errorf("tau2 alone: U = %v, want 0.26", u)
	}
}

// TestCATPAOrder verifies the utilization-contribution allocation
// order tau4, tau2, tau1, tau5, tau3 of the paper.
func TestCATPAOrder(t *testing.T) {
	ts := TaskSet()
	idx := mc.SortByContribution(ts)
	got := make([]int, len(idx))
	for i, ti := range idx {
		got[i] = ts.Tasks[ti].ID
	}
	for i, want := range CATPAOrder {
		if got[i] != want {
			t.Fatalf("CA-TPA order = %v, want %v", got, CATPAOrder)
		}
	}
}

// TestFFDOrder verifies the max-utilization order tau4, tau1, tau2,
// tau5, tau3 of the paper.
func TestFFDOrder(t *testing.T) {
	ts := TaskSet()
	idx := mc.SortByMaxUtil(ts)
	got := make([]int, len(idx))
	for i, ti := range idx {
		got[i] = ts.Tasks[ti].ID
	}
	for i, want := range FFDOrder {
		if got[i] != want {
			t.Fatalf("FFD order = %v, want %v", got, FFDOrder)
		}
	}
}

// TestTableIIFFDFails reproduces Table II: FFD places tau4 -> P1,
// tau1 -> P2, tau2 -> P1, tau5 -> P2 and then fails on tau3.
func TestTableIIFFDFails(t *testing.T) {
	ts := TaskSet()
	r := partition.Partition(ts, Cores, Levels, partition.FFD, &partition.Options{Trace: true})
	if r.Feasible {
		t.Fatal("FFD unexpectedly found a feasible partition")
	}
	wantCores := map[int]int{4: 0, 1: 1, 2: 0, 5: 1}
	for step, s := range r.Trace {
		id := ts.Tasks[s.Task].ID
		if step < 4 {
			if s.Core != wantCores[id] {
				t.Errorf("step %d: tau%d -> P%d, want P%d", step, id, s.Core+1, wantCores[id]+1)
			}
			continue
		}
		if id != 3 || s.Core != -1 {
			t.Errorf("step %d: tau%d core %d, want tau3 FAILURE", step, id, s.Core)
		}
	}
	if ts.Tasks[r.FailedTask].ID != 3 {
		t.Errorf("failed task = tau%d, want tau3", ts.Tasks[r.FailedTask].ID)
	}
}

// TestTableIIICATPASucceeds reproduces Table III: the CA-TPA
// allocation trace and final mapping P1 = {tau4, tau5},
// P2 = {tau2, tau1, tau3}.
func TestTableIIICATPASucceeds(t *testing.T) {
	ts := TaskSet()
	r := partition.Partition(ts, Cores, Levels, partition.CATPA, &partition.Options{Trace: true})
	if !r.Feasible {
		t.Fatal("CA-TPA failed on the paper example")
	}
	if err := r.Verify(ts); err != nil {
		t.Fatal(err)
	}
	// Allocation order matches Table III.
	for i, s := range r.Trace {
		if got := ts.Tasks[s.Task].ID; got != CATPAOrder[i] {
			t.Errorf("trace step %d allocated tau%d, want tau%d", i, got, CATPAOrder[i])
		}
	}
	// Final mapping matches.
	for i, core := range r.Assignment {
		id := ts.Tasks[i].ID
		if core != CATPAMapping[id] {
			t.Errorf("tau%d -> P%d, want P%d", id, core+1, CATPAMapping[id]+1)
		}
	}
}

// TestIntermediateUtilizations replays the CA-TPA probe decisions the
// paper narrates: tau2's increment is smaller on P2 (0.26) than on P1
// (0.326), so tau2 goes to P2.
func TestIntermediateUtilizations(t *testing.T) {
	ts := TaskSet()
	byID := map[int]*mc.Task{}
	for i := range ts.Tasks {
		byID[ts.Tasks[i].ID] = &ts.Tasks[i]
	}
	p1 := mc.NewUtilMatrix(Levels)
	p1.Add(byID[4])
	base := edfvd.CoreUtil(p1)
	p1.Add(byID[2])
	incP1 := edfvd.CoreUtil(p1) - base
	p2 := mc.NewUtilMatrix(Levels)
	p2.Add(byID[2])
	incP2 := edfvd.CoreUtil(p2) - 0
	if !almost(incP1, 0.326) {
		t.Errorf("increment on P1 = %v, want 0.326", incP1)
	}
	if !almost(incP2, 0.26) {
		t.Errorf("increment on P2 = %v, want 0.26", incP2)
	}
	if incP2 >= incP1 {
		t.Error("tau2 should prefer P2")
	}
}

// TestOtherBaselines documents the remaining schemes' outcomes on the
// instance: BFD behaves like FFD here and fails, while WFD and Hybrid
// succeed because both happen to separate the two HI tasks (the paper
// only discusses FFD on this example).
func TestOtherBaselines(t *testing.T) {
	ts := TaskSet()
	if partition.Partition(ts, Cores, Levels, partition.BFD, nil).Feasible {
		t.Error("BFD unexpectedly feasible")
	}
	if !partition.Partition(ts, Cores, Levels, partition.WFD, nil).Feasible {
		t.Error("WFD unexpectedly infeasible")
	}
	if !partition.Partition(ts, Cores, Levels, partition.Hybrid, nil).Feasible {
		t.Error("Hybrid unexpectedly infeasible")
	}
}

// TestExampleSurvivesRuntime runs the CA-TPA partition of the example
// through the worst-case runtime simulation: no deadline misses.
func TestExampleSurvivesRuntime(t *testing.T) {
	ts := TaskSet()
	r := partition.Partition(ts, Cores, Levels, partition.CATPA, nil)
	if !r.Feasible {
		t.Fatal("infeasible")
	}
	for c, sub := range r.Subsets(ts) {
		if len(sub.Tasks) == 0 {
			continue
		}
		stats := simulateSubset(sub)
		if stats > 0 {
			t.Errorf("core %d: %d deadline misses", c, stats)
		}
	}
}
