package fpamc

import (
	"fmt"
	"math"
	"sort"

	"catpa/internal/mc"
)

// Eps is the convergence and comparison tolerance of the fixed-point
// iterations.
const Eps = 1e-9

// maxIterations bounds every response-time fixed point; with demands
// bounded by the deadline the iteration either converges or exceeds
// the deadline long before this.
const maxIterations = 10000

// Priorities returns the deadline-monotonic priority order of the
// subset: a permutation of task indices from highest priority
// (shortest period) to lowest. Ties break toward the higher
// criticality, then the smaller ID, mirroring the ordering conventions
// used elsewhere in the repository.
func Priorities(tasks []mc.Task) []int {
	idx := make([]int, len(tasks))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ta, tb := &tasks[idx[a]], &tasks[idx[b]]
		//lint:ignore mclint/floateq deliberately exact: an epsilon here would break the strict weak ordering the sort contract requires
		if ta.Period != tb.Period {
			return ta.Period < tb.Period
		}
		if ta.Crit != tb.Crit {
			return ta.Crit > tb.Crit
		}
		return ta.ID < tb.ID
	})
	return idx
}

// Response holds the analyzed response-time bounds of one task.
type Response struct {
	// LO is the response time when every job runs within its level-1
	// budget. Valid for all tasks.
	LO float64
	// HI is the stable high-mode response time (only low-criticality
	// tasks dropped, every survivor at its level-2 budget). Only
	// meaningful for high-criticality tasks; 0 otherwise.
	HI float64
	// Transition is the AMC-rtb bound across the LO->HI mode switch.
	// Only meaningful for high-criticality tasks; 0 otherwise.
	Transition float64
	// Schedulable reports whether every applicable bound is within
	// the task's deadline.
	Schedulable bool
}

// Analysis is the AMC-rtb result for one core's subset.
type Analysis struct {
	// Priority is the deadline-monotonic order (see Priorities).
	Priority []int
	// ByTask maps each task index to its response bounds.
	ByTask []Response
	// Schedulable reports whether the whole subset passes.
	Schedulable bool
}

// Analyze runs the dual-criticality AMC-rtb analysis on the subset.
// All tasks must have criticality 1 or 2; higher levels are rejected
// with an error (the multi-level extension of AMC is out of scope —
// the EDF-VD path of this repository covers K > 2).
func Analyze(tasks []mc.Task) (*Analysis, error) {
	for i := range tasks {
		if tasks[i].Crit < 1 || tasks[i].Crit > 2 {
			return nil, fmt.Errorf("fpamc: task %d has criticality %d; AMC-rtb analysis is dual-criticality", tasks[i].ID, tasks[i].Crit)
		}
	}
	a := &Analysis{
		Priority:    Priorities(tasks),
		ByTask:      make([]Response, len(tasks)),
		Schedulable: true,
	}
	// rank[i] = position of task i in the priority order.
	rank := make([]int, len(tasks))
	for pos, ti := range a.Priority {
		rank[ti] = pos
	}
	for ti := range tasks {
		r := a.analyzeTask(tasks, rank, ti)
		a.ByTask[ti] = r
		if !r.Schedulable {
			a.Schedulable = false
		}
	}
	return a, nil
}

// Schedulable is a convenience wrapper returning only the verdict
// (false on analysis error, i.e. non-dual criticalities).
func Schedulable(tasks []mc.Task) bool {
	a, err := Analyze(tasks)
	return err == nil && a.Schedulable
}

// analyzeTask computes the three bounds for one task.
func (a *Analysis) analyzeTask(tasks []mc.Task, rank []int, ti int) Response {
	t := &tasks[ti]
	deadline := t.Period
	var resp Response

	// hp enumerates strictly higher-priority tasks.
	hp := func(f func(j int)) {
		for j := range tasks {
			if j != ti && rank[j] < rank[ti] {
				f(j)
			}
		}
	}

	// LO-mode response: everyone interferes with level-1 budgets.
	resp.LO = fixedPoint(t.C(1), deadline, func(r float64) float64 {
		demand := t.C(1)
		hp(func(j int) {
			demand += math.Ceil((r-Eps)/tasks[j].Period) * tasks[j].C(1)
		})
		return demand
	})
	resp.Schedulable = resp.LO <= deadline+Eps

	if t.Crit < 2 {
		// LO tasks only need the LO-mode bound: they are dropped at
		// the switch.
		return resp
	}

	// Stable HI-mode response: only HI tasks interfere, at level-2
	// budgets.
	resp.HI = fixedPoint(t.C(2), deadline, func(r float64) float64 {
		demand := t.C(2)
		hp(func(j int) {
			if tasks[j].Crit >= 2 {
				demand += math.Ceil((r-Eps)/tasks[j].Period) * tasks[j].C(2)
			}
		})
		return demand
	})
	if resp.HI > deadline+Eps {
		resp.Schedulable = false
	}

	// AMC-rtb transition bound: HI interference at level-2 budgets
	// over the whole window, LO interference at level-1 budgets
	// frozen at the LO-mode response time (no LO releases after the
	// switch can interfere).
	if resp.Schedulable {
		loResp := resp.LO
		resp.Transition = fixedPoint(t.C(2), deadline, func(r float64) float64 {
			demand := t.C(2)
			hp(func(j int) {
				if tasks[j].Crit >= 2 {
					demand += math.Ceil((r-Eps)/tasks[j].Period) * tasks[j].C(2)
				} else {
					demand += math.Ceil((loResp-Eps)/tasks[j].Period) * tasks[j].C(1)
				}
			})
			return demand
		})
		if resp.Transition > deadline+Eps {
			resp.Schedulable = false
		}
	}
	return resp
}

// fixedPoint iterates r = f(r) from the seed until convergence or
// until r exceeds the bound (returned as-is so callers can compare
// against the deadline).
func fixedPoint(seed, bound float64, f func(float64) float64) float64 {
	r := seed
	for iter := 0; iter < maxIterations; iter++ {
		next := f(r)
		if next <= r+Eps {
			return next
		}
		if next > bound+Eps {
			return next
		}
		r = next
	}
	return math.Inf(1)
}
