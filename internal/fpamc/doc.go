// Package fpamc implements fixed-priority Adaptive Mixed-Criticality
// scheduling analysis — the other major family of mixed-criticality
// schedulers that Han et al. (ICPP 2016) position CA-TPA against in
// their related work (Baruah, Burns, Davis, "Response-Time Analysis
// for Mixed Criticality Systems", RTSS 2011; Kelly, Aydin, Zhao,
// "On Partitioned Scheduling of Fixed-Priority Mixed-Criticality Task
// Sets", 2011).
//
// The package provides, for dual-criticality implicit-deadline
// periodic tasks under deadline-monotonic priorities:
//
//   - classical response-time analysis per mode (SMC-style LO-mode and
//     stable HI-mode fixed points), and
//   - the AMC-rtb (response-time bound) analysis of the mode
//     transition: a HI job caught by the LO->HI switch suffers LO-mode
//     interference from low-criticality tasks bounded by its LO-mode
//     response time, plus HI-mode interference from high-criticality
//     tasks throughout.
//
// It also provides partitioned fixed-priority allocation using the
// same FFD/WFD/BFD shells as the EDF-VD path, enabling the
// EDF-VD-vs-FP acceptance comparison in examples/fpcompare and the
// corresponding benchmarks.
//
// Correctness is cross-validated two ways (see the tests): hand-worked
// fixed points, and execution of accepted task sets in the runtime
// simulator of internal/sim under fixed-priority dispatching — zero
// deadline misses, and every observed response time bounded by the
// analyzed one.
package fpamc
