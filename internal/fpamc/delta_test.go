package fpamc

import (
	"math/rand"
	"testing"

	"catpa/internal/mc"
)

// handSet is the three-task dual-criticality set of the hand-computed
// delta tests. All periods and budgets are small integers, so every
// fixed point below is exact integer arithmetic in float64 and the
// expected responses can be verified by hand:
//
//	tau0: HI, T=10, C=(1,2)   rank 0 (deadline-monotonic)
//	tau1: LO, T=12, C=(2)     rank 1
//	tau2: HI, T=20, C=(3,6)   rank 2
func handSet() *mc.TaskSet {
	return &mc.TaskSet{Tasks: []mc.Task{
		{ID: 1, Period: 10, Crit: 2, WCET: []float64{1, 2}},
		{ID: 2, Period: 12, Crit: 1, WCET: []float64{2}},
		{ID: 3, Period: 20, Crit: 2, WCET: []float64{3, 6}},
	}}
}

// checkHandResponses asserts core c of b holds exactly the
// hand-computed committed responses of the full handSet subset, keyed
// by task index (the member order may differ between placements):
//
//	tau0: R_LO = 1 (no interference), R_HI = 2, R* = 2
//	tau1: R_LO = 2 + ceil(3/10)*1 = 3 (one tau0 hit)
//	tau2: R_LO = 3 + ceil(6/10)*1 + ceil(6/12)*2 = 6
//	      R_HI = 6 + ceil(8/10)*2 = 8
//	      R*   = 6 + ceil(10/10)*2 + ceil(6/12)*2 = 10
//	      (tau1's transition term frozen at its own R_LO window 6)
func checkHandResponses(t *testing.T, b *Backend, c int) {
	t.Helper()
	wantLO := map[int]float64{0: 1, 1: 3, 2: 6}
	wantHI := map[int]float64{0: 2, 2: 8}
	wantTR := map[int]float64{0: 2, 2: 10}
	wantRank := map[int]int{0: 0, 1: 1, 2: 2}
	if len(b.cores[c]) != 3 {
		t.Fatalf("core %d holds %d members, want 3", c, len(b.cores[c]))
	}
	for j, ti := range b.cores[c] {
		if b.ranks[c][j] != wantRank[ti] {
			t.Errorf("task %d: rank %d, want %d", ti, b.ranks[c][j], wantRank[ti])
		}
		if b.rLO[c][j] != wantLO[ti] {
			t.Errorf("task %d: R_LO = %v, want %v", ti, b.rLO[c][j], wantLO[ti])
		}
		if hi, ok := wantHI[ti]; ok {
			if b.rHI[c][j] != hi {
				t.Errorf("task %d: R_HI = %v, want %v", ti, b.rHI[c][j], hi)
			}
			if b.rTR[c][j] != wantTR[ti] {
				t.Errorf("task %d: R* = %v, want %v", ti, b.rTR[c][j], wantTR[ti])
			}
		}
	}
	if !b.allOK[c] {
		t.Errorf("core %d marked unschedulable; every hand response is within its deadline", c)
	}
}

// TestBackendDeltaHandComputed pins the warm-started commit delta
// against hand-run AMC-rtb fixed points, in two placement orders: the
// in-priority-order placement (each commit touches no earlier member)
// and the out-of-order placement (committing tau1 displaces tau2's
// rank and warm-recomputes its responses). Both must land on the same
// hand values, and removal must trigger the exact-recompute fallback
// whose rebuilt responses are again hand-checkable.
func TestBackendDeltaHandComputed(t *testing.T) {
	ts := handSet()

	for name, order := range map[string][]int{
		"priority-order":   {0, 1, 2},
		"displacing-order": {0, 2, 1},
	} {
		t.Run(name, func(t *testing.T) {
			b := &Backend{}
			b.Reset(1, 2)
			b.Prepare(ts)
			if !b.warmOK {
				t.Fatal("hand set rejected by the warm-start gate; budgets are far from Eps")
			}
			b.Begin()
			for _, ti := range order {
				if !b.FeasibleWith(0, ti) {
					t.Fatalf("task %d rejected on a hand-schedulable core", ti)
				}
				b.Place(0, ti, false)
			}
			checkHandResponses(t, b, 0)
			// Accumulate the expected load with runtime float adds in
			// placement order; a constant-folded sum would round once
			// at the end instead of once per add.
			want := 0.0
			for _, ti := range order {
				want += ts.Tasks[ti].MaxUtil()
			}
			if b.OwnLoad(0) != want {
				t.Errorf("OwnLoad = %v, want %v", b.OwnLoad(0), want)
			}

			// Remove the highest-priority task: the removal delta must
			// schedule the fallback (dirty), and the rebuilt core must
			// hold the hand responses of the surviving pair: tau1 alone
			// at rank 0 (R_LO = 2), tau2 with one tau1 hit
			// (R_LO = 3 + ceil(5/12)*2 = 5, R_HI = 6,
			// R* = 6 + ceil(5/12)*2 = 8).
			b.Remove(0, 0)
			if !b.dirty[0] {
				t.Fatal("Remove did not mark the core for the exact-recompute fallback")
			}
			wantLoad := 0.0
			for _, ti := range b.cores[0] {
				wantLoad += ts.Tasks[ti].MaxUtil()
			}
			if got := b.OwnLoad(0); got != wantLoad {
				t.Errorf("post-removal OwnLoad = %v, want %v", got, wantLoad)
			}
			if b.dirty[0] {
				t.Fatal("query left the core dirty; the fallback did not run")
			}
			wantLO := map[int]float64{1: 2, 2: 5}
			for j, ti := range b.cores[0] {
				if b.rLO[0][j] != wantLO[ti] {
					t.Errorf("post-removal task %d: R_LO = %v, want %v", ti, b.rLO[0][j], wantLO[ti])
				}
			}
			for j, ti := range b.cores[0] {
				if ti != 2 {
					continue
				}
				if b.rHI[0][j] != 6 {
					t.Errorf("post-removal tau2: R_HI = %v, want 6", b.rHI[0][j])
				}
				if b.rTR[0][j] != 8 {
					t.Errorf("post-removal tau2: R* = %v, want 8", b.rTR[0][j])
				}
			}
		})
	}
}

// TestWarmStartMatchesColdRebuild is the differential proof behind the
// warm-start gate: on random dual-criticality populations, the
// committed responses the warm-started incremental commits leave must
// be bitwise the responses a forced cold rebuild (Reanalyze) computes
// from scratch. Any divergence would break the Backend contract's
// bit-identity invariant between the delta path and the fallback path.
func TestWarmStartMatchesColdRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	warmTrials := 0
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(12)
		ts := dualSet(rng, n, 0.3+rng.Float64()*0.5, 2)
		b := &Backend{}
		b.Reset(2, 2)
		b.Prepare(ts)
		if b.warmOK {
			warmTrials++
		}
		b.Begin()
		for ti := range ts.Tasks {
			c := ti % 2
			if !b.FeasibleWith(c, ti) {
				if c = 1 - c; !b.FeasibleWith(c, ti) {
					continue
				}
			}
			b.Place(c, ti, false)
		}
		for c := 0; c < 2; c++ {
			warmLO := append([]float64(nil), b.rLO[c]...)
			warmHI := append([]float64(nil), b.rHI[c]...)
			warmTR := append([]float64(nil), b.rTR[c]...)
			warmRank := append([]int(nil), b.ranks[c]...)
			warmLoad := b.loads[c]
			b.Reanalyze(c)
			for j, ti := range b.cores[c] {
				if b.ranks[c][j] != warmRank[j] {
					t.Fatalf("trial %d core %d task %d: warm rank %d, cold %d",
						trial, c, ti, warmRank[j], b.ranks[c][j])
				}
				if b.rLO[c][j] != warmLO[j] {
					t.Fatalf("trial %d core %d task %d: warm R_LO %v, cold %v",
						trial, c, ti, warmLO[j], b.rLO[c][j])
				}
				if ts.Tasks[ti].Crit >= 2 && (b.rHI[c][j] != warmHI[j] || b.rTR[c][j] != warmTR[j]) {
					t.Fatalf("trial %d core %d task %d: warm (R_HI,R*) (%v,%v), cold (%v,%v)",
						trial, c, ti, warmHI[j], warmTR[j], b.rHI[c][j], b.rTR[c][j])
				}
			}
			if b.loads[c] != warmLoad {
				t.Fatalf("trial %d core %d: warm load %v, cold %v", trial, c, warmLoad, b.loads[c])
			}
		}
	}
	// The proof is only evidence if the warm path actually ran.
	if warmTrials == 0 {
		t.Fatal("no trial passed the warm-start gate; the comparison is vacuous")
	}
}

// TestWarmStartGateRejectsTinyBudgets pins the fallback trigger of the
// warm-start gate itself: a set whose smallest level-1 budget sits
// inside the epsilon band must run with warmOK unset (cold seeds), as
// must one whose period/budget ratio cannot bound the cold iteration
// count under the cap.
func TestWarmStartGateRejectsTinyBudgets(t *testing.T) {
	b := &Backend{}
	b.Reset(1, 2)

	tiny := &mc.TaskSet{Tasks: []mc.Task{
		{ID: 1, Period: 10, Crit: 1, WCET: []float64{Eps}},
	}}
	b.Prepare(tiny)
	if b.warmOK {
		t.Error("warmOK with a budget inside the epsilon band")
	}

	extreme := &mc.TaskSet{Tasks: []mc.Task{
		{ID: 1, Period: 1e6, Crit: 1, WCET: []float64{0.05}},
	}}
	b.Prepare(extreme)
	if b.warmOK {
		t.Error("warmOK with period/budget beyond the iteration cap")
	}

	b.Prepare(handSet())
	if !b.warmOK {
		t.Error("warm-start gate rejects a comfortably bounded set")
	}
}
