package fpamc

import (
	"math"
	"math/rand"
	"testing"

	"catpa/internal/mc"
	"catpa/internal/sim"
)

func TestMultiRejectsBadInput(t *testing.T) {
	tasks := []mc.Task{mkTask(1, 10, 3, 1, 2, 3)}
	if _, err := AnalyzeMulti(tasks, 2); err == nil {
		t.Error("crit above K accepted")
	}
	if _, err := AnalyzeMulti(tasks, 0); err == nil {
		t.Error("K=0 accepted")
	}
	if MultiSchedulable(tasks, 2) {
		t.Error("MultiSchedulable true on error")
	}
}

// TestMultiReducesToDual: for K = 2 the multi-level recurrence must
// reproduce the dual AMC-rtb bounds exactly (R(1) = LO, R(2) =
// Transition) on random schedulable subsets.
func TestMultiReducesToDual(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 150; trial++ {
		tasks := randomDualSubset(rng)
		if len(tasks) == 0 {
			continue
		}
		dual, err := Analyze(tasks)
		if err != nil {
			t.Fatal(err)
		}
		multi, err := AnalyzeMulti(tasks, 2)
		if err != nil {
			t.Fatal(err)
		}
		if dual.Schedulable != multi.Schedulable {
			t.Fatalf("trial %d: verdicts differ", trial)
		}
		for i := range tasks {
			if !almost(dual.ByTask[i].LO, multi.ByTask[i].PerLevel[0]) {
				t.Fatalf("trial %d task %d: LO %v != R(1) %v",
					trial, i, dual.ByTask[i].LO, multi.ByTask[i].PerLevel[0])
			}
			if tasks[i].Crit == 2 && !almost(dual.ByTask[i].Transition, multi.ByTask[i].PerLevel[1]) {
				t.Fatalf("trial %d task %d: Transition %v != R(2) %v",
					trial, i, dual.ByTask[i].Transition, multi.ByTask[i].PerLevel[1])
			}
		}
	}
}

// TestMultiHandWorked checks a three-level example by hand:
//
//	tau1 (T=10, C=2, crit 1), tau2 (T=20, C=(2,4), crit 2),
//	tau3 (T=50, C=(3,6,12), crit 3); priorities 1 > 2 > 3.
//
// tau3: R(1) = 3 + ceil(R/10)*2 + ceil(R/20)*2 -> R=3: 3+2+2=7 -> 7:
// 3+2+2=7. R(1)=7.
// R(2) = 6 + ceil(R/20)*4 + ceil(R(1)=7 /10)*2 -> R=6: 6+4+2=12 ->
// 12: 6+4+2=12. R(2)=12.
// R(3) = 12 + ceil(R(2)=12 /20)*4 + ceil(R(1)=7 /10)*2 = 12+4+2=18.
// (tau2 frozen at tau3's level-2 bound, tau1 at the level-1 bound.)
func TestMultiHandWorked(t *testing.T) {
	tasks := []mc.Task{
		mkTask(1, 10, 1, 2),
		mkTask(2, 20, 2, 2, 4),
		mkTask(3, 50, 3, 3, 6, 12),
	}
	a, err := AnalyzeMulti(tasks, 3)
	if err != nil {
		t.Fatal(err)
	}
	r3 := a.ByTask[2]
	if !almost(r3.PerLevel[0], 7) {
		t.Errorf("R(1) = %v, want 7", r3.PerLevel[0])
	}
	if !almost(r3.PerLevel[1], 12) {
		t.Errorf("R(2) = %v, want 12", r3.PerLevel[1])
	}
	if !almost(r3.PerLevel[2], 18) {
		t.Errorf("R(3) = %v, want 18", r3.PerLevel[2])
	}
	if !a.Schedulable {
		t.Error("hand-worked set rejected")
	}
}

// randomMultiSubset accretes a subset that passes the K-level AMC-rtb.
func randomMultiSubset(rng *rand.Rand, k int) []mc.Task {
	var tasks []mc.Task
	for id := 1; id <= 25; id++ {
		crit := 1 + rng.Intn(k)
		p := []float64{20, 40, 50, 100, 200}[rng.Intn(5)]
		u1 := 0.02 + rng.Float64()*0.1
		w := make([]float64, crit)
		c := u1 * p
		for i := range w {
			w[i] = c
			c *= 1.3 + rng.Float64()*0.4
		}
		tk := mc.Task{ID: id, Period: p, Crit: crit, WCET: w}
		if tk.MaxUtil() > 1 {
			continue
		}
		trial := append(append([]mc.Task{}, tasks...), tk)
		if MultiSchedulable(trial, k) {
			tasks = trial
		}
	}
	return tasks
}

// TestMultiAcceptedSubsetsNeverMissFP: the K-level cross-validation —
// subsets accepted by the generalized AMC-rtb execute miss-free under
// fixed-priority dispatching with full overruns, for K = 3..5, and
// observed responses stay within the worst applicable bound.
func TestMultiAcceptedSubsetsNeverMissFP(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		k := 3 + rng.Intn(3)
		tasks := randomMultiSubset(rng, k)
		if len(tasks) == 0 {
			continue
		}
		a, err := AnalyzeMulti(tasks, k)
		if err != nil || !a.Schedulable {
			t.Fatal("construction broken")
		}
		st := sim.SimulateCore(sim.CoreConfig{
			Tasks:         tasks,
			K:             k,
			Horizon:       10000,
			Model:         sim.WorstCaseModel{},
			FixedPriority: true,
			Priorities:    Priorities(tasks),
		})
		if st.Missed != 0 {
			t.Fatalf("trial %d (K=%d): %d misses (first %+v)", trial, k, st.Missed, st.Misses[0])
		}
		for i := range tasks {
			bound := 0.0
			for _, r := range a.ByTask[i].PerLevel {
				bound = math.Max(bound, r)
			}
			if st.MaxResponse[i] > bound+1e-6 {
				t.Fatalf("trial %d task %d: observed %v > bound %v",
					trial, tasks[i].ID, st.MaxResponse[i], bound)
			}
		}
	}
}

// TestMultiResponseMonotoneInLevel: property — bounds grow with the
// level (more carried interference, bigger own budget).
func TestMultiResponseMonotoneInLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		k := 2 + rng.Intn(4)
		tasks := randomMultiSubset(rng, k)
		if len(tasks) == 0 {
			continue
		}
		a, _ := AnalyzeMulti(tasks, k)
		for i := range tasks {
			lv := a.ByTask[i].PerLevel
			for j := 1; j < len(lv); j++ {
				if lv[j] < lv[j-1]-Eps {
					t.Fatalf("trial %d task %d: R(%d)=%v < R(%d)=%v",
						trial, i, j+1, lv[j], j, lv[j-1])
				}
			}
		}
	}
}

func TestMultiUnschedulableMarksInf(t *testing.T) {
	// Force a level-2 failure: tau2's transition bound exceeds its
	// period because of a heavy carried LO task.
	tasks := []mc.Task{
		mkTask(1, 10, 1, 6),         // heavy LO, hp
		mkTask(2, 14, 2, 3.5, 10.5), // HI, cannot absorb carry + own C(2)
	}
	a, err := AnalyzeMulti(tasks, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedulable {
		t.Fatal("expected rejection")
	}
	r2 := a.ByTask[1]
	if r2.Schedulable {
		t.Fatal("tau2 marked schedulable")
	}
}
