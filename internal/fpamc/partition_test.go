package fpamc

import (
	"math/rand"
	"testing"

	"catpa/internal/mc"
	"catpa/internal/partition"
	"catpa/internal/sim"
)

func dualSet(rng *rand.Rand, n int, nsu float64, m int) *mc.TaskSet {
	ts := &mc.TaskSet{}
	ubase := nsu * float64(m) / float64(n)
	for i := 0; i < n; i++ {
		p := []float64{20, 50, 100, 200}[rng.Intn(4)]
		crit := 1 + rng.Intn(2)
		c1 := (0.2 + rng.Float64()*1.6) * p * ubase
		w := []float64{c1}
		if crit == 2 {
			w = append(w, c1*1.4)
		}
		tk := mc.Task{ID: i + 1, Period: p, Crit: crit, WCET: w}
		if tk.MaxUtil() > 1 {
			tk.Crit = 1
			tk.WCET = tk.WCET[:1]
			if tk.MaxUtil() > 1 {
				tk.WCET[0] = p
			}
		}
		ts.Tasks = append(ts.Tasks, tk)
	}
	return ts
}

func TestPartitionBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ts := dualSet(rng, 24, 0.4, 4)
	for _, s := range []partition.Scheme{partition.WFD, partition.FFD, partition.BFD, partition.Hybrid} {
		r, err := Partition(ts, 4, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !r.Feasible {
			t.Fatalf("%v: infeasible on an easy set", s)
		}
		// Independent re-check: every core subset passes AMC-rtb.
		for c, ci := range r.Cores {
			var subset []mc.Task
			for _, ti := range ci.Tasks {
				subset = append(subset, ts.Tasks[ti])
			}
			if !Schedulable(subset) {
				t.Fatalf("%v: core %d fails re-analysis", s, c)
			}
		}
	}
}

func TestPartitionRejectsBadInput(t *testing.T) {
	tri := mc.NewTaskSet(mc.Task{ID: 1, Period: 10, Crit: 3, WCET: []float64{1, 2, 3}})
	if _, err := Partition(tri, 2, partition.FFD); err == nil {
		t.Error("criticality 3 accepted")
	}
	dual := mc.NewTaskSet(mc.Task{ID: 1, Period: 10, Crit: 1, WCET: []float64{1}})
	if _, err := Partition(dual, 0, partition.FFD); err == nil {
		t.Error("M=0 accepted")
	}
	if _, err := Partition(dual, 2, partition.Scheme(99)); err == nil {
		t.Error("unknown scheme accepted")
	}
}

// TestPartitionCATPA: the unified allocator gives the FP path CA-TPA
// for free; accepted partitions must re-verify under AMC-rtb.
func TestPartitionCATPA(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	accepted := 0
	for trial := 0; trial < 20; trial++ {
		ts := dualSet(rng, 24, 0.3+rng.Float64()*0.3, 4)
		r, err := Partition(ts, 4, partition.CATPA)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Feasible {
			continue
		}
		accepted++
		for c, ci := range r.Cores {
			var subset []mc.Task
			for _, ti := range ci.Tasks {
				subset = append(subset, ts.Tasks[ti])
			}
			if !Schedulable(subset) {
				t.Fatalf("trial %d: core %d fails re-analysis", trial, c)
			}
		}
	}
	if accepted == 0 {
		t.Fatal("CA-TPA over AMC-rtb accepted nothing on easy sets")
	}
}

func TestPartitionInfeasibleReported(t *testing.T) {
	ts := &mc.TaskSet{}
	for i := 0; i < 3; i++ {
		ts.Tasks = append(ts.Tasks, mc.Task{ID: i + 1, Period: 10, Crit: 1, WCET: []float64{8}})
	}
	r, err := Partition(ts, 2, partition.FFD)
	if err != nil {
		t.Fatal(err)
	}
	if r.Feasible || r.FailedTask < 0 {
		t.Fatalf("overload not detected: %+v", r)
	}
}

// TestPartitionedFPSurvivesRuntime: an accepted partitioned-FP system
// executes miss-free under worst-case demands on every core.
func TestPartitionedFPSurvivesRuntime(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		ts := dualSet(rng, 30, 0.35+rng.Float64()*0.15, 4)
		r, err := Partition(ts, 4, partition.FFD)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Feasible {
			continue
		}
		for c := range r.Cores {
			var subset []mc.Task
			for _, ti := range r.Cores[c].Tasks {
				subset = append(subset, ts.Tasks[ti])
			}
			if len(subset) == 0 {
				continue
			}
			st := sim.SimulateCore(sim.CoreConfig{
				Tasks:         subset,
				K:             2,
				Horizon:       8000,
				Model:         sim.WorstCaseModel{},
				FixedPriority: true,
				Priorities:    Priorities(subset),
			})
			if st.Missed != 0 {
				t.Fatalf("trial %d core %d: %d misses", trial, c, st.Missed)
			}
		}
	}
}

// TestEDFVDvsFPAcceptance compares partitioned EDF-VD (CA-TPA,
// utilization-based Theorem-1 test) against partitioned FP (AMC-rtb
// response-time analysis, FFD) on the same dual-criticality
// populations. Neither dominates in general: EDF dominates FP given
// exact tests, but the Eq. 7-style EDF-VD test is utilization-based
// and pessimistic while AMC-rtb computes exact fixed points, so at
// high load FP acceptance can exceed EDF-VD acceptance (see
// examples/fpcompare). The test asserts both paths work and stay
// within a plausible band of each other.
func TestEDFVDvsFPAcceptance(t *testing.T) {
	rng := rand.New(rand.NewSource(2016))
	const trials = 150
	edf, fp := 0, 0
	for trial := 0; trial < trials; trial++ {
		ts := dualSet(rng, 40, 0.6+0.2*rng.Float64(), 4)
		if partition.Partition(ts, 4, 2, partition.CATPA, nil).Feasible {
			edf++
		}
		r, err := Partition(ts, 4, partition.FFD)
		if err != nil {
			t.Fatal(err)
		}
		if r.Feasible {
			fp++
		}
	}
	if edf == 0 || fp == 0 {
		t.Fatalf("degenerate acceptance: EDF-VD %d, FP %d", edf, fp)
	}
	if diff := edf - fp; diff > trials/2 || diff < -trials/2 {
		t.Errorf("acceptance gap implausibly large: EDF-VD %d vs FP %d", edf, fp)
	}
	t.Logf("acceptance over %d sets: partitioned EDF-VD (CA-TPA) %d, partitioned FP (AMC-rtb FFD) %d", trials, edf, fp)
}

// TestBackendProtocol exercises the partition.Backend surface of the
// AMC-rtb backend directly: identity, buffer reuse across Reset, the
// no-op KeepProbe, and report contents.
func TestBackendProtocol(t *testing.T) {
	b := new(Backend)
	if b.Name() != BackendName || b.MaxLevels() != 2 {
		t.Fatalf("identity: name %q maxLevels %d", b.Name(), b.MaxLevels())
	}
	rng := rand.New(rand.NewSource(5))
	ts := dualSet(rng, 8, 0.3, 2)

	for round := 0; round < 2; round++ { // second round reuses buffers
		b.Reset(2, 2)
		b.Prepare(ts)
		b.Begin()
		if !b.FeasibleWith(0, 0) {
			t.Fatal("empty core rejects a light task")
		}
		u := b.ProbeUtil(0, 0, false)
		b.KeepProbe() // no-op by contract: probes hold no state
		b.Place(0, 0, true)
		if got := b.OwnLoad(0); got != u {
			t.Errorf("round %d: OwnLoad %v != probed %v", round, got, u)
		}
		if b.CoreUtil(0, true) != b.CoreUtil(0, false) {
			t.Error("amcrtb CoreUtil should not depend on the worst flag")
		}
		if floor := b.UtilFloor(1, 1); floor != b.ProbeUtil(1, 1, false) {
			t.Error("UtilFloor should be exact for the load-sum metric")
		}
		var ci partition.CoreInfo
		ci.Lambda = []float64{0.5} // must be cleared by ReportInto
		b.ReportInto(0, &ci)
		if ci.Util != b.OwnLoad(0) || ci.FeasibleK != 0 || len(ci.Lambda) != 0 {
			t.Errorf("round %d: report %+v", round, ci)
		}
	}
}
