package fpamc

import (
	"math"
	"testing"

	"catpa/internal/mc"
	"catpa/internal/partition"
)

// legacyPartition is the pre-backend fpamc.Partition verbatim: the
// 158-line parallel universe of FFD/WFD/BFD/Hybrid shells this PR
// deleted in favor of the unified allocator. It lives on in the test
// binary only, as the reference implementation FuzzBackendAgreement
// locks the unified path against — verdicts, mappings and metrics must
// stay identical before the duplication is allowed to die.
func legacyPartition(ts *mc.TaskSet, m int, scheme partition.Scheme) (*partition.Result, error) {
	if maxCrit := ts.MaxCrit(); maxCrit > 2 {
		return nil, errLegacy("criticality above 2")
	}
	if m < 1 {
		return nil, errLegacy("invalid core count")
	}
	var order []int
	switch scheme {
	case partition.WFD, partition.FFD, partition.BFD, partition.Hybrid:
		order = mc.SortByMaxUtil(ts)
	default:
		return nil, errLegacy("unsupported scheme")
	}

	cores := make([][]mc.Task, m)
	taskIdx := make([][]int, m)
	loads := make([]float64, m)
	assign := make([]int, ts.Len())
	for i := range assign {
		assign[i] = -1
	}

	fits := func(subset []mc.Task, t *mc.Task) bool {
		trial := make([]mc.Task, 0, len(subset)+1)
		trial = append(trial, subset...)
		trial = append(trial, *t)
		return Schedulable(trial)
	}

	place := func(ti int) bool {
		t := &ts.Tasks[ti]
		pick, hybridScheme := -1, scheme
		if scheme == partition.Hybrid {
			if t.Crit >= 2 {
				hybridScheme = partition.WFD
			} else {
				hybridScheme = partition.FFD
			}
		}
		var pickLoad float64
		for c := 0; c < m; c++ {
			if !fits(cores[c], t) {
				continue
			}
			switch hybridScheme {
			case partition.FFD:
				pick = c
			case partition.BFD:
				if pick < 0 || loads[c] > pickLoad+Eps {
					pick, pickLoad = c, loads[c]
				}
				continue
			case partition.WFD:
				if pick < 0 || loads[c] < pickLoad-Eps {
					pick, pickLoad = c, loads[c]
				}
				continue
			}
			if pick >= 0 && hybridScheme == partition.FFD {
				break
			}
		}
		if pick < 0 {
			return false
		}
		cores[pick] = append(cores[pick], t.Clone())
		taskIdx[pick] = append(taskIdx[pick], ti)
		loads[pick] += t.MaxUtil()
		assign[ti] = pick
		return true
	}

	run := func(filter func(*mc.Task) bool) int {
		for _, ti := range order {
			if !filter(&ts.Tasks[ti]) {
				continue
			}
			if !place(ti) {
				return ti
			}
		}
		return -1
	}

	failed := -1
	if scheme == partition.Hybrid {
		if failed = run(func(t *mc.Task) bool { return t.Crit >= 2 }); failed < 0 {
			failed = run(func(t *mc.Task) bool { return t.Crit < 2 })
		}
	} else {
		failed = run(func(*mc.Task) bool { return true })
	}

	res := &partition.Result{
		Scheme:     scheme,
		M:          m,
		K:          2,
		Feasible:   failed < 0,
		Assignment: assign,
		FailedTask: failed,
		Cores:      make([]partition.CoreInfo, m),
	}
	for c := 0; c < m; c++ {
		res.Cores[c] = partition.CoreInfo{
			Tasks:        taskIdx[c],
			Util:         loads[c],
			OwnLevelLoad: loads[c],
		}
	}
	legacyFinishMetrics(res)
	return res, nil
}

type errLegacy string

func (e errLegacy) Error() string { return "fpamc(legacy): " + string(e) }

func legacyFinishMetrics(r *partition.Result) {
	if len(r.Cores) == 0 {
		return
	}
	maxU, minU, sum := math.Inf(-1), math.Inf(1), 0.0
	for i := range r.Cores {
		u := r.Cores[i].Util
		sum += u
		if u > maxU {
			maxU = u
		}
		if u < minU {
			minU = u
		}
	}
	r.Usys = maxU
	r.Uavg = sum / float64(len(r.Cores))
	if maxU > Eps {
		r.Imbalance = (maxU - minU) / maxU
	}
}

// decodeDualSet turns fuzz bytes into a valid dual-criticality task
// set, 6 bytes per task (the internal/edfvd fuzz encoding restricted
// to maxK = 2), or nil when data is too short.
func decodeDualSet(t *testing.T, data []byte) *mc.TaskSet {
	t.Helper()
	const bytesPerTask = 6
	n := len(data) / bytesPerTask
	if n == 0 {
		return nil
	}
	if n > 32 {
		n = 32 // keep each RTA fixed point cheap
	}
	ts := mc.NewTaskSetCap(n)
	for i := 0; i < n; i++ {
		b := data[i*bytesPerTask:]
		p16 := uint16(b[0]) | uint16(b[1])<<8
		u16 := uint16(b[2]) | uint16(b[3])<<8
		period := float64(1 + p16%2000)
		u1 := float64(1+u16%999) / 1000
		crit := 1 + int(b[4])%2
		growth := 1 + float64(b[5]%129)/64
		w := make([]float64, crit)
		w[0] = u1 * period
		for k := 1; k < crit; k++ {
			w[k] = math.Min(w[k-1]*growth, period)
		}
		ts.Tasks = append(ts.Tasks, mc.MustTask(i+1, "", period, w...))
	}
	if err := ts.Validate(); err != nil {
		t.Fatalf("decoder produced invalid task set: %v", err)
	}
	return ts
}

// FuzzBackendAgreement locks the unified allocator running atop the
// AMC-rtb backend against the deleted legacy shells: on arbitrary
// dual-criticality sets, every legacy-supported scheme must produce an
// identical verdict, failure point, task-to-core mapping, per-core
// subsets/loads and aggregate metrics. Exact float equality is
// intentional — both paths accumulate the same own-level load sums in
// the same order, so any divergence is a real protocol regression, not
// rounding noise.
func FuzzBackendAgreement(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint8(2))
	seed := make([]byte, 0, 16*6)
	for i := 0; i < 16; i++ {
		seed = append(seed,
			byte(37*i), byte(i), // period
			byte(200+13*i), byte(2), // u1
			byte(i),   // crit
			byte(5*i)) // growth
	}
	f.Add(seed, uint8(1), uint8(4))
	f.Add(seed, uint8(3), uint8(3))

	schemes := []partition.Scheme{partition.WFD, partition.FFD, partition.BFD, partition.Hybrid}
	f.Fuzz(func(t *testing.T, data []byte, schemeSel, mSel uint8) {
		ts := decodeDualSet(t, data)
		if ts == nil {
			return
		}
		scheme := schemes[int(schemeSel)%len(schemes)]
		m := 1 + int(mSel)%8

		want, err := legacyPartition(ts, m, scheme)
		if err != nil {
			t.Fatalf("legacy: %v", err)
		}
		got, err := Partition(ts, m, scheme)
		if err != nil {
			t.Fatalf("unified: %v", err)
		}

		if got.Feasible != want.Feasible || got.FailedTask != want.FailedTask {
			t.Fatalf("%v m=%d: verdict (%v, failed %d) != legacy (%v, failed %d)",
				scheme, m, got.Feasible, got.FailedTask, want.Feasible, want.FailedTask)
		}
		if got.M != want.M || got.K != want.K || got.Scheme != want.Scheme {
			t.Fatalf("%v m=%d: header (%v, %d, %d) != legacy (%v, %d, %d)",
				scheme, m, got.Scheme, got.M, got.K, want.Scheme, want.M, want.K)
		}
		for i := range want.Assignment {
			if got.Assignment[i] != want.Assignment[i] {
				t.Fatalf("%v m=%d: task %d on core %d, legacy %d",
					scheme, m, i, got.Assignment[i], want.Assignment[i])
			}
		}
		for c := range want.Cores {
			gc, wc := &got.Cores[c], &want.Cores[c]
			if len(gc.Tasks) != len(wc.Tasks) {
				t.Fatalf("%v m=%d core %d: %d tasks, legacy %d", scheme, m, c, len(gc.Tasks), len(wc.Tasks))
			}
			for i := range wc.Tasks {
				if gc.Tasks[i] != wc.Tasks[i] {
					t.Fatalf("%v m=%d core %d: allocation order %v, legacy %v", scheme, m, c, gc.Tasks, wc.Tasks)
				}
			}
			if gc.Util != wc.Util || gc.OwnLevelLoad != wc.OwnLevelLoad {
				t.Fatalf("%v m=%d core %d: load (%v, %v), legacy (%v, %v)",
					scheme, m, c, gc.Util, gc.OwnLevelLoad, wc.Util, wc.OwnLevelLoad)
			}
		}
		if got.Usys != want.Usys || got.Uavg != want.Uavg || got.Imbalance != want.Imbalance {
			t.Fatalf("%v m=%d: metrics (%v, %v, %v), legacy (%v, %v, %v)",
				scheme, m, got.Usys, got.Uavg, got.Imbalance, want.Usys, want.Uavg, want.Imbalance)
		}
	})
}
