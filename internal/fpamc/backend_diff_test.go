package fpamc

import (
	"math/rand"
	"testing"

	"catpa/internal/mc"
)

// TestBackendSchedulableMatchesAnalyze is the differential check behind
// the backend's verdict-only analysis: on random dual-criticality
// subsets, Backend.schedulable over task indices must agree with the
// exported Schedulable over the corresponding task slice. The two run
// the same fixed points with the demand sums in the same index order,
// so agreement is exact, not approximate.
func TestBackendSchedulableMatchesAnalyze(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(10)
		// Loads around the schedulability boundary so both verdicts occur.
		ts := dualSet(rng, n, 0.25+rng.Float64()*0.6, 1)
		b := &Backend{}
		b.Reset(1, 2)
		b.Prepare(ts)

		// A random subset of the set, as indices.
		var idx []int
		var tasks []mc.Task
		for i := range ts.Tasks {
			if rng.Intn(3) > 0 {
				idx = append(idx, i)
				tasks = append(tasks, ts.Tasks[i])
			}
		}
		got := b.schedulable(idx)
		want := Schedulable(tasks)
		if got != want {
			t.Fatalf("trial %d (n=%d): backend verdict %v, Schedulable %v\ntasks: %v",
				trial, len(idx), got, want, tasks)
		}
	}
}

// TestBackendSchedulableEmpty pins the trivial boundary: an empty
// subset is schedulable under both entry points.
func TestBackendSchedulableEmpty(t *testing.T) {
	b := &Backend{}
	b.Reset(1, 2)
	b.Prepare(&mc.TaskSet{})
	if !b.schedulable(nil) {
		t.Error("empty subset reported unschedulable")
	}
	if !Schedulable(nil) {
		t.Error("Schedulable(nil) = false")
	}
}
