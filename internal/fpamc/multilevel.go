package fpamc

import (
	"fmt"
	"math"

	"catpa/internal/mc"
)

// MultiResponse holds the per-level AMC-rtb bounds of one task in a
// K-level system.
type MultiResponse struct {
	// PerLevel[k-1] is the response-time bound R_i(k) when the system
	// rises to level k while the job is in flight, for k = 1..l_i
	// (levels above the task's criticality are not applicable: the
	// task is dropped). PerLevel[0] is the all-nominal bound.
	PerLevel []float64
	// Schedulable reports whether every applicable bound is within
	// the task's deadline.
	Schedulable bool
}

// MultiAnalysis is the K-level AMC-rtb result for one core's subset.
type MultiAnalysis struct {
	// K is the number of criticality levels analyzed.
	K int
	// Priority is the deadline-monotonic order.
	Priority []int
	// ByTask maps each task index to its per-level bounds.
	ByTask []MultiResponse
	// Schedulable reports whether the whole subset passes.
	Schedulable bool
}

// AnalyzeMulti generalizes the AMC-rtb analysis to K criticality
// levels, in the style of Fleming and Burns ("Extending mixed
// criticality scheduling"): for a task tau_i of criticality l_i and
// each level k <= l_i, the bound solves
//
//	R_i(k) = C_i(k) + sum_{j in hp(i), l_j >= k} ceil(R_i(k)/T_j) C_j(k)
//	              + sum_{j in hp(i), l_j <  k} ceil(R_i(l_j)/T_j) C_j(l_j)
//
// — higher-criticality interference at level-k budgets over the whole
// window, lower-criticality interference frozen at the response bound
// of the level at which the interfering task is dropped. For K = 2
// this reduces exactly to the dual-criticality AMC-rtb of Analyze
// (R(1) = LO, R(2) = Transition); the tests verify the reduction.
func AnalyzeMulti(tasks []mc.Task, k int) (*MultiAnalysis, error) {
	if k < 1 {
		return nil, fmt.Errorf("fpamc: invalid level count %d", k)
	}
	for i := range tasks {
		if tasks[i].Crit < 1 || tasks[i].Crit > k {
			return nil, fmt.Errorf("fpamc: task %d criticality %d outside 1..%d", tasks[i].ID, tasks[i].Crit, k)
		}
	}
	a := &MultiAnalysis{
		K:           k,
		Priority:    Priorities(tasks),
		ByTask:      make([]MultiResponse, len(tasks)),
		Schedulable: true,
	}
	rank := make([]int, len(tasks))
	for pos, ti := range a.Priority {
		rank[ti] = pos
	}
	for ti := range tasks {
		r := analyzeMultiTask(tasks, rank, ti, k)
		a.ByTask[ti] = r
		if !r.Schedulable {
			a.Schedulable = false
		}
	}
	return a, nil
}

// MultiSchedulable is the verdict-only wrapper.
func MultiSchedulable(tasks []mc.Task, k int) bool {
	a, err := AnalyzeMulti(tasks, k)
	return err == nil && a.Schedulable
}

func analyzeMultiTask(tasks []mc.Task, rank []int, ti, k int) MultiResponse {
	t := &tasks[ti]
	deadline := t.Period
	resp := MultiResponse{
		PerLevel:    make([]float64, t.Crit),
		Schedulable: true,
	}
	for lvl := 1; lvl <= t.Crit; lvl++ {
		r := fixedPoint(t.C(lvl), deadline, func(r float64) float64 {
			demand := t.C(lvl)
			for j := range tasks {
				if j == ti || rank[j] >= rank[ti] {
					continue
				}
				tj := &tasks[j]
				if tj.Crit >= lvl {
					demand += math.Ceil((r-Eps)/tj.Period) * tj.C(lvl)
				} else {
					// tau_j was dropped when the system passed its
					// own level; its interference is frozen at tau_i's
					// bound for that level.
					frozen := resp.PerLevel[tj.Crit-1]
					demand += math.Ceil((frozen-Eps)/tj.Period) * tj.C(tj.Crit)
				}
			}
			return demand
		})
		resp.PerLevel[lvl-1] = r
		if r > deadline+Eps {
			resp.Schedulable = false
			// Higher levels depend on this bound; stop (the subset is
			// already rejected).
			for rest := lvl + 1; rest <= t.Crit; rest++ {
				resp.PerLevel[rest-1] = math.Inf(1)
			}
			break
		}
	}
	return resp
}
