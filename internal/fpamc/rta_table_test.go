package fpamc

import (
	"testing"

	"catpa/internal/mc"
)

// TestResponseTimesTable drives hand-traced instances through the
// AMC-rtb analysis and checks every bound of every task against values
// computed by hand from the recurrences (the same discipline as the
// simulator's overrun accounting table in internal/sim). A zero in a
// want column means "bound not applicable" (LO tasks carry no HI or
// transition bound).
func TestResponseTimesTable(t *testing.T) {
	cases := []struct {
		name  string
		tasks []mc.Task

		// want[i] is the expected Response of tasks[i].
		want  []Response
		sched bool
	}{
		{
			// A single LO task runs undisturbed: its response is its
			// own budget and no mode-switch bounds apply.
			name:  "single LO task",
			tasks: []mc.Task{mkTask(1, 10, 1, 4)},
			want:  []Response{{LO: 4, Schedulable: true}},
			sched: true,
		},
		{
			// A single HI task: LO response is the level-1 budget, and
			// with no interference both the stable-HI and transition
			// fixed points collapse to the level-2 budget.
			name:  "single HI task",
			tasks: []mc.Task{mkTask(1, 20, 2, 5, 12)},
			want:  []Response{{LO: 5, HI: 12, Transition: 12, Schedulable: true}},
			sched: true,
		},
		{
			// Three equal-period (hence equal-priority-by-deadline)
			// tasks force both tie-breaks: the HI task wins on
			// criticality, then the LO tasks order by ID. Responses
			// stack accordingly:
			//   tauH (ID=1): 2
			//   tauA (ID=2): 3 + 2           = 5
			//   tauB (ID=3): 3 + 2 + 3       = 8
			// tauH sees no higher-priority work, so HI = Transition = 4.
			name: "equal-period tie-breaks",
			tasks: []mc.Task{
				mkTask(3, 12, 1, 3),
				mkTask(1, 12, 2, 2, 4),
				mkTask(2, 12, 1, 3),
			},
			want: []Response{
				{LO: 8, Schedulable: true},
				{LO: 2, HI: 4, Transition: 4, Schedulable: true},
				{LO: 5, Schedulable: true},
			},
			sched: true,
		},
		{
			// Budget-boundary overrun, exactly at the deadline: tauH's
			// transition bound is 9 (own C(2)) + 3 (one frozen release
			// of tauL inside R^LO = 5) = 12 = deadline. Accepted — the
			// bound is "within the deadline", not strictly below it.
			name: "transition bound exactly at deadline",
			tasks: []mc.Task{
				mkTask(1, 10, 1, 3),
				mkTask(2, 12, 2, 2, 9),
			},
			want: []Response{
				{LO: 3, Schedulable: true},
				{LO: 5, HI: 9, Transition: 12, Schedulable: true},
			},
			sched: true,
		},
		{
			// The same set with the overrun budget nudged past the
			// boundary: C(2) = 9.5 pushes only the transition bound
			// (12.5) over the deadline — LO (5) and stable HI (9.5)
			// still fit, so this pins the transition recurrence as the
			// binding test, exactly the AMC-rtb refinement over plain
			// per-mode RTA.
			name: "transition bound just past deadline",
			tasks: []mc.Task{
				mkTask(1, 10, 1, 3),
				mkTask(2, 12, 2, 2, 9.5),
			},
			want: []Response{
				{LO: 3, Schedulable: true},
				{LO: 5, HI: 9.5, Transition: 12.5, Schedulable: false},
			},
			sched: false,
		},
		{
			// Multi-window interference on the transition bound: tauH's
			// level-2 window spans two releases of the HI interferer
			// but the LO interference stays frozen at one release.
			//   tauM (T=8, HI, C={1,2}), tauL (T=10, LO, C=2),
			//   tauH (T=30, HI, C={3,12}).
			// R_H^LO: 3 + ceil(r/8)*1 + ceil(r/10)*2 -> 6 -> 6. = 6.
			// R_H^HI: 12 + ceil(r/8)*2 -> 14 -> 16 -> 16. = 16.
			// R_H*:  12 + ceil(r/8)*2 + ceil(6/10)*2
			//        -> 18 -> 20 -> 20. = 20.
			name: "multi-window transition interference",
			tasks: []mc.Task{
				mkTask(1, 8, 2, 1, 2),
				mkTask(2, 10, 1, 2),
				mkTask(3, 30, 2, 3, 12),
			},
			want: []Response{
				{LO: 1, HI: 2, Transition: 2, Schedulable: true},
				{LO: 3, Schedulable: true},
				{LO: 6, HI: 16, Transition: 20, Schedulable: true},
			},
			sched: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := Analyze(tc.tasks)
			if err != nil {
				t.Fatal(err)
			}
			if a.Schedulable != tc.sched {
				t.Errorf("Schedulable = %v, want %v", a.Schedulable, tc.sched)
			}
			for i, want := range tc.want {
				got := a.ByTask[i]
				if !almost(got.LO, want.LO) {
					t.Errorf("task %d: LO = %v, want %v", tc.tasks[i].ID, got.LO, want.LO)
				}
				if !almost(got.HI, want.HI) {
					t.Errorf("task %d: HI = %v, want %v", tc.tasks[i].ID, got.HI, want.HI)
				}
				if !almost(got.Transition, want.Transition) {
					t.Errorf("task %d: Transition = %v, want %v", tc.tasks[i].ID, got.Transition, want.Transition)
				}
				if got.Schedulable != want.Schedulable {
					t.Errorf("task %d: Schedulable = %v, want %v", tc.tasks[i].ID, got.Schedulable, want.Schedulable)
				}
			}
		})
	}
}
