package fpamc

import (
	"math"
	"math/rand"
	"testing"

	"catpa/internal/mc"
	"catpa/internal/sim"
)

func mkTask(id int, period float64, crit int, wcet ...float64) mc.Task {
	return mc.Task{ID: id, Period: period, Crit: crit, WCET: wcet}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestPrioritiesDeadlineMonotonic(t *testing.T) {
	tasks := []mc.Task{
		mkTask(1, 50, 1, 5),
		mkTask(2, 10, 1, 2),
		mkTask(3, 20, 2, 1, 3),
	}
	p := Priorities(tasks)
	want := []int{1, 2, 0} // periods 10, 20, 50
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("priorities = %v, want %v", p, want)
		}
	}
}

func TestPrioritiesTieBreaks(t *testing.T) {
	tasks := []mc.Task{
		mkTask(5, 10, 1, 1),
		mkTask(2, 10, 2, 1, 2), // same period, higher crit -> first
		mkTask(1, 10, 1, 1),    // same period+crit as task 0, smaller ID
	}
	p := Priorities(tasks)
	if tasks[p[0]].ID != 2 {
		t.Errorf("first = task %d, want criticality tie-break to ID 2", tasks[p[0]].ID)
	}
	if tasks[p[1]].ID != 1 || tasks[p[2]].ID != 5 {
		t.Errorf("ID tie-break broken: %v", p)
	}
}

// TestClassicRTAFixedPoint checks the textbook example: hp task
// (T=10, C=3), lp task (T=20, C=5): R_lp = 5 + ceil(8/10)*3 = 8.
func TestClassicRTAFixedPoint(t *testing.T) {
	tasks := []mc.Task{
		mkTask(1, 10, 1, 3),
		mkTask(2, 20, 1, 5),
	}
	a, err := Analyze(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(a.ByTask[0].LO, 3) {
		t.Errorf("hp response = %v, want 3", a.ByTask[0].LO)
	}
	if !almost(a.ByTask[1].LO, 8) {
		t.Errorf("lp response = %v, want 8", a.ByTask[1].LO)
	}
	if !a.Schedulable {
		t.Error("textbook set rejected")
	}
}

// TestRTAMultipleInterferenceWindows exercises a response crossing a
// higher-priority period boundary: hp (T=5, C=2), lp (T=20, C=5):
// R = 5 + ceil(R/5)*2 -> R=5: 5+2*2=9 -> ceil(9/5)=2: 9 -> stable? 5+2*2=9;
// ceil(9/5)=2 -> 9. R=9.
func TestRTAMultipleInterferenceWindows(t *testing.T) {
	tasks := []mc.Task{
		mkTask(1, 5, 1, 2),
		mkTask(2, 20, 1, 5),
	}
	a, err := Analyze(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(a.ByTask[1].LO, 9) {
		t.Errorf("lp response = %v, want 9", a.ByTask[1].LO)
	}
}

// TestAMCTransitionBound verifies the AMC-rtb fixed point on a
// hand-worked dual-criticality example:
//
//	tauL (T=10, C=2, LO), tauH (T=25, C(1)=4, C(2)=9, HI).
//
// tauH has lower priority. R_H^LO = 4 + ceil(./10)*2 -> 4+2=6 (one
// window). Transition: 9 + ceil(R_H^LO=6 /10)*2 (frozen LO) +
// 0 (no hp HI) = 11.
func TestAMCTransitionBound(t *testing.T) {
	tasks := []mc.Task{
		mkTask(1, 10, 1, 2),
		mkTask(2, 25, 2, 4, 9),
	}
	a, err := Analyze(tasks)
	if err != nil {
		t.Fatal(err)
	}
	h := a.ByTask[1]
	if !almost(h.LO, 6) {
		t.Errorf("R_H^LO = %v, want 6", h.LO)
	}
	if !almost(h.HI, 9) {
		t.Errorf("R_H^HI = %v, want 9", h.HI)
	}
	if !almost(h.Transition, 11) {
		t.Errorf("R_H* = %v, want 11", h.Transition)
	}
	if !a.Schedulable {
		t.Error("example rejected")
	}
	// The LO task needs only its LO bound.
	if a.ByTask[0].HI != 0 || a.ByTask[0].Transition != 0 {
		t.Error("LO task carries HI bounds")
	}
}

func TestAnalyzeRejectsHighK(t *testing.T) {
	tasks := []mc.Task{mkTask(1, 10, 3, 1, 2, 3)}
	if _, err := Analyze(tasks); err == nil {
		t.Fatal("criticality 3 accepted")
	}
	if Schedulable(tasks) {
		t.Fatal("Schedulable true on error")
	}
}

func TestUnschedulableDetected(t *testing.T) {
	tasks := []mc.Task{
		mkTask(1, 10, 1, 6),
		mkTask(2, 10, 1, 6),
	}
	a, err := Analyze(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedulable {
		t.Fatal("120% load accepted")
	}
}

// randomDualSubset builds a subset that passes AMC-rtb, by greedy
// accretion.
func randomDualSubset(rng *rand.Rand) []mc.Task {
	var tasks []mc.Task
	for id := 1; id <= 30; id++ {
		crit := 1 + rng.Intn(2)
		p := []float64{20, 40, 50, 100, 200, 400}[rng.Intn(6)]
		u1 := 0.03 + rng.Float64()*0.15
		w := []float64{u1 * p}
		if crit == 2 {
			w = append(w, w[0]*(1.3+rng.Float64()*0.7))
		}
		tk := mc.Task{ID: id, Period: p, Crit: crit, WCET: w}
		if tk.MaxUtil() > 1 {
			continue
		}
		trial := append(append([]mc.Task{}, tasks...), tk)
		if Schedulable(trial) {
			tasks = trial
		}
	}
	return tasks
}

// TestResponseOrdering: property — the transition bound dominates the
// stable HI bound, and every bound dominates the task's own WCET.
func TestResponseOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		tasks := randomDualSubset(rng)
		if len(tasks) == 0 {
			continue
		}
		a, err := Analyze(tasks)
		if err != nil || !a.Schedulable {
			t.Fatal("construction broken")
		}
		for i := range tasks {
			r := a.ByTask[i]
			if r.LO < tasks[i].C(1)-Eps {
				t.Fatalf("trial %d: LO response below WCET", trial)
			}
			if tasks[i].Crit == 2 {
				if r.Transition < r.HI-Eps {
					t.Fatalf("trial %d: transition %v < stable HI %v", trial, r.Transition, r.HI)
				}
				if r.HI < tasks[i].C(2)-Eps {
					t.Fatalf("trial %d: HI response below C(2)", trial)
				}
			}
		}
	}
}

// TestAMCAcceptedSubsetsNeverMissFP is the runtime cross-validation:
// AMC-rtb-accepted subsets executed under fixed-priority dispatching
// with AMC mode switching never miss a deadline of a non-dropped job,
// and every observed response time is bounded by the analyzed bound.
func TestAMCAcceptedSubsetsNeverMissFP(t *testing.T) {
	rng := rand.New(rand.NewSource(20161111))
	for trial := 0; trial < 120; trial++ {
		tasks := randomDualSubset(rng)
		if len(tasks) == 0 {
			continue
		}
		a, _ := Analyze(tasks)
		st := sim.SimulateCore(sim.CoreConfig{
			Tasks:         tasks,
			K:             2,
			Horizon:       12000,
			Model:         sim.WorstCaseModel{},
			FixedPriority: true,
			Priorities:    Priorities(tasks),
		})
		if st.Missed != 0 {
			t.Fatalf("trial %d: %d misses on AMC-rtb-accepted subset (first %+v)",
				trial, st.Missed, st.Misses[0])
		}
		for i := range tasks {
			bound := a.ByTask[i].LO
			if tasks[i].Crit == 2 {
				bound = math.Max(bound, a.ByTask[i].Transition)
			}
			if st.MaxResponse[i] > bound+1e-6 {
				t.Fatalf("trial %d task %d: observed response %v exceeds analyzed bound %v",
					trial, tasks[i].ID, st.MaxResponse[i], bound)
			}
		}
	}
}

// TestRandomOverrunsAlsoSafe repeats the cross-validation with
// sporadic, arbitrarily timed overruns.
func TestRandomOverrunsAlsoSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		tasks := randomDualSubset(rng)
		if len(tasks) == 0 {
			continue
		}
		st := sim.SimulateCore(sim.CoreConfig{
			Tasks:         tasks,
			K:             2,
			Horizon:       12000,
			Model:         sim.NewRandomModel(0.2, 0.1, int64(trial)),
			FixedPriority: true,
			Priorities:    Priorities(tasks),
		})
		if st.Missed != 0 {
			t.Fatalf("trial %d: %d misses (first %+v)", trial, st.Missed, st.Misses[0])
		}
	}
}
