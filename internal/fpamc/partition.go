package fpamc

import (
	"fmt"
	"math"

	"catpa/internal/mc"
	"catpa/internal/partition"
)

// BackendName is the registry name of the AMC-rtb analysis backend.
const BackendName = "amcrtb"

func init() {
	partition.RegisterBackend(BackendName, func() partition.Backend { return &Backend{} })
}

// Backend adapts the AMC-rtb response-time analysis to the allocator's
// per-core schedulability protocol, so every heuristic — including
// CA-TPA, which the old fixed-priority shells never supported — runs
// atop partitioned fixed-priority AMC through the one allocation shell
// in internal/partition.
//
// A response-time analysis has no single utilization figure, so the
// core-utilization metric this backend reports (ProbeUtil, CoreUtil,
// reflected into CoreInfo.Util) is the Eq. 4 own-level load
// sum MaxUtil — exactly what the deleted fpamc.Partition shells
// reported. That makes the probe increment core-independent (always
// the candidate's MaxUtil), so CA-TPA's minimum-increment search
// degenerates to first-feasible under its contribution ordering; the
// ordering itself and the imbalance fallback remain active (see
// DESIGN.md Section 11).
//
// Unlike the exported Analyze, the backend never materializes an
// Analysis: cores hold task indices into the prepared set, the
// deadline-monotonic order comes from a closure-free stable insertion
// sort over reusable scratch, and the three AMC-rtb fixed points are
// verdict-only loops that stop at the first failing bound. Every
// verdict is identical to Schedulable on the corresponding task slice
// (the demand sums run in the same index order with the same float
// operations); the differential test in partition_test.go checks this
// on random subsets.
type Backend struct {
	m  int
	ts *mc.TaskSet

	cores [][]int   // per-core placed task indices, in allocation order
	loads []float64 // per-core Eq. 4 own-level load (sum MaxUtil)

	// Probe scratch, reused across calls and only ever grown: the
	// trial subset's task indices, its deadline-monotonic order
	// (positions into trial), and the rank of each position.
	trial []int
	prio  []int
	rank  []int
}

// Name implements partition.Backend.
//
//mc:allocfree constant
func (b *Backend) Name() string { return BackendName }

// MaxLevels implements partition.Backend: AMC is dual-criticality.
//
//mc:allocfree constant
func (b *Backend) MaxLevels() int { return 2 }

// Reset implements partition.Backend.
func (b *Backend) Reset(m, k int) {
	b.m = m
	if cap(b.cores) < m {
		cores := make([][]int, m)
		copy(cores, b.cores)
		b.cores = cores
	} else {
		b.cores = b.cores[:m]
	}
	if cap(b.loads) < m {
		b.loads = make([]float64, m)
	} else {
		b.loads = b.loads[:m]
	}
}

// Prepare implements partition.Backend.
//
//mc:allocfree installs the set
func (b *Backend) Prepare(ts *mc.TaskSet) { b.ts = ts }

// Begin implements partition.Backend.
//
//mc:allocfree truncates per-core state in place
func (b *Backend) Begin() {
	for c := 0; c < b.m; c++ {
		b.cores[c] = b.cores[c][:0]
		b.loads[c] = 0
	}
}

// FeasibleWith implements partition.Backend: it reports whether core
// c's subset plus task ti passes the AMC-rtb response-time test
// (Eqs. rtb-LO/rtb-HI), the fixed-priority counterpart of the
// Theorem-1 screens.
//
//mc:allocfree trial indices and sort scratch are reused across probes
func (b *Backend) FeasibleWith(c, ti int) bool {
	b.trial = append(b.trial[:0], b.cores[c]...)
	b.trial = append(b.trial, ti)
	return b.schedulable(b.trial)
}

// ProbeUtil implements partition.Backend: the own-level load of core c
// with task ti added, +Inf when the extended subset fails AMC-rtb.
// The worst flag is ignored — the load metric has only one reading.
//
//mc:allocfree delegates to the scratch-based probe
func (b *Backend) ProbeUtil(c, ti int, worst bool) float64 {
	if !b.FeasibleWith(c, ti) {
		return math.Inf(1)
	}
	return b.loads[c] + b.ts.Tasks[ti].MaxUtil()
}

// KeepProbe implements partition.Backend. Probes carry no analysis
// state worth caching — Place recomputes the load sum exactly.
//
//mc:allocfree no-op
func (b *Backend) KeepProbe() {}

// UtilFloor implements partition.Backend: the load metric is exact
// whenever the probe is feasible, so the floor is the probe value
// itself (without the feasibility check).
//
//mc:allocfree two reads and an add
func (b *Backend) UtilFloor(c, ti int) float64 {
	return b.loads[c] + b.ts.Tasks[ti].MaxUtil()
}

// Place implements partition.Backend. The core records only the task's
// index — the prepared set owns the task values.
//
//mc:allocfree per-core index lists grow amortized
func (b *Backend) Place(c, ti int, probed bool) {
	b.cores[c] = append(b.cores[c], ti)
	b.loads[c] += b.ts.Tasks[ti].MaxUtil()
}

// OwnLoad implements partition.Backend.
//
//mc:allocfree accessor
func (b *Backend) OwnLoad(c int) float64 { return b.loads[c] }

// CoreUtil implements partition.Backend; worst is ignored (one
// reading, see ProbeUtil).
//
//mc:allocfree accessor
func (b *Backend) CoreUtil(c int, worst bool) float64 { return b.loads[c] }

// ReportInto implements partition.Backend. FeasibleK and Lambda are
// EDF-VD notions with no AMC counterpart; they stay zero and empty.
//
//mc:allocfree fills the caller-owned CoreInfo in place
func (b *Backend) ReportInto(c int, ci *partition.CoreInfo) {
	ci.Util = b.loads[c]
	ci.FeasibleK = 0
	ci.Lambda = ci.Lambda[:0]
}

// schedulable is the verdict-only AMC-rtb test over a subset given as
// task indices into the prepared set. It reproduces Schedulable's
// verdict exactly — same priority order (a stable insertion sort with
// the Priorities comparison), same fixed points with the demand sums
// accumulated in the same index order — without building an Analysis.
//
//mc:allocfree order and rank live in reusable scratch
func (b *Backend) schedulable(idx []int) bool {
	n := len(idx)
	b.prio = resizeInts(b.prio, n)
	b.rank = resizeInts(b.rank, n)
	for i := 0; i < n; i++ {
		b.prio[i] = i
	}
	// Stable insertion sort on positions: strict-before moves keep
	// equal elements in input order, matching sort.SliceStable in
	// Priorities.
	for i := 1; i < n; i++ {
		p := b.prio[i]
		j := i
		for j > 0 && b.priorityBefore(idx[p], idx[b.prio[j-1]]) {
			b.prio[j] = b.prio[j-1]
			j--
		}
		b.prio[j] = p
	}
	for pos, i := range b.prio {
		b.rank[i] = pos
	}
	for i := 0; i < n; i++ {
		if !b.taskSchedulable(idx, i) {
			return false
		}
	}
	return true
}

// priorityBefore reports whether task a strictly precedes task b in
// the deadline-monotonic order: shorter period first, ties toward the
// higher criticality, then the smaller ID (the Priorities comparison).
//
//mc:allocfree three comparisons
func (b *Backend) priorityBefore(a, c int) bool {
	ta, tc := &b.ts.Tasks[a], &b.ts.Tasks[c]
	//lint:ignore mclint/floateq deliberately exact: an epsilon here would break the strict weak ordering the sort contract requires
	if ta.Period != tc.Period {
		return ta.Period < tc.Period
	}
	if ta.Crit != tc.Crit {
		return ta.Crit > tc.Crit
	}
	return ta.ID < tc.ID
}

// taskSchedulable checks the applicable AMC-rtb bounds of the task at
// position i of idx, in the order analyzeTask derives them: LO for
// everyone, then stable HI and the transition bound for
// high-criticality tasks. Early exits are verdict-equivalent — each
// fixed point depends only on task parameters and (for the transition
// bound) the task's own LO response, never on another task's verdict.
//
//mc:allocfree three closure-free fixed points
func (b *Backend) taskSchedulable(idx []int, i int) bool {
	t := &b.ts.Tasks[idx[i]]
	deadline := t.Period
	lo := b.loResponse(idx, i, deadline)
	if lo > deadline+Eps {
		return false
	}
	if t.Crit < 2 {
		return true
	}
	if b.hiResponse(idx, i, deadline) > deadline+Eps {
		return false
	}
	return b.transitionResponse(idx, i, deadline, lo) <= deadline+Eps
}

// loResponse is the LO-mode fixed point of analyzeTask (everyone
// interferes with level-1 budgets), inlined without the closure.
//
//mc:allocfree arithmetic over the prepared set
func (b *Backend) loResponse(idx []int, i int, bound float64) float64 {
	ts := b.ts
	t := &ts.Tasks[idx[i]]
	r := t.C(1)
	for iter := 0; iter < maxIterations; iter++ {
		demand := t.C(1)
		for j := range idx {
			if j != i && b.rank[j] < b.rank[i] {
				demand += math.Ceil((r-Eps)/ts.Tasks[idx[j]].Period) * ts.Tasks[idx[j]].C(1)
			}
		}
		if demand <= r+Eps || demand > bound+Eps {
			return demand
		}
		r = demand
	}
	return math.Inf(1)
}

// hiResponse is the stable HI-mode fixed point (only high-criticality
// tasks interfere, at level-2 budgets).
//
//mc:allocfree arithmetic over the prepared set
func (b *Backend) hiResponse(idx []int, i int, bound float64) float64 {
	ts := b.ts
	t := &ts.Tasks[idx[i]]
	r := t.C(2)
	for iter := 0; iter < maxIterations; iter++ {
		demand := t.C(2)
		for j := range idx {
			if j != i && b.rank[j] < b.rank[i] && ts.Tasks[idx[j]].Crit >= 2 {
				demand += math.Ceil((r-Eps)/ts.Tasks[idx[j]].Period) * ts.Tasks[idx[j]].C(2)
			}
		}
		if demand <= r+Eps || demand > bound+Eps {
			return demand
		}
		r = demand
	}
	return math.Inf(1)
}

// transitionResponse is the AMC-rtb LO->HI fixed point: HI
// interference at level-2 budgets over the whole window, LO
// interference at level-1 budgets frozen at the task's own LO-mode
// response loR.
//
//mc:allocfree arithmetic over the prepared set
func (b *Backend) transitionResponse(idx []int, i int, bound, loR float64) float64 {
	ts := b.ts
	t := &ts.Tasks[idx[i]]
	r := t.C(2)
	for iter := 0; iter < maxIterations; iter++ {
		demand := t.C(2)
		for j := range idx {
			if j == i || b.rank[j] >= b.rank[i] {
				continue
			}
			if ts.Tasks[idx[j]].Crit >= 2 {
				demand += math.Ceil((r-Eps)/ts.Tasks[idx[j]].Period) * ts.Tasks[idx[j]].C(2)
			} else {
				demand += math.Ceil((loR-Eps)/ts.Tasks[idx[j]].Period) * ts.Tasks[idx[j]].C(1)
			}
		}
		if demand <= r+Eps || demand > bound+Eps {
			return demand
		}
		r = demand
	}
	return math.Inf(1)
}

//mc:allocfree amortized: reallocates only on growth
func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// Partition allocates a dual-criticality task set onto m cores under
// partitioned fixed-priority AMC scheduling: the unified allocator of
// internal/partition running atop the AMC-rtb backend. All five
// schemes are supported, including CA-TPA (see Backend for how its
// probe metric degenerates).
//
// The result reuses partition.Result; core utilizations are the Eq. 4
// own-level loads (a response-time analysis has no single utilization
// figure), so FeasibleK and Lambda are not populated.
func Partition(ts *mc.TaskSet, m int, scheme partition.Scheme) (*partition.Result, error) {
	if maxCrit := ts.MaxCrit(); maxCrit > 2 {
		return nil, fmt.Errorf("fpamc: task set has criticality %d; AMC-rtb partitioning is dual-criticality", maxCrit)
	}
	if m < 1 {
		return nil, fmt.Errorf("fpamc: invalid core count %d", m)
	}
	switch scheme {
	case partition.WFD, partition.FFD, partition.BFD, partition.Hybrid, partition.CATPA:
	default:
		return nil, fmt.Errorf("fpamc: unsupported scheme %v", scheme)
	}
	return partition.NewWithBackend(m, 2, &Backend{}).Run(ts, scheme, nil), nil
}
