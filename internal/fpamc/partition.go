package fpamc

import (
	"fmt"
	"math"

	"catpa/internal/mc"
	"catpa/internal/partition"
)

// Partition allocates a dual-criticality task set onto m cores under
// partitioned fixed-priority AMC scheduling, using the classical
// decreasing-utilization heuristics with the AMC-rtb schedulability
// test (Kelly, Aydin, Zhao style). Supported schemes: WFD, FFD, BFD
// and Hybrid (CA-TPA is EDF-VD-specific — its core-utilization metric
// has no fixed-priority counterpart).
//
// The result reuses partition.Result; core utilizations are the Eq. 4
// own-level loads (a response-time analysis has no single utilization
// figure), so only Feasible, Assignment, Cores[i].Tasks and
// Cores[i].OwnLevelLoad are meaningful.
func Partition(ts *mc.TaskSet, m int, scheme partition.Scheme) (*partition.Result, error) {
	if maxCrit := ts.MaxCrit(); maxCrit > 2 {
		return nil, fmt.Errorf("fpamc: task set has criticality %d; AMC-rtb partitioning is dual-criticality", maxCrit)
	}
	if m < 1 {
		return nil, fmt.Errorf("fpamc: invalid core count %d", m)
	}
	var order []int
	switch scheme {
	case partition.WFD, partition.FFD, partition.BFD, partition.Hybrid:
		order = mc.SortByMaxUtil(ts)
	default:
		return nil, fmt.Errorf("fpamc: unsupported scheme %v", scheme)
	}

	cores := make([][]mc.Task, m)
	taskIdx := make([][]int, m)
	loads := make([]float64, m)
	assign := make([]int, ts.Len())
	for i := range assign {
		assign[i] = -1
	}

	place := func(ti int) bool {
		t := &ts.Tasks[ti]
		pick, hybridScheme := -1, scheme
		if scheme == partition.Hybrid {
			if t.Crit >= 2 {
				hybridScheme = partition.WFD
			} else {
				hybridScheme = partition.FFD
			}
		}
		var pickLoad float64
		for c := 0; c < m; c++ {
			if !fits(cores[c], t) {
				continue
			}
			switch hybridScheme {
			case partition.FFD:
				pick = c
			case partition.BFD:
				if pick < 0 || loads[c] > pickLoad+Eps {
					pick, pickLoad = c, loads[c]
				}
				continue
			case partition.WFD:
				if pick < 0 || loads[c] < pickLoad-Eps {
					pick, pickLoad = c, loads[c]
				}
				continue
			}
			if pick >= 0 && hybridScheme == partition.FFD {
				break
			}
		}
		if pick < 0 {
			return false
		}
		cores[pick] = append(cores[pick], t.Clone())
		taskIdx[pick] = append(taskIdx[pick], ti)
		loads[pick] += t.MaxUtil()
		assign[ti] = pick
		return true
	}

	run := func(filter func(*mc.Task) bool) int {
		for _, ti := range order {
			if !filter(&ts.Tasks[ti]) {
				continue
			}
			if !place(ti) {
				return ti
			}
		}
		return -1
	}

	failed := -1
	if scheme == partition.Hybrid {
		if failed = run(func(t *mc.Task) bool { return t.Crit >= 2 }); failed < 0 {
			failed = run(func(t *mc.Task) bool { return t.Crit < 2 })
		}
	} else {
		failed = run(func(*mc.Task) bool { return true })
	}

	res := &partition.Result{
		Scheme:     scheme,
		M:          m,
		K:          2,
		Feasible:   failed < 0,
		Assignment: assign,
		FailedTask: failed,
		Cores:      make([]partition.CoreInfo, m),
	}
	for c := 0; c < m; c++ {
		res.Cores[c] = partition.CoreInfo{
			Tasks:        taskIdx[c],
			Util:         loads[c],
			OwnLevelLoad: loads[c],
		}
	}
	finishMetrics(res)
	return res, nil
}

// fits reports whether the subset plus the candidate passes AMC-rtb.
func fits(subset []mc.Task, t *mc.Task) bool {
	trial := make([]mc.Task, 0, len(subset)+1)
	trial = append(trial, subset...)
	trial = append(trial, *t)
	return Schedulable(trial)
}

// finishMetrics fills Usys/Uavg/Imbalance from the own-level loads.
func finishMetrics(r *partition.Result) {
	if len(r.Cores) == 0 {
		return
	}
	maxU, minU, sum := math.Inf(-1), math.Inf(1), 0.0
	for i := range r.Cores {
		u := r.Cores[i].Util
		sum += u
		if u > maxU {
			maxU = u
		}
		if u < minU {
			minU = u
		}
	}
	r.Usys = maxU
	r.Uavg = sum / float64(len(r.Cores))
	if maxU > Eps {
		r.Imbalance = (maxU - minU) / maxU
	}
}
