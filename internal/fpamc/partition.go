package fpamc

import (
	"fmt"
	"math"

	"catpa/internal/mc"
	"catpa/internal/partition"
)

// BackendName is the registry name of the AMC-rtb analysis backend.
const BackendName = "amcrtb"

func init() {
	partition.RegisterBackend(BackendName, func() partition.Backend { return &Backend{} })
}

// Backend adapts the AMC-rtb response-time analysis to the allocator's
// per-core schedulability protocol, so every heuristic — including
// CA-TPA, which the old fixed-priority shells never supported — runs
// atop partitioned fixed-priority AMC through the one allocation shell
// in internal/partition.
//
// A response-time analysis has no single utilization figure, so the
// core-utilization metric this backend reports (ProbeUtil, CoreUtil,
// reflected into CoreInfo.Util) is the Eq. 4 own-level load
// sum MaxUtil — exactly what the deleted fpamc.Partition shells
// reported. That makes the probe increment core-independent (always
// the candidate's MaxUtil), so CA-TPA's minimum-increment search
// degenerates to first-feasible under its contribution ordering; the
// ordering itself and the imbalance fallback remain active (see
// DESIGN.md Section 11). Unlike the EDF-VD backend, the RTA fixed
// points iterate over a trial task slice, so probes are cheap but not
// allocation-free in the general case (the trial buffer is reused and
// only grows).
type Backend struct {
	m  int
	ts *mc.TaskSet

	cores [][]mc.Task // per-core placed subsets, in allocation order
	loads []float64   // per-core Eq. 4 own-level load (sum MaxUtil)
	trial []mc.Task   // reusable probe buffer for Schedulable
}

// Name implements partition.Backend.
func (b *Backend) Name() string { return BackendName }

// MaxLevels implements partition.Backend: AMC is dual-criticality.
func (b *Backend) MaxLevels() int { return 2 }

// Reset implements partition.Backend.
func (b *Backend) Reset(m, k int) {
	b.m = m
	if cap(b.cores) < m {
		cores := make([][]mc.Task, m)
		copy(cores, b.cores)
		b.cores = cores
	} else {
		b.cores = b.cores[:m]
	}
	if cap(b.loads) < m {
		b.loads = make([]float64, m)
	} else {
		b.loads = b.loads[:m]
	}
}

// Prepare implements partition.Backend.
func (b *Backend) Prepare(ts *mc.TaskSet) { b.ts = ts }

// Begin implements partition.Backend.
func (b *Backend) Begin() {
	for c := 0; c < b.m; c++ {
		b.cores[c] = b.cores[c][:0]
		b.loads[c] = 0
	}
}

// FeasibleWith implements partition.Backend: it reports whether core
// c's subset plus task ti passes the AMC-rtb response-time test
// (Eqs. rtb-LO/rtb-HI), the fixed-priority counterpart of the
// Theorem-1 screens.
func (b *Backend) FeasibleWith(c, ti int) bool {
	b.trial = append(b.trial[:0], b.cores[c]...)
	b.trial = append(b.trial, b.ts.Tasks[ti])
	return Schedulable(b.trial)
}

// ProbeUtil implements partition.Backend: the own-level load of core c
// with task ti added, +Inf when the extended subset fails AMC-rtb.
// The worst flag is ignored — the load metric has only one reading.
func (b *Backend) ProbeUtil(c, ti int, worst bool) float64 {
	if !b.FeasibleWith(c, ti) {
		return math.Inf(1)
	}
	return b.loads[c] + b.ts.Tasks[ti].MaxUtil()
}

// KeepProbe implements partition.Backend. Probes carry no analysis
// state worth caching — Place recomputes the load sum exactly.
func (b *Backend) KeepProbe() {}

// UtilFloor implements partition.Backend: the load metric is exact
// whenever the probe is feasible, so the floor is the probe value
// itself (without the feasibility check).
func (b *Backend) UtilFloor(c, ti int) float64 {
	return b.loads[c] + b.ts.Tasks[ti].MaxUtil()
}

// Place implements partition.Backend.
func (b *Backend) Place(c, ti int, probed bool) {
	b.cores[c] = append(b.cores[c], b.ts.Tasks[ti].Clone())
	b.loads[c] += b.ts.Tasks[ti].MaxUtil()
}

// OwnLoad implements partition.Backend.
func (b *Backend) OwnLoad(c int) float64 { return b.loads[c] }

// CoreUtil implements partition.Backend; worst is ignored (one
// reading, see ProbeUtil).
func (b *Backend) CoreUtil(c int, worst bool) float64 { return b.loads[c] }

// ReportInto implements partition.Backend. FeasibleK and Lambda are
// EDF-VD notions with no AMC counterpart; they stay zero and empty.
func (b *Backend) ReportInto(c int, ci *partition.CoreInfo) {
	ci.Util = b.loads[c]
	ci.FeasibleK = 0
	ci.Lambda = ci.Lambda[:0]
}

// Partition allocates a dual-criticality task set onto m cores under
// partitioned fixed-priority AMC scheduling: the unified allocator of
// internal/partition running atop the AMC-rtb backend. All five
// schemes are supported, including CA-TPA (see Backend for how its
// probe metric degenerates).
//
// The result reuses partition.Result; core utilizations are the Eq. 4
// own-level loads (a response-time analysis has no single utilization
// figure), so FeasibleK and Lambda are not populated.
func Partition(ts *mc.TaskSet, m int, scheme partition.Scheme) (*partition.Result, error) {
	if maxCrit := ts.MaxCrit(); maxCrit > 2 {
		return nil, fmt.Errorf("fpamc: task set has criticality %d; AMC-rtb partitioning is dual-criticality", maxCrit)
	}
	if m < 1 {
		return nil, fmt.Errorf("fpamc: invalid core count %d", m)
	}
	switch scheme {
	case partition.WFD, partition.FFD, partition.BFD, partition.Hybrid, partition.CATPA:
	default:
		return nil, fmt.Errorf("fpamc: unsupported scheme %v", scheme)
	}
	return partition.NewWithBackend(m, 2, &Backend{}).Run(ts, scheme, nil), nil
}
