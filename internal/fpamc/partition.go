package fpamc

import (
	"fmt"
	"math"

	"catpa/internal/mc"
	"catpa/internal/partition"
)

// BackendName is the registry name of the AMC-rtb analysis backend.
const BackendName = "amcrtb"

func init() {
	partition.RegisterBackend(BackendName, func() partition.Backend { return &Backend{} })
}

// Backend adapts the AMC-rtb response-time analysis to the allocator's
// per-core schedulability protocol, so every heuristic — including
// CA-TPA, which the old fixed-priority shells never supported — runs
// atop partitioned fixed-priority AMC through the one allocation shell
// in internal/partition.
//
// A response-time analysis has no single utilization figure, so the
// core-utilization metric this backend reports (ProbeUtil, CoreUtil,
// reflected into CoreInfo.Util) is the Eq. 4 own-level load
// sum MaxUtil — exactly what the deleted fpamc.Partition shells
// reported. That makes the probe increment core-independent (always
// the candidate's MaxUtil), so CA-TPA's minimum-increment search
// degenerates to first-feasible under its contribution ordering; the
// ordering itself and the imbalance fallback remain active (see
// DESIGN.md Section 11).
//
// Incremental delta state (DESIGN.md Section 14). Each core caches its
// committed deadline-monotonic ranks and the exact AMC-rtb fixed-point
// responses (LO, stable HI, LO->HI transition) of every committed
// task. A probe then touches only the tasks the candidate can affect:
// committed tasks of higher priority than the candidate keep their
// stored responses untouched (their interference sets are unchanged,
// so the stored values are bitwise what a recompute would produce),
// the candidate runs cold fixed points over its higher-priority
// committed set, and lower-priority tasks re-run their fixed points
// warm-started from the stored responses — sound because adding an
// interferer only grows each demand sum, so the stored response stays
// a lower bound of the new least fixed point.
//
// Warm starts preserve bit-identity with the cold batch arithmetic
// only when every fixed point plateaus exactly — each non-final
// iteration grows the demand by at least one whole level-1 budget —
// and the cold iteration count provably stays under maxIterations, so
// the iteration cap cannot produce a verdict the warm path would
// miss. Prepare checks both conditions (warmOK); when either fails,
// probes fall back to cold recomputation, which is trivially identical
// to the batch path. Removal breaks the monotone-climb argument in the
// other direction (responses shrink), so Remove always takes the
// exact-recompute fallback: the core is marked dirty and the next
// query rebuilds ranks, loads and responses cold from the surviving
// members in placement order. Reanalyze forces that same rebuild
// unconditionally — the reference path the differential gates compare
// the incremental path against.
//
// Every verdict remains identical to Schedulable on the corresponding
// task slice: the demand sums run in the same trial-index order (the
// committed placement order with the candidate appended last) with the
// same float operations, warm and cold fixed points meet in the same
// least fixed point bit-for-bit under warmOK, and a task is only ever
// skipped when its inputs are unchanged since its last recompute. The
// differential tests in backend_diff_test.go and the
// FuzzIncrementalAgreement gate in internal/partition check this on
// random subsets and random placement histories.
type Backend struct {
	m  int
	ts *mc.TaskSet

	cores [][]int   // per-core placed task indices, in allocation order
	loads []float64 // per-core Eq. 4 own-level load (sum MaxUtil)

	// Committed incremental state, all aligned with cores[c]:
	// deadline-monotonic rank of each committed task within its core,
	// and the exact fixed-point responses its last (re)computation
	// produced. rHI/rTR are meaningful only for high-criticality tasks.
	ranks [][]int
	rLO   [][]float64
	rHI   [][]float64
	rTR   [][]float64
	dirty []bool // core must be rebuilt cold before the next query
	allOK []bool // every committed task met its deadline bound

	// warmOK gates the warm-start path: true when every fixed point
	// over the prepared set plateaus exactly and converges under the
	// iteration cap, so warm and cold arithmetic are bitwise equal.
	warmOK bool

	// Probe scratch: the most recent feasible probe's candidate
	// responses plus the recomputed lower-priority responses (aligned
	// with cores[pCore]); valid while pOK and no commit intervened.
	pCore, pTask, pPos int
	pcLO, pcHI, pcTR   float64
	pLO, pHI, pTR      []float64
	pOK                bool

	// KeepProbe buffer: a copy of the probe scratch for the winning
	// candidate, committed by the next probed Place.
	kCore, kTask, kPos int
	kcLO, kcHI, kcTR   float64
	kLO, kHI, kTR      []float64
	kOK                bool

	// Batch scratch for schedulable (the verdict-only reference used
	// by the differential tests) and for ensure's rank rebuild.
	trial []int
	prio  []int
	rank  []int
}

// Name implements partition.Backend.
//
//mc:allocfree constant
func (b *Backend) Name() string { return BackendName }

// MaxLevels implements partition.Backend: AMC is dual-criticality.
//
//mc:allocfree constant
func (b *Backend) MaxLevels() int { return 2 }

// Reset implements partition.Backend.
func (b *Backend) Reset(m, k int) {
	b.m = m
	if cap(b.cores) < m {
		cores := make([][]int, m)
		copy(cores, b.cores)
		b.cores = cores
	} else {
		b.cores = b.cores[:m]
	}
	if cap(b.ranks) < m {
		ranks := make([][]int, m)
		copy(ranks, b.ranks)
		b.ranks = ranks
	} else {
		b.ranks = b.ranks[:m]
	}
	if cap(b.rLO) < m {
		rLO := make([][]float64, m)
		copy(rLO, b.rLO)
		b.rLO = rLO
	} else {
		b.rLO = b.rLO[:m]
	}
	if cap(b.rHI) < m {
		rHI := make([][]float64, m)
		copy(rHI, b.rHI)
		b.rHI = rHI
	} else {
		b.rHI = b.rHI[:m]
	}
	if cap(b.rTR) < m {
		rTR := make([][]float64, m)
		copy(rTR, b.rTR)
		b.rTR = rTR
	} else {
		b.rTR = b.rTR[:m]
	}
	b.loads = resizeFloats(b.loads, m)
	b.dirty = resizeBools(b.dirty, m)
	b.allOK = resizeBools(b.allOK, m)
	b.pOK, b.kOK = false, false
}

// Prepare implements partition.Backend. Beyond installing the set it
// decides whether warm-started fixed points are bitwise safe (see the
// type comment): every non-final iteration of a demand recursion grows
// the demand by at least one whole level-1 budget, so when the
// smallest budget clears the epsilon band the convergence test
// "demand <= r+Eps" only fires on an exact fixed point, and
// maxP/minC+8 bounds the cold iteration count away from the cap.
//
//mc:allocfree scans the prepared set
func (b *Backend) Prepare(ts *mc.TaskSet) {
	b.ts = ts
	b.pOK, b.kOK = false, false
	minC := math.Inf(1)
	maxP := 0.0
	for i := range ts.Tasks {
		if c := ts.Tasks[i].C(1); c < minC {
			minC = c
		}
		if p := ts.Tasks[i].Period; p > maxP {
			maxP = p
		}
	}
	b.warmOK = ts.Len() > 0 && minC > 2*Eps && maxP/minC+8 < float64(maxIterations)
}

// Begin implements partition.Backend.
//
//mc:allocfree truncates per-core state in place
func (b *Backend) Begin() {
	for c := 0; c < b.m; c++ {
		b.cores[c] = b.cores[c][:0]
		b.ranks[c] = b.ranks[c][:0]
		b.rLO[c] = b.rLO[c][:0]
		b.rHI[c] = b.rHI[c][:0]
		b.rTR[c] = b.rTR[c][:0]
		b.loads[c] = 0
		b.dirty[c] = false
		b.allOK[c] = true
	}
	b.pOK, b.kOK = false, false
}

// ensure rebuilds core c's incremental state cold from the committed
// members — the exact-recompute fallback after a removal or a forced
// infeasible placement. Ranks come from the same stable insertion sort
// the batch path uses, loads re-accumulate in placement order, and
// every response re-runs its fixed point cold, reproducing bitwise the
// values the incremental commits would have left (see the type
// comment for why warm and cold meet in the same bits).
//
//mc:allocfree inlineable guard around the rebuild
func (b *Backend) ensure(c int) {
	if b.dirty[c] {
		b.rebuild(c)
	}
}

// rebuild is ensure's slow path, split out so the clean-path guard
// inlines into every query.
//
//mc:allocfree rebuilds into amortized per-core storage
func (b *Backend) rebuild(c int) {
	mem := b.cores[c]
	n := len(mem)
	b.ranks[c] = resizeInts(b.ranks[c], n)
	b.rLO[c] = resizeFloats(b.rLO[c], n)
	b.rHI[c] = resizeFloats(b.rHI[c], n)
	b.rTR[c] = resizeFloats(b.rTR[c], n)
	b.prio = resizeInts(b.prio, n)
	for i := 0; i < n; i++ {
		b.prio[i] = i
	}
	for i := 1; i < n; i++ {
		p := b.prio[i]
		j := i
		for j > 0 && b.priorityBefore(mem[p], mem[b.prio[j-1]]) {
			b.prio[j] = b.prio[j-1]
			j--
		}
		b.prio[j] = p
	}
	for pos, i := range b.prio {
		b.ranks[c][i] = pos
	}
	load := 0.0
	for _, t := range mem {
		load += b.ts.Tasks[t].MaxUtil()
	}
	b.loads[c] = load
	ok := true
	for j := 0; j < n; j++ {
		t := &b.ts.Tasks[mem[j]]
		deadline := t.Period
		lo := b.coreLo(c, t, b.ranks[c][j], -1, t.C(1), deadline)
		b.rLO[c][j] = lo
		if lo > deadline+Eps {
			ok = false
		}
		if t.Crit >= 2 {
			hi := b.coreHi(c, t, b.ranks[c][j], -1, t.C(2), deadline)
			b.rHI[c][j] = hi
			if hi > deadline+Eps {
				ok = false
			}
			tr := b.coreTr(c, t, b.ranks[c][j], -1, lo, t.C(2), deadline)
			b.rTR[c][j] = tr
			if tr > deadline+Eps {
				ok = false
			}
		}
	}
	b.allOK[c] = ok
	b.dirty[c] = false
}

// probe is the incremental feasibility test of core c plus candidate
// ti. It fills the probe scratch with everything a commit needs: the
// candidate's rank and cold responses, and the warm-recomputed
// responses of every committed task the candidate outranks.
// Higher-priority committed tasks are skipped — their interference
// sets are unchanged, so their stored responses and verdicts stand.
//
//mc:allocfree fixed points over cached state into reusable scratch
func (b *Backend) probe(c, ti int) bool {
	b.ensure(c)
	b.pOK = false
	if !b.allOK[c] {
		return false
	}
	ts := b.ts
	t := &ts.Tasks[ti]
	mem := b.cores[c]
	n := len(mem)
	pos := 0
	for _, tj := range mem {
		if b.priorityBefore(tj, ti) {
			pos++
		}
	}
	deadline := t.Period
	cLO := b.coreLo(c, t, pos, -1, t.C(1), deadline)
	if cLO > deadline+Eps {
		return false
	}
	var cHI, cTR float64
	candHI := t.Crit >= 2
	if candHI {
		cHI = b.coreHi(c, t, pos, -1, t.C(2), deadline)
		if cHI > deadline+Eps {
			return false
		}
		cTR = b.coreTr(c, t, pos, -1, cLO, t.C(2), deadline)
		if cTR > deadline+Eps {
			return false
		}
	}
	b.pLO = resizeFloats(b.pLO, n)
	b.pHI = resizeFloats(b.pHI, n)
	b.pTR = resizeFloats(b.pTR, n)
	for j := 0; j < n; j++ {
		if b.ranks[c][j] < pos {
			continue
		}
		tj := &ts.Tasks[mem[j]]
		dj := tj.Period
		seed := tj.C(1)
		if b.warmOK {
			seed = b.rLO[c][j]
		}
		nLO := b.coreLo(c, tj, b.ranks[c][j], ti, seed, dj)
		if nLO > dj+Eps {
			return false
		}
		b.pLO[j] = nLO
		if tj.Crit >= 2 {
			nHI := b.rHI[c][j]
			if candHI {
				seed = tj.C(2)
				if b.warmOK {
					seed = b.rHI[c][j]
				}
				nHI = b.coreHi(c, tj, b.ranks[c][j], ti, seed, dj)
				if nHI > dj+Eps {
					return false
				}
			}
			b.pHI[j] = nHI
			seed = tj.C(2)
			if b.warmOK {
				seed = b.rTR[c][j]
			}
			nTR := b.coreTr(c, tj, b.ranks[c][j], ti, nLO, seed, dj)
			if nTR > dj+Eps {
				return false
			}
			b.pTR[j] = nTR
		}
	}
	b.pCore, b.pTask, b.pPos = c, ti, pos
	b.pcLO, b.pcHI, b.pcTR = cLO, cHI, cTR
	b.pOK = true
	return true
}

// commit installs a successful probe's analysis as core c's committed
// state: lower-priority ranks shift down by one, their recomputed
// responses replace the stored ones, and the candidate appends with
// its rank and cold responses.
//
//mc:allocfree per-core lists grow amortized
func (b *Backend) commit(c, ti, pos int, cLO, cHI, cTR float64, lo, hi, tr []float64) {
	ts := b.ts
	candHI := ts.Tasks[ti].Crit >= 2
	mem := b.cores[c]
	for j := range mem {
		if b.ranks[c][j] < pos {
			continue
		}
		b.ranks[c][j]++
		b.rLO[c][j] = lo[j]
		if ts.Tasks[mem[j]].Crit >= 2 {
			if candHI {
				b.rHI[c][j] = hi[j]
			}
			b.rTR[c][j] = tr[j]
		}
	}
	b.cores[c] = append(b.cores[c], ti)
	b.ranks[c] = append(b.ranks[c], pos)
	b.rLO[c] = append(b.rLO[c], cLO)
	b.rHI[c] = append(b.rHI[c], cHI)
	b.rTR[c] = append(b.rTR[c], cTR)
	b.loads[c] += ts.Tasks[ti].MaxUtil()
	b.pOK, b.kOK = false, false
}

// FeasibleWith implements partition.Backend: it reports whether core
// c's subset plus task ti passes the AMC-rtb response-time test
// (Eqs. rtb-LO/rtb-HI), the fixed-priority counterpart of the
// Theorem-1 screens — answered incrementally from the cached committed
// responses.
//
//mc:allocfree delegates to the scratch-based incremental probe
func (b *Backend) FeasibleWith(c, ti int) bool {
	return b.probe(c, ti)
}

// ProbeUtil implements partition.Backend: the own-level load of core c
// with task ti added, +Inf when the extended subset fails AMC-rtb.
// The worst flag is ignored — the load metric has only one reading.
//
//mc:allocfree delegates to the scratch-based incremental probe
func (b *Backend) ProbeUtil(c, ti int, worst bool) float64 {
	if !b.probe(c, ti) {
		return math.Inf(1)
	}
	return b.loads[c] + b.ts.Tasks[ti].MaxUtil()
}

// KeepProbe implements partition.Backend: it snapshots the most recent
// probe's analysis so a later probed Place can commit it even after
// probes of other cores have overwritten the live scratch.
//
//mc:allocfree copies into amortized keep buffers
func (b *Backend) KeepProbe() {
	if !b.pOK {
		b.kOK = false
		return
	}
	b.kCore, b.kTask, b.kPos = b.pCore, b.pTask, b.pPos
	b.kcLO, b.kcHI, b.kcTR = b.pcLO, b.pcHI, b.pcTR
	b.kLO = append(b.kLO[:0], b.pLO...)
	b.kHI = append(b.kHI[:0], b.pHI...)
	b.kTR = append(b.kTR[:0], b.pTR...)
	b.kOK = true
}

// UtilFloor implements partition.Backend: the load metric is exact
// whenever the probe is feasible, so the floor is the probe value
// itself (without the feasibility check).
//
//mc:allocfree two reads and an add
func (b *Backend) UtilFloor(c, ti int) float64 {
	return b.loads[c] + b.ts.Tasks[ti].MaxUtil()
}

// Place implements partition.Backend. A placement that matches the
// kept (probed) or live probe scratch commits that analysis directly —
// the delta the screen loops already paid for; any other placement
// re-probes first. Forcing an infeasible task onto a core records it
// and schedules the exact-recompute fallback, which marks the core
// unschedulable for every later probe (matching the batch path, where
// any subset containing the infeasible member fails).
//
//mc:allocfree commits from scratch or marks the core for rebuild
func (b *Backend) Place(c, ti int, probed bool) {
	if probed && b.kOK && b.kCore == c && b.kTask == ti {
		b.commit(c, ti, b.kPos, b.kcLO, b.kcHI, b.kcTR, b.kLO, b.kHI, b.kTR)
		return
	}
	if b.pOK && b.pCore == c && b.pTask == ti {
		b.commit(c, ti, b.pPos, b.pcLO, b.pcHI, b.pcTR, b.pLO, b.pHI, b.pTR)
		return
	}
	if b.probe(c, ti) {
		b.commit(c, ti, b.pPos, b.pcLO, b.pcHI, b.pcTR, b.pLO, b.pHI, b.pTR)
		return
	}
	b.cores[c] = append(b.cores[c], ti)
	b.loads[c] += b.ts.Tasks[ti].MaxUtil()
	b.dirty[c] = true
	b.pOK, b.kOK = false, false
}

// Remove implements partition.Backend. Removal shrinks every affected
// demand sum, which breaks the monotone-climb argument warm starts
// rely on, so the backend always takes the exact-recompute fallback:
// delete the member, mark the core, and let the next query rebuild
// cold in placement order.
//
//mc:allocfree in-place delete and a dirty mark; panic path exempt
func (b *Backend) Remove(c, ti int) {
	b.pOK, b.kOK = false, false
	mem := b.cores[c]
	for i, t := range mem {
		if t == ti {
			copy(mem[i:], mem[i+1:])
			b.cores[c] = mem[:len(mem)-1]
			b.dirty[c] = true
			return
		}
	}
	panic(fmt.Sprintf("fpamc: Remove(%d, %d): task not committed on core", c, ti))
}

// Reanalyze implements partition.Backend: it discards core c's cached
// ranks and responses and rebuilds them cold from the committed
// members, unconditionally.
//
//mc:allocfree forces the cold rebuild
func (b *Backend) Reanalyze(c int) {
	b.dirty[c] = true
	b.pOK, b.kOK = false, false
	b.ensure(c)
}

// OwnLoad implements partition.Backend.
//
//mc:allocfree accessor behind the rebuild check
func (b *Backend) OwnLoad(c int) float64 {
	b.ensure(c)
	return b.loads[c]
}

// CoreUtil implements partition.Backend; worst is ignored (one
// reading, see ProbeUtil).
//
//mc:allocfree accessor behind the rebuild check
func (b *Backend) CoreUtil(c int, worst bool) float64 {
	b.ensure(c)
	return b.loads[c]
}

// ReportInto implements partition.Backend. FeasibleK and Lambda are
// EDF-VD notions with no AMC counterpart; they stay zero and empty.
//
//mc:allocfree fills the caller-owned CoreInfo in place
func (b *Backend) ReportInto(c int, ci *partition.CoreInfo) {
	b.ensure(c)
	ci.Util = b.loads[c]
	ci.FeasibleK = 0
	ci.Lambda = ci.Lambda[:0]
}

// coreLo is the LO-mode demand recursion over core c's committed
// members (everyone of higher priority interferes with level-1
// budgets, summed in placement order), plus candidate cand's term
// appended last when cand >= 0 — exactly the trial-index order the
// batch path uses, so warm and cold runs share every float operation.
//
//mc:allocfree arithmetic over cached per-core state
func (b *Backend) coreLo(c int, t *mc.Task, myRank, cand int, seed, bound float64) float64 {
	ts := b.ts
	mem := b.cores[c]
	ranks := b.ranks[c]
	r := seed
	for iter := 0; iter < maxIterations; iter++ {
		demand := t.C(1)
		for j, tj := range mem {
			if ranks[j] < myRank {
				demand += math.Ceil((r-Eps)/ts.Tasks[tj].Period) * ts.Tasks[tj].C(1)
			}
		}
		if cand >= 0 {
			demand += math.Ceil((r-Eps)/ts.Tasks[cand].Period) * ts.Tasks[cand].C(1)
		}
		if demand <= r+Eps || demand > bound+Eps {
			return demand
		}
		r = demand
	}
	return math.Inf(1)
}

// coreHi is the stable HI-mode demand recursion over core c (only
// high-criticality higher-priority members interfere, at level-2
// budgets); cand must be high-criticality when >= 0.
//
//mc:allocfree arithmetic over cached per-core state
func (b *Backend) coreHi(c int, t *mc.Task, myRank, cand int, seed, bound float64) float64 {
	ts := b.ts
	mem := b.cores[c]
	ranks := b.ranks[c]
	r := seed
	for iter := 0; iter < maxIterations; iter++ {
		demand := t.C(2)
		for j, tj := range mem {
			if ranks[j] < myRank && ts.Tasks[tj].Crit >= 2 {
				demand += math.Ceil((r-Eps)/ts.Tasks[tj].Period) * ts.Tasks[tj].C(2)
			}
		}
		if cand >= 0 {
			demand += math.Ceil((r-Eps)/ts.Tasks[cand].Period) * ts.Tasks[cand].C(2)
		}
		if demand <= r+Eps || demand > bound+Eps {
			return demand
		}
		r = demand
	}
	return math.Inf(1)
}

// coreTr is the AMC-rtb LO->HI transition recursion over core c: HI
// interference at level-2 budgets over the whole window, LO
// interference at level-1 budgets frozen at the task's own LO-mode
// response loR; candidate cand contributes whichever term its
// criticality selects, appended last.
//
//mc:allocfree arithmetic over cached per-core state
func (b *Backend) coreTr(c int, t *mc.Task, myRank, cand int, loR, seed, bound float64) float64 {
	ts := b.ts
	mem := b.cores[c]
	ranks := b.ranks[c]
	r := seed
	for iter := 0; iter < maxIterations; iter++ {
		demand := t.C(2)
		for j, tj := range mem {
			if ranks[j] >= myRank {
				continue
			}
			if ts.Tasks[tj].Crit >= 2 {
				demand += math.Ceil((r-Eps)/ts.Tasks[tj].Period) * ts.Tasks[tj].C(2)
			} else {
				demand += math.Ceil((loR-Eps)/ts.Tasks[tj].Period) * ts.Tasks[tj].C(1)
			}
		}
		if cand >= 0 {
			if ts.Tasks[cand].Crit >= 2 {
				demand += math.Ceil((r-Eps)/ts.Tasks[cand].Period) * ts.Tasks[cand].C(2)
			} else {
				demand += math.Ceil((loR-Eps)/ts.Tasks[cand].Period) * ts.Tasks[cand].C(1)
			}
		}
		if demand <= r+Eps || demand > bound+Eps {
			return demand
		}
		r = demand
	}
	return math.Inf(1)
}

// schedulable is the verdict-only AMC-rtb batch test over a subset
// given as task indices into the prepared set — the reference the
// incremental probe is differentially tested against. It reproduces
// Schedulable's verdict exactly — same priority order (a stable
// insertion sort with the Priorities comparison), same fixed points
// with the demand sums accumulated in the same index order — without
// building an Analysis.
//
//mc:allocfree order and rank live in reusable scratch
func (b *Backend) schedulable(idx []int) bool {
	n := len(idx)
	b.prio = resizeInts(b.prio, n)
	b.rank = resizeInts(b.rank, n)
	for i := 0; i < n; i++ {
		b.prio[i] = i
	}
	// Stable insertion sort on positions: strict-before moves keep
	// equal elements in input order, matching sort.SliceStable in
	// Priorities.
	for i := 1; i < n; i++ {
		p := b.prio[i]
		j := i
		for j > 0 && b.priorityBefore(idx[p], idx[b.prio[j-1]]) {
			b.prio[j] = b.prio[j-1]
			j--
		}
		b.prio[j] = p
	}
	for pos, i := range b.prio {
		b.rank[i] = pos
	}
	for i := 0; i < n; i++ {
		if !b.taskSchedulable(idx, i) {
			return false
		}
	}
	return true
}

// priorityBefore reports whether task a strictly precedes task b in
// the deadline-monotonic order: shorter period first, ties toward the
// higher criticality, then the smaller ID (the Priorities comparison).
//
//mc:allocfree three comparisons
func (b *Backend) priorityBefore(a, c int) bool {
	ta, tc := &b.ts.Tasks[a], &b.ts.Tasks[c]
	//lint:ignore mclint/floateq deliberately exact: an epsilon here would break the strict weak ordering the sort contract requires
	if ta.Period != tc.Period {
		return ta.Period < tc.Period
	}
	if ta.Crit != tc.Crit {
		return ta.Crit > tc.Crit
	}
	return ta.ID < tc.ID
}

// taskSchedulable checks the applicable AMC-rtb bounds of the task at
// position i of idx, in the order analyzeTask derives them: LO for
// everyone, then stable HI and the transition bound for
// high-criticality tasks. Early exits are verdict-equivalent — each
// fixed point depends only on task parameters and (for the transition
// bound) the task's own LO response, never on another task's verdict.
//
//mc:allocfree three closure-free fixed points
func (b *Backend) taskSchedulable(idx []int, i int) bool {
	t := &b.ts.Tasks[idx[i]]
	deadline := t.Period
	lo := b.loResponse(idx, i, deadline)
	if lo > deadline+Eps {
		return false
	}
	if t.Crit < 2 {
		return true
	}
	if b.hiResponse(idx, i, deadline) > deadline+Eps {
		return false
	}
	return b.transitionResponse(idx, i, deadline, lo) <= deadline+Eps
}

// loResponse is the LO-mode fixed point of analyzeTask (everyone
// interferes with level-1 budgets), inlined without the closure.
//
//mc:allocfree arithmetic over the prepared set
func (b *Backend) loResponse(idx []int, i int, bound float64) float64 {
	ts := b.ts
	t := &ts.Tasks[idx[i]]
	r := t.C(1)
	for iter := 0; iter < maxIterations; iter++ {
		demand := t.C(1)
		for j := range idx {
			if j != i && b.rank[j] < b.rank[i] {
				demand += math.Ceil((r-Eps)/ts.Tasks[idx[j]].Period) * ts.Tasks[idx[j]].C(1)
			}
		}
		if demand <= r+Eps || demand > bound+Eps {
			return demand
		}
		r = demand
	}
	return math.Inf(1)
}

// hiResponse is the stable HI-mode fixed point (only high-criticality
// tasks interfere, at level-2 budgets).
//
//mc:allocfree arithmetic over the prepared set
func (b *Backend) hiResponse(idx []int, i int, bound float64) float64 {
	ts := b.ts
	t := &ts.Tasks[idx[i]]
	r := t.C(2)
	for iter := 0; iter < maxIterations; iter++ {
		demand := t.C(2)
		for j := range idx {
			if j != i && b.rank[j] < b.rank[i] && ts.Tasks[idx[j]].Crit >= 2 {
				demand += math.Ceil((r-Eps)/ts.Tasks[idx[j]].Period) * ts.Tasks[idx[j]].C(2)
			}
		}
		if demand <= r+Eps || demand > bound+Eps {
			return demand
		}
		r = demand
	}
	return math.Inf(1)
}

// transitionResponse is the AMC-rtb LO->HI fixed point: HI
// interference at level-2 budgets over the whole window, LO
// interference at level-1 budgets frozen at the task's own LO-mode
// response loR.
//
//mc:allocfree arithmetic over the prepared set
func (b *Backend) transitionResponse(idx []int, i int, bound, loR float64) float64 {
	ts := b.ts
	t := &ts.Tasks[idx[i]]
	r := t.C(2)
	for iter := 0; iter < maxIterations; iter++ {
		demand := t.C(2)
		for j := range idx {
			if j == i || b.rank[j] >= b.rank[i] {
				continue
			}
			if ts.Tasks[idx[j]].Crit >= 2 {
				demand += math.Ceil((r-Eps)/ts.Tasks[idx[j]].Period) * ts.Tasks[idx[j]].C(2)
			} else {
				demand += math.Ceil((loR-Eps)/ts.Tasks[idx[j]].Period) * ts.Tasks[idx[j]].C(1)
			}
		}
		if demand <= r+Eps || demand > bound+Eps {
			return demand
		}
		r = demand
	}
	return math.Inf(1)
}

//mc:allocfree amortized: reallocates only on growth
func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

//mc:allocfree amortized: reallocates only on growth
func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

//mc:allocfree amortized: reallocates only on growth
func resizeBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// Partition allocates a dual-criticality task set onto m cores under
// partitioned fixed-priority AMC scheduling: the unified allocator of
// internal/partition running atop the AMC-rtb backend. All five
// schemes are supported, including CA-TPA (see Backend for how its
// probe metric degenerates).
//
// The result reuses partition.Result; core utilizations are the Eq. 4
// own-level loads (a response-time analysis has no single utilization
// figure), so FeasibleK and Lambda are not populated.
func Partition(ts *mc.TaskSet, m int, scheme partition.Scheme) (*partition.Result, error) {
	if maxCrit := ts.MaxCrit(); maxCrit > 2 {
		return nil, fmt.Errorf("fpamc: task set has criticality %d; AMC-rtb partitioning is dual-criticality", maxCrit)
	}
	if m < 1 {
		return nil, fmt.Errorf("fpamc: invalid core count %d", m)
	}
	switch scheme {
	case partition.WFD, partition.FFD, partition.BFD, partition.Hybrid, partition.CATPA:
	default:
		return nil, fmt.Errorf("fpamc: unsupported scheme %v", scheme)
	}
	return partition.NewWithBackend(m, 2, &Backend{}).Run(ts, scheme, nil), nil
}
