package lint

import "go/types"

// Facts is the cross-pass, module-wide fact store of one Runner.Run.
// Facts key directly on types.Object: the loader type-checks
// module-internal dependencies from source through one shared
// importer, so the object a pass sees for mc.SortByMaxUtilInto inside
// internal/partition is identical to the one the mc package's own
// pass saw — the property that makes "is the callee annotated?"
// answerable without string matching.
//
// Two keyspaces are provided: per-object facts (annotations, hazard
// summaries, atomic-field marks) and global facts (the partition
// Backend interface, the memoized determinism closure). Keys are plain
// strings namespaced by convention as "<pass>.<fact>".
type Facts struct {
	objs   map[types.Object]map[string]any
	global map[string]any
}

// NewFacts returns an empty fact store.
func NewFacts() *Facts {
	return &Facts{
		objs:   make(map[types.Object]map[string]any),
		global: make(map[string]any),
	}
}

// SetObj records fact key about obj.
func (f *Facts) SetObj(obj types.Object, key string, v any) {
	m, ok := f.objs[obj]
	if !ok {
		m = make(map[string]any)
		f.objs[obj] = m
	}
	m[key] = v
}

// Obj returns the fact recorded about obj under key, or nil, false.
func (f *Facts) Obj(obj types.Object, key string) (any, bool) {
	v, ok := f.objs[obj][key]
	return v, ok
}

// HasObj reports whether a fact is recorded about obj under key.
func (f *Facts) HasObj(obj types.Object, key string) bool {
	_, ok := f.objs[obj][key]
	return ok
}

// ObjsWith returns every object carrying a fact under key. Order is
// unspecified; callers that report must sort by position themselves
// (the Runner sorts all findings at the end regardless).
func (f *Facts) ObjsWith(key string) []types.Object {
	var out []types.Object
	for obj, m := range f.objs {
		if _, ok := m[key]; ok {
			out = append(out, obj)
		}
	}
	return out
}

// SetGlobal records a module-wide fact.
func (f *Facts) SetGlobal(key string, v any) { f.global[key] = v }

// Global returns the module-wide fact under key, or nil, false.
func (f *Facts) Global(key string) (any, bool) {
	v, ok := f.global[key]
	return v, ok
}

// globalFact returns the module-wide fact under key asserted to T;
// false when absent or of another type.
func globalFact[T any](f *Facts, key string) (T, bool) {
	v, ok := f.global[key]
	if !ok {
		var zero T
		return zero, false
	}
	t, ok := v.(T)
	return t, ok
}
