package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked, non-test package of the module under
// analysis. Test files (*_test.go) are deliberately excluded: every
// mclint pass exempts test code, which legitimately builds adversarial
// fixtures (raw literals, exact comparisons) that production code must
// not.
type Package struct {
	// ImportPath is the package's import path ("catpa/internal/mc").
	ImportPath string
	// ModulePath is the path of the module the load belongs to; passes
	// use it to distinguish module-internal callees from stdlib ones.
	ModulePath string
	// Dir is the package directory on disk.
	Dir string
	// Fset positions all files of the load.
	Fset *token.FileSet
	// Files holds the parsed non-test source files, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker facts the passes consult.
	Info *types.Info
}

// FileOf returns the filename of the file containing pos.
func (p *Package) FileOf(pos token.Pos) string {
	return p.Fset.Position(pos).Filename
}

// InModule reports whether the import path belongs to the loaded
// module — the boundary at which the allocfree pass requires callee
// annotations and the determinism pass follows call edges.
func (p *Package) InModule(path string) bool {
	return path == p.ModulePath || strings.HasPrefix(path, p.ModulePath+"/")
}

// Loader loads and type-checks every package of a Go module using only
// the standard library. Package structure and dependency export data
// come from `go list -export -deps`; module-internal packages are then
// type-checked from source in dependency order through one shared
// importer, while stdlib and external dependencies are read from gc
// export data. Checking module deps from source (rather than re-reading
// their export data) is what gives the pass framework module-wide
// object identity: the *types.Func for mc.SortByMaxUtilInto is the
// same object whether a pass meets it defining internal/mc or calling
// it from internal/partition, so cross-pass facts key on objects
// directly.
type Loader struct {
	// Fset positions every file loaded through this loader.
	Fset *token.FileSet
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod.
	ModulePath string

	gc       types.ImporterFrom
	exports  map[string]string        // import path -> export data file
	listed   []listedPackage          // module packages in dependency order
	byPath   map[string]listedPackage // import path -> metadata
	checked  map[string]*Package      // module packages already type-checked
	checking map[string]bool          // cycle guard (cannot happen in valid Go)
}

// listedPackage mirrors the `go list -json` fields the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	Error      *struct{ Err string }
}

// NewLoader builds a loader for the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Fset:       token.NewFileSet(),
		ModuleRoot: root,
		ModulePath: modPath,
		exports:    make(map[string]string),
		byPath:     make(map[string]listedPackage),
		checked:    make(map[string]*Package),
		checking:   make(map[string]bool),
	}
	if err := l.list(); err != nil {
		return nil, err
	}
	l.gc = importer.ForCompiler(l.Fset, "gc", l.exportLookup).(types.ImporterFrom)
	return l, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module directive in %s/go.mod", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// list runs `go list -export -deps ./...` at the module root and
// records package metadata and export-data locations. The -deps order
// (dependencies before dependents) is preserved for module packages,
// so type-checking in listed order never meets an unchecked dep.
func (l *Loader) list() error {
	cmd := exec.Command("go", "list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Name,GoFiles,Export,Standard,Error", "./...")
	cmd.Dir = l.ModuleRoot
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("lint: go list failed: %v\n%s", err, errb.String())
	}
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		l.byPath[p.ImportPath] = p
		l.listed = append(l.listed, p)
	}
	return nil
}

// exportLookup feeds dependency export data to the gc importer.
func (l *Loader) exportLookup(path string) (io.ReadCloser, error) {
	f, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(f)
}

// inModule reports whether the import path belongs to the loaded module.
func (l *Loader) inModule(path string) bool {
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

// Import implements types.Importer: module-internal packages resolve
// to their (lazily) source-checked types.Package, everything else to
// gc export data.
func (l *Loader) Import(path string) (*types.Package, error) {
	if l.inModule(path) {
		pkg, err := l.ensure(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.gc.Import(path)
}

// ImportFrom implements types.ImporterFrom; the module has no vendor
// directory handling beyond what the gc importer does.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if l.inModule(path) {
		return l.Import(path)
	}
	return l.gc.ImportFrom(path, dir, mode)
}

// ensure returns the source-checked module package for path, checking
// it (and, transitively, its module deps) on first use.
func (l *Loader) ensure(path string) (*Package, error) {
	if pkg, ok := l.checked[path]; ok {
		return pkg, nil
	}
	lp, ok := l.byPath[path]
	if !ok {
		return nil, fmt.Errorf("lint: module package %q not listed", path)
	}
	if lp.Error != nil {
		return nil, fmt.Errorf("lint: %s: %s", path, lp.Error.Err)
	}
	if l.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	pkg, err := l.typeCheck(path, lp.Dir, files)
	if err != nil {
		return nil, err
	}
	l.checked[path] = pkg
	return pkg, nil
}

// Load parses and type-checks every package of the module, sorted by
// import path. A package that fails to parse or type-check aborts the
// load with an error naming it: mclint refuses to report findings on a
// tree it could not fully analyze.
func (l *Loader) Load() ([]*Package, error) {
	var pkgs []*Package
	for _, lp := range l.listed {
		if lp.Standard || !l.inModule(lp.ImportPath) {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := l.ensure(lp.ImportPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// CheckSource parses and type-checks a single in-memory file as its
// own package under the given import path. It exists for pass unit
// tests, which feed fixture sources through the same pipeline real
// packages take; fixtures may import module packages (resolved from
// source) and stdlib ones (resolved from export data) alike.
func (l *Loader) CheckSource(importPath, filename, src string) (*Package, error) {
	f, err := parser.ParseFile(l.Fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return l.typeCheck(importPath, "", []*ast.File{f})
}

// typeCheck runs go/types over the files with the chained importer.
func (l *Loader) typeCheck(importPath, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []string
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type errors in %s:\n  %s", importPath, strings.Join(typeErrs, "\n  "))
	}
	return &Package{
		ImportPath: importPath,
		ModulePath: l.ModulePath,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
