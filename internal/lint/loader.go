package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked, non-test package of the module under
// analysis. Test files (*_test.go) are deliberately excluded: every
// mclint rule exempts test code, which legitimately builds adversarial
// fixtures (raw literals, exact comparisons) that production code must
// not.
type Package struct {
	// ImportPath is the package's import path ("catpa/internal/mc").
	ImportPath string
	// Dir is the package directory on disk.
	Dir string
	// Fset positions all files of the load.
	Fset *token.FileSet
	// Files holds the parsed non-test source files, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker facts the rules consult.
	Info *types.Info
}

// FileOf returns the filename of the file containing pos.
func (p *Package) FileOf(pos token.Pos) string {
	return p.Fset.Position(pos).Filename
}

// Loader loads and type-checks every package of a Go module using only
// the standard library: package structure and dependency export data
// come from `go list -export -deps`, and type checking runs go/types
// with the gc importer reading that export data. This avoids both a
// dependency on golang.org/x/tools and the cost of re-type-checking
// the transitive closure from source.
type Loader struct {
	// Fset positions every file loaded through this loader.
	Fset *token.FileSet
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod.
	ModulePath string

	imp     types.ImporterFrom
	exports map[string]string // import path -> export data file
	listed  []listedPackage
}

// listedPackage mirrors the `go list -json` fields the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	Error      *struct{ Err string }
}

// NewLoader builds a loader for the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Fset:       token.NewFileSet(),
		ModuleRoot: root,
		ModulePath: modPath,
		exports:    make(map[string]string),
	}
	if err := l.list(); err != nil {
		return nil, err
	}
	l.imp = importer.ForCompiler(l.Fset, "gc", l.lookup).(types.ImporterFrom)
	return l, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module directive in %s/go.mod", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// list runs `go list -export -deps ./...` at the module root and
// records package metadata and export-data locations.
func (l *Loader) list() error {
	cmd := exec.Command("go", "list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Name,GoFiles,Export,Standard,Error", "./...")
	cmd.Dir = l.ModuleRoot
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("lint: go list failed: %v\n%s", err, errb.String())
	}
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		l.listed = append(l.listed, p)
	}
	return nil
}

// lookup feeds dependency export data to the gc importer.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	f, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(f)
}

// inModule reports whether the import path belongs to the loaded module.
func (l *Loader) inModule(path string) bool {
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

// Load parses and type-checks every package of the module, sorted by
// import path. A package that fails to parse or type-check aborts the
// load with an error naming it: mclint refuses to report findings on a
// tree it could not fully analyze.
func (l *Loader) Load() ([]*Package, error) {
	var pkgs []*Package
	for _, lp := range l.listed {
		if lp.Standard || !l.inModule(lp.ImportPath) {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := l.check(lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// check parses and type-checks one listed package.
func (l *Loader) check(lp listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	return l.typeCheck(lp.ImportPath, lp.Dir, files)
}

// CheckSource parses and type-checks a single in-memory file as its
// own package under the given import path. It exists for rule unit
// tests, which feed fixture sources through the same pipeline real
// packages take.
func (l *Loader) CheckSource(importPath, filename, src string) (*Package, error) {
	f, err := parser.ParseFile(l.Fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return l.typeCheck(importPath, "", []*ast.File{f})
}

// typeCheck runs go/types over the files with the export-data importer.
func (l *Loader) typeCheck(importPath, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []string
	conf := types.Config{
		Importer: l.imp,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type errors in %s:\n  %s", importPath, strings.Join(typeErrs, "\n  "))
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
