package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// Determinism is the static twin of the byte-identical checkpoint and
// golden-file tests: every function statically reachable (over the
// module call graph) from a //mc:deterministic serialization root must
// be free of reproducibility hazards. The roots are the writers —
// journal records, CSV emission, metrics snapshots — and the hazards
// are the constructs whose output varies across runs with identical
// inputs:
//
//   - ranging over a map (Go randomizes iteration order), unless the
//     loop is the sanctioned key-collection idiom: a body consisting
//     only of append assignments, in a function that also calls a
//     sort/slices sorting routine before the keys are used;
//   - time.Now and time.Since;
//   - the global math/rand functions (the globalrand pass bans these
//     everywhere; here they additionally taint);
//   - sync.Map.Range (unordered and racy with respect to writers).
//
// The call graph follows statically resolved module-internal calls
// only. Dynamic calls through interfaces or stored func values are not
// traced — the known soundness hole, kept deliberately: tracing every
// interface to every implementation would taint the whole module. The
// runtime golden tests remain the backstop for dynamic dispatch.
type Determinism struct{}

// Name implements Analyzer.
func (*Determinism) Name() string { return "determinism" }

// Doc implements Analyzer.
func (*Determinism) Doc() string {
	return "no unsorted map ranges, time.Now, global rand, or sync.Map.Range reachable from //mc:deterministic roots"
}

const (
	// factDetCalls holds, per *types.Func, the []*types.Func of its
	// statically resolved module-internal callees.
	factDetCalls = "determinism.calls"
	// factDetReach holds the memoized reachability closure:
	// map[types.Object]string from function to the name of a
	// //mc:deterministic root that reaches it.
	factDetReach = "determinism.reachable"
)

// Collect implements Collector: it records the module call-graph edges
// out of every function declared in the package, so the Run phase can
// compute reachability from the annotated roots over the whole module.
func (d *Determinism) Collect(p *Pass) {
	pkg := p.Pkg
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			var callees []*types.Func
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := staticCallee(pkg.Info, call.Fun)
				if callee != nil && callee.Pkg() != nil && pkg.InModule(callee.Pkg().Path()) {
					callees = append(callees, callee)
				}
				return true
			})
			if len(callees) > 0 {
				p.Facts.SetObj(fn, factDetCalls, callees)
			}
		}
	}
}

// Run implements Analyzer. The reachability closure is computed once
// per Runner.Run (on the first package) and memoized in the fact store.
func (d *Determinism) Run(p *Pass) {
	reach, ok := globalFact[map[types.Object]string](p.Facts, factDetReach)
	if !ok {
		reach = reachableFromRoots(p.Facts)
		p.Facts.SetGlobal(factDetReach, reach)
	}
	pkg := p.Pkg
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			root, tainted := reach[fn]
			if !tainted {
				continue
			}
			reportHazards(p, fd, root)
		}
	}
}

// reachableFromRoots walks the collected call graph breadth-first from
// every //mc:deterministic function. Roots are visited in name order so
// a function reachable from several roots is always attributed to the
// same one.
func reachableFromRoots(facts *Facts) map[types.Object]string {
	roots := facts.ObjsWith(FactDeterministic)
	sort.Slice(roots, func(i, j int) bool {
		a, _ := roots[i].(*types.Func)
		b, _ := roots[j].(*types.Func)
		return a.FullName() < b.FullName()
	})
	reach := make(map[types.Object]string)
	for _, root := range roots {
		fn, ok := root.(*types.Func)
		if !ok {
			continue
		}
		name := fn.FullName()
		queue := []types.Object{root}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			if _, seen := reach[cur]; seen {
				continue
			}
			reach[cur] = name
			if v, ok := facts.Obj(cur, factDetCalls); ok {
				for _, callee := range v.([]*types.Func) {
					queue = append(queue, callee)
				}
			}
		}
	}
	return reach
}

// reportHazards flags every reproducibility hazard in one tainted
// function body, naming the deterministic root that reaches it.
func reportHazards(p *Pass, fd *ast.FuncDecl, root string) {
	pkg := p.Pkg
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if isMapType(pkg.Info.TypeOf(n.X)) && !keyCollectionExempt(pkg, fd, n) {
				p.Report(n, "map iteration order is randomized; on a path reachable from deterministic root %s, iterate sorted keys instead", root)
			}
		case *ast.CallExpr:
			fn := staticCallee(pkg.Info, n.Fun)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "time" && (fn.Name() == "Now" || fn.Name() == "Since"):
				p.Report(n, "time.%s is nondeterministic; reachable from deterministic root %s — thread the timestamp in or drop it from serialized output", fn.Name(), root)
			case isGlobalRandFunc(fn):
				p.Report(n, "global %s.%s is nondeterministic; reachable from deterministic root %s — thread a seeded *rand.Rand", fn.Pkg().Path(), fn.Name(), root)
			case fn.Pkg().Path() == "sync" && fn.Name() == "Range":
				p.Report(n, "sync.Map.Range order is unspecified; reachable from deterministic root %s — snapshot into a sorted slice first", root)
			}
		}
		return true
	})
}

// keyCollectionExempt recognizes the sanctioned sorted-iteration idiom:
// the range body only appends (collecting keys), and the enclosing
// function also calls a sort or slices routine, so the collected keys
// are ordered before anything consumes them.
func keyCollectionExempt(pkg *Package, fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) == 0 {
		return false
	}
	for _, st := range rs.Body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltin(pkg.Info, call.Fun, "append") {
			return false
		}
	}
	sorts := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := staticCallee(pkg.Info, call.Fun); fn != nil && fn.Pkg() != nil {
			if path := fn.Pkg().Path(); path == "sort" || path == "slices" {
				sorts = true
			}
		}
		return !sorts
	})
	return sorts
}
