package lint

import (
	"go/ast"
	"go/types"
)

// ScalarBoundary guards the scalar-only protocol of the
// partition.Backend seam (DESIGN.md Section 10): the allocator and the
// per-core analyses exchange only scalars — ints, floats, bools,
// strings — so no slice, map, or interface value can alias state across
// the boundary and silently couple the heuristic to an analysis's
// internals. Two declared exceptions exist, both one-directional
// hand-offs with documented ownership: Prepare(*mc.TaskSet) installs
// the immutable task set, and ReportInto(c int, *CoreInfo) fills a
// caller-owned report.
//
// The pass checks both sides of the seam: the Backend interface
// declaration itself (so the contract cannot be widened by editing the
// interface), and every exported method of every module type that
// implements Backend — an implementation with an extra exported method
// passing slices would be a side channel around the boundary.
// Unexported methods are internal to the implementation and free to
// use any types.
type ScalarBoundary struct {
	// PartitionPath is the import path of the partition package that
	// declares the Backend interface.
	PartitionPath string
}

// factBackendIface is the global fact key under which the collector
// publishes the *types.Interface of partition.Backend.
const factBackendIface = "scalarboundary.backend"

// Name implements Analyzer.
func (*ScalarBoundary) Name() string { return "scalarboundary" }

// Doc implements Analyzer.
func (*ScalarBoundary) Doc() string {
	return "partition.Backend and its implementations must keep the scalar-only boundary"
}

// Collect implements Collector: on the partition package it resolves
// the Backend interface, publishes it for the Run phase, and checks the
// interface declaration itself against the contract.
func (s *ScalarBoundary) Collect(p *Pass) {
	pkg := p.Pkg
	if pkg.ImportPath != s.PartitionPath {
		return
	}
	obj, ok := pkg.Types.Scope().Lookup("Backend").(*types.TypeName)
	if !ok {
		return
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok {
		return
	}
	p.Facts.SetGlobal(factBackendIface, iface)

	// The declaration side: every method the interface adds must keep
	// the contract, so the boundary cannot be widened at the seam.
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != "Backend" {
					continue
				}
				it, ok := ts.Type.(*ast.InterfaceType)
				if !ok {
					continue
				}
				for _, m := range it.Methods.List {
					if len(m.Names) == 0 {
						continue // embedded interface
					}
					ft, ok := pkg.Info.TypeOf(m.Type).(*types.Signature)
					if !ok {
						continue
					}
					s.checkSignature(p, m, m.Names[0].Name, ft)
				}
			}
		}
	}
}

// Run implements Analyzer: every exported method declared in this
// package on a type implementing Backend must keep the contract.
func (s *ScalarBoundary) Run(p *Pass) {
	iface, ok := globalFact[*types.Interface](p.Facts, factBackendIface)
	if !ok {
		return
	}
	pkg := p.Pkg
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !fd.Name.IsExported() {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			recv := fn.Type().(*types.Signature).Recv()
			if recv == nil || !implementsBackend(recv.Type(), iface) {
				continue
			}
			s.checkSignature(p, fd.Name, fd.Name.Name, fn.Type().(*types.Signature))
		}
	}
}

// implementsBackend reports whether the receiver's type (or its
// pointer) satisfies the Backend interface. Interface receivers are
// excluded: only concrete implementations are in scope.
func implementsBackend(recv types.Type, iface *types.Interface) bool {
	if types.IsInterface(recv) {
		return false
	}
	if types.Implements(recv, iface) {
		return true
	}
	if _, isPtr := recv.Underlying().(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(recv), iface)
	}
	return false
}

// checkSignature flags every non-scalar parameter or result of one
// boundary method, honoring the two declared exceptions.
func (s *ScalarBoundary) checkSignature(p *Pass, at ast.Node, name string, sig *types.Signature) {
	check := func(tuple *types.Tuple, what string) {
		for i := 0; i < tuple.Len(); i++ {
			t := tuple.At(i).Type()
			if isScalar(t) || s.allowedException(p.Pkg, name, t) {
				continue
			}
			p.Report(at, "%s %d of %s crosses the Backend boundary with non-scalar type %s; the protocol passes scalars only (declared exceptions: Prepare(*mc.TaskSet), ReportInto(*CoreInfo))",
				what, i+1, name, t)
		}
	}
	check(sig.Params(), "parameter")
	check(sig.Results(), "result")
}

// isScalar reports whether t is a basic (bool/numeric/string) type.
func isScalar(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Kind() != types.UnsafePointer
}

// allowedException reports whether t is one of the two sanctioned
// non-scalar hand-offs for the named method: Prepare's *mc.TaskSet and
// ReportInto's *CoreInfo.
func (s *ScalarBoundary) allowedException(pkg *Package, method string, t types.Type) bool {
	ptr, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := types.Unalias(ptr.Elem()).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path, name := named.Obj().Pkg().Path(), named.Obj().Name()
	switch method {
	case "Prepare":
		return path == pkg.ModulePath+"/internal/mc" && name == "TaskSet"
	case "ReportInto":
		return path == s.PartitionPath && name == "CoreInfo"
	}
	return false
}
