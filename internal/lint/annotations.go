package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// Annotation fact keys. A fact under one of these keys on a
// *types.Func means the function's doc comment carries the matching
// //mc: annotation; the value is the annotation's trailing free text
// (possibly empty).
const (
	// FactAllocFree marks a function whose body must stay free of
	// allocation-introducing constructs (the allocfree pass).
	FactAllocFree = "mc.allocfree"
	// FactDeterministic marks a serialization root: everything
	// statically reachable from it must be reproducible (the
	// determinism pass).
	FactDeterministic = "mc.deterministic"
)

// annotationKinds maps the annotation word after "//mc:" to its fact
// key. The grammar is
//
//	//mc:allocfree [free-text rationale]
//	//mc:deterministic [free-text rationale]
//
// on its own line inside a function's doc comment. Anything else
// spelled "//mc:..." is a malformed annotation and reported under the
// unsuppressable "annotation" pseudo-pass, so a typo like
// //mc:alloc-free cannot silently disable enforcement.
var annotationKinds = map[string]string{
	"allocfree":     FactAllocFree,
	"deterministic": FactDeterministic,
}

// collectAnnotations scans a package for //mc: annotations, records
// well-formed ones as facts on the annotated function object, and
// returns findings for malformed or misplaced ones.
func collectAnnotations(pkg *Package, facts *Facts) []Finding {
	var bad []Finding
	report := func(n ast.Node, format string, args ...any) {
		bad = append(bad, Finding{
			Pass: annotationRule, Pkg: pkg.ImportPath,
			Pos:     pkg.Fset.Position(n.Pos()),
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, file := range pkg.Files {
		// Comments that belong to a function's doc comment may annotate
		// it; every other //mc: comment is misplaced.
		docOf := make(map[*ast.Comment]*types.Func)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Doc != nil {
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				for _, c := range fd.Doc.List {
					docOf[c] = fn
				}
			}
		}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//mc:")
				if !ok {
					continue
				}
				word, text, _ := strings.Cut(rest, " ")
				key, known := annotationKinds[word]
				if !known {
					report(c, "unknown annotation //mc:%s (known: //mc:allocfree, //mc:deterministic)", word)
					continue
				}
				fn, inDoc := docOf[c]
				if !inDoc || fn == nil {
					report(c, "//mc:%s must be part of a function's doc comment", word)
					continue
				}
				facts.SetObj(fn, key, strings.TrimSpace(text))
			}
		}
	}
	return bad
}

// funcAnnotated reports whether fn carries the annotation fact key.
// fn may be nil (returns false).
func funcAnnotated(facts *Facts, fn *types.Func, key string) bool {
	if fn == nil {
		return false
	}
	return facts.HasObj(fn, key)
}

// enclosingFunc resolves the function object a node's enclosing
// top-level declaration defines, attributing nodes inside method and
// function literals to the surrounding named declaration (the unit of
// annotation and of the call graph).
func enclosingFunc(pkg *Package, file *ast.File, pos ast.Node) *types.Func {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if fd.Pos() <= pos.Pos() && pos.Pos() <= fd.End() {
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			return fn
		}
	}
	return nil
}
