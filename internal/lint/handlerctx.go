package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// HandlerCtx bans context.Background and context.TODO in the admission
// daemon's packages. Every context in a request path must descend from
// the incoming request's context (http.Request.Context or a caller's
// ctx parameter): a fresh root context silently detaches work from the
// request deadline and the drain path, which is exactly the class of
// leak the daemon's robustness layers exist to prevent. Code that
// genuinely needs a root context (main functions, tests) lives outside
// the listed packages.
type HandlerCtx struct {
	// Prefixes lists import-path prefixes the rule applies to.
	Prefixes []string
}

// Name implements Analyzer.
func (*HandlerCtx) Name() string { return "handlerctx" }

// Doc implements Analyzer.
func (*HandlerCtx) Doc() string {
	return "no context.Background/TODO in the admission daemon; derive contexts from the request"
}

// Run implements Analyzer. Identifier uses are walked rather than call
// expressions so passing context.Background as a value is caught too.
func (r *HandlerCtx) Run(p *Pass) {
	pkg := p.Pkg
	enforced := false
	for _, prefix := range r.Prefixes {
		if pkg.ImportPath == prefix || strings.HasPrefix(pkg.ImportPath, prefix+"/") {
			enforced = true
			break
		}
	}
	if !enforced {
		return
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ident, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pkg.Info.Uses[ident].(*types.Func)
			if !ok || !isRootContextFunc(fn) {
				return true
			}
			p.Report(ident, "use of context.%s in %s; request paths must derive their context from the request (http.Request.Context or a ctx parameter)", fn.Name(), pkg.ImportPath)
			return true
		})
	}
}

// isRootContextFunc reports whether fn is context.Background or
// context.TODO.
func isRootContextFunc(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return false
	}
	return fn.Name() == "Background" || fn.Name() == "TODO"
}
