package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// FeasDoc requires exported bool-returning functions and methods of
// the schedulability-analysis packages (internal/edfvd,
// internal/partition) to cite, in their doc comment, the equation,
// theorem or algorithm of the paper they implement. A feasibility
// predicate whose provenance is not written down cannot be reviewed
// against the paper, and MC schedulability claims are only as
// trustworthy as that mapping (Gu & Easwaran 2016; Ramanathan &
// Easwaran 2017).
type FeasDoc struct {
	// Packages lists the import paths the rule applies to.
	Packages []string
}

// Name implements Analyzer.
func (*FeasDoc) Name() string { return "feasdoc" }

// Doc implements Analyzer.
func (*FeasDoc) Doc() string {
	return "exported feasibility predicates in edfvd/partition must cite their equation or algorithm"
}

// citation matches the accepted forms of a paper reference.
var citation = regexp.MustCompile(`Eqs?\.|Equation|Theorem|Proposition|Lemma|Algorithm|Section`)

// Run implements Analyzer.
func (r *FeasDoc) Run(p *Pass) {
	pkg := p.Pkg
	enforced := false
	for _, p := range r.Packages {
		if pkg.ImportPath == p {
			enforced = true
			break
		}
	}
	if !enforced {
		return
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() || !returnsBool(pkg, fd) {
				continue
			}
			switch doc := fd.Doc.Text(); {
			case doc == "":
				p.Report(fd.Name, "exported feasibility predicate %s has no doc comment; cite the equation or algorithm it implements", fd.Name.Name)
			case !citation.MatchString(doc):
				p.Report(fd.Name, "doc comment of %s must cite the equation, theorem or algorithm it implements (e.g. \"Eq. 7\", \"Theorem 1\")", fd.Name.Name)
			}
		}
	}
}

// returnsBool reports whether any result of the function is boolean.
func returnsBool(pkg *Package, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, field := range fd.Type.Results.List {
		t := pkg.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if basic, ok := t.Underlying().(*types.Basic); ok && basic.Info()&types.IsBoolean != 0 {
			return true
		}
	}
	return false
}
