package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RawTask flags composite literals that construct mc.Task or
// mc.TaskSet values (directly, through the catpa facade aliases, or
// as elements of slice/array literals) outside the defining package.
// Raw literals bypass the constructors' validation — WCET
// monotonicity c_i(1) <= ... <= c_i(l_i), positive periods, own-level
// utilization <= 1 — which every downstream analysis assumes.
// mc.NewTask / mc.MustTask / mc.NewTaskSet are the sanctioned entry
// points. Test files are exempt (they deliberately build invalid
// fixtures); so is internal/mc itself.
type RawTask struct {
	// MCPath is the import path of the defining package
	// ("<module>/internal/mc"), which is exempt.
	MCPath string
}

// Name implements Analyzer.
func (*RawTask) Name() string { return "rawtask" }

// Doc implements Analyzer.
func (*RawTask) Doc() string {
	return "no raw mc.Task/mc.TaskSet literals outside internal/mc; use the validating constructors"
}

// Run implements Analyzer.
func (r *RawTask) Run(p *Pass) {
	pkg := p.Pkg
	if pkg.ImportPath == r.MCPath {
		return
	}
	for _, file := range pkg.Files {
		// Only the outermost offending literal is reported: the
		// elements of a flagged []mc.Task{...} are not repeated.
		var skipUntil token.Pos
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || lit.Pos() < skipUntil {
				return true
			}
			name, ok := r.taskLike(pkg.Info.TypeOf(lit))
			if !ok {
				return true
			}
			skipUntil = lit.End()
			p.Report(lit, "raw %s literal; construct tasks with mc.NewTask/mc.MustTask and sets with mc.NewTaskSet so invariants are validated", name)
			return true
		})
	}
}

// taskLike reports whether t is mc.Task, mc.TaskSet, or a slice/array
// of either, returning a display name for the finding.
func (r *RawTask) taskLike(t types.Type) (string, bool) {
	switch t := types.Unalias(t).(type) {
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == r.MCPath &&
			(obj.Name() == "Task" || obj.Name() == "TaskSet") {
			return "mc." + obj.Name(), true
		}
	case *types.Slice:
		if name, ok := r.taskLike(t.Elem()); ok {
			return "[]" + name, true
		}
	case *types.Array:
		if name, ok := r.taskLike(t.Elem()); ok {
			return "[...]" + name, true
		}
	}
	return "", false
}
