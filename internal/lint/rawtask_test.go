package lint

import "testing"

func TestRawTaskFlagsLiterals(t *testing.T) {
	src := `package fix

import "catpa/internal/mc"

var task = mc.Task{ID: 1, Period: 10, Crit: 1, WCET: []float64{1}}

var slice = []mc.Task{{ID: 1, Period: 10, Crit: 1, WCET: []float64{1}}}

var set = &mc.TaskSet{}

var nested = mc.TaskSet{Tasks: []mc.Task{{ID: 1}}}

func build() mc.Task { return mc.Task{Period: 5, Crit: 1, WCET: []float64{1}} }
`
	findings := checkFixture(t, []Analyzer{&RawTask{MCPath: "catpa/internal/mc"}}, "catpa/internal/fix", "fix.go", src)
	// The nested []mc.Task inside the flagged TaskSet literal on line
	// 11 must not be double-reported.
	wantLines(t, findings, "rawtask", 5, 7, 9, 11, 13)
}

func TestRawTaskAllowsConstructorsAndAliases(t *testing.T) {
	src := `package fix

import "catpa/internal/mc"

var ok = mc.MustTask(1, "a", 10, 2, 4)

var set = mc.NewTaskSet(mc.MustTask(0, "b", 20, 5))

var grown = mc.NewTaskSetCap(8)

var other = []float64{1, 2}

type holder struct{ t mc.Task } // declaring fields is fine

func read(ts *mc.TaskSet) int { return ts.Len() }
`
	findings := checkFixture(t, []Analyzer{&RawTask{MCPath: "catpa/internal/mc"}}, "catpa/internal/fix", "fix.go", src)
	wantLines(t, findings, "rawtask")
}

func TestRawTaskFlagsFacadeAlias(t *testing.T) {
	// catpa.Task is an alias of mc.Task; literals through the facade
	// must be caught too.
	src := `package fix

import "catpa"

var task = catpa.Task{Period: 10, Crit: 1, WCET: []float64{1}}
`
	findings := checkFixture(t, []Analyzer{&RawTask{MCPath: "catpa/internal/mc"}}, "catpa/internal/fix", "fix.go", src)
	wantLines(t, findings, "rawtask", 5)
}

func TestRawTaskExemptsDefiningPackage(t *testing.T) {
	src := `package mc

import "catpa/internal/mc"

var task = mc.Task{ID: 1, Period: 10, Crit: 1, WCET: []float64{1}}
`
	findings := checkFixture(t, []Analyzer{&RawTask{MCPath: "catpa/internal/mc"}}, "catpa/internal/mc", "extra.go", src)
	wantLines(t, findings, "rawtask")
}
