package lint

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
)

// The tests share one loader: NewLoader shells out to `go list
// -export -deps` once, and every fixture is type-checked through it.
var (
	loaderOnce sync.Once
	testLoader *Loader
	loaderErr  error
)

func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		testLoader, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return testLoader
}

// checkFixture type-checks src as a single-file package under
// importPath and runs the given rules over it.
func checkFixture(t *testing.T, rules []Rule, importPath, filename, src string) []Finding {
	t.Helper()
	ld := sharedLoader(t)
	pkg, err := ld.CheckSource(importPath, filename, src)
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	runner := &Runner{Rules: rules, KnownRules: RuleNames("catpa")}
	return runner.Run([]*Package{pkg})
}

// wantLines asserts that the findings of a given rule sit exactly on
// the expected source lines.
func wantLines(t *testing.T, findings []Finding, rule string, want ...int) {
	t.Helper()
	var got []int
	for _, f := range findings {
		if f.Rule == rule {
			got = append(got, f.Pos.Line)
		}
	}
	sort.Ints(got)
	sort.Ints(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("rule %s findings on lines %v, want %v\nall findings: %v", rule, got, want, findings)
	}
}

func TestLoaderLoadsModule(t *testing.T) {
	ld := sharedLoader(t)
	if ld.ModulePath != "catpa" {
		t.Fatalf("module path %q, want catpa", ld.ModulePath)
	}
	pkgs, err := ld.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	byPath := make(map[string]*Package)
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	for _, want := range []string{"catpa", "catpa/internal/mc", "catpa/internal/edfvd", "catpa/cmd/mclint"} {
		if byPath[want] == nil {
			t.Errorf("package %s not loaded", want)
		}
	}
	mc := byPath["catpa/internal/mc"]
	if mc == nil {
		t.Fatal("no mc package")
	}
	for _, f := range mc.Files {
		name := mc.FileOf(f.Pos())
		if strings.HasSuffix(name, "_test.go") {
			t.Errorf("test file %s was loaded", name)
		}
	}
	if mc.Types.Scope().Lookup("NewTask") == nil {
		t.Error("mc.NewTask not in type-checked scope")
	}
}

func TestSuppressionDirectives(t *testing.T) {
	src := `package fix

func cmpAbove(x, y float64) bool {
	//lint:ignore mclint/floateq deliberate exact comparison for the test
	return x == y
}

func cmpSameLine(x, y float64) bool {
	return x == y //lint:ignore mclint/floateq trailing directive
}

func cmpUnsuppressed(x, y float64) bool {
	return x == y
}

func cmpWrongRule(x, y float64) bool {
	//lint:ignore mclint/rawtask reason does not match the firing rule
	return x == y
}
`
	findings := checkFixture(t, []Rule{&FloatEq{}}, "catpa/internal/fix", "fix.go", src)
	wantLines(t, findings, "floateq", 13, 18)
	wantLines(t, findings, directiveRule)
}

func TestMalformedDirectives(t *testing.T) {
	src := `package fix

//lint:ignore mclint/floateq
var a = 1

//lint:ignore floateq missing the mclint/ namespace
var b = 2

//lint:ignore mclint/nosuchrule some reason
var c = 3

//lint:ignore
var d = 4
`
	findings := checkFixture(t, []Rule{&FloatEq{}}, "catpa/internal/fix", "fix.go", src)
	wantLines(t, findings, directiveRule, 3, 6, 9, 12)
}

func TestRunnerDisabledRuleDirectiveStillKnown(t *testing.T) {
	// A directive naming a rule that is disabled for this run must not
	// be reported as unknown: KnownRules carries the full name set.
	src := `package fix

func f(x, y float64) bool {
	//lint:ignore mclint/floateq kept while the rule is disabled
	return x == y
}
`
	findings := checkFixture(t, []Rule{&GlobalRand{}}, "catpa/internal/fix", "fix.go", src)
	if len(findings) != 0 {
		t.Fatalf("unexpected findings: %v", findings)
	}
}

func TestFindingsSortedByPosition(t *testing.T) {
	src := `package fix

func f(a, b float64) bool { return a == b }
func g(a, b float64) bool { return a != b }
`
	findings := checkFixture(t, []Rule{&FloatEq{}}, "catpa/internal/fix", "fix.go", src)
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2", len(findings))
	}
	if findings[0].Pos.Line > findings[1].Pos.Line {
		t.Errorf("findings not sorted: %v", findings)
	}
	if !strings.Contains(findings[0].String(), "fix.go:3") || !strings.Contains(findings[0].String(), "[mclint/floateq]") {
		t.Errorf("finding String() = %q", findings[0].String())
	}
}

func TestDefaultRules(t *testing.T) {
	rules := DefaultRules("catpa")
	names := make(map[string]bool)
	for _, r := range rules {
		names[r.Name()] = true
		if r.Doc() == "" {
			t.Errorf("rule %s has no doc", r.Name())
		}
	}
	for _, want := range []string{"floateq", "globalrand", "rawtask", "panicmsg", "feasdoc", "ctxfirst", "obsname", "backendreg"} {
		if !names[want] {
			t.Errorf("missing default rule %s", want)
		}
	}
	if len(rules) != 8 {
		t.Errorf("got %d default rules, want 8", len(rules))
	}
}
