package lint

import (
	"fmt"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

// The tests share one loader: NewLoader shells out to `go list
// -export -deps` once, and every fixture is type-checked through it.
var (
	loaderOnce sync.Once
	testLoader *Loader
	loaderErr  error
)

func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		testLoader, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return testLoader
}

// checkFixture type-checks src as a single-file package under
// importPath and runs the given passes over it.
func checkFixture(t *testing.T, passes []Analyzer, importPath, filename, src string) []Finding {
	t.Helper()
	ld := sharedLoader(t)
	pkg, err := ld.CheckSource(importPath, filename, src)
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	runner := &Runner{Passes: passes, KnownPasses: PassNames("catpa")}
	return runner.Run([]*Package{pkg})
}

// checkTestdata runs the passes over the named fixture file from
// internal/lint/testdata. The go tool ignores the testdata directory,
// so fixtures can seed violations without breaking the build; they
// still type-check against the real module packages through the shared
// loader.
func checkTestdata(t *testing.T, passes []Analyzer, filename string) []Finding {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", filename))
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	return checkFixture(t, passes, "catpa/internal/fixture", filename, string(src))
}

// wantLines asserts that the findings of a given pass sit exactly on
// the expected source lines.
func wantLines(t *testing.T, findings []Finding, pass string, want ...int) {
	t.Helper()
	var got []int
	for _, f := range findings {
		if f.Pass == pass {
			got = append(got, f.Pos.Line)
		}
	}
	sort.Ints(got)
	sort.Ints(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("pass %s findings on lines %v, want %v\nall findings: %v", pass, got, want, findings)
	}
}

func TestLoaderLoadsModule(t *testing.T) {
	ld := sharedLoader(t)
	if ld.ModulePath != "catpa" {
		t.Fatalf("module path %q, want catpa", ld.ModulePath)
	}
	pkgs, err := ld.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	byPath := make(map[string]*Package)
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	for _, want := range []string{"catpa", "catpa/internal/mc", "catpa/internal/edfvd", "catpa/cmd/mclint", "catpa/internal/lint"} {
		if byPath[want] == nil {
			t.Errorf("package %s not loaded", want)
		}
	}
	mc := byPath["catpa/internal/mc"]
	if mc == nil {
		t.Fatal("no mc package")
	}
	for _, f := range mc.Files {
		name := mc.FileOf(f.Pos())
		if strings.HasSuffix(name, "_test.go") {
			t.Errorf("test file %s was loaded", name)
		}
	}
	if mc.Types.Scope().Lookup("NewTask") == nil {
		t.Error("mc.NewTask not in type-checked scope")
	}
}

// TestLoaderObjectIdentity is the property the whole fact store rests
// on: a function object imported into another package is the same
// *types.Func the defining package declared, because module-internal
// imports are type-checked from source rather than re-read from export
// data.
func TestLoaderObjectIdentity(t *testing.T) {
	ld := sharedLoader(t)
	pkgs, err := ld.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	byPath := make(map[string]*Package)
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	mc := byPath["catpa/internal/mc"]
	part := byPath["catpa/internal/partition"]
	if mc == nil || part == nil {
		t.Fatal("mc or partition package not loaded")
	}
	def := mc.Types.Scope().Lookup("NewTask")
	var imported *types.Package
	for _, imp := range part.Types.Imports() {
		if imp.Path() == "catpa/internal/mc" {
			imported = imp
		}
	}
	if imported == nil {
		t.Fatal("partition does not import mc")
	}
	if use := imported.Scope().Lookup("NewTask"); use != def {
		t.Errorf("mc.NewTask object differs across packages: %p vs %p", def, use)
	}
}

func TestSuppressionDirectives(t *testing.T) {
	src := `package fix

func cmpAbove(x, y float64) bool {
	//lint:ignore mclint/floateq deliberate exact comparison for the test
	return x == y
}

func cmpSameLine(x, y float64) bool {
	return x == y //lint:ignore mclint/floateq trailing directive
}

func cmpUnsuppressed(x, y float64) bool {
	return x == y
}

func cmpWrongPass(x, y float64) bool {
	//lint:ignore mclint/rawtask reason does not match the firing pass
	return x == y
}
`
	findings := checkFixture(t, []Analyzer{&FloatEq{}}, "catpa/internal/fix", "fix.go", src)
	wantLines(t, findings, "floateq", 13, 18)
	wantLines(t, findings, directiveRule)
}

func TestMalformedDirectives(t *testing.T) {
	src := `package fix

//lint:ignore mclint/floateq
var a = 1

//lint:ignore floateq missing the mclint/ namespace
var b = 2

//lint:ignore mclint/nosuchpass some reason
var c = 3

//lint:ignore
var d = 4
`
	findings := checkFixture(t, []Analyzer{&FloatEq{}}, "catpa/internal/fix", "fix.go", src)
	wantLines(t, findings, directiveRule, 3, 6, 9, 12)
}

func TestMalformedAnnotations(t *testing.T) {
	src := `package fix

//mc:allocfre typo in the annotation word
func f() {}

// A comment in the middle of nowhere.
//mc:allocfree
var x = 1

//mc:allocfree well-formed, on a function
func g() {}
`
	findings := checkFixture(t, []Analyzer{&AllocFree{}}, "catpa/internal/fix", "fix.go", src)
	wantLines(t, findings, annotationRule, 3, 7)
}

func TestRunnerDisabledPassDirectiveStillKnown(t *testing.T) {
	// A directive naming a pass that is disabled for this run must not
	// be reported as unknown: KnownPasses carries the full name set.
	src := `package fix

func f(x, y float64) bool {
	//lint:ignore mclint/floateq kept while the pass is disabled
	return x == y
}
`
	findings := checkFixture(t, []Analyzer{&GlobalRand{}}, "catpa/internal/fix", "fix.go", src)
	if len(findings) != 0 {
		t.Fatalf("unexpected findings: %v", findings)
	}
}

func TestFindingsSortedByPosition(t *testing.T) {
	src := `package fix

func f(a, b float64) bool { return a == b }
func g(a, b float64) bool { return a != b }
`
	findings := checkFixture(t, []Analyzer{&FloatEq{}}, "catpa/internal/fix", "fix.go", src)
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2", len(findings))
	}
	if findings[0].Pos.Line > findings[1].Pos.Line {
		t.Errorf("findings not sorted: %v", findings)
	}
	if !strings.Contains(findings[0].String(), "fix.go:3") || !strings.Contains(findings[0].String(), "[mclint/floateq]") {
		t.Errorf("finding String() = %q", findings[0].String())
	}
}

func TestDefaultPasses(t *testing.T) {
	passes := DefaultPasses("catpa")
	names := make(map[string]bool)
	for _, a := range passes {
		names[a.Name()] = true
		if a.Doc() == "" {
			t.Errorf("pass %s has no doc", a.Name())
		}
	}
	for _, want := range []string{
		"floateq", "globalrand", "rawtask", "panicmsg", "feasdoc", "ctxfirst", "handlerctx", "obsname", "backendreg",
		"allocfree", "determinism", "scalarboundary", "atomicmix",
	} {
		if !names[want] {
			t.Errorf("missing default pass %s", want)
		}
	}
	if len(passes) != 13 {
		t.Errorf("got %d default passes, want 13", len(passes))
	}
}

// TestRealTreeClean is the self-hosting gate: the full default pass set
// over the whole module — internal/lint and cmd/mclint included — must
// come up clean. Any finding here is either a real regression or a new
// pass's false positive; both block the build.
func TestRealTreeClean(t *testing.T) {
	ld := sharedLoader(t)
	pkgs, err := ld.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	runner := &Runner{Passes: DefaultPasses(ld.ModulePath)}
	findings := runner.Run(pkgs)
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
