package lint

import "testing"

func TestFloatEqFlagsFloatComparisons(t *testing.T) {
	src := `package fix

func eq(a, b float64) bool { return a == b }

func neq(a, b float64) bool { return a != b }

func mixed(a float64) bool { return a == 0 }

func f32(a, b float32) bool { return a == b }

type myFloat float64

func named(a, b myFloat) bool { return a != b }

func viaExpr(a, b, c float64) bool { return a+b == c*2 }
`
	findings := checkFixture(t, []Analyzer{&FloatEq{}}, "catpa/internal/fix", "fix.go", src)
	wantLines(t, findings, "floateq", 3, 5, 7, 9, 13, 15)
}

func TestFloatEqIgnoresNonFloatComparisons(t *testing.T) {
	src := `package fix

func ints(a, b int) bool { return a == b }

func strs(a, b string) bool { return a != b }

func ordered(a, b float64) bool { return a < b || a >= b }

func tolerant(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}
`
	findings := checkFixture(t, []Analyzer{&FloatEq{}}, "catpa/internal/fix", "fix.go", src)
	wantLines(t, findings, "floateq")
}

func TestFloatEqAllowlist(t *testing.T) {
	src := `package fix

func exact(a, b float64) bool { return a == b }
`
	rule := &FloatEq{Allow: []string{"internal/mc/feq.go"}}
	findings := checkFixture(t, []Analyzer{rule}, "catpa/internal/fix", "internal/mc/feq.go", src)
	wantLines(t, findings, "floateq")

	findings = checkFixture(t, []Analyzer{rule}, "catpa/internal/fix", "other.go", src)
	wantLines(t, findings, "floateq", 3)
}
