// Package lint implements mclint, the repository's domain-aware static
// analyzer. Built only on the standard library (go/ast, go/parser,
// go/types, go/token), it loads every package of the module and
// enforces invariants that ordinary Go tooling cannot know about:
//
//	floateq    – no ==/!= between floating-point expressions outside
//	             the allowlisted epsilon-helper file (internal/mc/feq.go);
//	             schedulability math must compare with a tolerance.
//	globalrand – no global math/rand functions (rand.Float64, rand.Intn,
//	             rand.Seed, ...) in non-test code; stochastic paths must
//	             thread a seeded *rand.Rand for reproducibility.
//	rawtask    – no raw mc.Task / mc.TaskSet struct or slice literals
//	             outside internal/mc; the validating constructors
//	             (mc.NewTask, mc.MustTask) are the only entry points
//	             that guarantee WCET monotonicity.
//	panicmsg   – panic messages in internal packages must be static
//	             strings carrying the "pkg: " prefix so invariant
//	             failures are attributable.
//	feasdoc    – exported feasibility predicates (bool-returning
//	             functions) in internal/edfvd and internal/partition
//	             must cite the paper equation, theorem or algorithm
//	             they implement in their doc comment.
//	ctxfirst   – exported functions in internal/runner and
//	             internal/experiments that accept a context.Context
//	             must take it as the first parameter, so cancellation
//	             plumbing stays auditable.
//	obsname    – metric names passed to obs.Registry registration
//	             methods must be compile-time constant strings that
//	             satisfy obs.ValidName, and each full name may be
//	             registered at only one call site per package (a second
//	             site is a latent registration panic).
//
// A finding can be suppressed by the line above it (or a trailing
// comment on the same line):
//
//	//lint:ignore mclint/<rule> <reason>
//
// The reason is mandatory; a directive without one is itself a finding.
// Test files are not analyzed: tests legitimately construct adversarial
// fixtures that production code must not.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one rule violation at a position.
type Finding struct {
	// Rule is the short rule name ("floateq", ...).
	Rule string
	// Pos locates the offending node.
	Pos token.Position
	// Message describes the violation and the sanctioned alternative.
	Message string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [mclint/%s]", f.Pos, f.Message, f.Rule)
}

// Reporter records one violation at a node.
type Reporter func(node ast.Node, format string, args ...any)

// Rule is one mclint check. Implementations are stateless with respect
// to Check: the same rule value may be run over many packages.
type Rule interface {
	// Name is the short identifier used in -disable flags and
	// //lint:ignore directives.
	Name() string
	// Doc is a one-line description for -list output.
	Doc() string
	// Check inspects one package and reports violations.
	Check(pkg *Package, report Reporter)
}

// DefaultRules returns the full rule set configured for the module
// with the given module path.
func DefaultRules(modulePath string) []Rule {
	internal := modulePath + "/internal/"
	return []Rule{
		&FloatEq{Allow: []string{"internal/mc/feq.go"}},
		&GlobalRand{},
		&RawTask{MCPath: modulePath + "/internal/mc"},
		&PanicMsg{InternalPrefix: internal},
		&FeasDoc{Packages: []string{
			modulePath + "/internal/edfvd",
			modulePath + "/internal/partition",
		}},
		&CtxFirst{Packages: []string{
			modulePath + "/internal/runner",
			modulePath + "/internal/experiments",
		}},
		&ObsName{ObsPath: modulePath + "/internal/obs"},
		&BackendReg{PartitionPath: modulePath + "/internal/partition"},
	}
}

// RuleNames returns the names of all known rules, for directive and
// -disable validation (independent of which rules are enabled).
func RuleNames(modulePath string) []string {
	rules := DefaultRules(modulePath)
	names := make([]string, len(rules))
	for i, r := range rules {
		names[i] = r.Name()
	}
	return names
}

// directiveRule is the pseudo-rule name under which malformed
// //lint:ignore directives are reported. It cannot be suppressed.
const directiveRule = "directive"

// Runner executes a rule set over packages and applies suppression
// directives.
type Runner struct {
	// Rules is the enabled rule set.
	Rules []Rule
	// KnownRules validates directive targets; defaults to the names of
	// Rules when empty, so directives for disabled rules stay legal
	// only if KnownRules includes them.
	KnownRules []string
}

// Run checks every package and returns the surviving findings sorted
// by position.
func (r *Runner) Run(pkgs []*Package) []Finding {
	known := make(map[string]bool)
	for _, n := range r.KnownRules {
		known[n] = true
	}
	for _, rule := range r.Rules {
		known[rule.Name()] = true
	}

	var out []Finding
	for _, pkg := range pkgs {
		sup, bad := collectDirectives(pkg, known)
		out = append(out, bad...)
		for _, rule := range r.Rules {
			name := rule.Name()
			rule.Check(pkg, func(node ast.Node, format string, args ...any) {
				pos := pkg.Fset.Position(node.Pos())
				if sup.covers(pos.Filename, pos.Line, name) {
					return
				}
				out = append(out, Finding{
					Rule:    name,
					Pos:     pos,
					Message: fmt.Sprintf(format, args...),
				})
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// suppressions indexes //lint:ignore directives: file -> line -> rules
// suppressed on that line. A directive on line L covers findings on L
// (trailing comment) and L+1 (comment above the code).
type suppressions map[string]map[int]map[string]bool

func (s suppressions) add(file string, line int, rule string) {
	byLine, ok := s[file]
	if !ok {
		byLine = make(map[int]map[string]bool)
		s[file] = byLine
	}
	for _, l := range [2]int{line, line + 1} {
		if byLine[l] == nil {
			byLine[l] = make(map[string]bool)
		}
		byLine[l][rule] = true
	}
}

func (s suppressions) covers(file string, line int, rule string) bool {
	return s[file][line][rule]
}

// collectDirectives scans a package's comments for //lint:ignore
// directives, returning the suppression index and findings for
// malformed directives (missing reason, unknown rule, bad target).
func collectDirectives(pkg *Package, known map[string]bool) (suppressions, []Finding) {
	sup := make(suppressions)
	var bad []Finding
	report := func(pos token.Position, format string, args ...any) {
		bad = append(bad, Finding{Rule: directiveRule, Pos: pos, Message: fmt.Sprintf(format, args...)})
	}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					report(pos, "lint:ignore directive needs a rule (\"mclint/<rule>\") and a reason")
					continue
				}
				target, ok := strings.CutPrefix(fields[0], "mclint/")
				if !ok {
					report(pos, "lint:ignore target %q must be of the form mclint/<rule>", fields[0])
					continue
				}
				if !known[target] {
					report(pos, "lint:ignore targets unknown rule mclint/%s", target)
					continue
				}
				if len(fields) < 2 {
					report(pos, "lint:ignore mclint/%s needs a written reason", target)
					continue
				}
				sup.add(pos.Filename, pos.Line, target)
			}
		}
	}
	return sup, bad
}
