// Package lint implements mclint, the repository's domain-aware static
// analyzer. Built only on the standard library (go/ast, go/parser,
// go/types, go/token, go/importer), it loads every package of the
// module, type-checks module-internal dependencies from source (so
// facts about an object mean the same thing in every package that sees
// it), and runs a set of passes that enforce invariants ordinary Go
// tooling cannot know about.
//
// # The pass framework
//
// A pass (Analyzer) sees one package at a time through a Pass value:
// the parsed files, the go/types information, a Reporter, and the
// module-wide Facts store. Passes that need cross-package knowledge —
// a registration site in another package, an annotation on a callee,
// the module call graph — implement Collector: every collector runs
// over every package of the load before any pass reports a finding, so
// facts are complete by the time Run executes. Object identity is
// stable across packages (module-internal imports are type-checked
// from source, not re-read from export data), so facts key directly on
// types.Object.
//
// # Syntactic and shallow type-aware passes
//
//	floateq    – no ==/!= between floating-point expressions outside
//	             the allowlisted epsilon-helper file (internal/mc/feq.go);
//	             schedulability math must compare with a tolerance.
//	globalrand – no global math/rand functions (rand.Float64, rand.Intn,
//	             rand.Seed, ...) in non-test code; stochastic paths must
//	             thread a seeded *rand.Rand for reproducibility.
//	rawtask    – no raw mc.Task / mc.TaskSet struct or slice literals
//	             outside internal/mc; the validating constructors
//	             (mc.NewTask, mc.MustTask) are the only entry points
//	             that guarantee WCET monotonicity.
//	panicmsg   – panic messages in internal packages must be static
//	             strings carrying the "pkg: " prefix so invariant
//	             failures are attributable.
//	feasdoc    – exported feasibility predicates (bool-returning
//	             functions) in internal/edfvd and internal/partition
//	             must cite the paper equation, theorem or algorithm
//	             they implement in their doc comment.
//	ctxfirst   – exported functions in internal/runner and
//	             internal/experiments that accept a context.Context
//	             must take it as the first parameter, so cancellation
//	             plumbing stays auditable.
//	handlerctx – no context.Background or context.TODO anywhere in
//	             internal/serve (the admission daemon and its client):
//	             every context in a request path must descend from the
//	             request, or work outlives deadlines and drains.
//	obsname    – metric names passed to obs.Registry registration
//	             methods must be compile-time constant strings that
//	             satisfy obs.ValidName, and each full name may be
//	             registered at only one call site per package (a second
//	             site is a latent registration panic).
//	backendreg – backend names passed to partition.RegisterBackend must
//	             be constant lowercase identifiers, each registered at
//	             exactly one call site module-wide.
//
// # Type-aware invariant passes (mclint v2)
//
//	allocfree      – functions annotated //mc:allocfree must not
//	                 contain allocation-introducing constructs
//	                 (interface boxing, escaping closures, append
//	                 outside the slab-reuse idiom, map writes, string
//	                 concatenation, variadic fan-in, fmt calls, and
//	                 make/new outside a cap-guarded growth branch), and
//	                 every statically-resolved module callee must carry
//	                 the annotation too.
//	determinism    – no map iteration without key sorting, time.Now,
//	                 global math/rand, or sync.Map.Range in any
//	                 function reachable (over the module call graph)
//	                 from a //mc:deterministic serialization root; the
//	                 static twin of the byte-identical-resume tests.
//	scalarboundary – the partition.Backend interface and every module
//	                 type implementing it must keep the scalar-only
//	                 boundary: no slice/map/interface/chan/func values
//	                 cross beyond the declared exceptions.
//	atomicmix      – a struct field passed to sync/atomic functions
//	                 anywhere in the module may never be read or
//	                 written plainly elsewhere.
//
// A finding can be suppressed by the line above it (or a trailing
// comment on the same line):
//
//	//lint:ignore mclint/<pass> <reason>
//
// The reason is mandatory; a directive without one is itself a finding.
// Test files are not analyzed: tests legitimately construct adversarial
// fixtures that production code must not.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one pass violation at a position.
type Finding struct {
	// Pass is the short pass name ("floateq", "allocfree", ...).
	Pass string
	// Pkg is the import path of the package the finding is in.
	Pkg string
	// Pos locates the offending node.
	Pos token.Position
	// Message describes the violation and the sanctioned alternative.
	Message string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [mclint/%s]", f.Pos, f.Message, f.Pass)
}

// Reporter records one violation at a node.
type Reporter func(node ast.Node, format string, args ...any)

// Pass is one analyzer's view of one package: the type-checked package
// under inspection, the module-wide fact store, and the reporter
// findings go through. The same Pass shape serves both phases; during
// fact collection the Reporter still works (collectors normally record
// facts and leave reporting to Run, but grammar-level findings may be
// raised early).
type Pass struct {
	// Pkg is the package under inspection.
	Pkg *Package
	// Facts is the module-wide cross-pass fact store. It is shared by
	// every pass of a Runner.Run call and complete (all collectors have
	// run over all packages) by the time any Run executes.
	Facts *Facts
	// Report records one finding at a node of Pkg.
	Report Reporter
}

// Analyzer is one mclint pass. Implementations are stateless with
// respect to Run: per-run state lives in the Facts store, so the same
// analyzer value may be run over many packages and many loads.
type Analyzer interface {
	// Name is the short identifier used in -pass/-disable flags and
	// //lint:ignore directives.
	Name() string
	// Doc is a one-line description for -list output.
	Doc() string
	// Run inspects one package and reports violations.
	Run(p *Pass)
}

// Collector is implemented by analyzers that need module-wide facts:
// Collect is invoked for every package of the load (in import-path
// order) before any analyzer's Run, so Run may rely on facts about
// packages other than the one it is inspecting.
type Collector interface {
	Collect(p *Pass)
}

// DefaultPasses returns the full pass set configured for the module
// with the given module path.
func DefaultPasses(modulePath string) []Analyzer {
	internal := modulePath + "/internal/"
	return []Analyzer{
		&FloatEq{Allow: []string{"internal/mc/feq.go"}},
		&GlobalRand{},
		&RawTask{MCPath: modulePath + "/internal/mc"},
		&PanicMsg{InternalPrefix: internal},
		&FeasDoc{Packages: []string{
			modulePath + "/internal/edfvd",
			modulePath + "/internal/partition",
		}},
		&CtxFirst{Packages: []string{
			modulePath + "/internal/runner",
			modulePath + "/internal/experiments",
		}},
		&HandlerCtx{Prefixes: []string{modulePath + "/internal/serve"}},
		&ObsName{ObsPath: modulePath + "/internal/obs"},
		&BackendReg{PartitionPath: modulePath + "/internal/partition"},
		&AllocFree{},
		&Determinism{},
		&ScalarBoundary{PartitionPath: modulePath + "/internal/partition"},
		&AtomicMix{},
	}
}

// PassNames returns the names of all known passes, for directive and
// flag validation (independent of which passes are enabled).
func PassNames(modulePath string) []string {
	passes := DefaultPasses(modulePath)
	names := make([]string, len(passes))
	for i, a := range passes {
		names[i] = a.Name()
	}
	return names
}

// directiveRule is the pseudo-pass name under which malformed
// //lint:ignore directives are reported. It cannot be suppressed.
const directiveRule = "directive"

// annotationRule is the pseudo-pass name under which malformed //mc:
// annotations are reported. It cannot be suppressed.
const annotationRule = "annotation"

// Runner executes a pass set over packages and applies suppression
// directives. A Runner value is single-use per Run call with respect
// to facts: every Run starts from an empty fact store.
type Runner struct {
	// Passes is the enabled pass set.
	Passes []Analyzer
	// KnownPasses validates directive targets; defaults to the names of
	// Passes when empty, so directives for disabled passes stay legal
	// only if KnownPasses includes them.
	KnownPasses []string
}

// Run checks every package and returns the surviving findings sorted
// by position. Fact collection (including //mc: annotation scanning)
// runs over all packages first; pass the full module load even when
// only a subtree's findings are wanted, and filter afterwards —
// cross-package facts (registration sites, annotations on callees, the
// call graph) are only complete over the whole module.
func (r *Runner) Run(pkgs []*Package) []Finding {
	known := make(map[string]bool)
	for _, n := range r.KnownPasses {
		known[n] = true
	}
	for _, a := range r.Passes {
		known[a.Name()] = true
	}

	facts := NewFacts()
	var out []Finding

	sup := make(map[*Package]suppressions)
	for _, pkg := range pkgs {
		s, bad := collectDirectives(pkg, known)
		sup[pkg] = s
		out = append(out, bad...)
		out = append(out, collectAnnotations(pkg, facts)...)
	}

	// Phase 1: module-wide fact collection. Collectors see every
	// package before any pass reports, so Run phases may rely on
	// complete cross-package facts.
	report := func(pkg *Package, name string) Reporter {
		return func(node ast.Node, format string, args ...any) {
			pos := pkg.Fset.Position(node.Pos())
			if sup[pkg].covers(pos.Filename, pos.Line, name) {
				return
			}
			out = append(out, Finding{
				Pass:    name,
				Pkg:     pkg.ImportPath,
				Pos:     pos,
				Message: fmt.Sprintf(format, args...),
			})
		}
	}
	for _, a := range r.Passes {
		c, ok := a.(Collector)
		if !ok {
			continue
		}
		for _, pkg := range pkgs {
			c.Collect(&Pass{Pkg: pkg, Facts: facts, Report: report(pkg, a.Name())})
		}
	}

	// Phase 2: per-package runs.
	for _, pkg := range pkgs {
		for _, a := range r.Passes {
			a.Run(&Pass{Pkg: pkg, Facts: facts, Report: report(pkg, a.Name())})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Pass < b.Pass
	})
	return out
}

// suppressions indexes //lint:ignore directives: file -> line -> passes
// suppressed on that line. A directive on line L covers findings on L
// (trailing comment) and L+1 (comment above the code).
type suppressions map[string]map[int]map[string]bool

func (s suppressions) add(file string, line int, pass string) {
	byLine, ok := s[file]
	if !ok {
		byLine = make(map[int]map[string]bool)
		s[file] = byLine
	}
	for _, l := range [2]int{line, line + 1} {
		if byLine[l] == nil {
			byLine[l] = make(map[string]bool)
		}
		byLine[l][pass] = true
	}
}

func (s suppressions) covers(file string, line int, pass string) bool {
	return s[file][line][pass]
}

// collectDirectives scans a package's comments for //lint:ignore
// directives, returning the suppression index and findings for
// malformed directives (missing reason, unknown pass, bad target).
func collectDirectives(pkg *Package, known map[string]bool) (suppressions, []Finding) {
	sup := make(suppressions)
	var bad []Finding
	report := func(pos token.Position, format string, args ...any) {
		bad = append(bad, Finding{
			Pass: directiveRule, Pkg: pkg.ImportPath, Pos: pos,
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					report(pos, "lint:ignore directive needs a pass (\"mclint/<pass>\") and a reason")
					continue
				}
				target, ok := strings.CutPrefix(fields[0], "mclint/")
				if !ok {
					report(pos, "lint:ignore target %q must be of the form mclint/<pass>", fields[0])
					continue
				}
				if !known[target] {
					report(pos, "lint:ignore targets unknown pass mclint/%s", target)
					continue
				}
				if len(fields) < 2 {
					report(pos, "lint:ignore mclint/%s needs a written reason", target)
					continue
				}
				sup.add(pos.Filename, pos.Line, target)
			}
		}
	}
	return sup, bad
}
