package lint

import "testing"

func obsNameRule() []Analyzer {
	return []Analyzer{&ObsName{ObsPath: "catpa/internal/obs"}}
}

func TestObsNameFlagsBadNames(t *testing.T) {
	src := `package fix

import "catpa/internal/obs"

func wire(r *obs.Registry) {
	r.Counter("sweep.sets.total")
	r.Counter("Sweep.Sets.Total")
	r.Gauge("sweep..workers")
	r.Histogram("sweep.stage.-generate", nil)
	r.Counter("")
}
`
	findings := checkFixture(t, obsNameRule(), "catpa/internal/fix", "fix.go", src)
	wantLines(t, findings, "obsname", 7, 8, 9, 10)
}

func TestObsNameRequiresConstantNames(t *testing.T) {
	src := `package fix

import "catpa/internal/obs"

const base = "sweep.sets"

func wire(r *obs.Registry, dyn string) {
	r.Counter(base + ".total")
	r.Counter(dyn)
	r.Gauge("sweep." + dyn)
	r.LabeledCounter(dyn, "wfd")
}
`
	findings := checkFixture(t, obsNameRule(), "catpa/internal/fix", "fix.go", src)
	wantLines(t, findings, "obsname", 9, 10, 11)
}

func TestObsNameFlagsDuplicateRegistration(t *testing.T) {
	src := `package fix

import "catpa/internal/obs"

func wireA(r *obs.Registry) {
	r.Counter("sweep.sets.total")
	r.Gauge("sweep.workers")
}

func wireB(r *obs.Registry) {
	r.Counter("sweep.sets.total")
	r.Histogram("sweep.workers", nil)
}
`
	// Both the repeated counter name and the gauge/histogram collision
	// are flagged: the registry namespace spans metric kinds.
	findings := checkFixture(t, obsNameRule(), "catpa/internal/fix", "fix.go", src)
	wantLines(t, findings, "obsname", 11, 12)
}

func TestObsNameLabeledCounterBaseMayRepeat(t *testing.T) {
	src := `package fix

import "catpa/internal/obs"

func wire(r *obs.Registry) *obs.Counter {
	a := r.LabeledCounter("sweep.sets.accepted", "wfd")
	_ = r.LabeledCounter("sweep.sets.accepted", "ffd")
	return a
}
`
	findings := checkFixture(t, obsNameRule(), "catpa/internal/fix", "fix.go", src)
	wantLines(t, findings, "obsname")
}

func TestObsNameIgnoresOtherReceivers(t *testing.T) {
	// A same-named method on an unrelated type must not trip the rule.
	src := `package fix

type fake struct{}

func (fake) Counter(name string) int { return len(name) }

func wire(f fake, dyn string) int { return f.Counter(dyn) }
`
	findings := checkFixture(t, obsNameRule(), "catpa/internal/fix", "fix.go", src)
	wantLines(t, findings, "obsname")
}

func TestObsNameSuppressible(t *testing.T) {
	src := `package fix

import "catpa/internal/obs"

func wire(r *obs.Registry, dyn string) {
	//lint:ignore mclint/obsname name comes from a validated config file
	r.Counter(dyn)
}
`
	findings := checkFixture(t, obsNameRule(), "catpa/internal/fix", "fix.go", src)
	wantLines(t, findings, "obsname")
}
