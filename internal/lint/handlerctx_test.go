package lint

import "testing"

// The seeded-violation fixture: the shapes a hurried handler patch
// would introduce — a fresh root context in a handler, a TODO in a
// helper, and the function value passed around — must all be flagged.
func TestHandlerCtxFlagsRootContexts(t *testing.T) {
	src := `package fix

import "context"

func handle() error {
	ctx := context.Background()
	return work(ctx)
}

func helper() context.Context { return context.TODO() }

var rootFn = context.Background

func work(ctx context.Context) error { return ctx.Err() }

func derived(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, 0)
}
`
	rule := &HandlerCtx{Prefixes: []string{"catpa/internal/serve"}}
	findings := checkFixture(t, []Analyzer{rule}, "catpa/internal/serve", "fix.go", src)
	wantLines(t, findings, "handlerctx", 6, 10, 12)
}

func TestHandlerCtxCoversSubpackages(t *testing.T) {
	src := `package fix

import "context"

func retry() error { return context.Background().Err() }
`
	rule := &HandlerCtx{Prefixes: []string{"catpa/internal/serve"}}
	findings := checkFixture(t, []Analyzer{rule}, "catpa/internal/serve/client", "fix.go", src)
	wantLines(t, findings, "handlerctx", 5)
}

func TestHandlerCtxScopedToListedPrefixes(t *testing.T) {
	src := `package fix

import "context"

func elsewhere() error { return context.Background().Err() }
`
	rule := &HandlerCtx{Prefixes: []string{"catpa/internal/serve"}}
	for _, path := range []string{
		"catpa/internal/runner", // unrelated package
		"catpa/internal/served", // shares the prefix string but not the path
	} {
		findings := checkFixture(t, []Analyzer{rule}, path, "fix.go", src)
		wantLines(t, findings, "handlerctx")
	}
}

func TestHandlerCtxSuppressible(t *testing.T) {
	src := `package fix

import "context"

func boot() error {
	//lint:ignore mclint/handlerctx daemon startup precedes any request
	ctx := context.Background()
	return ctx.Err()
}
`
	rule := &HandlerCtx{Prefixes: []string{"catpa/internal/serve"}}
	findings := checkFixture(t, []Analyzer{rule}, "catpa/internal/serve", "fix.go", src)
	wantLines(t, findings, "handlerctx")
}
