package lint

import "testing"

func TestFeasDocRequiresCitations(t *testing.T) {
	src := `package edfvd

// Feasible reports whether the subset passes at least one Theorem 1
// condition.
func Feasible() bool { return true }

// SimpleFeasible implements the pessimistic condition of Eq. 4.
func SimpleFeasible() bool { return true }

// Documented but with no citation of any equation.
func Vague() bool { return false }

func Undocumented() bool { return false }

// Runs implements Algorithm 1.
func Runs() (int, bool) { return 0, true }

// Util has no citation but also returns no bool, so it is exempt.
func Util() float64 { return 0 }

// unexportedNeedsNothing.
func unexportedNeedsNothing() bool { return false }
`
	rule := &FeasDoc{Packages: []string{"catpa/internal/edfvd"}}
	findings := checkFixture(t, []Analyzer{rule}, "catpa/internal/edfvd", "fix.go", src)
	wantLines(t, findings, "feasdoc", 11, 13)
}

func TestFeasDocCoversMethods(t *testing.T) {
	src := `package edfvd

type Report struct{}

// Feasible reports whether at least one Theorem 1 condition holds.
func (r *Report) Feasible() bool { return true }

// Bad lacks any reference.
func (r *Report) Bad() bool { return false }
`
	rule := &FeasDoc{Packages: []string{"catpa/internal/edfvd"}}
	findings := checkFixture(t, []Analyzer{rule}, "catpa/internal/edfvd", "fix.go", src)
	wantLines(t, findings, "feasdoc", 9)
}

func TestFeasDocScopedToConfiguredPackages(t *testing.T) {
	src := `package other

func Feasible() bool { return true }
`
	rule := &FeasDoc{Packages: []string{"catpa/internal/edfvd", "catpa/internal/partition"}}
	findings := checkFixture(t, []Analyzer{rule}, "catpa/internal/other", "fix.go", src)
	wantLines(t, findings, "feasdoc")
}
