package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// checkTestdataWithModule is checkTestdata for passes whose facts come
// from the real module packages (cross-package annotations, the Backend
// interface): the runner sees the whole module plus the fixture.
// TestRealTreeClean guarantees the module itself contributes no
// findings, so every reported line belongs to the fixture.
func checkTestdataWithModule(t *testing.T, passes []Analyzer, filename, src string) []Finding {
	t.Helper()
	ld := sharedLoader(t)
	if src == "" {
		data, err := os.ReadFile(filepath.Join("testdata", filename))
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		src = string(data)
	}
	pkg, err := ld.CheckSource("catpa/internal/fixture", filename, src)
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	pkgs, err := ld.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	runner := &Runner{Passes: passes, KnownPasses: PassNames("catpa")}
	return runner.Run(append(pkgs, pkg))
}

func TestAllocFreeFixture(t *testing.T) {
	findings := checkTestdata(t, []Analyzer{&AllocFree{}}, "allocfree.go")
	wantLines(t, findings, "allocfree",
		42, // unguarded make
		43, // append outside the slab idiom
		44, // unannotated callee
		45, // boxing assignment
		54, // slice literal
		55, // map write
		56, // go statement
		57, // string concatenation
		74, // escaping closure
		80, // variadic fan-in
	)
	wantLines(t, findings, annotationRule)
}

// TestAllocFreeCrossPackage proves the annotation facts cross package
// boundaries through object identity: a fixture function calling an
// annotated internal/mc method is clean, one calling an unannotated
// method is flagged.
func TestAllocFreeCrossPackage(t *testing.T) {
	src := `package fixture

import "catpa/internal/mc"

//mc:allocfree cross-package caller
func caller(ts *mc.TaskSet) float64 {
	u := ts.TotalUtilAt(1)
	c := ts.Clone()
	_ = c
	return u
}
`
	findings := checkTestdataWithModule(t, []Analyzer{&AllocFree{}}, "cross.go", src)
	wantLines(t, findings, "allocfree", 8)
}

func TestDeterminismFixture(t *testing.T) {
	findings := checkTestdata(t, []Analyzer{&Determinism{}}, "determinism.go")
	wantLines(t, findings, "determinism",
		18, // raw map range in the root
		38, // time.Now in a transitively reachable callee
		39, // global rand in a transitively reachable callee
	)
}

func TestScalarBoundaryFixture(t *testing.T) {
	passes := []Analyzer{&ScalarBoundary{PartitionPath: "catpa/internal/partition"}}
	findings := checkTestdataWithModule(t, passes, "scalarboundary.go", "")
	wantLines(t, findings, "scalarboundary",
		16, // non-scalar result
		18, // non-scalar parameter
	)
}

func TestAtomicMixFixture(t *testing.T) {
	findings := checkTestdata(t, []Analyzer{&AtomicMix{}}, "atomicmix.go")
	wantLines(t, findings, "atomicmix",
		14, // plain read of an atomically updated package variable
		33, // plain write of an atomically updated struct field
	)
}
