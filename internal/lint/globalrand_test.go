package lint

import "testing"

func TestGlobalRandFlagsGlobalFunctions(t *testing.T) {
	src := `package fix

import "math/rand"

func draw() float64 { return rand.Float64() }

func roll(n int) int { return rand.Intn(n) }

var pick = rand.Perm(4)

var fn = rand.Int63 // passing the global function as a value

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
`
	findings := checkFixture(t, []Analyzer{&GlobalRand{}}, "catpa/internal/fix", "fix.go", src)
	wantLines(t, findings, "globalrand", 5, 7, 9, 11, 14)
}

func TestGlobalRandAllowsSeededSources(t *testing.T) {
	src := `package fix

import "math/rand"

func draw(rng *rand.Rand) float64 { return rng.Float64() }

func build(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func zipf(rng *rand.Rand) *rand.Zipf { return rand.NewZipf(rng, 1.1, 1, 100) }

func use(rng *rand.Rand, n int) int { return rng.Intn(n) }
`
	findings := checkFixture(t, []Analyzer{&GlobalRand{}}, "catpa/internal/fix", "fix.go", src)
	wantLines(t, findings, "globalrand")
}
