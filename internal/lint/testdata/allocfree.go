// The allocfree fixture: the clean mirror of Partitioner.Run's idioms
// must produce no findings, and every regressed variant — one protected
// optimization removed per line — must be caught.
package fixture

import "fmt"

type engine struct {
	buf   []float64
	tasks []int
	sink  interface{}
}

// run mirrors Partitioner.Run: a panic path, cap-guarded growth, slab
// appends, and annotated helpers only. No findings expected.
//
//mc:allocfree the clean mirror
func (e *engine) run(n int) {
	if n < 0 {
		panic(fmt.Sprintf("fixture: bad n %d", n))
	}
	if cap(e.buf) < n {
		e.buf = make([]float64, n)
	}
	e.tasks = e.tasks[:0]
	e.tasks = append(e.tasks, n)
	e.buf = append(e.buf[:0], float64(n))
	e.hot(n)
}

//mc:allocfree helper of the mirror
func (e *engine) hot(n int) {
	for i := 0; i < len(e.buf); i++ {
		e.buf[i] += float64(n)
	}
}

// runRegressed is run with the protected optimizations removed.
//
//mc:allocfree the regressed mirror
func (e *engine) runRegressed(n int) {
	buf := make([]float64, n)    // unguarded make
	out := append([]int(nil), n) // append outside the slab idiom
	e.cold(n)                    // unannotated callee
	e.sink = n                   // boxes into the interface field
	_ = buf
	_ = out
}

func (e *engine) cold(n int) {}

//mc:allocfree assorted violations
func violations(n int, m map[int]int) string {
	s := []int{n}             // slice literal
	m[n] = n                  // map write
	go spin()                 // goroutine stack
	name := "task-" + itoa(n) // string concatenation
	_ = s
	return name
}

//mc:allocfree empty
func spin() {}

//mc:allocfree constant
func itoa(n int) string { return "" }

//mc:allocfree takes a comparator like sortIdx
func apply(f func(float64) float64) {}

//mc:allocfree closures
func closures(e *engine) {
	apply(func(x float64) float64 { return x + 1 }) // clean: module-internal callee
	e.sink = func() {}                              // stored closure escapes
}

//mc:allocfree variadic
func fanIn(xs []int) int {
	a := sum(xs...) // clean: spreads an existing slice
	b := sum(1, 2)  // packs a fresh backing slice
	return a + b
}

//mc:allocfree sums
func sum(xs ...int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
