// The determinism fixture: hazards are flagged only on paths reachable
// from a //mc:deterministic root, and the sanctioned key-collection
// idiom stays clean.
package fixture

import (
	"math/rand"
	"sort"
	"time"
)

// writeJournal is the serialization root.
//
//mc:deterministic the fixture journal writer
func writeJournal(m map[string]int) []string {
	keys := sortKeys(m)
	stamp()
	for k := range m { // raw map range on a tainted path
		_ = m[k]
	}
	return keys
}

// sortKeys is reachable from the root but uses the sanctioned idiom:
// the range body only collects keys, and the keys are sorted before
// use. No findings expected.
func sortKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// stamp is reachable transitively; both hazards must be attributed.
func stamp() int64 {
	t := time.Now()                           // wall clock on a tainted path
	return t.UnixNano() + int64(rand.Intn(3)) // global rand on a tainted path
}

// unreached has the same hazards but no path from a root: clean.
func unreached(m map[string]int) int64 {
	for k := range m {
		_ = k
	}
	return time.Now().UnixNano()
}
