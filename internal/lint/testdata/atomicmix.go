// The atomicmix fixture: any variable or field whose address reaches a
// sync/atomic function may never be accessed plainly.
package fixture

import "sync/atomic"

var hits int64

func bump() {
	atomic.AddInt64(&hits, 1)
}

func readPlain() int64 {
	return hits // plain read races with the atomic adds
}

func readAtomic() int64 {
	return atomic.LoadInt64(&hits)
}

type counters struct {
	n int64
	m int64
}

var cs counters

func bumpField() {
	atomic.AddInt64(&cs.n, 1)
}

func mixField() {
	cs.n++ // plain write races with the atomic adds
	cs.m++ // clean: m is never accessed atomically
}
