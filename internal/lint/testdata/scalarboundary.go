// The scalarboundary fixture: a module type that satisfies
// partition.Backend (here by embedding) must keep every exported
// method scalar-only — extra exported methods are side channels around
// the boundary.
package fixture

import (
	"catpa/internal/mc"
	"catpa/internal/partition"
)

type widened struct {
	partition.Backend
}

func (w *widened) LeakState() []float64 { return nil } // non-scalar result

func (w *widened) Inject(weights map[int]float64) {} // non-scalar parameter

func (w *widened) Tune(c int, alpha float64) float64 { return alpha } // clean: scalars only

func (w *widened) Prepare(ts *mc.TaskSet) {} // clean: the declared exception

func (w *widened) ReportInto(c int, ci *partition.CoreInfo) {} // clean: the declared exception

func (w *widened) scratch(xs []int) {} // clean: unexported

// narrow does not implement Backend; its methods are out of scope.
type narrow struct{}

func (narrow) LeakState() []float64 { return nil }
