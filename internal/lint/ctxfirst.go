package lint

import (
	"go/ast"
	"go/types"
)

// CtxFirst requires exported functions and methods of the listed
// packages that accept a context.Context to take it as the first
// parameter. The fault-tolerant runner threads cancellation through
// every layer (runner -> sweep -> worker pool), and the Go convention
// of ctx-first is what makes that plumbing auditable: a context buried
// in the middle of a signature is easy to drop on the floor when a
// call site is refactored.
type CtxFirst struct {
	// Packages lists the import paths the rule applies to.
	Packages []string
}

// Name implements Analyzer.
func (*CtxFirst) Name() string { return "ctxfirst" }

// Doc implements Analyzer.
func (*CtxFirst) Doc() string {
	return "exported functions in runner/experiments taking a context.Context must take it first"
}

// Run implements Analyzer.
func (r *CtxFirst) Run(p *Pass) {
	pkg := p.Pkg
	enforced := false
	for _, p := range r.Packages {
		if pkg.ImportPath == p {
			enforced = true
			break
		}
	}
	if !enforced {
		return
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() {
				continue
			}
			// Walk the flattened parameter list: a field like
			// "a, b context.Context" declares two parameters, so track
			// the position of every declared name (or anonymous slot).
			idx := 0
			for _, field := range fd.Type.Params.List {
				n := len(field.Names)
				if n == 0 {
					n = 1
				}
				if isContextType(pkg.Info.TypeOf(field.Type)) && idx > 0 {
					p.Report(field, "exported %s takes context.Context as parameter %d; the context must be the first parameter", fd.Name.Name, idx+1)
				}
				idx += n
			}
		}
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
