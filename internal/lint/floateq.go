package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatEq flags == and != comparisons whose operands are
// floating-point expressions. Schedulability conditions are chains of
// floating-point algebra (Eqs. 4-9 of the paper); exact equality on
// their results silently flips near boundaries, so all comparisons
// must go through the tolerant helpers in the allowlisted epsilon
// file (mc.ApproxEq and friends), which is the one place exact
// comparison is sanctioned.
type FloatEq struct {
	// Allow lists slash-separated path suffixes of files where exact
	// float comparison is permitted (the epsilon-helper file itself).
	Allow []string
}

// Name implements Analyzer.
func (*FloatEq) Name() string { return "floateq" }

// Doc implements Analyzer.
func (*FloatEq) Doc() string {
	return "no ==/!= between floating-point expressions outside the epsilon-helper allowlist"
}

// Run implements Analyzer.
func (r *FloatEq) Run(p *Pass) {
	pkg := p.Pkg
	for _, file := range pkg.Files {
		if r.allowed(pkg.FileOf(file.Pos())) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isFloat(pkg.Info.TypeOf(be.X)) || isFloat(pkg.Info.TypeOf(be.Y)) {
				p.Report(be, "floating-point %s comparison; use mc.ApproxEq (or an explicit epsilon) instead", be.Op)
			}
			return true
		})
	}
}

// allowed reports whether the file is on the exact-comparison allowlist.
func (r *FloatEq) allowed(filename string) bool {
	slashed := strings.ReplaceAll(filename, "\\", "/")
	for _, suffix := range r.Allow {
		if strings.HasSuffix(slashed, suffix) {
			return true
		}
	}
	return false
}

// isFloat reports whether t is (or is based on) a floating-point or
// complex basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&(types.IsFloat|types.IsComplex) != 0
}
