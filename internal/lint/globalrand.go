package lint

import (
	"go/ast"
	"go/types"
)

// GlobalRand flags uses of the package-level math/rand convenience
// functions (rand.Float64, rand.Intn, rand.Seed, ...), which draw from
// the process-global source. Every stochastic path in this repository
// — task generation, the randomized execution model, the experiment
// harness — must thread an explicitly seeded *rand.Rand so that runs
// are reproducible and parallel workers are deterministic. The
// constructors (rand.New, rand.NewSource, rand.NewZipf and the v2
// equivalents) remain legal, as do all methods on *rand.Rand.
type GlobalRand struct{}

// Name implements Rule.
func (*GlobalRand) Name() string { return "globalrand" }

// Doc implements Rule.
func (*GlobalRand) Doc() string {
	return "no global math/rand functions in non-test code; thread a seeded *rand.Rand"
}

// randConstructors are the package-level functions that do not touch
// the global source and stay allowed.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// Check implements Rule. It walks identifier uses rather than call
// expressions so that passing rand.Float64 as a value is caught too.
func (*GlobalRand) Check(pkg *Package, report Reporter) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ident, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pkg.Info.Uses[ident].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods on *rand.Rand are fine
			}
			if randConstructors[fn.Name()] {
				return true
			}
			report(ident, "use of global %s.%s; thread a seeded *rand.Rand for reproducibility", path, fn.Name())
			return true
		})
	}
}
