package lint

import (
	"go/ast"
	"go/types"
)

// GlobalRand flags uses of the package-level math/rand convenience
// functions (rand.Float64, rand.Intn, rand.Seed, ...), which draw from
// the process-global source. Every stochastic path in this repository
// — task generation, the randomized execution model, the experiment
// harness — must thread an explicitly seeded *rand.Rand so that runs
// are reproducible and parallel workers are deterministic. The
// constructors (rand.New, rand.NewSource, rand.NewZipf and the v2
// equivalents) remain legal, as do all methods on *rand.Rand.
type GlobalRand struct{}

// Name implements Analyzer.
func (*GlobalRand) Name() string { return "globalrand" }

// Doc implements Analyzer.
func (*GlobalRand) Doc() string {
	return "no global math/rand functions in non-test code; thread a seeded *rand.Rand"
}

// randConstructors are the package-level functions that do not touch
// the global source and stay allowed.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// Run implements Analyzer. It walks identifier uses rather than call
// expressions so that passing rand.Float64 as a value is caught too.
func (*GlobalRand) Run(p *Pass) {
	pkg := p.Pkg
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ident, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pkg.Info.Uses[ident].(*types.Func)
			if !ok || !isGlobalRandFunc(fn) {
				return true
			}
			p.Report(ident, "use of global %s.%s; thread a seeded *rand.Rand for reproducibility", fn.Pkg().Path(), fn.Name())
			return true
		})
	}
}

// isGlobalRandFunc reports whether fn is a package-level math/rand
// function drawing from the process-global source. Shared with the
// determinism pass, which treats the same set as hazards.
func isGlobalRandFunc(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false // methods on *rand.Rand are fine
	}
	return !randConstructors[fn.Name()]
}
