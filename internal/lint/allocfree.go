package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AllocFree rejects allocation-introducing constructs inside functions
// annotated //mc:allocfree — the static twin of the AllocsPerRun == 0
// benchmarks guarding the partitioning fast path. The pass is a
// syntactic over-approximation of the compiler's escape analysis,
// tuned so the repository's sanctioned amortization idioms pass and
// everything else fails loudly:
//
//   - append is allowed only in the slab-reuse form x = append(x, ...)
//     (including x = append(x[:0], ...)), which amortizes to zero
//     steady-state allocations; any other append may grow the heap on
//     every call.
//   - make and new are allowed only inside an if branch whose condition
//     consults cap(...) — the cap-guarded growth idiom that allocates
//     once and reuses thereafter.
//   - function literals are allowed only as direct arguments to
//     module-internal named functions (which must themselves be
//     annotated, so their use of the closure is checked at their own
//     definition); a closure passed to an unknown callee or stored
//     anywhere must be assumed to escape.
//   - converting a concrete non-pointer-shaped value to an interface
//     type boxes it on the heap; pointer-shaped values (pointers, maps,
//     chans, funcs) fit the interface word and stay free, as do
//     interface-to-interface assignments.
//   - variadic calls that pack one or more arguments allocate the
//     backing slice; spreading an existing slice (f(xs...)) does not.
//   - map literals, make(map), and map-index writes; slice literals;
//     &composite literals; string concatenation; fmt calls; and go
//     statements all allocate by construction.
//   - every statically resolved module-internal callee must carry
//     //mc:allocfree too, so deleting one annotation breaks the build
//     of every annotated caller; interface-method and other dynamic
//     calls are exempt (their concrete implementations are annotated
//     at their own definitions).
//
// Arguments to panic(...) are exempt wholesale: the crash path may
// format messages.
type AllocFree struct{}

// Name implements Analyzer.
func (*AllocFree) Name() string { return "allocfree" }

// Doc implements Analyzer.
func (*AllocFree) Doc() string {
	return "functions annotated //mc:allocfree must not contain allocation-introducing constructs"
}

// Run implements Analyzer.
func (a *AllocFree) Run(p *Pass) {
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil || !funcAnnotated(p.Facts, fn, FactAllocFree) {
				continue
			}
			checkAllocFree(p, fd, fn)
		}
	}
}

// checkAllocFree walks one annotated function body. A pre-walk collects
// the exempt regions and sanctioned idiom sites; the main walk then
// flags everything else.
func checkAllocFree(p *Pass, fd *ast.FuncDecl, fn *types.Func) {
	info := p.Pkg.Info

	var panicArgs intervals // panic(...) arguments: the crash path may allocate
	var capGuards intervals // bodies of if-statements guarded by cap(...)
	slabAppends := make(map[*ast.CallExpr]bool)
	allowedLits := make(map[*ast.FuncLit]bool)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltinPanic(p.Pkg, n.Fun) && len(n.Args) == 1 {
				arg := n.Args[0]
				panicArgs = append(panicArgs, span{arg.Pos(), arg.End()})
			}
			// A closure handed directly to a module-internal named plain
			// function does not escape through it: the callee carries its
			// own //mc:allocfree obligation, which forbids it from storing
			// the func value anywhere heap-bound.
			callee := staticCallee(info, n.Fun)
			if callee != nil && !recvIsInterface(callee) &&
				callee.Pkg() != nil && p.Pkg.InModule(callee.Pkg().Path()) {
				for _, arg := range n.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						allowedLits[lit] = true
					}
				}
			}
		case *ast.IfStmt:
			if condConsultsCap(info, n.Cond) {
				capGuards = append(capGuards, span{n.Body.Pos(), n.Body.End()})
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok && isBuiltin(info, call.Fun, "append") && len(call.Args) > 0 {
					base := call.Args[0]
					if sl, ok := base.(*ast.SliceExpr); ok {
						base = sl.X
					}
					if types.ExprString(n.Lhs[0]) == types.ExprString(base) {
						slabAppends[call] = true
					}
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n != nil && panicArgs.contains(n.Pos()) {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			checkAllocCall(p, n, slabAppends, capGuards)
		case *ast.FuncLit:
			if !allowedLits[n] {
				p.Report(n, "closure must be assumed to escape to the heap; hoist the state or pass it to a module-internal function")
				return false
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				p.Report(n, "slice literal allocates its backing array; reuse a slab")
			case *types.Map:
				p.Report(n, "map literal allocates; hot paths must not build maps")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					p.Report(n, "address of composite literal escapes to the heap; reuse a preallocated value")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n.X)) {
				p.Report(n, "string concatenation allocates; precompute the string outside the hot path")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info.TypeOf(n.Lhs[0])) {
				p.Report(n, "string concatenation allocates; precompute the string outside the hot path")
			}
			for _, lhs := range n.Lhs {
				if idx, ok := lhs.(*ast.IndexExpr); ok && isMapType(info.TypeOf(idx.X)) {
					p.Report(lhs, "map write may rehash and allocate; hot paths must use slice-indexed state")
				}
			}
			if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Rhs {
						if boxes(info, n.Rhs[i], info.TypeOf(n.Lhs[i])) {
							p.Report(n.Rhs[i], "assignment boxes a concrete value into an interface, allocating")
						}
					}
				}
			}
		case *ast.ReturnStmt:
			sig, _ := fn.Type().(*types.Signature)
			if sig != nil && len(n.Results) == sig.Results().Len() {
				for i, res := range n.Results {
					if boxes(info, res, sig.Results().At(i).Type()) {
						p.Report(res, "return boxes a concrete value into an interface, allocating")
					}
				}
			}
		case *ast.GoStmt:
			p.Report(n, "go statement allocates a goroutine stack")
		}
		return true
	})
}

// checkAllocCall applies the call-shaped allocfree checks: builtin
// growth idioms, fmt, unannotated module callees, variadic fan-in, and
// argument boxing.
func checkAllocCall(p *Pass, call *ast.CallExpr, slabAppends map[*ast.CallExpr]bool, capGuards intervals) {
	info := p.Pkg.Info

	// Conversions: T(x) boxes when T is an interface type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && boxes(info, call.Args[0], tv.Type) {
			p.Report(call, "conversion boxes a concrete value into an interface, allocating")
		}
		return
	}

	if ident, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[ident].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				if !slabAppends[call] {
					p.Report(call, "append outside the slab-reuse idiom (x = append(x, ...)) may grow the heap on every call")
				}
			case "make":
				if !capGuards.contains(call.Pos()) {
					p.Report(call, "make outside a cap-guarded growth branch (if cap(s) < n { ... }) allocates on every call")
				}
			case "new":
				if !capGuards.contains(call.Pos()) {
					p.Report(call, "new allocates; reuse a preallocated value")
				}
			}
			return
		}
	}

	fn := staticCallee(info, call.Fun)
	if fn != nil && fn.Pkg() != nil {
		switch {
		case fn.Pkg().Path() == "fmt":
			p.Report(call, "fmt.%s allocates (boxing and formatting); hot paths must not format", fn.Name())
			return
		case p.Pkg.InModule(fn.Pkg().Path()) && !recvIsInterface(fn):
			if !funcAnnotated(p.Facts, fn, FactAllocFree) {
				p.Report(call, "calls %s, which is not annotated //mc:allocfree; annotate the callee or hoist the call off the hot path", fn.FullName())
			}
		}
	}

	sig, _ := info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	np := sig.Params().Len()
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= np {
		p.Report(call, "variadic call packs %d argument(s) into a freshly allocated slice", len(call.Args)-np+1)
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case !sig.Variadic() || i < np-1:
			if i < np {
				pt = sig.Params().At(i).Type()
			}
		case call.Ellipsis != token.NoPos:
			pt = sig.Params().At(np - 1).Type()
		default:
			if sl, ok := sig.Params().At(np - 1).Type().Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if boxes(info, arg, pt) {
			p.Report(arg, "argument boxes a concrete value into an interface parameter, allocating")
		}
	}
}

// condConsultsCap reports whether the if condition contains a call to
// the builtin cap — the signature of the amortized-growth guard.
func condConsultsCap(info *types.Info, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isBuiltin(info, call.Fun, "cap") {
			found = true
		}
		return !found
	})
	return found
}

// boxes reports whether assigning expr to a target of type "target"
// converts a concrete value into an interface in a way that allocates:
// the target is an interface, the value is concrete, and its
// representation does not fit the interface data word. Pointer-shaped
// values (pointers, maps, channels, funcs) fit; everything else —
// including ints, floats, strings, slices and structs — is copied to
// the heap. nil and interface-typed values never box. Type parameters
// are not interfaces at run time and are skipped.
func boxes(info *types.Info, expr ast.Expr, target types.Type) bool {
	if expr == nil || target == nil {
		return false
	}
	if _, isTP := types.Unalias(target).(*types.TypeParam); isTP {
		return false
	}
	if !types.IsInterface(target) {
		return false
	}
	t := info.TypeOf(expr)
	if t == nil || types.IsInterface(t) {
		return false
	}
	if basic, ok := t.(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false
	}
	return true
}
