package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// staticCallee resolves the function a call expression invokes when the
// callee is named statically — a plain identifier, a selector, or a
// generic instantiation of either. Calls through stored func values
// return nil. For interface method calls the result is the interface's
// method object (recvIsInterface distinguishes it from a concrete one).
func staticCallee(info *types.Info, fun ast.Expr) *types.Func {
	switch f := fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	case *ast.ParenExpr:
		return staticCallee(info, f.X)
	case *ast.IndexExpr:
		return staticCallee(info, f.X)
	case *ast.IndexListExpr:
		return staticCallee(info, f.X)
	}
	return nil
}

// recvIsInterface reports whether fn is declared on an interface, i.e.
// calls to it dispatch dynamically.
func recvIsInterface(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// isBuiltin reports whether fun denotes the predeclared function name
// (append, make, cap, ...).
func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	ident, ok := fun.(*ast.Ident)
	if !ok || ident.Name != name {
		return false
	}
	_, ok = info.Uses[ident].(*types.Builtin)
	return ok
}

// span is a half-open source position interval [lo, hi).
type span struct{ lo, hi token.Pos }

// intervals is a set of spans with containment queries; passes use it
// to mark exempt subtrees (panic arguments, cap-guarded growth
// branches, atomic call expressions) collected in a pre-walk.
type intervals []span

func (iv intervals) contains(p token.Pos) bool {
	for _, s := range iv {
		if s.lo <= p && p < s.hi {
			return true
		}
	}
	return false
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isStringType reports whether t's underlying type is a string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}
