package lint

import "testing"

func backendRegRule() []Analyzer {
	return []Analyzer{&BackendReg{PartitionPath: "catpa/internal/partition"}}
}

func TestBackendRegFlagsBadNames(t *testing.T) {
	src := `package fix

import "catpa/internal/partition"

func wire(be func() partition.Backend) {
	partition.RegisterBackend("amcrtb", be)
	partition.RegisterBackend("AMC", be)
	partition.RegisterBackend("amc-rtb", be)
	partition.RegisterBackend("2fast", be)
	partition.RegisterBackend("", be)
}
`
	findings := checkFixture(t, backendRegRule(), "catpa/internal/fix", "fix.go", src)
	wantLines(t, findings, "backendreg", 7, 8, 9, 10)
}

func TestBackendRegRequiresConstantNames(t *testing.T) {
	src := `package fix

import "catpa/internal/partition"

const suffix = "rtb"

func wire(be func() partition.Backend, dyn string) {
	partition.RegisterBackend("amc"+suffix, be)
	partition.RegisterBackend(dyn, be)
}
`
	// The concatenation of constants is itself constant and valid; only
	// the dynamic name is flagged.
	findings := checkFixture(t, backendRegRule(), "catpa/internal/fix", "fix.go", src)
	wantLines(t, findings, "backendreg", 9)
}

func TestBackendRegFlagsDuplicateAcrossPackages(t *testing.T) {
	// The registry namespace is module-wide: one rule value runs over
	// both packages (as mclint does) and must catch the collision even
	// though each package registers the name once.
	srcA := `package fixa

import "catpa/internal/partition"

func wire(be func() partition.Backend) {
	partition.RegisterBackend("amcrtb", be)
}
`
	srcB := `package fixb

import "catpa/internal/partition"

func wire(be func() partition.Backend) {
	partition.RegisterBackend("amcrtb", be)
	partition.RegisterBackend("edfvd", be)
}
`
	ld := sharedLoader(t)
	pkgA, err := ld.CheckSource("catpa/internal/fixa", "fixa.go", srcA)
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	pkgB, err := ld.CheckSource("catpa/internal/fixb", "fixb.go", srcB)
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	runner := &Runner{Passes: backendRegRule(), KnownPasses: PassNames("catpa")}
	findings := runner.Run([]*Package{pkgA, pkgB})
	wantLines(t, findings, "backendreg", 6)
	for _, f := range findings {
		if f.Pass == "backendreg" && f.Pos.Filename != "fixb.go" {
			t.Errorf("duplicate flagged in %s, want fixb.go", f.Pos.Filename)
		}
	}
}

func TestBackendRegIgnoresOtherFunctions(t *testing.T) {
	// A same-named function from another package must not trip the rule.
	src := `package fix

func RegisterBackend(name string, f func()) {}

func wire(dyn string) {
	RegisterBackend(dyn, nil)
}
`
	findings := checkFixture(t, backendRegRule(), "catpa/internal/fix", "fix.go", src)
	wantLines(t, findings, "backendreg")
}

func TestBackendRegSuppressible(t *testing.T) {
	src := `package fix

import "catpa/internal/partition"

func wire(be func() partition.Backend, dyn string) {
	//lint:ignore mclint/backendreg name comes from a validated plugin manifest
	partition.RegisterBackend(dyn, be)
}
`
	findings := checkFixture(t, backendRegRule(), "catpa/internal/fix", "fix.go", src)
	wantLines(t, findings, "backendreg")
}
