package lint

import "testing"

func TestCtxFirstFlagsMisplacedContext(t *testing.T) {
	src := `package fix

import "context"

type Sweep struct{}

func RunContext(ctx context.Context, n int) error { return ctx.Err() }

func Bad(n int, ctx context.Context) error { return ctx.Err() }

func BadTail(a, b string, ctx context.Context, n int) error { return ctx.Err() }

func (s *Sweep) Run(ctx context.Context) error { return ctx.Err() }

func (s *Sweep) BadMethod(n int, ctx context.Context) error { return ctx.Err() }

func unexported(n int, ctx context.Context) error { return ctx.Err() }

func NoContext(a, b int) int { return a + b }
`
	rule := &CtxFirst{Packages: []string{"catpa/internal/runner"}}
	findings := checkFixture(t, []Analyzer{rule}, "catpa/internal/runner", "fix.go", src)
	wantLines(t, findings, "ctxfirst", 9, 11, 15)
}

func TestCtxFirstGroupedParams(t *testing.T) {
	// "a, b context.Context" declares two context parameters in one
	// field; only a context at flat index 0 is conforming.
	src := `package fix

import "context"

func GroupedFirst(ctx, ctx2 context.Context, n int) error { return ctx.Err() }

func GroupedLate(n, m int, ctx context.Context) error { return ctx.Err() }
`
	rule := &CtxFirst{Packages: []string{"catpa/internal/runner"}}
	findings := checkFixture(t, []Analyzer{rule}, "catpa/internal/runner", "fix.go", src)
	wantLines(t, findings, "ctxfirst", 7)
}

func TestCtxFirstScopedToListedPackages(t *testing.T) {
	src := `package fix

import "context"

func Elsewhere(n int, ctx context.Context) error { return ctx.Err() }
`
	rule := &CtxFirst{Packages: []string{"catpa/internal/runner"}}
	findings := checkFixture(t, []Analyzer{rule}, "catpa/internal/sim", "fix.go", src)
	wantLines(t, findings, "ctxfirst")
}

func TestCtxFirstSuppressible(t *testing.T) {
	src := `package fix

import "context"

//lint:ignore mclint/ctxfirst callback signature fixed by the stdlib interface it satisfies
func Pinned(n int, ctx context.Context) error { return ctx.Err() }
`
	rule := &CtxFirst{Packages: []string{"catpa/internal/runner"}}
	findings := checkFixture(t, []Analyzer{rule}, "catpa/internal/runner", "fix.go", src)
	wantLines(t, findings, "ctxfirst")
}
