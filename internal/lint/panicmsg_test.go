package lint

import "testing"

func TestPanicMsgEnforcesPrefix(t *testing.T) {
	src := `package fix

import "fmt"

func bare() { panic("boom") }

func formatted(n int) { panic(fmt.Sprintf("bad state %d", n)) }

func dynamic(err error) { panic(err) }

func good() { panic("fix: invariant violated") }

func goodFmt(n int) { panic(fmt.Sprintf("fix: bad state %d", n)) }

const msg = "fix: constant message"

func goodConst() { panic(msg) }

func goodErrorf(n int) { panic(fmt.Errorf("fix: bad state %d", n)) }
`
	rule := &PanicMsg{InternalPrefix: "catpa/internal/"}
	findings := checkFixture(t, []Analyzer{rule}, "catpa/internal/fix", "fix.go", src)
	wantLines(t, findings, "panicmsg", 5, 7, 9)
}

func TestPanicMsgScopedToInternal(t *testing.T) {
	src := `package main

func main() { panic("anything goes outside internal/") }
`
	rule := &PanicMsg{InternalPrefix: "catpa/internal/"}
	findings := checkFixture(t, []Analyzer{rule}, "catpa/cmd/fix", "fix.go", src)
	wantLines(t, findings, "panicmsg")
}

func TestPanicMsgIgnoresShadowedPanic(t *testing.T) {
	src := `package fix

func panicIn(panic func(string)) { panic("not the builtin") }
`
	rule := &PanicMsg{InternalPrefix: "catpa/internal/"}
	findings := checkFixture(t, []Analyzer{rule}, "catpa/internal/fix", "fix.go", src)
	wantLines(t, findings, "panicmsg")
}
