package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"catpa/internal/obs"
)

// registrars are the obs.Registry methods whose first argument is a
// metric name.
var registrars = map[string]bool{
	"Counter":        true,
	"Gauge":          true,
	"Histogram":      true,
	"LabeledCounter": true,
}

// ObsName enforces the metric-naming contract of internal/obs at
// compile time rather than at registration panic: every name passed to
// Registry.Counter / Gauge / Histogram / LabeledCounter must be a
// compile-time constant string that satisfies obs.ValidName (lowercase
// dot-separated segments), and no constant name may be registered at
// more than one call site in a package — the registry panics on a
// duplicate, so a second registration site is a latent crash that only
// fires when both sites share a registry. LabeledCounter base names are
// exempt from the duplicate check (a counter family deliberately reuses
// its base across labels), but the base itself must still be a valid
// constant. The validity predicate is obs.ValidName itself, so the
// static rule and the runtime panic can never drift apart.
type ObsName struct {
	// ObsPath is the import path of the obs package. The package itself
	// is exempt: its LabeledCounter helper concatenates names at
	// runtime by design.
	ObsPath string
}

// Name implements Analyzer.
func (*ObsName) Name() string { return "obsname" }

// Doc implements Analyzer.
func (*ObsName) Doc() string {
	return "obs metric names must be constant lowercase dot-paths, each registered at one site"
}

// Run implements Analyzer.
func (r *ObsName) Run(p *Pass) {
	pkg := p.Pkg
	if pkg.ImportPath == r.ObsPath {
		return
	}
	// seen maps each constant metric name to its first registration
	// site, for the duplicate diagnostic.
	seen := make(map[string]token.Position)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registrars[sel.Sel.Name] || len(call.Args) == 0 {
				return true
			}
			if !r.isRegistry(pkg.Info.TypeOf(sel.X)) {
				return true
			}
			arg := call.Args[0]
			tv, ok := pkg.Info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				p.Report(arg, "metric name passed to Registry.%s must be a compile-time constant string", sel.Sel.Name)
				return true
			}
			name := constant.StringVal(tv.Value)
			if !obs.ValidName(name) {
				p.Report(arg, "metric name %q is malformed; names are lowercase dot-separated segments like %q", name, "sweep.sets.total")
				return true
			}
			// A LabeledCounter base is shared across its label family on
			// purpose; only full names must be unique.
			if sel.Sel.Name == "LabeledCounter" {
				return true
			}
			if first, dup := seen[name]; dup {
				p.Report(arg, "metric %q is also registered at %s; each name may be registered only once per registry", name, first)
				return true
			}
			seen[name] = pkg.Fset.Position(arg.Pos())
			return true
		})
	}
}

// isRegistry reports whether t is obs.Registry or *obs.Registry.
func (r *ObsName) isRegistry(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == r.ObsPath && obj.Name() == "Registry"
}
