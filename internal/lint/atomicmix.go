package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix flags mixed atomic/plain access: a variable or struct
// field whose address is passed to a sync/atomic function anywhere in
// the module may never be read or written plainly anywhere else. A
// plain load concurrent with an atomic store is a data race that the
// race detector only catches when the schedule cooperates; statically
// the mix is always wrong. The repository's own counters use the typed
// atomic.Int64 wrappers, which make mixing impossible by construction
// — this pass guards the older address-based API in case it creeps in.
//
// Like backendreg, the pass is module-wide: the atomic-use index is
// collected over every package (object identity makes a field marked
// in one package recognizable in all others), then every plain use is
// flagged in the Run phase.
type AtomicMix struct{}

// factAtomicUse marks, per types.Object, the position (string) of the
// first &obj handed to a sync/atomic function.
const factAtomicUse = "atomicmix.use"

// Name implements Analyzer.
func (*AtomicMix) Name() string { return "atomicmix" }

// Doc implements Analyzer.
func (*AtomicMix) Doc() string {
	return "variables accessed via sync/atomic may never be read or written plainly"
}

// Collect implements Collector: record every variable whose address
// flows into a sync/atomic call.
func (a *AtomicMix) Collect(p *Pass) {
	pkg := p.Pkg
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pkg.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if obj := addressedVar(pkg.Info, un.X); obj != nil && !p.Facts.HasObj(obj, factAtomicUse) {
					p.Facts.SetObj(obj, factAtomicUse, pkg.Fset.Position(arg.Pos()).String())
				}
			}
			return true
		})
	}
}

// Run implements Analyzer: flag every use of a marked variable outside
// a sync/atomic call.
func (a *AtomicMix) Run(p *Pass) {
	pkg := p.Pkg
	for _, file := range pkg.Files {
		// All positions inside sync/atomic call expressions are legal
		// uses; collect them first so the flagging walk can skip them.
		var atomicCalls intervals
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isAtomicCall(pkg.Info, call) {
				atomicCalls = append(atomicCalls, span{call.Pos(), call.End()})
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			ident, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pkg.Info.Uses[ident]
			if obj == nil || atomicCalls.contains(ident.Pos()) {
				return true
			}
			if site, marked := p.Facts.Obj(obj, factAtomicUse); marked {
				p.Report(ident, "%s is accessed atomically (e.g. at %s); this plain access races with the atomic ones — use sync/atomic everywhere, or a typed atomic.Int64-style value", obj.Name(), site)
			}
			return true
		})
	}
}

// isAtomicCall reports whether the call statically resolves to a
// sync/atomic package-level function.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn := staticCallee(info, call.Fun)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" &&
		fn.Type().(*types.Signature).Recv() == nil
}

// addressedVar resolves &X's operand to the variable object it
// ultimately denotes: a plain identifier, or the field of a selector
// chain. Index expressions (&s[i]) return the indexed slice's element —
// not attributable to a single object — and yield nil.
func addressedVar(info *types.Info, x ast.Expr) types.Object {
	switch x := x.(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		// Package-qualified variable (pkg.V): no Selection entry.
		if v, ok := info.Uses[x.Sel].(*types.Var); ok {
			return v
		}
	case *ast.ParenExpr:
		return addressedVar(info, x.X)
	}
	return nil
}
