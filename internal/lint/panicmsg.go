package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// PanicMsg enforces the panic-message convention in internal
// packages: the message must be a statically known string (a literal,
// a string constant, or a fmt.Sprintf/fmt.Errorf call with a literal
// format) carrying the "pkg: " prefix. Panics encode invariant
// violations — a matrix index out of range, a K mismatch, an invalid
// generator config — and when one fires deep inside an experiment
// sweep the prefix is what attributes it to a subsystem.
type PanicMsg struct {
	// InternalPrefix scopes the rule to import paths with this prefix
	// ("<module>/internal/").
	InternalPrefix string
}

// Name implements Analyzer.
func (*PanicMsg) Name() string { return "panicmsg" }

// Doc implements Analyzer.
func (*PanicMsg) Doc() string {
	return `panic messages in internal packages must be static strings prefixed "pkg: "`
}

// Run implements Analyzer.
func (r *PanicMsg) Run(p *Pass) {
	pkg := p.Pkg
	if !strings.HasPrefix(pkg.ImportPath, r.InternalPrefix) {
		return
	}
	prefix := pkg.Types.Name() + ": "
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 || !isBuiltinPanic(pkg, call.Fun) {
				return true
			}
			msg, static := staticString(pkg, call.Args[0])
			switch {
			case !static:
				p.Report(call, "panic message is not a static string; panic with %q so the failure is attributable", prefix+"...")
			case !strings.HasPrefix(msg, prefix):
				p.Report(call, "panic message %q must start with the package prefix %q", truncate(msg, 40), prefix)
			}
			return true
		})
	}
}

// isBuiltinPanic reports whether fun denotes the predeclared panic.
func isBuiltinPanic(pkg *Package, fun ast.Expr) bool {
	ident, ok := fun.(*ast.Ident)
	if !ok || ident.Name != "panic" {
		return false
	}
	_, ok = pkg.Info.Uses[ident].(*types.Builtin)
	return ok
}

// staticString resolves e to a compile-time string when possible:
// constant string expressions, or fmt.Sprintf/fmt.Errorf calls whose
// format argument is itself a constant string.
func staticString(pkg *Package, e ast.Expr) (string, bool) {
	if tv, ok := pkg.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return "", false
	}
	if fn.Name() != "Sprintf" && fn.Name() != "Errorf" {
		return "", false
	}
	if tv, ok := pkg.Info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	return "", false
}

// truncate shortens s for display.
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
