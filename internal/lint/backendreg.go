package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"catpa/internal/partition"
)

// BackendReg enforces the analysis-backend registration contract of
// internal/partition at lint time rather than at init-panic time:
// every name passed to partition.RegisterBackend must be a
// compile-time constant string that satisfies
// partition.ValidBackendName (a lowercase identifier), and each name
// may be registered at exactly one call site across the whole module —
// the registry panics on a duplicate, but that panic only fires once
// both init functions are linked into the same binary, so a second
// registration site is a latent crash the test matrix can miss. The
// validity predicate is partition.ValidBackendName itself, so the
// static rule and the runtime check can never drift apart.
//
// Backend registration is a module-wide namespace (partition registers
// "edfvd", fpamc registers "amcrtb"), so the pass is a Collector: the
// first-site index lives in the run's fact store, scoped to one
// Runner.Run rather than to the analyzer value's lifetime.
type BackendReg struct {
	// PartitionPath is the import path of the partition package, whose
	// RegisterBackend function anchors the pass.
	PartitionPath string
}

// factBackendSites is the global fact key under which the collector
// keeps its name -> first-registration-site index.
const factBackendSites = "backendreg.sites"

// Name implements Analyzer.
func (*BackendReg) Name() string { return "backendreg" }

// Doc implements Analyzer.
func (*BackendReg) Doc() string {
	return "backend names must be constant lowercase identifiers, each registered at one site"
}

// Collect implements Collector. All checking happens here — the
// collector visits packages in deterministic (import-path) order, so
// "first site wins" is stable, and reporting during collection goes
// through the same suppression filter as Run-phase reporting.
func (r *BackendReg) Collect(p *Pass) {
	seen, ok := globalFact[map[string]token.Position](p.Facts, factBackendSites)
	if !ok {
		seen = make(map[string]token.Position)
		p.Facts.SetGlobal(factBackendSites, seen)
	}
	pkg := p.Pkg
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 || !r.isRegisterBackend(pkg, call.Fun) {
				return true
			}
			arg := call.Args[0]
			tv, ok := pkg.Info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				p.Report(arg, "backend name passed to RegisterBackend must be a compile-time constant string")
				return true
			}
			name := constant.StringVal(tv.Value)
			if !partition.ValidBackendName(name) {
				p.Report(arg, "backend name %q is malformed; names are lowercase identifiers like %q", name, "amcrtb")
				return true
			}
			if first, dup := seen[name]; dup {
				p.Report(arg, "backend %q is also registered at %s; each backend may be registered exactly once", name, first)
				return true
			}
			seen[name] = pkg.Fset.Position(arg.Pos())
			return true
		})
	}
}

// Run implements Analyzer. The pass is whole-module by nature, so all
// of its work happens in Collect.
func (*BackendReg) Run(*Pass) {}

// isRegisterBackend reports whether fun resolves to the
// partition.RegisterBackend function, whether spelled as a selector
// (partition.RegisterBackend) or a bare identifier inside the
// partition package itself.
func (r *BackendReg) isRegisterBackend(pkg *Package, fun ast.Expr) bool {
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return false
	}
	fn, ok := pkg.Info.Uses[id].(*types.Func)
	return ok && fn.Name() == "RegisterBackend" &&
		fn.Pkg() != nil && fn.Pkg().Path() == r.PartitionPath
}
