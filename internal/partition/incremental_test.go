package partition_test

import (
	"fmt"
	"testing"

	"catpa/internal/mc"
	"catpa/internal/partition"
	"catpa/internal/taskgen"

	_ "catpa/internal/fpamc" // registers the amcrtb backend
)

// reanalyzingBackend wraps a Backend and forces the exact-recompute
// fallback after every commit: each Place and Remove is immediately
// followed by Reanalyze on the touched core, so every later query
// answers from state rebuilt cold from the committed members. It is
// the reference side of the incremental-vs-batch differential gates —
// by the Backend contract's bit-identity invariant, a Partitioner
// driving this wrapper must produce bitwise the results of one driving
// the unwrapped backend's O(1) delta path. The wrapper also hides the
// backend's concrete type, so the incremental side additionally
// exercises the allocator's devirtualized fast paths against the
// generic interface loops.
type reanalyzingBackend struct {
	partition.Backend
}

func (r *reanalyzingBackend) Place(c, ti int, probed bool) {
	r.Backend.Place(c, ti, probed)
	r.Backend.Reanalyze(c)
}

func (r *reanalyzingBackend) Remove(c, ti int) {
	r.Backend.Remove(c, ti)
	r.Backend.Reanalyze(c)
}

// agreementPair returns two Partitioners over fresh instances of the
// named backend: the incremental one (delta path, concrete fast paths
// where the allocator has them) and the reference one (recompute
// forced after every commit, interface paths only).
func agreementPair(t *testing.T, name string, m, k int) (inc, ref *partition.Partitioner) {
	t.Helper()
	be1, err := partition.NewBackend(name)
	if err != nil {
		t.Fatal(err)
	}
	be2, err := partition.NewBackend(name)
	if err != nil {
		t.Fatal(err)
	}
	return partition.NewWithBackend(m, k, be1),
		partition.NewWithBackend(m, k, &reanalyzingBackend{Backend: be2})
}

// checkIncrementalAgreement runs every scheme over ts on both sides of
// an agreement pair and fails unless batch results, session placements
// and final summaries are bit-identical. The session phase admits every
// task, releases every third admitted one, then re-admits, so the
// Remove delta and its fallback run under live churn, not just at the
// end of a batch.
func checkIncrementalAgreement(t *testing.T, ctx string, name string, ts *mc.TaskSet, m, k int) {
	pi, pr := agreementPair(t, name, m, k)
	for _, scheme := range partition.Schemes {
		sctx := fmt.Sprintf("%s/%s/%v", ctx, name, scheme)

		// Batch: full runs must agree bitwise, verdicts and placements.
		ri := pi.Run(ts, scheme, nil)
		rr := pr.Run(ts, scheme, nil)
		sameResult(t, sctx+"/batch", ri, rr)

		// Session churn: admissions, releases and re-admissions must
		// track each other decision by decision.
		pi.StartIncremental(ts, scheme, nil)
		pr.StartIncremental(ts, scheme, nil)
		n := ts.Len()
		admit := func(ti int) {
			ci, oki := pi.Admit(ti)
			cr, okr := pr.Admit(ti)
			if ci != cr || oki != okr {
				t.Fatalf("%s: Admit(%d): incremental (%d,%v) vs recompute (%d,%v)",
					sctx, ti, ci, oki, cr, okr)
			}
		}
		for ti := 0; ti < n; ti++ {
			admit(ti)
		}
		for ti := 0; ti < n; ti += 3 {
			if pi.Assigned(ti) < 0 {
				continue
			}
			if ci, cr := pi.Release(ti), pr.Release(ti); ci != cr {
				t.Fatalf("%s: Release(%d): incremental core %d vs recompute core %d",
					sctx, ti, ci, cr)
			}
		}
		for ti := 0; ti < n; ti += 3 {
			if pi.Assigned(ti) < 0 {
				admit(ti)
			}
		}
		for ti := 0; ti < n; ti++ {
			if pi.Assigned(ti) != pr.Assigned(ti) {
				t.Fatalf("%s: final Assigned(%d): %d vs %d",
					sctx, ti, pi.Assigned(ti), pr.Assigned(ti))
			}
		}
		// Eval holds only bools, ints and finite floats (Imbalance is
		// guarded against 0/0), so struct equality is the bitwise test.
		if ei, er := pi.Summarize(), pr.Summarize(); ei != er {
			t.Fatalf("%s: session summary %+v vs %+v", sctx, ei, er)
		}
	}
}

// FuzzIncrementalAgreement is the differential fuzz wall of the
// incremental delta contract: on random task sets, for all five
// schemes under both analysis backends, the incremental path (O(1)
// Place/Remove deltas, concrete fast paths) and the full-recompute
// path (Reanalyze forced after every commit) must produce bit-identical
// verdicts, placements, per-core summaries and metrics — through batch
// runs and through an admit/release/re-admit session.
func FuzzIncrementalAgreement(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(25), uint8(0))
	f.Add(int64(20160814), uint8(3), uint8(40), uint8(1))
	f.Add(int64(99), uint8(7), uint8(0), uint8(2))
	f.Add(int64(-4242), uint8(11), uint8(60), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, idx, nsuByte, kByte uint8) {
		k := 2 + int(kByte%4) // 2..5: multi-level for edfvd, dual for amcrtb
		cfg := taskgen.DefaultConfig()
		cfg.M = 4
		cfg.K = k
		// Sweep the load across the acceptance cliff so feasible,
		// infeasible and boundary outcomes all occur.
		cfg.NSU = 0.3 + float64(nsuByte%61)/100
		cfg.N = taskgen.IntRange{Lo: 8, Hi: 32}
		ts := taskgen.GenerateIndexed(&cfg, seed, int(idx))
		ctx := fmt.Sprintf("seed=%d idx=%d nsu=%v k=%d", seed, idx, cfg.NSU, k)
		checkIncrementalAgreement(t, ctx, partition.DefaultBackend, ts, cfg.M, k)
		if k == 2 {
			checkIncrementalAgreement(t, ctx, "amcrtb", ts, cfg.M, k)
		}
	})
}

// TestIncrementalAgreementSweep is the deterministic slice of the fuzz
// wall that runs on every plain `go test`: a seeded population near the
// schedulability boundary, both backends, all schemes, batch and churn.
func TestIncrementalAgreementSweep(t *testing.T) {
	for _, k := range []int{2, 4} {
		cfg := popConfig(4, k)
		cfg.N = taskgen.IntRange{Lo: 8, Hi: 40}
		for idx := 0; idx < 25; idx++ {
			ts := taskgen.GenerateIndexed(&cfg, 777, idx)
			ctx := fmt.Sprintf("k=%d idx=%d", k, idx)
			checkIncrementalAgreement(t, ctx, partition.DefaultBackend, ts, cfg.M, k)
			if k == 2 {
				checkIncrementalAgreement(t, ctx, "amcrtb", ts, cfg.M, k)
			}
		}
	}
}

// TestSessionMatchesBatchOrder pins the session API's central promise:
// a session that admits tasks in a batch run's allocation order (read
// off the batch trace) commits bitwise the batch run's placements —
// including the rejections. This holds per scheme because Admit and the
// batch loops dispatch through the same per-task pick rule.
func TestSessionMatchesBatchOrder(t *testing.T) {
	for _, name := range []string{partition.DefaultBackend, "amcrtb"} {
		t.Run(name, func(t *testing.T) {
			cfg := popConfig(4, 2)
			opts := &partition.Options{Trace: true}
			for idx := 0; idx < 20; idx++ {
				ts := taskgen.GenerateIndexed(&cfg, 4711, idx)
				for _, scheme := range partition.Schemes {
					be, err := partition.NewBackend(name)
					if err != nil {
						t.Fatal(err)
					}
					p := partition.NewWithBackend(cfg.M, cfg.K, be)
					res := p.Run(ts, scheme, opts)
					steps := append([]partition.Step(nil), res.Trace...)
					assign := append([]int(nil), res.Assignment...)

					p.StartIncremental(ts, scheme, nil)
					for _, s := range steps {
						c, ok := p.Admit(s.Task)
						if c != s.Core || ok != (s.Core >= 0) {
							t.Fatalf("idx=%d %v: Admit(%d) = (%d,%v), batch step placed on %d",
								idx, scheme, s.Task, c, ok, s.Core)
						}
					}
					for ti := range assign {
						if p.Assigned(ti) != assign[ti] {
							t.Fatalf("idx=%d %v: Assigned(%d) = %d, batch %d",
								idx, scheme, ti, p.Assigned(ti), assign[ti])
						}
					}
				}
			}
		})
	}
}

// TestSessionLoadShedding pins the admission-control behavior of a
// failed Admit: the committed state is untouched (every prior
// assignment and the summary are unchanged), the session stays usable,
// and the rejected task can be admitted after a Release frees room.
func TestSessionLoadShedding(t *testing.T) {
	cfg := popConfig(2, 2)
	cfg.NSU = 0.95 // overload: rejections guaranteed somewhere in the population
	found := false
	for idx := 0; idx < 40 && !found; idx++ {
		ts := taskgen.GenerateIndexed(&cfg, 31, idx)
		p := partition.New(cfg.M, cfg.K)
		p.StartIncremental(ts, partition.CATPA, nil)
		rejected := -1
		for ti := 0; ti < ts.Len(); ti++ {
			if _, ok := p.Admit(ti); !ok {
				rejected = ti
				break
			}
		}
		if rejected < 0 {
			continue
		}
		found = true
		before := p.Summarize()
		if !before.Feasible {
			t.Fatalf("idx=%d: session summary infeasible after shedding task %d; committed placements are schedulable by construction", idx, rejected)
		}
		// A failed retry must leave the summary bitwise unchanged.
		if _, ok := p.Admit(rejected); ok {
			t.Fatalf("idx=%d: immediate retry of task %d succeeded with no release", idx, rejected)
		}
		if after := p.Summarize(); after != before {
			t.Fatalf("idx=%d: failed Admit changed the summary: %+v vs %+v", idx, after, before)
		}
		// Release everything; the shed task must now fit on the empty
		// system (any single generated task does).
		for ti := 0; ti < ts.Len(); ti++ {
			if p.Assigned(ti) >= 0 {
				p.Release(ti)
			}
		}
		if _, ok := p.Admit(rejected); !ok {
			t.Fatalf("idx=%d: task %d still rejected on an empty system", idx, rejected)
		}
	}
	if !found {
		t.Fatal("overload population never produced a rejection; the scenario is vacuous")
	}
}

// TestPooledSessionThenBatch is the serve-pool regression: a pooled
// Partitioner that has served an online session must, on the next batch
// request, produce results bit-identical to a fresh Partitioner's. The
// daemon keeps one Partitioner per (backend, worker) and interleaves
// modes freely, so any state leaking from a session into a batch run
// would corrupt served verdicts.
func TestPooledSessionThenBatch(t *testing.T) {
	for _, name := range []string{partition.DefaultBackend, "amcrtb"} {
		t.Run(name, func(t *testing.T) {
			cfg := popConfig(4, 2)
			tsA := taskgen.GenerateIndexed(&cfg, 55, 0)
			tsB := taskgen.GenerateIndexed(&cfg, 55, 1)

			be, err := partition.NewBackend(name)
			if err != nil {
				t.Fatal(err)
			}
			pooled := partition.NewWithBackend(cfg.M, cfg.K, be)

			// Dirty the pooled instance with a churned session over tsA.
			pooled.StartIncremental(tsA, partition.CATPA, nil)
			for ti := 0; ti < tsA.Len(); ti++ {
				pooled.Admit(ti)
			}
			for ti := 0; ti < tsA.Len(); ti += 2 {
				if pooled.Assigned(ti) >= 0 {
					pooled.Release(ti)
				}
			}

			for _, scheme := range partition.Schemes {
				beF, err := partition.NewBackend(name)
				if err != nil {
					t.Fatal(err)
				}
				fresh := partition.NewWithBackend(cfg.M, cfg.K, beF)
				sameResult(t, fmt.Sprintf("%s/%v", name, scheme),
					pooled.Run(tsB, scheme, nil), fresh.Run(tsB, scheme, nil))
			}
		})
	}
}

// TestSessionPanics pins the misuse guards of the session protocol.
func TestSessionPanics(t *testing.T) {
	cfg := popConfig(2, 2)
	ts := taskgen.GenerateIndexed(&cfg, 7, 0)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	fresh := partition.New(2, 2)
	mustPanic("Admit before StartIncremental", func() { fresh.Admit(0) })
	mustPanic("Release before StartIncremental", func() { fresh.Release(0) })

	p := partition.New(2, 2)
	p.StartIncremental(ts, partition.FFD, nil)
	mustPanic("Admit out of range", func() { p.Admit(ts.Len()) })
	mustPanic("Admit negative", func() { p.Admit(-1) })
	mustPanic("Release unadmitted", func() { p.Release(0) })
	mustPanic("Assigned out of range", func() { p.Assigned(ts.Len()) })
	if _, ok := p.Admit(0); !ok {
		t.Fatal("first admission rejected on an empty system")
	}
	mustPanic("double Admit", func() { p.Admit(0) })
	p.Release(0)
	mustPanic("double Release", func() { p.Release(0) })
}
