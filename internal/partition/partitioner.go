package partition

import "catpa/internal/mc"

// Partitioner is a reusable partitioning engine for a fixed number of
// cores and criticality levels. It amortizes every piece of internal
// storage — per-core utilization matrices, cached Theorem-1 reports,
// ordering scratch, precomputed utilization rows and the Result — so
// that steady-state runs perform no heap allocations. It is the
// engine behind the experiment harness's worker pool; one Partitioner
// must not be shared between goroutines.
//
// The zero value is not usable; construct with New and re-dimension
// with Reset.
type Partitioner struct {
	a   allocator
	res Result
}

// New returns a Partitioner for m cores and k criticality levels,
// analyzed with the default EDF-VD Theorem-1 backend. It panics if
// m < 1; k values below 1 are normalized to 1 (matching Partition's
// handling of empty task sets).
func New(m, k int) *Partitioner {
	return NewWithBackend(m, k, &edfvdBackend{})
}

// NewWithBackend returns a Partitioner whose per-core schedulability
// questions are answered by be instead of the default EDF-VD analysis.
// The Partitioner takes ownership of be: it must not be shared with
// another Partitioner or used directly afterwards. It panics if be is
// nil, m < 1, or k exceeds be.MaxLevels().
func NewWithBackend(m, k int, be Backend) *Partitioner {
	if be == nil {
		panic("partition: NewWithBackend called with nil backend")
	}
	p := &Partitioner{}
	p.a.be = be
	p.a.ebe, _ = be.(*edfvdBackend)
	p.a.reset(m, k)
	return p
}

// Backend returns the analysis backend this Partitioner runs on.
//
//mc:allocfree accessor
func (p *Partitioner) Backend() Backend { return p.a.be }

// Reset re-dimensions the partitioner for m cores and k levels,
// reusing as much internal storage as the new dimensions allow. It is
// a no-op when the dimensions are unchanged.
func (p *Partitioner) Reset(m, k int) {
	p.a.reset(m, k)
}

// M returns the configured core count; K the configured number of
// criticality levels.
//
//mc:allocfree accessor
func (p *Partitioner) M() int { return p.a.m }

// K returns the configured number of criticality levels.
//
//mc:allocfree accessor
func (p *Partitioner) K() int { return p.a.k }

// Run partitions ts with the given scheme and returns the full Result,
// bit-identical (feasibility, assignment, per-core reports, metrics)
// to Partition(ts, p.M(), p.K(), scheme, opts).
//
// The returned Result and its slices are owned by the Partitioner and
// remain valid only until the next Run or Reset; callers that retain a
// result across runs must deep-copy it first. ts must not exceed the
// configured K (same panic as Partition) and is not modified.
//
//mc:allocfree steady state: every Result slice is amortized in the Partitioner
func (p *Partitioner) Run(ts *mc.TaskSet, scheme Scheme, opts *Options) *Result {
	p.a.run(ts, scheme, opts)
	p.a.finishInto(&p.res)
	return &p.res
}

// Evaluate partitions ts like Run but skips materializing the Result:
// it returns only the feasibility verdict and the three aggregate
// metrics, computed from the per-core analyses already cached during
// placement. The values are bit-identical to the corresponding Result
// fields of Run. This is the allocation-free fast path used by the
// figure sweeps, where per-core assignments are never inspected.
//
//mc:allocfree the sweep fast path
func (p *Partitioner) Evaluate(ts *mc.TaskSet, scheme Scheme, opts *Options) Eval {
	p.a.run(ts, scheme, opts)
	return p.a.evaluate()
}

// EvaluateAll evaluates ts under every scheme in schemes, appending
// one Eval per scheme to dst (which may be nil) and returning it. The
// per-set preparation — utilization rows and the task orderings, which
// depend only on the set and the effective ordering policy — is shared
// across the batch, so evaluating all five schemes costs noticeably
// less than five Evaluate calls. Each Eval is bit-identical to the
// corresponding Evaluate result.
//
//mc:allocfree appends to caller-owned dst only
func (p *Partitioner) EvaluateAll(ts *mc.TaskSet, schemes []Scheme, opts *Options, dst []Eval) []Eval {
	p.Prepare(ts)
	for _, s := range schemes {
		p.Place(s, opts)
		dst = append(dst, p.Summarize())
	}
	return dst
}

// Prepare installs ts for a batch of Place/Summarize calls: the
// fission of EvaluateAll into its per-set preparation, placement and
// analysis stages, so an instrumented caller can time each stage
// separately. Prepare computes the utilization rows and task orderings
// shared by every scheme of the batch; it allocates nothing in the
// steady state.
//
//mc:allocfree per-set precomputation into amortized storage
func (p *Partitioner) Prepare(ts *mc.TaskSet) {
	p.a.prepSet(ts)
}

// Place runs the placement pass of one scheme over the set installed
// by the last Prepare, leaving the per-core analyses cached for
// Summarize. Schemes of one batch must be interleaved as
// Place/Summarize pairs: a Place discards the previous scheme's run
// state.
//
//mc:allocfree placement over prepared state
func (p *Partitioner) Place(scheme Scheme, opts *Options) {
	p.a.runPrepared(scheme, opts)
}

// Summarize folds the per-core analyses of the last Place into an
// Eval, bit-identical to the corresponding Evaluate / EvaluateAll
// result.
//
//mc:allocfree folds cached analyses into a value
func (p *Partitioner) Summarize() Eval {
	return p.a.evaluate()
}

// Eval is the cheap evaluation of one partitioning run: the subset of
// Result the experiment harness aggregates. Usys, Uavg and Imbalance
// are only meaningful when Feasible is true (Eqs. 10, 11, 16).
type Eval struct {
	// Feasible reports whether every task was placed on a core whose
	// subset passes the EDF-VD schedulability test.
	Feasible bool
	// FailedTask is the index of the first task that could not be
	// placed, or -1.
	FailedTask int
	// Usys is the system utilization (Eq. 10), Uavg the average core
	// utilization (Eq. 11), Imbalance the workload imbalance factor
	// (Eq. 16).
	Usys, Uavg, Imbalance float64
}
