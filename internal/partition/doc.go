// Package partition implements the task-to-core partitioning heuristics
// evaluated by Han et al. (ICPP 2016) for mixed-criticality task sets
// scheduled per-core with EDF-VD:
//
//   - the classical bin-packing heuristics WFD, FFD and BFD, ordering
//     tasks by decreasing own-level utilization u_i(l_i) and measuring a
//     core's load by its own-level utilization sum (the Eq. 4 measure);
//   - the Hybrid scheme of Rodriguez et al. (WRTC 2013): high-criticality
//     tasks via WFD first, then low-criticality tasks via FFD;
//   - CA-TPA (Algorithm 1): tasks ordered by decreasing utilization
//     contribution (Eqs. 12-13), each task probed on every core and
//     placed where the core utilization U^Psi (Eq. 9) increases least
//     (Eqs. 14-15), with a workload-imbalance fallback (Eq. 16) that
//     redirects tasks to the least-loaded feasible core once the
//     imbalance factor exceeds the threshold alpha.
//
// Feasibility on a core is decided by the EDF-VD analysis of package
// edfvd: the baselines first try the cheap Eq. 4 test and fall back to
// the Theorem-1 test (as prescribed in Section IV of the paper), while
// CA-TPA evaluates the Theorem-1 conditions directly, since it needs
// the Eq. 9 core utilization anyway.
//
// The package also exposes ablation switches (ordering policy, probe
// on/off, alpha) used by the ablation benchmarks to quantify each
// ingredient of CA-TPA.
package partition
