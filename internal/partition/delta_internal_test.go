package partition

import (
	"math"
	"testing"

	"catpa/internal/mc"
)

// deltaSet is the hand-sized multi-criticality set of the EDF-VD
// backend delta tests: exact binary utilizations (periods are powers
// of two, budgets small integers), so replayed sums are exactly
// reproducible by hand.
func deltaSet() *mc.TaskSet {
	return &mc.TaskSet{Tasks: []mc.Task{
		{ID: 1, Period: 8, Crit: 4, WCET: []float64{1, 2, 3, 4}},
		{ID: 2, Period: 16, Crit: 2, WCET: []float64{1, 2}},
		{ID: 3, Period: 4, Crit: 1, WCET: []float64{1}},
		{ID: 4, Period: 32, Crit: 3, WCET: []float64{1, 2, 4}},
	}}
}

// TestEdfvdRemoveReplayFallback pins the removal delta of the EDF-VD
// backend at the boundary where the O(1) arithmetic undo is
// unavailable: Remove must only excise the member and mark the core
// (no analysis work), the mark must defer the exact-recompute replay
// to the next read, and the replayed state must answer queries bitwise
// like a core that never held the removed task — placement order
// preserved for the survivors.
func TestEdfvdRemoveReplayFallback(t *testing.T) {
	ts := deltaSet()
	newBackend := func() *edfvdBackend {
		be, err := NewBackend(DefaultBackend)
		if err != nil {
			t.Fatal(err)
		}
		b := be.(*edfvdBackend)
		b.Reset(1, 4)
		b.Prepare(ts)
		b.Begin()
		return b
	}

	b := newBackend()
	for ti := 0; ti < 4; ti++ {
		b.Place(0, ti, false)
	}
	if b.ndirty != 0 || b.dirty[0] {
		t.Fatal("placements alone dirtied the core; Add is the O(1) delta, not a rebuild trigger")
	}

	// The fallback trigger: Remove excises and marks, nothing else.
	b.Remove(0, 1)
	if !b.dirty[0] || b.ndirty != 1 {
		t.Fatalf("Remove left (dirty, ndirty) = (%v, %d), want (true, 1)", b.dirty[0], b.ndirty)
	}
	if got := b.states[0].Len(); got != 4 {
		t.Fatalf("Remove touched the analysis state eagerly (Len %d); the replay is deferred to the next read", got)
	}

	// A second removal on the already-dirty core must not double-count.
	b.Remove(0, 3)
	if b.ndirty != 1 {
		t.Fatalf("second Remove on a dirty core bumped ndirty to %d", b.ndirty)
	}

	// Reference: a core that only ever held the survivors, in the same
	// placement order.
	ref := newBackend()
	ref.Place(0, 0, false)
	ref.Place(0, 2, false)

	// The first read replays; every committed reading must match the
	// reference bitwise.
	if got, want := b.OwnLoad(0), ref.OwnLoad(0); got != want {
		t.Fatalf("replayed OwnLoad = %v, reference %v", got, want)
	}
	if b.dirty[0] || b.ndirty != 0 {
		t.Fatal("read did not clear the dirty mark")
	}
	if got, want := b.states[0].Len(), ref.states[0].Len(); got != want {
		t.Fatalf("replayed member count %d, reference %d", got, want)
	}
	for _, worst := range []bool{false, true} {
		if got, want := b.CoreUtil(0, worst), ref.CoreUtil(0, worst); got != want {
			t.Fatalf("replayed CoreUtil(worst=%v) = %v, reference %v", worst, got, want)
		}
	}
	for ti := 1; ti <= 3; ti += 2 { // the removed tasks, as fresh candidates
		if got, want := b.FeasibleWith(0, ti), ref.FeasibleWith(0, ti); got != want {
			t.Fatalf("replayed FeasibleWith(%d) = %v, reference %v", ti, got, want)
		}
		gp, wp := b.ProbeUtil(0, ti, false), ref.ProbeUtil(0, ti, false)
		if gp != wp && !(math.IsInf(gp, 1) && math.IsInf(wp, 1)) {
			t.Fatalf("replayed ProbeUtil(%d) = %v, reference %v", ti, gp, wp)
		}
	}
	var gi, wi CoreInfo
	b.ReportInto(0, &gi)
	ref.ReportInto(0, &wi)
	if gi.Util != wi.Util || gi.FeasibleK != wi.FeasibleK {
		t.Fatalf("replayed report (%v, %d), reference (%v, %d)", gi.Util, gi.FeasibleK, wi.Util, wi.FeasibleK)
	}
	for j := range gi.Lambda {
		lg, lw := gi.Lambda[j], wi.Lambda[j]
		if lg != lw && !(math.IsNaN(lg) && math.IsNaN(lw)) {
			t.Fatalf("replayed lambda_%d = %v, reference %v", j+1, lg, lw)
		}
	}

	// Reanalyze on a clean core forces the same replay unconditionally
	// and must be a bitwise no-op on the readings.
	before := b.CoreUtil(0, false)
	b.Reanalyze(0)
	if after := b.CoreUtil(0, false); after != before {
		t.Fatalf("Reanalyze changed a clean core's reading: %v -> %v", before, after)
	}
}

// TestEdfvdAddMatchesProbe pins the probe/commit bit-identity the
// delta contract promises on the backend seam: the committed Eq. 9
// readings after Place(ti) are bitwise the probed readings of ti
// against the pre-Place core, for every placement along a growing core.
func TestEdfvdAddMatchesProbe(t *testing.T) {
	ts := deltaSet()
	be, err := NewBackend(DefaultBackend)
	if err != nil {
		t.Fatal(err)
	}
	b := be.(*edfvdBackend)
	b.Reset(1, 4)
	b.Prepare(ts)
	b.Begin()
	for ti := 0; ti < 4; ti++ {
		probed := b.ProbeUtil(0, ti, false)
		probedW := b.ProbeUtil(0, ti, true)
		if math.IsInf(probed, 1) {
			t.Fatalf("task %d rejected on a hand-schedulable core", ti)
		}
		b.Place(0, ti, false)
		if got := b.CoreUtil(0, false); got != probed {
			t.Fatalf("task %d: committed CoreUtil %v, probed %v", ti, got, probed)
		}
		if got := b.CoreUtil(0, true); got != probedW {
			t.Fatalf("task %d: committed worst CoreUtil %v, probed %v", ti, got, probedW)
		}
	}
}
