package partition_test

import (
	"math"
	"testing"

	"catpa/internal/mc"
	"catpa/internal/partition"
	"catpa/internal/taskgen"
)

// popConfig builds a generator config near the schedulability boundary
// for the given dimensions, so the population mixes feasible and
// infeasible outcomes (both code paths are exercised).
func popConfig(m, k int) taskgen.Config {
	cfg := taskgen.DefaultConfig()
	cfg.M = m
	cfg.K = k
	cfg.NSU = 0.55
	cfg.N = taskgen.IntRange{Lo: 20, Hi: 60}
	return cfg
}

// sameResult fails unless a and b agree bit-for-bit on feasibility,
// assignment, metrics and the per-core summaries.
func sameResult(t *testing.T, ctx string, a, b *partition.Result) {
	t.Helper()
	if a.Feasible != b.Feasible || a.FailedTask != b.FailedTask {
		t.Fatalf("%s: feasibility mismatch: (%v,%d) vs (%v,%d)",
			ctx, a.Feasible, a.FailedTask, b.Feasible, b.FailedTask)
	}
	if len(a.Assignment) != len(b.Assignment) {
		t.Fatalf("%s: assignment length %d vs %d", ctx, len(a.Assignment), len(b.Assignment))
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatalf("%s: task %d assigned to %d vs %d", ctx, i, a.Assignment[i], b.Assignment[i])
		}
	}
	// Metrics must be bit-identical, not merely close: the fast path
	// promises the exact floats of the legacy path.
	if a.Usys != b.Usys || a.Uavg != b.Uavg || a.Imbalance != b.Imbalance {
		t.Fatalf("%s: metrics (%v,%v,%v) vs (%v,%v,%v)",
			ctx, a.Usys, a.Uavg, a.Imbalance, b.Usys, b.Uavg, b.Imbalance)
	}
	if len(a.Cores) != len(b.Cores) {
		t.Fatalf("%s: core count %d vs %d", ctx, len(a.Cores), len(b.Cores))
	}
	for c := range a.Cores {
		ca, cb := &a.Cores[c], &b.Cores[c]
		if ca.Util != cb.Util || ca.OwnLevelLoad != cb.OwnLevelLoad || ca.FeasibleK != cb.FeasibleK {
			t.Fatalf("%s: core %d summary (%v,%v,%d) vs (%v,%v,%d)",
				ctx, c, ca.Util, ca.OwnLevelLoad, ca.FeasibleK, cb.Util, cb.OwnLevelLoad, cb.FeasibleK)
		}
		if len(ca.Tasks) != len(cb.Tasks) {
			t.Fatalf("%s: core %d task count %d vs %d", ctx, c, len(ca.Tasks), len(cb.Tasks))
		}
		for i := range ca.Tasks {
			if ca.Tasks[i] != cb.Tasks[i] {
				t.Fatalf("%s: core %d task %d: %d vs %d", ctx, c, i, ca.Tasks[i], cb.Tasks[i])
			}
		}
		for j := range ca.Lambda {
			la, lb := ca.Lambda[j], cb.Lambda[j]
			if la != lb && !(math.IsNaN(la) && math.IsNaN(lb)) {
				t.Fatalf("%s: core %d lambda_%d %v vs %v", ctx, c, j+1, la, lb)
			}
		}
	}
}

// TestPartitionerEquivalence asserts that a Partitioner reused across
// a randomized population returns bit-identical results to the legacy
// one-shot Partition entry point, for every scheme and K = 2..6.
func TestPartitionerEquivalence(t *testing.T) {
	for k := 2; k <= 6; k++ {
		for _, m := range []int{2, 4, 8} {
			cfg := popConfig(m, k)
			p := partition.New(m, k)
			for idx := 0; idx < 40; idx++ {
				ts := taskgen.GenerateIndexed(&cfg, int64(1000*k+m), idx)
				for _, s := range partition.Schemes {
					want := partition.Partition(ts, m, k, s, nil)
					got := p.Run(ts, s, nil)
					sameResult(t, s.String(), want, got)
				}
			}
		}
	}
}

// TestPartitionerEvaluateMatchesRun asserts the cheap evaluation mode
// reports exactly the Result fields it summarizes.
func TestPartitionerEvaluateMatchesRun(t *testing.T) {
	for k := 2; k <= 6; k++ {
		cfg := popConfig(8, k)
		runner := partition.New(8, k)
		evaler := partition.New(8, k)
		for idx := 0; idx < 40; idx++ {
			ts := taskgen.GenerateIndexed(&cfg, int64(7700+k), idx)
			for _, s := range partition.Schemes {
				want := runner.Run(ts, s, nil)
				ev := evaler.Evaluate(ts, s, nil)
				if ev.Feasible != want.Feasible || ev.FailedTask != want.FailedTask {
					t.Fatalf("%s K=%d set %d: Eval feasibility (%v,%d) vs Run (%v,%d)",
						s, k, idx, ev.Feasible, ev.FailedTask, want.Feasible, want.FailedTask)
				}
				if ev.Usys != want.Usys || ev.Uavg != want.Uavg || ev.Imbalance != want.Imbalance {
					t.Fatalf("%s K=%d set %d: Eval metrics (%v,%v,%v) vs Run (%v,%v,%v)",
						s, k, idx, ev.Usys, ev.Uavg, ev.Imbalance, want.Usys, want.Uavg, want.Imbalance)
				}
			}
		}
	}
}

// TestPartitionerOptionsEquivalence covers the ablation switches
// (ordering override, no-probe, literal Eq. 9, custom alpha) on the
// reusable engine.
func TestPartitionerOptionsEquivalence(t *testing.T) {
	optsList := []*partition.Options{
		{Order: partition.MaxUtilOrder},
		{Order: partition.ContributionOrder},
		{NoProbe: true},
		{Eq9Literal: true},
		{Alpha: partition.InfAlpha()},
		{Alpha: 0.3},
	}
	cfg := popConfig(8, 4)
	p := partition.New(8, 4)
	for idx := 0; idx < 25; idx++ {
		ts := taskgen.GenerateIndexed(&cfg, 42, idx)
		for _, opts := range optsList {
			for _, s := range partition.Schemes {
				want := partition.Partition(ts, 8, 4, s, opts)
				got := p.Run(ts, s, opts)
				sameResult(t, s.String(), want, got)
			}
		}
	}
}

// TestPartitionerReset asserts one engine can be re-dimensioned across
// points (the fig. 4 / fig. 5 sweeps vary M and K) without residue.
func TestPartitionerReset(t *testing.T) {
	p := partition.New(2, 2)
	for _, dims := range [][2]int{{2, 2}, {8, 4}, {4, 6}, {8, 4}, {2, 2}} {
		m, k := dims[0], dims[1]
		cfg := popConfig(m, k)
		p.Reset(m, k)
		for idx := 0; idx < 10; idx++ {
			ts := taskgen.GenerateIndexed(&cfg, 9, idx)
			for _, s := range partition.Schemes {
				want := partition.Partition(ts, m, k, s, nil)
				got := p.Run(ts, s, nil)
				sameResult(t, s.String(), want, got)
			}
		}
	}
}

// TestPartitionerTrace asserts the trace fast-path interaction: traces
// from the reusable engine match the legacy ones step for step.
func TestPartitionerTrace(t *testing.T) {
	cfg := popConfig(4, 3)
	p := partition.New(4, 3)
	opts := &partition.Options{Trace: true}
	for idx := 0; idx < 10; idx++ {
		ts := taskgen.GenerateIndexed(&cfg, 5, idx)
		for _, s := range partition.Schemes {
			want := partition.Partition(ts, 4, 3, s, opts)
			got := p.Run(ts, s, opts)
			if len(want.Trace) != len(got.Trace) {
				t.Fatalf("%s: trace length %d vs %d", s, len(want.Trace), len(got.Trace))
			}
			for i := range want.Trace {
				w, g := want.Trace[i], got.Trace[i]
				if w.Task != g.Task || w.Core != g.Core || w.Util != g.Util || w.Increment != g.Increment {
					t.Fatalf("%s: trace step %d %+v vs %+v", s, i, w, g)
				}
			}
		}
	}
}

// TestPartitionerResultIsVerifiable runs the independent Result.Verify
// cross-check on fast-path results.
func TestPartitionerResultIsVerifiable(t *testing.T) {
	cfg := popConfig(8, 4)
	p := partition.New(8, 4)
	for idx := 0; idx < 20; idx++ {
		ts := taskgen.GenerateIndexed(&cfg, 64, idx)
		for _, s := range partition.Schemes {
			if err := p.Run(ts, s, nil).Verify(ts); err != nil {
				t.Fatalf("%s set %d: %v", s, idx, err)
			}
		}
	}
}

// TestPartitionerRunAliasing documents the ownership contract: the
// Result returned by Run is invalidated (overwritten in place) by the
// next Run on the same engine.
func TestPartitionerRunAliasing(t *testing.T) {
	cfg := popConfig(4, 2)
	p := partition.New(4, 2)
	ts0 := taskgen.GenerateIndexed(&cfg, 1, 0)
	ts1 := taskgen.GenerateIndexed(&cfg, 1, 1)
	first := p.Run(ts0, partition.CATPA, nil)
	second := p.Run(ts1, partition.CATPA, nil)
	if first != second {
		t.Fatalf("Run should reuse its Result storage (got distinct pointers %p, %p)", first, second)
	}
}

// TestNewPanicsOnInvalidCores mirrors the legacy Partition contract.
func TestNewPanicsOnInvalidCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 2) should panic")
		}
	}()
	partition.New(0, 2)
}

// TestRunPanicsBelowMaxCrit mirrors the legacy K validation.
func TestRunPanicsBelowMaxCrit(t *testing.T) {
	ts := mc.NewTaskSet(
		mc.MustTask(1, "", 10, 1, 2, 3),
	)
	p := partition.New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Run with K below MaxCrit should panic")
		}
	}()
	p.Run(ts, partition.FFD, nil)
}
