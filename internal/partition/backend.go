package partition

import (
	"fmt"
	"sort"
	"sync"

	"catpa/internal/mc"
)

// Backend is the per-core schedulability oracle the allocator consults
// — the seam of Algorithm 1, which treats "does the subset stay
// schedulable" and "what does adding this task cost" as questions the
// analysis answers, independent of the heuristic asking them. The
// EDF-VD Theorem-1 analysis (the paper's setting) and the AMC-rtb
// response-time analysis (internal/fpamc) both implement it, so every
// heuristic — including CA-TPA — runs atop either through the one
// allocation shell.
//
// The protocol mirrors the allocator's allocation-free discipline:
// FeasibleWith, ProbeUtil and UtilFloor are virtual (they must not
// mutate committed core state), every method passes only scalars
// across the interface boundary, and implementations are expected to
// reuse internal storage so steady-state runs stay free of heap
// allocations where the analysis permits it (the EDF-VD backend
// guarantees 0 allocs/op; the AMC-rtb fixed points allocate, which the
// contract allows). A Backend is owned by exactly one Partitioner and
// is not safe for concurrent use.
//
// Call order per run: Reset (dimensions), Prepare (task set), Begin
// (clear cores), then any interleaving of the virtual queries with
// Place / Remove commits, then CoreUtil / ReportInto reads. KeepProbe
// marks the analysis of the most recent ProbeUtil call as the winning
// candidate's; a following Place with probed=true commits exactly that
// cached analysis (the caller guarantees the (core, task) pair
// matches).
//
// Incremental delta contract (DESIGN.md Section 14). Backends maintain
// per-core analysis state under delta updates: Place folds one task
// into cached per-core sums (or response times) in O(1) per
// criticality level, independent of how many tasks the core already
// holds, and every virtual query answers from those cached values plus
// the candidate's row. Remove deletes a committed task again; when the
// exact O(1) delta is unavailable (floating-point subtraction is not
// an exact inverse of addition), the backend marks the core and falls
// back to an exact recompute — replaying the surviving members'
// deltas in placement order — before the next query. Reanalyze forces
// that fallback unconditionally; it is the reference path the
// differential gates (FuzzIncrementalAgreement, the delta unit tests)
// compare the incremental path against. Bit-identity invariant: a
// query on a core must return bitwise the same value whether the
// core's state was built incrementally, restored by an exact undo, or
// rebuilt through Reanalyze.
type Backend interface {
	// Name returns the backend's registry name (e.g. "edfvd").
	Name() string

	// MaxLevels returns the largest supported criticality-level count,
	// or 0 when unbounded. Reset panics when k exceeds it.
	MaxLevels() int

	// Reset re-dimensions the per-core state for m cores and k levels,
	// reusing storage where the dimensions allow.
	Reset(m, k int)

	// Prepare installs ts for a batch of runs and performs per-set
	// precomputation (e.g. utilization rows). The set must satisfy the
	// backend's criticality bound.
	Prepare(ts *mc.TaskSet)

	// Begin clears all per-core state for one allocation pass over the
	// prepared set.
	Begin()

	// FeasibleWith reports whether core c stays schedulable when task
	// ti is added — the virtual per-core test of Algorithm 1 used by
	// the classical schemes. It must not mutate committed state.
	FeasibleWith(c, ti int) bool

	// ProbeUtil returns the core-utilization metric of core c with
	// task ti added (Eq. 15's U^{Psi_c + tau_i}), or +Inf when the
	// extended subset is infeasible. worst selects the literal Eq. 9
	// reading where the backend distinguishes the two. The probe's
	// analysis may be cached for KeepProbe.
	ProbeUtil(c, ti int, worst bool) float64

	// KeepProbe marks the analysis of the most recent ProbeUtil call
	// as the winning candidate's, to be committed by the next Place
	// with probed=true.
	KeepProbe()

	// UtilFloor returns a certified lower bound on ProbeUtil(c, ti,
	// worst) for either reading, used to prune hopeless probes
	// (Algorithm 1's minimum-increment search); -Inf when no cheap
	// bound exists.
	UtilFloor(c, ti int) float64

	// Place commits task ti to core c. probed reports that the winning
	// KeepProbe analysis corresponds to exactly this (c, ti) pair and
	// may be committed without re-analysis.
	Place(c, ti int, probed bool)

	// Remove deletes committed task ti from core c: the removal delta
	// of the online admit/release protocol. Implementations undo the
	// placement exactly — bitwise — either through an O(1) snapshot
	// restore (the most recent Place) or by scheduling the
	// exact-recompute fallback over the core's surviving members.
	// Removing a task that is not committed on c panics.
	Remove(c, ti int)

	// Reanalyze discards core c's incremental analysis state and
	// rebuilds it from the committed members — the exact-recompute
	// fallback path, exposed so differential gates can force it and
	// compare the incremental path against it.
	Reanalyze(c int)

	// OwnLoad returns core c's own-level load (the Eq. 4 measure the
	// classical schemes compare cores by).
	OwnLoad(c int) float64

	// CoreUtil returns the committed core-utilization metric of core c
	// (Eq. 9), lazily analyzing the core's subset if no cached
	// analysis is current. worst selects the literal Eq. 9 reading.
	CoreUtil(c int, worst bool) float64

	// ReportInto fills the analysis-derived fields of ci — Util,
	// FeasibleK and Lambda — for core c's committed subset, reusing
	// ci's storage.
	ReportInto(c int, ci *CoreInfo)
}

// DefaultBackend is the registry name of the paper's EDF-VD Theorem-1
// backend, the default of New and of every sweep.
const DefaultBackend = "edfvd"

// backendRegistry holds the registered backend factories. Registration
// happens in package init functions; lookups happen at run time, so
// the map is guarded for safety.
var backendRegistry = struct {
	sync.Mutex
	factories map[string]func() Backend
}{factories: make(map[string]func() Backend)}

// ValidBackendName reports whether name satisfies the backend naming
// contract enforced at registration (and statically by the mclint
// backendreg rule, see DESIGN.md Section 11): a nonempty lowercase
// ASCII identifier — letters and digits, starting with a letter.
func ValidBackendName(name string) bool {
	if len(name) == 0 || name[0] < 'a' || name[0] > 'z' {
		return false
	}
	for i := 1; i < len(name); i++ {
		ch := name[i]
		if (ch < 'a' || ch > 'z') && (ch < '0' || ch > '9') {
			return false
		}
	}
	return true
}

// RegisterBackend registers a backend factory under name. It is meant
// to be called from package init functions (the EDF-VD backend
// registers here, the AMC-rtb backend in internal/fpamc); mclint's
// backendreg rule additionally enforces at build time that names are
// constant strings registered at exactly one site. RegisterBackend
// panics on a malformed name, a nil factory or a duplicate
// registration.
func RegisterBackend(name string, factory func() Backend) {
	if !ValidBackendName(name) {
		panic(fmt.Sprintf("partition: invalid backend name %q", name))
	}
	if factory == nil {
		panic(fmt.Sprintf("partition: backend %q registered with nil factory", name))
	}
	backendRegistry.Lock()
	defer backendRegistry.Unlock()
	if _, dup := backendRegistry.factories[name]; dup {
		panic(fmt.Sprintf("partition: backend %q registered twice", name))
	}
	backendRegistry.factories[name] = factory
}

// NewBackend returns a fresh instance of the named registered backend.
func NewBackend(name string) (Backend, error) {
	backendRegistry.Lock()
	factory, ok := backendRegistry.factories[name]
	backendRegistry.Unlock()
	if !ok {
		return nil, fmt.Errorf("partition: unknown backend %q (registered: %v)", name, BackendNames())
	}
	return factory(), nil
}

// BackendNames returns the names of all registered backends, sorted.
func BackendNames() []string {
	backendRegistry.Lock()
	defer backendRegistry.Unlock()
	out := make([]string, 0, len(backendRegistry.factories))
	for name := range backendRegistry.factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
