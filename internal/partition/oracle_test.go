package partition_test

import (
	"testing"

	"catpa/internal/partition"
	"catpa/internal/sim"
	"catpa/internal/taskgen"
)

// TestSimOracleAcceptsAreSafe is the differential proof tying the
// analytical pipeline to the event simulator: every task set a
// partitioning scheme accepts (each core passed the EDF-VD Theorem-1
// test) must survive execution under the adversarial worst-case model
// — every job runs to its own-criticality WCET, forcing the maximum
// mode switching — with zero non-dropped deadline misses on every
// core. A single miss would falsify either the analysis or the
// simulator; the failure message carries the (seed, set, scheme)
// triple that replays the exact input via taskgen.GenerateIndexed.
//
// The NSU ladder deliberately includes a point past the schemes'
// acceptance cliff, so the accepted sets include tightly-loaded
// boundary cases, not just easy ones.
func TestSimOracleAcceptsAreSafe(t *testing.T) {
	const (
		seed = 20160814
		sets = 100
	)
	cfg := taskgen.DefaultConfig()
	cfg.M = 4
	cfg.N = taskgen.IntRange{Lo: 16, Hi: 48}

	accepted, simulated := 0, 0
	for _, nsu := range []float64{0.45, 0.6, 0.7} {
		cfg.NSU = nsu
		for idx := 0; idx < sets; idx++ {
			ts := taskgen.GenerateIndexed(&cfg, seed, idx)
			for _, scheme := range partition.Schemes {
				res := partition.Partition(ts, cfg.M, cfg.K, scheme, nil)
				if !res.Feasible {
					continue
				}
				accepted++
				st := sim.SimulateSystem(sim.SystemConfig{
					Subsets: res.Subsets(ts),
					K:       cfg.K,
				})
				simulated++
				if st.Missed() != 0 {
					t.Fatalf("accepted set missed deadlines under the worst-case model\n"+
						"reproduce: taskgen.GenerateIndexed(cfg{M=%d,K=%d,NSU=%v,N=[%d,%d]}, seed=%d, idx=%d), scheme %v\n%s",
						cfg.M, cfg.K, nsu, cfg.N.Lo, cfg.N.Hi, seed, idx, scheme, st.String())
				}
			}
		}
	}
	// The oracle is only evidence if it actually exercised accepts at
	// every load level; an empty accept population would pass vacuously.
	if accepted == 0 {
		t.Fatal("oracle never saw an accepted partition; the sweep parameters are vacuous")
	}
	t.Logf("sim oracle: %d accepted partitions simulated, 0 misses", simulated)
}
