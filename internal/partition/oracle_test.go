package partition_test

import (
	"testing"

	"catpa/internal/fpamc"
	"catpa/internal/partition"
	"catpa/internal/sim"
	"catpa/internal/taskgen"
)

// TestSimOracleAcceptsAreSafe is the differential proof tying the
// analytical pipeline to the event simulator: every task set a
// partitioning scheme accepts (each core passed the EDF-VD Theorem-1
// test) must survive execution under the adversarial worst-case model
// — every job runs to its own-criticality WCET, forcing the maximum
// mode switching — with zero non-dropped deadline misses on every
// core. A single miss would falsify either the analysis or the
// simulator; the failure message carries the (seed, set, scheme)
// triple that replays the exact input via taskgen.GenerateIndexed.
//
// The NSU ladder deliberately includes a point past the schemes'
// acceptance cliff, so the accepted sets include tightly-loaded
// boundary cases, not just easy ones.
func TestSimOracleAcceptsAreSafe(t *testing.T) {
	const (
		seed = 20160814
		sets = 100
	)
	cfg := taskgen.DefaultConfig()
	cfg.M = 4
	cfg.N = taskgen.IntRange{Lo: 16, Hi: 48}

	accepted, simulated := 0, 0
	for _, nsu := range []float64{0.45, 0.6, 0.7} {
		cfg.NSU = nsu
		for idx := 0; idx < sets; idx++ {
			ts := taskgen.GenerateIndexed(&cfg, seed, idx)
			for _, scheme := range partition.Schemes {
				res := partition.Partition(ts, cfg.M, cfg.K, scheme, nil)
				if !res.Feasible {
					continue
				}
				accepted++
				st := sim.SimulateSystem(sim.SystemConfig{
					Subsets: res.Subsets(ts),
					K:       cfg.K,
				})
				simulated++
				if st.Missed() != 0 {
					t.Fatalf("accepted set missed deadlines under the worst-case model\n"+
						"reproduce: taskgen.GenerateIndexed(cfg{M=%d,K=%d,NSU=%v,N=[%d,%d]}, seed=%d, idx=%d), scheme %v\n%s",
						cfg.M, cfg.K, nsu, cfg.N.Lo, cfg.N.Hi, seed, idx, scheme, st.String())
				}
			}
		}
	}
	// The oracle is only evidence if it actually exercised accepts at
	// every load level; an empty accept population would pass vacuously.
	if accepted == 0 {
		t.Fatal("oracle never saw an accepted partition; the sweep parameters are vacuous")
	}
	t.Logf("sim oracle: %d accepted partitions simulated, 0 misses", simulated)
}

// TestSimOracleFPAcceptsAreSafe is the same differential proof for the
// AMC-rtb backend: every dual-criticality task set a scheme accepts
// through the unified allocator running atop fpamc.Backend (each core
// passed the AMC-rtb response-time analysis) must survive execution
// under fixed-priority dispatching with the deadline-monotonic order
// the analysis assumed — worst-case execution model, zero non-dropped
// deadline misses on every core. This closes the loop the tentpole
// opened: CA-TPA and the classic heuristics now place tasks under an
// analysis the EDF-VD oracle never touches, so the AMC-rtb verdicts
// need their own simulator cross-examination.
func TestSimOracleFPAcceptsAreSafe(t *testing.T) {
	const (
		seed = 20160814
		sets = 60
	)
	cfg := taskgen.DefaultConfig()
	cfg.M = 4
	cfg.K = 2
	cfg.N = taskgen.IntRange{Lo: 16, Hi: 48}

	part := partition.NewWithBackend(cfg.M, cfg.K, new(fpamc.Backend))
	accepted, simulated := 0, 0
	for _, nsu := range []float64{0.45, 0.6, 0.7} {
		cfg.NSU = nsu
		for idx := 0; idx < sets; idx++ {
			ts := taskgen.GenerateIndexed(&cfg, seed, idx)
			for _, scheme := range partition.Schemes {
				res := part.Run(ts, scheme, nil)
				if !res.Feasible {
					continue
				}
				accepted++
				subsets := res.Subsets(ts)
				st := sim.SimulateSystem(sim.SystemConfig{
					Subsets:       subsets,
					K:             cfg.K,
					FixedPriority: true,
					PrioritiesFor: func(core int) []int {
						return fpamc.Priorities(subsets[core].Tasks)
					},
				})
				simulated++
				if st.Missed() != 0 {
					t.Fatalf("amcrtb-accepted set missed deadlines under fixed-priority dispatching\n"+
						"reproduce: taskgen.GenerateIndexed(cfg{M=%d,K=2,NSU=%v,N=[%d,%d]}, seed=%d, idx=%d), scheme %v\n%s",
						cfg.M, nsu, cfg.N.Lo, cfg.N.Hi, seed, idx, scheme, st.String())
				}
			}
		}
	}
	if accepted == 0 {
		t.Fatal("oracle never saw an accepted partition; the sweep parameters are vacuous")
	}
	t.Logf("fp sim oracle: %d accepted partitions simulated, 0 misses", simulated)
}

// TestSimOracleFPBoundaryCore pins the single-core boundary: a subset
// that AMC-rtb accepts on one core stays safe even when its own-level
// load sits close to the analysis's acceptance frontier.
func TestSimOracleFPBoundaryCore(t *testing.T) {
	cfg := taskgen.DefaultConfig()
	cfg.M = 1
	cfg.K = 2
	cfg.N = taskgen.IntRange{Lo: 4, Hi: 10}

	part := partition.NewWithBackend(1, 2, new(fpamc.Backend))
	accepted := 0
	for _, nsu := range []float64{0.5, 0.7, 0.85} {
		cfg.NSU = nsu
		for idx := 0; idx < 80; idx++ {
			ts := taskgen.GenerateIndexed(&cfg, 99, idx)
			res := part.Run(ts, partition.FFD, nil)
			if !res.Feasible {
				continue
			}
			accepted++
			prios := fpamc.Priorities(ts.Tasks)
			st := sim.SimulateCore(sim.CoreConfig{
				Tasks:         ts.Tasks,
				K:             2,
				Model:         sim.WorstCaseModel{},
				FixedPriority: true,
				Priorities:    prios,
			})
			if st.Missed != 0 {
				t.Fatalf("nsu=%v idx=%d: %d misses on an amcrtb-accepted single core", nsu, idx, st.Missed)
			}
		}
	}
	if accepted == 0 {
		t.Fatal("boundary oracle never accepted; parameters are vacuous")
	}
}
