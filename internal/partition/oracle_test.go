package partition_test

import (
	"catpa/internal/mc"
	"testing"

	"catpa/internal/fpamc"
	"catpa/internal/partition"
	"catpa/internal/sim"
	"catpa/internal/taskgen"
)

// TestSimOracleAcceptsAreSafe is the differential proof tying the
// analytical pipeline to the event simulator: every task set a
// partitioning scheme accepts (each core passed the EDF-VD Theorem-1
// test) must survive execution under the adversarial worst-case model
// — every job runs to its own-criticality WCET, forcing the maximum
// mode switching — with zero non-dropped deadline misses on every
// core. A single miss would falsify either the analysis or the
// simulator; the failure message carries the (seed, set, scheme)
// triple that replays the exact input via taskgen.GenerateIndexed.
//
// The NSU ladder deliberately includes a point past the schemes'
// acceptance cliff, so the accepted sets include tightly-loaded
// boundary cases, not just easy ones.
func TestSimOracleAcceptsAreSafe(t *testing.T) {
	const (
		seed = 20160814
		sets = 100
	)
	cfg := taskgen.DefaultConfig()
	cfg.M = 4
	cfg.N = taskgen.IntRange{Lo: 16, Hi: 48}

	accepted, simulated := 0, 0
	for _, nsu := range []float64{0.45, 0.6, 0.7} {
		cfg.NSU = nsu
		for idx := 0; idx < sets; idx++ {
			ts := taskgen.GenerateIndexed(&cfg, seed, idx)
			for _, scheme := range partition.Schemes {
				res := partition.Partition(ts, cfg.M, cfg.K, scheme, nil)
				if !res.Feasible {
					continue
				}
				accepted++
				st := sim.SimulateSystem(sim.SystemConfig{
					Subsets: res.Subsets(ts),
					K:       cfg.K,
				})
				simulated++
				if st.Missed() != 0 {
					t.Fatalf("accepted set missed deadlines under the worst-case model\n"+
						"reproduce: taskgen.GenerateIndexed(cfg{M=%d,K=%d,NSU=%v,N=[%d,%d]}, seed=%d, idx=%d), scheme %v\n%s",
						cfg.M, cfg.K, nsu, cfg.N.Lo, cfg.N.Hi, seed, idx, scheme, st.String())
				}
			}
		}
	}
	// The oracle is only evidence if it actually exercised accepts at
	// every load level; an empty accept population would pass vacuously.
	if accepted == 0 {
		t.Fatal("oracle never saw an accepted partition; the sweep parameters are vacuous")
	}
	t.Logf("sim oracle: %d accepted partitions simulated, 0 misses", simulated)
}

// TestSimOracleFPAcceptsAreSafe is the same differential proof for the
// AMC-rtb backend: every dual-criticality task set a scheme accepts
// through the unified allocator running atop fpamc.Backend (each core
// passed the AMC-rtb response-time analysis) must survive execution
// under fixed-priority dispatching with the deadline-monotonic order
// the analysis assumed — worst-case execution model, zero non-dropped
// deadline misses on every core. This closes the loop the tentpole
// opened: CA-TPA and the classic heuristics now place tasks under an
// analysis the EDF-VD oracle never touches, so the AMC-rtb verdicts
// need their own simulator cross-examination.
func TestSimOracleFPAcceptsAreSafe(t *testing.T) {
	const (
		seed = 20160814
		sets = 60
	)
	cfg := taskgen.DefaultConfig()
	cfg.M = 4
	cfg.K = 2
	cfg.N = taskgen.IntRange{Lo: 16, Hi: 48}

	part := partition.NewWithBackend(cfg.M, cfg.K, new(fpamc.Backend))
	accepted, simulated := 0, 0
	for _, nsu := range []float64{0.45, 0.6, 0.7} {
		cfg.NSU = nsu
		for idx := 0; idx < sets; idx++ {
			ts := taskgen.GenerateIndexed(&cfg, seed, idx)
			for _, scheme := range partition.Schemes {
				res := part.Run(ts, scheme, nil)
				if !res.Feasible {
					continue
				}
				accepted++
				subsets := res.Subsets(ts)
				st := sim.SimulateSystem(sim.SystemConfig{
					Subsets:       subsets,
					K:             cfg.K,
					FixedPriority: true,
					PrioritiesFor: func(core int) []int {
						return fpamc.Priorities(subsets[core].Tasks)
					},
				})
				simulated++
				if st.Missed() != 0 {
					t.Fatalf("amcrtb-accepted set missed deadlines under fixed-priority dispatching\n"+
						"reproduce: taskgen.GenerateIndexed(cfg{M=%d,K=2,NSU=%v,N=[%d,%d]}, seed=%d, idx=%d), scheme %v\n%s",
						cfg.M, nsu, cfg.N.Lo, cfg.N.Hi, seed, idx, scheme, st.String())
				}
			}
		}
	}
	if accepted == 0 {
		t.Fatal("oracle never saw an accepted partition; the sweep parameters are vacuous")
	}
	t.Logf("fp sim oracle: %d accepted partitions simulated, 0 misses", simulated)
}

// TestSimOracleFPBoundaryCore pins the single-core boundary: a subset
// that AMC-rtb accepts on one core stays safe even when its own-level
// load sits close to the analysis's acceptance frontier.
func TestSimOracleFPBoundaryCore(t *testing.T) {
	cfg := taskgen.DefaultConfig()
	cfg.M = 1
	cfg.K = 2
	cfg.N = taskgen.IntRange{Lo: 4, Hi: 10}

	part := partition.NewWithBackend(1, 2, new(fpamc.Backend))
	accepted := 0
	for _, nsu := range []float64{0.5, 0.7, 0.85} {
		cfg.NSU = nsu
		for idx := 0; idx < 80; idx++ {
			ts := taskgen.GenerateIndexed(&cfg, 99, idx)
			res := part.Run(ts, partition.FFD, nil)
			if !res.Feasible {
				continue
			}
			accepted++
			prios := fpamc.Priorities(ts.Tasks)
			st := sim.SimulateCore(sim.CoreConfig{
				Tasks:         ts.Tasks,
				K:             2,
				Model:         sim.WorstCaseModel{},
				FixedPriority: true,
				Priorities:    prios,
			})
			if st.Missed != 0 {
				t.Fatalf("nsu=%v idx=%d: %d misses on an amcrtb-accepted single core", nsu, idx, st.Missed)
			}
		}
	}
	if accepted == 0 {
		t.Fatal("boundary oracle never accepted; parameters are vacuous")
	}
}

// TestSimOracleIncrementalAcceptsAreSafe extends the differential
// proof to the incremental admission path: placements committed
// through an online session — admissions interleaved with releases and
// re-admissions, so the O(1) add deltas AND the removal fallback both
// shape the final subsets — must survive the adversarial worst-case
// model with zero non-dropped misses, under both analysis backends.
// The batch oracles above never run Remove; this one makes the delta
// path itself carry the safety burden.
func TestSimOracleIncrementalAcceptsAreSafe(t *testing.T) {
	const (
		seed = 20260809
		sets = 60
	)
	for _, backend := range []string{partition.DefaultBackend, "amcrtb"} {
		t.Run(backend, func(t *testing.T) {
			cfg := taskgen.DefaultConfig()
			cfg.M = 4
			cfg.K = 2 // shared dimension: amcrtb is dual-criticality
			cfg.N = taskgen.IntRange{Lo: 12, Hi: 40}
			fp := backend == "amcrtb"

			admitted, simulated := 0, 0
			for _, nsu := range []float64{0.45, 0.6, 0.7} {
				cfg.NSU = nsu
				for idx := 0; idx < sets; idx++ {
					ts := taskgen.GenerateIndexed(&cfg, seed, idx)
					be, err := partition.NewBackend(backend)
					if err != nil {
						t.Fatal(err)
					}
					p := partition.NewWithBackend(cfg.M, cfg.K, be)
					for _, scheme := range partition.Schemes {
						p.StartIncremental(ts, scheme, nil)
						// Churn: admit everything, release every fourth
						// admitted task, then try the whole backlog again.
						for ti := 0; ti < ts.Len(); ti++ {
							p.Admit(ti)
						}
						for ti := 0; ti < ts.Len(); ti += 4 {
							if p.Assigned(ti) >= 0 {
								p.Release(ti)
							}
						}
						for ti := 0; ti < ts.Len(); ti++ {
							if p.Assigned(ti) < 0 {
								p.Admit(ti)
							}
						}
						// Materialize the committed per-core subsets.
						subsets := make([]*mc.TaskSet, cfg.M)
						for c := range subsets {
							subsets[c] = &mc.TaskSet{}
						}
						n := 0
						for ti := 0; ti < ts.Len(); ti++ {
							if c := p.Assigned(ti); c >= 0 {
								subsets[c].Tasks = append(subsets[c].Tasks, ts.Tasks[ti].Clone())
								n++
							}
						}
						if n == 0 {
							continue
						}
						admitted += n
						sc := sim.SystemConfig{Subsets: subsets, K: cfg.K}
						if fp {
							sc.FixedPriority = true
							sc.PrioritiesFor = func(core int) []int {
								return fpamc.Priorities(subsets[core].Tasks)
							}
						}
						st := sim.SimulateSystem(sc)
						simulated++
						if st.Missed() != 0 {
							t.Fatalf("session-admitted tasks missed deadlines under the worst-case model\n"+
								"reproduce: taskgen.GenerateIndexed(cfg{M=%d,K=%d,NSU=%v,N=[%d,%d]}, seed=%d, idx=%d), scheme %v, backend %s\n%s",
								cfg.M, cfg.K, nsu, cfg.N.Lo, cfg.N.Hi, seed, idx, scheme, backend, st.String())
						}
					}
				}
			}
			if admitted == 0 {
				t.Fatal("incremental oracle never admitted a task; the sweep parameters are vacuous")
			}
			t.Logf("incremental sim oracle (%s): %d admitted tasks over %d simulated systems, 0 misses",
				backend, admitted, simulated)
		})
	}
}

// TestSimOracleOnlineScenarioChurn extends the differential proof to
// scenario-driven churn: the arrival/departure event streams of the
// online scenario (Poisson arrivals with exponential lifetimes, the
// same process family mcexp -online replays) drive admission sessions,
// and after every accepted Admit the touched core's committed
// configuration is recorded on a sim.Timeline. Every distinct
// configuration any online accept ever produced is then executed under
// the adversarial worst-case model — zero non-dropped deadline misses,
// under both analysis backends. This is the oracle behind the online
// figures: the admission rates mcexp reports count only placements the
// simulator cannot falsify.
func TestSimOracleOnlineScenarioChurn(t *testing.T) {
	const (
		seed = 20260810
		sets = 24
	)
	for _, backend := range []string{partition.DefaultBackend, "amcrtb"} {
		t.Run(backend, func(t *testing.T) {
			cfg := taskgen.DefaultConfig()
			cfg.M = 4
			cfg.K = 2 // shared dimension: amcrtb is dual-criticality
			cfg.N = taskgen.IntRange{Lo: 24, Hi: 24}
			fp := backend == "amcrtb"
			proc := taskgen.Poisson{Rate: 0.06, MeanLifetime: 300}
			const horizon = 1200.0

			tl := sim.NewTimeline(cfg.K)
			sb := taskgen.NewStreamBuilder()
			scratch := &mc.TaskSet{}
			accepts := 0
			for _, nsu := range []float64{0.6, 0.9, 1.2} {
				cfg.NSU = nsu
				for idx := 0; idx < sets; idx++ {
					ts := taskgen.GenerateIndexed(&cfg, seed, idx)
					events := sb.Build(proc, ts.Len(), horizon, seed, idx)
					be, err := partition.NewBackend(backend)
					if err != nil {
						t.Fatal(err)
					}
					p := partition.NewWithBackend(cfg.M, cfg.K, be)
					for _, scheme := range []partition.Scheme{partition.CATPA, partition.FFD} {
						p.StartIncremental(ts, scheme, nil)
						for _, e := range events {
							if e.Arrive {
								core, ok := p.Admit(e.Task)
								if !ok {
									continue // shed: no schedulability claim made
								}
								accepts++
								// Materialize the touched core's committed
								// configuration — the stationary system the
								// analysis just vouched for.
								scratch.Tasks = scratch.Tasks[:0]
								for ti := 0; ti < ts.Len(); ti++ {
									if p.Assigned(ti) == core {
										scratch.Tasks = append(scratch.Tasks, ts.Tasks[ti])
									}
								}
								tl.ObserveCore(scratch)
							} else if p.Assigned(e.Task) >= 0 {
								p.Release(e.Task)
							}
						}
					}
				}
			}
			if accepts == 0 {
				t.Fatal("online oracle never saw an accept; the scenario parameters are vacuous")
			}
			sc := sim.SystemConfig{}
			if fp {
				sc.FixedPriority = true
				sc.PrioritiesFor = func(i int) []int {
					return fpamc.Priorities(tl.Config(i).Tasks)
				}
			}
			st := tl.Run(sc)
			if st.Missed() != 0 {
				t.Fatalf("an online-accepted configuration missed deadlines under the worst-case model\n"+
					"backend %s, %d accepts over %d distinct configurations\n%s",
					backend, accepts, tl.Configs(), st.String())
			}
			t.Logf("online scenario oracle (%s): %d accepts, %d distinct configurations simulated, 0 misses",
				backend, accepts, tl.Configs())
		})
	}
}
