package partition

import (
	"fmt"
	"math"
	"strings"

	"catpa/internal/edfvd"
	"catpa/internal/mc"
)

// CoreInfo summarizes one core of a finished partition.
type CoreInfo struct {
	// Tasks holds indices into the partitioned TaskSet's Tasks slice,
	// in allocation order.
	Tasks []int

	// Util is the core utilization U^Psi of Eq. 9.
	Util float64

	// OwnLevelLoad is sum_k U_k^Psi(k), the Eq. 4 load measure.
	OwnLevelLoad float64

	// FeasibleK is the smallest Theorem-1 condition that holds on the
	// core (1..K-1; 0 only for an infeasible partial result).
	FeasibleK int

	// Lambda holds the virtual-deadline reduction factors lambda_j of
	// the core's final subset (Eq. 6), needed to run EDF-VD.
	Lambda []float64
}

// Step records one allocation decision for trace output (the format of
// the paper's Tables II and III).
type Step struct {
	// Task is the index of the allocated task in the TaskSet.
	Task int
	// Core is the selected core (0-based), or -1 when allocation
	// failed.
	Core int
	// Util is the selected core's utilization after the allocation.
	Util float64
	// Increment is the core-utilization increment of Eq. 14.
	Increment float64
}

// Result is the outcome of one partitioning run.
type Result struct {
	// Scheme that produced the result.
	Scheme Scheme
	// M is the number of cores, K the number of criticality levels.
	M, K int

	// Feasible reports whether every task was placed on a core whose
	// subset passes the EDF-VD schedulability test.
	Feasible bool

	// Assignment maps each task index to its core (0-based), or -1
	// if the task was not placed (only when Feasible is false).
	Assignment []int

	// FailedTask is the index of the first task that could not be
	// placed, or -1.
	FailedTask int

	// Cores describes each core's final subset; valid entries are
	// populated even for infeasible runs (up to the failure point).
	Cores []CoreInfo

	// Usys is the system utilization max_m U^Psi_m (Eq. 10), Uavg the
	// average core utilization (Eq. 11), and Imbalance the workload
	// imbalance factor Lambda (Eq. 16). They are only meaningful when
	// Feasible is true.
	Usys, Uavg, Imbalance float64

	// Trace holds per-task allocation steps when Options.Trace was set.
	Trace []Step
}

// finishMetrics computes Usys, Uavg and Imbalance from the per-core
// utilizations (Eqs. 10, 11, 16).
//
//mc:allocfree folds the per-core utilizations
func (r *Result) finishMetrics() {
	if len(r.Cores) == 0 {
		return
	}
	maxU, minU, sum := math.Inf(-1), math.Inf(1), 0.0
	for i := range r.Cores {
		u := r.Cores[i].Util
		sum += u
		if u > maxU {
			maxU = u
		}
		if u < minU {
			minU = u
		}
	}
	r.Usys = maxU
	r.Uavg = sum / float64(len(r.Cores))
	if maxU > mc.Eps {
		r.Imbalance = (maxU - minU) / maxU
	} else {
		r.Imbalance = 0
	}
}

// Subsets materializes the per-core task subsets as TaskSets (deep
// copies), e.g. to hand them to the runtime simulator.
func (r *Result) Subsets(ts *mc.TaskSet) []*mc.TaskSet {
	out := make([]*mc.TaskSet, len(r.Cores))
	for m := range r.Cores {
		sub := mc.NewTaskSetCap(len(r.Cores[m].Tasks))
		for _, ti := range r.Cores[m].Tasks {
			sub.Tasks = append(sub.Tasks, ts.Tasks[ti].Clone())
		}
		out[m] = sub
	}
	return out
}

// Verify re-derives feasibility of the final assignment from scratch
// (independent matrices, fresh analysis) and checks internal
// consistency. It returns an error describing the first inconsistency
// found, or nil. Intended for tests and for validating deserialized
// results.
func (r *Result) Verify(ts *mc.TaskSet) error {
	if len(r.Assignment) != ts.Len() {
		return fmt.Errorf("partition: assignment length %d != N %d", len(r.Assignment), ts.Len())
	}
	mats := make([]*mc.UtilMatrix, r.M)
	for m := range mats {
		mats[m] = mc.NewUtilMatrix(r.K)
	}
	placed := 0
	for i, core := range r.Assignment {
		if core == -1 {
			if r.Feasible {
				return fmt.Errorf("partition: feasible result leaves task %d unplaced", i)
			}
			continue
		}
		if core < 0 || core >= r.M {
			return fmt.Errorf("partition: task %d assigned to invalid core %d", i, core)
		}
		mats[core].Add(&ts.Tasks[i])
		placed++
	}
	for m := range mats {
		rep := edfvd.Analyze(mats[m])
		if r.Feasible && !rep.Feasible() {
			return fmt.Errorf("partition: core %d infeasible under re-analysis", m)
		}
		if r.Feasible && math.Abs(rep.CoreUtil-r.Cores[m].Util) > 1e-6 {
			return fmt.Errorf("partition: core %d utilization %v != recomputed %v", m, r.Cores[m].Util, rep.CoreUtil)
		}
	}
	if r.Feasible && placed != ts.Len() {
		return fmt.Errorf("partition: feasible result placed %d of %d tasks", placed, ts.Len())
	}
	return nil
}

// String renders a one-line summary.
func (r *Result) String() string {
	if !r.Feasible {
		return fmt.Sprintf("%s{M=%d, INFEASIBLE at task %d}", r.Scheme, r.M, r.FailedTask)
	}
	return fmt.Sprintf("%s{M=%d, Usys=%.3f, Uavg=%.3f, Lambda=%.3f}",
		r.Scheme, r.M, r.Usys, r.Uavg, r.Imbalance)
}

// FormatTrace renders the allocation trace as an aligned text table in
// the spirit of the paper's Tables II-III. ts provides task labels.
func (r *Result) FormatTrace(ts *mc.TaskSet) string {
	var b strings.Builder
	fmt.Fprintf(&b, "allocation trace (%s, M=%d):\n", r.Scheme, r.M)
	for _, s := range r.Trace {
		label := ts.Tasks[s.Task].Label()
		if s.Core < 0 {
			fmt.Fprintf(&b, "  %-8s -> FAILURE (no feasible core)\n", label)
			continue
		}
		fmt.Fprintf(&b, "  %-8s -> P%-2d  U=%.3f  dU=%+.3f\n", label, s.Core+1, s.Util, s.Increment)
	}
	return b.String()
}
