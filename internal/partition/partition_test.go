package partition

import (
	"math"
	"math/rand"
	"testing"

	"catpa/internal/edfvd"
	"catpa/internal/mc"
)

func mkTask(id int, period float64, crit int, wcet ...float64) mc.Task {
	return mc.Task{ID: id, Period: period, Crit: crit, WCET: wcet}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

// loSet builds n identical single-criticality tasks with utilization u.
func loSet(n int, u float64) *mc.TaskSet {
	ts := &mc.TaskSet{}
	for i := 0; i < n; i++ {
		ts.Tasks = append(ts.Tasks, mkTask(i+1, 100, 1, u*100))
	}
	return ts
}

func TestWFDSpreadsLoad(t *testing.T) {
	// Four identical tasks on four cores: WFD puts one per core.
	r := Partition(loSet(4, 0.6), 4, 1, WFD, nil)
	if !r.Feasible {
		t.Fatal("WFD infeasible")
	}
	for c, ci := range r.Cores {
		if len(ci.Tasks) != 1 {
			t.Errorf("core %d has %d tasks, want 1", c, len(ci.Tasks))
		}
	}
	if !almost(r.Imbalance, 0) {
		t.Errorf("imbalance = %v, want 0", r.Imbalance)
	}
}

func TestFFDPacksFirstCore(t *testing.T) {
	// Three tasks of 0.3 fit on one core under FFD.
	r := Partition(loSet(3, 0.3), 2, 1, FFD, nil)
	if !r.Feasible {
		t.Fatal("FFD infeasible")
	}
	if got := len(r.Cores[0].Tasks); got != 3 {
		t.Errorf("core 0 has %d tasks, want 3", got)
	}
	if got := len(r.Cores[1].Tasks); got != 0 {
		t.Errorf("core 1 has %d tasks, want 0", got)
	}
}

func TestBFDPrefersFullestCore(t *testing.T) {
	// Seed core loads 0.5 and 0.3 via two big tasks, then a 0.2 task:
	// BFD must choose the fuller core (index with load 0.5).
	ts := &mc.TaskSet{Tasks: []mc.Task{
		mkTask(1, 100, 1, 50), // 0.5
		mkTask(2, 100, 1, 30), // 0.3
		mkTask(3, 100, 1, 20), // 0.2
	}}
	r := Partition(ts, 2, 1, BFD, nil)
	if !r.Feasible {
		t.Fatal("BFD infeasible")
	}
	// Order: 0.5 -> P1, 0.3 -> P1 (fits: 0.8), 0.2 -> P1 (1.0).
	if got := len(r.Cores[0].Tasks); got != 3 {
		t.Errorf("BFD packed %d tasks on core 0, want 3", got)
	}
}

func TestWFDWorstCaseSplitsBigTasks(t *testing.T) {
	// Two 0.7 tasks, two cores: WFD must place one per core; a second
	// 0.7 on the same core would exceed capacity anyway.
	r := Partition(loSet(2, 0.7), 2, 1, WFD, nil)
	if !r.Feasible {
		t.Fatal("WFD infeasible")
	}
	if len(r.Cores[0].Tasks) != 1 || len(r.Cores[1].Tasks) != 1 {
		t.Error("WFD did not spread the two tasks")
	}
}

func TestInfeasibleWhenOverloaded(t *testing.T) {
	// 3 tasks of 0.8 on 2 cores can never fit.
	for _, s := range Schemes {
		r := Partition(loSet(3, 0.8), 2, 1, s, nil)
		if r.Feasible {
			t.Errorf("%v accepted an overloaded set", s)
		}
		if r.FailedTask < 0 {
			t.Errorf("%v: FailedTask unset", s)
		}
	}
}

func TestHybridPlacesHIFirstWithWFD(t *testing.T) {
	// Two HI tasks and two LO tasks, two cores. Hybrid must put the
	// HI tasks on distinct cores (WFD), then the LO tasks via FFD.
	ts := &mc.TaskSet{Tasks: []mc.Task{
		mkTask(1, 100, 2, 10, 40), // HI u=(0.1,0.4)
		mkTask(2, 100, 2, 10, 40), // HI u=(0.1,0.4)
		mkTask(3, 100, 1, 30),     // LO 0.3
		mkTask(4, 100, 1, 30),     // LO 0.3
	}}
	r := Partition(ts, 2, 2, Hybrid, nil)
	if !r.Feasible {
		t.Fatal("Hybrid infeasible")
	}
	if r.Assignment[0] == r.Assignment[1] {
		t.Error("Hybrid placed both HI tasks on one core")
	}
	// FFD sends both LO tasks to the first core.
	if r.Assignment[2] != 0 || r.Assignment[3] != 0 {
		t.Errorf("LO assignment = %d,%d, want both on core 0", r.Assignment[2], r.Assignment[3])
	}
}

func TestCATPABasicFeasible(t *testing.T) {
	ts := &mc.TaskSet{Tasks: []mc.Task{
		mkTask(1, 100, 2, 10, 60),
		mkTask(2, 100, 2, 10, 60),
		mkTask(3, 100, 1, 40),
		mkTask(4, 100, 1, 40),
	}}
	r := Partition(ts, 2, 2, CATPA, nil)
	if !r.Feasible {
		t.Fatal("CA-TPA infeasible on an easy set")
	}
	if err := r.Verify(ts); err != nil {
		t.Fatal(err)
	}
}

func TestCATPAMinIncrementTieBreaksToSmallerIndex(t *testing.T) {
	// One task, all cores identical and empty: must land on core 0.
	r := Partition(loSet(1, 0.5), 4, 1, CATPA, nil)
	if r.Assignment[0] != 0 {
		t.Errorf("task placed on core %d, want 0", r.Assignment[0])
	}
}

func TestCATPAImbalanceFallback(t *testing.T) {
	// With alpha tiny the fallback is always active; allocation then
	// mimics least-loaded placement and yields a balanced partition.
	ts := loSet(8, 0.4)
	r := Partition(ts, 4, 1, CATPA, &Options{Alpha: 0.01})
	if !r.Feasible {
		t.Fatal("infeasible")
	}
	for c, ci := range r.Cores {
		if len(ci.Tasks) != 2 {
			t.Errorf("core %d has %d tasks, want 2", c, len(ci.Tasks))
		}
	}
	if r.Imbalance > 1e-6 {
		t.Errorf("imbalance = %v, want ~0", r.Imbalance)
	}
}

func TestCATPAAlphaInfNeverFallsBack(t *testing.T) {
	// With alpha = +Inf and identical increments, CA-TPA keeps packing
	// core 0 (min increment ties resolve to the smallest index) as
	// long as it stays feasible.
	ts := loSet(3, 0.2)
	r := Partition(ts, 2, 1, CATPA, &Options{Alpha: InfAlpha()})
	for i, c := range r.Assignment {
		if c != 0 {
			t.Errorf("task %d on core %d, want 0", i, c)
		}
	}
}

func TestCATPAProbePrefersCheaperCore(t *testing.T) {
	// A HI task is cheaper (smaller Eq. 9 increment) on a core that
	// already holds HI load than on one holding LO load of equal
	// magnitude, because the min term absorbs u(1) differences.
	ts := &mc.TaskSet{Tasks: []mc.Task{
		mkTask(1, 100, 2, 5, 50), // HI seed
		mkTask(2, 100, 1, 50),    // LO seed
		mkTask(3, 100, 2, 5, 30), // probe task (HI)
		mkTask(4, 100, 1, 1),     // filler to keep N>M
	}}
	// Compute expected increments directly.
	m1 := mc.NewUtilMatrix(2)
	m1.Add(&ts.Tasks[0])
	u1 := edfvd.CoreUtil(m1)
	m1.Add(&ts.Tasks[2])
	inc1 := edfvd.CoreUtil(m1) - u1

	m2 := mc.NewUtilMatrix(2)
	m2.Add(&ts.Tasks[1])
	u2 := edfvd.CoreUtil(m2)
	m2.Add(&ts.Tasks[2])
	inc2 := edfvd.CoreUtil(m2) - u2

	if inc1 >= inc2 {
		t.Skipf("premise does not hold for these numbers: inc1=%v inc2=%v", inc1, inc2)
	}
}

func TestTraceRecorded(t *testing.T) {
	ts := loSet(3, 0.2)
	r := Partition(ts, 2, 1, CATPA, &Options{Trace: true})
	if len(r.Trace) != 3 {
		t.Fatalf("trace has %d steps, want 3", len(r.Trace))
	}
	for _, s := range r.Trace {
		if s.Core < 0 {
			t.Errorf("unexpected failure step %+v", s)
		}
	}
	if out := r.FormatTrace(ts); out == "" {
		t.Error("empty FormatTrace")
	}
}

func TestTraceRecordsFailure(t *testing.T) {
	r := Partition(loSet(3, 0.8), 2, 1, FFD, &Options{Trace: true})
	last := r.Trace[len(r.Trace)-1]
	if last.Core != -1 {
		t.Errorf("last step core = %d, want -1", last.Core)
	}
}

func TestPartitionPanics(t *testing.T) {
	ts := loSet(1, 0.5)
	mustPanic(t, "M=0", func() { Partition(ts, 0, 1, FFD, nil) })
	hi := &mc.TaskSet{Tasks: []mc.Task{mkTask(1, 10, 2, 1, 2)}}
	mustPanic(t, "K below crit", func() { Partition(hi, 1, 1, FFD, nil) })
	mustPanic(t, "bad scheme", func() { Partition(ts, 1, 1, Scheme(99), nil) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestParseScheme(t *testing.T) {
	for _, s := range Schemes {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScheme("nope"); err == nil {
		t.Error("ParseScheme accepted garbage")
	}
	if s, err := ParseScheme("CATPA"); err != nil || s != CATPA {
		t.Error("CATPA alias rejected")
	}
	if Scheme(99).String() == "" {
		t.Error("unknown scheme String empty")
	}
}

// randomSet builds a K-level set with approximate normalized
// utilization nsu on m cores.
func randomSet(rng *rand.Rand, n, m, k int, nsu float64) *mc.TaskSet {
	ts := &mc.TaskSet{}
	ubase := nsu * float64(m) / float64(n)
	for i := 0; i < n; i++ {
		p := 50 + rng.Float64()*150
		crit := 1 + rng.Intn(k)
		c1 := (0.2 + rng.Float64()*1.6) * p * ubase
		w := make([]float64, crit)
		c := c1
		for j := range w {
			w[j] = c
			c *= 1.4
		}
		t := mc.Task{ID: i + 1, Period: p, Crit: crit, WCET: w}
		if t.MaxUtil() > 1 {
			t.WCET = t.WCET[:1]
			t.Crit = 1
			if t.MaxUtil() > 1 {
				t.WCET[0] = p
			}
		}
		ts.Tasks = append(ts.Tasks, t)
	}
	return ts
}

// TestAllSchemesProduceConsistentResults runs every scheme over random
// sets and validates each result with the independent Verify pass.
func TestAllSchemesProduceConsistentResults(t *testing.T) {
	rng := rand.New(rand.NewSource(2016))
	for trial := 0; trial < 150; trial++ {
		k := 2 + rng.Intn(4)
		m := 2 + rng.Intn(7)
		n := 10 + rng.Intn(40)
		nsu := 0.3 + rng.Float64()*0.5
		ts := randomSet(rng, n, m, k, nsu)
		for _, s := range Schemes {
			r := Partition(ts, m, k, s, nil)
			if err := r.Verify(ts); err != nil {
				t.Fatalf("trial %d scheme %v: %v", trial, s, err)
			}
			if r.Feasible {
				if r.Usys < r.Uavg-1e-9 {
					t.Fatalf("trial %d scheme %v: Usys %v < Uavg %v", trial, s, r.Usys, r.Uavg)
				}
				if r.Imbalance < -1e-9 || r.Imbalance > 1+1e-9 {
					t.Fatalf("trial %d scheme %v: imbalance %v out of range", trial, s, r.Imbalance)
				}
			}
		}
	}
}

// TestFeasibleAssignmentComplete: a feasible partition places every
// task on exactly one core and the per-core task lists tile the set.
func TestFeasibleAssignmentComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ts := randomSet(rng, 24, 4, 3, 0.4)
	for _, s := range Schemes {
		r := Partition(ts, 4, 3, s, nil)
		if !r.Feasible {
			continue
		}
		seen := make(map[int]int)
		for _, ci := range r.Cores {
			for _, ti := range ci.Tasks {
				seen[ti]++
			}
		}
		if len(seen) != ts.Len() {
			t.Errorf("%v: core lists cover %d of %d tasks", s, len(seen), ts.Len())
		}
		for ti, cnt := range seen {
			if cnt != 1 {
				t.Errorf("%v: task %d appears %d times", s, ti, cnt)
			}
		}
	}
}

// TestCATPAUsuallyAtLeastAsGoodAsWFD: in aggregate over random sets at
// moderate load, CA-TPA must accept at least as many sets as WFD (the
// paper's headline result; WFD is consistently the weakest).
func TestCATPAUsuallyAtLeastAsGoodAsWFD(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	catpaWins, wfdWins := 0, 0
	for trial := 0; trial < 400; trial++ {
		ts := randomSet(rng, 40, 4, 3, 0.55+0.2*rng.Float64())
		ca := Partition(ts, 4, 3, CATPA, nil).Feasible
		wf := Partition(ts, 4, 3, WFD, nil).Feasible
		if ca {
			catpaWins++
		}
		if wf {
			wfdWins++
		}
		if wf && !ca {
			// Individual flips are possible but should be rare; count
			// them via the aggregate check below.
			continue
		}
	}
	if catpaWins < wfdWins {
		t.Errorf("CA-TPA accepted %d sets, WFD %d — expected CA-TPA >= WFD", catpaWins, wfdWins)
	}
}
