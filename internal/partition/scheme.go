package partition

import (
	"fmt"
	"math"
)

// Scheme identifies a partitioning heuristic.
type Scheme int

// The heuristics evaluated in the paper, in the order of its legends.
const (
	// WFD is Worst-Fit Decreasing on own-level utilizations.
	WFD Scheme = iota
	// FFD is First-Fit Decreasing on own-level utilizations.
	FFD
	// BFD is Best-Fit Decreasing on own-level utilizations.
	BFD
	// Hybrid allocates high-criticality tasks (l_i >= 2) with WFD and
	// then low-criticality tasks (l_i = 1) with FFD, following
	// Rodriguez et al.
	Hybrid
	// CATPA is the criticality-aware task partitioning algorithm of
	// Han et al. (Algorithm 1).
	CATPA
)

// Schemes lists all heuristics in presentation order.
var Schemes = []Scheme{WFD, FFD, BFD, Hybrid, CATPA}

// String returns the paper's name for the scheme.
func (s Scheme) String() string {
	switch s {
	case WFD:
		return "WFD"
	case FFD:
		return "FFD"
	case BFD:
		return "BFD"
	case Hybrid:
		return "Hybrid"
	case CATPA:
		return "CA-TPA"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// ParseScheme maps a name (case-sensitive, as produced by String, with
// "CATPA" accepted as an alias) back to a Scheme.
func ParseScheme(name string) (Scheme, error) {
	switch name {
	case "WFD":
		return WFD, nil
	case "FFD":
		return FFD, nil
	case "BFD":
		return BFD, nil
	case "Hybrid":
		return Hybrid, nil
	case "CA-TPA", "CATPA":
		return CATPA, nil
	}
	return 0, fmt.Errorf("partition: unknown scheme %q", name)
}

// OrderPolicy selects how tasks are sorted before allocation. It
// exists for the ablation study; the paper's CA-TPA always uses
// ContributionOrder and the baselines always use MaxUtilOrder.
type OrderPolicy int

const (
	// DefaultOrder lets the scheme pick its canonical ordering.
	DefaultOrder OrderPolicy = iota
	// ContributionOrder sorts by decreasing utilization contribution
	// (Eqs. 12-13 with the paper's tie rules).
	ContributionOrder
	// MaxUtilOrder sorts by decreasing own-level utilization.
	MaxUtilOrder
)

// Options tunes a heuristic run. The zero value selects the paper's
// defaults.
type Options struct {
	// Alpha is the workload-imbalance threshold of CA-TPA (Section
	// III-C). Zero selects the paper's default 0.7; math.Inf(1)
	// disables the imbalance fallback entirely.
	Alpha float64

	// Order overrides the task ordering (ablation only).
	Order OrderPolicy

	// NoProbe disables CA-TPA's minimum-increment probe and places
	// each task on the first feasible core instead (ablation only).
	NoProbe bool

	// Eq9Literal switches the core-utilization metric to the literal
	// worst-condition reading of Eq. 9 (see DESIGN.md section 3);
	// ablation only.
	Eq9Literal bool

	// Trace records the per-task allocation steps in Result.Trace,
	// reproducing the paper's Tables II-III format.
	Trace bool
}

// DefaultAlpha is the paper's default imbalance threshold
// (Section IV-A: "the default values ... alpha = 0.7").
const DefaultAlpha = 0.7

//
//mc:allocfree defaulting accessor
func (o *Options) alpha() float64 {
	//lint:ignore mclint/floateq deliberately exact: 0 is the zero-value sentinel selecting the default, not a computed quantity
	if o == nil || o.Alpha == 0 {
		return DefaultAlpha
	}
	return o.Alpha
}

//
//mc:allocfree defaulting accessor
func (o *Options) order(def OrderPolicy) OrderPolicy {
	if o == nil || o.Order == DefaultOrder {
		return def
	}
	return o.Order
}

//
//mc:allocfree defaulting accessor
func (o *Options) noProbe() bool { return o != nil && o.NoProbe }

//
//mc:allocfree defaulting accessor
func (o *Options) trace() bool { return o != nil && o.Trace }

//
//mc:allocfree defaulting accessor
func (o *Options) eq9Literal() bool { return o != nil && o.Eq9Literal }

// InfAlpha is a convenience for disabling the imbalance fallback.
func InfAlpha() float64 { return math.Inf(1) }
