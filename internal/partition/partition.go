package partition

import (
	"fmt"
	"math"

	"catpa/internal/edfvd"
	"catpa/internal/mc"
)

// Partition allocates the tasks of ts onto m homogeneous cores with
// the given scheme. k is the number of system criticality levels and
// must be at least ts.MaxCrit(); passing the system-wide K (rather
// than the set's own maximum) matters because the generator may
// produce sets that happen not to populate the top level.
//
// The returned result is self-contained; ts is not modified. Sweeps
// that partition many sets with the same dimensions should reuse a
// Partitioner instead, which amortizes all internal storage.
func Partition(ts *mc.TaskSet, m, k int, scheme Scheme, opts *Options) *Result {
	return New(m, k).Run(ts, scheme, opts)
}

// allocator carries the reusable state of partitioning runs: per-core
// matrices, cached analyses, ordering scratch and precomputed per-task
// utilization rows. It is re-dimensioned by reset and cleared by clear,
// so steady-state runs perform no allocations.
type allocator struct {
	m, k int

	// Per-run inputs.
	ts     *mc.TaskSet
	scheme Scheme
	opts   *Options

	// Per-core state.
	mats []*mc.UtilMatrix // per-core incremental U_j(k)
	// utils is the per-core U^Psi in the configured Eq. 9 reading
	// (CA-TPA's decision metric); utilEval is the standard reading
	// used by the result metrics. They differ only under Eq9Literal.
	utils    []float64
	utilEval []float64
	ownLoad  []float64      // per-core Eq. 4 own-level load, refreshed on place
	reps     []edfvd.Report // cached per-core analysis of the placed subset
	repOK    []bool         // reps[c] matches the core's current subset
	tasks    [][]int        // per-core task indices in allocation order

	// Per-task state.
	assign []int     // task -> core
	urows  []float64 // N x K precomputed utilization rows (Task.UtilRow)

	// Ordering cache: one slot per OrderPolicy, valid for the current
	// task set. Schemes sharing an effective ordering (all classical
	// heuristics default to MaxUtilOrder) then sort the set only once
	// per EvaluateAll batch.
	ordIdx [2][]int
	ordKey [2][]float64
	ordOK  [2]bool

	failed int // first unplaceable task, -1

	// Probe state. scratch receives each probe's analysis; when a probe
	// becomes the current best candidate, scratch and probeRep are
	// swapped so probeRep always holds the winning analysis, which
	// place commits without re-running edfvd.AnalyzeInto. rowSave
	// backs the SaveRow/RestoreRow exact undo of probe additions.
	scratch  edfvd.Report
	probeRep edfvd.Report
	probeOK  bool
	rowSave  []float64

	// emptyRep is the analysis of an empty K-level subset, shared by
	// every core that ends a run without tasks.
	emptyRep edfvd.Report

	trace []Step
}

// reset re-dimensions the allocator for m cores and k levels, reusing
// storage where the dimensions allow.
func (a *allocator) reset(m, k int) {
	if m < 1 {
		panic(fmt.Sprintf("partition: invalid core count %d", m))
	}
	if k < 1 {
		k = 1
	}
	if m == a.m && k == a.k && a.mats != nil {
		return
	}
	rebuild := k != a.k
	a.m, a.k = m, k
	if cap(a.mats) < m {
		mats := make([]*mc.UtilMatrix, m)
		copy(mats, a.mats)
		a.mats = mats
	} else {
		a.mats = a.mats[:m]
	}
	for c := range a.mats {
		if a.mats[c] == nil || rebuild {
			a.mats[c] = mc.NewUtilMatrix(k)
		}
	}
	a.utils = resizeFloats(a.utils, m)
	a.utilEval = resizeFloats(a.utilEval, m)
	a.ownLoad = resizeFloats(a.ownLoad, m)
	a.repOK = resizeBools(a.repOK, m)
	if cap(a.reps) < m {
		reps := make([]edfvd.Report, m)
		copy(reps, a.reps)
		a.reps = reps
	} else {
		a.reps = a.reps[:m]
	}
	if cap(a.tasks) < m {
		tasks := make([][]int, m)
		copy(tasks, a.tasks)
		a.tasks = tasks
	} else {
		a.tasks = a.tasks[:m]
	}
	a.rowSave = resizeFloats(a.rowSave, k)
	a.mats[0].Reset()
	edfvd.AnalyzeInto(a.mats[0], &a.emptyRep)
}

// prepSet installs a task set: it validates the dimensions, precomputes
// the per-task utilization rows and invalidates the ordering cache.
// Once prepared, any number of runPrepared calls may share this work
// (the EvaluateAll batch path).
func (a *allocator) prepSet(ts *mc.TaskSet) {
	if maxCrit := ts.MaxCrit(); a.k < maxCrit {
		panic(fmt.Sprintf("partition: K=%d below task set criticality %d", a.k, maxCrit))
	}
	a.ts = ts
	a.ordOK[0], a.ordOK[1] = false, false
	n := ts.Len()
	// Precompute every task's per-level utilization row once, so the
	// probe loops add K cached floats instead of re-deriving c(k)/p.
	a.urows = resizeFloats(a.urows, n*a.k)
	for i := 0; i < n; i++ {
		ts.Tasks[i].UtilRow(a.k, a.urows[i*a.k:(i+1)*a.k])
	}
}

// clearRun resets the per-run state for the already-prepared task set.
func (a *allocator) clearRun(scheme Scheme, opts *Options) {
	a.scheme, a.opts = scheme, opts
	a.failed = -1
	a.probeOK = false
	a.trace = a.trace[:0]
	for c := 0; c < a.m; c++ {
		a.mats[c].Reset()
		a.utils[c] = 0
		a.utilEval[c] = 0
		a.ownLoad[c] = a.mats[c].OwnLevelLoad()
		a.repOK[c] = false
		a.tasks[c] = a.tasks[c][:0]
	}
	a.assign = resizeInts(a.assign, a.ts.Len())
	for i := range a.assign {
		a.assign[i] = -1
	}
}

// run executes one partitioning pass (allocation only; the caller
// assembles a Result or Eval afterwards).
func (a *allocator) run(ts *mc.TaskSet, scheme Scheme, opts *Options) {
	a.prepSet(ts)
	a.runPrepared(scheme, opts)
}

// runPrepared executes one pass over the task set installed by the
// last prepSet.
func (a *allocator) runPrepared(scheme Scheme, opts *Options) {
	a.clearRun(scheme, opts)
	switch scheme {
	case WFD, FFD, BFD:
		a.runClassic(scheme)
	case Hybrid:
		a.runHybrid()
	case CATPA:
		a.runCATPA()
	default:
		panic(fmt.Sprintf("partition: unknown scheme %v", scheme))
	}
}

// urow returns task ti's precomputed utilization row.
func (a *allocator) urow(ti int) []float64 {
	return a.urows[ti*a.k : (ti+1)*a.k]
}

// probeAdd tentatively adds task ti to core c, first snapshotting the
// affected matrix row so probeUndo can restore it bitwise (an
// arithmetic Remove could leave one-ulp residue in the sums).
func (a *allocator) probeAdd(c, ti int) {
	crit := a.ts.Tasks[ti].Crit
	a.mats[c].SaveRow(crit, a.rowSave)
	a.mats[c].AddRow(crit, a.urow(ti))
}

// probeUndo exactly reverts the matching probeAdd.
func (a *allocator) probeUndo(c, ti int) {
	a.mats[c].RestoreRow(a.ts.Tasks[ti].Crit, a.rowSave)
}

// feasibleWith reports whether core c stays schedulable when task ti
// is added, used by the classical schemes of Section IV. The whole
// test is virtual — the cheap Eq. 4 accept, the O(1) overload reject,
// and the early-exiting full Theorem-1 verdict all read the matrix
// without mutating it, so classic placement never probes and never
// fills a report.
func (a *allocator) feasibleWith(c, ti int) bool {
	crit := a.ts.Tasks[ti].Crit
	d := a.mats[c].Data()
	u := a.urow(ti)
	if edfvd.SimpleFeasibleProbed(d, a.k, crit, u) {
		return true
	}
	if a.k >= 2 && edfvd.FastInfeasibleProbed(d, a.k, crit, u) {
		return false
	}
	return edfvd.FeasibleProbed(d, a.k, crit, u)
}

// coreUtil extracts the configured Eq. 9 reading from the scratch
// report.
func (a *allocator) coreUtil() float64 {
	if a.opts.eq9Literal() {
		return a.scratch.CoreUtilWorst
	}
	return a.scratch.CoreUtil
}

// keepProbe marks the analysis currently in scratch as the winning
// candidate's, to be committed by place without re-analysis.
func (a *allocator) keepProbe() {
	a.scratch, a.probeRep = a.probeRep, a.scratch
	a.probeOK = true
}

// utilWith returns the core utilization U^{Psi_c + tau_ti} of Eq. 15,
// +Inf when the extended subset is infeasible. The analysis is left in
// scratch for keepProbe.
func (a *allocator) utilWith(c, ti int) float64 {
	if edfvd.FastInfeasibleProbed(a.mats[c].Data(), a.k, a.ts.Tasks[ti].Crit, a.urow(ti)) {
		// No condition can hold: CoreUtil would be +Inf under either
		// Eq. 9 reading, so skip the probe and the full analysis.
		return math.Inf(1)
	}
	a.probeAdd(c, ti)
	edfvd.AnalyzeInto(a.mats[c], &a.scratch)
	u := a.coreUtil()
	a.probeUndo(c, ti)
	return u
}

// place commits task ti to core c. When a CA-TPA probe cached the
// winning core's analysis (probeOK), it is committed directly; the
// classical schemes defer per-core analysis to the finishing pass
// entirely, since their placement decisions never read core
// utilizations (only own-level loads). Tracing forces the eager
// analysis because Step.Util reports the post-placement utilization.
func (a *allocator) place(ti, c int) {
	prev := a.utils[c]
	a.mats[c].AddRow(a.ts.Tasks[ti].Crit, a.urow(ti))
	a.ownLoad[c] = a.mats[c].OwnLevelLoad()
	a.tasks[c] = append(a.tasks[c], ti)
	a.assign[ti] = c
	switch {
	case a.probeOK:
		a.reps[c], a.probeRep = a.probeRep, a.reps[c]
		a.probeOK = false
		a.commitRep(c)
	case a.opts.trace():
		edfvd.AnalyzeInto(a.mats[c], &a.reps[c])
		a.commitRep(c)
	default:
		a.repOK[c] = false
	}
	if a.opts.trace() {
		a.trace = append(a.trace, Step{Task: ti, Core: c, Util: a.utils[c], Increment: a.utils[c] - prev})
	}
}

// commitRep refreshes the cached per-core utilizations from reps[c].
func (a *allocator) commitRep(c int) {
	if a.opts.eq9Literal() {
		a.utils[c] = a.reps[c].CoreUtilWorst
	} else {
		a.utils[c] = a.reps[c].CoreUtil
	}
	a.utilEval[c] = a.reps[c].CoreUtil
	a.repOK[c] = true
}

func (a *allocator) fail(ti int) {
	a.failed = ti
	a.probeOK = false
	if a.opts.trace() {
		a.trace = append(a.trace, Step{Task: ti, Core: -1})
	}
}

// orderTasks resolves the ordering policy against the scheme's default
// and returns the sorted task order, computing it at most once per
// prepared task set and policy (the order is a pure function of both).
func (a *allocator) orderTasks(def OrderPolicy) []int {
	policy := a.opts.order(def)
	slot := 0
	if policy == MaxUtilOrder {
		slot = 1
	}
	if !a.ordOK[slot] {
		if policy == ContributionOrder {
			a.ordIdx[slot], a.ordKey[slot] = mc.SortByContributionInto(a.ts, a.ordIdx[slot], a.ordKey[slot])
		} else {
			a.ordIdx[slot], a.ordKey[slot] = mc.SortByMaxUtilInto(a.ts, a.ordIdx[slot], a.ordKey[slot])
		}
		a.ordOK[slot] = true
	}
	return a.ordIdx[slot]
}

// runClassic implements FFD, BFD and WFD: tasks in decreasing
// own-level utilization, cores compared by their Eq. 4 own-level load.
func (a *allocator) runClassic(s Scheme) {
	order := a.orderTasks(MaxUtilOrder)
	for _, ti := range order {
		c := a.pickClassic(s, ti)
		if c < 0 {
			a.fail(ti)
			return
		}
		a.place(ti, c)
	}
}

// pickClassic returns the target core for task ti under FFD/BFD/WFD,
// or -1 when no core can accommodate it.
func (a *allocator) pickClassic(s Scheme, ti int) int {
	best := -1
	var bestLoad float64
	for c := 0; c < a.m; c++ {
		if !a.feasibleWith(c, ti) {
			continue
		}
		switch s {
		case FFD:
			return c // first feasible core wins
		case BFD:
			// Fullest feasible core: maximize current own-level load
			// (cached; refreshed by place via the same OwnLevelLoad sum).
			if load := a.ownLoad[c]; best < 0 || load > bestLoad+mc.Eps {
				best, bestLoad = c, load
			}
		case WFD:
			// Emptiest feasible core: minimize current own-level load.
			if load := a.ownLoad[c]; best < 0 || load < bestLoad-mc.Eps {
				best, bestLoad = c, load
			}
		}
	}
	return best
}

// runHybrid allocates high-criticality tasks (l_i >= 2) with WFD and
// then low-criticality tasks (l_i = 1) with FFD, both in decreasing
// own-level utilization, per Rodriguez et al.
func (a *allocator) runHybrid() {
	order := a.orderTasks(MaxUtilOrder)
	for _, ti := range order {
		if a.ts.Tasks[ti].Crit < 2 {
			continue
		}
		c := a.pickClassic(WFD, ti)
		if c < 0 {
			a.fail(ti)
			return
		}
		a.place(ti, c)
	}
	for _, ti := range order {
		if a.ts.Tasks[ti].Crit >= 2 {
			continue
		}
		c := a.pickClassic(FFD, ti)
		if c < 0 {
			a.fail(ti)
			return
		}
		a.place(ti, c)
	}
}

// runCATPA implements Algorithm 1 plus the workload-imbalance fallback
// of Section III-C.
func (a *allocator) runCATPA() {
	order := a.orderTasks(ContributionOrder)
	alpha := a.opts.alpha()
	for _, ti := range order {
		var c int
		switch {
		case a.imbalance() > alpha:
			// Imbalance fallback: least-loaded feasible core, ignoring
			// utilization increments.
			c = a.pickLeastLoaded(ti)
		case a.opts.noProbe():
			c = a.pickFirstFeasible(ti)
		default:
			c = a.pickMinIncrement(ti)
		}
		if c < 0 {
			a.fail(ti)
			return
		}
		a.place(ti, c)
	}
}

// imbalance computes the current workload imbalance factor Lambda
// (Eq. 16) over the cores' cached utilizations.
func (a *allocator) imbalance() float64 {
	maxU, minU := math.Inf(-1), math.Inf(1)
	for _, u := range a.utils {
		if u > maxU {
			maxU = u
		}
		if u < minU {
			minU = u
		}
	}
	if maxU <= mc.Eps {
		return 0
	}
	return (maxU - minU) / maxU
}

// pickMinIncrement probes every core (lines 5-11 of Algorithm 1) and
// returns the feasible core with the smallest core-utilization
// increment, ties broken by smaller index; -1 if none is feasible. The
// winning probe's analysis is retained for place.
func (a *allocator) pickMinIncrement(ti int) int {
	best := -1
	bestInc := math.Inf(1)
	crit := a.ts.Tasks[ti].Crit
	urow := a.urow(ti)
	for c := 0; c < a.m; c++ {
		// Certified pruning: if even the utilization floor of the
		// probed core cannot beat the incumbent increment (under the
		// selection's Eps hysteresis), the full analysis is pointless.
		// The floor is conservative, so no potential winner is skipped.
		if floor := edfvd.UtilFloorProbed(a.mats[c].Data(), a.k, crit, urow); floor-a.utils[c] >= bestInc-mc.Eps {
			continue
		}
		u := a.utilWith(c, ti)
		if math.IsInf(u, 1) {
			continue // infeasible on this core
		}
		if inc := u - a.utils[c]; inc < bestInc-mc.Eps {
			best, bestInc = c, inc
			a.keepProbe()
		}
	}
	return best
}

// pickLeastLoaded returns the feasible core with minimum current core
// utilization (the imbalance fallback), ties broken by smaller index.
func (a *allocator) pickLeastLoaded(ti int) int {
	best := -1
	bestU := math.Inf(1)
	for c := 0; c < a.m; c++ {
		if a.utils[c] >= bestU-mc.Eps {
			continue
		}
		if math.IsInf(a.utilWith(c, ti), 1) {
			continue
		}
		best, bestU = c, a.utils[c]
		a.keepProbe()
	}
	return best
}

// pickFirstFeasible places on the first core that passes the
// Theorem-1 test with the task added (the NoProbe ablation).
func (a *allocator) pickFirstFeasible(ti int) int {
	for c := 0; c < a.m; c++ {
		if !math.IsInf(a.utilWith(c, ti), 1) {
			a.keepProbe()
			return c
		}
	}
	return -1
}

// coreReport returns the Theorem-1 analysis of core c's final subset,
// reusing the analysis cached during placement when it is current
// (always, for CA-TPA) and the shared empty-subset analysis for cores
// that received no task. Only classical-scheme cores with tasks are
// analyzed here — the one place the finishing pass still runs
// edfvd.AnalyzeInto.
func (a *allocator) coreReport(c int) *edfvd.Report {
	if a.repOK[c] {
		return &a.reps[c]
	}
	if a.mats[c].Len() == 0 {
		return &a.emptyRep
	}
	edfvd.AnalyzeInto(a.mats[c], &a.reps[c])
	a.repOK[c] = true
	return &a.reps[c]
}

// finishInto assembles the run's Result into r, reusing r's storage.
func (a *allocator) finishInto(r *Result) {
	r.Scheme = a.scheme
	r.M, r.K = a.m, a.k
	r.Feasible = a.failed < 0
	r.FailedTask = a.failed
	r.Assignment = append(r.Assignment[:0], a.assign...)
	if cap(r.Cores) < a.m {
		r.Cores = make([]CoreInfo, a.m)
	} else {
		r.Cores = r.Cores[:a.m]
	}
	for c := 0; c < a.m; c++ {
		rep := a.coreReport(c)
		ci := &r.Cores[c]
		ci.Tasks = append(ci.Tasks[:0], a.tasks[c]...)
		ci.Util = rep.CoreUtil
		ci.OwnLevelLoad = a.mats[c].OwnLevelLoad()
		ci.FeasibleK = rep.FeasibleK
		ci.Lambda = append(ci.Lambda[:0], rep.Lambda...)
	}
	if len(a.trace) > 0 {
		r.Trace = append(r.Trace[:0], a.trace...)
	} else {
		r.Trace = nil
	}
	r.finishMetrics()
}

// evaluate computes the cheap Eval summary: the same per-core
// utilizations the full Result would report, folded with the exact
// arithmetic of Result.finishMetrics, but without materializing
// per-core task lists or lambda vectors.
func (a *allocator) evaluate() Eval {
	ev := Eval{Feasible: a.failed < 0, FailedTask: a.failed}
	maxU, minU, sum := math.Inf(-1), math.Inf(1), 0.0
	for c := 0; c < a.m; c++ {
		u := a.coreReport(c).CoreUtil
		sum += u
		if u > maxU {
			maxU = u
		}
		if u < minU {
			minU = u
		}
	}
	ev.Usys = maxU
	ev.Uavg = sum / float64(a.m)
	if maxU > mc.Eps {
		ev.Imbalance = (maxU - minU) / maxU
	}
	return ev
}

func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func resizeBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
