package partition

import (
	"fmt"
	"math"

	"catpa/internal/edfvd"
	"catpa/internal/mc"
)

// Partition allocates the tasks of ts onto m homogeneous cores with
// the given scheme. k is the number of system criticality levels and
// must be at least ts.MaxCrit(); passing the system-wide K (rather
// than the set's own maximum) matters because the generator may
// produce sets that happen not to populate the top level.
//
// The returned result is self-contained; ts is not modified.
func Partition(ts *mc.TaskSet, m, k int, scheme Scheme, opts *Options) *Result {
	if m < 1 {
		panic(fmt.Sprintf("partition: invalid core count %d", m))
	}
	if maxCrit := ts.MaxCrit(); k < maxCrit {
		panic(fmt.Sprintf("partition: K=%d below task set criticality %d", k, maxCrit))
	}
	if k < 1 {
		k = 1
	}
	a := newAllocator(ts, m, k, scheme, opts)
	switch scheme {
	case WFD, FFD, BFD:
		a.runClassic(scheme)
	case Hybrid:
		a.runHybrid()
	case CATPA:
		a.runCATPA()
	default:
		panic(fmt.Sprintf("partition: unknown scheme %v", scheme))
	}
	return a.finish()
}

// allocator carries the shared state of one partitioning run.
type allocator struct {
	ts     *mc.TaskSet
	m, k   int
	scheme Scheme
	opts   *Options

	mats    []*mc.UtilMatrix // per-core incremental U_j(k)
	utils   []float64        // per-core U^Psi (Eq. 9), kept current
	tasks   [][]int          // per-core task indices in allocation order
	assign  []int            // task -> core
	failed  int              // first unplaceable task, -1
	scratch edfvd.Report     // reusable analysis storage
	trace   []Step
}

func newAllocator(ts *mc.TaskSet, m, k int, scheme Scheme, opts *Options) *allocator {
	a := &allocator{
		ts:     ts,
		m:      m,
		k:      k,
		scheme: scheme,
		opts:   opts,
		mats:   make([]*mc.UtilMatrix, m),
		utils:  make([]float64, m),
		tasks:  make([][]int, m),
		assign: make([]int, ts.Len()),
		failed: -1,
	}
	for i := range a.mats {
		a.mats[i] = mc.NewUtilMatrix(k)
	}
	for i := range a.assign {
		a.assign[i] = -1
	}
	return a
}

// feasibleWith reports whether core c stays schedulable when task ti
// is added, using the baseline policy of Section IV: the cheap Eq. 4
// test first, then the Theorem-1 test.
func (a *allocator) feasibleWith(c, ti int) bool {
	t := &a.ts.Tasks[ti]
	mat := a.mats[c]
	mat.Add(t)
	ok := edfvd.SimpleFeasible(mat)
	if !ok {
		edfvd.AnalyzeInto(mat, &a.scratch)
		ok = a.scratch.Feasible()
	}
	mat.Remove(t)
	return ok
}

// coreUtil extracts the configured Eq. 9 reading from the scratch
// report.
func (a *allocator) coreUtil() float64 {
	if a.opts.eq9Literal() {
		return a.scratch.CoreUtilWorst
	}
	return a.scratch.CoreUtil
}

// utilWith returns the core utilization U^{Psi_c + tau_ti} of Eq. 15,
// +Inf when the extended subset is infeasible.
func (a *allocator) utilWith(c, ti int) float64 {
	t := &a.ts.Tasks[ti]
	mat := a.mats[c]
	mat.Add(t)
	edfvd.AnalyzeInto(mat, &a.scratch)
	u := a.coreUtil()
	mat.Remove(t)
	return u
}

// place commits task ti to core c and refreshes the core's cached
// utilization.
func (a *allocator) place(ti, c int) {
	prev := a.utils[c]
	a.mats[c].Add(&a.ts.Tasks[ti])
	a.tasks[c] = append(a.tasks[c], ti)
	a.assign[ti] = c
	edfvd.AnalyzeInto(a.mats[c], &a.scratch)
	a.utils[c] = a.coreUtil()
	if a.opts.trace() {
		a.trace = append(a.trace, Step{Task: ti, Core: c, Util: a.utils[c], Increment: a.utils[c] - prev})
	}
}

func (a *allocator) fail(ti int) {
	a.failed = ti
	if a.opts.trace() {
		a.trace = append(a.trace, Step{Task: ti, Core: -1})
	}
}

// runClassic implements FFD, BFD and WFD: tasks in decreasing
// own-level utilization, cores compared by their Eq. 4 own-level load.
func (a *allocator) runClassic(s Scheme) {
	order := a.classicOrder()
	for _, ti := range order {
		c := a.pickClassic(s, ti)
		if c < 0 {
			a.fail(ti)
			return
		}
		a.place(ti, c)
	}
}

func (a *allocator) classicOrder() []int {
	if a.opts.order(MaxUtilOrder) == ContributionOrder {
		return mc.SortByContribution(a.ts)
	}
	return mc.SortByMaxUtil(a.ts)
}

// pickClassic returns the target core for task ti under FFD/BFD/WFD,
// or -1 when no core can accommodate it.
func (a *allocator) pickClassic(s Scheme, ti int) int {
	best := -1
	var bestLoad float64
	for c := 0; c < a.m; c++ {
		if !a.feasibleWith(c, ti) {
			continue
		}
		switch s {
		case FFD:
			return c // first feasible core wins
		case BFD:
			// Fullest feasible core: maximize current own-level load.
			if load := a.mats[c].OwnLevelLoad(); best < 0 || load > bestLoad+mc.Eps {
				best, bestLoad = c, load
			}
		case WFD:
			// Emptiest feasible core: minimize current own-level load.
			if load := a.mats[c].OwnLevelLoad(); best < 0 || load < bestLoad-mc.Eps {
				best, bestLoad = c, load
			}
		}
	}
	return best
}

// runHybrid allocates high-criticality tasks (l_i >= 2) with WFD and
// then low-criticality tasks (l_i = 1) with FFD, both in decreasing
// own-level utilization, per Rodriguez et al.
func (a *allocator) runHybrid() {
	order := a.classicOrder()
	for _, ti := range order {
		if a.ts.Tasks[ti].Crit < 2 {
			continue
		}
		c := a.pickClassic(WFD, ti)
		if c < 0 {
			a.fail(ti)
			return
		}
		a.place(ti, c)
	}
	for _, ti := range order {
		if a.ts.Tasks[ti].Crit >= 2 {
			continue
		}
		c := a.pickClassic(FFD, ti)
		if c < 0 {
			a.fail(ti)
			return
		}
		a.place(ti, c)
	}
}

// runCATPA implements Algorithm 1 plus the workload-imbalance fallback
// of Section III-C.
func (a *allocator) runCATPA() {
	var order []int
	if a.opts.order(ContributionOrder) == MaxUtilOrder {
		order = mc.SortByMaxUtil(a.ts)
	} else {
		order = mc.SortByContribution(a.ts)
	}
	alpha := a.opts.alpha()
	for _, ti := range order {
		var c int
		switch {
		case a.imbalance() > alpha:
			// Imbalance fallback: least-loaded feasible core, ignoring
			// utilization increments.
			c = a.pickLeastLoaded(ti)
		case a.opts.noProbe():
			c = a.pickFirstFeasible(ti)
		default:
			c = a.pickMinIncrement(ti)
		}
		if c < 0 {
			a.fail(ti)
			return
		}
		a.place(ti, c)
	}
}

// imbalance computes the current workload imbalance factor Lambda
// (Eq. 16) over the cores' cached utilizations.
func (a *allocator) imbalance() float64 {
	maxU, minU := math.Inf(-1), math.Inf(1)
	for _, u := range a.utils {
		if u > maxU {
			maxU = u
		}
		if u < minU {
			minU = u
		}
	}
	if maxU <= mc.Eps {
		return 0
	}
	return (maxU - minU) / maxU
}

// pickMinIncrement probes every core (lines 5-11 of Algorithm 1) and
// returns the feasible core with the smallest core-utilization
// increment, ties broken by smaller index; -1 if none is feasible.
func (a *allocator) pickMinIncrement(ti int) int {
	best := -1
	bestInc := math.Inf(1)
	for c := 0; c < a.m; c++ {
		u := a.utilWith(c, ti)
		if math.IsInf(u, 1) {
			continue // infeasible on this core
		}
		if inc := u - a.utils[c]; inc < bestInc-mc.Eps {
			best, bestInc = c, inc
		}
	}
	return best
}

// pickLeastLoaded returns the feasible core with minimum current core
// utilization (the imbalance fallback), ties broken by smaller index.
func (a *allocator) pickLeastLoaded(ti int) int {
	best := -1
	bestU := math.Inf(1)
	for c := 0; c < a.m; c++ {
		if a.utils[c] >= bestU-mc.Eps {
			continue
		}
		if math.IsInf(a.utilWith(c, ti), 1) {
			continue
		}
		best, bestU = c, a.utils[c]
	}
	return best
}

// pickFirstFeasible places on the first core that passes the
// Theorem-1 test with the task added (the NoProbe ablation).
func (a *allocator) pickFirstFeasible(ti int) int {
	for c := 0; c < a.m; c++ {
		if !math.IsInf(a.utilWith(c, ti), 1) {
			return c
		}
	}
	return -1
}

// finish assembles the Result.
func (a *allocator) finish() *Result {
	r := &Result{
		Scheme:     a.scheme,
		M:          a.m,
		K:          a.k,
		Feasible:   a.failed < 0,
		Assignment: a.assign,
		FailedTask: a.failed,
		Cores:      make([]CoreInfo, a.m),
		Trace:      a.trace,
	}
	for c := 0; c < a.m; c++ {
		rep := edfvd.Analyze(a.mats[c])
		r.Cores[c] = CoreInfo{
			Tasks:        a.tasks[c],
			Util:         rep.CoreUtil,
			OwnLevelLoad: a.mats[c].OwnLevelLoad(),
			FeasibleK:    rep.FeasibleK,
			Lambda:       append([]float64(nil), rep.Lambda...),
		}
	}
	r.finishMetrics()
	return r
}
