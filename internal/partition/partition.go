package partition

import (
	"fmt"
	"math"

	"catpa/internal/mc"
)

// Partition allocates the tasks of ts onto m homogeneous cores with
// the given scheme. k is the number of system criticality levels and
// must be at least ts.MaxCrit(); passing the system-wide K (rather
// than the set's own maximum) matters because the generator may
// produce sets that happen not to populate the top level.
//
// The returned result is self-contained; ts is not modified. Sweeps
// that partition many sets with the same dimensions should reuse a
// Partitioner instead, which amortizes all internal storage.
func Partition(ts *mc.TaskSet, m, k int, scheme Scheme, opts *Options) *Result {
	return New(m, k).Run(ts, scheme, opts)
}

// allocator is the one allocation shell shared by every heuristic and
// every analysis backend: it owns the heuristic state of a run —
// per-core task lists, the assignment, cached core utilizations,
// ordering scratch — and consults a Backend for every schedulability
// question (Algorithm 1's oracle seam). It is re-dimensioned by reset
// and cleared per run, so steady-state runs perform no allocations in
// the shell; whether the analysis itself allocates is the backend's
// contract (the EDF-VD backend does not).
type allocator struct {
	m, k int
	be   Backend

	// ebe is be when it is the default EDF-VD backend, else nil: the
	// concrete-type shortcut behind the devirtualized pick loops, which
	// resolve the candidate's row once per task and query the per-core
	// states with direct (inlinable) calls. Every fast-path loop
	// performs exactly the interface-typed loop's float comparisons, so
	// the picks are identical.
	ebe *edfvdBackend

	// Per-run inputs.
	ts     *mc.TaskSet
	scheme Scheme
	opts   *Options

	// Per-core state. utils is the per-core U^Psi in the configured
	// Eq. 9 reading (CA-TPA's decision metric), refreshed from the
	// backend on probed or traced placements; ownLoad the Eq. 4
	// own-level load the classical schemes compare cores by.
	utils   []float64
	ownLoad []float64
	tasks   [][]int // per-core task indices in allocation order

	// uMax/uMin cache max and min over utils, maintained by bumpUtil on
	// every refresh so the per-task Eq. 16 imbalance read is O(1)
	// instead of an O(m) rescan.
	uMax, uMin float64

	// Per-task state.
	assign []int // task -> core

	// Ordering cache: one slot per OrderPolicy, valid for the current
	// task set. Schemes sharing an effective ordering (all classical
	// heuristics default to MaxUtilOrder) then sort the set only once
	// per EvaluateAll batch.
	ordIdx [2][]int
	ordKey [2][]float64
	ordOK  [2]bool

	failed int // first unplaceable task, -1

	// probeOK records that the backend holds a kept probe analysis for
	// the next place.
	probeOK bool

	trace []Step
}

// reset re-dimensions the allocator for m cores and k levels, reusing
// storage where the dimensions allow.
func (a *allocator) reset(m, k int) {
	if m < 1 {
		panic(fmt.Sprintf("partition: invalid core count %d", m))
	}
	if k < 1 {
		k = 1
	}
	if maxK := a.be.MaxLevels(); maxK > 0 && k > maxK {
		panic(fmt.Sprintf("partition: backend %s supports at most K=%d levels, got %d", a.be.Name(), maxK, k))
	}
	a.be.Reset(m, k)
	if m == a.m && k == a.k && a.utils != nil {
		return
	}
	a.m, a.k = m, k
	a.utils = resizeFloats(a.utils, m)
	a.ownLoad = resizeFloats(a.ownLoad, m)
	if cap(a.tasks) < m {
		tasks := make([][]int, m)
		copy(tasks, a.tasks)
		a.tasks = tasks
	} else {
		a.tasks = a.tasks[:m]
	}
}

// prepSet installs a task set: it validates the dimensions and hands
// the set to the backend for per-set precomputation, invalidating the
// ordering cache. Once prepared, any number of runPrepared calls may
// share this work (the EvaluateAll batch path).
//
//mc:allocfree hands the set to the backend; panic path exempt
func (a *allocator) prepSet(ts *mc.TaskSet) {
	if maxCrit := ts.MaxCrit(); a.k < maxCrit {
		panic(fmt.Sprintf("partition: K=%d below task set criticality %d", a.k, maxCrit))
	}
	a.ts = ts
	a.ordOK[0], a.ordOK[1] = false, false
	a.be.Prepare(ts)
}

// clearRun resets the per-run state for the already-prepared task set.
//
//mc:allocfree truncates and refills amortized per-run state
func (a *allocator) clearRun(scheme Scheme, opts *Options) {
	a.scheme, a.opts = scheme, opts
	a.failed = -1
	a.probeOK = false
	a.trace = a.trace[:0]
	a.be.Begin()
	for c := 0; c < a.m; c++ {
		a.utils[c] = 0
		a.ownLoad[c] = a.be.OwnLoad(c)
		a.tasks[c] = a.tasks[c][:0]
	}
	a.assign = resizeInts(a.assign, a.ts.Len())
	for i := range a.assign {
		a.assign[i] = -1
	}
	a.uMax, a.uMin = 0, 0
}

// run executes one partitioning pass (allocation only; the caller
// assembles a Result or Eval afterwards).
//
//mc:allocfree one pass over amortized state
func (a *allocator) run(ts *mc.TaskSet, scheme Scheme, opts *Options) {
	a.prepSet(ts)
	a.runPrepared(scheme, opts)
}

// runPrepared executes one pass over the task set installed by the
// last prepSet.
//
//mc:allocfree dispatches to the per-scheme loops
func (a *allocator) runPrepared(scheme Scheme, opts *Options) {
	a.clearRun(scheme, opts)
	switch scheme {
	case WFD, FFD, BFD:
		a.runClassic()
	case Hybrid:
		a.runHybrid()
	case CATPA:
		a.runCATPA()
	default:
		panic(fmt.Sprintf("partition: unknown scheme %v", scheme))
	}
}

// place commits task ti to core c. When a CA-TPA probe cached the
// winning core's analysis (probeOK), the backend commits it directly;
// the classical schemes defer per-core analysis to the finishing pass
// entirely, since their placement decisions never read core
// utilizations (only own-level loads). Tracing forces the eager
// utilization read because Step.Util reports the post-placement value.
//
//mc:allocfree per-core slices grow amortized; Step is a value
func (a *allocator) place(ti, c int) {
	prev := a.utils[c]
	probed := a.probeOK
	a.probeOK = false
	if eb := a.ebe; eb != nil {
		a.ownLoad[c] = eb.placeLoad(c, ti, probed)
	} else {
		a.be.Place(c, ti, probed)
		a.ownLoad[c] = a.be.OwnLoad(c)
	}
	a.tasks[c] = append(a.tasks[c], ti)
	a.assign[ti] = c
	if probed || a.opts.trace() {
		a.utils[c] = a.be.CoreUtil(c, a.opts.eq9Literal())
		a.bumpUtil(prev, a.utils[c])
	}
	if a.opts.trace() {
		a.trace = append(a.trace, Step{Task: ti, Core: c, Util: a.utils[c], Increment: a.utils[c] - prev})
	}
}

//
//mc:allocfree records the failure index
func (a *allocator) fail(ti int) {
	a.failed = ti
	a.probeOK = false
	if a.opts.trace() {
		a.trace = append(a.trace, Step{Task: ti, Core: -1})
	}
}

// orderTasks resolves the ordering policy against the scheme's default
// and returns the sorted task order, computing it at most once per
// prepared task set and policy (the order is a pure function of both).
//
//mc:allocfree ordering scratch reused across runs
func (a *allocator) orderTasks(def OrderPolicy) []int {
	policy := a.opts.order(def)
	slot := 0
	if policy == MaxUtilOrder {
		slot = 1
	}
	if !a.ordOK[slot] {
		if policy == ContributionOrder {
			a.ordIdx[slot], a.ordKey[slot] = mc.SortByContributionInto(a.ts, a.ordIdx[slot], a.ordKey[slot])
		} else {
			a.ordIdx[slot], a.ordKey[slot] = mc.SortByMaxUtilInto(a.ts, a.ordIdx[slot], a.ordKey[slot])
		}
		a.ordOK[slot] = true
	}
	return a.ordIdx[slot]
}

// runClassic implements FFD, BFD and WFD: tasks in decreasing
// own-level utilization, cores compared by their Eq. 4 own-level load.
//
//mc:allocfree the FFD/BFD/WFD loop
func (a *allocator) runClassic() {
	order := a.orderTasks(MaxUtilOrder)
	for _, ti := range order {
		c := a.pick(ti)
		if c < 0 {
			a.fail(ti)
			return
		}
		a.place(ti, c)
	}
}

// pickClassic returns the target core for task ti under FFD/BFD/WFD,
// or -1 when no core can accommodate it. Each scheme gets its own
// scan loop so the per-core iteration carries no scheme dispatch.
//
// For BFD/WFD the load-hysteresis test runs before the schedulability
// probe: a core whose load would not displace the incumbent cannot
// change the pick whatever its verdict, so deferring the (much more
// expensive) feasibility call behind the load gate skips the analysis
// on most cores while selecting exactly the core the probe-first scan
// would.
//
//mc:allocfree scans cached loads
func (a *allocator) pickClassic(s Scheme, ti int) int {
	switch s {
	case BFD:
		return a.pickBFD(ti)
	case WFD:
		return a.pickWFD(ti)
	default:
		return a.pickFFD(ti)
	}
}

// pickFFD returns the first feasible core for ti, or -1.
//
//mc:allocfree the FFD scan
func (a *allocator) pickFFD(ti int) int {
	if eb := a.ebe; eb != nil {
		return eb.pickFFD(ti)
	}
	for c := 0; c < a.m; c++ {
		if a.be.FeasibleWith(c, ti) {
			return c
		}
	}
	return -1
}

// pickBFD returns the fullest feasible core for ti — maximum current
// own-level load (cached; refreshed by place via the same OwnLoad
// sum) under the Eps hysteresis — or -1.
//
//mc:allocfree the BFD scan
func (a *allocator) pickBFD(ti int) int {
	if eb := a.ebe; eb != nil {
		return eb.pickBFD(a.ownLoad, ti)
	}
	best := -1
	var bestLoad float64
	for c := 0; c < a.m; c++ {
		if load := a.ownLoad[c]; best < 0 || load > bestLoad+mc.Eps {
			if a.be.FeasibleWith(c, ti) {
				best, bestLoad = c, load
			}
		}
	}
	return best
}

// pickWFD returns the emptiest feasible core for ti — minimum current
// own-level load under the Eps hysteresis — or -1.
//
//mc:allocfree the WFD scan
func (a *allocator) pickWFD(ti int) int {
	if eb := a.ebe; eb != nil {
		return eb.pickWFD(a.ownLoad, ti)
	}
	best := -1
	var bestLoad float64
	for c := 0; c < a.m; c++ {
		if load := a.ownLoad[c]; best < 0 || load < bestLoad-mc.Eps {
			if a.be.FeasibleWith(c, ti) {
				best, bestLoad = c, load
			}
		}
	}
	return best
}

// runHybrid allocates high-criticality tasks (l_i >= 2) with WFD and
// then low-criticality tasks (l_i = 1) with FFD, both in decreasing
// own-level utilization, per Rodriguez et al.
//
//mc:allocfree two classic passes
func (a *allocator) runHybrid() {
	order := a.orderTasks(MaxUtilOrder)
	for _, ti := range order {
		if a.ts.Tasks[ti].Crit < 2 {
			continue
		}
		c := a.pick(ti)
		if c < 0 {
			a.fail(ti)
			return
		}
		a.place(ti, c)
	}
	for _, ti := range order {
		if a.ts.Tasks[ti].Crit >= 2 {
			continue
		}
		c := a.pick(ti)
		if c < 0 {
			a.fail(ti)
			return
		}
		a.place(ti, c)
	}
}

// runCATPA implements Algorithm 1 plus the workload-imbalance fallback
// of Section III-C.
//
//mc:allocfree Algorithm 1 inner loop
func (a *allocator) runCATPA() {
	order := a.orderTasks(ContributionOrder)
	for _, ti := range order {
		c := a.pick(ti)
		if c < 0 {
			a.fail(ti)
			return
		}
		a.place(ti, c)
	}
}

// imbalance computes the current workload imbalance factor Lambda
// (Eq. 16) from the cached utilization extrema — the same values a
// rescan of utils would produce, by the bumpUtil invariant.
//
//mc:allocfree reads two cached scalars
func (a *allocator) imbalance() float64 {
	if a.uMax <= mc.Eps {
		return 0
	}
	return (a.uMax - a.uMin) / a.uMax
}

// bumpUtil restores the uMax/uMin invariant after utils[c] changed
// from prev to cur: O(1) unless the update displaced the extremum it
// held, then one O(m) rescan.
//
//mc:allocfree scalar compares, rarely an O(m) rescan
func (a *allocator) bumpUtil(prev, cur float64) {
	//lint:ignore mclint/floateq deliberately exact: prev held the cached extremum iff it equals it bit for bit
	if (prev == a.uMax && cur < prev) || (prev == a.uMin && cur > prev) {
		a.rescanUtils()
		return
	}
	if cur > a.uMax {
		a.uMax = cur
	}
	if cur < a.uMin {
		a.uMin = cur
	}
}

// rescanUtils recomputes the cached utilization extrema from utils.
//
//mc:allocfree scans cached utilizations
func (a *allocator) rescanUtils() {
	maxU, minU := a.utils[0], a.utils[0]
	for _, u := range a.utils[1:] {
		if u > maxU {
			maxU = u
		}
		if u < minU {
			minU = u
		}
	}
	a.uMax, a.uMin = maxU, minU
}

// keepProbe marks the backend's most recent probe analysis as the
// winning candidate's, to be committed by place without re-analysis.
//
//mc:allocfree flags the backend swap
func (a *allocator) keepProbe() {
	a.be.KeepProbe()
	a.probeOK = true
}

// utilWith returns the backend's core utilization with task ti added
// (Eq. 15), +Inf when the extended subset is infeasible.
//
//mc:allocfree delegates to the backend probe
func (a *allocator) utilWith(c, ti int) float64 {
	return a.be.ProbeUtil(c, ti, a.opts.eq9Literal())
}

// pickMinIncrement probes every core (lines 5-11 of Algorithm 1) and
// returns the feasible core with the smallest core-utilization
// increment, ties broken by smaller index; -1 if none is feasible. The
// winning probe's analysis is retained for place.
//
//mc:allocfree the probe loop of Algorithm 1
func (a *allocator) pickMinIncrement(ti int) int {
	if eb := a.ebe; eb != nil {
		// The winning probe's analysis is already in keepEval; flag it
		// for place exactly as the per-improvement keepProbe would have.
		c := eb.pickMinIncrement(a.utils, ti, a.opts.eq9Literal())
		a.probeOK = c >= 0
		return c
	}
	best := -1
	bestInc := math.Inf(1)
	for c := 0; c < a.m; c++ {
		// Certified pruning: if even the utilization floor of the
		// probed core cannot beat the incumbent increment (under the
		// selection's Eps hysteresis), the full analysis is pointless.
		// The floor is conservative, so no potential winner is skipped.
		if floor := a.be.UtilFloor(c, ti); floor-a.utils[c] >= bestInc-mc.Eps {
			continue
		}
		u := a.utilWith(c, ti)
		if math.IsInf(u, 1) {
			continue // infeasible on this core
		}
		if inc := u - a.utils[c]; inc < bestInc-mc.Eps {
			best, bestInc = c, inc
			a.keepProbe()
		}
	}
	return best
}

// pickLeastLoaded returns the feasible core with minimum current core
// utilization (the imbalance fallback), ties broken by smaller index.
//
//mc:allocfree the imbalance fallback scan
func (a *allocator) pickLeastLoaded(ti int) int {
	best := -1
	bestU := math.Inf(1)
	for c := 0; c < a.m; c++ {
		if a.utils[c] >= bestU-mc.Eps {
			continue
		}
		if math.IsInf(a.utilWith(c, ti), 1) {
			continue
		}
		best, bestU = c, a.utils[c]
		a.keepProbe()
	}
	return best
}

// pickFirstFeasible places on the first core that passes the backend's
// schedulability test with the task added (the NoProbe ablation of
// Algorithm 1).
//
//mc:allocfree the NoProbe ablation scan
func (a *allocator) pickFirstFeasible(ti int) int {
	for c := 0; c < a.m; c++ {
		if !math.IsInf(a.utilWith(c, ti), 1) {
			a.keepProbe()
			return c
		}
	}
	return -1
}

// finishInto assembles the run's Result into r, reusing r's storage.
//
//mc:allocfree refills the Result's amortized slices
func (a *allocator) finishInto(r *Result) {
	r.Scheme = a.scheme
	r.M, r.K = a.m, a.k
	r.Feasible = a.failed < 0
	r.FailedTask = a.failed
	r.Assignment = append(r.Assignment[:0], a.assign...)
	if cap(r.Cores) < a.m {
		r.Cores = make([]CoreInfo, a.m)
	} else {
		r.Cores = r.Cores[:a.m]
	}
	for c := 0; c < a.m; c++ {
		ci := &r.Cores[c]
		ci.Tasks = append(ci.Tasks[:0], a.tasks[c]...)
		a.be.ReportInto(c, ci)
		ci.OwnLevelLoad = a.be.OwnLoad(c)
	}
	if len(a.trace) > 0 {
		r.Trace = append(r.Trace[:0], a.trace...)
	} else {
		r.Trace = nil
	}
	r.finishMetrics()
}

// evaluate computes the cheap Eval summary: the same per-core
// utilizations the full Result would report, folded with the exact
// arithmetic of Result.finishMetrics, but without materializing
// per-core task lists or lambda vectors.
//
//mc:allocfree folds backend utilizations into a value
func (a *allocator) evaluate() Eval {
	ev := Eval{Feasible: a.failed < 0, FailedTask: a.failed}
	maxU, minU, sum := math.Inf(-1), math.Inf(1), 0.0
	for c := 0; c < a.m; c++ {
		u := a.be.CoreUtil(c, false)
		sum += u
		if u > maxU {
			maxU = u
		}
		if u < minU {
			minU = u
		}
	}
	ev.Usys = maxU
	ev.Uavg = sum / float64(a.m)
	if maxU > mc.Eps {
		ev.Imbalance = (maxU - minU) / maxU
	}
	return ev
}

//
//mc:allocfree amortized: reallocates only on growth
func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

//
//mc:allocfree amortized: reallocates only on growth
func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

//
//mc:allocfree amortized: reallocates only on growth
func resizeBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
