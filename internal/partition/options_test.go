package partition

import (
	"math/rand"
	"strings"
	"testing"

	"catpa/internal/mc"
)

func TestEq9LiteralOption(t *testing.T) {
	// The option must change only the placement metric, never accept
	// an infeasible partition; across a population both variants stay
	// valid and the literal one is (weakly) worse on acceptance.
	rng := rand.New(rand.NewSource(17))
	bestWins, literalWins := 0, 0
	for trial := 0; trial < 200; trial++ {
		ts := randomSet(rng, 40, 4, 4, 0.55+0.15*rng.Float64())
		rBest := Partition(ts, 4, 4, CATPA, nil)
		rLit := Partition(ts, 4, 4, CATPA, &Options{Eq9Literal: true})
		if err := rBest.Verify(ts); err != nil {
			t.Fatal(err)
		}
		if err := rLit.Verify(ts); err != nil {
			t.Fatal(err)
		}
		if rBest.Feasible && !rLit.Feasible {
			bestWins++
		}
		if rLit.Feasible && !rBest.Feasible {
			literalWins++
		}
	}
	if bestWins+literalWins == 0 {
		t.Skip("population too easy to separate the metrics")
	}
	if literalWins > bestWins {
		t.Errorf("literal Eq.9 reading won %d vs %d — contradicts the calibration", literalWins, bestWins)
	}
	t.Logf("best-condition wins %d, literal wins %d over 200 sets", bestWins, literalWins)
}

func TestHybridMultiLevelSplit(t *testing.T) {
	// For K=4 the Hybrid scheme treats every task with crit >= 2 as
	// high-criticality (WFD pass) and crit 1 as low (FFD pass).
	ts := &mc.TaskSet{Tasks: []mc.Task{
		mkTask(1, 100, 4, 5, 7, 10, 14),
		mkTask(2, 100, 3, 5, 7, 10),
		mkTask(3, 100, 2, 5, 7),
		mkTask(4, 100, 1, 20),
		mkTask(5, 100, 1, 20),
	}}
	r := Partition(ts, 2, 4, Hybrid, &Options{Trace: true})
	if !r.Feasible {
		t.Fatal("infeasible")
	}
	// The three MC tasks must be allocated before the two LO tasks.
	for i, s := range r.Trace {
		if i < 3 && ts.Tasks[s.Task].Crit < 2 {
			t.Errorf("step %d allocated LO task before HI pass finished", i)
		}
		if i >= 3 && ts.Tasks[s.Task].Crit >= 2 {
			t.Errorf("step %d allocated HI task during LO pass", i)
		}
	}
}

func TestResultStringForms(t *testing.T) {
	ts := loSet(2, 0.4)
	ok := Partition(ts, 2, 1, FFD, nil)
	if s := ok.String(); !strings.Contains(s, "Usys") {
		t.Errorf("feasible String = %q", s)
	}
	bad := Partition(loSet(3, 0.8), 2, 1, FFD, nil)
	if s := bad.String(); !strings.Contains(s, "INFEASIBLE") {
		t.Errorf("infeasible String = %q", s)
	}
}

func TestResultSubsets(t *testing.T) {
	ts := loSet(4, 0.3)
	r := Partition(ts, 2, 1, WFD, nil)
	subs := r.Subsets(ts)
	if len(subs) != 2 {
		t.Fatalf("subsets = %d", len(subs))
	}
	total := 0
	for _, s := range subs {
		total += s.Len()
	}
	if total != ts.Len() {
		t.Errorf("subsets cover %d of %d tasks", total, ts.Len())
	}
	// Deep copies: mutating a subset must not touch the original.
	subs[0].Tasks[0].WCET[0] = 999
	for i := range ts.Tasks {
		if ts.Tasks[i].WCET[0] == 999 {
			t.Fatal("Subsets shares storage with the source set")
		}
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	ts := loSet(4, 0.3)
	r := Partition(ts, 2, 1, FFD, nil)
	if err := r.Verify(ts); err != nil {
		t.Fatal(err)
	}
	// Corrupt the assignment in ways Verify must flag.
	bad := *r
	bad.Assignment = append([]int(nil), r.Assignment...)
	bad.Assignment[0] = 7 // out of range
	if err := bad.Verify(ts); err == nil {
		t.Error("invalid core index not caught")
	}
	bad.Assignment[0] = -1 // unplaced but feasible
	if err := bad.Verify(ts); err == nil {
		t.Error("unplaced task in feasible result not caught")
	}
	short := *r
	short.Assignment = r.Assignment[:1]
	if err := short.Verify(ts); err == nil {
		t.Error("truncated assignment not caught")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o *Options
	if o.alpha() != DefaultAlpha {
		t.Errorf("nil options alpha = %v", o.alpha())
	}
	if o.noProbe() || o.trace() || o.eq9Literal() {
		t.Error("nil options enable switches")
	}
	if (&Options{}).order(ContributionOrder) != ContributionOrder {
		t.Error("zero Options override default order")
	}
	if (&Options{Order: MaxUtilOrder}).order(ContributionOrder) != MaxUtilOrder {
		t.Error("explicit order ignored")
	}
}

func TestCATPANoProbeOption(t *testing.T) {
	// NoProbe places on the first feasible core: identical tasks all
	// land on core 0 until it would become infeasible.
	ts := loSet(4, 0.3)
	r := Partition(ts, 2, 1, CATPA, &Options{NoProbe: true, Alpha: InfAlpha()})
	if !r.Feasible {
		t.Fatal("infeasible")
	}
	if len(r.Cores[0].Tasks) != 3 || len(r.Cores[1].Tasks) != 1 {
		t.Errorf("core sizes = %d,%d, want 3,1", len(r.Cores[0].Tasks), len(r.Cores[1].Tasks))
	}
}
