package partition

import (
	"context"

	"catpa/internal/mc"
)

// Context-aware evaluation: the admission-control daemon plumbs
// per-request deadlines from its HTTP timeout middleware down to the
// Partitioner, and these wrappers are where the context meets the
// engine. Cancellation is observed at run boundaries — before each
// placement pass — not inside the inner loops: a single pass over a
// task set is microseconds, so checking between passes bounds the
// overrun by one pass while keeping the hot loops free of interface
// dispatch (and their 0 allocs/op guarantee untouched).

// RunContext is Run guarded by ctx: if ctx is already done the run is
// skipped and (nil, ctx.Err()) returned; otherwise it behaves exactly
// like Run. The Result is owned by the Partitioner, as with Run.
func (p *Partitioner) RunContext(ctx context.Context, ts *mc.TaskSet, scheme Scheme, opts *Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return p.Run(ts, scheme, opts), nil
}

// EvaluateContext is Evaluate guarded by ctx: if ctx is already done
// the evaluation is skipped and ctx.Err() returned; otherwise the Eval
// is bit-identical to Evaluate's.
func (p *Partitioner) EvaluateContext(ctx context.Context, ts *mc.TaskSet, scheme Scheme, opts *Options) (Eval, error) {
	if err := ctx.Err(); err != nil {
		return Eval{}, err
	}
	return p.Evaluate(ts, scheme, opts), nil
}

// EvaluateAllContext is EvaluateAll with a deadline: ctx is checked
// before each scheme's placement pass, and on expiry the Evals
// completed so far are returned alongside ctx.Err() — the partial
// verdict the admission daemon serves when a request deadline fires
// mid-batch. A nil error means every scheme was evaluated; each Eval
// is bit-identical to the corresponding EvaluateAll entry.
func (p *Partitioner) EvaluateAllContext(ctx context.Context, ts *mc.TaskSet, schemes []Scheme, opts *Options, dst []Eval) ([]Eval, error) {
	if err := ctx.Err(); err != nil {
		return dst, err
	}
	p.Prepare(ts)
	for _, s := range schemes {
		if err := ctx.Err(); err != nil {
			return dst, err
		}
		p.Place(s, opts)
		dst = append(dst, p.Summarize())
	}
	return dst, nil
}
