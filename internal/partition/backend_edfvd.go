package partition

import (
	"fmt"
	"math"

	"catpa/internal/edfvd"
	"catpa/internal/mc"
)

func init() {
	RegisterBackend(DefaultBackend, func() Backend { return &edfvdBackend{} })
}

// edfvdBackend is the paper's per-core analysis: the EDF-VD Theorem-1
// test with virtual-deadline reduction factors (internal/edfvd), in
// its incremental scalar form. Each core's analysis inputs live in an
// edfvd.State — the aggregate sums the Theorem-1 ladder consumes,
// updated in O(1) per criticality level on every placement — so probe
// queries run the whole ladder in O(K) from cached scalars and never
// touch per-task storage, where the matrix-based predecessor re-read a
// K x K matrix per query.
//
// Delta discipline: probed queries evaluate `cached + urow` with
// exactly the float operations Place's State.Add performs, so probe
// answers are bitwise the committed answers after the placement.
// Remove marks the core dirty and the next query replays the
// surviving members' deltas in placement order — the exact-recompute
// fallback, forced unconditionally by Reanalyze. The replay performs
// the identical Add sequence an incremental build over exactly those
// members would have, so its state is bitwise indistinguishable from
// one that never saw the removed task. The backend keeps its own
// per-core member lists for that replay.
type edfvdBackend struct {
	m, k int
	ts   *mc.TaskSet

	states  []edfvd.State // per-core incremental Theorem-1 sums
	slab    []float64     // contiguous backing for all states' sum vectors
	members [][]int       // per-core committed task indices, placement order
	dirty   []bool        // state must be rebuilt by replay before the next read
	ndirty  int           // count of dirty cores: zero short-circuits ensure

	// Committed analysis cache: aEval[c] holds the Eq. 9 readings and
	// the holding condition of core c's committed subset when aOK[c].
	aEval []edfvd.ProbeEval
	aOK   []bool

	// Probe state for the KeepProbe protocol: ProbeUtil evaluates into
	// probeEval; KeepProbe copies it to keepEval; a probed Place
	// installs keepEval as the core's committed analysis.
	probeEval, keepEval edfvd.ProbeEval

	crit  []int     // per-task criticality levels, flat (avoids Task derefs)
	urows []float64 // N x K precomputed utilization rows (Task.UtilRow)

	rep edfvd.Report // ReportInto scratch, reused across cores
}

// Name implements Backend.
//
//mc:allocfree constant
func (b *edfvdBackend) Name() string { return DefaultBackend }

// MaxLevels implements Backend: the Theorem-1 analysis handles any K.
//
//mc:allocfree constant
func (b *edfvdBackend) MaxLevels() int { return 0 }

// Reset implements Backend.
func (b *edfvdBackend) Reset(m, k int) {
	if m == b.m && k == b.k && b.states != nil {
		return
	}
	b.m, b.k = m, k
	if cap(b.states) < m {
		states := make([]edfvd.State, m)
		copy(states, b.states)
		b.states = states
	} else {
		b.states = b.states[:m]
	}
	// All cores' scalar sums live in one contiguous slab, so the
	// per-task probe scan over the m cores stays within a few cache
	// lines.
	stride := 3*k - 2
	b.slab = resizeFloats(b.slab, m*stride)
	for c := range b.states {
		b.states[c].ResetSlab(k, b.slab[c*stride:(c+1)*stride])
	}
	if cap(b.members) < m {
		members := make([][]int, m)
		copy(members, b.members)
		b.members = members
	} else {
		b.members = b.members[:m]
	}
	if cap(b.aEval) < m {
		b.aEval = make([]edfvd.ProbeEval, m)
	} else {
		b.aEval = b.aEval[:m]
	}
	b.dirty = resizeBools(b.dirty, m)
	b.aOK = resizeBools(b.aOK, m)
}

// Prepare implements Backend: it precomputes every task's per-level
// utilization row and criticality once, so the delta updates and probe
// reads add K cached floats instead of re-deriving c(k)/p, and the hot
// queries never touch the Task structs at all.
//
//mc:allocfree utilization rows fill amortized storage
func (b *edfvdBackend) Prepare(ts *mc.TaskSet) {
	b.ts = ts
	n := ts.Len()
	b.urows = resizeFloats(b.urows, n*b.k)
	b.crit = resizeInts(b.crit, n)
	for i := 0; i < n; i++ {
		ts.Tasks[i].UtilRow(b.k, b.urows[i*b.k:(i+1)*b.k])
		b.crit[i] = ts.Tasks[i].Crit
	}
}

// Begin implements Backend.
//
//mc:allocfree resets scalar state in place
func (b *edfvdBackend) Begin() {
	for c := 0; c < b.m; c++ {
		b.states[c].Clear()
		b.members[c] = b.members[c][:0]
		b.dirty[c] = false
		b.aOK[c] = false
	}
	b.ndirty = 0
}

// urow returns task ti's precomputed utilization row.
//
//mc:allocfree reslices the precomputed rows
func (b *edfvdBackend) urow(ti int) []float64 {
	base := ti * b.k
	return b.urows[base : base+b.k]
}

// ensure rebuilds core c's scalar state from its committed members —
// the exact-recompute fallback after a removal. Replaying the
// survivors' deltas in placement order reproduces bitwise the state an
// incremental build over exactly those members would have produced.
// The guard is a single counter load: in removal-free runs (every
// batch partition) no query ever touches the per-core dirty flags.
//
//mc:allocfree inlineable guard around the replay
func (b *edfvdBackend) ensure(c int) {
	if b.ndirty != 0 && b.dirty[c] {
		b.rebuild(c)
	}
}

// rebuild replays core c's surviving deltas; split from ensure so the
// clean-path guard inlines into every query.
//
//mc:allocfree replays deltas into amortized state
func (b *edfvdBackend) rebuild(c int) {
	b.states[c].Clear()
	for _, ti := range b.members[c] {
		b.states[c].Add(b.crit[ti], b.urow(ti))
	}
	b.dirty[c] = false
	b.ndirty--
}

// FeasibleWith implements Backend with the Theorem-1 ladder of
// Section IV: the cheap Eq. 4 accept, then the full Theorem-1 verdict
// — which opens with the O(1) overload reject, shares its min term
// with the lambda recursion, and exits at the first holding condition
// — every rung answered from the core's cached scalar sums plus the
// candidate's row, in O(K) total and without mutating committed state.
//
//mc:allocfree all screens read cached scalars
func (b *edfvdBackend) FeasibleWith(c, ti int) bool {
	b.ensure(c)
	s := &b.states[c]
	crit := b.crit[ti]
	u := b.urow(ti)
	if s.SimpleFeasibleWith(crit, u) {
		return true
	}
	return s.FeasibleWith(crit, u)
}

// ProbeUtil implements Backend: the core utilization U^{Psi_c + tau_i}
// of Eq. 15, +Inf when the extended subset is infeasible. The analysis
// runs in O(K) from the cached sums — the overload fast-reject opens
// EvalWith itself — with no tentative mutation and no undo, and lands
// in probeEval for KeepProbe.
//
//mc:allocfree O(K) scalar analysis into reusable scratch
func (b *edfvdBackend) ProbeUtil(c, ti int, worst bool) float64 {
	b.ensure(c)
	b.states[c].EvalWith(b.crit[ti], b.urow(ti), &b.probeEval)
	if worst {
		return b.probeEval.CoreUtilWorst
	}
	return b.probeEval.CoreUtil
}

// KeepProbe implements Backend.
//
//mc:allocfree copies three scalars
func (b *edfvdBackend) KeepProbe() {
	b.keepEval = b.probeEval
}

// UtilFloor implements Backend via the certified Eq. 9 lower bound of
// State.UtilFloorWith; conservative, so no potential winner of the
// minimum-increment search is ever pruned away.
//
//mc:allocfree O(1) scalar reads
func (b *edfvdBackend) UtilFloor(c, ti int) float64 {
	b.ensure(c)
	return b.states[c].UtilFloorWith(b.crit[ti], b.urow(ti))
}

// Place implements Backend: the O(1)-per-level delta commit. With
// probed set, the winning probe's analysis (held in keepEval since
// KeepProbe) becomes the core's committed analysis — bitwise what a
// recompute would produce, by the delta discipline; otherwise the
// cache is invalidated and the next CoreUtil or ReportInto re-analyzes
// lazily.
//
//mc:allocfree delta adds and scalar copies
func (b *edfvdBackend) Place(c, ti int, probed bool) {
	b.ensure(c)
	b.states[c].Add(b.crit[ti], b.urow(ti))
	b.members[c] = append(b.members[c], ti)
	if probed {
		b.aEval[c] = b.keepEval
		b.aOK[c] = true
	} else {
		b.aOK[c] = false
	}
}

// pickFFD is the concrete-type fast path of the allocator's FFD scan:
// the candidate's criticality and utilization row are resolved once
// and every per-core query is a direct call, so the ensure guard and
// the Eq. 4 accept inline into the loop. The verdict sequence is
// exactly that of m interface FeasibleWith calls.
//
//mc:allocfree the devirtualized FFD scan
func (b *edfvdBackend) pickFFD(ti int) int {
	crit := b.crit[ti]
	u := b.urow(ti)
	for c := 0; c < b.m; c++ {
		b.ensure(c)
		s := &b.states[c]
		if s.SimpleFeasibleWith(crit, u) || s.FeasibleWith(crit, u) {
			return c
		}
	}
	return -1
}

// pickBFD is the concrete-type fast path of the allocator's BFD scan:
// ownLoad holds the allocator's cached Eq. 4 loads, and the
// load-hysteresis gate runs before the analysis exactly as in the
// interface-typed loop.
//
//mc:allocfree the devirtualized BFD scan
func (b *edfvdBackend) pickBFD(ownLoad []float64, ti int) int {
	crit := b.crit[ti]
	u := b.urow(ti)
	best := -1
	var bestLoad float64
	for c := 0; c < b.m; c++ {
		if load := ownLoad[c]; best < 0 || load > bestLoad+mc.Eps {
			b.ensure(c)
			s := &b.states[c]
			if s.SimpleFeasibleWith(crit, u) || s.FeasibleWith(crit, u) {
				best, bestLoad = c, load
			}
		}
	}
	return best
}

// pickWFD is pickBFD with the minimum-load preference.
//
//mc:allocfree the devirtualized WFD scan
func (b *edfvdBackend) pickWFD(ownLoad []float64, ti int) int {
	crit := b.crit[ti]
	u := b.urow(ti)
	best := -1
	var bestLoad float64
	for c := 0; c < b.m; c++ {
		if load := ownLoad[c]; best < 0 || load < bestLoad-mc.Eps {
			b.ensure(c)
			s := &b.states[c]
			if s.SimpleFeasibleWith(crit, u) || s.FeasibleWith(crit, u) {
				best, bestLoad = c, load
			}
		}
	}
	return best
}

// pickMinIncrement is the concrete-type fast path of Algorithm 1's
// probe loop: utils holds the allocator's cached per-core Eq. 9
// readings, worst selects the Eq. 9 literal reading. Each core runs
// the fused floor-prune-plus-probe of State.ProbeBoundedWith, whose
// comparisons are bitwise those of the interface-typed UtilFloor and
// ProbeUtil pair, and the winning probe's analysis lands in keepEval
// (the KeepProbe effect) for the ensuing Place. Returns -1 when no
// core is feasible.
//
//mc:allocfree the devirtualized probe loop of Algorithm 1
func (b *edfvdBackend) pickMinIncrement(utils []float64, ti int, worst bool) int {
	crit := b.crit[ti]
	u := b.urow(ti)
	best := -1
	bestInc := math.Inf(1)
	margin := math.Inf(1) // bestInc - mc.Eps, tracked with bestInc
	for c := 0; c < b.m; c++ {
		b.ensure(c)
		s := &b.states[c]
		if !s.ProbeBoundedWith(crit, u, utils[c], margin, &b.probeEval) {
			continue // certified floor prune: cannot beat the incumbent
		}
		pu := b.probeEval.CoreUtil
		if worst {
			pu = b.probeEval.CoreUtilWorst
		}
		if math.IsInf(pu, 1) {
			continue // infeasible on this core
		}
		if inc := pu - utils[c]; inc < bestInc-mc.Eps {
			best, bestInc = c, inc
			margin = bestInc - mc.Eps
			b.keepEval = b.probeEval
		}
	}
	return best
}

// placeLoad is Place followed by the Eq. 4 own-load read on direct
// calls — the devirtualized commit step of the allocator's place.
//
//mc:allocfree delta adds and a scalar read
func (b *edfvdBackend) placeLoad(c, ti int, probed bool) float64 {
	b.Place(c, ti, probed)
	return b.states[c].OwnLoad()
}

// Remove implements Backend: O(1) — the task leaves the member list
// and the core is marked for the exact-recompute fallback, which the
// next query triggers through ensure. The replay performs the same Add
// sequence that built the pre-Place state (placement order is
// preserved), so the restored analysis is bitwise what it was before
// the task ever arrived.
//
//mc:allocfree list excision and a dirty mark; panic path exempt
func (b *edfvdBackend) Remove(c, ti int) {
	mem := b.members[c]
	for i := len(mem) - 1; i >= 0; i-- {
		if mem[i] == ti {
			copy(mem[i:], mem[i+1:])
			b.members[c] = mem[:len(mem)-1]
			if !b.dirty[c] {
				b.dirty[c] = true
				b.ndirty++
			}
			b.aOK[c] = false
			return
		}
	}
	panic(fmt.Sprintf("partition: Remove(%d, %d): task not committed on core", c, ti))
}

// Reanalyze implements Backend: it discards core c's incremental state
// and rebuilds it from the committed members, unconditionally.
//
//mc:allocfree forces the replay fallback
func (b *edfvdBackend) Reanalyze(c int) {
	if !b.dirty[c] {
		b.dirty[c] = true
		b.ndirty++
	}
	b.aOK[c] = false
	b.ensure(c)
}

// OwnLoad implements Backend: the Eq. 4 own-level load of core c, a
// cached scalar.
//
//mc:allocfree cached scalar read
func (b *edfvdBackend) OwnLoad(c int) float64 {
	b.ensure(c)
	return b.states[c].OwnLoad()
}

// CoreUtil implements Backend: the committed Eq. 9 core utilization,
// in the requested reading, analyzing the core's cached sums in O(K)
// if no committed analysis is current.
//
//mc:allocfree reads or refills the scalar cache
func (b *edfvdBackend) CoreUtil(c int, worst bool) float64 {
	b.ensure(c)
	if !b.aOK[c] {
		b.states[c].Eval(&b.aEval[c])
		b.aOK[c] = true
	}
	if worst {
		return b.aEval[c].CoreUtilWorst
	}
	return b.aEval[c].CoreUtil
}

// ReportInto implements Backend: the full committed analysis — lambda
// vector included — derived from the cached sums in O(K).
//
//mc:allocfree fills the caller-owned CoreInfo via reusable scratch
func (b *edfvdBackend) ReportInto(c int, ci *CoreInfo) {
	b.ensure(c)
	b.states[c].ReportInto(&b.rep)
	ci.Util = b.rep.CoreUtil
	ci.FeasibleK = b.rep.FeasibleK
	ci.Lambda = append(ci.Lambda[:0], b.rep.Lambda...)
}
