package partition

import (
	"math"

	"catpa/internal/edfvd"
	"catpa/internal/mc"
)

func init() {
	RegisterBackend(DefaultBackend, func() Backend { return &edfvdBackend{} })
}

// edfvdBackend is the paper's per-core analysis: the EDF-VD Theorem-1
// test with virtual-deadline reduction factors (internal/edfvd). It
// carries every piece of analysis state the allocator used to own —
// per-core utilization matrices, cached reports, probe scratch and the
// precomputed per-task utilization rows — and preserves the
// allocation-free probing protocol: virtual screens read raw matrix
// data, probe additions are undone bitwise via SaveRow/RestoreRow, and
// the winning probe's analysis is swapped (never copied) into the
// per-core cache.
type edfvdBackend struct {
	m, k int
	ts   *mc.TaskSet

	mats  []*mc.UtilMatrix // per-core incremental U_j(k)
	reps  []edfvd.Report   // cached per-core analysis of the placed subset
	repOK []bool           // reps[c] matches the core's current subset

	urows []float64 // N x K precomputed utilization rows (Task.UtilRow)

	// Probe state. scratch receives each probe's analysis; when a probe
	// becomes the current best candidate, scratch and probeRep are
	// swapped so probeRep always holds the winning analysis, which
	// Place commits without re-running edfvd.AnalyzeInto. rowSave
	// backs the SaveRow/RestoreRow exact undo of probe additions.
	scratch  edfvd.Report
	probeRep edfvd.Report
	rowSave  []float64

	// emptyRep is the analysis of an empty K-level subset, shared by
	// every core that ends a run without tasks.
	emptyRep edfvd.Report
}

// Name implements Backend.
//
//mc:allocfree constant
func (b *edfvdBackend) Name() string { return DefaultBackend }

// MaxLevels implements Backend: the Theorem-1 analysis handles any K.
//
//mc:allocfree constant
func (b *edfvdBackend) MaxLevels() int { return 0 }

// Reset implements Backend.
func (b *edfvdBackend) Reset(m, k int) {
	if m == b.m && k == b.k && b.mats != nil {
		return
	}
	rebuild := k != b.k
	b.m, b.k = m, k
	if cap(b.mats) < m {
		mats := make([]*mc.UtilMatrix, m)
		copy(mats, b.mats)
		b.mats = mats
	} else {
		b.mats = b.mats[:m]
	}
	for c := range b.mats {
		if b.mats[c] == nil || rebuild {
			b.mats[c] = mc.NewUtilMatrix(k)
		}
	}
	if cap(b.reps) < m {
		reps := make([]edfvd.Report, m)
		copy(reps, b.reps)
		b.reps = reps
	} else {
		b.reps = b.reps[:m]
	}
	b.repOK = resizeBools(b.repOK, m)
	b.rowSave = resizeFloats(b.rowSave, k)
	b.mats[0].Reset()
	edfvd.AnalyzeInto(b.mats[0], &b.emptyRep)
}

// Prepare implements Backend: it precomputes every task's per-level
// utilization row once, so the probe loops add K cached floats instead
// of re-deriving c(k)/p.
//
//mc:allocfree utilization rows fill amortized storage
func (b *edfvdBackend) Prepare(ts *mc.TaskSet) {
	b.ts = ts
	n := ts.Len()
	b.urows = resizeFloats(b.urows, n*b.k)
	for i := 0; i < n; i++ {
		ts.Tasks[i].UtilRow(b.k, b.urows[i*b.k:(i+1)*b.k])
	}
}

// Begin implements Backend.
//
//mc:allocfree resets matrices in place
func (b *edfvdBackend) Begin() {
	for c := 0; c < b.m; c++ {
		b.mats[c].Reset()
		b.repOK[c] = false
	}
}

// urow returns task ti's precomputed utilization row.
//
//mc:allocfree reslices the precomputed rows
func (b *edfvdBackend) urow(ti int) []float64 {
	return b.urows[ti*b.k : (ti+1)*b.k]
}

// FeasibleWith implements Backend with the Theorem-1 ladder of
// Section IV: the cheap Eq. 4 accept, the O(1) overload reject, and
// the early-exiting full Theorem-1 verdict, all virtual — they read
// the matrix without mutating it, so classical placement never probes
// and never fills a report.
//
//mc:allocfree all screens are virtual matrix reads
func (b *edfvdBackend) FeasibleWith(c, ti int) bool {
	crit := b.ts.Tasks[ti].Crit
	d := b.mats[c].Data()
	u := b.urow(ti)
	if edfvd.SimpleFeasibleProbed(d, b.k, crit, u) {
		return true
	}
	if b.k >= 2 && edfvd.FastInfeasibleProbed(d, b.k, crit, u) {
		return false
	}
	return edfvd.FeasibleProbed(d, b.k, crit, u)
}

// probeAdd tentatively adds task ti to core c, first snapshotting the
// affected matrix row so probeUndo can restore it bitwise (an
// arithmetic Remove could leave one-ulp residue in the sums).
//
//mc:allocfree row save/add on amortized scratch
func (b *edfvdBackend) probeAdd(c, ti int) {
	crit := b.ts.Tasks[ti].Crit
	b.mats[c].SaveRow(crit, b.rowSave)
	b.mats[c].AddRow(crit, b.urow(ti))
}

// probeUndo exactly reverts the matching probeAdd.
//
//mc:allocfree bitwise row restore
func (b *edfvdBackend) probeUndo(c, ti int) {
	b.mats[c].RestoreRow(b.ts.Tasks[ti].Crit, b.rowSave)
}

// ProbeUtil implements Backend: the core utilization U^{Psi_c + tau_i}
// of Eq. 15, +Inf when the extended subset is infeasible. The analysis
// is left in scratch for KeepProbe.
//
//mc:allocfree analysis lands in reusable scratch
func (b *edfvdBackend) ProbeUtil(c, ti int, worst bool) float64 {
	if edfvd.FastInfeasibleProbed(b.mats[c].Data(), b.k, b.ts.Tasks[ti].Crit, b.urow(ti)) {
		// No condition can hold: CoreUtil would be +Inf under either
		// Eq. 9 reading, so skip the probe and the full analysis.
		return math.Inf(1)
	}
	b.probeAdd(c, ti)
	edfvd.AnalyzeInto(b.mats[c], &b.scratch)
	u := b.scratch.CoreUtil
	if worst {
		u = b.scratch.CoreUtilWorst
	}
	b.probeUndo(c, ti)
	return u
}

// KeepProbe implements Backend.
//
//mc:allocfree swaps, never copies
func (b *edfvdBackend) KeepProbe() {
	b.scratch, b.probeRep = b.probeRep, b.scratch
}

// UtilFloor implements Backend via the certified Eq. 9 lower bound of
// edfvd.UtilFloorProbed; conservative, so no potential winner of the
// minimum-increment search is ever pruned away.
//
//mc:allocfree O(1) matrix reads
func (b *edfvdBackend) UtilFloor(c, ti int) float64 {
	return edfvd.UtilFloorProbed(b.mats[c].Data(), b.k, b.ts.Tasks[ti].Crit, b.urow(ti))
}

// Place implements Backend. With probed set, the winning probe's
// analysis (held in probeRep since KeepProbe) is committed by swap;
// otherwise the core's cached report is invalidated and the next
// CoreUtil or ReportInto re-analyzes lazily.
//
//mc:allocfree commits by row-add and swap
func (b *edfvdBackend) Place(c, ti int, probed bool) {
	b.mats[c].AddRow(b.ts.Tasks[ti].Crit, b.urow(ti))
	if probed {
		b.reps[c], b.probeRep = b.probeRep, b.reps[c]
		b.repOK[c] = true
	} else {
		b.repOK[c] = false
	}
}

// OwnLoad implements Backend: the Eq. 4 own-level load of core c.
//
//mc:allocfree matrix diagonal sum
func (b *edfvdBackend) OwnLoad(c int) float64 {
	return b.mats[c].OwnLevelLoad()
}

// report returns the Theorem-1 analysis of core c's current subset,
// reusing the analysis cached during placement when it is current
// (always, for CA-TPA) and the shared empty-subset analysis for cores
// without tasks. Only classical-scheme cores with tasks are analyzed
// here — the one place the finishing pass still runs edfvd.AnalyzeInto.
//
//mc:allocfree re-analysis reuses the cached report's slices
func (b *edfvdBackend) report(c int) *edfvd.Report {
	if b.repOK[c] {
		return &b.reps[c]
	}
	if b.mats[c].Len() == 0 {
		return &b.emptyRep
	}
	edfvd.AnalyzeInto(b.mats[c], &b.reps[c])
	b.repOK[c] = true
	return &b.reps[c]
}

// CoreUtil implements Backend: the committed Eq. 9 core utilization,
// in the requested reading.
//
//mc:allocfree reads the cached report
func (b *edfvdBackend) CoreUtil(c int, worst bool) float64 {
	rep := b.report(c)
	if worst {
		return rep.CoreUtilWorst
	}
	return rep.CoreUtil
}

// ReportInto implements Backend.
//
//mc:allocfree fills the caller-owned CoreInfo in place
func (b *edfvdBackend) ReportInto(c int, ci *CoreInfo) {
	rep := b.report(c)
	ci.Util = rep.CoreUtil
	ci.FeasibleK = rep.FeasibleK
	ci.Lambda = append(ci.Lambda[:0], rep.Lambda...)
}
