package partition_test

import (
	"strings"
	"testing"

	"catpa/internal/fpamc"
	"catpa/internal/partition"
)

func TestValidBackendName(t *testing.T) {
	cases := []struct {
		name string
		ok   bool
	}{
		{"edfvd", true},
		{"amcrtb", true},
		{"a", true},
		{"a1b2", true},
		{"", false},
		{"Edfvd", false},
		{"amc-rtb", false},
		{"amc_rtb", false},
		{"1abc", false},
		{"amc rtb", false},
	}
	for _, c := range cases {
		if got := partition.ValidBackendName(c.name); got != c.ok {
			t.Errorf("ValidBackendName(%q) = %v, want %v", c.name, got, c.ok)
		}
	}
}

func TestBackendRegistry(t *testing.T) {
	names := partition.BackendNames()
	has := func(want string) bool {
		for _, n := range names {
			if n == want {
				return true
			}
		}
		return false
	}
	// The fpamc import links both registrations into this test binary.
	if !has(partition.DefaultBackend) || !has(fpamc.BackendName) {
		t.Fatalf("BackendNames() = %v, want both %q and %q", names, partition.DefaultBackend, fpamc.BackendName)
	}

	be, err := partition.NewBackend(partition.DefaultBackend)
	if err != nil {
		t.Fatal(err)
	}
	if be.Name() != partition.DefaultBackend || be.MaxLevels() != 0 {
		t.Errorf("edfvd backend: name %q maxLevels %d", be.Name(), be.MaxLevels())
	}
	fp, err := partition.NewBackend(fpamc.BackendName)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Name() != fpamc.BackendName || fp.MaxLevels() != 2 {
		t.Errorf("amcrtb backend: name %q maxLevels %d", fp.Name(), fp.MaxLevels())
	}
	// Factories return fresh instances, not shared state.
	if fp2, _ := partition.NewBackend(fpamc.BackendName); fp2 == fp {
		t.Error("NewBackend returned the same instance twice")
	}

	if _, err := partition.NewBackend("nosuchbackend"); err == nil {
		t.Fatal("NewBackend(nosuchbackend): no error")
	} else if !strings.Contains(err.Error(), "registered:") {
		t.Errorf("unknown-backend error should list the registry: %v", err)
	}
}

func TestRegisterBackendPanics(t *testing.T) {
	wantPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	factory := func() partition.Backend { be, _ := partition.NewBackend(partition.DefaultBackend); return be }
	wantPanic("invalid name", func() { partition.RegisterBackend("Bad Name", factory) })
	wantPanic("nil factory", func() { partition.RegisterBackend("okname", nil) })
	wantPanic("duplicate", func() { partition.RegisterBackend(partition.DefaultBackend, factory) })
}

func TestNewWithBackend(t *testing.T) {
	be, err := partition.NewBackend(fpamc.BackendName)
	if err != nil {
		t.Fatal(err)
	}
	p := partition.NewWithBackend(2, 2, be)
	if p.Backend() != be {
		t.Error("Backend() accessor does not return the injected backend")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewWithBackend(nil): no panic")
		}
	}()
	partition.NewWithBackend(2, 2, nil)
}
