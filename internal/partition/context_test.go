package partition

import (
	"context"
	"errors"
	"testing"

	"catpa/internal/mc"
	"catpa/internal/taskgen"
)

func ctxTestSet(t *testing.T) *mc.TaskSet {
	t.Helper()
	cfg := taskgen.DefaultConfig()
	cfg.M, cfg.K, cfg.NSU = 4, 2, 0.6
	cfg.N = taskgen.IntRange{Lo: 24, Hi: 24}
	return taskgen.GenerateIndexed(&cfg, 11, 0)
}

func TestContextVariantsMatchPlainCalls(t *testing.T) {
	ts := ctxTestSet(t)
	ctx := context.Background()

	p, q := New(4, 2), New(4, 2)
	for _, s := range Schemes {
		got, err := p.EvaluateContext(ctx, ts, s, nil)
		if err != nil {
			t.Fatalf("%v: EvaluateContext: %v", s, err)
		}
		if want := q.Evaluate(ts, s, nil); got != want {
			t.Errorf("%v: EvaluateContext = %+v, want %+v", s, got, want)
		}

		res, err := p.RunContext(ctx, ts, s, nil)
		if err != nil {
			t.Fatalf("%v: RunContext: %v", s, err)
		}
		if want := q.Run(ts, s, nil); res.Feasible != want.Feasible || res.FailedTask != want.FailedTask {
			t.Errorf("%v: RunContext verdict (%v,%d), want (%v,%d)", s, res.Feasible, res.FailedTask, want.Feasible, want.FailedTask)
		}
	}

	all, err := p.EvaluateAllContext(ctx, ts, Schemes, nil, nil)
	if err != nil {
		t.Fatalf("EvaluateAllContext: %v", err)
	}
	want := q.EvaluateAll(ts, Schemes, nil, nil)
	if len(all) != len(want) {
		t.Fatalf("EvaluateAllContext returned %d evals, want %d", len(all), len(want))
	}
	for i := range all {
		if all[i] != want[i] {
			t.Errorf("scheme %v: %+v != %+v", Schemes[i], all[i], want[i])
		}
	}
}

func TestContextCancelledBeforeRun(t *testing.T) {
	ts := ctxTestSet(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	p := New(4, 2)
	if _, err := p.RunContext(ctx, ts, CATPA, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("RunContext after cancel: err = %v, want context.Canceled", err)
	}
	if _, err := p.EvaluateContext(ctx, ts, CATPA, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("EvaluateContext after cancel: err = %v, want context.Canceled", err)
	}
	if evals, err := p.EvaluateAllContext(ctx, ts, Schemes, nil, nil); !errors.Is(err, context.Canceled) || len(evals) != 0 {
		t.Errorf("EvaluateAllContext after cancel: %d evals, err = %v", len(evals), err)
	}
}

// cancelAfterCtx cancels itself after Err has been consulted n times:
// a deterministic stand-in for a deadline firing mid-batch.
type cancelAfterCtx struct {
	context.Context
	calls, n int
}

func (c *cancelAfterCtx) Err() error {
	c.calls++
	if c.calls > c.n {
		return context.DeadlineExceeded
	}
	return nil
}

func TestEvaluateAllContextPartialOnExpiry(t *testing.T) {
	ts := ctxTestSet(t)
	p, q := New(4, 2), New(4, 2)
	want := q.EvaluateAll(ts, Schemes, nil, nil)

	// The batch checks ctx once up front and once per scheme: allowing
	// 1+k checks yields exactly k completed schemes.
	for k := 0; k < len(Schemes); k++ {
		ctx := &cancelAfterCtx{Context: context.Background(), n: 1 + k}
		evals, err := p.EvaluateAllContext(ctx, ts, Schemes, nil, nil)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("k=%d: err = %v, want deadline exceeded", k, err)
		}
		if len(evals) != k {
			t.Fatalf("k=%d: %d partial evals, want %d", k, len(evals), k)
		}
		for i := range evals {
			if evals[i] != want[i] {
				t.Errorf("k=%d scheme %v: partial eval %+v != full-batch %+v", k, Schemes[i], evals[i], want[i])
			}
		}
	}
}
