package partition_test

import (
	"testing"

	"catpa/internal/partition"
	"catpa/internal/taskgen"

	_ "catpa/internal/fpamc" // registers the amcrtb backend
)

// TestHotPathAllocFree is the runtime twin of the //mc:allocfree
// annotations on the partitioning hot path: after one warm-up run,
// Partitioner.Run and Evaluate must perform zero heap allocations per
// call, under both analysis backends and every scheme. mclint's
// allocfree pass proves the property statically; this test pins it
// against compiler escape-analysis regressions the static model cannot
// see (closures that start escaping, interface conversions introduced
// by inlining changes).
func TestHotPathAllocFree(t *testing.T) {
	for _, name := range []string{partition.DefaultBackend, "amcrtb"} {
		t.Run(name, func(t *testing.T) {
			// K=2 keeps the set valid for the dual-criticality AMC-rtb
			// backend; the EDF-VD path is K-generic so nothing is lost.
			cfg := popConfig(4, 2)
			ts := taskgen.GenerateIndexed(&cfg, 17, 0)
			be, err := partition.NewBackend(name)
			if err != nil {
				t.Fatal(err)
			}
			p := partition.NewWithBackend(4, 2, be)
			for _, scheme := range partition.Schemes {
				p.Run(ts, scheme, nil) // warm up the amortized storage
				allocs := testing.AllocsPerRun(50, func() {
					p.Run(ts, scheme, nil)
				})
				if allocs != 0 {
					t.Errorf("%s/%v: Run allocates %.1f times per call, want 0", name, scheme, allocs)
				}
				allocs = testing.AllocsPerRun(50, func() {
					p.Evaluate(ts, scheme, nil)
				})
				if allocs != 0 {
					t.Errorf("%s/%v: Evaluate allocates %.1f times per call, want 0", name, scheme, allocs)
				}
			}
		})
	}
}

// TestSessionAllocFree extends the alloc-free proof to the incremental
// delta methods: a full online cycle — StartIncremental, admitting the
// whole set, releasing half, re-admitting, summarizing — must perform
// zero heap allocations per cycle at steady state, under both backends
// and every scheme. This is the runtime twin of the //mc:allocfree
// annotations on Admit, Release and the backends' Place/Remove/rebuild
// delta paths.
func TestSessionAllocFree(t *testing.T) {
	for _, name := range []string{partition.DefaultBackend, "amcrtb"} {
		t.Run(name, func(t *testing.T) {
			cfg := popConfig(4, 2)
			ts := taskgen.GenerateIndexed(&cfg, 17, 0)
			be, err := partition.NewBackend(name)
			if err != nil {
				t.Fatal(err)
			}
			p := partition.NewWithBackend(4, 2, be)
			for _, scheme := range partition.Schemes {
				cycle := func() {
					p.StartIncremental(ts, scheme, nil)
					for ti := 0; ti < ts.Len(); ti++ {
						p.Admit(ti)
					}
					for ti := 0; ti < ts.Len(); ti += 2 {
						if p.Assigned(ti) >= 0 {
							p.Release(ti)
						}
					}
					for ti := 0; ti < ts.Len(); ti += 2 {
						if p.Assigned(ti) < 0 {
							p.Admit(ti)
						}
					}
					p.Summarize()
				}
				cycle() // warm up the amortized storage
				if allocs := testing.AllocsPerRun(50, cycle); allocs != 0 {
					t.Errorf("%s/%v: session cycle allocates %.1f times per run, want 0", name, scheme, allocs)
				}
			}
		})
	}
}
