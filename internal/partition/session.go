package partition

import (
	"fmt"

	"catpa/internal/mc"
)

// The online admission session: the API the ROADMAP's online scenario
// needs, built directly on the Backend delta contract. A session
// replaces the batch sweep's "re-partition everything per arrival"
// with O(1)-per-level delta commits on admission and the
// exact-recompute fallback on release, so admitting or releasing one
// task costs one pick scan plus one delta — independent of how many
// tasks are already placed.
//
// Protocol: StartIncremental installs the task universe and the pick
// rule, then any interleaving of Admit and Release follows. Admit uses
// exactly the per-task core selection the batch scheme would apply at
// that point — so a session that admits tasks in a batch run's
// allocation order commits bitwise the batch run's placements — and a
// failed Admit leaves the session unchanged, which is the load-shedding
// behavior an admission controller wants. Summarize reads the committed
// state at any point; its Feasible is true by construction (only
// schedulable placements are ever committed).

// StartIncremental begins an online admission session over ts with the
// given scheme's pick rule and options. It performs the same per-set
// preparation as a batch run (utilization rows, cleared cores) and
// leaves every task unassigned; the caller then drives Admit/Release
// by task index. Any batch entry point (Run, Evaluate, EvaluateAll)
// may be called afterwards — it re-prepares and clears the session —
// and vice versa, so pooled Partitioners can interleave both modes.
//
//mc:allocfree per-set preparation into amortized storage
func (p *Partitioner) StartIncremental(ts *mc.TaskSet, scheme Scheme, opts *Options) {
	p.a.prepSet(ts)
	p.a.clearRun(scheme, opts)
}

// Admit places task ti (an index into the session's task set) with the
// session scheme's pick rule — one per-task step of Algorithm 1, core
// selection plus the per-core schedulability screens — and commits the
// placement as an O(1) delta, returning the chosen core and true. When
// no core can accommodate the task it returns (-1, false) and the
// committed state is untouched — the task may be retried later, e.g.
// after a Release. Admitting a task that is already admitted panics.
//
//mc:allocfree one pick scan plus one delta commit; panic paths exempt
func (p *Partitioner) Admit(ti int) (int, bool) {
	a := &p.a
	if a.ts == nil {
		panic("partition: Admit before StartIncremental")
	}
	if ti < 0 || ti >= len(a.assign) {
		panic(fmt.Sprintf("partition: Admit(%d): task index out of range", ti))
	}
	if a.assign[ti] >= 0 {
		panic(fmt.Sprintf("partition: Admit(%d): task already admitted on core %d", ti, a.assign[ti]))
	}
	c := a.pick(ti)
	if c < 0 {
		a.probeOK = false
		if a.opts.trace() {
			a.trace = append(a.trace, Step{Task: ti, Core: -1})
		}
		return -1, false
	}
	a.place(ti, c)
	return c, true
}

// Release removes admitted task ti from its core and returns that
// core: the removal delta of the online protocol. The backend restores
// the core's analysis to bitwise the state a session that never
// admitted ti would hold (the exact-recompute fallback), and the
// core's cached loads are refreshed from it. Releasing a task that is
// not admitted panics. Release appends no trace step.
//
//mc:allocfree one delta removal plus cached-scalar refreshes; panic path exempt
func (p *Partitioner) Release(ti int) int {
	a := &p.a
	if a.ts == nil {
		panic("partition: Release before StartIncremental")
	}
	if ti < 0 || ti >= len(a.assign) || a.assign[ti] < 0 {
		panic(fmt.Sprintf("partition: Release(%d): task not admitted", ti))
	}
	c := a.assign[ti]
	a.be.Remove(c, ti)
	mem := a.tasks[c]
	for i := len(mem) - 1; i >= 0; i-- {
		if mem[i] == ti {
			copy(mem[i:], mem[i+1:])
			a.tasks[c] = mem[:len(mem)-1]
			break
		}
	}
	a.assign[ti] = -1
	a.ownLoad[c] = a.be.OwnLoad(c)
	if a.scheme == CATPA || a.opts.trace() {
		// Mirror place's cache discipline: schemes that keep utils
		// current see the post-removal committed analysis.
		prev := a.utils[c]
		a.utils[c] = a.be.CoreUtil(c, a.opts.eq9Literal())
		a.bumpUtil(prev, a.utils[c])
	}
	return c
}

// Assigned returns the core task ti is currently admitted on, or -1.
// It reads the same assignment a batch Result would report.
//
//mc:allocfree slice read; panic path exempt
func (p *Partitioner) Assigned(ti int) int {
	a := &p.a
	if ti < 0 || ti >= len(a.assign) {
		panic(fmt.Sprintf("partition: Assigned(%d): task index out of range", ti))
	}
	return a.assign[ti]
}

// pick resolves the session scheme's per-task core selection — the
// same rule the batch loops apply, factored to one task so Admit and
// the batch passes cannot drift apart.
//
//mc:allocfree dispatches to the per-scheme pick scans
func (a *allocator) pick(ti int) int {
	switch a.scheme {
	case FFD, BFD, WFD:
		return a.pickClassic(a.scheme, ti)
	case Hybrid:
		// High-criticality tasks spread with WFD, low-criticality ones
		// pack with FFD, per the batch passes of runHybrid.
		if a.ts.Tasks[ti].Crit >= 2 {
			return a.pickClassic(WFD, ti)
		}
		return a.pickClassic(FFD, ti)
	case CATPA:
		switch {
		case a.imbalance() > a.opts.alpha():
			return a.pickLeastLoaded(ti)
		case a.opts.noProbe():
			return a.pickFirstFeasible(ti)
		default:
			return a.pickMinIncrement(ti)
		}
	}
	panic(fmt.Sprintf("partition: unknown scheme %v", a.scheme))
}
