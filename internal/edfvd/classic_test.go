package edfvd

import (
	"math/rand"
	"testing"

	"catpa/internal/mc"
)

func TestClassicDualPlainEDFCase(t *testing.T) {
	m := matrixOf(2,
		mkTask(1, 10, 1, 4),    // U_1(1)=0.4
		mkTask(2, 10, 2, 1, 5), // U_2(2)=0.5
	)
	if !ClassicDualFeasible(m) {
		t.Error("plain-EDF case rejected")
	}
}

// TestClassicAcceptsBeyondEq7 uses the worked counter-instance from
// the design discussion: U_1(1)=0.375, U_2(1)=0.375, U_2(2)=0.75.
// Eq. 7 gives 0.375 + min{0.75, 1.5} = 1.125 > 1 (reject), while the
// classic interval [0.6, 0.667] is non-empty (accept).
func TestClassicAcceptsBeyondEq7(t *testing.T) {
	m := matrixOf(2,
		mkTask(1, 1000, 1, 375),
		mkTask(2, 1000, 2, 375, 750),
	)
	if DualFeasible(m) {
		t.Fatal("Eq. 7 unexpectedly accepts the instance")
	}
	if !ClassicDualFeasible(m) {
		t.Fatal("classic test rejects a schedulable instance")
	}
}

func TestClassicRejectsOverload(t *testing.T) {
	m := matrixOf(2,
		mkTask(1, 10, 1, 6),
		mkTask(2, 10, 2, 3, 9),
	)
	if ClassicDualFeasible(m) {
		t.Error("overloaded subset accepted")
	}
}

func TestClassicPanicsOnWrongK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for K=3")
		}
	}()
	ClassicDualFeasible(mc.NewUtilMatrix(3))
}

// TestEq7ImpliesClassic: property — every Eq. 7-feasible subset passes
// the classic test (proof sketch: the fraction branch of Eq. 7 gives
// U_2(1) <= (1-U_1(1))(1-U_2(2)), which makes the x interval
// non-empty).
func TestEq7ImpliesClassic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	violations := 0
	for trial := 0; trial < 3000; trial++ {
		m := randomMatrix(rng, 2, 0.3+rng.Float64()*1.2)
		if DualFeasible(m) && !ClassicDualFeasible(m) {
			violations++
			t.Errorf("trial %d: Eq.7 accepts but classic rejects: %v", trial, m)
			if violations > 3 {
				t.FailNow()
			}
		}
	}
}

// TestClassicStrictlyStronger: across a random population the classic
// test must accept strictly more subsets than Eq. 7 somewhere near
// the boundary.
func TestClassicStrictlyStronger(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	extra := 0
	for trial := 0; trial < 3000; trial++ {
		m := randomMatrix(rng, 2, 0.8+rng.Float64()*0.5)
		if !DualFeasible(m) && ClassicDualFeasible(m) {
			extra++
		}
	}
	if extra == 0 {
		t.Error("classic test never accepted beyond Eq. 7 — implementation suspect")
	}
	t.Logf("classic-only acceptances: %d / 3000", extra)
}

func TestClassicEdgeU11Zero(t *testing.T) {
	// Only HI tasks: feasible iff U_2(2) <= 1 (x interval endpoint is
	// infinite).
	m := matrixOf(2, mkTask(1, 10, 2, 2, 9))
	if !ClassicDualFeasible(m) {
		t.Error("single HI task with U_2(2)=0.9 rejected")
	}
	m2 := matrixOf(2, mkTask(1, 10, 2, 2, 9), mkTask(2, 10, 2, 2, 9))
	if ClassicDualFeasible(m2) {
		t.Error("U_2(2)=1.8 accepted")
	}
}
