package edfvd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"catpa/internal/mc"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func mkTask(id int, period float64, crit int, wcet ...float64) mc.Task {
	return mc.Task{ID: id, Period: period, Crit: crit, WCET: wcet}
}

func matrixOf(k int, tasks ...mc.Task) *mc.UtilMatrix {
	m := mc.NewUtilMatrix(k)
	for i := range tasks {
		m.Add(&tasks[i])
	}
	return m
}

// randomMatrix builds a random K-level matrix whose own-level load is
// roughly targetLoad.
func randomMatrix(rng *rand.Rand, k int, targetLoad float64) *mc.UtilMatrix {
	m := mc.NewUtilMatrix(k)
	load := 0.0
	id := 1
	for load < targetLoad {
		crit := 1 + rng.Intn(k)
		p := 10 + rng.Float64()*990
		u1 := 0.01 + rng.Float64()*0.15
		w := make([]float64, crit)
		c := u1 * p
		for i := range w {
			w[i] = c
			c *= 1 + 0.3 + rng.Float64()*0.4
		}
		t := mc.Task{ID: id, Period: p, Crit: crit, WCET: w}
		if t.MaxUtil() > 1 {
			continue
		}
		m.Add(&t)
		load += t.MaxUtil()
		id++
	}
	return m
}

func TestEmptySubset(t *testing.T) {
	for k := 1; k <= 6; k++ {
		m := mc.NewUtilMatrix(k)
		r := Analyze(m)
		if !r.Feasible() {
			t.Errorf("K=%d: empty subset infeasible", k)
		}
		if !almost(r.CoreUtil, 0) {
			t.Errorf("K=%d: empty CoreUtil = %v, want 0", k, r.CoreUtil)
		}
		if !SimpleFeasible(m) {
			t.Errorf("K=%d: empty subset fails Eq.4", k)
		}
	}
}

func TestSingleLevelReducesToEDF(t *testing.T) {
	a := mkTask(1, 10, 1, 6)
	b := mkTask(2, 10, 1, 3)
	m := matrixOf(1, a, b) // U = 0.9
	r := Analyze(m)
	if !r.Feasible() || !almost(r.CoreUtil, 0.9) {
		t.Errorf("K=1 feasible=%v util=%v", r.Feasible(), r.CoreUtil)
	}
	c := mkTask(3, 10, 1, 2)
	m.Add(&c) // U = 1.1
	r = Analyze(m)
	if r.Feasible() {
		t.Error("K=1 with U=1.1 accepted")
	}
	if !math.IsInf(r.CoreUtil, 1) {
		t.Errorf("infeasible CoreUtil = %v, want +Inf", r.CoreUtil)
	}
}

func TestSimpleFeasibleEq4(t *testing.T) {
	// U_1(1) = 0.5, U_2(2) = 0.5 -> own-level load exactly 1.
	m := matrixOf(2,
		mkTask(1, 10, 1, 5),
		mkTask(2, 10, 2, 2, 5),
	)
	if !SimpleFeasible(m) {
		t.Error("load exactly 1 rejected by Eq.4")
	}
	tk := mkTask(3, 100, 1, 1)
	m.Add(&tk)
	if SimpleFeasible(m) {
		t.Error("load 1.01 accepted by Eq.4")
	}
}

// TestPaperTau4 reproduces the surviving fragment of the paper's
// worked example: after allocating tau4 (u(1)=0.339, u(2)=0.633) alone
// to core P1, the core utilization is
// 0 + min{0.633, 0.339/(1-0.633)} = 0.633.
func TestPaperTau4(t *testing.T) {
	tau4 := mkTask(4, 1000, 2, 339, 633)
	m := matrixOf(2, tau4)
	r := Analyze(m)
	if !r.Feasible() {
		t.Fatal("tau4 alone infeasible")
	}
	if !almost(r.CoreUtil, 0.633) {
		t.Errorf("CoreUtil = %v, want 0.633", r.CoreUtil)
	}
}

// TestPaperTau2 reproduces the second surviving fragment: tau2 with
// u(2)=0.326 alone on P2 yields core utilization
// min{0.326, u2(1)/(1-0.326)} = 0.26, which pins u2(1) = 0.26*0.674.
func TestPaperTau2(t *testing.T) {
	u21 := 0.26 * (1 - 0.326)
	tau2 := mkTask(2, 1000, 2, u21*1000, 326)
	m := matrixOf(2, tau2)
	r := Analyze(m)
	if !r.Feasible() {
		t.Fatal("tau2 alone infeasible")
	}
	if !almost(r.CoreUtil, 0.26) {
		t.Errorf("CoreUtil = %v, want 0.26", r.CoreUtil)
	}
}

func TestDualLambdaIsClassicFactor(t *testing.T) {
	// U_1(1) = 0.4, U_2(1) = 0.3, U_2(2) = 0.5.
	m := matrixOf(2,
		mkTask(1, 10, 1, 4),
		mkTask(2, 10, 2, 3, 5),
	)
	lambda, ok := Lambdas(m)
	if !ok[0] || lambda[0] != 0 {
		t.Errorf("lambda_1 = %v ok=%v", lambda[0], ok[0])
	}
	want := 0.3 / (1 - 0.4)
	if !ok[1] || !almost(lambda[1], want) {
		t.Errorf("lambda_2 = %v ok=%v, want %v", lambda[1], ok[1], want)
	}
	// VDFactor at mode 1 for a HI task is lambda_2; at mode 2 it is 1.
	if f := VDFactor(lambda, 1, 2); !almost(f, want) {
		t.Errorf("VDFactor(1,2) = %v, want %v", f, want)
	}
	if f := VDFactor(lambda, 2, 2); f != 1 {
		t.Errorf("VDFactor(2,2) = %v, want 1", f)
	}
	if f := VDFactor(lambda, 1, 1); f != 1 {
		t.Errorf("VDFactor(1,1) = %v, want 1 (task at or below mode)", f)
	}
}

func TestVDFactorCumulative(t *testing.T) {
	lambda := []float64{0, 0.5, 0.4}
	if f := VDFactor(lambda, 1, 3); !almost(f, 0.2) {
		t.Errorf("VDFactor(1,3) = %v, want 0.2", f)
	}
	if f := VDFactor(lambda, 2, 3); !almost(f, 0.4) {
		t.Errorf("VDFactor(2,3) = %v, want 0.4", f)
	}
}

func TestDualFeasibleBeyondEq4(t *testing.T) {
	// U_1(1)=0.5, U_2(1)=0.1, U_2(2)=0.7: Eq.4 load = 1.2 fails, but
	// Eq.7: 0.5 + min{0.7, 0.1/0.3=0.333} = 0.833 <= 1 passes.
	m := matrixOf(2,
		mkTask(1, 10, 1, 5),
		mkTask(2, 10, 2, 1, 7),
	)
	if SimpleFeasible(m) {
		t.Fatal("Eq.4 unexpectedly passes")
	}
	if !DualFeasible(m) {
		t.Fatal("Eq.7 rejected a feasible set")
	}
	r := Analyze(m)
	if !r.Feasible() {
		t.Fatal("Theorem 1 disagrees with Eq.7")
	}
	if !almost(r.CoreUtil, 0.5+0.1/0.3) {
		t.Errorf("CoreUtil = %v, want %v", r.CoreUtil, 0.5+0.1/0.3)
	}
}

func TestDualInfeasible(t *testing.T) {
	// U_1(1)=0.6, U_2(1)=0.3, U_2(2)=0.9:
	// 0.6 + min{0.9, 0.3/0.1=3} = 1.5 > 1.
	m := matrixOf(2,
		mkTask(1, 10, 1, 6),
		mkTask(2, 10, 2, 3, 9),
	)
	if DualFeasible(m) {
		t.Error("Eq.7 accepted an infeasible set")
	}
	if Feasible(m) {
		t.Error("Theorem 1 accepted an infeasible set")
	}
	if CoreUtil(m) != math.Inf(1) {
		t.Errorf("CoreUtil = %v, want +Inf", CoreUtil(m))
	}
}

func TestDualFeasiblePanicsOnWrongK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for K=3 matrix")
		}
	}()
	DualFeasible(mc.NewUtilMatrix(3))
}

// TestGeneralAgreesWithDual: on random dual-criticality subsets the
// Theorem-1 path and the Eq. 7 specialization must agree exactly.
func TestGeneralAgreesWithDual(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		m := randomMatrix(rng, 2, 0.3+rng.Float64()*1.2)
		if got, want := Feasible(m), DualFeasible(m); got != want {
			t.Fatalf("trial %d: Theorem1=%v Eq7=%v for %v", trial, got, want, m)
		}
	}
}

// TestEq4ImpliesTheorem1: the pessimistic condition is strictly
// stronger, so every Eq.4-feasible subset must pass Theorem 1 too
// (condition k=1 in particular).
func TestEq4ImpliesTheorem1(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		k := 2 + rng.Intn(5)
		m := randomMatrix(rng, k, 0.2+rng.Float64()*1.0)
		if SimpleFeasible(m) && !Feasible(m) {
			t.Fatalf("trial %d (K=%d): Eq.4 passes but Theorem 1 fails: %v", trial, k, m)
		}
	}
}

// TestRemovalPreservesFeasibility: removing any task from a feasible
// subset keeps it feasible (mu decreases, theta increases per task).
func TestRemovalPreservesFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		k := 2 + rng.Intn(5)
		var tasks []mc.Task
		m := mc.NewUtilMatrix(k)
		load := 0.0
		for id := 1; load < 0.9; id++ {
			crit := 1 + rng.Intn(k)
			p := 10 + rng.Float64()*200
			w := make([]float64, crit)
			c := (0.01 + rng.Float64()*0.1) * p
			for i := range w {
				w[i] = c
				c *= 1.4
			}
			tk := mc.Task{ID: id, Period: p, Crit: crit, WCET: w}
			if tk.MaxUtil() > 1 {
				continue
			}
			tasks = append(tasks, tk)
			m.Add(&tasks[len(tasks)-1])
			load += tk.MaxUtil()
		}
		if !Feasible(m) {
			continue
		}
		i := rng.Intn(len(tasks))
		m.Remove(&tasks[i])
		if !Feasible(m) {
			t.Fatalf("trial %d: removing task %d broke feasibility", trial, tasks[i].ID)
		}
		m.Add(&tasks[i])
	}
}

// TestAnalyzeMatchesNaive cross-checks the optimized AnalyzeInto
// against a direct, unoptimized transcription of Eqs. 5-9.
func TestAnalyzeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 1000; trial++ {
		k := 2 + rng.Intn(5)
		m := randomMatrix(rng, k, 0.2+rng.Float64()*1.1)
		r := Analyze(m)
		feasNaive, utilNaive := naiveAnalysis(m)
		if r.Feasible() != feasNaive {
			t.Fatalf("trial %d: feasible %v != naive %v", trial, r.Feasible(), feasNaive)
		}
		if feasNaive && !almost(r.CoreUtil, utilNaive) {
			t.Fatalf("trial %d: CoreUtil %v != naive %v", trial, r.CoreUtil, utilNaive)
		}
	}
}

// naiveAnalysis recomputes Theorem 1 from scratch with no shared
// state, mirroring the formulas in DESIGN.md section 3.
func naiveAnalysis(m *mc.UtilMatrix) (bool, float64) {
	k := m.K()
	// Lambda recursion.
	lambda := make([]float64, k+1)
	valid := make([]bool, k+1)
	lambda[1], valid[1] = 0, true
	for j := 2; j <= k; j++ {
		prod := 1.0
		allOK := true
		for x := 1; x < j; x++ {
			if !valid[x] {
				allOK = false
				break
			}
			prod *= 1 - lambda[x]
		}
		if !allOK || prod <= Eps {
			valid[j] = false
			continue
		}
		num := 0.0
		for x := j; x <= k; x++ {
			num += m.At(x, j-1)
		}
		num /= prod
		den := 1 - m.At(j-1, j-1)/prod
		if den <= Eps {
			valid[j] = false
			continue
		}
		l := num / den
		if l < 0 || l >= 1 {
			valid[j] = false
			continue
		}
		lambda[j], valid[j] = l, true
	}
	minTerm := m.At(k, k)
	if 1-m.At(k, k) > Eps {
		if f := m.At(k, k-1) / (1 - m.At(k, k)); f < minTerm {
			minTerm = f
		}
	}
	feasible := false
	best := math.Inf(1)
	for cond := 1; cond <= k-1; cond++ {
		ok := true
		theta := 1.0
		for j := 1; j <= cond; j++ {
			if !valid[j] {
				ok = false
				break
			}
			theta *= 1 - lambda[j]
		}
		if !ok {
			continue
		}
		mu := minTerm
		for i := cond; i <= k-1; i++ {
			mu += m.At(i, i)
		}
		a := theta - mu
		if a >= -Eps {
			feasible = true
			if u := 1 - a; u < best {
				best = u
			}
		}
	}
	return feasible, best
}

// TestFeasibilityScalesWithLoad: with growing load the analysis must
// eventually reject, and acceptance is monotone along a single growing
// subset (adding tasks never turns an infeasible subset feasible).
func TestFeasibilityScalesWithLoad(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(4)
		m := mc.NewUtilMatrix(k)
		wasInfeasible := false
		for id := 1; id <= 60; id++ {
			crit := 1 + rng.Intn(k)
			p := 20 + rng.Float64()*100
			w := make([]float64, crit)
			c := (0.02 + rng.Float64()*0.08) * p
			for i := range w {
				w[i] = c
				c *= 1.4
			}
			tk := mc.Task{ID: id, Period: p, Crit: crit, WCET: w}
			if tk.MaxUtil() > 1 {
				continue
			}
			m.Add(&tk)
			feas := Feasible(m)
			if wasInfeasible && feas {
				return false // infeasible -> feasible by adding load
			}
			if !feas {
				wasInfeasible = true
			}
		}
		return wasInfeasible // 60 tasks of u>=0.02 must overload one core
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReportClone(t *testing.T) {
	m := matrixOf(2, mkTask(1, 10, 2, 1, 2))
	r := Analyze(m)
	c := r.Clone()
	r.Lambda[0] = 42
	if c.Lambda[0] == 42 {
		t.Fatal("Clone shares Lambda storage")
	}
}

func TestAnalyzeIntoReusesStorage(t *testing.T) {
	m := matrixOf(3, mkTask(1, 10, 3, 1, 2, 3))
	var r Report
	AnalyzeInto(m, &r)
	l0 := &r.Lambda[0]
	AnalyzeInto(m, &r)
	if l0 != &r.Lambda[0] {
		t.Error("AnalyzeInto reallocated although capacity sufficed")
	}
	n := testing.AllocsPerRun(100, func() { AnalyzeInto(m, &r) })
	if n != 0 {
		t.Errorf("AnalyzeInto allocates %v per run, want 0", n)
	}
}

func TestLambdaInvalidWhenOverloaded(t *testing.T) {
	// U_1(1) close to 1 makes the lambda_2 denominator non-positive.
	m := matrixOf(2,
		mkTask(1, 10, 1, 10),   // u(1) = 1.0
		mkTask(2, 10, 2, 1, 2), // HI
	)
	_, ok := Lambdas(m)
	if ok[1] {
		t.Error("lambda_2 reported valid despite U_1(1) = 1")
	}
	if Feasible(m) {
		t.Error("overloaded subset accepted")
	}
}
