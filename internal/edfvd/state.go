package edfvd

import "math"

// State is the incremental scalar form of one core's Theorem-1
// analysis inputs: instead of re-reading a K x K utilization matrix on
// every query, it maintains exactly the aggregate sums the analysis
// consumes — each a single float updated in O(1) per criticality level
// when a task is added. The whole Theorem-1 ladder (the Eq. 4 accept,
// the O(1) overload reject, the Eq. 6 lambda recursion and the Eq. 5/8
// condition scan) then runs in O(K) per query instead of O(K^2), and
// probe queries touch no per-task storage at all.
//
// Delta discipline (the bit-identity contract the differential fuzz
// gates prove): every probed query evaluates `cached + urow[...]` with
// exactly the float operations Add performs on commit, so the value a
// probe reports for "subset plus this task" is bitwise the value the
// committed state reports after Add of the same task. A full recompute
// — Clear followed by Add of the members in placement order — replays
// the identical operations and therefore reproduces the identical
// state, which is what makes the exact-recompute fallback after
// removals sound.
//
// The zero value is unusable; call Reset first. A State belongs to one
// core of one backend and is not safe for concurrent use.
type State struct {
	k int
	n int

	// own[j-1] = U_j(j), the own-level utilization sums (the matrix
	// diagonal). own[K-1] is the Eq. 5 min-term numerator U_K(K).
	own []float64

	// ownSum = sum_j U_j(j), the Eq. 4 own-level load.
	ownSum float64

	// ownTail[i-1] = sum_{x=i}^{K-1} U_x(x): the top-down prefix the
	// Eq. 5 mu(i) accumulation needs, i = 1..K-1. Empty for K = 1.
	ownTail []float64

	// colTail[c-1] = sum_{x=c+1}^{K} U_x(c): the Eq. 6 lambda_{c+1}
	// numerator sums, c = 1..K-1. Empty for K = 1.
	colTail []float64

	// ukk1 = U_K(K-1), the second Eq. 5 min-term input. 0 for K = 1.
	ukk1 float64

	// buf is the contiguous backing array the three sum vectors above
	// are carved from (see Reset).
	buf []float64

	// mtVal caches the committed Eq. 5 min term when mtOK — a pure
	// function of own[K-1] and ukk1, so it is invalidated by Add and
	// Clear and shared by every probe whose candidate level is below K
	// (their virtual add leaves both min-term inputs untouched).
	mtVal float64
	mtOK  bool
}

// Reset re-dimensions the state for k criticality levels and clears
// it, reusing storage when the dimensions allow. The three sum vectors
// are carved out of one contiguous backing array — 3K-2 floats, one or
// two cache lines for practical K — so a whole query's reads stay
// local.
func (s *State) Reset(k int) {
	buf := resize(s.buf, 3*k-2)
	s.ResetSlab(k, buf)
}

// ResetSlab is Reset with caller-provided backing storage: the three
// sum vectors are carved from buf, which must hold at least 3K-2
// floats that the caller does not otherwise touch. Backends use it to
// pack every core's state into one contiguous slab, so a scan probing
// all cores in turn walks a few consecutive cache lines instead of
// m scattered allocations.
func (s *State) ResetSlab(k int, buf []float64) {
	s.k = k
	s.buf = buf[0 : 3*k-2]
	s.own = buf[0:k:k]
	s.ownTail = buf[k : 2*k-1 : 2*k-1]
	s.colTail = buf[2*k-1 : 3*k-2 : 3*k-2]
	s.Clear()
}

// Clear empties the core: all sums to zero, bitwise the state of a
// freshly Reset core.
//
//mc:allocfree zeroes amortized storage
func (s *State) Clear() {
	s.n = 0
	s.ownSum = 0
	s.ukk1 = 0
	s.mtOK = false
	for i := range s.own {
		s.own[i] = 0
	}
	for i := range s.ownTail {
		s.ownTail[i] = 0
	}
	for i := range s.colTail {
		s.colTail[i] = 0
	}
}

// K returns the configured criticality-level count.
//
//mc:allocfree accessor
func (s *State) K() int { return s.k }

// CopyFrom makes s a bitwise copy of src, reusing s's storage where
// capacity allows. It is the snapshot/restore primitive behind the
// exact O(K) undo of the most recent Add: a restored state is bitwise
// the pre-Add state, with none of the one-ulp residue an arithmetic
// subtraction could leave in the sums.
//
//mc:allocfree copies into amortized storage
func (s *State) CopyFrom(src *State) {
	k := src.k
	s.k = k
	s.n = src.n
	s.ownSum = src.ownSum
	s.ukk1 = src.ukk1
	s.mtVal, s.mtOK = src.mtVal, src.mtOK
	buf := resize(s.buf, 3*k-2)
	s.buf = buf
	s.own = buf[0:k:k]
	s.ownTail = buf[k : 2*k-1 : 2*k-1]
	s.colTail = buf[2*k-1 : 3*k-2 : 3*k-2]
	copy(s.own, src.own)
	copy(s.ownTail, src.ownTail)
	copy(s.colTail, src.colTail)
}

// Len returns the number of accumulated tasks.
//
//mc:allocfree accessor
func (s *State) Len() int { return s.n }

// OwnLoad returns the committed Eq. 4 own-level load sum_j U_j(j).
//
//mc:allocfree accessor
func (s *State) OwnLoad() float64 { return s.ownSum }

// Add commits one task of criticality crit with precomputed
// utilization row urow (Task.UtilRow) to the core: the O(1)-per-level
// delta update. Each cached sum receives exactly one addition of the
// row entry a query's probed read would have added, so post-Add
// committed queries are bitwise identical to the pre-Add probed
// queries for the same task.
//
//mc:allocfree scalar additions into amortized storage
func (s *State) Add(crit int, urow []float64) {
	k := s.k
	if k == 4 {
		s.add4(crit, urow)
		return
	}
	u := urow[crit-1]
	s.own[crit-1] += u
	s.ownSum += u
	if crit <= k-1 {
		// ownTail[i-1] covers x = i..K-1: row crit lands in every tail
		// with i <= crit.
		for i := 0; i < crit; i++ {
			s.ownTail[i] += u
		}
	}
	// colTail[c-1] covers rows x = c+1..K: row crit lands in every
	// column c <= crit-1.
	for c := 0; c < crit-1; c++ {
		s.colTail[c] += urow[c]
	}
	if crit == k && k >= 2 {
		s.ukk1 += urow[k-2]
		s.mtOK = false
	}
	s.n++
}

// add4 is Add unrolled for K = 4: one straight-line block per
// criticality level, each sum receiving exactly the one addition the
// generic loops would apply.
//
//mc:allocfree straight-line scalar additions
func (s *State) add4(crit int, urow []float64) {
	own, ownTail, colTail := s.own, s.ownTail, s.colTail
	_ = own[3]
	_ = ownTail[2]
	_ = colTail[2]
	switch crit {
	case 1:
		u := urow[0]
		own[0] += u
		s.ownSum += u
		ownTail[0] += u
	case 2:
		u := urow[1]
		own[1] += u
		s.ownSum += u
		ownTail[0] += u
		ownTail[1] += u
		colTail[0] += urow[0]
	case 3:
		u := urow[2]
		own[2] += u
		s.ownSum += u
		ownTail[0] += u
		ownTail[1] += u
		ownTail[2] += u
		colTail[0] += urow[0]
		colTail[1] += urow[1]
	default: // crit == 4
		u := urow[3]
		own[3] += u
		s.ownSum += u
		colTail[0] += urow[0]
		colTail[1] += urow[1]
		colTail[2] += urow[2]
		s.ukk1 += urow[2]
		s.mtOK = false
	}
	s.n++
}

// minTermWith returns the Eq. 5 min term
// min{ U_K(K), U_K(K-1)/(1 - U_K(K)) } of the subset with a task of
// criticality crit virtually added (crit = 0: the committed subset).
// Requires K >= 2.
//
//mc:allocfree pure arithmetic behind a scalar cache
func (s *State) minTermWith(crit int, urow []float64) float64 {
	k := s.k
	if crit != k {
		// The virtual add leaves both min-term inputs untouched:
		// return the committed value, computed at most once per Add.
		if !s.mtOK {
			s.mtVal = minTerm(s.own[k-1], s.ukk1)
			s.mtOK = true
		}
		return s.mtVal
	}
	return minTerm(s.own[k-1]+urow[k-1], s.ukk1+urow[k-2])
}

// minTerm is the Eq. 5 term min{ U_K(K), U_K(K-1)/(1 - U_K(K)) }.
//
//mc:allocfree pure arithmetic
func minTerm(ukk, ukk1 float64) float64 {
	mt := ukk
	if 1-ukk > Eps {
		if frac := ukk1 / (1 - ukk); frac < mt {
			mt = frac
		}
	}
	return mt
}

// SimpleFeasibleWith reports the Eq. 4 sufficient condition — own-level
// load at most 1 — for the subset with one task of criticality crit
// and utilization row urow virtually added. O(1).
//
//mc:allocfree one add and one compare
func (s *State) SimpleFeasibleWith(crit int, urow []float64) bool {
	return s.ownSum+urow[crit-1] <= 1+Eps
}

// FastInfeasibleWith is the O(1) overload reject on the virtually
// probed subset: the Eq. 5 min term bounds every mu(k) from below, so
// U_{K-1}(K-1) + minTerm clearly above 1 rules out every Theorem-1
// condition (theta(k) <= 1 always). Never true for a subset the full
// analysis would accept; false only means "run the analysis".
//
//mc:allocfree pure arithmetic
func (s *State) FastInfeasibleWith(crit int, urow []float64) bool {
	k := s.k
	if k < 2 {
		return false
	}
	own1 := s.own[k-2]
	if crit == k-1 {
		own1 += urow[k-2]
	}
	return own1+s.minTermWith(crit, urow) > 1+Eps+fastGuard
}

// UtilFloorWith returns a certified lower bound on the Eq. 9 core
// utilization (either reading) of the virtually probed subset, or -Inf
// when K < 2: any holding condition has theta(k) <= 1 and
// mu(k) >= mu(K-1), so core utilization is at least mu(K-1); a 1e-11
// band covers the summation rounding. O(1).
//
//mc:allocfree pure arithmetic
func (s *State) UtilFloorWith(crit int, urow []float64) float64 {
	k := s.k
	if k < 2 {
		return math.Inf(-1)
	}
	own1 := s.own[k-2]
	if crit == k-1 {
		own1 += urow[k-2]
	}
	return own1 + s.minTermWith(crit, urow) - 1e-11
}

// FeasibleWith reports the Theorem-1 verdict for the subset with a
// task of criticality crit and utilization row urow virtually added,
// without mutating anything: the full ladder in O(K). The lambda
// recursion stops at the first holding condition or the first invalid
// factor, exactly like the committed analysis scan. The O(1) overload
// reject of FastInfeasibleWith runs first, sharing the min-term
// computation, so callers need not screen separately.
//
// urow must be the full K-length row of Task.UtilRow (as for every
// probed State query): entries above crit are never read as values,
// but the K = 4 unrolled paths anchor their bounds-check elimination
// on the row's full length.
//
//mc:allocfree scalar reads and a fixed-depth recursion
func (s *State) FeasibleWith(crit int, urow []float64) bool {
	k := s.k
	if k == 1 {
		u := s.own[0]
		if crit == 1 {
			u += urow[0]
		}
		return u <= 1+Eps
	}
	minTerm := s.minTermWith(crit, urow)
	own1 := s.own[k-2]
	if crit == k-1 {
		own1 += urow[k-2]
	}
	if own1+minTerm > 1+Eps+fastGuard {
		return false // the FastInfeasibleWith overload reject
	}
	if k == 4 && crit > 0 {
		return s.feasibleWith4(crit, urow, minTerm)
	}
	// The Eq. 6 recursion of lambdaStep, unrolled in place: identical
	// float operations in identical order, minus the per-level call.
	own, colTail, ownTail := s.own, s.colTail, s.ownTail
	theta := 1.0
	lambda := 0.0 // lambda_1
	prod := 1.0   // prod_{x<j} (1 - lambda_x)
	for cond := 1; cond <= k-1; cond++ {
		if cond >= 2 {
			prod *= 1 - lambda
			if prod <= Eps {
				return false
			}
			num := colTail[cond-2]
			if crit >= cond {
				num += urow[cond-2]
			}
			dd := own[cond-2]
			if crit == cond-1 {
				dd += urow[cond-2]
			}
			rem := prod - dd
			if rem <= Eps*prod {
				return false
			}
			l := num / rem
			if l < 0 || l >= 1 {
				return false
			}
			lambda = l
		}
		theta *= 1 - lambda
		tail := ownTail[cond-1]
		if crit >= cond && crit <= k-1 {
			tail += urow[crit-1]
		}
		if theta-(tail+minTerm) >= -Eps {
			return true
		}
	}
	return false
}

// feasibleWith4 is the generic FeasibleWith recursion fully unrolled
// for K = 4 (the paper's default dimension) and a real candidate
// (crit >= 1). The float operations are those of the generic loop in
// the same order; the factors the loop multiplies by exactly 1.0
// (lambda_1 = 0) are elided, which is bitwise identity, and every
// bounds check resolves at compile time. The caller has already run
// the k == 1 head and the overload fast-reject.
//
//mc:allocfree straight-line scalar arithmetic
func (s *State) feasibleWith4(crit int, urow []float64, minTerm float64) bool {
	own, colTail, ownTail := s.own, s.colTail, s.ownTail
	_ = own[1]
	_ = colTail[1]
	_ = ownTail[2]
	_ = urow[2]

	// Condition 1: theta = 1 (lambda_1 = 0).
	tail := ownTail[0]
	if crit <= 3 {
		tail += urow[crit-1]
	}
	if 1-(tail+minTerm) >= -Eps {
		return true
	}

	// Condition 2: lambda_2 with running product P = 1.
	num := colTail[0]
	if crit >= 2 {
		num += urow[0]
	}
	dd := own[0]
	if crit == 1 {
		dd += urow[0]
	}
	rem := 1 - dd
	if rem <= Eps {
		return false
	}
	l2 := num / rem
	if l2 < 0 || l2 >= 1 {
		return false
	}
	theta := 1 - l2
	tail = ownTail[1]
	if crit == 2 || crit == 3 {
		tail += urow[crit-1]
	}
	if theta-(tail+minTerm) >= -Eps {
		return true
	}

	// Condition 3: lambda_3 with P = 1 - lambda_2.
	prod := 1 - l2
	if prod <= Eps {
		return false
	}
	num = colTail[1]
	if crit >= 3 {
		num += urow[1]
	}
	dd = own[1]
	if crit == 2 {
		dd += urow[1]
	}
	rem = prod - dd
	if rem <= Eps*prod {
		return false
	}
	l3 := num / rem
	if l3 < 0 || l3 >= 1 {
		return false
	}
	theta *= 1 - l3
	tail = ownTail[2]
	if crit == 3 {
		tail += urow[2]
	}
	return theta-(tail+minTerm) >= -Eps
}

// muWith returns mu(cond) of the virtually probed subset: the cached
// own-level tail plus the probe's own-level entry (when its level lies
// in the tail) plus the min term, associated exactly as the committed
// read after Add would be.
//
//mc:allocfree pure arithmetic
func (s *State) muWith(cond int, minTerm float64, crit int, urow []float64) float64 {
	tail := s.ownTail[cond-1]
	if crit >= cond && crit <= s.k-1 {
		tail += urow[crit-1]
	}
	return tail + minTerm
}

// lambdaStep advances the Eq. 6 recursion from lambda_{j-1} to
// lambda_j (j = cond >= 2) on the virtually probed subset, returning
// the new factor and running product. ok is false when the factor is
// invalid (denominator at most 0, vanished product, or value outside
// [0, 1)) — which poisons every later theta exactly as in the
// committed analysis.
//
//mc:allocfree pure arithmetic
func (s *State) lambdaStep(j int, lambda, prod float64, crit int, urow []float64) (float64, float64, bool) {
	prod *= 1 - lambda
	if prod <= Eps {
		return 0, prod, false
	}
	num := s.colTail[j-2]
	if crit >= j {
		num += urow[j-2]
	}
	dd := s.own[j-2]
	if crit == j-1 {
		dd += urow[j-2]
	}
	// Multiply Eq. 6 through by P: (num/P) / (1 - dd/P) = num/(P - dd),
	// one division instead of three. The denominator-validity test
	// 1 - dd/P <= Eps becomes P - dd <= Eps*P (P > 0 here).
	rem := prod - dd
	if rem <= Eps*prod {
		return 0, prod, false
	}
	l := num / rem
	if l < 0 || l >= 1 {
		return l, prod, false
	}
	return l, prod, true
}

// ProbeEval is the scalar analysis summary of one probed (or
// committed) subset: the Eq. 9 core utilization in both readings and
// the smallest holding Theorem-1 condition. It is the value a
// minimum-increment probe needs and the value KeepProbe/Place commit.
type ProbeEval struct {
	// CoreUtil is U^Psi per Eq. 9 (+Inf when no condition holds);
	// CoreUtilWorst the literal worst-condition reading. They coincide
	// for K <= 2.
	CoreUtil, CoreUtilWorst float64
	// FeasibleK is the smallest holding condition level, or 0.
	FeasibleK int
}

// EvalWith analyzes the subset with a task of criticality crit and row
// urow virtually added (crit = 0, urow = nil: the committed subset)
// and fills ev. O(K); nothing is mutated. The O(1) overload reject
// runs first — when it fires, no condition can hold and ev keeps the
// infeasible readings — so callers need not screen separately.
//
//mc:allocfree fills a caller-owned scalar struct
func (s *State) EvalWith(crit int, urow []float64, ev *ProbeEval) {
	k := s.k
	ev.FeasibleK = 0
	ev.CoreUtil = math.Inf(1)
	ev.CoreUtilWorst = math.Inf(1)
	if k == 1 {
		u := s.own[0]
		if crit == 1 {
			u += urow[0]
		}
		if u <= 1+Eps {
			ev.FeasibleK = 1
			ev.CoreUtil = u
			ev.CoreUtilWorst = u
		}
		return
	}
	minTerm := s.minTermWith(crit, urow)
	own1 := s.own[k-2]
	if crit == k-1 {
		own1 += urow[k-2]
	}
	if own1+minTerm > 1+Eps+fastGuard {
		return // the FastInfeasibleWith overload reject: nothing holds
	}
	if k == 4 && crit > 0 {
		s.evalWith4(crit, urow, minTerm, ev)
		return
	}
	s.evalScan(crit, urow, minTerm, ev)
}

// evalScan is the generic condition scan of EvalWith, after the k == 1
// head, the overload fast-reject and the min-term computation.
//
//mc:allocfree scalar reads and a fixed-depth recursion
func (s *State) evalScan(crit int, urow []float64, minTerm float64, ev *ProbeEval) {
	k := s.k
	// The Eq. 6 recursion of lambdaStep, unrolled in place: identical
	// float operations in identical order, minus the per-level call. An
	// invalid factor poisons every later condition, so the scan stops
	// there (the skipped iterations contribute nothing).
	own, colTail, ownTail := s.own, s.colTail, s.ownTail
	theta := 1.0
	lambda := 0.0
	prod := 1.0
	bestUtil := math.Inf(1)
	worstUtil := math.Inf(-1)
	for cond := 1; cond <= k-1; cond++ {
		if cond >= 2 {
			prod *= 1 - lambda
			if prod <= Eps {
				break
			}
			num := colTail[cond-2]
			if crit >= cond {
				num += urow[cond-2]
			}
			dd := own[cond-2]
			if crit == cond-1 {
				dd += urow[cond-2]
			}
			rem := prod - dd
			if rem <= Eps*prod {
				break
			}
			l := num / rem
			if l < 0 || l >= 1 {
				break
			}
			lambda = l
		}
		theta *= 1 - lambda
		tail := ownTail[cond-1]
		if crit >= cond && crit <= k-1 {
			tail += urow[crit-1]
		}
		a := theta - (tail + minTerm)
		if a >= -Eps {
			if ev.FeasibleK == 0 {
				ev.FeasibleK = cond
			}
			u := 1 - a
			if u < bestUtil {
				bestUtil = u
			}
			if u > worstUtil {
				worstUtil = u
			}
		}
	}
	if ev.FeasibleK > 0 {
		ev.CoreUtil = bestUtil
		ev.CoreUtilWorst = worstUtil
	}
}

// ProbeBoundedWith is EvalWith behind the certified UtilFloorWith
// prune, folded into one scalar head: when floor - base >= margin the
// probed subset cannot beat the incumbent minimum-increment candidate,
// so the analysis is skipped — ev is left untouched and the call
// returns false. Otherwise ev receives exactly EvalWith's analysis and
// the call returns true. The prune comparison and the analysis perform
// bitwise the operations of UtilFloorWith followed by EvalWith, so a
// caller testing `UtilFloorWith - base >= margin` before EvalWith gets
// identical outcomes with the min term and the Eq. 5 head computed
// once instead of twice.
//
//mc:allocfree one fused scalar head plus the EvalWith scan
func (s *State) ProbeBoundedWith(crit int, urow []float64, base, margin float64, ev *ProbeEval) bool {
	k := s.k
	if k == 1 {
		// UtilFloorWith is -Inf for K < 2: the prune can never fire.
		s.EvalWith(crit, urow, ev)
		return true
	}
	minTerm := s.minTermWith(crit, urow)
	own1 := s.own[k-2]
	if crit == k-1 {
		own1 += urow[k-2]
	}
	if own1+minTerm-1e-11-base >= margin {
		return false
	}
	ev.FeasibleK = 0
	ev.CoreUtil = math.Inf(1)
	ev.CoreUtilWorst = math.Inf(1)
	if own1+minTerm > 1+Eps+fastGuard {
		return true // overload reject: ev holds the infeasible readings
	}
	if k == 4 && crit > 0 {
		s.evalWith4(crit, urow, minTerm, ev)
		return true
	}
	s.evalScan(crit, urow, minTerm, ev)
	return true
}

// evalWith4 is the generic EvalWith scan fully unrolled for K = 4 and
// a real candidate (crit >= 1), mirroring feasibleWith4: identical
// float operations in identical order, with the exact-1.0 factors
// elided and every bounds check resolved at compile time. The caller
// has already run the k == 1 head and the overload fast-reject, and
// initialized ev to the infeasible readings.
//
//mc:allocfree straight-line scalar arithmetic into a caller struct
func (s *State) evalWith4(crit int, urow []float64, minTerm float64, ev *ProbeEval) {
	own, colTail, ownTail := s.own, s.colTail, s.ownTail
	_ = own[1]
	_ = colTail[1]
	_ = ownTail[2]
	_ = urow[2]
	bestUtil := math.Inf(1)
	worstUtil := math.Inf(-1)

	// Condition 1: theta = 1 (lambda_1 = 0).
	tail := ownTail[0]
	if crit <= 3 {
		tail += urow[crit-1]
	}
	if a := 1 - (tail + minTerm); a >= -Eps {
		ev.FeasibleK = 1
		u := 1 - a
		bestUtil, worstUtil = u, u
	}

	// The conditions 2..3 chain; an invalid lambda factor poisons the
	// rest, exiting the block.
	for {
		// Condition 2: lambda_2 with running product P = 1.
		num := colTail[0]
		if crit >= 2 {
			num += urow[0]
		}
		dd := own[0]
		if crit == 1 {
			dd += urow[0]
		}
		rem := 1 - dd
		if rem <= Eps {
			break
		}
		l2 := num / rem
		if l2 < 0 || l2 >= 1 {
			break
		}
		theta := 1 - l2
		tail = ownTail[1]
		if crit == 2 || crit == 3 {
			tail += urow[crit-1]
		}
		if a := theta - (tail + minTerm); a >= -Eps {
			if ev.FeasibleK == 0 {
				ev.FeasibleK = 2
			}
			u := 1 - a
			if u < bestUtil {
				bestUtil = u
			}
			if u > worstUtil {
				worstUtil = u
			}
		}

		// Condition 3: lambda_3 with P = 1 - lambda_2.
		prod := 1 - l2
		if prod <= Eps {
			break
		}
		num = colTail[1]
		if crit >= 3 {
			num += urow[1]
		}
		dd = own[1]
		if crit == 2 {
			dd += urow[1]
		}
		rem = prod - dd
		if rem <= Eps*prod {
			break
		}
		l3 := num / rem
		if l3 < 0 || l3 >= 1 {
			break
		}
		theta *= 1 - l3
		tail = ownTail[2]
		if crit == 3 {
			tail += urow[2]
		}
		if a := theta - (tail + minTerm); a >= -Eps {
			if ev.FeasibleK == 0 {
				ev.FeasibleK = 3
			}
			u := 1 - a
			if u < bestUtil {
				bestUtil = u
			}
			if u > worstUtil {
				worstUtil = u
			}
		}
		break
	}
	if ev.FeasibleK > 0 {
		ev.CoreUtil = bestUtil
		ev.CoreUtilWorst = worstUtil
	}
}

// Eval analyzes the committed subset into ev. O(K).
//
//mc:allocfree delegates to EvalWith
func (s *State) Eval(ev *ProbeEval) {
	s.EvalWith(0, nil, ev)
}

// ReportInto fills r with the full committed analysis — the lambda
// vector with validity flags, mu/theta/availability per condition, the
// smallest holding condition and both Eq. 9 readings — in O(K),
// reusing r's storage. The Report layout matches AnalyzeInto's; the
// sums behind the scalar fields are the delta-maintained ones, so the
// values are bitwise those of every other State query.
//
//mc:allocfree report slices reused at capacity
func (s *State) ReportInto(r *Report) {
	k := s.k
	r.K = k
	r.Lambda = resize(r.Lambda, k)
	r.LambdaOK = resizeBool(r.LambdaOK, k)
	r.Mu = resize(r.Mu, k-1)
	r.Theta = resize(r.Theta, k-1)
	r.Avail = resize(r.Avail, k-1)
	r.FeasibleK = 0
	r.CoreUtil = math.Inf(1)
	r.CoreUtilWorst = math.Inf(1)

	if k == 1 {
		u := s.own[0]
		if u <= 1+Eps {
			r.FeasibleK = 1
			r.CoreUtil = u
			r.CoreUtilWorst = u
		}
		return
	}

	minTerm := s.minTermWith(0, nil)
	r.Lambda[0], r.LambdaOK[0] = 0, true
	lambda := 0.0
	prod := 1.0
	valid := true
	for j := 2; j <= k; j++ {
		if !valid {
			r.Lambda[j-1], r.LambdaOK[j-1] = math.NaN(), false
			continue
		}
		var l float64
		l, prod, valid = s.lambdaStep(j, lambda, prod, 0, nil)
		if !valid {
			// lambdaStep reports the out-of-range value itself (and 0
			// for the structural failures, where lambdas records NaN).
			//lint:ignore mclint/floateq deliberately exact: 0 is lambdaStep's structural-failure sentinel, never a computed recursion value (those are < 0 or >= 1 on failure)
			if l == 0 {
				l = math.NaN()
			}
			r.Lambda[j-1], r.LambdaOK[j-1] = l, false
			continue
		}
		lambda = l
		r.Lambda[j-1], r.LambdaOK[j-1] = l, true
	}

	theta := 1.0
	valid = true
	bestUtil := math.Inf(1)
	worstUtil := math.Inf(-1)
	for cond := 1; cond <= k-1; cond++ {
		r.Mu[cond-1] = s.muWith(cond, minTerm, 0, nil)
		if valid && r.LambdaOK[cond-1] {
			theta *= 1 - r.Lambda[cond-1]
		} else {
			valid = false
		}
		if !valid {
			r.Theta[cond-1] = math.Inf(-1)
			r.Avail[cond-1] = math.Inf(-1)
			continue
		}
		r.Theta[cond-1] = theta
		a := theta - r.Mu[cond-1]
		r.Avail[cond-1] = a
		if a >= -Eps {
			if r.FeasibleK == 0 {
				r.FeasibleK = cond
			}
			u := 1 - a
			if u < bestUtil {
				bestUtil = u
			}
			if u > worstUtil {
				worstUtil = u
			}
		}
	}
	if r.FeasibleK > 0 {
		r.CoreUtil = bestUtil
		r.CoreUtilWorst = worstUtil
	}
}
