package edfvd

import (
	"math"

	"catpa/internal/mc"
)

// Eps is the feasibility tolerance: a condition mu(k) <= theta(k) is
// accepted when mu(k) <= theta(k) + Eps.
const Eps = 1e-9

// Report is the full analysis of one core's task subset.
//
// Slices are indexed as documented on each field; they are reused by
// AnalyzeInto, so callers that retain a Report across calls must clone
// it first.
type Report struct {
	// K is the number of system criticality levels the analysis ran with.
	K int

	// Lambda[j-1] = lambda_j (Eq. 6), for j = 1..K; Lambda[0] = 0.
	Lambda []float64

	// LambdaOK[j-1] reports whether lambda_j is well defined and lies
	// in [0, 1). A condition k can only hold if LambdaOK[j-1] for all
	// j <= k.
	LambdaOK []bool

	// Mu[k-1] = mu(k) and Theta[k-1] = theta(k) for k = 1..K-1
	// (Eq. 5); Avail[k-1] = A(k) = theta(k) - mu(k) (Eq. 8). When a
	// lambda required by theta(k) is invalid, Theta[k-1] and
	// Avail[k-1] are -Inf. For K = 1 the slices are empty.
	Mu, Theta, Avail []float64

	// FeasibleK is the smallest k in 1..K-1 whose condition holds
	// (Theorem 1), or 0 if none does. For K = 1 it is 1 when
	// U_1(1) <= 1, else 0.
	FeasibleK int

	// CoreUtil is U^Psi per Eq. 9: +Inf when no condition holds,
	// otherwise 1 - max over feasible k of A(k) — one minus the best
	// available utilization among the conditions that hold (see
	// DESIGN.md section 3 for the reconstruction of the mangled
	// formula; for K = 2 the reading is unambiguous since only k = 1
	// exists). For K = 1 it is U_1(1) (or +Inf when > 1).
	CoreUtil float64

	// CoreUtilWorst is the alternative literal reading of Eq. 9,
	// max_{A(k)>=0} (1 - A(k)) — one minus the smallest available
	// utilization among the holding conditions. It equals CoreUtil
	// for K <= 2 and exists for the ablation study
	// (BenchmarkAblationEq9Literal).
	CoreUtilWorst float64
}

// Feasible reports whether the analyzed subset is schedulable by
// EDF-VD, i.e. whether at least one Theorem-1 condition holds.
//
//mc:allocfree accessor
func (r *Report) Feasible() bool { return r.FeasibleK > 0 }

// Clone deep-copies the report.
func (r *Report) Clone() *Report {
	c := *r
	c.Lambda = append([]float64(nil), r.Lambda...)
	c.LambdaOK = append([]bool(nil), r.LambdaOK...)
	c.Mu = append([]float64(nil), r.Mu...)
	c.Theta = append([]float64(nil), r.Theta...)
	c.Avail = append([]float64(nil), r.Avail...)
	return &c
}

// Analyze runs the full Theorem-1 analysis on the subset described by m.
func Analyze(m *mc.UtilMatrix) *Report {
	r := &Report{}
	AnalyzeInto(m, r)
	return r
}

// AnalyzeInto is Analyze with caller-provided storage; it reuses the
// report's slices when their capacity suffices, making the CA-TPA probe
// loop allocation-free after warm-up.
//
// It reads the matrix through its raw backing slice (UtilMatrix.Data)
// to keep the partitioning inner loop free of per-entry bounds checks;
// every arithmetic operation is performed in the same order as the
// entry-wise formulation, so reports are bit-identical to it.
//
//mc:allocfree report slices reused at capacity
func AnalyzeInto(m *mc.UtilMatrix, r *Report) {
	k := m.K()
	d := m.Data() // d[(j-1)*k + (k'-1)] = U_j(k')
	r.K = k
	r.Lambda = resize(r.Lambda, k)
	r.LambdaOK = resizeBool(r.LambdaOK, k)
	r.Mu = resize(r.Mu, k-1)
	r.Theta = resize(r.Theta, k-1)
	r.Avail = resize(r.Avail, k-1)
	r.FeasibleK = 0
	r.CoreUtil = math.Inf(1)
	r.CoreUtilWorst = math.Inf(1)

	if k == 1 {
		// Single-criticality systems reduce to plain EDF: U_1(1) <= 1.
		u := d[0]
		if u <= 1+Eps {
			r.FeasibleK = 1
			r.CoreUtil = u
			r.CoreUtilWorst = u
		}
		return
	}

	lambdas(d, k, r.Lambda, r.LambdaOK)

	// The min term of Eq. 5 is independent of k:
	// min{ U_K(K), U_K(K-1) / (1 - U_K(K)) }.
	ukk := d[(k-1)*k+(k-1)]
	ukk1 := d[(k-1)*k+(k-2)]
	minTerm := ukk
	if 1-ukk > Eps {
		if frac := ukk1 / (1 - ukk); frac < minTerm {
			minTerm = frac
		}
	}

	// sumOwn accumulates sum_{i=cond}^{K-1} U_i(i); build it from the
	// top down so each condition is O(1) after the prefix pass.
	theta := 1.0
	valid := true
	// First pass computes mu for every condition level.
	sumOwn := 0.0
	for i := k - 1; i >= 1; i-- {
		sumOwn += d[(i-1)*k+(i-1)]
		r.Mu[i-1] = sumOwn + minTerm
	}
	bestUtil := math.Inf(1)
	worstUtil := math.Inf(-1)
	for cond := 1; cond <= k-1; cond++ {
		// theta(cond) = prod_{j=1}^{cond} (1 - lambda_j).
		if valid && r.LambdaOK[cond-1] {
			theta *= 1 - r.Lambda[cond-1]
		} else {
			valid = false
		}
		if !valid {
			r.Theta[cond-1] = math.Inf(-1)
			r.Avail[cond-1] = math.Inf(-1)
			continue
		}
		r.Theta[cond-1] = theta
		a := theta - r.Mu[cond-1]
		r.Avail[cond-1] = a
		if a >= -Eps {
			if r.FeasibleK == 0 {
				r.FeasibleK = cond
			}
			// Eq. 9b: core utilization is one minus the largest
			// available utilization among the holding conditions.
			u := 1 - a
			if u < bestUtil {
				bestUtil = u
			}
			if u > worstUtil {
				worstUtil = u
			}
		}
	}
	if r.FeasibleK > 0 {
		r.CoreUtil = bestUtil
		r.CoreUtilWorst = worstUtil
	}
}

// Feasible reports whether the subset passes at least one Theorem-1
// condition (Proposition 2 applied to a single core). It avoids
// building a Report.
func Feasible(m *mc.UtilMatrix) bool {
	var r Report
	AnalyzeInto(m, &r)
	return r.Feasible()
}

// CoreUtil returns U^Psi per Eq. 9 (+Inf when infeasible).
func CoreUtil(m *mc.UtilMatrix) float64 {
	var r Report
	AnalyzeInto(m, &r)
	return r.CoreUtil
}

// SimpleFeasible implements the pessimistic sufficient condition of
// Eq. 4: sum_k U_k^Psi(k) <= 1, under which the subset is schedulable
// by plain EDF (no virtual deadlines needed).
//
//mc:allocfree one matrix sum
func SimpleFeasible(m *mc.UtilMatrix) bool {
	return m.OwnLevelLoad() <= 1+Eps
}

// fastGuard is the margin FastInfeasible keeps beyond Eps so that the
// O(1) screen can never contradict the full analysis: the rounding
// difference between mu(K-1) computed here and any mu(k) accumulated
// inside AnalyzeInto is bounded by a few ulps of K, orders of
// magnitude below this band.
const fastGuard = 1e-12

// FastInfeasible conservatively reports that no Theorem-1 condition
// can hold for the subset, reading only three matrix entries. It never
// returns true for a subset Analyze would accept: mu(k) is
// non-increasing in the condition level k while every theta(k) is a
// product of factors in (0, 1] and hence at most 1, so
// mu(K-1) = U_{K-1}(K-1) + minTerm clearly above 1 rules out every
// condition. Probe loops use it to skip the full lambda recursion for
// hopelessly overloaded cores; false only means "run the analysis".
//
//mc:allocfree three matrix reads
func FastInfeasible(m *mc.UtilMatrix) bool {
	k := m.K()
	if k < 2 {
		return false
	}
	d := m.Data()
	return fastInfeasible(d, k,
		d[(k-1)*k+(k-1)], d[(k-1)*k+(k-2)], d[(k-2)*k+(k-2)])
}

//
//mc:allocfree pure arithmetic
func fastInfeasible(d []float64, k int, ukk, ukk1, own1 float64) bool {
	minTerm := ukk
	if 1-ukk > Eps {
		if frac := ukk1 / (1 - ukk); frac < minTerm {
			minTerm = frac
		}
	}
	return own1+minTerm > 1+Eps+fastGuard
}

// SimpleFeasibleProbed reports the Eq. 4 sufficient condition for the
// subset described by the raw K x K matrix data d (UtilMatrix.Data)
// with one task of criticality crit and utilization row urow virtually
// added. Every float operation replicates UtilMatrix.AddRow followed
// by OwnLevelLoad, so the verdict is bit-identical to probing for
// real — without mutating the matrix.
//
//mc:allocfree virtual: raw-slice reads only
func SimpleFeasibleProbed(d []float64, k, crit int, urow []float64) bool {
	var s float64
	for j := 0; j < k; j++ {
		v := d[j*k+j]
		if j == crit-1 {
			v += urow[j]
		}
		s += v
	}
	return s <= 1+Eps
}

// FastInfeasibleProbed is FastInfeasible — the O(1) overload reject
// derived from the Eq. 5 min term bounding every Theorem-1 mu(k) from
// below — evaluated on the virtually probed subset (same contract as
// SimpleFeasibleProbed: no mutation, bit-identical verdict).
//
//mc:allocfree virtual: raw-slice reads only
func FastInfeasibleProbed(d []float64, k, crit int, urow []float64) bool {
	if k < 2 {
		return false
	}
	ukk := d[(k-1)*k+(k-1)]
	ukk1 := d[(k-1)*k+(k-2)]
	own1 := d[(k-2)*k+(k-2)]
	switch crit {
	case k:
		ukk += urow[k-1]
		ukk1 += urow[k-2]
	case k - 1:
		own1 += urow[k-2]
	}
	return fastInfeasible(d, k, ukk, ukk1, own1)
}

// minTermProbed computes the Eq. 5 min term of the virtually probed
// subset with the exact float operations of AnalyzeInto.
//
//mc:allocfree pure arithmetic
func minTermProbed(d []float64, k, crit int, urow []float64) float64 {
	ukk := d[(k-1)*k+(k-1)]
	ukk1 := d[(k-1)*k+(k-2)]
	if crit == k {
		ukk += urow[k-1]
		ukk1 += urow[k-2]
	}
	minTerm := ukk
	if 1-ukk > Eps {
		if frac := ukk1 / (1 - ukk); frac < minTerm {
			minTerm = frac
		}
	}
	return minTerm
}

// FeasibleProbed reports the Theorem-1 verdict for the virtually
// probed subset: the same boolean Analyze would produce after adding a
// task of criticality crit with utilization row urow, without mutating
// anything. Every float operation — the Eq. 5 min term, the top-down
// mu accumulation, the Eq. 6 lambda recursion and the theta products —
// replicates AnalyzeInto's exactly, so the verdict is bit-identical;
// the savings come from structure, not arithmetic: no report is
// filled, lambda_j is only derived up to the first holding condition
// (in particular the condition-unused lambda_K never is), and the scan
// stops at the first accept or the first invalid lambda (which poisons
// every later theta in AnalyzeInto too).
//
//mc:allocfree mu lives in a stack array up to K=16
func FeasibleProbed(d []float64, k, crit int, urow []float64) bool {
	if k == 1 {
		u := d[0]
		if crit == 1 {
			u += urow[0]
		}
		return u <= 1+Eps
	}
	minTerm := minTermProbed(d, k, crit, urow)
	var muBuf [16]float64
	mu := muBuf[:]
	if cap(mu) < k {
		mu = make([]float64, k)
	}
	sumOwn := 0.0
	for i := k - 1; i >= 1; i-- {
		v := d[(i-1)*k+(i-1)]
		if i == crit {
			v += urow[i-1]
		}
		sumOwn += v
		mu[i-1] = sumOwn + minTerm
	}
	theta := 1.0
	lambda := 0.0 // lambda_1
	prod := 1.0   // prod_{x<j} (1 - lambda_x), as in the lambda recursion
	for cond := 1; cond <= k-1; cond++ {
		if cond >= 2 {
			// Derive lambda_cond (Eq. 6, j = cond).
			prod *= 1 - lambda
			if prod <= Eps {
				return false
			}
			var num float64
			for x := cond; x <= k; x++ {
				v := d[(x-1)*k+(cond-2)]
				if x == crit {
					v += urow[cond-2]
				}
				num += v
			}
			dd := d[(cond-2)*k+(cond-2)]
			if crit == cond-1 {
				dd += urow[cond-2]
			}
			// Eq. 6 multiplied through by the running product P (see
			// lambdas): one division, same factor.
			rem := prod - dd
			if rem <= Eps*prod {
				return false
			}
			lambda = num / rem
			if lambda < 0 || lambda >= 1 {
				return false
			}
		}
		theta *= 1 - lambda
		if theta-mu[cond-1] >= -Eps {
			return true
		}
	}
	return false
}

// UtilFloorProbed returns a certified lower bound on the Eq. 9 core
// utilization — under either reading — that Analyze would report for
// the virtually probed subset, or -Inf when K < 2 (no bound
// available). Since every theta(k) is at most 1 and mu(k) is
// non-increasing in k, any holding condition has availability
// A(k) <= 1 - mu(K-1) and hence core utilization >= mu(K-1); the
// returned value keeps a 1e-11 band below that, far above the few
// ulps of summation rounding separating this mu(K-1) from the
// analysis's. Probe loops use it to skip the full analysis for cores
// that cannot beat the incumbent candidate.
//
//mc:allocfree O(1) matrix reads
func UtilFloorProbed(d []float64, k, crit int, urow []float64) float64 {
	if k < 2 {
		return math.Inf(-1)
	}
	own1 := d[(k-2)*k+(k-2)]
	if crit == k-1 {
		own1 += urow[k-2]
	}
	return own1 + minTermProbed(d, k, crit, urow) - 1e-11
}

// DualFeasible implements the dual-criticality specialization Eq. 7:
//
//	U_1(1) + min{ U_2(2), U_2(1)/(1 - U_2(2)) } <= 1.
//
// It panics if the matrix was not built for K = 2. It must agree with
// Feasible on every dual-criticality subset; the general path is
// preferred in production code, this entry point exists as a
// cross-check and for documentation value.
func DualFeasible(m *mc.UtilMatrix) bool {
	if m.K() != 2 {
		panic("edfvd: DualFeasible requires K = 2")
	}
	u11 := m.At(1, 1)
	u22 := m.At(2, 2)
	u21 := m.At(2, 1)
	minTerm := u22
	if 1-u22 > Eps {
		if frac := u21 / (1 - u22); frac < minTerm {
			minTerm = frac
		}
	}
	return u11+minTerm <= 1+Eps
}

// ClassicDualFeasible implements the original dual-criticality EDF-VD
// schedulability test of Baruah et al. (2012), which the paper's
// simpler Eq. 7 condition under-approximates: the set is schedulable
// if plain EDF suffices (U_1(1) + U_2(2) <= 1) or if a virtual-deadline
// scaling factor x exists with
//
//	U_2(1)/(1 - U_1(1))  <=  x  <=  (1 - U_2(2))/U_1(1).
//
// Every Eq. 7-feasible subset is ClassicDualFeasible (the tests verify
// the implication on random subsets), but not vice versa — the classic
// test accepts strictly more sets. The runtime simulator's lambda_2
// equals the left endpoint of the x interval, so classic-accepted
// subsets also execute miss-free under it. Panics if K != 2.
func ClassicDualFeasible(m *mc.UtilMatrix) bool {
	if m.K() != 2 {
		panic("edfvd: ClassicDualFeasible requires K = 2")
	}
	u11 := m.At(1, 1)
	u22 := m.At(2, 2)
	u21 := m.At(2, 1)
	if u11+u22 <= 1+Eps {
		return true // plain EDF
	}
	if u11 >= 1-Eps || u22 >= 1-Eps {
		return false
	}
	lo := u21 / (1 - u11)
	hi := (1 - u22) / u11
	return lo <= hi+Eps && lo < 1
}

// Lambdas computes the virtual-deadline reduction factors lambda_j of
// Eq. 6 for the subset. lambda[0] = lambda_1 = 0. ok[j-1] reports
// whether lambda_j is well defined and in [0, 1).
func Lambdas(m *mc.UtilMatrix) (lambda []float64, ok []bool) {
	k := m.K()
	lambda = make([]float64, k)
	ok = make([]bool, k)
	lambdas(m.Data(), k, lambda, ok)
	return lambda, ok
}

// lambdas fills pre-sized slices with the Eq. 6 recursion:
//
//	lambda_1 = 0
//	lambda_j = [ sum_{x=j}^{K} U_x(j-1) / P ] / [ 1 - U_{j-1}(j-1)/P ]
//	           where P = prod_{x<j} (1 - lambda_x)
//
// Once a lambda_j is invalid (denominator <= 0 or value outside [0,1)),
// all subsequent factors are flagged invalid too, since the recursion
// depends on the running product.
//
// d is the raw row-major K x K matrix data (UtilMatrix.Data); the sums
// run in the same index order as the At-based formulation, so the
// factors are bit-identical to it.
//
//mc:allocfree fills pre-sized slices
func lambdas(d []float64, k int, lambda []float64, ok []bool) {
	lambda[0], ok[0] = 0, true
	prod := 1.0
	valid := true
	for j := 2; j <= k; j++ {
		if !valid {
			lambda[j-1], ok[j-1] = math.NaN(), false
			continue
		}
		prod *= 1 - lambda[j-2]
		if prod <= Eps {
			valid = false
			lambda[j-1], ok[j-1] = math.NaN(), false
			continue
		}
		var num float64
		// Column j-2, rows j..K: strength-reduced to one index += k per
		// step; additions run in the same row order as the x loop.
		for idx := (j-1)*k + (j - 2); idx < k*k; idx += k {
			num += d[idx]
		}
		// Eq. 6 multiplied through by P = prod: the quotient
		// (num/P) / (1 - U_{j-1}(j-1)/P) equals num / (P - U_{j-1}(j-1)),
		// computed with a single division; the denominator-validity test
		// 1 - U/P <= Eps becomes P - U <= Eps*P (P > 0 past the guard).
		rem := prod - d[(j-2)*k+(j-2)]
		if rem <= Eps*prod {
			valid = false
			lambda[j-1], ok[j-1] = math.NaN(), false
			continue
		}
		l := num / rem
		if l < 0 || l >= 1 {
			valid = false
			lambda[j-1], ok[j-1] = l, false
			continue
		}
		lambda[j-1], ok[j-1] = l, true
	}
}

// VDFactor returns the relative-deadline scaling factor applied to a
// task of criticality crit while its core operates at mode level mode:
// the cumulative product prod_{x=mode+1}^{crit} lambda_x. Tasks at or
// below the current mode (crit <= mode) run with their full deadlines
// (factor 1); in AMC they are dropped anyway once mode exceeds their
// level.
//
// For dual-criticality systems at mode 1 this reduces to the classical
// EDF-VD factor x = U_2(1)/(1 - U_1(1)).
//
//mc:allocfree cumulative product
func VDFactor(lambda []float64, mode, crit int) float64 {
	if crit <= mode {
		return 1
	}
	f := 1.0
	for x := mode + 1; x <= crit; x++ {
		f *= lambda[x-1]
	}
	return f
}

//
//mc:allocfree amortized: reallocates only on growth
func resize(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

//
//mc:allocfree amortized: reallocates only on growth
func resizeBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
