package edfvd

import (
	"math"
	"testing"
)

// TestAddDeltaHandComputed pins the O(1)-per-level Add delta against
// hand-computed Theorem-1 terms. All inputs are exact binary fractions,
// so every cached sum must match the hand values bit for bit — no
// tolerance. The sequence covers one task per criticality level on a
// K = 4 core, checking after each Add exactly which sums move and by
// how much:
//
//	own[j-1]     = U_j(j)                  (diagonal)
//	ownSum       = sum_j U_j(j)            (Eq. 4 load)
//	ownTail[i-1] = sum_{x=i}^{K-1} U_x(x)  (mu prefix)
//	colTail[c-1] = sum_{x=c+1}^{K} U_x(c)  (lambda numerators)
//	ukk1         = U_K(K-1)                (second min-term input)
func TestAddDeltaHandComputed(t *testing.T) {
	var s State
	s.Reset(4)

	check := func(step string, own, ownTail, colTail []float64, ownSum, ukk1 float64, n int) {
		t.Helper()
		for j, want := range own {
			if s.own[j] != want {
				t.Errorf("%s: own[%d] = %v, want %v", step, j, s.own[j], want)
			}
		}
		for i, want := range ownTail {
			if s.ownTail[i] != want {
				t.Errorf("%s: ownTail[%d] = %v, want %v", step, i, s.ownTail[i], want)
			}
		}
		for c, want := range colTail {
			if s.colTail[c] != want {
				t.Errorf("%s: colTail[%d] = %v, want %v", step, c, s.colTail[c], want)
			}
		}
		if s.ownSum != ownSum {
			t.Errorf("%s: ownSum = %v, want %v", step, s.ownSum, ownSum)
		}
		if s.OwnLoad() != ownSum {
			t.Errorf("%s: OwnLoad() = %v, want %v", step, s.OwnLoad(), ownSum)
		}
		if s.ukk1 != ukk1 {
			t.Errorf("%s: ukk1 = %v, want %v", step, s.ukk1, ukk1)
		}
		if s.Len() != n {
			t.Errorf("%s: Len() = %d, want %d", step, s.Len(), n)
		}
	}

	// Task A, crit 4, urow = (1/8, 1/4, 3/8, 1/2): only the diagonal
	// entry U_4(4), the three lambda columns and U_4(3) move; the mu
	// prefix (levels 1..3) is untouched by a level-4 task.
	s.Add(4, []float64{0.125, 0.25, 0.375, 0.5})
	check("A(crit4)",
		[]float64{0, 0, 0, 0.5},
		[]float64{0, 0, 0},
		[]float64{0.125, 0.25, 0.375},
		0.5, 0.375, 1)

	// Task B, crit 2, urow = (1/16, 1/8): U_2(2) and the tails i <= 2
	// gain 1/8, column 1 gains the level-1 entry 1/16; the min-term
	// inputs stay put.
	s.Add(2, []float64{0.0625, 0.125})
	check("B(crit2)",
		[]float64{0, 0.125, 0, 0.5},
		[]float64{0.125, 0.125, 0},
		[]float64{0.1875, 0.25, 0.375},
		0.625, 0.375, 2)

	// Task C, crit 1, urow = (1/4): only U_1(1) and the first tail.
	s.Add(1, []float64{0.25})
	check("C(crit1)",
		[]float64{0.25, 0.125, 0, 0.5},
		[]float64{0.375, 0.125, 0},
		[]float64{0.1875, 0.25, 0.375},
		0.875, 0.375, 3)

	// Task D, crit 3, urow = (1/32, 1/16, 1/8): U_3(3), all three
	// tails, columns 1 and 2.
	s.Add(3, []float64{0.03125, 0.0625, 0.125})
	check("D(crit3)",
		[]float64{0.25, 0.125, 0.125, 0.5},
		[]float64{0.5, 0.25, 0.125},
		[]float64{0.21875, 0.3125, 0.375},
		1.0, 0.375, 4)

	// Committed min term (Eq. 5): min{U_4(4), U_4(3)/(1 - U_4(4))} =
	// min{1/2, 3/8 / 1/2} = 1/2, computed through the scalar cache.
	if s.mtOK {
		t.Error("min-term cache valid before any committed query")
	}
	if mt := s.minTermWith(1, []float64{0.25}); mt != 0.5 {
		t.Errorf("committed min term = %v, want 0.5", mt)
	}
	if !s.mtOK || s.mtVal != 0.5 {
		t.Errorf("min-term cache after query: (%v, %v), want (0.5, true)", s.mtVal, s.mtOK)
	}
	// A virtual level-K add bypasses the cache and folds the
	// candidate's row into both inputs: min{1/2 + 1/4, (3/8 + 1/8) /
	// (1 - 3/4)} = min{3/4, 2} = 3/4.
	if mt := s.minTermWith(4, []float64{0.0625, 0.125, 0.125, 0.25}); mt != 0.75 {
		t.Errorf("virtual level-K min term = %v, want 0.75", mt)
	}
	// A further level-K Add must invalidate the cache.
	s.Add(4, []float64{0, 0, 0, 0.0625})
	if s.mtOK {
		t.Error("min-term cache survived a level-K Add")
	}
}

// TestAdd4MatchesGenericLoops is the differential check behind the
// K = 4 unrolled Add: on exhaustive small rows, add4 (dispatched
// automatically for K = 4) must leave bitwise the state of the generic
// per-level loops, here replayed by hand on a K = 4 shadow whose
// dispatch is bypassed via direct field arithmetic.
func TestAdd4MatchesGenericLoops(t *testing.T) {
	rows := [][]float64{
		{0.11, 0.22, 0.33, 0.44},
		{0.07, 0.07, 0.5, 0.625},
		{0.3, 0.31, 0.32, 0.33},
	}
	for crit := 1; crit <= 4; crit++ {
		var got State
		got.Reset(4)
		// Shadow accumulators replicating Add's generic loops.
		own := make([]float64, 4)
		ownTail := make([]float64, 3)
		colTail := make([]float64, 3)
		ownSum, ukk1 := 0.0, 0.0
		for _, urow := range rows {
			got.Add(crit, urow)
			u := urow[crit-1]
			own[crit-1] += u
			ownSum += u
			if crit <= 3 {
				for i := 0; i < crit; i++ {
					ownTail[i] += u
				}
			}
			for c := 0; c < crit-1; c++ {
				colTail[c] += urow[c]
			}
			if crit == 4 {
				ukk1 += urow[2]
			}
		}
		for j := range own {
			if got.own[j] != own[j] {
				t.Errorf("crit %d: own[%d] = %v, generic %v", crit, j, got.own[j], own[j])
			}
		}
		for i := range ownTail {
			if got.ownTail[i] != ownTail[i] {
				t.Errorf("crit %d: ownTail[%d] = %v, generic %v", crit, i, got.ownTail[i], ownTail[i])
			}
		}
		for c := range colTail {
			if got.colTail[c] != colTail[c] {
				t.Errorf("crit %d: colTail[%d] = %v, generic %v", crit, c, got.colTail[c], colTail[c])
			}
		}
		if got.ownSum != ownSum || got.ukk1 != ukk1 {
			t.Errorf("crit %d: (ownSum, ukk1) = (%v, %v), generic (%v, %v)",
				crit, got.ownSum, got.ukk1, ownSum, ukk1)
		}
	}
}

// TestCopyFromRestoresBitwise pins the snapshot/restore primitive the
// exact-undo contract rests on: a CopyFrom-restored state answers
// every query bitwise like the original, and restoring a pre-Add
// snapshot leaves no one-ulp residue in any sum — unlike an arithmetic
// subtraction, which the values below are chosen to defeat (0.1 and
// 0.3 are not exactly representable).
func TestCopyFromRestoresBitwise(t *testing.T) {
	var s, snap State
	s.Reset(4)
	s.Add(4, []float64{0.1, 0.2, 0.25, 0.3})
	s.Add(2, []float64{0.1, 0.3})
	snap.CopyFrom(&s)

	s.Add(3, []float64{0.1, 0.2, 0.3}) // the delta to undo
	s.CopyFrom(&snap)

	if s.ownSum != snap.ownSum || s.ukk1 != snap.ukk1 || s.n != snap.n {
		t.Fatalf("restored scalars (%v,%v,%d) differ from snapshot (%v,%v,%d)",
			s.ownSum, s.ukk1, s.n, snap.ownSum, snap.ukk1, snap.n)
	}
	for j := range snap.own {
		if s.own[j] != snap.own[j] {
			t.Errorf("own[%d]: restored %v, snapshot %v", j, s.own[j], snap.own[j])
		}
	}
	// The arithmetic undo would differ: (x + 0.3) - 0.3 != x for x =
	// the accumulated own[2]. Demonstrate the residue the contract
	// forbids, confirming the test could fail.
	x := snap.own[2]
	if (x+0.3)-0.3 == x {
		t.Skip("platform adds happened to round cleanly; residue demo inconclusive")
	}
	var ev1, ev2 ProbeEval
	s.Eval(&ev1)
	snap.Eval(&ev2)
	if ev1 != ev2 {
		t.Fatalf("restored Eval %+v differs from snapshot Eval %+v", ev1, ev2)
	}
	if math.IsNaN(ev1.CoreUtil) {
		t.Fatal("Eval produced NaN on a feasible hand set")
	}
}
