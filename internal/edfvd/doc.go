// Package edfvd implements the uniprocessor schedulability analysis of
// the EDF-VD (EDF with Virtual Deadlines) scheduler for mixed-criticality
// task systems, as used by Han et al. (ICPP 2016):
//
//   - the pessimistic sufficient condition sum_k U_k(k) <= 1 (Eq. 4),
//     under which plain EDF suffices;
//   - the virtual-deadline reduction factors lambda_j of Baruah et al.
//     (ESA 2011), Eq. 6;
//   - the improved multi-level sufficient conditions of Theorem 1
//     (Eq. 5), one condition per level k = 1..K-1, of which at least one
//     must hold;
//   - the dual-criticality specialization (Eq. 7);
//   - the derived quantities: available utilization A(k) = theta(k) -
//     mu(k) (Eq. 8) and the core utilization U^Psi (Eq. 9) that CA-TPA
//     minimizes when placing tasks.
//
// All functions operate on an mc.UtilMatrix, the per-core incremental
// utilization accounting structure, so that the probe loop of CA-TPA
// costs O(K^2) per (task, core) pair.
package edfvd
