package edfvd

import (
	"math"
	"math/rand"
	"testing"

	"catpa/internal/mc"
)

// The virtual probe screens promise verdicts identical to physically
// adding the candidate row and running the full analysis. These tests
// pin that contract:
//
//   - FeasibleProbed must match the post-add Analyze verdict exactly
//     (it is an equivalence, not a one-sided screen);
//   - SimpleFeasibleProbed acceptance implies feasibility;
//   - FastInfeasibleProbed rejection implies infeasibility;
//   - UtilFloorProbed never exceeds the post-add core utilization
//     under either Eq. 9 reading;
//   - the screens leave the matrix bit-identical (they never mutate).

// checkProbedScreens runs every screen for the probe task against the
// ground truth of a physical add + Analyze on a throwaway clone.
func checkProbedScreens(t *testing.T, m *mc.UtilMatrix, probe *mc.Task) {
	t.Helper()
	k := m.K()
	row := make([]float64, k)
	probe.UtilRow(k, row)
	urow := row[:probe.Crit]

	before := append([]float64(nil), m.Data()...)
	gotFeasible := FeasibleProbed(m.Data(), k, probe.Crit, urow)
	gotSimple := SimpleFeasibleProbed(m.Data(), k, probe.Crit, urow)
	gotFast := k >= 2 && FastInfeasibleProbed(m.Data(), k, probe.Crit, urow)
	gotFloor := UtilFloorProbed(m.Data(), k, probe.Crit, urow)
	for i, v := range m.Data() {
		if math.Float64bits(v) != math.Float64bits(before[i]) {
			t.Fatalf("probed screens mutated the matrix at %d: %v -> %v", i, before[i], v)
		}
	}

	real := m.Clone()
	real.Add(probe)
	r := Analyze(real)

	if gotFeasible != r.Feasible() {
		t.Fatalf("FeasibleProbed = %v, post-add Analyze = %v (crit %d)\nmatrix:\n%s",
			gotFeasible, r.Feasible(), probe.Crit, real)
	}
	if gotSimple && !r.Feasible() {
		t.Fatalf("SimpleFeasibleProbed accepts an infeasible subset\nmatrix:\n%s", real)
	}
	if gotFast && r.Feasible() {
		t.Fatalf("FastInfeasibleProbed rejects a feasible subset\nmatrix:\n%s", real)
	}
	if r.Feasible() && k >= 2 {
		if gotFloor > r.CoreUtil || gotFloor > r.CoreUtilWorst {
			t.Fatalf("UtilFloorProbed = %v exceeds CoreUtil %v / CoreUtilWorst %v\nmatrix:\n%s",
				gotFloor, r.CoreUtil, r.CoreUtilWorst, real)
		}
	}
}

// randTask draws a valid task biased toward the interesting boundary
// region (subsets that are neither trivially light nor hopeless).
func randTask(rng *rand.Rand, id, maxK int) mc.Task {
	period := float64(1 + rng.Intn(2000))
	crit := 1 + rng.Intn(maxK)
	u1 := 0.02 + 0.6*rng.Float64()
	w := make([]float64, crit)
	w[0] = u1 * period
	growth := 1 + 2*rng.Float64()
	for j := 1; j < crit; j++ {
		w[j] = math.Min(w[j-1]*growth, period)
	}
	return mc.MustTask(id, "", period, w...)
}

// TestProbedScreensMatchAnalysis sweeps K = 1..6 with random resident
// subsets and probe tasks, comparing every screen against the physical
// add-and-analyze ground truth.
func TestProbedScreensMatchAnalysis(t *testing.T) {
	rng := rand.New(rand.NewSource(20160816))
	for k := 1; k <= 6; k++ {
		for trial := 0; trial < 300; trial++ {
			m := mc.NewUtilMatrix(k)
			n := rng.Intn(6)
			for i := 0; i < n; i++ {
				tk := randTask(rng, i+1, k)
				m.Add(&tk)
			}
			probe := randTask(rng, n+1, k)
			checkProbedScreens(t, m, &probe)
		}
	}
}

// FuzzProbedScreens drives the same contract from fuzz-decoded task
// sets: the last decoded task is the probe, the rest are resident.
func FuzzProbedScreens(f *testing.F) {
	f.Add(tableISeed())
	f.Add(encodeTask(1000, 999, 4, 128))
	f.Add(append(encodeTask(200, 600, 2, 32), encodeTask(200, 400, 1, 0)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		const k = 4
		ts := decodeTaskSet(t, data, k)
		if ts == nil {
			t.Skip("not enough bytes for one task")
		}
		n := ts.Len()
		m := mc.NewUtilMatrix(k)
		for i := 0; i < n-1; i++ {
			m.Add(&ts.Tasks[i])
		}
		checkProbedScreens(t, m, &ts.Tasks[n-1])
	})
}
