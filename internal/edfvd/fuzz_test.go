package edfvd

import (
	"math"
	"testing"

	"catpa/internal/mc"
	"catpa/internal/paperexample"
)

// The fuzzers below feed arbitrary (but always valid) task sets into
// the Theorem-1 analysis and check structural invariants that must
// hold for every input, not just the hand-picked regression cases:
//
//   - FuzzTheorem1Feasible: whenever Analyze declares condition k
//     feasible, every lambda_j it relied on (j <= k) is well defined
//     and in [0, 1), the bookkeeping identities A(k) = theta(k) - mu(k)
//     hold, and the Eq. 9 core utilization lands in [0, 1].
//   - FuzzDualAgreement: on K = 2 the general Theorem-1 path must agree
//     exactly with the closed-form Eq. 7 test DualFeasible, and Eq. 7
//     acceptance must imply ClassicDualFeasible (Baruah 2012).
//
// Task sets are decoded from the raw fuzz bytes, 6 bytes per task:
//
//	byte 0..1  period    1 + (uint16 % 2000)        (Table IV upper end)
//	byte 2..3  u_i(1)    (1 + uint16 % 999) / 1000  in (0, 1)
//	byte 4     crit      1 + (byte % maxK)
//	byte 5     growth    WCET factor 1 + (byte % 129)/64  in [1, 3]
//
// Higher-level WCETs grow geometrically and are capped at the period,
// so every decoded task passes mc.Task.Validate by construction.

// decodeTaskSet turns fuzz bytes into a valid task set with
// criticality levels in 1..maxK, or nil when data is too short.
func decodeTaskSet(t *testing.T, data []byte, maxK int) *mc.TaskSet {
	t.Helper()
	const bytesPerTask = 6
	n := len(data) / bytesPerTask
	if n == 0 {
		return nil
	}
	if n > 48 {
		n = 48 // keep each analysis cheap; more tasks add no coverage
	}
	ts := mc.NewTaskSetCap(n)
	for i := 0; i < n; i++ {
		b := data[i*bytesPerTask:]
		p16 := uint16(b[0]) | uint16(b[1])<<8
		u16 := uint16(b[2]) | uint16(b[3])<<8
		period := float64(1 + p16%2000)
		u1 := float64(1+u16%999) / 1000
		crit := 1 + int(b[4])%maxK
		growth := 1 + float64(b[5]%129)/64
		w := make([]float64, crit)
		w[0] = u1 * period
		for k := 1; k < crit; k++ {
			w[k] = math.Min(w[k-1]*growth, period)
		}
		ts.Tasks = append(ts.Tasks, mc.MustTask(i+1, "", period, w...))
	}
	if err := ts.Validate(); err != nil {
		t.Fatalf("decoder produced invalid task set: %v", err)
	}
	return ts
}

// encodeTask is the inverse helper used to build seed corpora; the
// permille and growth64 values quantize the intended utilizations.
func encodeTask(period uint16, u1Permille uint16, crit byte, growth64 byte) []byte {
	p16 := period - 1 // period = 1 + p16 % 2000 for period in 1..2000
	u16 := u1Permille - 1
	return []byte{
		byte(p16), byte(p16 >> 8),
		byte(u16), byte(u16 >> 8),
		crit - 1,
		growth64,
	}
}

// tableISeed approximates the reconstructed Table-I instance of
// paperexample (period 1000; tau2 and tau4 high-criticality) in the
// decoder's quantized encoding.
func tableISeed() []byte {
	var data []byte
	// u2(1) = 0.26*(1-0.326) ~ 0.175; 0.326/0.175 ~ 1.86 -> growth 55/64.
	// u4: 0.633/0.339 ~ 1.87 -> growth 56/64.
	data = append(data, encodeTask(1000, 372, 1, 0)...)
	data = append(data, encodeTask(1000, 175, 2, 55)...)
	data = append(data, encodeTask(1000, 310, 1, 0)...)
	data = append(data, encodeTask(1000, 339, 2, 56)...)
	data = append(data, encodeTask(1000, 320, 1, 0)...)
	return data
}

// checkReportInvariants asserts every structural property a Report must
// satisfy regardless of input. It is shared by the fuzzers and by the
// deterministic Table-I test.
func checkReportInvariants(t *testing.T, m *mc.UtilMatrix, r *Report) {
	t.Helper()
	k := m.K()
	if r.K != k {
		t.Fatalf("Report.K = %d, matrix K = %d", r.K, k)
	}
	if r.FeasibleK < 0 || r.FeasibleK > k {
		t.Fatalf("FeasibleK = %d out of range [0, %d]", r.FeasibleK, k)
	}
	if k > 1 && r.FeasibleK > k-1 {
		t.Fatalf("FeasibleK = %d exceeds K-1 = %d", r.FeasibleK, k-1)
	}

	if !r.Feasible() {
		if !math.IsInf(r.CoreUtil, 1) || !math.IsInf(r.CoreUtilWorst, 1) {
			t.Fatalf("infeasible report has finite CoreUtil %v / CoreUtilWorst %v",
				r.CoreUtil, r.CoreUtilWorst)
		}
		return
	}

	// Every lambda the holding condition depends on must be well
	// defined and inside [0, 1); lambda_1 is identically zero. (K = 1
	// systems have no virtual deadlines, hence no lambdas to check.)
	if k > 1 {
		for j := 1; j <= r.FeasibleK; j++ {
			if !r.LambdaOK[j-1] {
				t.Fatalf("condition %d holds but lambda_%d flagged invalid", r.FeasibleK, j)
			}
			l := r.Lambda[j-1]
			if math.IsNaN(l) || l < 0 || l >= 1 {
				t.Fatalf("lambda_%d = %v outside [0, 1) despite FeasibleK = %d", j, l, r.FeasibleK)
			}
		}
		if r.Lambda[0] != 0 {
			t.Fatalf("lambda_1 = %v, want 0", r.Lambda[0])
		}
	}

	if k > 1 {
		// Bookkeeping identities for the holding condition.
		cond := r.FeasibleK
		theta, mu, avail := r.Theta[cond-1], r.Mu[cond-1], r.Avail[cond-1]
		if theta <= 0 || theta > 1 {
			t.Fatalf("theta(%d) = %v outside (0, 1]", cond, theta)
		}
		if mu < 0 {
			t.Fatalf("mu(%d) = %v negative", cond, mu)
		}
		if math.Abs(avail-(theta-mu)) > 1e-12 {
			t.Fatalf("A(%d) = %v != theta - mu = %v", cond, avail, theta-mu)
		}
		if avail < -Eps {
			t.Fatalf("condition %d marked feasible with A = %v < -Eps", cond, avail)
		}
		// Conditions below FeasibleK must all have failed.
		for c := 1; c < cond; c++ {
			if r.Avail[c-1] >= -Eps {
				t.Fatalf("condition %d holds (A = %v) but FeasibleK = %d",
					c, r.Avail[c-1], cond)
			}
		}
	}

	// Eq. 9: the utilization of a feasible core lies in [0, 1] (modulo
	// tolerance), and the worst-condition reading can only be larger.
	if r.CoreUtil < -Eps || r.CoreUtil > 1+Eps {
		t.Fatalf("CoreUtil = %v outside [0, 1]", r.CoreUtil)
	}
	if r.CoreUtilWorst < r.CoreUtil-1e-12 || r.CoreUtilWorst > 1+Eps {
		t.Fatalf("CoreUtilWorst = %v inconsistent with CoreUtil = %v",
			r.CoreUtilWorst, r.CoreUtil)
	}

	// Virtual-deadline factors derived from the validated lambdas stay
	// inside [0, 1] for every (mode, crit) pair the factors cover.
	for crit := 1; crit <= r.FeasibleK; crit++ {
		for mode := 1; mode <= crit; mode++ {
			f := VDFactor(r.Lambda, mode, crit)
			if math.IsNaN(f) || f < 0 || f > 1 {
				t.Fatalf("VDFactor(mode=%d, crit=%d) = %v outside [0, 1]", mode, crit, f)
			}
		}
	}
}

// reportsEqual compares two reports bit-for-bit (NaN-aware), proving
// Analyze is deterministic and AnalyzeInto reuse leaves no residue.
func reportsEqual(a, b *Report) bool {
	if a.K != b.K || a.FeasibleK != b.FeasibleK {
		return false
	}
	feq := func(x, y float64) bool {
		return math.Float64bits(x) == math.Float64bits(y)
	}
	if !feq(a.CoreUtil, b.CoreUtil) || !feq(a.CoreUtilWorst, b.CoreUtilWorst) {
		return false
	}
	fs := func(x, y []float64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if !feq(x[i], y[i]) {
				return false
			}
		}
		return true
	}
	if !fs(a.Lambda, b.Lambda) || !fs(a.Mu, b.Mu) || !fs(a.Theta, b.Theta) || !fs(a.Avail, b.Avail) {
		return false
	}
	for i := range a.LambdaOK {
		if a.LambdaOK[i] != b.LambdaOK[i] {
			return false
		}
	}
	return true
}

// FuzzTheorem1Feasible checks the Theorem-1 invariants on arbitrary
// valid task sets with up to four criticality levels.
func FuzzTheorem1Feasible(f *testing.F) {
	f.Add(tableISeed())
	// A K=4 mix exercising the lambda recursion beyond two levels.
	var multi []byte
	multi = append(multi, encodeTask(100, 200, 4, 32)...)
	multi = append(multi, encodeTask(500, 150, 3, 16)...)
	multi = append(multi, encodeTask(2000, 100, 2, 64)...)
	multi = append(multi, encodeTask(50, 250, 1, 0)...)
	f.Add(multi)
	// An overloaded single task (u1 close to 1 with steep growth).
	f.Add(encodeTask(1000, 999, 4, 128))
	f.Fuzz(func(t *testing.T, data []byte) {
		const k = 4
		ts := decodeTaskSet(t, data, k)
		if ts == nil {
			t.Skip("not enough bytes for one task")
		}
		m := mc.MatrixOf(ts, k)
		r := Analyze(m)
		checkReportInvariants(t, m, r)
		if again := Analyze(m); !reportsEqual(r, again) {
			t.Fatal("Analyze is not deterministic")
		}
		// AnalyzeInto must produce identical results when reusing a
		// report that previously held a different (larger) analysis.
		reused := Analyze(mc.MatrixOf(ts, k+2))
		AnalyzeInto(m, reused)
		if !reportsEqual(r, reused) {
			t.Fatal("AnalyzeInto with reused storage diverges from Analyze")
		}
		if r.Feasible() != Feasible(m) {
			t.Fatal("Report.Feasible disagrees with edfvd.Feasible")
		}
	})
}

// FuzzDualAgreement checks that on dual-criticality subsets the general
// Theorem-1 path and the closed-form Eq. 7 test accept exactly the same
// sets, and that Eq. 7 acceptance implies the classic Baruah-2012 test.
func FuzzDualAgreement(f *testing.F) {
	f.Add(tableISeed())
	f.Add(encodeTask(1000, 500, 2, 64))
	f.Add(append(encodeTask(200, 600, 2, 32), encodeTask(200, 400, 1, 0)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		ts := decodeTaskSet(t, data, 2)
		if ts == nil {
			t.Skip("not enough bytes for one task")
		}
		m := mc.MatrixOf(ts, 2)
		general := Feasible(m)
		dual := DualFeasible(m)
		if general != dual {
			t.Fatalf("Theorem-1 path says feasible=%v, Eq. 7 says %v\nmatrix:\n%s",
				general, dual, m)
		}
		if dual && !ClassicDualFeasible(m) {
			t.Fatalf("Eq. 7 accepts but classic Baruah-2012 test rejects\nmatrix:\n%s", m)
		}
		checkReportInvariants(t, m, Analyze(m))
	})
}

// TestTableIExampleInvariants runs the shared invariant checker on the
// exact (unquantized) reconstructed Table-I instance, per core subset
// of the paper's final CA-TPA mapping and on the aggregate set.
func TestTableIExampleInvariants(t *testing.T) {
	ts := paperexample.TaskSet()
	checkReportInvariants(t, mc.MatrixOf(ts, paperexample.Levels),
		Analyze(mc.MatrixOf(ts, paperexample.Levels)))

	subsets := make(map[int]*mc.TaskSet)
	for id, core := range paperexample.CATPAMapping {
		sub, ok := subsets[core]
		if !ok {
			sub = mc.NewTaskSetCap(3)
			subsets[core] = sub
		}
		for i := range ts.Tasks {
			if ts.Tasks[i].ID == id {
				sub.Tasks = append(sub.Tasks, ts.Tasks[i].Clone())
			}
		}
	}
	for core, sub := range subsets {
		m := mc.MatrixOf(sub, paperexample.Levels)
		r := Analyze(m)
		if !r.Feasible() {
			t.Errorf("core %d of the Table-III mapping is infeasible", core)
		}
		checkReportInvariants(t, m, r)
		if Feasible(m) != DualFeasible(m) {
			t.Errorf("core %d: Theorem-1 and Eq. 7 disagree", core)
		}
	}
}
