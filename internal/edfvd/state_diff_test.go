package edfvd

import (
	"math"
	"math/rand"
	"testing"

	"catpa/internal/mc"
)

// The State differential wall. Two layers, with different strictness:
//
//   - State vs State must be bitwise: a probed query (EvalWith,
//     ProbeBoundedWith) must leave exactly the readings the committed
//     query reports after the corresponding Add, and the specialized
//     K = 4 paths must be indistinguishable from the generic scan.
//     This is the Backend delta contract's bit-identity invariant at
//     the State seam.
//   - State vs the matrix-based probe screens (FeasibleProbed and
//     friends) must agree on every verdict and on every reading up to
//     accumulation order: the two representations sum the same
//     utilizations along different association orders, so floats are
//     compared with a tolerance, verdicts exactly.

// approxEq is the cross-representation float comparison: equal up to
// accumulation-order rounding, with infinities matched exactly.
func approxEq(a, b float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	diff := math.Abs(a - b)
	return diff <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

// buildPair accumulates the same random subset into a State (delta
// adds) and a UtilMatrix (the probe screens' representation).
func buildPair(rng *rand.Rand, k, n int) (*State, *mc.UtilMatrix) {
	var s State
	s.Reset(k)
	m := mc.NewUtilMatrix(k)
	row := make([]float64, k)
	for i := 0; i < n; i++ {
		tk := randTask(rng, i+1, k)
		tk.UtilRow(k, row)
		s.Add(tk.Crit, row[:tk.Crit])
		m.Add(&tk)
	}
	return &s, m
}

// TestStateQueriesMatchProbedScreens sweeps K = 1..6 with random
// resident subsets and candidates, comparing every State query against
// the matrix-based probe screens and the post-add Analyze ground
// truth.
func TestStateQueriesMatchProbedScreens(t *testing.T) {
	rng := rand.New(rand.NewSource(20260809))
	for k := 1; k <= 6; k++ {
		for trial := 0; trial < 250; trial++ {
			s, m := buildPair(rng, k, rng.Intn(6))
			probe := randTask(rng, 99, k)
			// State queries take the full K-length row; the matrix
			// screens take the crit-length prefix.
			row := make([]float64, k)
			probe.UtilRow(k, row)
			prefix := row[:probe.Crit]
			crit := probe.Crit
			ctx := func(what string) string {
				return what + " (k=" + itoa(k) + " trial=" + itoa(trial) + " crit=" + itoa(crit) + ")"
			}

			d := m.Data()
			if got, want := s.FeasibleWith(crit, row), FeasibleProbed(d, k, crit, prefix); got != want {
				t.Fatal(ctx("FeasibleWith"), got, "probed", want)
			}
			if got, want := s.SimpleFeasibleWith(crit, row), SimpleFeasibleProbed(d, k, crit, prefix); got != want {
				t.Fatal(ctx("SimpleFeasibleWith"), got, "probed", want)
			}
			if k >= 2 {
				if got, want := s.FastInfeasibleWith(crit, row), FastInfeasibleProbed(d, k, crit, prefix); got != want {
					t.Fatal(ctx("FastInfeasibleWith"), got, "probed", want)
				}
				if got, want := s.UtilFloorWith(crit, row), UtilFloorProbed(d, k, crit, prefix); !approxEq(got, want) {
					t.Fatal(ctx("UtilFloorWith"), got, "probed", want)
				}
			}

			// EvalWith vs the post-add Analyze ground truth.
			var ev ProbeEval
			s.EvalWith(crit, row, &ev)
			real := m.Clone()
			real.Add(&probe)
			r := Analyze(real)
			if (ev.FeasibleK > 0) != r.Feasible() {
				t.Fatal(ctx("EvalWith feasibility"), ev.FeasibleK, "Analyze", r.FeasibleK)
			}
			if ev.FeasibleK != r.FeasibleK {
				t.Fatal(ctx("EvalWith FeasibleK"), ev.FeasibleK, "Analyze", r.FeasibleK)
			}
			if !approxEq(ev.CoreUtil, r.CoreUtil) || !approxEq(ev.CoreUtilWorst, r.CoreUtilWorst) {
				t.Fatal(ctx("EvalWith readings"), ev.CoreUtil, ev.CoreUtilWorst,
					"Analyze", r.CoreUtil, r.CoreUtilWorst)
			}
		}
	}
}

// TestStateProbeCommitBitIdentity pins the delta contract at the State
// seam: the probed readings of a candidate must be bitwise the
// committed readings after Add — even though for K = 4 the probe runs
// the unrolled evalWith4 while the committed query runs the generic
// scan. Any elided multiply or reordered operation in the specialized
// paths would surface here as a one-ulp mismatch.
func TestStateProbeCommitBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for k := 1; k <= 6; k++ {
		for trial := 0; trial < 250; trial++ {
			s, _ := buildPair(rng, k, rng.Intn(6))
			probe := randTask(rng, 99, k)
			row := make([]float64, k)
			probe.UtilRow(k, row)

			var probed ProbeEval
			s.EvalWith(probe.Crit, row, &probed)
			feasible := s.FeasibleWith(probe.Crit, row)
			if feasible != (probed.FeasibleK > 0) {
				t.Fatalf("k=%d trial=%d: FeasibleWith %v, EvalWith FeasibleK %d",
					k, trial, feasible, probed.FeasibleK)
			}

			var committed State
			committed.CopyFrom(s)
			committed.Add(probe.Crit, row[:probe.Crit])
			var ev ProbeEval
			committed.Eval(&ev)
			if ev != probed {
				t.Fatalf("k=%d trial=%d crit=%d: probed %+v, committed %+v",
					k, trial, probe.Crit, probed, ev)
			}

			// The committed Report's scalar readings come from the same
			// sums, bitwise.
			var rep Report
			committed.ReportInto(&rep)
			if rep.FeasibleK != ev.FeasibleK || rep.CoreUtil != ev.CoreUtil || rep.CoreUtilWorst != ev.CoreUtilWorst {
				t.Fatalf("k=%d trial=%d: ReportInto (%d,%v,%v), Eval (%d,%v,%v)",
					k, trial, rep.FeasibleK, rep.CoreUtil, rep.CoreUtilWorst,
					ev.FeasibleK, ev.CoreUtil, ev.CoreUtilWorst)
			}
			if committed.K() != k || committed.Len() != s.Len()+1 {
				t.Fatalf("k=%d trial=%d: committed dims (%d,%d), want (%d,%d)",
					k, trial, committed.K(), committed.Len(), k, s.Len()+1)
			}
		}
	}
}

// TestProbeBoundedMatchesFloorThenEval pins the fused probe against
// its unfused reference: ProbeBoundedWith(base, margin) must return
// false exactly when the UtilFloorWith prune would have fired, and on
// true must fill bitwise the readings EvalWith fills — for margins
// from +Inf (no winner yet) down to values straddling the floor.
func TestProbeBoundedMatchesFloorThenEval(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for k := 1; k <= 6; k++ {
		for trial := 0; trial < 200; trial++ {
			s, _ := buildPair(rng, k, rng.Intn(6))
			probe := randTask(rng, 99, k)
			row := make([]float64, k)
			probe.UtilRow(k, row)
			base := rng.Float64()

			floor := s.UtilFloorWith(probe.Crit, row)
			margins := []float64{math.Inf(1), floor - base + 1e-6, floor - base, floor - base - 1e-6, 0}
			for _, margin := range margins {
				var ev ProbeEval
				ok := s.ProbeBoundedWith(probe.Crit, row, base, margin, &ev)
				wantOk := !(k >= 2 && floor-base >= margin)
				if ok != wantOk {
					t.Fatalf("k=%d trial=%d margin=%v: ProbeBoundedWith %v, floor reference %v (floor=%v base=%v)",
						k, trial, margin, ok, wantOk, floor, base)
				}
				if !ok {
					continue
				}
				var ref ProbeEval
				s.EvalWith(probe.Crit, row, &ref)
				if ev != ref {
					t.Fatalf("k=%d trial=%d margin=%v: fused %+v, EvalWith %+v", k, trial, margin, ev, ref)
				}
			}
		}
	}
}

// TestFastInfeasibleMatrix covers the committed-matrix overload screen:
// reject iff the own-level residual plus the Eq. 5 min term overflows.
func TestFastInfeasibleMatrix(t *testing.T) {
	light := mc.NewUtilMatrix(3)
	tk := mc.MustTask(1, "", 10, 1, 2, 3)
	light.Add(&tk)
	if FastInfeasible(light) {
		t.Error("FastInfeasible rejects a light subset")
	}
	heavy := mc.NewUtilMatrix(3)
	for i := 0; i < 4; i++ {
		hk := mc.MustTask(i+1, "", 10, 4, 5, 6)
		heavy.Add(&hk)
	}
	if !FastInfeasible(heavy) {
		t.Error("FastInfeasible accepts a grossly overloaded subset")
	}
	if Feasible(heavy) {
		t.Error("Feasible accepts a grossly overloaded subset")
	}
}

// itoa avoids pulling strconv into the hot-loop failure messages.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
