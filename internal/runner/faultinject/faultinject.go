// Package faultinject is the deterministic fault-injection harness for
// the fault-tolerant runner. It implements the experiments.SetHook
// interface with scripted panics and stalls addressed by (point, set),
// plus a torn-checkpoint writer that simulates a crash in the middle
// of a journal flush. Nothing in this package is reachable from a
// production code path: injection only happens when a test explicitly
// wires a hook into runner.Options.
package faultinject

import (
	"fmt"
	"sync"
	"time"
)

// SetKey addresses one task-set evaluation within a sweep.
type SetKey struct {
	Point, Set int
}

// Faults is a scripted experiments.SetHook. Configure it with PanicAt
// and StallAt before the run; the maps are read-only afterwards, so
// concurrent workers need no locking on the script itself. Firing
// counts are tracked under a mutex for test assertions.
type Faults struct {
	panics map[SetKey]string
	stalls map[SetKey]time.Duration

	mu    sync.Mutex
	fired map[SetKey]int
}

// New returns an empty fault script.
func New() *Faults {
	return &Faults{
		panics: make(map[SetKey]string),
		stalls: make(map[SetKey]time.Duration),
		fired:  make(map[SetKey]int),
	}
}

// PanicAt schedules a panic with the given message when the worker
// reaches (point, set). Returns the receiver for chaining.
func (f *Faults) PanicAt(point, set int, msg string) *Faults {
	f.panics[SetKey{point, set}] = msg
	return f
}

// StallAt schedules an artificial worker stall of duration d at
// (point, set). Returns the receiver for chaining.
func (f *Faults) StallAt(point, set int, d time.Duration) *Faults {
	f.stalls[SetKey{point, set}] = d
	return f
}

// BeforeSet implements experiments.SetHook: it stalls and/or panics
// according to the script. Deterministic by construction — the same
// (point, set) always receives the same fault.
func (f *Faults) BeforeSet(point, set int) {
	k := SetKey{point, set}
	if d, ok := f.stalls[k]; ok {
		f.note(k)
		time.Sleep(d)
	}
	if msg, ok := f.panics[k]; ok {
		f.note(k)
		panic(fmt.Sprintf("faultinject: %s", msg))
	}
}

func (f *Faults) note(k SetKey) {
	f.mu.Lock()
	f.fired[k]++
	f.mu.Unlock()
}

// Fired returns how many times the fault at (point, set) triggered.
func (f *Faults) Fired(point, set int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired[SetKey{point, set}]
}
