package faultinject

import (
	"errors"
	"os"
)

// ErrTorn is returned by a TornWriter on the scripted call: the
// process is assumed dead at that instant, so the runner must abort
// exactly as it would on a real crash.
var ErrTorn = errors.New("faultinject: torn checkpoint write")

// TornWriter returns a checkpoint write function (runner.Options.
// WriteFile) that delegates to the real atomic writer until the
// tornAt-th call (1-based). That call instead writes only the first
// keep bytes of the payload straight to the destination path — no
// temp file, no rename, no fsync — leaving a torn journal exactly as
// a crash mid-write (or a non-atomic writer) would, and returns
// ErrTorn. A negative keep counts from the end of the payload
// (len(data)+keep), which tears the final journal line regardless of
// the payload size. Calls after the torn one also fail: the simulated
// process is dead.
//
// The returned function is for the runner's sequential per-point
// flush path only; it is not safe for concurrent use.
func TornWriter(atomic func(path string, data []byte) error, tornAt, keep int) func(path string, data []byte) error {
	calls := 0
	return func(path string, data []byte) error {
		calls++
		if calls < tornAt {
			return atomic(path, data)
		}
		if calls > tornAt {
			return ErrTorn
		}
		cut := keep
		if cut < 0 {
			cut += len(data)
		}
		if cut < 0 {
			cut = 0
		}
		if cut > len(data) {
			cut = len(data)
		}
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			return err
		}
		return ErrTorn
	}
}
