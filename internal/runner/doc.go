// Package runner is the fault-tolerant execution layer between the
// mcexp CLI and the experiment harness. It turns a long paper-scale
// sweep (50,000 task sets per point, Figures 1-5) into a batch job
// that survives the three failure classes a production evaluation
// pipeline must isolate:
//
//   - process death (crash, kill, power loss): every completed sweep
//     point is journaled to an append-only, checksummed JSONL
//     checkpoint flushed via atomic temp-write+rename, and a restarted
//     run with the same (figure, seed, sets) identity skips finished
//     points and continues, byte-identical to an uninterrupted run;
//
//   - operator interruption (SIGINT/SIGTERM): cancellation is plumbed
//     through context.Context and honoured at point boundaries — the
//     in-flight point drains so its exact counts are preserved, the
//     checkpoint is already flushed, and the caller can print partial
//     results plus a resume command;
//
//   - data-dependent faults (a panic on one task set): the worker
//     recovers, records the exact (seed, point, setIndex) reproduction
//     triple in a quarantine report, and the sweep completes with that
//     set counted as unschedulable for every scheme, so aggregate
//     totals never silently change.
//
// The fault-injection harness in the faultinject subpackage drives all
// three paths deterministically in tests; production runs never
// construct a hook.
package runner
