package runner

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"catpa/internal/experiments"
	"catpa/internal/partition"
	"catpa/internal/taskgen"
)

// onlineTestSweep returns a small deterministic online sweep; worker
// count pinned for the byte-identical-resume contract.
func onlineTestSweep() *experiments.Sweep {
	return &experiments.Sweep{
		Name:   "onltest",
		Title:  "runner online test sweep",
		Param:  "NSU",
		Values: []float64{1.0, 1.3, 1.6},
		Apply: func(p *experiments.Params, x float64) {
			p.M = 4
			p.K = 2
			p.N = taskgen.IntRange{Lo: 24, Hi: 24}
			p.NSU = x
		},
		Sets:    20,
		Seed:    11,
		Workers: 2,
		Variants: []experiments.Variant{
			{Scheme: partition.CATPA},
			{Scheme: partition.FFD},
		},
		Scenario: &experiments.OnlineScenario{
			Process: taskgen.Poisson{Rate: 0.05, MeanLifetime: 400},
			Horizon: 1000,
			Buckets: 8,
		},
	}
}

// TestVersion1StaticJournalResumesByteIdentical proves the checkpoint
// identity change is invisible to static sweeps: the header of a
// static journal carries no scenario field at all — so a version-1
// journal written before scenarios existed is byte-for-byte what this
// binary writes — and resuming from one reproduces the uninterrupted
// run bit for bit, journal included.
func TestVersion1StaticJournalResumesByteIdentical(t *testing.T) {
	golden := goldenRun(t)
	dir := t.TempDir()

	// Reference journal of a complete run.
	full := filepath.Join(dir, "full.ckpt")
	if _, err := Run(context.Background(), testSweep(), &Options{CheckpointPath: full}); err != nil {
		t.Fatalf("full run: %v", err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	headerLine := strings.SplitN(string(data), "\n", 2)[0]
	if strings.Contains(headerLine, "scenario") {
		t.Fatalf("static journal header mentions scenario — version-1 identity broken:\n%s", headerLine)
	}

	// Interrupt a checkpointed run after point 0, then resume: the
	// journal on disk at resume time is exactly a version-1 static
	// journal (no scenario field anywhere).
	ckpt := filepath.Join(dir, "v1.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = Run(ctx, testSweep(), &Options{
		CheckpointPath: ckpt,
		OnPoint: func(pi int, _ *experiments.Point) {
			if pi == 0 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	partial, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(partial), "scenario") {
		t.Fatal("partial static journal mentions scenario")
	}

	rep, err := Run(context.Background(), testSweep(), &Options{CheckpointPath: ckpt})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if got := rep.Resumed; !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("resumed points %v, want [0]", got)
	}
	if got, want := allCSV(rep.Result), allCSV(golden.Result); got != want {
		t.Error("resume from a version-1 static journal is not byte-identical")
	}
	// The rewritten journal matches the reference complete journal
	// byte for byte (same worker count, same striping, same format).
	resumed, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if string(resumed) != string(data) {
		t.Error("journal rewritten on resume differs from an uninterrupted run's journal")
	}
}

// TestOnlineSweepCheckpointResume extends the byte-identical-resume
// contract to the online scenario: the online cells (ratios, means,
// time-bucketed curves) round-trip through the CRC journal exactly,
// and the header carries the scenario kind.
func TestOnlineSweepCheckpointResume(t *testing.T) {
	golden, err := Run(context.Background(), onlineTestSweep(), nil)
	if err != nil {
		t.Fatalf("golden online run: %v", err)
	}
	ckpt := filepath.Join(t.TempDir(), "onl.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = Run(ctx, onlineTestSweep(), &Options{
		CheckpointPath: ckpt,
		OnPoint: func(pi int, _ *experiments.Point) {
			if pi == 0 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.SplitN(string(data), "\n", 2)[0], `\"scenario\":\"online\"`) &&
		!strings.Contains(strings.SplitN(string(data), "\n", 2)[0], `"scenario":"online"`) {
		t.Fatalf("online journal header does not carry the scenario kind:\n%s", strings.SplitN(string(data), "\n", 2)[0])
	}

	rep, err := Run(context.Background(), onlineTestSweep(), &Options{CheckpointPath: ckpt})
	if err != nil {
		t.Fatalf("resumed online run: %v", err)
	}
	if got := rep.Resumed; !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("resumed points %v, want [0]", got)
	}
	if got, want := allCSV(rep.Result), allCSV(golden.Result); got != want {
		t.Errorf("online resume differs from uninterrupted run:\n got:\n%s\nwant:\n%s", got, want)
	}
	if !reflect.DeepEqual(rep.Result.Points, golden.Result.Points) {
		t.Error("resumed online points differ bitwise from uninterrupted run")
	}
}

// TestScenarioMismatchRefused: a static journal must not resume an
// online run of otherwise identical identity (and vice versa) — their
// cells mean different things.
func TestScenarioMismatchRefused(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "mix.ckpt")
	static := onlineTestSweep()
	static.Scenario = nil
	if _, err := Run(context.Background(), static, &Options{CheckpointPath: ckpt}); err != nil {
		t.Fatalf("static run: %v", err)
	}
	_, err := Run(context.Background(), onlineTestSweep(), &Options{CheckpointPath: ckpt})
	if err == nil || !strings.Contains(err.Error(), "scenario") {
		t.Fatalf("online resume over a static journal: err = %v, want scenario mismatch", err)
	}
}
