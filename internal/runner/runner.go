package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"

	"catpa/internal/experiments"
	"catpa/internal/obs"
)

// Options configures one fault-tolerant sweep execution. The zero
// value (or a nil *Options) runs the sweep without a checkpoint and
// without fault injection.
type Options struct {
	// CheckpointPath names the journal file for this run; empty
	// disables checkpointing (the run is still cancellable and still
	// quarantines panics).
	CheckpointPath string
	// Hook is the fault-injection surface threaded to the worker pool;
	// nil in production. See internal/runner/faultinject.
	Hook experiments.SetHook
	// OnPoint observes every newly computed point after it has been
	// journaled (progress reporting). Points resumed from the
	// checkpoint are not re-announced.
	OnPoint func(point int, p *experiments.Point)
	// WriteFile overrides the atomic checkpoint writer. Tests inject
	// torn writes here; production leaves it nil (WriteFileAtomic).
	WriteFile func(path string, data []byte) error
	// Metrics, when non-nil, instruments the run: the sweep worker pool
	// updates Metrics.Exp, the runner records checkpoint and progress
	// accounting, and every checkpoint flush embeds a registry snapshot
	// as the journal's final line. Construct a fresh Metrics (fresh
	// registry) per Run — on resume the journaled totals are restored
	// into it, so it reports cumulative whole-run numbers.
	Metrics *Metrics
}

// Report is the outcome of a fault-tolerant run. Result is always
// non-nil once Run returns without a setup error, even when the run
// was interrupted — completed points carry their exact aggregates.
type Report struct {
	// Result is the sweep result; points listed in Completed hold
	// exact cells, all others have nil Cells.
	Result *experiments.Result
	// Quarantined lists every panicking task set of the whole run —
	// including sets recorded in resumed points — ordered by
	// (point, set).
	Quarantined []experiments.Quarantine
	// Resumed lists the point indices loaded from the checkpoint
	// instead of recomputed.
	Resumed []int
	// Interrupted reports that the run stopped at a point boundary
	// because the context was cancelled; the checkpoint (when
	// configured) already holds every completed point.
	Interrupted bool
	// CheckpointPath echoes the journal location ("" when disabled).
	CheckpointPath string
	// DroppedLines counts torn or corrupt journal lines discarded
	// while resuming; the affected points were recomputed.
	DroppedLines int

	completed map[int]bool
}

// Completed returns the sorted indices of points with exact results
// (computed or resumed).
func (r *Report) Completed() []int {
	out := make([]int, 0, len(r.completed))
	for pi := range r.completed {
		out = append(out, pi)
	}
	sort.Ints(out)
	return out
}

// Complete reports whether every point of the sweep finished.
func (r *Report) Complete() bool {
	return r.Result != nil && len(r.completed) == len(r.Result.Sweep.Values)
}

// PartialResult returns a result restricted to the completed points:
// a shallow sweep copy whose Values (and Points) keep only completed
// indices, so tables and charts render consistently mid-run. With
// every point complete it is equivalent to Result.
func (r *Report) PartialResult() *experiments.Result {
	done := r.Completed()
	sw := *r.Result.Sweep
	sw.Values = make([]float64, 0, len(done))
	res := &experiments.Result{Sweep: &sw, Quarantined: r.Result.Quarantined}
	for _, pi := range done {
		sw.Values = append(sw.Values, r.Result.Sweep.Values[pi])
		res.Points = append(res.Points, r.Result.Points[pi])
	}
	return res
}

// Run executes the sweep under ctx with checkpoint/resume, graceful
// cancellation and panic quarantine. It returns the report together
// with the first fatal error: a context cancellation surfaces as
// (report, ctx.Err()) with report.Interrupted set, and a failed
// checkpoint flush aborts the run crash-like with the write error —
// in both cases the report still carries every exact completed point.
func Run(ctx context.Context, sw *experiments.Sweep, opts *Options) (*Report, error) {
	if opts == nil {
		opts = &Options{}
	}
	variants := sw.ActiveVariants()
	workers := sw.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	rep := &Report{CheckpointPath: opts.CheckpointPath, completed: make(map[int]bool)}

	met := opts.Metrics
	if met != nil {
		met.workers.Set(float64(workers))
	}

	var ck *Checkpoint
	if opts.CheckpointPath != "" {
		hdr := header{
			Version:  checkpointVersion,
			Kind:     checkpointKind,
			Name:     sw.Name,
			Seed:     sw.Seed,
			Sets:     sw.Sets,
			Workers:  workers,
			Schemes:  variantNames(variants),
			Values:   sw.Values,
			Scenario: sw.ScenarioKind(),
		}
		var err error
		ck, err = openCheckpoint(opts.CheckpointPath, hdr, opts.WriteFile)
		if err != nil {
			return nil, err
		}
		rep.DroppedLines = ck.DroppedLines
		for pi := range sw.Values {
			if _, ok := ck.done(pi); ok {
				rep.Resumed = append(rep.Resumed, pi)
			}
		}
		if met != nil {
			met.restore(ck, rep.Resumed)
			ck.snap = met.Snapshot
		}
	}

	// A checkpoint flush failure must stop the run the way a crash
	// would — completed points stay journaled, nothing after the
	// failure pretends to be durable.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var flushErr error

	cfg := &experiments.RunConfig{
		Hook:    opts.Hook,
		Metrics: metExp(met),
		Skip: func(pi int) bool {
			if ck == nil {
				return false
			}
			_, ok := ck.done(pi)
			return ok
		},
		OnPoint: func(pi int, p *experiments.Point, quar []experiments.Quarantine) {
			// Progress counters move BEFORE the flush so the snapshot
			// embedded in the journal accounts for its own write and
			// the point it persists.
			if met != nil {
				met.pointCurrent.Set(float64(pi))
				met.pointsComputed.Inc()
				if ck != nil && flushErr == nil {
					met.writes.Inc()
				}
			}
			if ck != nil && flushErr == nil {
				rec := &pointRecord{Point: pi, X: p.X, Cells: p.Cells, Quarantined: quar}
				sp := obs.StartSpan(metWriteSeconds(met))
				err := ck.record(rec)
				sp.End()
				if err != nil {
					flushErr = err
					cancel()
					return
				}
			}
			rep.completed[pi] = true
			if opts.OnPoint != nil {
				opts.OnPoint(pi, p)
			}
		},
	}

	res, runErr := sw.RunContext(runCtx, cfg)
	rep.Result = res
	if res == nil {
		// Variant validation failed before any point ran; there is no
		// partial result to splice resumed points into.
		return rep, runErr
	}

	// Splice resumed points (cells and quarantines) into the result.
	for _, pi := range rep.Resumed {
		rec, _ := ck.done(pi)
		res.Points[pi] = experiments.Point{X: rec.X, Cells: rec.Cells}
		rep.completed[pi] = true
		res.Quarantined = append(res.Quarantined, rec.Quarantined...)
	}
	sort.Slice(res.Quarantined, func(i, j int) bool {
		a, b := res.Quarantined[i], res.Quarantined[j]
		if a.Point != b.Point {
			return a.Point < b.Point
		}
		return a.Set < b.Set
	})
	rep.Quarantined = res.Quarantined

	switch {
	case flushErr != nil:
		return rep, fmt.Errorf("runner: checkpoint flush failed: %w", flushErr)
	case runErr != nil:
		if errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded) {
			rep.Interrupted = true
		}
		return rep, runErr
	}
	return rep, nil
}

// variantNames renders the variant list for the checkpoint identity.
// Default-backend variants render as plain scheme names, so journals
// of sweeps without a backend axis keep their historical identity and
// resume across this change without a version bump.
func variantNames(variants []experiments.Variant) []string {
	out := make([]string, len(variants))
	for i, v := range variants {
		out[i] = v.String()
	}
	return out
}
