package runner

import (
	"errors"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path so that a crash at any instant
// leaves either the previous file intact or the new one complete,
// never a truncated hybrid: the bytes go to a unique temp file in the
// same directory, the file is fsynced and closed, and only then
// renamed over path (rename within one directory is atomic on POSIX
// filesystems). The containing directory is fsynced afterwards on a
// best-effort basis so the rename itself survives power loss.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return writeFileAtomic(path, data, perm, nil)
}

// crashFn is the test seam of writeFileAtomic: when non-nil it runs
// before the rename with the temp path, and a returned error aborts
// the write as if the process had died mid-flush. Production callers
// pass nil.
type crashFn func(tmpPath string) error

func writeFileAtomic(path string, data []byte, perm os.FileMode, crash crashFn) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return cleanup(err)
	}
	if err := f.Chmod(perm); err != nil {
		f.Close()
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		return cleanup(err)
	}
	if crash != nil {
		if err := crash(tmp); err != nil {
			return cleanup(err)
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		return cleanup(err)
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory, ignoring filesystems that do not support
// it (the rename is still atomic there; only power-loss durability is
// weakened).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return
	}
}
