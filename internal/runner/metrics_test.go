package runner

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"catpa/internal/experiments"
	"catpa/internal/obs"
	"catpa/internal/partition"
	"catpa/internal/runner/faultinject"
)

// counterTotals extracts the countable (non-timing) counters from a
// snapshot, the comparable core of the metrics/CSV agreement proofs.
func counterTotals(s *obs.Snapshot) map[string]int64 {
	out := make(map[string]int64)
	for name, v := range s.Counters {
		if strings.HasPrefix(name, "sweep.sets.") {
			out[name] = v
		}
	}
	return out
}

// parseSchedCSV recovers the exact per-scheme accept counts from the
// rendered schedulability-ratio CSV: each cell is hits/sets printed
// with full float precision, so round(ratio*sets) is exact (the
// rounding error is below 1e-9*sets, far under one half).
func parseSchedCSV(t *testing.T, csv string, sets int) map[string]int64 {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	header := strings.Split(lines[0], ",")
	accepted := make(map[string]int64)
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		for ci := 1; ci < len(fields); ci++ {
			ratio, err := strconv.ParseFloat(fields[ci], 64)
			if err != nil {
				t.Fatalf("bad CSV cell %q: %v", fields[ci], err)
			}
			accepted[strings.ToLower(header[ci])] += int64(math.Round(ratio * float64(sets)))
		}
	}
	return accepted
}

// TestMetricsAgreeWithCSV proves, for an uninterrupted run, that the
// metrics counters and the CSV output describe the same experiment:
// per scheme, sweep.sets.accepted.<scheme> equals the accept count
// recovered from the rendered schedulability-ratio CSV, and
// accepted + rejected == sweep.sets.total.
func TestMetricsAgreeWithCSV(t *testing.T) {
	sw := testSweep()
	met := NewMetrics(obs.NewRegistry())
	rep, err := Run(context.Background(), sw, &Options{Metrics: met})
	if err != nil {
		t.Fatal(err)
	}

	wantTotal := int64(sw.Sets * len(sw.Values))
	if got := met.Exp.SetsTotal(); got != wantTotal {
		t.Fatalf("sweep.sets.total = %d, want %d", got, wantTotal)
	}
	fromCSV := parseSchedCSV(t, rep.Result.Chart(experiments.SchedRatio).CSV(), sw.Sets)
	for _, s := range partition.Schemes {
		label := experiments.SchemeLabel(s)
		if got, want := met.Exp.Accepted(s), fromCSV[label]; got != want {
			t.Errorf("%s: accepted counter = %d, CSV says %d", label, got, want)
		}
		if met.Exp.Accepted(s)+met.Exp.Rejected(s) != wantTotal {
			t.Errorf("%s: accepted + rejected = %d, want %d",
				label, met.Exp.Accepted(s)+met.Exp.Rejected(s), wantTotal)
		}
	}
	if got := met.Snapshot().Gauges["sweep.workers"]; got != float64(sw.Workers) {
		t.Errorf("sweep.workers gauge = %v, want %d", got, sw.Workers)
	}
}

// TestMetricsCumulativeAcrossKillResume is the tentpole's cross-run
// agreement proof: a run killed at a point boundary and resumed with a
// fresh registry must end with exactly the counters of an
// uninterrupted run — restored from the snapshot embedded in the
// checkpoint journal — and the CSV recovered counts must agree.
func TestMetricsCumulativeAcrossKillResume(t *testing.T) {
	sw := testSweep()
	goldenMet := NewMetrics(obs.NewRegistry())
	if _, err := Run(context.Background(), testSweep(), &Options{Metrics: goldenMet}); err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "testsweep.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	met1 := NewMetrics(obs.NewRegistry())
	_, err := Run(ctx, testSweep(), &Options{
		CheckpointPath: ckpt,
		Metrics:        met1,
		OnPoint: func(pi int, _ *experiments.Point) {
			if pi == 0 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	if got, want := met1.Exp.SetsTotal(), int64(sw.Sets); got != want {
		t.Fatalf("interrupted run counted %d sets, want %d (one point)", got, want)
	}

	// Resume with a FRESH registry: cumulative totals must come back
	// from the journaled snapshot.
	met2 := NewMetrics(obs.NewRegistry())
	rep2, err := Run(context.Background(), testSweep(), &Options{CheckpointPath: ckpt, Metrics: met2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Complete() {
		t.Fatal("resumed run incomplete")
	}

	snapGolden, snapResumed := goldenMet.Snapshot(), met2.Snapshot()
	if gotC := counterTotals(snapResumed); !mapsEqual(gotC, counterTotals(snapGolden)) {
		t.Errorf("resumed counters %v differ from uninterrupted %v", gotC, counterTotals(snapGolden))
	}
	if got := met2.snapMerged.Value(); got != 1 {
		t.Errorf("checkpoint.snapshot.merged = %d, want 1", got)
	}
	if got := met2.pointsResumed.Value(); got != 1 {
		t.Errorf("sweep.points.resumed = %d, want 1", got)
	}
	// Progress counters are cumulative over the run's whole lifetime:
	// the merged snapshot carries the interrupted run's one computed
	// point alongside the two computed after the resume.
	if got := met2.pointsComputed.Value(); got != 3 {
		t.Errorf("sweep.points.computed = %d, want 3 (1 before the kill + 2 after)", got)
	}
	// Timing history also survives: every set of the whole run has one
	// generate observation (the resumed point's came from the snapshot).
	wantTotal := int64(sw.Sets * len(sw.Values))
	if got := snapResumed.Histograms["sweep.stage.generate.seconds"].Count; got != wantTotal {
		t.Errorf("merged generate histogram count = %d, want %d", got, wantTotal)
	}
	fromCSV := parseSchedCSV(t, rep2.Result.Chart(experiments.SchedRatio).CSV(), sw.Sets)
	for _, s := range partition.Schemes {
		if got, want := met2.Exp.Accepted(s), fromCSV[experiments.SchemeLabel(s)]; got != want {
			t.Errorf("%s: resumed accepted counter = %d, CSV says %d", s, got, want)
		}
	}
}

// TestMetricsRebuiltFromPointsWhenSnapshotTorn: tearing the journal's
// final line (always the metrics snapshot) must not cost counting
// accuracy — the countable totals are rebuilt exactly from the
// surviving point records; only the resumed points' timing history is
// lost.
func TestMetricsRebuiltFromPointsWhenSnapshotTorn(t *testing.T) {
	sw := testSweep()
	goldenMet := NewMetrics(obs.NewRegistry())
	if _, err := Run(context.Background(), testSweep(), &Options{Metrics: goldenMet}); err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "testsweep.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := Run(ctx, testSweep(), &Options{
		CheckpointPath: ckpt,
		Metrics:        NewMetrics(obs.NewRegistry()),
		OnPoint: func(pi int, _ *experiments.Point) {
			if pi == 0 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}

	// Tear the tail: chop the final line (the metrics snapshot) in half.
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"metrics"`) {
		t.Fatalf("journal's final line is not the metrics snapshot: %q", last)
	}
	torn := strings.Join(lines[:len(lines)-1], "") + last[:len(last)/2]
	if err := os.WriteFile(ckpt, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	met := NewMetrics(obs.NewRegistry())
	rep, err := Run(context.Background(), testSweep(), &Options{CheckpointPath: ckpt, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatal("resumed run incomplete")
	}
	if got := met.snapRebuilt.Value(); got != 1 {
		t.Errorf("checkpoint.snapshot.rebuilt = %d, want 1", got)
	}
	if got := met.snapMerged.Value(); got != 0 {
		t.Errorf("checkpoint.snapshot.merged = %d, want 0", got)
	}
	if got := met.dropped.Value(); got != 1 {
		t.Errorf("checkpoint.lines.dropped = %d, want 1", got)
	}
	// Counting accuracy is fully recovered from the point records...
	if gotC := counterTotals(met.Snapshot()); !mapsEqual(gotC, counterTotals(goldenMet.Snapshot())) {
		t.Errorf("rebuilt counters %v differ from uninterrupted %v", gotC, counterTotals(goldenMet.Snapshot()))
	}
	// ...while the resumed point's timing observations are gone.
	wantFresh := int64(sw.Sets * 2)
	if got := met.Snapshot().Histograms["sweep.stage.generate.seconds"].Count; got != wantFresh {
		t.Errorf("rebuilt generate histogram count = %d, want %d (recomputed points only)", got, wantFresh)
	}
}

// TestMetricsQuarantineCounters wires the real fault injector through
// the runner and checks the quarantine surface of the metrics.
func TestMetricsQuarantineCounters(t *testing.T) {
	sw := testSweep()
	met := NewMetrics(obs.NewRegistry())
	hook := faultinject.New().PanicAt(1, 7, "boom on set 7")
	_, err := Run(context.Background(), sw, &Options{Metrics: met, Hook: hook})
	if err != nil {
		t.Fatal(err)
	}
	if got := met.Exp.Quarantined(); got != 1 {
		t.Errorf("sweep.sets.quarantined = %d, want 1", got)
	}
	wantTotal := int64(sw.Sets * len(sw.Values))
	for _, s := range partition.Schemes {
		if met.Exp.Accepted(s)+met.Exp.Rejected(s) != wantTotal {
			t.Errorf("%s: accepted + rejected = %d, want %d (quarantined set counted rejected)",
				s, met.Exp.Accepted(s)+met.Exp.Rejected(s), wantTotal)
		}
	}
}

// mapsEqual compares two string->int64 maps.
func mapsEqual(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
