package runner

import (
	"catpa/internal/experiments"
	"catpa/internal/obs"
)

// Metrics is the observability surface of a fault-tolerant run: the
// sweep worker-pool metrics (experiments.SweepMetrics) plus the
// runner's own checkpoint and progress accounting, all in one
// registry. Construct a fresh Metrics (fresh registry) per Run —
// counters only accumulate, and the resume restoration assumes they
// start from zero.
//
// Restoration semantics on resume (see DESIGN.md §10): the journal's
// embedded snapshot — written in the same atomic flush as the point
// records, so never stale relative to them — is merged wholesale
// (counters add, histograms add, gauges skip). If the snapshot is
// missing or was dropped with a torn tail, the countable totals are
// rebuilt exactly from the resumed point records instead and only the
// timing history is lost.
type Metrics struct {
	// Exp is the worker-pool surface threaded into the sweep.
	Exp *experiments.SweepMetrics

	reg *obs.Registry

	writes       *obs.Counter   // checkpoint.writes.total
	writeSeconds *obs.Histogram // checkpoint.write.seconds
	dropped      *obs.Counter   // checkpoint.lines.dropped
	snapMerged   *obs.Counter   // checkpoint.snapshot.merged
	snapRebuilt  *obs.Counter   // checkpoint.snapshot.rebuilt

	pointsComputed *obs.Counter // sweep.points.computed
	pointsResumed  *obs.Counter // sweep.points.resumed
	pointCurrent   *obs.Gauge   // sweep.point.current
	workers        *obs.Gauge   // sweep.workers
}

// NewMetrics registers the full runner + sweep metric set in reg. The
// variant list must match the sweep's (ActiveVariants); empty selects
// the five default-backend schemes.
func NewMetrics(reg *obs.Registry, variants ...experiments.Variant) *Metrics {
	return newMetrics(reg, experiments.NewSweepMetrics(reg, variants...))
}

// NewMetricsFor registers the metric set matching the sweep's scenario:
// NewMetrics' static family always, plus the online family (event and
// admit/shed counters, scenario-time histograms) for online sweeps.
func NewMetricsFor(reg *obs.Registry, sw *experiments.Sweep) *Metrics {
	return newMetrics(reg, experiments.NewSweepMetricsFor(reg, sw))
}

func newMetrics(reg *obs.Registry, exp *experiments.SweepMetrics) *Metrics {
	return &Metrics{
		Exp:            exp,
		reg:            reg,
		writes:         reg.Counter("checkpoint.writes.total"),
		writeSeconds:   reg.Histogram("checkpoint.write.seconds", nil),
		dropped:        reg.Counter("checkpoint.lines.dropped"),
		snapMerged:     reg.Counter("checkpoint.snapshot.merged"),
		snapRebuilt:    reg.Counter("checkpoint.snapshot.rebuilt"),
		pointsComputed: reg.Counter("sweep.points.computed"),
		pointsResumed:  reg.Counter("sweep.points.resumed"),
		pointCurrent:   reg.Gauge("sweep.point.current"),
		workers:        reg.Gauge("sweep.workers"),
	}
}

// Registry returns the backing registry.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// Snapshot captures the current value of every metric.
func (m *Metrics) Snapshot() *obs.Snapshot { return m.reg.Snapshot() }

// SetsDone returns the cumulative number of task-set evaluations
// (including restored totals) — the progress meter's numerator.
func (m *Metrics) SetsDone() int64 { return m.Exp.SetsTotal() }

// metExp returns the sweep-facing metrics surface, nil when
// uninstrumented; metWriteSeconds the flush-duration histogram. Both
// tolerate a nil receiver so Run's hot path stays branch-light.
func metExp(m *Metrics) *experiments.SweepMetrics {
	if m == nil {
		return nil
	}
	return m.Exp
}

func metWriteSeconds(m *Metrics) *obs.Histogram {
	if m == nil {
		return nil
	}
	return m.writeSeconds
}

// restore rebuilds cumulative totals from an opened checkpoint: the
// embedded snapshot when it survived intact, the point records
// otherwise (cells are indexed like the sweep's variant list, which
// the Metrics shares).
func (m *Metrics) restore(ck *Checkpoint, resumed []int) {
	m.dropped.Add(int64(ck.DroppedLines))
	m.pointsResumed.Add(int64(len(resumed)))
	if ck.LoadedSnapshot != nil {
		m.reg.Merge(ck.LoadedSnapshot)
		m.snapMerged.Inc()
		return
	}
	if len(resumed) == 0 {
		return
	}
	for _, pi := range resumed {
		rec, _ := ck.done(pi)
		m.Exp.AddResumedPoint(rec.Cells, len(rec.Quarantined))
	}
	m.snapRebuilt.Inc()
}
