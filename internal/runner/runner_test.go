package runner

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"catpa/internal/experiments"
	"catpa/internal/partition"
	"catpa/internal/runner/faultinject"
	"catpa/internal/taskgen"
)

// testSweep returns a small deterministic three-point sweep. Worker
// count is pinned: the mean metrics are bit-exact only for a fixed
// striping, and the byte-identical-resume tests depend on that.
func testSweep() *experiments.Sweep {
	return &experiments.Sweep{
		Name:   "testsweep",
		Title:  "runner test sweep",
		Param:  "NSU",
		Values: []float64{0.45, 0.6, 0.75},
		Apply: func(p *experiments.Params, x float64) {
			p.M = 4
			p.K = 3
			p.N = taskgen.IntRange{Lo: 20, Hi: 40}
			p.NSU = x
		},
		Sets:    60,
		Seed:    9,
		Workers: 2,
	}
}

// goldenRun executes the sweep uninterrupted, without checkpointing or
// injection — the reference every fault scenario must reproduce.
func goldenRun(t *testing.T) *Report {
	t.Helper()
	rep, err := Run(context.Background(), testSweep(), nil)
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	if !rep.Complete() {
		t.Fatal("golden run incomplete")
	}
	return rep
}

// allCSV renders every chart of a result as one byte string.
func allCSV(res *experiments.Result) string {
	var b strings.Builder
	for _, ch := range res.Charts() {
		b.WriteString(ch.CSV())
		b.WriteByte('\n')
	}
	return b.String()
}

func TestResumeByteIdenticalAfterInterrupt(t *testing.T) {
	golden := goldenRun(t)
	ckpt := filepath.Join(t.TempDir(), "testsweep.ckpt")

	// Interrupt at the first point boundary: cancel fires after point 0
	// has been journaled, so the per-point loop stops before point 1.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rep1, err := Run(ctx, testSweep(), &Options{
		CheckpointPath: ckpt,
		OnPoint: func(pi int, _ *experiments.Point) {
			if pi == 0 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	if !rep1.Interrupted {
		t.Error("interrupted run: Interrupted not set")
	}
	if got := rep1.Completed(); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("interrupted run completed %v, want [0]", got)
	}
	// The partial result renders only the completed point.
	partial := rep1.PartialResult()
	if len(partial.Points) != 1 || len(partial.Sweep.Values) != 1 {
		t.Fatalf("partial result has %d points / %d values, want 1/1", len(partial.Points), len(partial.Sweep.Values))
	}

	// Resume: point 0 loads from the journal, 1 and 2 compute fresh.
	rep2, err := Run(context.Background(), testSweep(), &Options{CheckpointPath: ckpt})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if got := rep2.Resumed; !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("resumed points %v, want [0]", got)
	}
	if !rep2.Complete() {
		t.Fatal("resumed run incomplete")
	}
	if got, want := allCSV(rep2.Result), allCSV(golden.Result); got != want {
		t.Errorf("resumed CSVs differ from uninterrupted run:\n got:\n%s\nwant:\n%s", got, want)
	}
	if !reflect.DeepEqual(rep2.Result.Points, golden.Result.Points) {
		t.Error("resumed points differ bitwise from uninterrupted run")
	}
}

// TestQuarantineExactCounts: a panic on one task set must not take the
// sweep down, must be reported with its exact reproduction triple, and
// must change the counts in exactly one way — that set becomes
// unschedulable for every scheme. Every other cell stays bit-identical.
func TestQuarantineExactCounts(t *testing.T) {
	golden := goldenRun(t)
	sw := testSweep()
	hook := faultinject.New().PanicAt(1, 7, "boom on set 7")
	rep, err := Run(context.Background(), sw, &Options{Hook: hook})
	if err != nil {
		t.Fatalf("run with injected panic: %v", err)
	}
	if !rep.Complete() {
		t.Fatal("sweep did not complete despite quarantine")
	}
	if hook.Fired(1, 7) != 1 {
		t.Fatalf("fault fired %d times, want 1", hook.Fired(1, 7))
	}
	if len(rep.Quarantined) != 1 {
		t.Fatalf("quarantined = %v, want exactly one entry", rep.Quarantined)
	}
	q := rep.Quarantined[0]
	if q.Point != 1 || q.Set != 7 || q.Seed != sw.Seed {
		t.Errorf("reproduction triple (seed=%d point=%d set=%d), want (seed=%d point=1 set=7)", q.Seed, q.Point, q.Set, sw.Seed)
	}
	if !strings.Contains(q.Err, "boom on set 7") {
		t.Errorf("quarantine error %q does not carry the panic message", q.Err)
	}

	// Untouched points are bit-identical.
	for _, pi := range []int{0, 2} {
		if !reflect.DeepEqual(rep.Result.Points[pi], golden.Result.Points[pi]) {
			t.Errorf("point %d changed under an injected panic at point 1", pi)
		}
	}

	// The affected point: totals exact, and hits drop by exactly the
	// golden feasibility of the quarantined set per scheme. Recompute
	// that feasibility independently through the one-shot API.
	cfg := taskgen.DefaultConfig()
	cfg.M = 4
	cfg.K = 3
	cfg.NSU = sw.Values[1]
	cfg.N = taskgen.IntRange{Lo: 20, Hi: 40}
	ts := taskgen.GenerateIndexed(&cfg, sw.Seed, 7)
	opts := partition.Options{Alpha: partition.DefaultAlpha}
	for si, scheme := range partition.Schemes {
		cell := rep.Result.Points[1].Cells[si]
		gold := golden.Result.Points[1].Cells[si]
		if cell.Sched.N() != int64(sw.Sets) {
			t.Errorf("%v: total %d, want %d", scheme, cell.Sched.N(), sw.Sets)
		}
		delta := int64(0)
		if partition.Partition(ts, 4, 3, scheme, &opts).Feasible {
			delta = 1
		}
		if got, want := cell.Sched.Hits(), gold.Sched.Hits()-delta; got != want {
			t.Errorf("%v: hits %d, want %d (golden %d minus set-7 feasibility %d)", scheme, got, want, gold.Sched.Hits(), delta)
		}
		if cell.Usys.N() != cell.Sched.Hits() {
			t.Errorf("%v: mean accumulator n=%d inconsistent with hits=%d", scheme, cell.Usys.N(), cell.Sched.Hits())
		}
	}
}

// TestQuarantineSurvivesResume: quarantine records of checkpointed
// points must still be reported after a resume.
func TestQuarantineSurvivesResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "testsweep.ckpt")
	hook := faultinject.New().PanicAt(0, 3, "early boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := Run(ctx, testSweep(), &Options{
		CheckpointPath: ckpt,
		Hook:           hook,
		OnPoint: func(pi int, _ *experiments.Point) {
			if pi == 1 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	rep, err := Run(context.Background(), testSweep(), &Options{CheckpointPath: ckpt})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got := rep.Resumed; !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("resumed %v, want [0 1]", got)
	}
	if len(rep.Quarantined) != 1 {
		t.Fatalf("quarantined after resume = %v, want the journaled entry", rep.Quarantined)
	}
	q := rep.Quarantined[0]
	if q.Point != 0 || q.Set != 3 || !strings.Contains(q.Err, "early boom") {
		t.Errorf("journaled quarantine lost fidelity: %+v", q)
	}

	// And the full-with-hook uninterrupted run agrees bit for bit.
	want, err := Run(context.Background(), testSweep(), &Options{Hook: faultinject.New().PanicAt(0, 3, "early boom")})
	if err != nil {
		t.Fatal(err)
	}
	if got, wantCSV := allCSV(rep.Result), allCSV(want.Result); got != wantCSV {
		t.Error("resumed-with-quarantine CSVs differ from uninterrupted run")
	}
}

// TestFaultInjectStallInvariant: artificial worker stalls delay the
// sweep but must not move a single bit of the results.
func TestFaultInjectStallInvariant(t *testing.T) {
	golden := goldenRun(t)
	hook := faultinject.New().
		StallAt(0, 5, 2*time.Millisecond).
		StallAt(1, 0, 2*time.Millisecond).
		StallAt(2, 11, 2*time.Millisecond)
	rep, err := Run(context.Background(), testSweep(), &Options{Hook: hook})
	if err != nil {
		t.Fatalf("stalled run: %v", err)
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("stalls must not quarantine, got %v", rep.Quarantined)
	}
	if hook.Fired(0, 5) != 1 || hook.Fired(1, 0) != 1 || hook.Fired(2, 11) != 1 {
		t.Error("not every scripted stall fired")
	}
	if !reflect.DeepEqual(rep.Result.Points, golden.Result.Points) {
		t.Error("stalls changed the results")
	}
}

// TestFaultInjectTornTailResume: a crash that tears the final journal
// line (header and earlier points intact) must resume by dropping the
// torn line and recomputing only that point — output byte-identical.
func TestFaultInjectTornTailResume(t *testing.T) {
	golden := goldenRun(t)
	ckpt := filepath.Join(t.TempDir(), "testsweep.ckpt")
	atomic := func(p string, d []byte) error { return WriteFileAtomic(p, d, 0o644) }

	// Flush 1 (point 0) lands atomically; flush 2 (point 1) tears 10
	// bytes off the end, leaving header + point 0 + a torn point-1 line.
	_, err := Run(context.Background(), testSweep(), &Options{
		CheckpointPath: ckpt,
		WriteFile:      faultinject.TornWriter(atomic, 2, -10),
	})
	if !errors.Is(err, faultinject.ErrTorn) {
		t.Fatalf("torn run: err = %v, want ErrTorn", err)
	}

	rep, err := Run(context.Background(), testSweep(), &Options{CheckpointPath: ckpt})
	if err != nil {
		t.Fatalf("resume after torn write: %v", err)
	}
	if got := rep.Resumed; !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("resumed %v, want [0] (torn point 1 must recompute)", got)
	}
	if rep.DroppedLines != 1 {
		t.Errorf("dropped lines = %d, want 1", rep.DroppedLines)
	}
	if got, want := allCSV(rep.Result), allCSV(golden.Result); got != want {
		t.Error("post-torn-tail resume differs from uninterrupted run")
	}
}

// TestFaultInjectTornHeaderResume: a crash that destroys even the
// header must degrade to a fresh run — everything recomputes, output
// still byte-identical.
func TestFaultInjectTornHeaderResume(t *testing.T) {
	golden := goldenRun(t)
	ckpt := filepath.Join(t.TempDir(), "testsweep.ckpt")
	atomic := func(p string, d []byte) error { return WriteFileAtomic(p, d, 0o644) }

	_, err := Run(context.Background(), testSweep(), &Options{
		CheckpointPath: ckpt,
		WriteFile:      faultinject.TornWriter(atomic, 1, 25),
	})
	if !errors.Is(err, faultinject.ErrTorn) {
		t.Fatalf("torn run: err = %v, want ErrTorn", err)
	}

	rep, err := Run(context.Background(), testSweep(), &Options{CheckpointPath: ckpt})
	if err != nil {
		t.Fatalf("resume after torn header: %v", err)
	}
	if len(rep.Resumed) != 0 {
		t.Fatalf("resumed %v from a torn header, want none", rep.Resumed)
	}
	if !rep.Complete() {
		t.Fatal("fresh-start resume incomplete")
	}
	if got, want := allCSV(rep.Result), allCSV(golden.Result); got != want {
		t.Error("post-torn-header rerun differs from uninterrupted run")
	}
}

// TestResumeRejectsForeignCheckpoint: a journal from a different run
// identity must refuse to resume instead of mixing aggregates.
func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "testsweep.ckpt")
	if _, err := Run(context.Background(), testSweep(), &Options{CheckpointPath: ckpt}); err != nil {
		t.Fatal(err)
	}

	other := testSweep()
	other.Seed = 10
	if _, err := Run(context.Background(), other, &Options{CheckpointPath: ckpt}); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Errorf("foreign-seed resume: err = %v, want seed-mismatch refusal", err)
	}

	mismatchedWorkers := testSweep()
	mismatchedWorkers.Workers = 1
	if _, err := Run(context.Background(), mismatchedWorkers, &Options{CheckpointPath: ckpt}); err == nil || !strings.Contains(err.Error(), "workers") {
		t.Errorf("worker-count-mismatch resume: err = %v, want refusal", err)
	}
}

// TestAtomicWriteKilledMidFlight: the old file must survive a writer
// that dies after writing the temp file but before the rename — the
// satellite guarantee behind every CSV and checkpoint emission.
func TestAtomicWriteKilledMidFlight(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fig1-a-sched-ratio.csv")
	old := []byte("NSU,WFD\n0.4,0.9\n")
	if err := WriteFileAtomic(path, old, 0o644); err != nil {
		t.Fatal(err)
	}

	killed := errors.New("simulated kill -9 mid-write")
	err := writeFileAtomic(path, []byte("NSU,WFD\n0.4,0.1\ntruncated..."), 0o644, func(string) error {
		return killed
	})
	if !errors.Is(err, killed) {
		t.Fatalf("err = %v, want the simulated kill", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(old) {
		t.Errorf("old file corrupted by killed writer:\n got %q\nwant %q", got, old)
	}
	// No temp litter from the aborted attempt.
	matches, err := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("temp files left behind: %v", matches)
	}

	// And the writer still works after the "restart".
	fresh := []byte("NSU,WFD\n0.4,0.8\n")
	if err := WriteFileAtomic(path, fresh, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != string(fresh) {
		t.Errorf("post-restart write failed: %q", got)
	}
}
