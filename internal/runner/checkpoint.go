package runner

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"strings"

	"catpa/internal/experiments"
	"catpa/internal/obs"
)

// checkpointVersion is bumped whenever the journal format changes
// incompatibly; a mismatch refuses to resume rather than guessing.
const checkpointVersion = 1

// checkpointKind tags the first journal line so an unrelated JSONL
// file is never mistaken for a checkpoint.
const checkpointKind = "catpa-sweep-checkpoint"

// header is the first journal line: the run identity. A resume is only
// legal when every field matches — the worker count is included
// because the mean metrics are bit-exact only for a fixed striping, so
// mixing points computed under different worker counts would break the
// byte-identical-resume invariant.
//
// The "schemes" field carries the sweep's variant names ("WFD",
// "CA-TPA@amcrtb", ...), which index the cells of every point record.
// Variants on the default EDF-VD backend render as plain scheme names,
// so journals written before the backend axis existed carry the same
// identity as today's default sweeps and resume without a version
// bump; a journal from a different variant list simply fails the
// identity match and the run starts fresh.
// The "scenario" field names the sweep's evaluation protocol
// (Sweep.ScenarioKind). Static sweeps render it as "" — omitted from
// the encoded header — so version-1 journals, written before scenarios
// existed, carry the exact identity of today's static sweeps and
// resume byte-identically without a version bump; a journal written
// under a different scenario fails the identity match instead of
// silently mixing protocols whose cells mean different things.
type header struct {
	Version  int       `json:"version"`
	Kind     string    `json:"kind"`
	Name     string    `json:"name"`
	Seed     int64     `json:"seed"`
	Sets     int       `json:"sets"`
	Workers  int       `json:"workers"`
	Schemes  []string  `json:"schemes"`
	Values   []float64 `json:"values"`
	Scenario string    `json:"scenario,omitempty"`
}

// pointRecord is one completed sweep point: the merged cells (with the
// stats accumulators' full internal state, so resumed output is
// bit-identical) and the point's quarantined sets.
type pointRecord struct {
	Point       int                      `json:"point"`
	X           float64                  `json:"x"`
	Cells       []experiments.Cell       `json:"cells"`
	Quarantined []experiments.Quarantine `json:"quarantined,omitempty"`
}

// metricsRecord is the journal's embedded metrics snapshot. It is
// written as the LAST line of every flush: the journal is rewritten
// atomically, so the snapshot is always consistent with the point
// records above it, and a torn tail sacrifices the snapshot before any
// point — the resume path then rebuilds the countable totals from the
// surviving records (Metrics.restore). Journals written without
// metrics simply omit the line; the format version is unchanged
// because old journals parse as a strict subset.
type metricsRecord struct {
	Metrics *obs.Snapshot `json:"metrics"`
}

// journalProbe distinguishes the two record kinds on one decoded line:
// point records always carry "cells", metrics records carry "metrics".
type journalProbe struct {
	Metrics *obs.Snapshot   `json:"metrics"`
	Cells   json.RawMessage `json:"cells"`
}

// envelope wraps every journal line with an IEEE CRC-32 of the raw
// record bytes, so a torn or bit-rotted line is detected and dropped
// instead of corrupting the resumed aggregates.
type envelope struct {
	CRC string          `json:"crc"`
	D   json.RawMessage `json:"d"`
}

// encodeLine wraps one record in a checksummed envelope line.
func encodeLine(d []byte) []byte {
	return []byte(fmt.Sprintf("{\"crc\":\"%08x\",\"d\":%s}\n", crc32.ChecksumIEEE(d), d))
}

// decodeLine unwraps one envelope line, verifying the checksum.
func decodeLine(line []byte) (json.RawMessage, error) {
	var env envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return nil, err
	}
	if want := fmt.Sprintf("%08x", crc32.ChecksumIEEE(env.D)); env.CRC != want {
		return nil, fmt.Errorf("runner: checksum mismatch (have %s, want %s)", env.CRC, want)
	}
	return env.D, nil
}

// Checkpoint is the journal of one sweep run. Records accumulate
// append-only in memory and every flush rewrites the whole file via
// WriteFileAtomic, so the on-disk journal is always either the
// previous complete state or the new complete state.
type Checkpoint struct {
	path  string
	write func(path string, data []byte) error
	hdr   header
	recs  map[int]*pointRecord
	order []int

	// snap, when set, is sampled at every flush and written as the
	// journal's final line, so the persisted metrics snapshot is always
	// consistent with the point records it follows.
	snap func() *obs.Snapshot

	// LoadedSnapshot is the metrics snapshot recovered from the journal,
	// or nil when the journal had none (older journal, fresh run, or a
	// torn tail that cost the final line).
	LoadedSnapshot *obs.Snapshot

	// DroppedLines counts journal lines discarded at load time because
	// they were torn or failed their checksum; the corresponding points
	// are simply recomputed.
	DroppedLines int
}

// openCheckpoint loads the journal at path, validating it against the
// run identity, or initializes an empty one when the file does not
// exist (or contains no intact header). A journal whose header
// identifies a different run is an error: silently mixing runs would
// corrupt the aggregates.
func openCheckpoint(path string, hdr header, write func(string, []byte) error) (*Checkpoint, error) {
	if write == nil {
		write = func(p string, data []byte) error { return WriteFileAtomic(p, data, 0o644) }
	}
	ck := &Checkpoint{path: path, write: write, hdr: hdr, recs: make(map[int]*pointRecord)}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return ck, nil
	}
	if err != nil {
		return nil, err
	}
	lines := strings.Split(string(data), "\n")
	// Header line: if it is torn or unrecognizable the whole file is
	// untrusted — start fresh (every point recomputes; correctness is
	// unaffected). If it is intact but names a different run, refuse.
	if len(lines) == 0 || strings.TrimSpace(lines[0]) == "" {
		return ck, nil
	}
	raw, err := decodeLine([]byte(lines[0]))
	if err != nil {
		ck.DroppedLines = countNonEmpty(lines)
		return ck, nil
	}
	var have header
	if err := json.Unmarshal(raw, &have); err != nil || have.Kind != checkpointKind {
		ck.DroppedLines = countNonEmpty(lines)
		return ck, nil
	}
	if err := hdr.checkCompatible(have); err != nil {
		return nil, fmt.Errorf("runner: checkpoint %s: %w", path, err)
	}
	for _, line := range lines[1:] {
		if strings.TrimSpace(line) == "" {
			continue
		}
		raw, err := decodeLine([]byte(line))
		if err != nil {
			// A torn tail (the only way an atomic journal ends up
			// with a broken line) invalidates everything after it:
			// stop and recompute those points. The metrics snapshot
			// is the final line, so it is always the first casualty.
			ck.DroppedLines += 1
			break
		}
		var probe journalProbe
		if err := json.Unmarshal(raw, &probe); err != nil {
			ck.DroppedLines += 1
			break
		}
		if probe.Metrics != nil {
			ck.LoadedSnapshot = probe.Metrics
			continue
		}
		rec, err := decodePoint(raw, hdr)
		if err != nil {
			ck.DroppedLines += 1
			break
		}
		if _, dup := ck.recs[rec.Point]; !dup {
			ck.order = append(ck.order, rec.Point)
		}
		ck.recs[rec.Point] = rec
	}
	if ck.DroppedLines > 0 {
		// The snapshot is only trusted when the whole journal loaded
		// intact: it must be consistent with every surviving point.
		ck.LoadedSnapshot = nil
	}
	return ck, nil
}

// countNonEmpty counts the non-blank lines of a split file.
func countNonEmpty(lines []string) int {
	n := 0
	for _, l := range lines {
		if strings.TrimSpace(l) != "" {
			n++
		}
	}
	return n
}

// decodePoint validates one already-unwrapped point record.
func decodePoint(raw json.RawMessage, hdr header) (*pointRecord, error) {
	var rec pointRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, err
	}
	if rec.Point < 0 || rec.Point >= len(hdr.Values) {
		return nil, fmt.Errorf("runner: point index %d out of range", rec.Point)
	}
	if len(rec.Cells) != len(hdr.Schemes) {
		return nil, fmt.Errorf("runner: point %d has %d cells, want %d", rec.Point, len(rec.Cells), len(hdr.Schemes))
	}
	return &rec, nil
}

// checkCompatible verifies that a loaded header matches this run.
func (h header) checkCompatible(have header) error {
	switch {
	case have.Version != h.Version:
		return fmt.Errorf("written by format version %d, this binary writes %d", have.Version, h.Version)
	case have.Name != h.Name, have.Seed != h.Seed, have.Sets != h.Sets:
		return fmt.Errorf("belongs to run (name=%s seed=%d sets=%d), this run is (name=%s seed=%d sets=%d); delete it or point -checkpoint elsewhere",
			have.Name, have.Seed, have.Sets, h.Name, h.Seed, h.Sets)
	case have.Workers != h.Workers:
		return fmt.Errorf("was written with -workers %d, this run uses %d; resume with -workers %d (mean metrics are bit-exact only for a fixed worker count)",
			have.Workers, h.Workers, have.Workers)
	case fmt.Sprint(have.Schemes) != fmt.Sprint(h.Schemes):
		return fmt.Errorf("scheme list %v does not match %v", have.Schemes, h.Schemes)
	case fmt.Sprint(have.Values) != fmt.Sprint(h.Values):
		return fmt.Errorf("sweep values %v do not match %v", have.Values, h.Values)
	case have.Scenario != h.Scenario:
		return fmt.Errorf("scenario %q does not match %q; the cells of different protocols are not interchangeable",
			have.Scenario, h.Scenario)
	}
	return nil
}

// done reports whether the journal holds an intact record for a point.
func (c *Checkpoint) done(point int) (*pointRecord, bool) {
	rec, ok := c.recs[point]
	return rec, ok
}

// record journals one completed point and flushes the whole file
// atomically. The in-memory record is kept even when the flush fails,
// so a caller that degrades to checkpoint-less operation still reports
// correct results.
func (c *Checkpoint) record(rec *pointRecord) error {
	if _, dup := c.recs[rec.Point]; !dup {
		c.order = append(c.order, rec.Point)
	}
	c.recs[rec.Point] = rec
	return c.flush()
}

// flush rewrites the journal file from the in-memory state.
//
//mc:deterministic the journal must be byte-identical across equal runs
func (c *Checkpoint) flush() error {
	var b strings.Builder
	hdr, err := json.Marshal(c.hdr)
	if err != nil {
		return err
	}
	b.Write(encodeLine(hdr))
	for _, pi := range c.order {
		d, err := json.Marshal(c.recs[pi])
		if err != nil {
			return err
		}
		b.Write(encodeLine(d))
	}
	if c.snap != nil {
		d, err := json.Marshal(metricsRecord{Metrics: c.snap()})
		if err != nil {
			return err
		}
		b.Write(encodeLine(d))
	}
	return c.write(c.path, []byte(b.String()))
}
