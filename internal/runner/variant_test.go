package runner

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"catpa/internal/experiments"
	"catpa/internal/fpamc"
	"catpa/internal/obs"
	"catpa/internal/partition"
	"catpa/internal/taskgen"
)

// variantSweep returns a small dual-criticality sweep over both
// analysis backends.
func variantSweep() *experiments.Sweep {
	return &experiments.Sweep{
		Name:   "variantsweep",
		Title:  "runner variant sweep",
		Param:  "NSU",
		Values: []float64{0.45, 0.7},
		Apply: func(p *experiments.Params, x float64) {
			p.M = 4
			p.K = 2
			p.N = taskgen.IntRange{Lo: 15, Hi: 30}
			p.NSU = x
		},
		Sets:    40,
		Seed:    13,
		Workers: 2,
		Variants: []experiments.Variant{
			{Scheme: partition.CATPA},
			{Scheme: partition.CATPA, Backend: fpamc.BackendName},
			{Scheme: partition.FFD, Backend: fpamc.BackendName},
		},
	}
}

// TestVariantSweepResumesByteIdentical: the checkpoint identity keys
// on variant names, and a variant sweep resumes bit-exactly like a
// default one.
func TestVariantSweepResumesByteIdentical(t *testing.T) {
	golden, err := Run(context.Background(), variantSweep(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "variantsweep.ckpt")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = Run(ctx, variantSweep(), &Options{
		CheckpointPath: ckpt,
		OnPoint: func(pi int, _ *experiments.Point) {
			if pi == 0 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: %v", err)
	}

	// The journal header must carry the variant names.
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(string(raw), "\n", 2)[0]
	for _, want := range []string{`"CA-TPA"`, `"CA-TPA@amcrtb"`, `"FFD@amcrtb"`} {
		if !strings.Contains(head, want) {
			t.Errorf("journal header missing %s: %s", want, head)
		}
	}

	rep2, err := Run(context.Background(), variantSweep(), &Options{CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Complete() || len(rep2.Resumed) != 1 {
		t.Fatalf("resume: complete=%v resumed=%v", rep2.Complete(), rep2.Resumed)
	}
	if got, want := allCSV(rep2.Result), allCSV(golden.Result); got != want {
		t.Errorf("resumed CSV differs from golden:\n%s\n---\n%s", got, want)
	}
}

// TestVariantMetricsRestore: metrics built for a variant list restore
// exact per-variant totals from a resumed checkpoint's point records.
func TestVariantMetricsRestore(t *testing.T) {
	sw := variantSweep()
	ckpt := filepath.Join(t.TempDir(), "variantsweep.ckpt")
	met := NewMetrics(obs.NewRegistry(), sw.ActiveVariants()...)
	if _, err := Run(context.Background(), sw, &Options{CheckpointPath: ckpt, Metrics: met}); err != nil {
		t.Fatal(err)
	}
	wantTotal := int64(sw.Sets * len(sw.Values))
	if got := met.Exp.SetsTotal(); got != wantTotal {
		t.Fatalf("sets.total = %d, want %d", got, wantTotal)
	}
	for _, v := range sw.ActiveVariants() {
		acc, rej := met.Exp.AcceptedVariant(v), met.Exp.RejectedVariant(v)
		if acc+rej != wantTotal {
			t.Errorf("%s: accepted %d + rejected %d != %d", v, acc, rej, wantTotal)
		}
	}

	// Resume with everything already complete: totals restore from the
	// journal into a fresh registry.
	sw2 := variantSweep()
	met2 := NewMetrics(obs.NewRegistry(), sw2.ActiveVariants()...)
	rep, err := Run(context.Background(), sw2, &Options{CheckpointPath: ckpt, Metrics: met2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Resumed) != len(sw2.Values) {
		t.Fatalf("resumed = %v", rep.Resumed)
	}
	if got := met2.Exp.SetsTotal(); got != wantTotal {
		t.Errorf("restored sets.total = %d, want %d", got, wantTotal)
	}
	for _, v := range sw2.ActiveVariants() {
		if a, b := met.Exp.AcceptedVariant(v), met2.Exp.AcceptedVariant(v); a != b {
			t.Errorf("%s: restored accepted %d != original %d", v, b, a)
		}
	}
}
