package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestValidName(t *testing.T) {
	cases := []struct {
		name string
		ok   bool
	}{
		{"sweep.sets.total", true},
		{"sweep", true},
		{"sweep.sets.accepted.ca-tpa", true},
		{"a_b.c-d.e2", true},
		{"0x.9", true},
		{"", false},
		{".", false},
		{"sweep.", false},
		{".sweep", false},
		{"sweep..sets", false},
		{"Sweep.sets", false},
		{"sweep.Sets", false},
		{"sweep.sets total", false},
		{"sweep.-sets", false},
		{"sweep.sets-", false},
		{"_sweep", false},
		{"sweep_", false},
		{"swe/ep", false},
	}
	for _, c := range cases {
		if got := ValidName(c.name); got != c.ok {
			t.Errorf("ValidName(%q) = %v, want %v", c.name, got, c.ok)
		}
	}
}

func TestRegistryRejectsDuplicatesAcrossKinds(t *testing.T) {
	wantPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	reg := NewRegistry()
	reg.Counter("a.counter")
	reg.Gauge("a.gauge")
	reg.Histogram("a.hist", nil)
	wantPanic("dup counter", func() { reg.Counter("a.counter") })
	wantPanic("counter name reused as gauge", func() { reg.Gauge("a.counter") })
	wantPanic("gauge name reused as histogram", func() { reg.Histogram("a.gauge", nil) })
	wantPanic("hist name reused as counter", func() { reg.Counter("a.hist") })
	wantPanic("invalid name", func() { reg.Counter("Bad.Name") })
	wantPanic("unsorted bounds", func() {
		reg.Histogram("b.hist", []time.Duration{time.Second, time.Millisecond})
	})
	wantPanic("labeled dup", func() { reg.LabeledCounter("a", "counter") })
}

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c.total")
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Errorf("counter = %d, want 42", c.Value())
	}
	if c.Name() != "c.total" {
		t.Errorf("name = %q", c.Name())
	}
	g := reg.Gauge("g.now")
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Errorf("gauge = %v, want 3.5", g.Value())
	}
	lc := reg.LabeledCounter("c.scheme", "ca-tpa")
	if lc.Name() != "c.scheme.ca-tpa" {
		t.Errorf("labeled name = %q", lc.Name())
	}
}

func TestNilReceiversAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	h.Observe(time.Second)
	StartSpan(h).End()
	if c.Value() != 0 || c.Name() != "" || g.Value() != 0 || g.Name() != "" {
		t.Error("nil counter/gauge must read as zero")
	}
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Name() != "" || h.Bounds() != nil {
		t.Error("nil histogram must read as zero")
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	bounds := []time.Duration{time.Microsecond, time.Millisecond, time.Second}
	h := reg.Histogram("h.seconds", bounds)
	h.Observe(-time.Second) // clamps to 0 -> first bucket
	h.Observe(time.Microsecond)
	h.Observe(2 * time.Microsecond)
	h.Observe(time.Millisecond)
	h.Observe(time.Minute) // overflow
	hs := h.snapshot()
	wantCounts := []int64{2, 2, 0, 1}
	for i, want := range wantCounts {
		if hs.Counts[i] != want {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, hs.Counts[i], want, hs.Counts)
		}
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	wantSum := time.Microsecond + 2*time.Microsecond + time.Millisecond + time.Minute
	if h.Sum() != wantSum {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}
	if h.Max() != time.Minute {
		t.Errorf("max = %v, want 1m", h.Max())
	}
	if got := h.Bounds(); len(got) != 3 || got[2] != time.Second {
		t.Errorf("bounds = %v", got)
	}
}

func TestSpanObservesElapsedTime(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("span.seconds", nil)
	sp := StartSpan(h)
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if h.Sum() < 2*time.Millisecond {
		t.Errorf("sum = %v, want >= 2ms", h.Sum())
	}
}

func TestSnapshotRoundTripAndMerge(t *testing.T) {
	build := func() (*Registry, *Counter, *Gauge, *Histogram) {
		reg := NewRegistry()
		c := reg.Counter("m.count")
		g := reg.Gauge("m.gauge")
		h := reg.Histogram("m.seconds", []time.Duration{time.Microsecond, time.Millisecond})
		return reg, c, g, h
	}
	reg1, c1, g1, h1 := build()
	c1.Add(7)
	g1.Set(2.5)
	h1.Observe(3 * time.Microsecond)
	h1.Observe(time.Second)

	data, err := json.Marshal(reg1.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}

	reg2, c2, g2, h2 := build()
	c2.Add(3)
	h2.Observe(time.Microsecond)
	reg2.Merge(&snap)

	if c2.Value() != 10 {
		t.Errorf("merged counter = %d, want 10", c2.Value())
	}
	if g2.Value() != 0 {
		t.Errorf("gauges must not merge; got %v", g2.Value())
	}
	if h2.Count() != 3 {
		t.Errorf("merged hist count = %d, want 3", h2.Count())
	}
	if h2.Max() != time.Second {
		t.Errorf("merged hist max = %v, want 1s", h2.Max())
	}
	wantSum := time.Microsecond + 3*time.Microsecond + time.Second
	if h2.Sum() != wantSum {
		t.Errorf("merged hist sum = %v, want %v", h2.Sum(), wantSum)
	}
	// Round-trip determinism: snapshotting the same state twice yields
	// identical bytes.
	again, err := json.Marshal(reg1.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if string(again) != string(data) {
		t.Errorf("snapshot not byte-stable:\n%s\n%s", data, again)
	}
}

func TestMergeSkipsIncompatibleEntries(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("keep.total")
	h := reg.Histogram("keep.seconds", []time.Duration{time.Microsecond})
	snap := &Snapshot{
		Counters: map[string]int64{"keep.total": 4, "unknown.total": 99},
		Histograms: map[string]HistogramSnapshot{
			// Bounds mismatch: must be skipped wholesale.
			"keep.seconds": {BoundsNS: []int64{int64(time.Millisecond)}, Counts: []int64{5, 5}, Count: 10, SumNS: 10, MaxNS: 10},
			"unknown.s":    {BoundsNS: []int64{1}, Counts: []int64{1, 1}, Count: 2},
		},
	}
	reg.Merge(snap)
	reg.Merge(nil)
	if c.Value() != 4 {
		t.Errorf("counter = %d, want 4", c.Value())
	}
	if h.Count() != 0 {
		t.Errorf("mismatched histogram merged: count = %d, want 0", h.Count())
	}
}

func TestHotPathAllocationFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("alloc.total")
	g := reg.Gauge("alloc.gauge")
	h := reg.Histogram("alloc.seconds", nil)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(1.5)
		h.Observe(3 * time.Microsecond)
		sp := StartSpan(h)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates %v per op, want 0", allocs)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("conc.total")
	h := reg.Histogram("conc.seconds", nil)
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(time.Duration(w+1) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*each {
		t.Errorf("counter = %d, want %d", c.Value(), workers*each)
	}
	if h.Count() != workers*each {
		t.Errorf("hist count = %d, want %d", h.Count(), workers*each)
	}
	if h.Max() != time.Duration(workers)*time.Microsecond {
		t.Errorf("max = %v, want %dµs", h.Max(), workers)
	}
}
