package obs

import (
	"sync/atomic"
	"time"
)

// DefaultDurationBuckets is a 1-2-5 ladder from 1µs to 1s — wide
// enough for per-set stage timings (microseconds) and checkpoint
// flushes (milliseconds) alike.
var DefaultDurationBuckets = []time.Duration{
	1 * time.Microsecond, 2 * time.Microsecond, 5 * time.Microsecond,
	10 * time.Microsecond, 20 * time.Microsecond, 50 * time.Microsecond,
	100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second,
}

// Histogram is a fixed-bucket duration histogram. Bucket i counts
// observations d with d <= bounds[i] (and d > bounds[i-1]); the last
// slot counts overflows beyond the largest bound. All storage is
// allocated at registration, so Observe performs only atomic updates.
type Histogram struct {
	name   string
	bounds []time.Duration
	counts []atomic.Int64 // len(bounds)+1; last slot is +Inf
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

// Observe records one duration. Negative durations clamp to zero.
// Safe on a nil receiver (no-op) and for concurrent use.
//
//mc:allocfree storage is fixed at registration; updates are atomics only
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	// Hand-rolled binary search: sort.Search would force the closure
	// (and with it the hot path's zero-allocation guarantee) through
	// escape analysis.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if d > h.bounds[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		old := h.max.Load()
		if int64(d) <= old || h.max.CompareAndSwap(old, int64(d)) {
			break
		}
	}
}

// Count returns the number of observations; 0 on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed duration; 0 on a nil receiver.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Max returns the largest observed duration; 0 on a nil receiver.
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Name returns the registered name; "" on a nil receiver.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Span times one stage: StartSpan stamps the clock, End records the
// elapsed time into the histogram. It is a value type, so spanning a
// stage costs two clock reads and zero allocations.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan starts timing against h (which may be nil: the span then
// records nothing, but still costs the clock read).
//
//mc:allocfree a span is a value; starting one is two words on the stack
func StartSpan(h *Histogram) Span {
	return Span{h: h, start: time.Now()}
}

// End records the elapsed time since StartSpan.
//
//mc:allocfree ends inside the hot loop it times
func (s Span) End() {
	s.h.Observe(time.Since(s.start))
}
