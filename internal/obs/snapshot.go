package obs

import "time"

// Snapshot is the serializable state of a registry at one instant.
// Every field uses deterministic JSON (map keys marshal sorted), so a
// snapshot of a deterministic run is byte-stable — the property the
// golden-file tests rely on. Each metric is read atomically, but the
// snapshot as a whole is not a consistent cut under concurrent
// updates; the runner only snapshots at point boundaries, when the
// worker pool is drained.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot is the serialized state of one duration histogram.
// Durations are integer nanoseconds, so the JSON round-trip is exact.
type HistogramSnapshot struct {
	// BoundsNS holds the bucket upper bounds in nanoseconds.
	BoundsNS []int64 `json:"bounds_ns"`
	// Counts holds one count per bucket plus the overflow slot.
	Counts []int64 `json:"counts"`
	// Count, SumNS and MaxNS summarize all observations.
	Count int64 `json:"count"`
	SumNS int64 `json:"sum_ns"`
	MaxNS int64 `json:"max_ns"`
}

// Snapshot captures the current value of every registered metric.
// Serialized snapshots feed the checkpoint journal and the golden
// tests, so the capture itself iterates every metric map in sorted-key
// order — the JSON encoder sorts map keys anyway, but keeping the walk
// ordered means the capture sequence (and anything derived from it,
// like future streaming emission) is reproducible too.
//
//mc:deterministic snapshots feed the checkpoint journal byte-identically
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for _, name := range sortedKeys(r.counters) {
			s.Counters[name] = r.counters[name].Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for _, name := range sortedKeys(r.gauges) {
			s.Gauges[name] = r.gauges[name].Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for _, name := range sortedKeys(r.hists) {
			s.Histograms[name] = r.hists[name].snapshot()
		}
	}
	return s
}

func (h *Histogram) snapshot() HistogramSnapshot {
	hs := HistogramSnapshot{
		BoundsNS: make([]int64, len(h.bounds)),
		Counts:   make([]int64, len(h.counts)),
		Count:    h.count.Load(),
		SumNS:    h.sum.Load(),
		MaxNS:    h.max.Load(),
	}
	for i, b := range h.bounds {
		hs.BoundsNS[i] = int64(b)
	}
	for i := range h.counts {
		hs.Counts[i] = h.counts[i].Load()
	}
	return hs
}

// Merge folds a snapshot into the live registry: counters add their
// snapshot value, histograms add bucket-wise when their bounds match
// exactly, and gauges are skipped (an instantaneous reading from a
// dead process has no meaning in this one). Snapshot entries with no
// registered counterpart are ignored — the live registry is the
// schema. This is how a resumed run restores the cumulative totals of
// the run it continues.
func (r *Registry) Merge(s *Snapshot) {
	if s == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, v := range s.Counters {
		if c, ok := r.counters[name]; ok {
			c.Add(v)
		}
	}
	for name, hs := range s.Histograms {
		if h, ok := r.hists[name]; ok {
			h.merge(hs)
		}
	}
}

func (h *Histogram) merge(hs HistogramSnapshot) {
	if len(hs.BoundsNS) != len(h.bounds) || len(hs.Counts) != len(h.counts) {
		return
	}
	for i, b := range h.bounds {
		if hs.BoundsNS[i] != int64(b) {
			return
		}
	}
	for i, n := range hs.Counts {
		h.counts[i].Add(n)
	}
	h.count.Add(hs.Count)
	h.sum.Add(hs.SumNS)
	for {
		old := h.max.Load()
		if hs.MaxNS <= old || h.max.CompareAndSwap(old, hs.MaxNS) {
			break
		}
	}
}

// Bounds returns a copy of the histogram's bucket upper bounds; nil on
// a nil receiver.
func (h *Histogram) Bounds() []time.Duration {
	if h == nil {
		return nil
	}
	return append([]time.Duration(nil), h.bounds...)
}
