package obs

import "time"

// Snapshot is the serializable state of a registry at one instant.
// Every field uses deterministic JSON (map keys marshal sorted), so a
// snapshot of a deterministic run is byte-stable — the property the
// golden-file tests rely on.
//
// Snapshots are safe to take concurrently with metric updates (the
// admission daemon serves them from a live HTTP scrape endpoint).
// Each metric is read atomically and every histogram snapshot is
// internally consistent — Count always equals the sum of Counts, so
// percentile math over a scrape never indexes past its buckets — but
// the snapshot as a whole is still not a consistent cut across
// *different* metrics; only a drained pipeline (the runner snapshots
// at point boundaries) guarantees cross-metric agreement.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot is the serialized state of one duration histogram.
// Durations are integer nanoseconds, so the JSON round-trip is exact.
type HistogramSnapshot struct {
	// BoundsNS holds the bucket upper bounds in nanoseconds.
	BoundsNS []int64 `json:"bounds_ns"`
	// Counts holds one count per bucket plus the overflow slot.
	Counts []int64 `json:"counts"`
	// Count, SumNS and MaxNS summarize all observations.
	Count int64 `json:"count"`
	SumNS int64 `json:"sum_ns"`
	MaxNS int64 `json:"max_ns"`
}

// Snapshot captures the current value of every registered metric.
// Serialized snapshots feed the checkpoint journal and the golden
// tests, so the capture itself iterates every metric map in sorted-key
// order — the JSON encoder sorts map keys anyway, but keeping the walk
// ordered means the capture sequence (and anything derived from it,
// like future streaming emission) is reproducible too.
//
//mc:deterministic snapshots feed the checkpoint journal byte-identically
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for _, name := range sortedKeys(r.counters) {
			s.Counters[name] = r.counters[name].Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for _, name := range sortedKeys(r.gauges) {
			s.Gauges[name] = r.gauges[name].Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for _, name := range sortedKeys(r.hists) {
			s.Histograms[name] = r.hists[name].snapshot()
		}
	}
	return s
}

func (h *Histogram) snapshot() HistogramSnapshot {
	hs := HistogramSnapshot{
		BoundsNS: make([]int64, len(h.bounds)),
		Counts:   make([]int64, len(h.counts)),
	}
	for i, b := range h.bounds {
		hs.BoundsNS[i] = int64(b)
	}
	// Count is derived from the bucket counts just read rather than
	// loaded from the separate total: Observe updates the bucket and
	// the total in two independent atomic steps, so under concurrent
	// updates the loaded total can disagree with the buckets (a torn
	// read that breaks percentile math over a scrape). Deriving it
	// makes every histogram snapshot internally consistent; at rest
	// the two definitions coincide, so journaled snapshots and golden
	// files are unchanged.
	for i := range h.counts {
		n := h.counts[i].Load()
		hs.Counts[i] = n
		hs.Count += n
	}
	hs.SumNS = h.sum.Load()
	hs.MaxNS = h.max.Load()
	return hs
}

// Merge folds a snapshot into the live registry: counters add their
// snapshot value, histograms add bucket-wise when their bounds match
// exactly, and gauges are skipped (an instantaneous reading from a
// dead process has no meaning in this one). Snapshot entries with no
// registered counterpart are ignored — the live registry is the
// schema. This is how a resumed run restores the cumulative totals of
// the run it continues.
func (r *Registry) Merge(s *Snapshot) {
	if s == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, v := range s.Counters {
		if c, ok := r.counters[name]; ok {
			c.Add(v)
		}
	}
	for name, hs := range s.Histograms {
		if h, ok := r.hists[name]; ok {
			h.merge(hs)
		}
	}
}

func (h *Histogram) merge(hs HistogramSnapshot) {
	if len(hs.BoundsNS) != len(h.bounds) || len(hs.Counts) != len(h.counts) {
		return
	}
	for i, b := range h.bounds {
		if hs.BoundsNS[i] != int64(b) {
			return
		}
	}
	for i, n := range hs.Counts {
		h.counts[i].Add(n)
	}
	h.count.Add(hs.Count)
	h.sum.Add(hs.SumNS)
	for {
		old := h.max.Load()
		if hs.MaxNS <= old || h.max.CompareAndSwap(old, hs.MaxNS) {
			break
		}
	}
}

// Bounds returns a copy of the histogram's bucket upper bounds; nil on
// a nil receiver.
func (h *Histogram) Bounds() []time.Duration {
	if h == nil {
		return nil
	}
	return append([]time.Duration(nil), h.bounds...)
}
