package obs

import (
	"encoding/json"
	"net/http"
)

// Handler returns an http.Handler serving the registry's Snapshot as
// indented JSON — the scrape endpoint the admission daemon mounts at
// /metricz and long-running tools can reuse next to net/http/pprof.
// Snapshots taken here run concurrently with live metric updates; see
// Snapshot for the consistency contract. A nil registry serves an
// empty snapshot, matching the package's nil-tolerant metric methods.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s := &Snapshot{}
		if r != nil {
			s = r.Snapshot()
		}
		data, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			http.Error(w, "snapshot encoding failed", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		if req.Method == http.MethodHead {
			return
		}
		_, _ = w.Write(append(data, '\n'))
	})
}
