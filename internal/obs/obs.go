// Package obs is the observability layer of the sweep pipeline: a
// named registry of atomic counters, gauges and fixed-bucket duration
// histograms, plus a Span helper for stage timing. It is built only on
// the standard library and is allocation-free on the hot path: every
// metric is registered once up front, and updating one is a handful of
// atomic operations on preallocated storage — no maps, no interface
// boxing, no locks. The experiment worker pool (internal/experiments)
// therefore keeps its steady-state 0 allocs/op guarantee with
// instrumentation enabled.
//
// Metric names are lowercase dot-separated paths ("sweep.sets.total");
// each name may be registered exactly once per registry. Both rules are
// enforced at registration time (panic) and statically by the mclint
// rule obsname. Every metric method is nil-receiver safe, so optional
// instrumentation can be threaded as nil pointers without branching at
// each call site.
//
// Snapshots (see Snapshot) serialize a registry to JSON and merge back
// into a live registry; the fault-tolerant runner embeds one in its
// checkpoint journal so resumed runs report cumulative totals.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ValidName reports whether a metric name is well-formed: one or more
// dot-separated segments, each starting and ending with a lowercase
// letter or digit, with '-' and '_' allowed inside a segment
// ("sweep.sets.total", "sweep.sets.accepted.ca-tpa"). This is the
// single definition of the naming rule; mclint's obsname rule enforces
// the same predicate statically.
func ValidName(name string) bool {
	if name == "" {
		return false
	}
	start := 0
	for i := 0; i <= len(name); i++ {
		if i < len(name) && name[i] != '.' {
			continue
		}
		if !validSegment(name[start:i]) {
			return false
		}
		start = i + 1
	}
	return true
}

func validSegment(seg string) bool {
	if seg == "" {
		return false
	}
	for i := 0; i < len(seg); i++ {
		c := seg[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case c == '-' || c == '_':
			if i == 0 || i == len(seg)-1 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Counter is a monotonically increasing atomic int64 metric.
type Counter struct {
	name string
	v    atomic.Int64
}

// Inc adds one. Safe on a nil receiver (no-op).
//
//mc:allocfree metric updates sit inside the worker pool's steady state
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Safe on a nil receiver (no-op).
//
//mc:allocfree metric updates sit inside the worker pool's steady state
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count; 0 on a nil receiver.
//
//mc:allocfree read cheaply from snapshot and progress paths
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the registered name; "" on a nil receiver.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is an instantaneous float64 metric (last value wins). Unlike
// counters and histograms, gauges are not merged from snapshots: an
// instantaneous reading from a dead process is not meaningful in a
// resumed one.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set stores v. Safe on a nil receiver (no-op).
//
//mc:allocfree metric updates sit inside the worker pool's steady state
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last stored value; 0 on a nil receiver.
//
//mc:allocfree read cheaply from snapshot and progress paths
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Name returns the registered name; "" on a nil receiver.
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Registry is a named collection of metrics. Registration takes a
// lock and allocates; reading and updating registered metrics is
// lock-free and allocation-free. A Registry must not be shared between
// independent runs whose totals should stay separate — counters only
// ever accumulate.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// register validates the name-per-registry invariants shared by all
// metric kinds.
func (r *Registry) register(name string) {
	if !ValidName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q (want lowercase dot-separated, like sweep.sets.total)", name))
	}
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	if _, ok := r.hists[name]; ok {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
}

// Counter registers and returns a counter. It panics if the name is
// malformed or already registered.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name)
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// LabeledCounter registers and returns the counter "name.label" — the
// sanctioned way to build per-scheme (or otherwise per-dimension)
// counter families from a constant base name and a runtime label. The
// combined name obeys the same rules as Counter.
func (r *Registry) LabeledCounter(name, label string) *Counter {
	return r.Counter(name + "." + label)
}

// Gauge registers and returns a gauge. It panics if the name is
// malformed or already registered.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name)
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Histogram registers and returns a duration histogram with the given
// bucket upper bounds (ascending; nil selects DefaultDurationBuckets).
// It panics if the name is malformed or already registered, or if the
// bounds are not strictly ascending.
func (r *Registry) Histogram(name string, bounds []time.Duration) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name)
	if bounds == nil {
		bounds = DefaultDurationBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly ascending", name))
		}
	}
	h := &Histogram{
		name:   name,
		bounds: append([]time.Duration(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.hists[name] = h
	return h
}

// sortedKeys returns the sorted keys of a metric map.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
