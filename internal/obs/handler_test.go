package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestHandlerServesSnapshotJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("scrape.requests.total").Add(7)
	reg.Gauge("scrape.depth").Set(3.5)
	reg.Histogram("scrape.latency", nil).Observe(2 * time.Millisecond)

	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding scrape: %v", err)
	}
	if snap.Counters["scrape.requests.total"] != 7 {
		t.Errorf("counter = %d, want 7", snap.Counters["scrape.requests.total"])
	}
	if snap.Gauges["scrape.depth"] != 3.5 {
		t.Errorf("gauge = %v, want 3.5", snap.Gauges["scrape.depth"])
	}
	if h := snap.Histograms["scrape.latency"]; h.Count != 1 {
		t.Errorf("histogram count = %d, want 1", h.Count)
	}
}

func TestHandlerMethodsAndNilRegistry(t *testing.T) {
	srv := httptest.NewServer(Handler(nil))
	defer srv.Close()

	resp, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST: status %d, want 405", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET nil registry: status %d", resp.StatusCode)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Errorf("nil-registry scrape is not JSON: %v", err)
	}
}

// TestSnapshotDuringUpdates hammers Snapshot concurrently with metric
// updates (the HTTP scrape scenario) and asserts every histogram
// snapshot is internally consistent: Count equals the sum of Counts,
// and counters never run backwards across consecutive snapshots. Run
// with -race this also proves the scrape path is data-race free.
func TestSnapshotDuringUpdates(t *testing.T) {
	reg := NewRegistry()
	ctr := reg.Counter("hammer.requests.total")
	gauge := reg.Gauge("hammer.depth")
	hist := reg.Histogram("hammer.latency", nil)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				ctr.Inc()
				gauge.Set(float64(i))
				hist.Observe(time.Duration(i%2000) * time.Microsecond)
			}
		}(w)
	}

	prevCount := int64(0)
	prevTotal := int64(0)
	for i := 0; i < 500; i++ {
		s := reg.Snapshot()
		h, ok := s.Histograms["hammer.latency"]
		if !ok {
			t.Fatal("histogram missing from snapshot")
		}
		var sum int64
		for _, n := range h.Counts {
			sum += n
		}
		if sum != h.Count {
			t.Fatalf("snapshot %d: torn histogram: Count=%d, sum(Counts)=%d", i, h.Count, sum)
		}
		if h.Count < prevCount {
			t.Fatalf("snapshot %d: histogram count ran backwards: %d < %d", i, h.Count, prevCount)
		}
		prevCount = h.Count
		if c := s.Counters["hammer.requests.total"]; c < prevTotal {
			t.Fatalf("snapshot %d: counter ran backwards: %d < %d", i, c, prevTotal)
		} else {
			prevTotal = c
		}
	}
	stop.Store(true)
	wg.Wait()

	// Drained, the derived count agrees with the classic total.
	final := reg.Snapshot()
	if h := final.Histograms["hammer.latency"]; h.Count != hist.Count() {
		t.Errorf("at rest: snapshot count %d != histogram total %d", h.Count, hist.Count())
	}
}
