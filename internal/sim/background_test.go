package sim

import (
	"math/rand"
	"testing"

	"catpa/internal/mc"
)

func TestBackgroundLOServesInsteadOfDropping(t *testing.T) {
	// HI task overruns every job; with BackgroundLO the LO task keeps
	// receiving service in the slack instead of being discarded.
	tasks := []mc.Task{
		mkTask(1, 20, 2, 2, 8),
		mkTask(2, 20, 1, 4),
	}
	drop := SimulateCore(CoreConfig{
		Tasks: tasks, K: 2, Horizon: 2000, Model: WorstCaseModel{},
	})
	bg := SimulateCore(CoreConfig{
		Tasks: tasks, K: 2, Horizon: 2000, Model: WorstCaseModel{},
		BackgroundLO: true,
	})
	if bg.Missed != 0 {
		t.Fatalf("guaranteed misses with background service: %d", bg.Missed)
	}
	if bg.DroppedJobs != 0 || bg.SkippedReleases != 0 {
		t.Errorf("background mode still dropped work: dropped=%d skipped=%d",
			bg.DroppedJobs, bg.SkippedReleases)
	}
	if bg.BackgroundCompleted == 0 {
		t.Error("no background completions despite 12 units of slack per period")
	}
	// LO service strictly improves over dropping.
	loServedDrop := drop.Completed - completedOf(drop, tasks, 2)
	_ = loServedDrop
	if bg.Completed+bg.BackgroundCompleted <= drop.Completed {
		t.Errorf("background service did not increase total completions: %d+%d vs %d",
			bg.Completed, bg.BackgroundCompleted, drop.Completed)
	}
}

// completedOf is a helper placeholder: CoreStats does not track
// per-task completions, so callers compare aggregate counts.
func completedOf(*CoreStats, []mc.Task, int) int { return 0 }

// TestBackgroundNeverEndangersGuaranteed: the central safety property
// of graceful degradation — enabling BackgroundLO never introduces
// misses of guaranteed (non-demoted) jobs on analysis-accepted
// subsets.
func TestBackgroundNeverEndangersGuaranteed(t *testing.T) {
	rng := rand.New(rand.NewSource(2020))
	for trial := 0; trial < 120; trial++ {
		k := 2 + rng.Intn(3)
		tasks := buildFeasibleSubset(rng, k)
		if len(tasks) == 0 {
			continue
		}
		st := SimulateCore(CoreConfig{
			Tasks:        tasks,
			K:            k,
			Horizon:      8000,
			Model:        WorstCaseModel{},
			BackgroundLO: true,
		})
		if st.Missed != 0 {
			t.Fatalf("trial %d (K=%d): %d guaranteed misses with background service (first %+v)",
				trial, k, st.Missed, st.Misses[0])
		}
	}
}

// TestBackgroundAccountingSeparated: demoted jobs never contribute to
// the guaranteed Missed counter, and their outcomes are fully
// accounted.
func TestBackgroundAccountingSeparated(t *testing.T) {
	tasks := []mc.Task{
		mkTask(1, 10, 2, 1, 8.5), // heavy HI: overruns leave 1.5 slack
		mkTask(2, 10, 1, 2.5),    // LO demand 2.5 > slack -> misses
		mkTask(3, 50, 1, 1),      // small LO
	}
	st := SimulateCore(CoreConfig{
		Tasks: tasks, K: 2, Horizon: 3000, Model: WorstCaseModel{},
		BackgroundLO: true,
	})
	if st.Missed != 0 {
		t.Fatalf("guaranteed misses: %d", st.Missed)
	}
	if st.BackgroundMisses == 0 {
		t.Error("expected some background misses under heavy HI load")
	}
	settled := st.Completed + st.BackgroundCompleted + st.BackgroundMisses + st.Missed
	if settled > st.Released {
		t.Errorf("settled %d > released %d", settled, st.Released)
	}
}

// TestBackgroundOffLeavesCountersZero ensures the new counters stay
// zero when the option is off.
func TestBackgroundOffLeavesCountersZero(t *testing.T) {
	tasks := []mc.Task{mkTask(1, 20, 2, 2, 8), mkTask(2, 20, 1, 4)}
	st := SimulateCore(CoreConfig{Tasks: tasks, K: 2, Horizon: 1000, Model: WorstCaseModel{}})
	if st.BackgroundCompleted != 0 || st.BackgroundMisses != 0 {
		t.Errorf("background counters non-zero: %d, %d", st.BackgroundCompleted, st.BackgroundMisses)
	}
}
