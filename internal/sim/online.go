package sim

import (
	"fmt"

	"catpa/internal/mc"
)

// Timeline extends the sim-oracle to the dynamic systems an online
// scenario commits: an admission session walks a core through a
// sequence of task-subset configurations (one membership change per
// accepted Admit or Release), and each configuration is a stationary
// system between membership changes — the analysis that screened the
// admission asserts the configuration schedulable from idle, with all
// mode-switch dynamics happening inside the epoch. A Timeline collects
// every distinct configuration observed along such a walk (deduplicated
// by the canonical task-set hash, in first-seen order) and Run executes
// each under an execution model, so "every online accept survives the
// worst-case model" becomes one SimulateSystem call over the distinct
// configurations instead of a quadratic re-simulation per event.
//
// A Timeline is not safe for concurrent use.
type Timeline struct {
	k       int
	seen    map[uint64]struct{}
	configs []*mc.TaskSet
}

// NewTimeline returns an empty timeline for systems of k criticality
// levels.
func NewTimeline(k int) *Timeline {
	if k < 1 {
		panic(fmt.Sprintf("sim: NewTimeline: k = %d < 1", k))
	}
	return &Timeline{k: k, seen: make(map[uint64]struct{})}
}

// ObserveCore records one core's committed subset after a membership
// change. Empty subsets carry no schedulability claim and are skipped;
// previously-seen configurations (by mc.TaskSetHash, so task order and
// labels are irrelevant) are deduplicated. The subset is cloned — the
// caller may keep mutating its scratch storage.
func (tl *Timeline) ObserveCore(sub *mc.TaskSet) {
	if sub == nil || len(sub.Tasks) == 0 {
		return
	}
	h := mc.TaskSetHash(sub)
	if _, ok := tl.seen[h]; ok {
		return
	}
	tl.seen[h] = struct{}{}
	tl.configs = append(tl.configs, sub.Clone())
}

// Observe records every core of a partitioned system, one ObserveCore
// per subset.
func (tl *Timeline) Observe(subsets []*mc.TaskSet) {
	for _, sub := range subsets {
		tl.ObserveCore(sub)
	}
}

// Configs returns the number of distinct configurations observed.
func (tl *Timeline) Configs() int { return len(tl.configs) }

// Config returns the i-th distinct configuration, in first-seen order;
// the index space PrioritiesFor and ModelFor address under Run.
func (tl *Timeline) Config(i int) *mc.TaskSet { return tl.configs[i] }

// Run executes every distinct observed configuration under cfg, each
// as one independent core of a partitioned system (a configuration's
// epoch has no coupling to any other), and returns the combined
// statistics: the oracle's verdict is Missed() == 0. cfg.Subsets is
// owned by the timeline and must be nil; cfg.ModelFor and
// cfg.PrioritiesFor are indexed like Config. A zero cfg.K inherits the
// timeline's.
func (tl *Timeline) Run(cfg SystemConfig) *SystemStats {
	if cfg.Subsets != nil {
		panic("sim: Timeline.Run: cfg.Subsets is owned by the timeline")
	}
	if cfg.K == 0 {
		cfg.K = tl.k
	}
	cfg.Subsets = tl.configs
	return SimulateSystem(cfg)
}
