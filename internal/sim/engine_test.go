package sim

import (
	"math"
	"math/rand"
	"testing"

	"catpa/internal/edfvd"
	"catpa/internal/mc"
)

func mkTask(id int, period float64, crit int, wcet ...float64) mc.Task {
	return mc.Task{ID: id, Period: period, Crit: crit, WCET: wcet}
}

func TestSingleTaskCompletesEveryJob(t *testing.T) {
	s := SimulateCore(CoreConfig{
		Tasks:   []mc.Task{mkTask(1, 10, 1, 4)},
		K:       1,
		Horizon: 100,
		Model:   NominalModel{},
	})
	if s.Missed != 0 {
		t.Fatalf("missed = %d", s.Missed)
	}
	if s.Completed != 10 {
		t.Errorf("completed = %d, want 10", s.Completed)
	}
	if s.Released != 10 {
		t.Errorf("released = %d, want 10", s.Released)
	}
	if math.Abs(s.BusyTime-40) > 1e-6 {
		t.Errorf("busy = %v, want 40", s.BusyTime)
	}
	if s.ModeSwitches != 0 || s.MaxMode != 1 {
		t.Errorf("mode switches = %d maxMode = %d", s.ModeSwitches, s.MaxMode)
	}
}

func TestOverloadedCoreMisses(t *testing.T) {
	// Two 0.8-utilization tasks cannot fit one core: misses must be
	// detected (sanity of the miss detector).
	s := SimulateCore(CoreConfig{
		Tasks: []mc.Task{
			mkTask(1, 10, 1, 8),
			mkTask(2, 10, 1, 8),
		},
		K:       1,
		Horizon: 200,
	})
	if s.Missed == 0 {
		t.Fatal("overloaded core reported no misses")
	}
	if len(s.Misses) != s.Missed {
		t.Errorf("Misses slice length %d != Missed %d", len(s.Misses), s.Missed)
	}
}

func TestEDFPreemption(t *testing.T) {
	// A long job must be preempted by a shorter-deadline release and
	// both must finish (total demand fits).
	s := SimulateCore(CoreConfig{
		Tasks: []mc.Task{
			mkTask(1, 100, 1, 50), // long
			mkTask(2, 10, 1, 2),   // frequent, tight deadlines
		},
		K:       1,
		Horizon: 100,
		Model:   NominalModel{},
	})
	if s.Missed != 0 {
		t.Fatalf("missed = %d, misses=%v", s.Missed, s.Misses)
	}
	// 1 long job + 10 short jobs.
	if s.Completed != 11 {
		t.Errorf("completed = %d, want 11", s.Completed)
	}
}

func TestModeSwitchDropsLOTasks(t *testing.T) {
	// HI task overruns its LO budget on every job; the LO task must be
	// dropped at the switch and suppressed until the idle reset.
	s := SimulateCore(CoreConfig{
		Tasks: []mc.Task{
			mkTask(1, 20, 2, 2, 8), // HI: overruns c(1)=2
			mkTask(2, 20, 1, 4),    // LO
		},
		K:       2,
		Horizon: 200,
		Model:   WorstCaseModel{},
	})
	if s.Missed != 0 {
		t.Fatalf("missed = %d (%v)", s.Missed, s.Misses)
	}
	if s.ModeSwitches == 0 {
		t.Fatal("no mode switches despite guaranteed overrun")
	}
	if s.MaxMode != 2 {
		t.Errorf("maxMode = %d, want 2", s.MaxMode)
	}
	if s.DroppedJobs+s.SkippedReleases == 0 {
		t.Error("LO work neither dropped nor suppressed")
	}
	if s.IdleResets == 0 {
		t.Error("core never idle-reset to mode 1")
	}
}

func TestNominalModelNeverSwitches(t *testing.T) {
	s := SimulateCore(CoreConfig{
		Tasks: []mc.Task{
			mkTask(1, 20, 2, 2, 8),
			mkTask(2, 10, 1, 3),
		},
		K:       2,
		Horizon: 400,
		Model:   NominalModel{},
	})
	if s.ModeSwitches != 0 {
		t.Errorf("nominal run switched modes %d times", s.ModeSwitches)
	}
	if s.Missed != 0 {
		t.Errorf("missed = %d", s.Missed)
	}
	if s.SkippedReleases != 0 || s.DroppedJobs != 0 {
		t.Error("nominal run dropped work")
	}
}

func TestLevelModelStopsAtLevel(t *testing.T) {
	// Level-2 behaviour in a 3-level system: mode must reach 2, never 3.
	s := SimulateCore(CoreConfig{
		Tasks: []mc.Task{
			mkTask(1, 30, 3, 2, 5, 9),
			mkTask(2, 30, 2, 2, 4),
			mkTask(3, 30, 1, 3),
		},
		K:       3,
		Horizon: 600,
		Model:   LevelModel{Level: 2},
	})
	if s.MaxMode != 2 {
		t.Errorf("maxMode = %d, want 2", s.MaxMode)
	}
	if s.Missed != 0 {
		t.Errorf("missed = %d (%v)", s.Missed, s.Misses)
	}
}

func TestJobAccounting(t *testing.T) {
	// Released jobs are eventually completed, missed, dropped, or
	// still pending at the horizon.
	s := SimulateCore(CoreConfig{
		Tasks: []mc.Task{
			mkTask(1, 15, 2, 2, 6),
			mkTask(2, 10, 1, 3),
			mkTask(3, 35, 1, 5),
		},
		K:       2,
		Horizon: 700,
		Model:   NewRandomModel(0.3, 0.2, 99),
	})
	settled := s.Completed + s.Missed + s.DroppedJobs
	if settled > s.Released {
		t.Fatalf("settled %d > released %d", settled, s.Released)
	}
	// At most a handful of jobs may straddle the horizon.
	if s.Released-settled > len(s.Misses)+3 {
		t.Errorf("too many unsettled jobs: released=%d settled=%d", s.Released, settled)
	}
}

func TestDefaultHorizon(t *testing.T) {
	tasks := []mc.Task{mkTask(1, 100, 1, 1), mkTask(2, 250, 1, 1)}
	if got := DefaultHorizon(tasks); got != 5000 {
		t.Errorf("DefaultHorizon = %v, want 5000", got)
	}
}

func TestSimulateCorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for crit > K")
		}
	}()
	SimulateCore(CoreConfig{Tasks: []mc.Task{mkTask(1, 10, 2, 1, 2)}, K: 1})
}

// buildFeasibleSubset draws random tasks until just before the subset
// stops being Theorem-1 feasible, returning a feasible, near-capacity
// subset.
func buildFeasibleSubset(rng *rand.Rand, k int) []mc.Task {
	m := mc.NewUtilMatrix(k)
	var tasks []mc.Task
	for id := 1; id <= 60; id++ {
		crit := 1 + rng.Intn(k)
		p := []float64{50, 80, 100, 150, 200, 400}[rng.Intn(6)]
		u1 := 0.03 + rng.Float64()*0.2
		w := make([]float64, crit)
		c := u1 * p
		for i := range w {
			w[i] = c
			c *= 1 + 0.3 + rng.Float64()*0.4
		}
		tk := mc.Task{ID: id, Period: p, Crit: crit, WCET: w}
		if tk.MaxUtil() > 1 {
			continue
		}
		m.Add(&tk)
		if !edfvd.Feasible(m) {
			m.Remove(&tk)
			continue
		}
		tasks = append(tasks, tk)
	}
	return tasks
}

// TestFeasibleDualSubsetsNeverMissWorstCase is the central validation:
// any dual-criticality subset accepted by the Theorem-1 analysis must
// survive the fully adversarial execution (every job runs to its
// own-level WCET) with zero deadline misses of non-dropped jobs.
func TestFeasibleDualSubsetsNeverMissWorstCase(t *testing.T) {
	rng := rand.New(rand.NewSource(20160816))
	for trial := 0; trial < 200; trial++ {
		tasks := buildFeasibleSubset(rng, 2)
		if len(tasks) == 0 {
			continue
		}
		s := SimulateCore(CoreConfig{
			Tasks:   tasks,
			K:       2,
			Horizon: 10000,
			Model:   WorstCaseModel{},
		})
		if s.Missed != 0 {
			t.Fatalf("trial %d: %d misses on an analysis-accepted subset; first=%+v tasks=%v",
				trial, s.Missed, s.Misses[0], tasks)
		}
	}
}

// TestFeasibleDualSubsetsNeverMissRandom repeats the validation under
// randomized overruns (partial executions, sporadic overruns at
// arbitrary instants).
func TestFeasibleDualSubsetsNeverMissRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	for trial := 0; trial < 100; trial++ {
		tasks := buildFeasibleSubset(rng, 2)
		if len(tasks) == 0 {
			continue
		}
		s := SimulateCore(CoreConfig{
			Tasks:   tasks,
			K:       2,
			Horizon: 10000,
			Model:   NewRandomModel(0.2, 0.15, int64(trial)),
		})
		if s.Missed != 0 {
			t.Fatalf("trial %d: %d misses (first %+v)", trial, s.Missed, s.Misses[0])
		}
	}
}

// TestEq4SubsetsNeverMissAnyK: subsets passing the pessimistic Eq. 4
// test run plain EDF and must never miss for any K, under any model.
func TestEq4SubsetsNeverMissAnyK(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 150; trial++ {
		k := 2 + rng.Intn(4)
		m := mc.NewUtilMatrix(k)
		var tasks []mc.Task
		for id := 1; id <= 40; id++ {
			crit := 1 + rng.Intn(k)
			p := []float64{50, 100, 200, 500}[rng.Intn(4)]
			w := make([]float64, crit)
			c := (0.02 + rng.Float64()*0.1) * p
			for i := range w {
				w[i] = c
				c *= 1.4
			}
			tk := mc.Task{ID: id, Period: p, Crit: crit, WCET: w}
			if tk.MaxUtil() > 1 {
				continue
			}
			m.Add(&tk)
			if !edfvd.SimpleFeasible(m) {
				m.Remove(&tk)
				continue
			}
			tasks = append(tasks, tk)
		}
		s := SimulateCore(CoreConfig{Tasks: tasks, K: k, Horizon: 8000, Model: WorstCaseModel{}})
		if !s.PlainEDF {
			t.Fatalf("trial %d: Eq.4 subset did not select plain EDF", trial)
		}
		if s.Missed != 0 {
			t.Fatalf("trial %d (K=%d): %d misses on Eq.4 subset (first %+v)", trial, k, s.Missed, s.Misses[0])
		}
	}
}

// TestFeasibleMultiLevelSubsetsWorstCase extends the validation to
// K in {3,4,5}: the reconstructed multi-level virtual-deadline scheme
// must keep analysis-accepted subsets miss-free under full overruns.
func TestFeasibleMultiLevelSubsetsWorstCase(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	for trial := 0; trial < 150; trial++ {
		k := 3 + rng.Intn(3)
		tasks := buildFeasibleSubset(rng, k)
		if len(tasks) == 0 {
			continue
		}
		s := SimulateCore(CoreConfig{
			Tasks:   tasks,
			K:       k,
			Horizon: 10000,
			Model:   WorstCaseModel{},
		})
		if s.Missed != 0 {
			t.Fatalf("trial %d (K=%d): %d misses on an analysis-accepted subset; first=%+v",
				trial, k, s.Missed, s.Misses[0])
		}
	}
}

// TestPlainEDFComparison documents why virtual deadlines exist: over
// random Theorem-1-feasible (but Eq.4-infeasible) subsets, EDF-VD must
// never miss, while forcing plain EDF may. The plain-EDF outcome is
// logged rather than asserted (AMC dropping makes plain EDF survive
// many instances too).
func TestPlainEDFComparison(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vdMisses, plainMisses, interesting := 0, 0, 0
	for trial := 0; trial < 200; trial++ {
		tasks := buildFeasibleSubset(rng, 2)
		if len(tasks) == 0 {
			continue
		}
		m := mc.NewUtilMatrix(2)
		for i := range tasks {
			m.Add(&tasks[i])
		}
		if edfvd.SimpleFeasible(m) {
			continue // plain EDF provably fine; not interesting
		}
		interesting++
		vd := SimulateCore(CoreConfig{Tasks: tasks, K: 2, Horizon: 8000, Model: WorstCaseModel{}})
		plain := SimulateCore(CoreConfig{Tasks: tasks, K: 2, Horizon: 8000, Model: WorstCaseModel{}, ForcePlainEDF: true})
		vdMisses += vd.Missed
		plainMisses += plain.Missed
	}
	if vdMisses != 0 {
		t.Fatalf("EDF-VD missed %d deadlines on feasible subsets", vdMisses)
	}
	t.Logf("plain-EDF misses on %d VD-requiring subsets: %d", interesting, plainMisses)
}

func TestSimulateSystem(t *testing.T) {
	subs := []*mc.TaskSet{
		{Tasks: []mc.Task{mkTask(1, 20, 2, 2, 8), mkTask(2, 20, 1, 4)}},
		{Tasks: []mc.Task{mkTask(3, 10, 1, 5)}},
	}
	st := SimulateSystem(SystemConfig{Subsets: subs, K: 2, Horizon: 200})
	if len(st.Cores) != 2 {
		t.Fatalf("cores = %d", len(st.Cores))
	}
	if st.Missed() != 0 {
		t.Errorf("missed = %d", st.Missed())
	}
	if st.Completed() == 0 {
		t.Error("no completions")
	}
	if st.ModeSwitches() == 0 {
		t.Error("no mode switches despite worst-case default model")
	}
	if st.String() == "" {
		t.Error("empty String()")
	}
}

func TestSimulateSystemPerCoreModels(t *testing.T) {
	subs := []*mc.TaskSet{
		{Tasks: []mc.Task{mkTask(1, 20, 2, 2, 8)}},
		{Tasks: []mc.Task{mkTask(2, 20, 2, 2, 8)}},
	}
	st := SimulateSystem(SystemConfig{
		Subsets: subs,
		K:       2,
		Horizon: 400,
		ModelFor: func(core int) ExecModel {
			if core == 0 {
				return NominalModel{}
			}
			return WorstCaseModel{}
		},
	})
	if st.Cores[0].ModeSwitches != 0 {
		t.Error("nominal core switched modes")
	}
	if st.Cores[1].ModeSwitches == 0 {
		t.Error("worst-case core never switched")
	}
}

func TestExecModels(t *testing.T) {
	tk := mkTask(1, 10, 2, 2, 6)
	if got := (NominalModel{}).ExecTime(&tk, 0); got != 2 {
		t.Errorf("NominalModel = %v", got)
	}
	if got := (NominalModel{Fraction: 0.5}).ExecTime(&tk, 0); got != 1 {
		t.Errorf("NominalModel{0.5} = %v", got)
	}
	if got := (WorstCaseModel{}).ExecTime(&tk, 0); got != 6 {
		t.Errorf("WorstCaseModel = %v", got)
	}
	if got := (LevelModel{Level: 1}).ExecTime(&tk, 0); got != 2 {
		t.Errorf("LevelModel{1} = %v", got)
	}
	if got := (LevelModel{Level: 5}).ExecTime(&tk, 0); got != 6 {
		t.Errorf("LevelModel{5} saturates = %v", got)
	}
	rm := NewRandomModel(0.3, 0, 1)
	for i := 0; i < 100; i++ {
		v := rm.ExecTime(&tk, i)
		if v < 0.3*2-1e-9 || v > 2+1e-9 {
			t.Fatalf("RandomModel out of range: %v", v)
		}
	}
	always := NewRandomModel(0.3, 1, 1)
	if got := always.ExecTime(&tk, 0); got != 6 {
		t.Errorf("RandomModel overrun = %v", got)
	}
}
