package sim

import (
	"testing"

	"catpa/internal/mc"
)

func TestFPDispatchOrder(t *testing.T) {
	// Two tasks released together; under FP with task 1 ranked first
	// the lower-ranked task 0 waits even though its deadline is
	// earlier (priority inversion relative to EDF — by construction).
	tasks := []mc.Task{
		mkTask(1, 10, 1, 2), // would win under EDF (deadline 10)
		mkTask(2, 50, 1, 5), // ranked highest under the forced order
	}
	st := SimulateCore(CoreConfig{
		Tasks:         tasks,
		K:             1,
		Horizon:       50,
		Model:         NominalModel{},
		FixedPriority: true,
		Priorities:    []int{1, 0}, // task index 1 first
	})
	// Task 0's first job completes at 7 (waits for task 1's 5 units);
	// response 7 instead of EDF's 2.
	if st.MaxResponse[0] < 7-1e-6 {
		t.Errorf("task 0 max response = %v, want >= 7 (priority inversion)", st.MaxResponse[0])
	}
	if st.Missed != 0 {
		t.Errorf("missed = %d", st.Missed)
	}
	if st.PlainEDF {
		t.Error("PlainEDF reported under fixed-priority dispatching")
	}
}

func TestFPPanicsOnBadPriorities(t *testing.T) {
	tasks := []mc.Task{mkTask(1, 10, 1, 2), mkTask(2, 20, 1, 2)}
	cases := map[string][]int{
		"wrong length": {0},
		"duplicate":    {0, 0},
		"out of range": {0, 5},
	}
	for name, prio := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			SimulateCore(CoreConfig{
				Tasks: tasks, K: 1, Horizon: 10,
				FixedPriority: true, Priorities: prio,
			})
		}()
	}
}

func TestFPModeSwitchStillDrops(t *testing.T) {
	// AMC behaviour is dispatcher-independent: the HI overrun must
	// drop the LO task under FP too.
	tasks := []mc.Task{
		mkTask(1, 20, 2, 2, 8),
		mkTask(2, 20, 1, 4),
	}
	st := SimulateCore(CoreConfig{
		Tasks:         tasks,
		K:             2,
		Horizon:       200,
		Model:         WorstCaseModel{},
		FixedPriority: true,
		Priorities:    []int{0, 1},
	})
	if st.ModeSwitches == 0 {
		t.Error("no mode switches")
	}
	if st.DroppedJobs+st.SkippedReleases == 0 {
		t.Error("LO work not dropped under FP")
	}
	if st.Missed != 0 {
		t.Errorf("missed = %d", st.Missed)
	}
}

func TestMaxResponseUnderEDF(t *testing.T) {
	tasks := []mc.Task{
		mkTask(1, 10, 1, 3),
		mkTask(2, 25, 1, 5),
	}
	st := SimulateCore(CoreConfig{
		Tasks:   tasks,
		K:       1,
		Horizon: 500,
		Model:   NominalModel{},
	})
	if len(st.MaxResponse) != 2 {
		t.Fatalf("MaxResponse length %d", len(st.MaxResponse))
	}
	// Responses are at least the WCET and at most the period (no
	// misses occurred).
	for i, tk := range tasks {
		if st.MaxResponse[i] < tk.C(1)-1e-9 || st.MaxResponse[i] > tk.Period+1e-9 {
			t.Errorf("task %d max response %v outside [C, T]", i, st.MaxResponse[i])
		}
	}
}
