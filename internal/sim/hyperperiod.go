package sim

import "catpa/internal/mc"

// HyperperiodHorizon returns the hyperperiod (least common multiple of
// the task periods) when every period is a positive integer and the
// LCM does not exceed maxHorizon; ok reports success. For synchronous
// periodic releases and a deterministic execution model, the schedule
// repeats with the hyperperiod once the system returns to its initial
// state, so simulating a single hyperperiod (plus one more to confirm
// steady state — see TestHyperperiodExactness) certifies the absence
// of deadline misses for all time. Non-integer periods or an oversized
// LCM return ok = false; callers then fall back to DefaultHorizon.
func HyperperiodHorizon(tasks []mc.Task, maxHorizon float64) (float64, bool) {
	if len(tasks) == 0 {
		return 0, false
	}
	lcm := int64(1)
	for i := range tasks {
		p := tasks[i].Period
		ip := int64(p)
		//lint:ignore mclint/floateq deliberately exact: detects whether the period is an integer, a representability test with no meaningful tolerance
		if p <= 0 || float64(ip) != p {
			return 0, false // non-integer period
		}
		lcm = lcm / gcd(lcm, ip) * ip
		if float64(lcm) > maxHorizon {
			return 0, false
		}
	}
	return float64(lcm), true
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
