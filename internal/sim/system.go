package sim

import (
	"fmt"
	"strings"

	"catpa/internal/mc"
)

// SystemStats aggregates a partitioned multicore run: one CoreStats
// per core plus system-wide totals.
type SystemStats struct {
	Cores []*CoreStats
}

// Missed returns the total deadline misses across cores.
func (s *SystemStats) Missed() int {
	n := 0
	for _, c := range s.Cores {
		n += c.Missed
	}
	return n
}

// Completed returns the total completed jobs across cores.
func (s *SystemStats) Completed() int {
	n := 0
	for _, c := range s.Cores {
		n += c.Completed
	}
	return n
}

// ModeSwitches returns the total upward mode transitions across cores.
func (s *SystemStats) ModeSwitches() int {
	n := 0
	for _, c := range s.Cores {
		n += c.ModeSwitches
	}
	return n
}

// String renders a per-core summary table.
func (s *SystemStats) String() string {
	var b strings.Builder
	for i, c := range s.Cores {
		fmt.Fprintf(&b, "P%-2d: completed=%-6d missed=%-3d dropped=%-5d skipped=%-5d switches=%-4d maxMode=%d util=%.3f edf-vd=%v\n",
			i+1, c.Completed, c.Missed, c.DroppedJobs, c.SkippedReleases, c.ModeSwitches, c.MaxMode, c.Utilization(), !c.PlainEDF)
	}
	return b.String()
}

// SystemConfig configures a partitioned multicore simulation.
type SystemConfig struct {
	// Subsets holds one task subset per core.
	Subsets []*mc.TaskSet
	// K is the number of system criticality levels.
	K int
	// Horizon is the per-core simulated duration; zero derives it per
	// core via DefaultHorizon.
	Horizon float64
	// ModelFor returns the execution model for a core; nil selects
	// WorstCaseModel everywhere. Stateful models (RandomModel) must
	// not be shared between cores.
	ModelFor func(core int) ExecModel
	// FixedPriority switches every core from EDF-VD to static-priority
	// dispatching; PrioritiesFor must then be set.
	FixedPriority bool
	// PrioritiesFor returns the priority order for a core's subset (a
	// permutation of its task indices, e.g. fpamc.Priorities applied to
	// the subset). Required when FixedPriority is set.
	PrioritiesFor func(core int) []int
}

// SimulateSystem runs every core of a partitioned system independently
// (partitioned scheduling has no inter-core coupling) and returns the
// combined statistics.
func SimulateSystem(cfg SystemConfig) *SystemStats {
	out := &SystemStats{Cores: make([]*CoreStats, len(cfg.Subsets))}
	for i, sub := range cfg.Subsets {
		var model ExecModel
		if cfg.ModelFor != nil {
			model = cfg.ModelFor(i)
		}
		var prios []int
		if cfg.FixedPriority {
			if cfg.PrioritiesFor == nil {
				panic("sim: FixedPriority requires PrioritiesFor")
			}
			prios = cfg.PrioritiesFor(i)
		}
		out.Cores[i] = SimulateCore(CoreConfig{
			Tasks:         sub.Tasks,
			K:             cfg.K,
			Horizon:       cfg.Horizon,
			Model:         model,
			FixedPriority: cfg.FixedPriority,
			Priorities:    prios,
		})
	}
	return out
}
