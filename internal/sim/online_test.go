package sim

import (
	"testing"

	"catpa/internal/mc"
)

func tlSet(tasks ...mc.Task) *mc.TaskSet { return &mc.TaskSet{Tasks: tasks} }

// TestTimelineDedup checks the configuration bookkeeping: empty
// subsets are skipped, repeats and permutations deduplicate, and
// first-seen order is preserved.
func TestTimelineDedup(t *testing.T) {
	a := mc.MustTaskSlab(1, "a", 10, []float64{2})
	b := mc.MustTaskSlab(2, "b", 20, []float64{4, 6})
	c := mc.MustTaskSlab(3, "c", 40, []float64{8})

	tl := NewTimeline(2)
	tl.ObserveCore(nil)
	tl.ObserveCore(tlSet())
	if tl.Configs() != 0 {
		t.Fatalf("empty observations recorded %d configs", tl.Configs())
	}
	tl.ObserveCore(tlSet(a))
	tl.ObserveCore(tlSet(a, b))
	tl.ObserveCore(tlSet(b, a)) // permutation of the previous
	tl.ObserveCore(tlSet(a))    // repeat
	tl.Observe([]*mc.TaskSet{tlSet(c), tlSet(a, b)})
	if tl.Configs() != 3 {
		t.Fatalf("%d distinct configs, want 3", tl.Configs())
	}
	if len(tl.Config(0).Tasks) != 1 || len(tl.Config(1).Tasks) != 2 || len(tl.Config(2).Tasks) != 1 {
		t.Fatal("first-seen order not preserved")
	}
	// Clone isolation: mutating the observed scratch set must not reach
	// the timeline.
	scratch := tlSet(a)
	tl2 := NewTimeline(2)
	tl2.ObserveCore(scratch)
	scratch.Tasks[0].WCET[0] = 99
	if tl2.Config(0).Tasks[0].WCET[0] == 99 {
		t.Fatal("timeline aliases the observed scratch storage")
	}
}

// TestTimelineRun executes a trivially schedulable configuration pair
// and checks the oracle plumbing end to end.
func TestTimelineRun(t *testing.T) {
	tl := NewTimeline(2)
	tl.ObserveCore(tlSet(mc.MustTaskSlab(1, "", 10, []float64{1})))
	tl.ObserveCore(tlSet(
		mc.MustTaskSlab(1, "", 10, []float64{1}),
		mc.MustTaskSlab(2, "", 20, []float64{2, 4}),
	))
	st := tl.Run(SystemConfig{Horizon: 200})
	if len(st.Cores) != 2 {
		t.Fatalf("%d simulated configs, want 2", len(st.Cores))
	}
	if st.Missed() != 0 {
		t.Fatalf("%d misses on a trivially schedulable timeline", st.Missed())
	}
	if st.Completed() == 0 {
		t.Fatal("no jobs completed; the simulation was vacuous")
	}
}

// TestTimelineRunGuards pins the ownership and dimension guards.
func TestTimelineRunGuards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run accepted a caller-supplied Subsets")
		}
	}()
	NewTimeline(2).Run(SystemConfig{Subsets: []*mc.TaskSet{tlSet()}})
}

func TestNewTimelineBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTimeline accepted k = 0")
		}
	}()
	NewTimeline(0)
}
