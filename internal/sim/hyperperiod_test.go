package sim

import (
	"math/rand"
	"testing"

	"catpa/internal/edfvd"
	"catpa/internal/mc"
)

func TestHyperperiodHorizon(t *testing.T) {
	tasks := []mc.Task{
		mkTask(1, 10, 1, 1),
		mkTask(2, 15, 1, 1),
		mkTask(3, 12, 1, 1),
	}
	h, ok := HyperperiodHorizon(tasks, 1e6)
	if !ok || h != 60 {
		t.Fatalf("hyperperiod = %v ok=%v, want 60", h, ok)
	}
	// Non-integer period.
	frac := []mc.Task{mkTask(1, 10.5, 1, 1)}
	if _, ok := HyperperiodHorizon(frac, 1e6); ok {
		t.Error("non-integer period accepted")
	}
	// Oversized LCM.
	big := []mc.Task{mkTask(1, 1999, 1, 1), mkTask(2, 1993, 1, 1), mkTask(3, 1997, 1, 1)}
	if _, ok := HyperperiodHorizon(big, 1e6); ok {
		t.Error("oversized LCM accepted")
	}
	// Empty set.
	if _, ok := HyperperiodHorizon(nil, 1e6); ok {
		t.Error("empty set accepted")
	}
}

// intPeriodFeasibleSubset builds a Theorem-1-feasible subset whose
// periods are small integers with a bounded hyperperiod.
func intPeriodFeasibleSubset(rng *rand.Rand, k int) []mc.Task {
	periods := []float64{10, 20, 25, 40, 50, 100}
	m := mc.NewUtilMatrix(k)
	var tasks []mc.Task
	for id := 1; id <= 25; id++ {
		crit := 1 + rng.Intn(k)
		p := periods[rng.Intn(len(periods))]
		w := make([]float64, crit)
		c := (0.03 + rng.Float64()*0.15) * p
		for i := range w {
			w[i] = c
			c *= 1.4
		}
		tk := mc.Task{ID: id, Period: p, Crit: crit, WCET: w}
		if tk.MaxUtil() > 1 {
			continue
		}
		m.Add(&tk)
		if !edfvd.Feasible(m) {
			m.Remove(&tk)
			continue
		}
		tasks = append(tasks, tk)
	}
	return tasks
}

// TestHyperperiodExactness certifies accepted subsets exactly: under
// the deterministic worst-case model with synchronous release, the
// per-hyperperiod statistics of the second hyperperiod must equal
// those of the first (steady state), and no hyperperiod contains a
// miss — which extends the zero-miss guarantee to all time.
func TestHyperperiodExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	validated := 0
	for trial := 0; trial < 60; trial++ {
		k := 2 + rng.Intn(3)
		tasks := intPeriodFeasibleSubset(rng, k)
		if len(tasks) == 0 {
			continue
		}
		h, ok := HyperperiodHorizon(tasks, 1e5)
		if !ok {
			continue
		}
		one := SimulateCore(CoreConfig{Tasks: tasks, K: k, Horizon: h, Model: WorstCaseModel{}})
		two := SimulateCore(CoreConfig{Tasks: tasks, K: k, Horizon: 2 * h, Model: WorstCaseModel{}})
		if one.Missed != 0 || two.Missed != 0 {
			t.Fatalf("trial %d: misses in hyperperiod simulation (%d, %d)", trial, one.Missed, two.Missed)
		}
		// Steady state: the second hyperperiod repeats the first.
		if two.Released != 2*one.Released {
			t.Fatalf("trial %d: releases not periodic: %d vs 2x%d", trial, two.Released, one.Released)
		}
		if two.Completed+two.DroppedJobs+two.SkippedReleases !=
			2*(one.Completed+one.DroppedJobs+one.SkippedReleases) {
			t.Fatalf("trial %d: settled-job counts not periodic", trial)
		}
		validated++
	}
	if validated == 0 {
		t.Fatal("no subset validated — construction broken")
	}
	t.Logf("exactly certified %d subsets over full hyperperiods", validated)
}
