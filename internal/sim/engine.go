package sim

import (
	"fmt"
	"math"

	"catpa/internal/edfvd"
	"catpa/internal/mc"
)

// timeEps is the tolerance for time comparisons inside the engine.
const timeEps = 1e-7

// Miss records one deadline miss of a non-dropped job.
type Miss struct {
	// Task is the index of the task within the simulated subset.
	Task int
	// Job is the zero-based job index of that task.
	Job int
	// Deadline is the absolute deadline that was missed; DetectedAt
	// the simulation time at which the engine noticed.
	Deadline, DetectedAt float64
}

// CoreStats aggregates one core's run.
type CoreStats struct {
	// Completed counts jobs that signalled completion by their
	// deadline; Missed counts deadline misses of jobs AMC did not
	// drop (the safety property: Missed must be 0 for subsets the
	// analysis accepted).
	Completed, Missed int

	// Released counts jobs admitted to the ready queue; DroppedJobs
	// counts in-flight jobs discarded by mode switches;
	// SkippedReleases counts releases suppressed while the core
	// operated above the task's criticality level.
	Released, DroppedJobs, SkippedReleases int

	// BackgroundCompleted and BackgroundMisses count demoted
	// low-criticality jobs under CoreConfig.BackgroundLO: completions
	// (possibly late — a late background completion counts as a miss,
	// not a completion) and deadline misses. Both are zero when the
	// option is off.
	BackgroundCompleted, BackgroundMisses int

	// ModeSwitches counts upward mode transitions, IdleResets the
	// returns to mode 1, and MaxMode the highest mode reached.
	ModeSwitches, IdleResets, MaxMode int

	// BusyTime is the total processor time spent executing jobs over
	// the simulated Horizon.
	BusyTime, Horizon float64

	// PlainEDF reports whether the core ran without virtual deadlines
	// (subset passed the pessimistic Eq. 4 test). Always false under
	// fixed-priority dispatching.
	PlainEDF bool

	// MaxResponse[i] is the largest observed response time
	// (completion minus release) of task i's completed jobs; 0 if the
	// task completed no job.
	MaxResponse []float64

	// Misses lists every recorded miss (same events counted by Missed).
	Misses []Miss
}

// Utilization returns BusyTime/Horizon.
func (s *CoreStats) Utilization() float64 {
	if s.Horizon <= 0 {
		return 0
	}
	return s.BusyTime / s.Horizon
}

// CoreConfig configures a single-core simulation.
type CoreConfig struct {
	// Tasks is the core's subset.
	Tasks []mc.Task
	// K is the number of system criticality levels (>= max task
	// criticality).
	K int
	// Horizon is the simulated duration; zero selects
	// DefaultHorizon(Tasks).
	Horizon float64
	// Model decides job execution demands; nil selects WorstCaseModel.
	Model ExecModel
	// ForcePlainEDF disables virtual deadlines even when the subset
	// needs them (used to demonstrate why EDF-VD exists).
	ForcePlainEDF bool

	// FixedPriority switches dispatching from EDF-VD to static
	// priorities: Priorities[p] is the task index with the p-th
	// highest priority (e.g. fpamc.Priorities). Virtual deadlines are
	// not used. AMC mode switching, job dropping and the idle reset
	// behave identically.
	FixedPriority bool
	// Priorities is required when FixedPriority is set and must be a
	// permutation of the task indices.
	Priorities []int

	// BackgroundLO enables graceful degradation: instead of being
	// discarded at a mode switch, low-criticality jobs (and their
	// further releases) are demoted to background priority — they run
	// only when no guaranteed job is ready and carry no deadline
	// guarantee. Guaranteed tasks' behaviour (and the zero-miss
	// property) is unaffected; background outcomes are reported in
	// BackgroundCompleted / BackgroundMisses instead of
	// DroppedJobs / SkippedReleases.
	BackgroundLO bool
}

// DefaultHorizon returns 20 times the largest period — long enough for
// repeated mode switches and idle resets at every period scale in the
// Table IV ranges.
func DefaultHorizon(tasks []mc.Task) float64 {
	maxP := 0.0
	for i := range tasks {
		if tasks[i].Period > maxP {
			maxP = tasks[i].Period
		}
	}
	return 20 * maxP
}

// job is one released, not-yet-finished job.
type job struct {
	task      int
	idx       int
	release   float64
	deadline  float64 // original absolute deadline
	vd        float64 // virtual (priority) deadline
	remaining float64
	executed  float64
	// background marks a demoted low-criticality job (BackgroundLO):
	// it runs only when no guaranteed job is ready and has no
	// deadline guarantee.
	background bool
}

// engine is the per-core simulation state.
type engine struct {
	cfg   CoreConfig
	stats CoreStats

	// vdRel[m-1][i] is task i's relative virtual deadline when the
	// core operates in mode m.
	vdRel [][]float64

	// rank[i] is task i's priority rank under fixed-priority
	// dispatching (0 = highest); nil under EDF-VD.
	rank []int

	now     float64
	mode    int
	nextRel []float64
	jobIdx  []int
	active  []job
}

// SimulateCore runs one core to its horizon and returns the stats.
func SimulateCore(cfg CoreConfig) *CoreStats {
	if cfg.K < 1 {
		panic("sim: K < 1")
	}
	for i := range cfg.Tasks {
		if cfg.Tasks[i].Crit > cfg.K {
			panic(fmt.Sprintf("sim: task %d criticality %d exceeds K=%d", i, cfg.Tasks[i].Crit, cfg.K))
		}
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = DefaultHorizon(cfg.Tasks)
	}
	if cfg.Model == nil {
		cfg.Model = WorstCaseModel{}
	}
	e := &engine{
		cfg:     cfg,
		mode:    1,
		nextRel: make([]float64, len(cfg.Tasks)),
		jobIdx:  make([]int, len(cfg.Tasks)),
	}
	e.stats.Horizon = cfg.Horizon
	e.stats.MaxMode = 1
	e.stats.MaxResponse = make([]float64, len(cfg.Tasks))
	if cfg.FixedPriority {
		if len(cfg.Priorities) != len(cfg.Tasks) {
			panic("sim: FixedPriority requires a full Priorities permutation")
		}
		e.rank = make([]int, len(cfg.Tasks))
		seen := make([]bool, len(cfg.Tasks))
		for pos, ti := range cfg.Priorities {
			if ti < 0 || ti >= len(cfg.Tasks) || seen[ti] {
				panic("sim: Priorities is not a permutation of task indices")
			}
			seen[ti] = true
			e.rank[ti] = pos
		}
		// Fixed-priority dispatching ignores deadlines for priority;
		// keep the VD table neutral.
		e.cfg.ForcePlainEDF = true
	}
	e.buildVDTable()
	e.stats.PlainEDF = e.stats.PlainEDF && !cfg.FixedPriority
	e.run()
	return &e.stats
}

// buildVDTable precomputes the per-mode relative virtual deadlines.
// When the subset passes Eq. 4, plain EDF is used (the paper's remark
// after Eq. 4); otherwise, while the core operates in mode m, every
// task above the current mode is scaled by the single factor
// lambda_{m+1} of Eq. 6 — the recursion defines lambda_{m+1} exactly
// so that the mode-m density U_m(m)/P + sum_{c>m} U_c(m)/(lambda*P)
// (P the accumulated carry-over discount) balances to one. Modes
// whose factor is undefined fall back to full deadlines; Theorem 1's
// holding condition k covers those modes with its aggregate
// own-level-utilization budget instead.
//
// Multiplying the per-level factors cumulatively (VD = p * prod
// lambda_x up to the task's own level) is NOT equivalent for K > 2:
// it over-shortens the virtual deadlines of high-criticality tasks,
// inflating their low-mode density beyond what the recursion budgets
// and starving low-criticality tasks — the simulation oracle exhibits
// analysis-accepted subsets missing deadlines under that scheme. For
// K = 2 the two schemes coincide (a single factor exists).
func (e *engine) buildVDTable() {
	m := mc.NewUtilMatrix(e.cfg.K)
	for i := range e.cfg.Tasks {
		m.Add(&e.cfg.Tasks[i])
	}
	plain := e.cfg.ForcePlainEDF || edfvd.SimpleFeasible(m)
	e.stats.PlainEDF = plain

	lambda := make([]float64, e.cfg.K)
	for i := range lambda {
		lambda[i] = 1 // neutral factor
	}
	if !plain {
		ls, ok := edfvd.Lambdas(m)
		for j := range ls {
			if ok[j] && ls[j] > 0 {
				lambda[j] = ls[j]
			}
		}
	}
	e.vdRel = make([][]float64, e.cfg.K)
	for mode := 1; mode <= e.cfg.K; mode++ {
		row := make([]float64, len(e.cfg.Tasks))
		for i := range e.cfg.Tasks {
			t := &e.cfg.Tasks[i]
			f := 1.0
			if !plain && t.Crit > mode {
				f = lambda[mode] // lambda_{mode+1}; 1 when undefined
			}
			row[i] = t.Period * f
		}
		e.vdRel[mode-1] = row
	}
}

// run is the main event loop.
func (e *engine) run() {
	for e.now < e.cfg.Horizon-timeEps {
		e.releaseDue()
		e.detectMisses()

		if len(e.active) == 0 {
			e.goIdle()
			continue
		}

		j := e.pick()
		end := e.segmentEnd(j)
		dt := end - e.now
		if dt > 0 {
			j.remaining -= dt
			j.executed += dt
			e.stats.BusyTime += dt
			e.now = end
		}

		t := &e.cfg.Tasks[j.task]
		switch {
		case j.remaining <= timeEps:
			e.complete(j)
		case t.Crit > e.mode && j.executed >= t.C(e.mode)-timeEps:
			e.modeSwitch()
		}
	}
	// Account for jobs whose deadlines fall exactly at the horizon.
	e.detectMisses()
}

// releaseDue releases every job due at or before now, suppressing
// tasks below the current mode.
func (e *engine) releaseDue() {
	for i := range e.cfg.Tasks {
		t := &e.cfg.Tasks[i]
		for e.nextRel[i] <= e.now+timeEps && e.nextRel[i] < e.cfg.Horizon-timeEps {
			rel := e.nextRel[i]
			idx := e.jobIdx[i]
			e.nextRel[i] += t.Period
			e.jobIdx[i]++
			background := false
			if t.Crit < e.mode {
				if !e.cfg.BackgroundLO {
					e.stats.SkippedReleases++
					continue
				}
				background = true
			}
			demand := e.cfg.Model.ExecTime(t, idx)
			if demand > t.C(t.Crit) {
				demand = t.C(t.Crit)
			}
			if demand <= 0 {
				demand = timeEps
			}
			e.stats.Released++
			e.active = append(e.active, job{
				task:       i,
				idx:        idx,
				release:    rel,
				deadline:   rel + t.Period,
				vd:         rel + e.vdRel[e.mode-1][i],
				remaining:  demand,
				background: background,
			})
		}
	}
}

// detectMisses removes and records active jobs whose original deadline
// has passed with work remaining. Background jobs count toward
// BackgroundMisses and never toward the guaranteed-miss safety metric.
func (e *engine) detectMisses() {
	kept := e.active[:0]
	for _, j := range e.active {
		if j.deadline <= e.now+timeEps && j.remaining > timeEps {
			if j.background {
				e.stats.BackgroundMisses++
			} else {
				e.stats.Missed++
				e.stats.Misses = append(e.stats.Misses, Miss{
					Task: j.task, Job: j.idx, Deadline: j.deadline, DetectedAt: e.now,
				})
			}
			continue
		}
		kept = append(kept, j)
	}
	e.active = kept
}

// goIdle resets the core to mode 1 (AMC idle rule) and advances time
// to the next release or the horizon.
func (e *engine) goIdle() {
	if e.mode > 1 {
		e.mode = 1
		e.stats.IdleResets++
	}
	next := math.Inf(1)
	for i := range e.nextRel {
		if e.nextRel[i] < next {
			next = e.nextRel[i]
		}
	}
	if next >= e.cfg.Horizon {
		e.now = e.cfg.Horizon
		return
	}
	e.now = next
}

// pick returns the next job to dispatch: under EDF-VD the earliest
// virtual deadline (ties by smaller task index, then earlier release),
// under fixed priorities the highest-ranked task's earliest job.
func (e *engine) pick() *job {
	if e.cfg.BackgroundLO {
		// Guaranteed jobs strictly precede background jobs; within
		// each class the normal policy applies.
		if g := e.pickClass(false); g != nil {
			return g
		}
		return e.pickClass(true)
	}
	return e.pickAll()
}

// pickClass picks within one class (guaranteed or background); nil if
// the class is empty.
func (e *engine) pickClass(background bool) *job {
	var best *job
	for i := range e.active {
		j := &e.active[i]
		if j.background != background {
			continue
		}
		if best == nil || e.precedes(j, best) {
			best = j
		}
	}
	return best
}

// precedes reports whether a should run before b under the configured
// policy.
func (e *engine) precedes(a, b *job) bool {
	if e.rank != nil {
		return e.rank[a.task] < e.rank[b.task] ||
			(e.rank[a.task] == e.rank[b.task] && a.release < b.release)
	}
	switch {
	case a.vd < b.vd-timeEps:
		return true
	case a.vd <= b.vd+timeEps && a.task < b.task:
		return true
	case a.vd <= b.vd+timeEps && a.task == b.task && a.release < b.release:
		return true
	}
	return false
}

func (e *engine) pickAll() *job {
	if e.rank != nil {
		best := 0
		for i := 1; i < len(e.active); i++ {
			a, b := &e.active[i], &e.active[best]
			if e.rank[a.task] < e.rank[b.task] ||
				(e.rank[a.task] == e.rank[b.task] && a.release < b.release) {
				best = i
			}
		}
		return &e.active[best]
	}
	best := 0
	for i := 1; i < len(e.active); i++ {
		a, b := &e.active[i], &e.active[best]
		switch {
		case a.vd < b.vd-timeEps:
			best = i
		case a.vd <= b.vd+timeEps && a.task < b.task:
			best = i
		case a.vd <= b.vd+timeEps && a.task == b.task && a.release < b.release:
			best = i
		}
	}
	return &e.active[best]
}

// segmentEnd computes how far the chosen job may run before the next
// scheduling event: its completion, its mode-trigger threshold, the
// next release (possible preemption), the earliest active deadline
// (miss detection boundary) or the horizon.
func (e *engine) segmentEnd(j *job) float64 {
	end := e.now + j.remaining
	t := &e.cfg.Tasks[j.task]
	if t.Crit > e.mode {
		if trig := e.now + (t.C(e.mode) - j.executed); trig < end {
			end = trig
		}
	}
	for i := range e.nextRel {
		if r := e.nextRel[i]; r > e.now+timeEps && r < end {
			end = r
		}
	}
	for i := range e.active {
		if d := e.active[i].deadline; d > e.now+timeEps && d < end {
			end = d
		}
	}
	if e.cfg.Horizon < end {
		end = e.cfg.Horizon
	}
	return end
}

// complete retires the job, checking its deadline.
func (e *engine) complete(j *job) {
	switch {
	case j.background:
		if e.now > j.deadline+timeEps {
			e.stats.BackgroundMisses++
		} else {
			e.stats.BackgroundCompleted++
		}
	case e.now > j.deadline+timeEps:
		e.stats.Missed++
		e.stats.Misses = append(e.stats.Misses, Miss{
			Task: j.task, Job: j.idx, Deadline: j.deadline, DetectedAt: e.now,
		})
	default:
		e.stats.Completed++
		if resp := e.now - j.release; resp > e.stats.MaxResponse[j.task] {
			e.stats.MaxResponse[j.task] = resp
		}
	}
	e.remove(j)
}

// modeSwitch raises the mode by one level, discards jobs below the new
// mode and rescales the virtual deadlines of the survivors.
func (e *engine) modeSwitch() {
	e.mode++
	e.stats.ModeSwitches++
	if e.mode > e.stats.MaxMode {
		e.stats.MaxMode = e.mode
	}
	kept := e.active[:0]
	for _, j := range e.active {
		if !j.background && e.cfg.Tasks[j.task].Crit < e.mode {
			if e.cfg.BackgroundLO {
				j.background = true
				kept = append(kept, j)
				continue
			}
			e.stats.DroppedJobs++
			continue
		}
		if !j.background {
			j.vd = j.release + e.vdRel[e.mode-1][j.task]
		}
		kept = append(kept, j)
	}
	e.active = kept
}

// remove deletes the job (by pointer identity) from the active set.
func (e *engine) remove(j *job) {
	for i := range e.active {
		if &e.active[i] == j {
			e.active = append(e.active[:i], e.active[i+1:]...)
			return
		}
	}
}
