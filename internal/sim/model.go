package sim

import (
	"math/rand"

	"catpa/internal/mc"
)

// ExecModel decides how long each job actually executes. Returned
// times are clamped by the engine to (0, c_i(l_i)]: a job exceeding
// its own-criticality WCET would be an erroneous system, outside every
// MC guarantee.
type ExecModel interface {
	// ExecTime returns the execution demand of the job-th job of task t.
	ExecTime(t *mc.Task, job int) float64
}

// NominalModel runs every job for Fraction * c_i(1) (Fraction in
// (0, 1]; zero means 1.0). No mode switch ever occurs under this model.
type NominalModel struct {
	Fraction float64
}

// ExecTime implements ExecModel.
func (m NominalModel) ExecTime(t *mc.Task, _ int) float64 {
	f := m.Fraction
	if f <= 0 || f > 1 {
		f = 1
	}
	return f * t.C(1)
}

// WorstCaseModel runs every job to its own-criticality WCET c_i(l_i).
// Any task with criticality above 1 therefore overruns every lower
// budget and drives the core to the task's own level; this is the
// adversarial scenario the schedulability analysis must survive.
type WorstCaseModel struct{}

// ExecTime implements ExecModel.
func (WorstCaseModel) ExecTime(t *mc.Task, _ int) float64 {
	return t.C(t.Crit)
}

// LevelModel runs every job to its level-Min(Level, l_i) budget: with
// Level = k the system experiences exactly the level-k behaviour
// (jobs complete at their level-k WCETs, never beyond), so mode
// switches stop at level k.
type LevelModel struct {
	Level int
}

// ExecTime implements ExecModel.
func (m LevelModel) ExecTime(t *mc.Task, _ int) float64 {
	k := m.Level
	if k < 1 {
		k = 1
	}
	return t.C(k)
}

// RandomModel draws each job's demand uniformly from
// [MinFraction, 1] * c_i(1) and, with probability OverrunProb,
// escalates it to the task's own-criticality WCET instead. A nil Rand
// panics at first use; construct with NewRandomModel for a seeded
// source.
type RandomModel struct {
	MinFraction float64
	OverrunProb float64
	Rand        *rand.Rand
}

// NewRandomModel returns a RandomModel with its own deterministic
// source.
func NewRandomModel(minFraction, overrunProb float64, seed int64) *RandomModel {
	return &RandomModel{
		MinFraction: minFraction,
		OverrunProb: overrunProb,
		Rand:        rand.New(rand.NewSource(seed)),
	}
}

// ExecTime implements ExecModel.
func (m *RandomModel) ExecTime(t *mc.Task, _ int) float64 {
	if m.OverrunProb > 0 && m.Rand.Float64() < m.OverrunProb {
		return t.C(t.Crit)
	}
	lo := m.MinFraction
	if lo <= 0 || lo > 1 {
		lo = 0.3
	}
	f := lo + m.Rand.Float64()*(1-lo)
	return f * t.C(1)
}
