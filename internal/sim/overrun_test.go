package sim

import (
	"math"
	"testing"

	"catpa/internal/mc"
)

// TestWorstCaseOverrunAccounting drives hand-traced two-task instances
// (Table-I-style: one HI task whose worst case overruns its LO budget,
// one LO task) under WorstCaseModel and checks every counter of
// CoreStats against the values computed by hand from the AMC rules:
// exactly one mode switch per busy interval, releases of
// below-mode tasks suppressed (SkippedReleases), in-flight LO jobs
// discarded at the switch (DroppedJobs), and the idle reset back to
// mode 1 at the end of every busy interval.
func TestWorstCaseOverrunAccounting(t *testing.T) {
	cases := []struct {
		name  string
		tasks []mc.Task

		released, completed, missed int
		dropped, skipped            int
		switches, idleResets        int
		maxMode                     int
		busy                        float64
		maxResponse                 []float64
	}{
		{
			// tau1 = (P=100, HI, C={10,25}), tau2 = (P=50, LO, C={15}).
			// Busy intervals [0,40], [100,140] each hold one overrun of
			// tau1 (switch at executed=10); tau2's releases at 50 and
			// 150 land in mode 1, so nothing is skipped or dropped.
			name:  "overrun only",
			tasks: []mc.Task{mkTask(1, 100, 2, 10, 25), mkTask(2, 50, 1, 15)},

			released: 6, completed: 6, missed: 0,
			dropped: 0, skipped: 0,
			switches: 2, idleResets: 2,
			maxMode:     2,
			busy:        110,
			maxResponse: []float64{40, 15},
		},
		{
			// tau1 = (P=100, HI, C={10,40}), tau2 = (P=40, LO, C={12}).
			// tau1's overruns keep the core in mode 2 across tau2's
			// releases at t=40 and t=120: both are suppressed
			// (SkippedReleases=2), no in-flight job is ever dropped.
			name:  "suppressed releases",
			tasks: []mc.Task{mkTask(1, 100, 2, 10, 40), mkTask(2, 40, 1, 12)},

			released: 5, completed: 5, missed: 0,
			dropped: 0, skipped: 2,
			switches: 2, idleResets: 2,
			maxMode:     2,
			busy:        116,
			maxResponse: []float64{52, 12},
		},
		{
			// tau1 = (P=50, HI, C={5,15}), tau2 = (P=200, LO, C={20}).
			// tau2's single job is in flight when tau1 overruns at t=5
			// and is discarded (DroppedJobs=1); every one of tau1's four
			// busy intervals raises the mode once and resets at idle.
			name:  "dropped in-flight job",
			tasks: []mc.Task{mkTask(1, 50, 2, 5, 15), mkTask(2, 200, 1, 20)},

			released: 5, completed: 4, missed: 0,
			dropped: 1, skipped: 0,
			switches: 4, idleResets: 4,
			maxMode:     2,
			busy:        60,
			maxResponse: []float64{15, 0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := SimulateCore(CoreConfig{
				Tasks:   tc.tasks,
				K:       2,
				Horizon: 200,
				Model:   WorstCaseModel{},
			})
			if !s.PlainEDF {
				t.Fatal("instance was meant to pass the Eq. 4 plain-EDF test")
			}
			if s.Released != tc.released {
				t.Errorf("Released = %d, want %d", s.Released, tc.released)
			}
			if s.Completed != tc.completed {
				t.Errorf("Completed = %d, want %d", s.Completed, tc.completed)
			}
			if s.Missed != tc.missed || len(s.Misses) != tc.missed {
				t.Errorf("Missed = %d (%d recorded), want %d", s.Missed, len(s.Misses), tc.missed)
			}
			if s.DroppedJobs != tc.dropped {
				t.Errorf("DroppedJobs = %d, want %d", s.DroppedJobs, tc.dropped)
			}
			if s.SkippedReleases != tc.skipped {
				t.Errorf("SkippedReleases = %d, want %d", s.SkippedReleases, tc.skipped)
			}
			if s.ModeSwitches != tc.switches {
				t.Errorf("ModeSwitches = %d, want %d (one per busy interval)", s.ModeSwitches, tc.switches)
			}
			if s.IdleResets != tc.idleResets {
				t.Errorf("IdleResets = %d, want %d", s.IdleResets, tc.idleResets)
			}
			if s.MaxMode != tc.maxMode {
				t.Errorf("MaxMode = %d, want %d", s.MaxMode, tc.maxMode)
			}
			if math.Abs(s.BusyTime-tc.busy) > 1e-6 {
				t.Errorf("BusyTime = %v, want %v", s.BusyTime, tc.busy)
			}
			for i, want := range tc.maxResponse {
				if math.Abs(s.MaxResponse[i]-want) > 1e-6 {
					t.Errorf("MaxResponse[%d] = %v, want %v", i, s.MaxResponse[i], want)
				}
			}
		})
	}
}
