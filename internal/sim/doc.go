// Package sim is an event-driven runtime simulator for partitioned
// mixed-criticality systems: each core runs a preemptive EDF-VD
// scheduler under the adaptive mixed-criticality (AMC) execution model
// assumed by Han et al. (ICPP 2016).
//
// The paper's evaluation is purely analytical (schedulability tests);
// this package is the validation substrate that the analysis implies
// but never executes: a partition accepted by the Theorem-1 test must
// survive execution — including adversarial scenarios in which every
// job runs to its mode-level budget and forces mode switches — with no
// deadline miss of any job that AMC does not drop.
//
// Runtime semantics implemented (Section II-A of the paper):
//
//   - Each core starts in mode 1. Jobs are dispatched preemptively by
//     earliest virtual deadline; a task of criticality l on a core in
//     mode m uses the relative deadline p_i * prod_{x=m+1}^{l} lambda_x
//     (its full period once m >= l), with the lambda_j factors of
//     Eq. 6. When the subset already passes the pessimistic Eq. 4 test,
//     plain EDF is used (all factors 1), mirroring the paper's remark
//     that Eq. 4 needs no virtual deadlines.
//   - If a job of criticality l > m executes for its level-m budget
//     c_i(m) without completing, the core switches to mode m+1; all
//     jobs of tasks with criticality <= m are discarded and their
//     future releases suppressed.
//   - When the core idles, it returns to mode 1 and suppressed tasks
//     resume releasing.
//
// Execution scenarios are pluggable via ExecModel; the package ships
// a nominal model, a worst-case (adversarial) model and a randomized
// overrun model.
package sim
