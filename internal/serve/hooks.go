package serve

// Hooks is the chaos-test fault-injection seam, in the spirit of
// internal/runner/faultinject: the chaos suite scripts per-request
// panics, stalls and slow-backend delays keyed on Request.Tag and
// proves the daemon survives them without dropping unrelated in-flight
// requests. Every hook site sits inside a recovery scope (the handler
// recovery middleware or the worker's per-request quarantine), so an
// injected panic exercises exactly the production recovery path.
// Nothing outside tests installs hooks; a nil *Hooks or nil field is
// a no-op.
type Hooks struct {
	// InHandler fires in the HTTP handler goroutine after the request
	// is decoded and validated, before queueing or degradation checks.
	InHandler func(tag string)
	// BeforeEvaluate fires in the worker goroutine after the job is
	// dequeued, before any partitioning work.
	BeforeEvaluate func(tag string)
	// DuringEvaluate fires in the worker between scheme evaluations
	// (before scheme index i), modeling a slow analysis backend.
	DuringEvaluate func(tag string, i int)
}

func (h *Hooks) inHandler(tag string) {
	if h != nil && h.InHandler != nil {
		h.InHandler(tag)
	}
}

func (h *Hooks) beforeEvaluate(tag string) {
	if h != nil && h.BeforeEvaluate != nil {
		h.BeforeEvaluate(tag)
	}
}

func (h *Hooks) duringEvaluate(tag string, i int) {
	if h != nil && h.DuringEvaluate != nil {
		h.DuringEvaluate(tag, i)
	}
}
