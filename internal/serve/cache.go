package serve

import "sync"

// cacheKey is the verdict-cache identity: the canonical task-set hash
// plus every request parameter that influences the verdict. Tag and
// timeout are deliberately absent — they never change the answer.
type cacheKey struct {
	hash    uint64
	m, k    int
	backend string
	schemes string
}

// verdictCache is a bounded FIFO map of full-analysis responses. Only
// complete verdicts are cached (never degraded or partial ones), so a
// hit is always as good as re-running the analysis. Collisions on the
// 64-bit hash would serve a wrong verdict; the key carries the set's
// full parameter hash and the cache is advisory, matching the
// documented TaskSetHash contract.
type verdictCache struct {
	mu    sync.Mutex
	max   int
	m     map[cacheKey]*Response
	order []cacheKey // FIFO eviction ring
	next  int
}

func newVerdictCache(max int) *verdictCache {
	if max <= 0 {
		return nil
	}
	return &verdictCache{
		max:   max,
		m:     make(map[cacheKey]*Response, max),
		order: make([]cacheKey, 0, max),
	}
}

// get returns the cached response for k, or nil. Callers must treat
// the result as read-only (the handler responds via a shallow copy).
func (c *verdictCache) get(k cacheKey) *Response {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[k]
}

// put stores resp under k, evicting the oldest entry once full.
func (c *verdictCache) put(k cacheKey, resp *Response) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[k]; ok {
		c.m[k] = resp
		return
	}
	if len(c.order) < c.max {
		c.order = append(c.order, k)
	} else {
		delete(c.m, c.order[c.next])
		c.order[c.next] = k
		c.next = (c.next + 1) % c.max
	}
	c.m[k] = resp
}

// len reports the number of cached verdicts.
func (c *verdictCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
