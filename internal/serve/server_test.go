package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"catpa/internal/mc"
	"catpa/internal/obs"
	"catpa/internal/partition"
	"catpa/internal/taskgen"
)

// genSet generates a deterministic workload shaped for m cores and k
// levels.
func genSet(tb testing.TB, m, k, n int, nsu float64, seed int64) *mc.TaskSet {
	tb.Helper()
	cfg := taskgen.DefaultConfig()
	cfg.M, cfg.K, cfg.NSU = m, k, nsu
	cfg.N = taskgen.IntRange{Lo: n, Hi: n}
	return taskgen.GenerateIndexed(&cfg, seed, 0)
}

// feasibleSet is comfortably schedulable on 4 cores.
func feasibleSet(tb testing.TB) *mc.TaskSet { return genSet(tb, 4, 2, 24, 0.5, 11) }

// overloadedSet carries ~3.4 cores of level-1 utilization, so any
// admission question with m <= 3 is a certified reject.
func overloadedSet(tb testing.TB) *mc.TaskSet { return genSet(tb, 4, 2, 24, 0.85, 7) }

func newTestServer(tb testing.TB, cfg Config) (*Server, *httptest.Server) {
	tb.Helper()
	s := NewServer(cfg)
	hs := httptest.NewServer(s)
	tb.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			tb.Errorf("Shutdown: %v", err)
		}
	})
	return s, hs
}

func postAdmit(tb testing.TB, client *http.Client, url string, req *Request) (int, *Response) {
	tb.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		tb.Fatalf("marshal request: %v", err)
	}
	return postRaw(tb, client, url, body)
}

func postRaw(tb testing.TB, client *http.Client, url string, body []byte) (int, *Response) {
	tb.Helper()
	hr, err := client.Post(url+"/v1/admit", "application/json", bytes.NewReader(body))
	if err != nil {
		tb.Fatalf("POST /v1/admit: %v", err)
	}
	defer hr.Body.Close()
	var resp Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		tb.Fatalf("decode response: %v", err)
	}
	return hr.StatusCode, &resp
}

func getStatus(tb testing.TB, client *http.Client, url string) int {
	tb.Helper()
	hr, err := client.Get(url)
	if err != nil {
		tb.Fatalf("GET %s: %v", url, err)
	}
	hr.Body.Close()
	return hr.StatusCode
}

func TestAdmitMatchesDirectEvaluation(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	ts := feasibleSet(t)
	names := make([]string, len(partition.Schemes))
	for i, s := range partition.Schemes {
		names[i] = s.String()
	}
	status, resp := postAdmit(t, hs.Client(), hs.URL, &Request{
		TaskSet: ts, M: 4, Schemes: names, Tag: "direct",
	})
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 (error %q)", status, resp.Error)
	}
	if resp.Tag != "direct" || resp.Partial || resp.Degraded || resp.Cached {
		t.Errorf("unexpected flags in %+v", resp)
	}
	if resp.TaskSetHash != fmt.Sprintf("%016x", mc.TaskSetHash(ts)) {
		t.Errorf("TaskSetHash = %q", resp.TaskSetHash)
	}
	if len(resp.Verdicts) != len(partition.Schemes) {
		t.Fatalf("got %d verdicts, want %d", len(resp.Verdicts), len(partition.Schemes))
	}
	p := partition.New(4, ts.MaxCrit())
	anyAdmit := false
	for i, scheme := range partition.Schemes {
		want := p.Evaluate(ts, scheme, nil)
		v := resp.Verdicts[i]
		if v.Scheme != scheme.String() || v.Admitted != want.Feasible {
			t.Errorf("verdict[%d] = %+v, want scheme %v admitted=%v", i, v, scheme, want.Feasible)
		}
		if want.Feasible {
			anyAdmit = true
			if v.Usys != want.Usys || v.Uavg != want.Uavg || v.Imbalance != want.Imbalance {
				t.Errorf("%v: aggregates (%v,%v,%v) != (%v,%v,%v)",
					scheme, v.Usys, v.Uavg, v.Imbalance, want.Usys, want.Uavg, want.Imbalance)
			}
		}
	}
	if resp.Admitted != anyAdmit {
		t.Errorf("Admitted = %v, direct analysis says %v", resp.Admitted, anyAdmit)
	}
	if resp.Admitted {
		if resp.Verdict != VerdictAdmitted {
			t.Errorf("Verdict = %q", resp.Verdict)
		}
		found := false
		for _, v := range resp.Verdicts {
			if len(v.Assignment) > 0 {
				found = true
				if len(v.Assignment) != ts.Len() {
					t.Errorf("assignment length %d, want %d", len(v.Assignment), ts.Len())
				}
				break
			}
		}
		if !found {
			t.Errorf("admitted response carries no assignment")
		}
	}
}

func TestAdmitRejected(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	status, resp := postAdmit(t, hs.Client(), hs.URL, &Request{
		TaskSet: overloadedSet(t), M: 2,
	})
	if status != http.StatusOK {
		t.Fatalf("status = %d (error %q)", status, resp.Error)
	}
	if resp.Admitted || resp.Verdict != VerdictRejected {
		t.Errorf("verdict = %+v, want rejected", resp)
	}
	if resp.Reason == "" {
		t.Errorf("rejected response needs a reason")
	}
}

func TestAdmitValidationErrors(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxTasks: 30, MaxCores: 16})
	ts := feasibleSet(t)
	k4 := genSet(t, 4, 4, 24, 0.5, 3)
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"empty set", Request{TaskSet: mc.NewTaskSet(), M: 4}, "at least one task"},
		{"nil set", Request{M: 4}, "at least one task"},
		{"too many tasks", Request{TaskSet: genSet(t, 4, 2, 31, 0.5, 5), M: 4}, "at most 30"},
		{"m zero", Request{TaskSet: ts, M: 0}, "m must be in 1..16"},
		{"m huge", Request{TaskSet: ts, M: 64}, "m must be in 1..16"},
		{"k below set", Request{TaskSet: ts, M: 4, K: 1}, "below the task set's criticality"},
		{"bad backend", Request{TaskSet: ts, M: 4, Backend: "rta++"}, "unknown backend"},
		{"amcrtb too many levels", Request{TaskSet: k4, M: 4, Backend: "amcrtb"}, "at most K=2"},
		{"bad scheme", Request{TaskSet: ts, M: 4, Schemes: []string{"ZFD"}}, "unknown scheme"},
		{"negative timeout", Request{TaskSet: ts, M: 4, TimeoutMS: -1}, "non-negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, resp := postAdmit(t, hs.Client(), hs.URL, &tc.req)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", status)
			}
			if !strings.Contains(resp.Error, tc.want) {
				t.Errorf("error %q does not mention %q", resp.Error, tc.want)
			}
		})
	}
}

func TestAdmitRejectsBadTransport(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxBodyBytes: 256})
	if status, resp := postRaw(t, hs.Client(), hs.URL, []byte("{not json")); status != http.StatusBadRequest {
		t.Errorf("malformed body: status %d (%+v)", status, resp)
	}
	big, err := json.Marshal(&Request{TaskSet: feasibleSet(t), M: 4})
	if err != nil {
		t.Fatal(err)
	}
	if status, _ := postRaw(t, hs.Client(), hs.URL, big); status != http.StatusBadRequest {
		t.Errorf("oversized body: status %d, want 400", status)
	}
	hr, err := hs.Client().Get(hs.URL + "/v1/admit")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", hr.StatusCode)
	}
	if allow := hr.Header.Get("Allow"); allow != http.MethodPost {
		t.Errorf("Allow = %q", allow)
	}
}

func TestVerdictCacheRoundTrip(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	req := &Request{TaskSet: feasibleSet(t), M: 4, Tag: "first"}
	_, cold := postAdmit(t, hs.Client(), hs.URL, req)
	if cold.Cached {
		t.Fatalf("first request served from an empty cache")
	}
	req.Tag = "second"
	_, warm := postAdmit(t, hs.Client(), hs.URL, req)
	if !warm.Cached {
		t.Fatalf("second identical request missed the cache")
	}
	if warm.Tag != "second" {
		t.Errorf("cached response echoes stale tag %q", warm.Tag)
	}
	if warm.Admitted != cold.Admitted || warm.Verdict != cold.Verdict || len(warm.Verdicts) != len(cold.Verdicts) {
		t.Errorf("cache changed the verdict: %+v vs %+v", warm, cold)
	}
	if n := s.cache.len(); n != 1 {
		t.Errorf("cache holds %d entries, want 1", n)
	}
	// A different m is a different admission question.
	req.M = 3
	if _, other := postAdmit(t, hs.Client(), hs.URL, req); other.Cached {
		t.Errorf("m=3 hit the m=4 cache entry")
	}
}

func TestCacheEviction(t *testing.T) {
	c := newVerdictCache(2)
	k := func(i int) cacheKey {
		return cacheKey{hash: uint64(i), m: 4, k: 2, backend: "edfvd", schemes: "CA-TPA"}
	}
	for i := 0; i < 3; i++ {
		c.put(k(i), &Response{Verdict: VerdictAdmitted})
	}
	if c.get(k(0)) != nil {
		t.Errorf("oldest entry survived eviction")
	}
	if c.get(k(1)) == nil || c.get(k(2)) == nil {
		t.Errorf("newest entries evicted")
	}
	c.put(k(2), &Response{Verdict: VerdictRejected})
	if got := c.get(k(2)); got == nil || got.Verdict != VerdictRejected {
		t.Errorf("overwrite lost: %+v", got)
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	var nilCache *verdictCache
	nilCache.put(k(9), &Response{})
	if nilCache.get(k(9)) != nil || nilCache.len() != 0 {
		t.Errorf("nil cache must be inert")
	}
}

// stallHooks blocks matching-tagged jobs in the worker until released,
// signalling arrival on started.
func stallHooks(tag string, started chan<- struct{}, release <-chan struct{}) *Hooks {
	return &Hooks{BeforeEvaluate: func(got string) {
		if got == tag {
			started <- struct{}{}
			<-release
		}
	}}
}

func TestQueueFullSheds429(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	s, hs := newTestServer(t, Config{
		Workers:          1,
		QueueDepth:       1,
		DegradeWatermark: -1, // isolate the shed path
		RequestTimeout:   30 * time.Second,
		RetryAfter:       7 * time.Second,
		Metrics:          obs.NewRegistry(),
		Hooks:            stallHooks("stall", started, release),
	})
	ts := feasibleSet(t)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postAdmit(t, hs.Client(), hs.URL, &Request{TaskSet: ts, M: 4, Tag: "stall"})
	}()
	<-started // worker busy; queue empty

	wg.Add(1)
	go func() {
		defer wg.Done()
		postAdmit(t, hs.Client(), hs.URL, &Request{TaskSet: ts, M: 4, Tag: "queued"})
	}()
	waitFor(t, func() bool { return len(s.jobs) == 1 })

	body, err := json.Marshal(&Request{TaskSet: ts, M: 4, Tag: "shed"})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := hs.Client().Post(hs.URL+"/v1/admit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", hr.StatusCode)
	}
	if ra := hr.Header.Get("Retry-After"); ra != "7" {
		t.Errorf("Retry-After = %q, want 7", ra)
	}
	var resp Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Error, "queue full") {
		t.Errorf("shed error = %q", resp.Error)
	}
	release <- struct{}{} // free the stalled job; the queued one follows
	wg.Wait()
	if got := s.met.shed.Value(); got != 1 {
		t.Errorf("serve.requests.shed = %d, want 1", got)
	}
}

func TestDegradedModePastWatermark(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	s, hs := newTestServer(t, Config{
		Workers:          1,
		QueueDepth:       8,
		DegradeWatermark: 1,
		RequestTimeout:   30 * time.Second,
		Metrics:          obs.NewRegistry(),
		Hooks:            stallHooks("stall", started, release),
	})
	ts := feasibleSet(t)

	var wg sync.WaitGroup
	for _, tag := range []string{"stall", "queued"} {
		tag := tag
		wg.Add(1)
		go func() {
			defer wg.Done()
			postAdmit(t, hs.Client(), hs.URL, &Request{TaskSet: ts, M: 4, Tag: tag})
		}()
		if tag == "stall" {
			<-started
		} else {
			waitFor(t, func() bool { return len(s.jobs) == 1 })
		}
	}

	// Queue depth is at the watermark: a schedulable set can only get
	// an honest "uncertain"...
	status, resp := postAdmit(t, hs.Client(), hs.URL, &Request{TaskSet: ts, M: 4, Tag: "deg"})
	if status != http.StatusOK {
		t.Fatalf("degraded status = %d", status)
	}
	if !resp.Degraded || resp.Verdict != VerdictUncertain || resp.Admitted {
		t.Errorf("degraded response = %+v, want uncertain + degraded", resp)
	}
	// ...while an overloaded set is still a certified reject.
	status, resp = postAdmit(t, hs.Client(), hs.URL, &Request{TaskSet: overloadedSet(t), M: 2, Tag: "deg2"})
	if status != http.StatusOK {
		t.Fatalf("degraded reject status = %d", status)
	}
	if !resp.Degraded || resp.Verdict != VerdictRejected || resp.Reason == "" {
		t.Errorf("degraded reject = %+v", resp)
	}

	// A require_full request refuses the screen tier: it queues for
	// the real analysis even past the watermark.
	var fullResp *Response
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, fullResp = postAdmit(t, hs.Client(), hs.URL, &Request{TaskSet: ts, M: 4, RequireFull: true, Tag: "full"})
	}()
	waitFor(t, func() bool { return len(s.jobs) == 2 })

	release <- struct{}{}
	wg.Wait()
	if fullResp.Degraded || fullResp.Partial || fullResp.Error != "" {
		t.Errorf("require_full response degraded or failed: %+v", fullResp)
	}
	if got := s.met.degraded.Value(); got != 2 {
		t.Errorf("serve.requests.degraded = %d, want 2", got)
	}
	// Drained queue: full analysis resumes.
	if _, resp := postAdmit(t, hs.Client(), hs.URL, &Request{TaskSet: ts, M: 4}); resp.Degraded {
		t.Errorf("still degraded after the queue drained")
	}
}

func TestGracefulDrain(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s, hs := newTestServer(t, Config{
		Workers:        1,
		QueueDepth:     8,
		RequestTimeout: 30 * time.Second,
		Hooks:          stallHooks("stall", started, release),
	})
	ts := feasibleSet(t)

	if getStatus(t, hs.Client(), hs.URL+"/readyz") != http.StatusOK {
		t.Fatalf("not ready before drain")
	}

	var wg sync.WaitGroup
	verdicts := make([]*Response, 2)
	for i, tag := range []string{"stall", "queued"} {
		i, tag := i, tag
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, verdicts[i] = postAdmit(t, hs.Client(), hs.URL, &Request{TaskSet: ts, M: 4, Tag: tag})
		}()
		if tag == "stall" {
			<-started
		} else {
			waitFor(t, func() bool { return len(s.jobs) == 1 })
		}
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	waitFor(t, func() bool { return !s.Ready() })

	if got := getStatus(t, hs.Client(), hs.URL+"/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain = %d, want 503", got)
	}
	if got := getStatus(t, hs.Client(), hs.URL+"/healthz"); got != http.StatusOK {
		t.Errorf("/healthz during drain = %d, want 200", got)
	}
	if status, _ := postAdmit(t, hs.Client(), hs.URL, &Request{TaskSet: ts, M: 4}); status != http.StatusServiceUnavailable {
		t.Errorf("new admission during drain: status %d, want 503", status)
	}

	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	for i, v := range verdicts {
		if v == nil || v.Error != "" || v.Partial {
			t.Errorf("in-flight request %d lost in drain: %+v", i, v)
		}
	}
	// Idempotent second shutdown.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}

func TestMetricz(t *testing.T) {
	_, hs := newTestServer(t, Config{Metrics: obs.NewRegistry()})
	postAdmit(t, hs.Client(), hs.URL, &Request{TaskSet: feasibleSet(t), M: 4})
	hr, err := hs.Client().Get(hs.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("/metricz status = %d", hr.StatusCode)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&snap); err != nil {
		t.Fatalf("decode snapshot: %v", err)
	}
	if snap.Counters["serve.requests.total"] < 1 {
		t.Errorf("serve.requests.total = %d, want >= 1", snap.Counters["serve.requests.total"])
	}
}

// waitFor polls cond for up to 5s.
func waitFor(tb testing.TB, cond func() bool) {
	tb.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			tb.Fatalf("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
