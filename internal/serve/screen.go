package serve

import (
	"fmt"

	"catpa/internal/mc"
)

// ScreenVerdict is the outcome of the probe-only utilization screen.
type ScreenVerdict int

const (
	// ScreenUncertain: no necessary condition is violated; only a full
	// backend analysis can decide.
	ScreenUncertain ScreenVerdict = iota
	// ScreenReject: a necessary feasibility condition fails, so no
	// partition of the set passes any backend's per-core analysis —
	// a certified reject.
	ScreenReject
)

// Screen is the daemon's degraded-tier admission test: a probe-style
// O(N·K) utilization screen in the spirit of the edfvd probe screens
// (UtilFloorProbed and friends), built only from conditions that are
// *necessary* for per-core schedulability under every registered
// backend. It therefore only ever rejects sets the full analysis
// would reject too — the load-shedding tier can answer "rejected"
// soundly, and must answer "uncertain" otherwise. The differential
// screen-soundness test (screen_test.go) proves the subset property
// against both backends across every scheme.
//
// Conditions, each implied by "some partition onto m unit-speed cores
// keeps every core's mode-j utilization at most 1" (mode-j demand on a
// core includes every task of criticality at least j at its level-j
// budget — necessary for EDF-VD Theorem 1 and for the AMC-rtb
// response-time fixed points alike):
//
//  1. the level-j total utilization U(j) (Eq. 2) exceeds m for some j
//     — pigeonhole: some core's mode-j utilization exceeds 1;
//  2. more than m tasks of criticality at least j have level-j
//     utilization above 1/2 for some j — any two such tasks sharing a
//     core push its mode-j utilization past 1, so they need more than
//     m cores.
//
// A third classical condition — a single task whose own-level
// utilization exceeds 1 — needs no check here: mc.Task.Validate
// already rejects such tasks, and every set reaching the screen has
// been validated.
func Screen(ts *mc.TaskSet, m, k int) (ScreenVerdict, string) {
	for j := 1; j <= k; j++ {
		if u := ts.TotalUtilAt(j); u > float64(m)+mc.Eps {
			return ScreenReject, fmt.Sprintf("level-%d utilization %.4f exceeds the platform capacity m=%d", j, u, m)
		}
		heavy := 0
		for i := range ts.Tasks {
			t := &ts.Tasks[i]
			if t.Crit >= j && t.Util(j) > 0.5+mc.Eps {
				heavy++
			}
		}
		if heavy > m {
			return ScreenReject, fmt.Sprintf("%d tasks with level-%d utilization above 1/2 cannot share m=%d cores", heavy, j, m)
		}
	}
	return ScreenUncertain, ""
}

// String renders the verdict for logs and tests.
func (v ScreenVerdict) String() string {
	switch v {
	case ScreenUncertain:
		return "uncertain"
	case ScreenReject:
		return "reject"
	default:
		return fmt.Sprintf("ScreenVerdict(%d)", int(v))
	}
}
