package serve

import (
	"context"
	"strings"
	"testing"

	"catpa/internal/mc"
	"catpa/internal/partition"
	"catpa/internal/taskgen"
)

func TestScreenVerdictString(t *testing.T) {
	if ScreenUncertain.String() != "uncertain" || ScreenReject.String() != "reject" {
		t.Errorf("verdict strings: %v %v", ScreenUncertain, ScreenReject)
	}
	if got := ScreenVerdict(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown verdict renders %q", got)
	}
}

func TestScreenRejectConditions(t *testing.T) {
	// Condition 1: aggregate level utilization beyond platform
	// capacity.
	over := mc.NewTaskSet(
		mc.MustTask(1, "a", 10, 4, 4),
		mc.MustTask(2, "b", 10, 4, 4),
		mc.MustTask(3, "c", 10, 4, 4),
	)
	if v, reason := Screen(over, 1, 2); v != ScreenReject || !strings.Contains(reason, "platform capacity") {
		t.Errorf("capacity overload: %v %q", v, reason)
	}

	// Condition 2: three just-over-half tasks cannot share two cores
	// even though their sum fits.
	heavy := mc.NewTaskSet(
		mc.MustTask(1, "a", 10, 5.2),
		mc.MustTask(2, "b", 10, 5.2),
		mc.MustTask(3, "c", 10, 5.2),
	)
	if v, reason := Screen(heavy, 2, 1); v != ScreenReject || !strings.Contains(reason, "cannot share") {
		t.Errorf("pigeonhole overload: %v %q", v, reason)
	}

	// A clearly schedulable set must stay uncertain — the screen never
	// admits.
	easy := mc.NewTaskSet(
		mc.MustTask(1, "a", 10, 2, 3),
		mc.MustTask(2, "b", 10, 2),
	)
	if v, reason := Screen(easy, 2, 2); v != ScreenUncertain || reason != "" {
		t.Errorf("easy set: %v %q", v, reason)
	}
}

// TestScreenSoundnessDifferential is the subset-property proof the
// degraded tier rests on: whenever the probe-only screen certifies a
// reject, the full analysis — every scheme crossed with every
// registered backend — must reject too. A single counterexample would
// mean degraded mode can refuse a set the daemon would normally
// admit, which is the one lie it must never tell.
func TestScreenSoundnessDifferential(t *testing.T) {
	backends := partition.BackendNames()
	if len(backends) < 2 {
		t.Fatalf("differential test needs both backends, have %v", backends)
	}
	rejects, uncertain := 0, 0
	for _, nsu := range []float64{0.6, 0.8, 0.95} {
		for seed := int64(0); seed < 10; seed++ {
			cfg := taskgen.DefaultConfig()
			cfg.M, cfg.K, cfg.NSU = 4, 2, nsu
			cfg.N = taskgen.IntRange{Lo: 16, Hi: 16}
			ts := taskgen.GenerateIndexed(&cfg, seed, 0)
			for m := 1; m <= 4; m++ {
				v, reason := Screen(ts, m, 2)
				if v != ScreenReject {
					uncertain++
					continue
				}
				rejects++
				for _, name := range backends {
					be, err := partition.NewBackend(name)
					if err != nil {
						t.Fatalf("NewBackend(%q): %v", name, err)
					}
					p := partition.NewWithBackend(m, 2, be)
					for _, scheme := range partition.Schemes {
						if p.Evaluate(ts, scheme, nil).Feasible {
							t.Fatalf("UNSOUND: screen rejected (nsu=%v seed=%d m=%d: %s) but %v/%s admits",
								nsu, seed, m, reason, scheme, name)
						}
					}
				}
			}
		}
	}
	// The sweep must actually exercise both sides of the screen.
	if rejects == 0 || uncertain == 0 {
		t.Fatalf("sweep imbalance: %d rejects, %d uncertain", rejects, uncertain)
	}
}

// TestScreenAgreesWithDegradedEndpoint pins the API contract: the
// degraded tier's verdict is exactly Screen's.
func TestScreenAgreesWithDegradedEndpoint(t *testing.T) {
	s := NewServer(Config{})
	defer func() {
		if err := s.Shutdown(context.Background()); err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	}()
	ts := overloadedSet(t)
	job, err := normalize(&Request{TaskSet: ts, M: 2}, 10000, 1024)
	if err != nil {
		t.Fatal(err)
	}
	resp := s.degradedResponse(job)
	v, reason := Screen(ts, 2, ts.MaxCrit())
	if v != ScreenReject {
		t.Fatalf("fixture not overloaded enough")
	}
	if resp.Verdict != VerdictRejected || resp.Reason != reason || !resp.Degraded {
		t.Errorf("degraded endpoint disagrees with Screen: %+v vs %q", resp, reason)
	}
}
