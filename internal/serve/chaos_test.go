package serve

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"catpa/internal/mc"
	"catpa/internal/obs"
	"catpa/internal/partition"
)

// The chaos suite scripts faults at the three injection points of the
// Hooks seam — handler goroutine, worker pre-evaluation, and between
// scheme evaluations — and proves the daemon's robustness layers: it
// never exits, /healthz stays green, unaffected concurrent requests
// keep getting full-analysis verdicts, and every fault is answered
// with an honest error or partial response.

func TestChaosPanicInHandler(t *testing.T) {
	reg := obs.NewRegistry()
	s, hs := newTestServer(t, Config{
		Metrics: reg,
		Hooks: &Hooks{InHandler: func(tag string) {
			if tag == "bomb" {
				panic("chaos: handler bomb")
			}
		}},
	})
	ts := feasibleSet(t)

	status, resp := postAdmit(t, hs.Client(), hs.URL, &Request{TaskSet: ts, M: 4, Tag: "bomb"})
	if status != http.StatusInternalServerError {
		t.Fatalf("bombed request: status = %d, want 500", status)
	}
	if !strings.Contains(resp.Error, "handler bomb") {
		t.Errorf("bombed request error = %q", resp.Error)
	}
	if got := s.met.panics.Value(); got != 1 {
		t.Errorf("serve.panics.recovered = %d, want 1", got)
	}
	if getStatus(t, hs.Client(), hs.URL+"/healthz") != http.StatusOK {
		t.Errorf("/healthz not green after a handler panic")
	}
	if status, resp := postAdmit(t, hs.Client(), hs.URL, &Request{TaskSet: ts, M: 4, Tag: "clean"}); status != http.StatusOK || resp.Error != "" {
		t.Errorf("clean request after panic: status %d, error %q", status, resp.Error)
	}
}

func TestChaosPanicInWorker(t *testing.T) {
	reg := obs.NewRegistry()
	s, hs := newTestServer(t, Config{
		Workers:   1,  // the sole worker must survive its own panic
		CacheSize: -1, // force every request through the worker
		Metrics:   reg,
		Hooks: &Hooks{BeforeEvaluate: func(tag string) {
			if tag == "bomb" {
				panic("chaos: worker bomb")
			}
		}},
	})
	ts := feasibleSet(t)

	for i := 0; i < 3; i++ {
		status, resp := postAdmit(t, hs.Client(), hs.URL, &Request{TaskSet: ts, M: 4, Tag: "bomb"})
		if status != http.StatusInternalServerError {
			t.Fatalf("bomb %d: status = %d, want 500", i, status)
		}
		if !strings.Contains(resp.Error, "evaluation panicked") {
			t.Errorf("bomb %d: error = %q", i, resp.Error)
		}
		// The quarantine is per-request: the same worker serves the
		// next request on a fresh pooled Partitioner.
		status, resp = postAdmit(t, hs.Client(), hs.URL, &Request{TaskSet: ts, M: 4, Tag: "clean"})
		if status != http.StatusOK || resp.Error != "" || resp.Degraded {
			t.Fatalf("clean %d after worker panic: status %d, %+v", i, status, resp)
		}
	}
	if got := s.met.panics.Value(); got != 3 {
		t.Errorf("serve.panics.recovered = %d, want 3", got)
	}
}

func TestChaosSlowBackendYieldsPartialVerdicts(t *testing.T) {
	reg := obs.NewRegistry()
	_, hs := newTestServer(t, Config{
		RequestTimeout: 10 * time.Second,
		PartialGrace:   5 * time.Second,
		Metrics:        reg,
		Hooks: &Hooks{DuringEvaluate: func(tag string, i int) {
			// The backend turns to molasses at the third scheme: by the
			// time it wakes, the request deadline has long fired.
			if tag == "slow" && i == 2 {
				time.Sleep(300 * time.Millisecond)
			}
		}},
	})
	ts := feasibleSet(t)
	names := make([]string, len(partition.Schemes))
	for i, s := range partition.Schemes {
		names[i] = s.String()
	}

	status, resp := postAdmit(t, hs.Client(), hs.URL, &Request{
		TaskSet: ts, M: 4, Schemes: names, Tag: "slow", TimeoutMS: 50,
	})
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 with a partial body", status)
	}
	if !resp.Partial {
		t.Fatalf("response not marked partial: %+v", resp)
	}
	if len(resp.Verdicts) != 2 {
		t.Fatalf("got %d verdicts before the deadline, want exactly 2", len(resp.Verdicts))
	}
	p := partition.New(4, ts.MaxCrit())
	for i := 0; i < 2; i++ {
		want := p.Evaluate(ts, partition.Schemes[i], nil)
		if resp.Verdicts[i].Admitted != want.Feasible {
			t.Errorf("partial verdict %d disagrees with direct analysis", i)
		}
	}
	if !strings.Contains(resp.Reason, "2 of 5 schemes") {
		t.Errorf("reason = %q", resp.Reason)
	}
	// Partial responses must not poison the cache: the retry gets the
	// full batch.
	status, full := postAdmit(t, hs.Client(), hs.URL, &Request{TaskSet: ts, M: 4, Schemes: names, Tag: "retry"})
	if status != http.StatusOK || full.Cached || full.Partial || len(full.Verdicts) != len(names) {
		t.Errorf("retry after partial: status %d, %+v", status, full)
	}
}

func TestChaosStallBeyondGraceIs504(t *testing.T) {
	_, hs := newTestServer(t, Config{
		RequestTimeout: 10 * time.Second,
		PartialGrace:   20 * time.Millisecond,
		Metrics:        obs.NewRegistry(),
		Hooks: &Hooks{BeforeEvaluate: func(tag string) {
			if tag == "wedge" {
				time.Sleep(400 * time.Millisecond)
			}
		}},
	})
	ts := feasibleSet(t)
	status, resp := postAdmit(t, hs.Client(), hs.URL, &Request{TaskSet: ts, M: 4, Tag: "wedge", TimeoutMS: 50})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", status)
	}
	if !resp.Partial || resp.Verdict != VerdictUncertain || !strings.Contains(resp.Error, "deadline exceeded") {
		t.Errorf("504 body = %+v", resp)
	}
	// The wedged worker publishes its late verdict into the buffered
	// done channel and moves on — the daemon still answers.
	waitFor(t, func() bool {
		status, resp := postAdmit(t, hs.Client(), hs.URL, &Request{TaskSet: ts, M: 4, Tag: "after"})
		return status == http.StatusOK && resp.Error == ""
	})
}

// TestChaosConcurrentMixedFaults is the flagship: all three injection
// points fire concurrently under load while unaffected requests must
// keep receiving verdicts that agree with direct analysis.
func TestChaosConcurrentMixedFaults(t *testing.T) {
	reg := obs.NewRegistry()
	s, hs := newTestServer(t, Config{
		Workers:          4,
		QueueDepth:       128, // above peak storm concurrency: no shedding here
		DegradeWatermark: -1,  // clean traffic must get full analysis
		RequestTimeout:   30 * time.Second,
		PartialGrace:     5 * time.Second,
		CacheSize:        -1, // every clean verdict must come from a real evaluation
		Metrics:          reg,
		Hooks: &Hooks{
			InHandler: func(tag string) {
				if strings.HasPrefix(tag, "bomb-handler") {
					panic("chaos: handler bomb")
				}
			},
			BeforeEvaluate: func(tag string) {
				if strings.HasPrefix(tag, "bomb-worker") {
					panic("chaos: worker bomb")
				}
			},
			DuringEvaluate: func(tag string, i int) {
				if strings.HasPrefix(tag, "slow") && i == 1 {
					time.Sleep(80 * time.Millisecond)
				}
			},
		},
	})

	// Four distinct clean workloads with precomputed direct verdicts.
	type cleanCase struct {
		ts   *mc.TaskSet
		m    int
		want bool
	}
	cleans := make([]cleanCase, 0, 4)
	for i, seed := range []int64{11, 7, 23, 42} {
		ts := genSet(t, 4, 2, 20+2*i, []float64{0.5, 0.85, 0.6, 0.7}[i], seed)
		m := []int{4, 2, 4, 3}[i]
		want := false
		p := partition.New(m, ts.MaxCrit())
		for _, scheme := range partition.Schemes {
			if p.Evaluate(ts, scheme, nil).Feasible {
				want = true
				break
			}
		}
		cleans = append(cleans, cleanCase{ts, m, want})
	}
	names := make([]string, len(partition.Schemes))
	for i, sch := range partition.Schemes {
		names[i] = sch.String()
	}

	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan error, 4*rounds*3)
	healthStop := make(chan struct{})
	var healthWG sync.WaitGroup
	healthWG.Add(1)
	go func() { // health prober runs for the whole storm
		defer healthWG.Done()
		for {
			select {
			case <-healthStop:
				return
			default:
			}
			if got := getStatus(t, hs.Client(), hs.URL+"/healthz"); got != http.StatusOK {
				errs <- fmt.Errorf("/healthz = %d mid-chaos", got)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	var handlerBombs, workerBombs int
	for r := 0; r < rounds; r++ {
		for c := range cleans {
			cc := cleans[c]
			wg.Add(3)
			go func(r, c int) { // clean traffic: must get exact verdicts
				defer wg.Done()
				status, resp := postAdmit(t, hs.Client(), hs.URL, &Request{
					TaskSet: cc.ts, M: cc.m, Schemes: names, Tag: fmt.Sprintf("clean-%d-%d", r, c),
				})
				if status != http.StatusOK || resp.Degraded || resp.Partial || resp.Error != "" {
					errs <- fmt.Errorf("clean %d/%d: status %d flags %+v", r, c, status, resp)
					return
				}
				if resp.Admitted != cc.want {
					errs <- fmt.Errorf("clean %d/%d: admitted=%v, direct analysis says %v", r, c, resp.Admitted, cc.want)
				}
			}(r, c)
			bombTag := fmt.Sprintf("bomb-handler-%d-%d", r, c)
			if (r+c)%2 == 1 {
				bombTag = fmt.Sprintf("bomb-worker-%d-%d", r, c)
				workerBombs++
			} else {
				handlerBombs++
			}
			go func(tag string) { // faulty traffic: must fail honestly
				defer wg.Done()
				status, resp := postAdmit(t, hs.Client(), hs.URL, &Request{TaskSet: cc.ts, M: cc.m, Tag: tag})
				if status != http.StatusInternalServerError || !strings.Contains(resp.Error, "chaos") {
					errs <- fmt.Errorf("%s: status %d, error %q", tag, status, resp.Error)
				}
			}(bombTag)
			go func(r, c int) { // slow traffic: partial but honest
				defer wg.Done()
				status, resp := postAdmit(t, hs.Client(), hs.URL, &Request{
					TaskSet: cc.ts, M: cc.m, Schemes: names, Tag: fmt.Sprintf("slow-%d-%d", r, c), TimeoutMS: 30,
				})
				if resp.Admitted && !cc.want {
					errs <- fmt.Errorf("slow %d/%d: admitted an infeasible set", r, c)
				}
				if status != http.StatusOK && status != http.StatusGatewayTimeout {
					errs <- fmt.Errorf("slow %d/%d: status %d", r, c, status)
				}
			}(r, c)
		}
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("chaos storm wedged the daemon")
	}
	close(healthStop)
	healthWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.met.panics.Value(); got != int64(handlerBombs+workerBombs) {
		t.Errorf("serve.panics.recovered = %d, want %d", got, handlerBombs+workerBombs)
	}
	// The storm is over and the daemon is still fully alive.
	if status, resp := postAdmit(t, hs.Client(), hs.URL, &Request{TaskSet: cleans[0].ts, M: cleans[0].m}); status != http.StatusOK || resp.Error != "" {
		t.Errorf("post-storm request: status %d, %+v", status, resp)
	}
}
