package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"catpa/internal/obs"
	"catpa/internal/partition"

	// The daemon serves every registered analysis backend.
	_ "catpa/internal/fpamc" // registers the amcrtb backend
)

// Config tunes the admission daemon. The zero value selects sane
// defaults for every field.
type Config struct {
	// QueueDepth bounds the admission queue; a full queue sheds load
	// with 429 + Retry-After. Default 256.
	QueueDepth int

	// Workers is the number of evaluation workers, each owning its own
	// pooled Partitioners. Default GOMAXPROCS.
	Workers int

	// DegradeWatermark is the queue depth at or above which requests
	// downgrade to the probe-only Screen. Default 3·QueueDepth/4;
	// negative disables degradation (overload then sheds with 429
	// only).
	DegradeWatermark int

	// RequestTimeout is the server-wide per-request deadline; a
	// request's timeout_ms can tighten but never extend it.
	// Default 2s.
	RequestTimeout time.Duration

	// PartialGrace is how long the handler waits after a deadline
	// fires for the worker to surface the partial verdict it holds.
	// Default 50ms.
	PartialGrace time.Duration

	// RetryAfter is the hint returned with shed (429) responses.
	// Default 1s.
	RetryAfter time.Duration

	// CacheSize bounds the verdict cache; 0 selects 1024 and negative
	// disables caching.
	CacheSize int

	// MaxBodyBytes bounds request bodies. Default 1 MiB.
	MaxBodyBytes int64

	// MaxTasks and MaxCores bound accepted requests. Defaults 10000
	// and 1024.
	MaxTasks int
	MaxCores int

	// Metrics optionally receives the daemon's counters; nil runs
	// uninstrumented.
	Metrics *obs.Registry

	// Hooks is the chaos-test fault-injection seam; nil in production.
	Hooks *Hooks
}

// withDefaults resolves every zero field.
func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.DegradeWatermark < 0:
		// Degradation off: the watermark sits above every reachable
		// queue depth.
		c.DegradeWatermark = c.QueueDepth + 1
	case c.DegradeWatermark == 0:
		c.DegradeWatermark = 3 * c.QueueDepth / 4
		if c.DegradeWatermark < 1 {
			c.DegradeWatermark = 1
		}
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Second
	}
	if c.PartialGrace <= 0 {
		c.PartialGrace = 50 * time.Millisecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxTasks <= 0 {
		c.MaxTasks = 10000
	}
	if c.MaxCores <= 0 {
		c.MaxCores = 1024
	}
	return c
}

// metrics is the daemon's observability surface; every name is
// registered exactly once here. A nil *metrics (no registry) is a
// no-op via the obs nil-receiver contract.
type metrics struct {
	requests  *obs.Counter   // serve.requests.total
	admitted  *obs.Counter   // serve.requests.admitted
	rejected  *obs.Counter   // serve.requests.rejected
	uncertain *obs.Counter   // serve.requests.uncertain
	shed      *obs.Counter   // serve.requests.shed
	degraded  *obs.Counter   // serve.requests.degraded
	partial   *obs.Counter   // serve.requests.partial
	cached    *obs.Counter   // serve.requests.cached
	badReq    *obs.Counter   // serve.requests.invalid
	panics    *obs.Counter   // serve.panics.recovered
	depth     *obs.Gauge     // serve.queue.depth
	latency   *obs.Histogram // serve.request.seconds
}

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		return &metrics{}
	}
	return &metrics{
		requests:  reg.Counter("serve.requests.total"),
		admitted:  reg.Counter("serve.requests.admitted"),
		rejected:  reg.Counter("serve.requests.rejected"),
		uncertain: reg.Counter("serve.requests.uncertain"),
		shed:      reg.Counter("serve.requests.shed"),
		degraded:  reg.Counter("serve.requests.degraded"),
		partial:   reg.Counter("serve.requests.partial"),
		cached:    reg.Counter("serve.requests.cached"),
		badReq:    reg.Counter("serve.requests.invalid"),
		panics:    reg.Counter("serve.panics.recovered"),
		depth:     reg.Gauge("serve.queue.depth"),
		latency:   reg.Histogram("serve.request.seconds", nil),
	}
}

// workItem carries one queued admission job to a worker. done is
// buffered (capacity 1) so a worker can always publish its verdict
// without blocking, even after the handler gave up.
type workItem struct {
	ctx  context.Context
	job  *admitJob
	done chan *Response
}

// Server is the admission-control daemon: an http.Handler exposing
// POST /v1/admit plus /healthz, /readyz and /metricz. See the package
// comment for the robustness layers.
type Server struct {
	cfg   Config
	met   *metrics
	cache *verdictCache
	jobs  chan *workItem

	ready    atomic.Bool
	draining chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	mux      *http.ServeMux
}

// NewServer builds the daemon and starts its worker pool. Call
// Shutdown to drain it.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		met:      newMetrics(cfg.Metrics),
		cache:    newVerdictCache(cfg.CacheSize),
		jobs:     make(chan *workItem, cfg.QueueDepth),
		draining: make(chan struct{}),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/admit", s.handleAdmit)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.Handle("/metricz", obs.Handler(cfg.Metrics))
	s.ready.Store(true)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// ServeHTTP dispatches through the recovery middleware: a panic while
// serving any request — including one injected by the chaos hooks —
// is recovered, counted, and answered with 500; the daemon keeps
// serving.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			s.met.panics.Inc()
			writeJSON(w, http.StatusInternalServerError, &Response{
				Verdict: VerdictUncertain,
				Error:   fmt.Sprintf("internal error: %v", rec),
			})
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// Shutdown gracefully drains the daemon: /readyz flips to 503, new
// admissions are refused, queued work is finished, then the workers
// exit. It returns ctx.Err() if the drain outlives ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	s.stopOnce.Do(func() { close(s.draining) })
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Ready reports whether the daemon is accepting admissions.
func (s *Server) Ready() bool { return s.ready.Load() }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.met.requests.Inc()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, &Response{
			Verdict: VerdictUncertain,
			Error:   "use POST",
		})
		return
	}
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, &Response{
			Verdict: VerdictUncertain,
			Error:   "draining: not accepting admissions",
		})
		return
	}
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		s.met.badReq.Inc()
		writeJSON(w, http.StatusBadRequest, &Response{
			Verdict: VerdictUncertain,
			Error:   fmt.Sprintf("bad request body: %v", err),
		})
		return
	}
	job, err := normalize(&req, s.cfg.MaxTasks, s.cfg.MaxCores)
	if err != nil {
		s.met.badReq.Inc()
		writeJSON(w, http.StatusBadRequest, &Response{
			Verdict: VerdictUncertain,
			Tag:     req.Tag,
			Error:   err.Error(),
		})
		return
	}
	s.cfg.Hooks.inHandler(job.tag)

	key := cacheKey{job.hash, job.m, job.k, job.backend, job.schemeNames()}
	if hit := s.cache.get(key); hit != nil {
		s.met.cached.Inc()
		resp := *hit // shallow copy; cached entries are read-only
		resp.Cached = true
		resp.Tag = job.tag
		s.respond(w, http.StatusOK, &resp, start)
		return
	}

	// Every deadline descends from r.Context(): client disconnects and
	// server timeouts share one cancellation path.
	timeout := s.cfg.RequestTimeout
	if job.timeout > 0 && job.timeout < timeout {
		timeout = job.timeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Past the watermark, degradable requests answer from the
	// probe-only screen; require_full requests press on to the queue
	// and take the 429 when it is full.
	if len(s.jobs) >= s.cfg.DegradeWatermark && !job.requireFull {
		s.met.degraded.Inc()
		s.respond(w, http.StatusOK, s.degradedResponse(job), start)
		return
	}

	it := &workItem{ctx: ctx, job: job, done: make(chan *Response, 1)}
	select {
	case s.jobs <- it:
		s.met.depth.Set(float64(len(s.jobs)))
	default:
		s.met.shed.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		writeJSON(w, http.StatusTooManyRequests, &Response{
			Verdict: VerdictUncertain,
			Tag:     job.tag,
			Error:   "admission queue full: retry later",
		})
		return
	}

	select {
	case resp := <-it.done:
		s.finish(w, key, resp, start)
	case <-ctx.Done():
		// The worker may be holding a partial verdict at a scheme
		// boundary; give it a grace window to publish before answering
		// with a bare timeout.
		t := time.NewTimer(s.cfg.PartialGrace)
		defer t.Stop()
		select {
		case resp := <-it.done:
			s.finish(w, key, resp, start)
		case <-t.C:
			s.met.partial.Inc()
			writeJSON(w, http.StatusGatewayTimeout, &Response{
				Verdict: VerdictUncertain,
				Partial: true,
				Tag:     job.tag,
				Error:   "deadline exceeded before any verdict",
			})
		}
	}
}

// finish routes a worker verdict to the client, updating the cache and
// per-verdict counters.
func (s *Server) finish(w http.ResponseWriter, key cacheKey, resp *Response, start time.Time) {
	status := http.StatusOK
	switch {
	case resp.Error != "":
		status = http.StatusInternalServerError
	case resp.Partial:
		s.met.partial.Inc()
	default:
		// Only complete, healthy verdicts enter the cache; the stored
		// copy drops the request-specific tag.
		c := *resp
		c.Tag = ""
		s.cache.put(key, &c)
	}
	switch resp.Verdict {
	case VerdictAdmitted:
		s.met.admitted.Inc()
	case VerdictRejected:
		s.met.rejected.Inc()
	default:
		s.met.uncertain.Inc()
	}
	s.respond(w, status, resp, start)
}

func (s *Server) respond(w http.ResponseWriter, status int, resp *Response, start time.Time) {
	s.met.latency.Observe(time.Since(start))
	writeJSON(w, status, resp)
}

// degradedResponse is the load-shedding tier: a probe-only screen that
// answers in microseconds. It can certify rejects but never admits —
// admission always requires the full backend analysis.
func (s *Server) degradedResponse(job *admitJob) *Response {
	resp := &Response{
		Degraded:    true,
		Tag:         job.tag,
		TaskSetHash: fmt.Sprintf("%016x", job.hash),
	}
	v, reason := Screen(job.ts, job.m, job.k)
	if v == ScreenReject {
		resp.Verdict = VerdictRejected
		resp.Reason = reason
		return resp
	}
	resp.Verdict = VerdictUncertain
	resp.Reason = "degraded mode: utilization screen could not certify a reject; retry for full analysis"
	return resp
}

// worker consumes admission jobs on pooled Partitioners (one per
// analysis backend, reused via Reset so steady-state evaluation stays
// allocation-free). It exits only when the daemon drains.
func (s *Server) worker() {
	defer s.wg.Done()
	pool := make(map[string]*partition.Partitioner)
	for {
		select {
		case it := <-s.jobs:
			s.met.depth.Set(float64(len(s.jobs)))
			s.serveJob(pool, it)
		case <-s.draining:
			for {
				select {
				case it := <-s.jobs:
					s.serveJob(pool, it)
				default:
					return
				}
			}
		}
	}
}

// serveJob runs one admission job inside the per-request panic
// quarantine and always publishes exactly one response on it.done.
func (s *Server) serveJob(pool map[string]*partition.Partitioner, it *workItem) {
	defer func() {
		if rec := recover(); rec != nil {
			s.met.panics.Inc()
			// The quarantined Partitioner's internal state is suspect;
			// drop it so the next job on this backend starts fresh.
			delete(pool, it.job.backend)
			it.done <- &Response{
				Verdict: VerdictUncertain,
				Tag:     it.job.tag,
				Error:   fmt.Sprintf("internal error: admission evaluation panicked: %v", rec),
			}
		}
	}()
	it.done <- s.evaluate(it.ctx, pool, it.job)
}

// evaluate runs the job's schemes on the pooled Partitioner for its
// backend, honoring ctx between schemes; on expiry it returns the
// partial verdict batch completed so far.
func (s *Server) evaluate(ctx context.Context, pool map[string]*partition.Partitioner, job *admitJob) *Response {
	resp := &Response{
		Verdict:     VerdictUncertain,
		Tag:         job.tag,
		TaskSetHash: fmt.Sprintf("%016x", job.hash),
	}
	if ctx.Err() != nil {
		resp.Partial = true
		resp.Reason = "deadline expired while queued"
		return resp
	}
	s.cfg.Hooks.beforeEvaluate(job.tag)
	p := pool[job.backend]
	if p == nil {
		be, err := partition.NewBackend(job.backend)
		if err != nil {
			resp.Error = fmt.Sprintf("backend %q vanished from the registry", job.backend)
			return resp
		}
		p = partition.NewWithBackend(job.m, job.k, be)
		pool[job.backend] = p
	} else {
		p.Reset(job.m, job.k)
	}
	verdicts := make([]Verdict, 0, len(job.schemes))
	firstAdmit := -1
	for i, scheme := range job.schemes {
		s.cfg.Hooks.duringEvaluate(job.tag, i)
		res, err := p.RunContext(ctx, job.ts, scheme, nil)
		if err != nil {
			resp.Partial = true
			break
		}
		v := Verdict{
			Scheme:   scheme.String(),
			Admitted: res.Feasible,
		}
		if res.Feasible {
			v.Usys = res.Usys
			v.Uavg = res.Uavg
			v.Imbalance = res.Imbalance
			if firstAdmit < 0 {
				firstAdmit = len(verdicts)
				// Result is owned by the Partitioner and recycled on the
				// next run; the response needs its own copy.
				v.Assignment = append([]int(nil), res.Assignment...)
			}
		}
		verdicts = append(verdicts, v)
	}
	resp.Verdicts = verdicts
	switch {
	case firstAdmit >= 0:
		// A completed admit stands even if later schemes timed out.
		resp.Admitted = true
		resp.Verdict = VerdictAdmitted
	case resp.Partial:
		resp.Verdict = VerdictUncertain
	default:
		resp.Verdict = VerdictRejected
		resp.Reason = fmt.Sprintf("no scheme of [%s] admits the set on m=%d cores under %s", job.schemeNames(), job.m, job.backend)
	}
	if resp.Partial {
		resp.Reason = fmt.Sprintf("deadline expired after %d of %d schemes", len(verdicts), len(job.schemes))
	}
	return resp
}

// writeJSON writes resp with the given status as indented JSON.
func writeJSON(w http.ResponseWriter, status int, resp *Response) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}
