// Package client is the admission daemon's Go client: a thin HTTP
// wrapper around POST /v1/admit with deadline-budgeted retries —
// capped exponential backoff with full jitter, Retry-After awareness
// for shed (429) responses, and a hard stop whenever the next backoff
// would outlive the caller's context. The load harness
// (cmd/mcserveload) drives the daemon through this client, so its
// retry behavior is exercised by the same chaos the daemon is.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"catpa/internal/serve"
)

// Config tunes a Client. The zero value of every field selects a
// default.
type Config struct {
	// BaseURL is the daemon root, e.g. "http://localhost:8377".
	BaseURL string

	// HTTPClient optionally overrides the transport (tests inject
	// httptest clients). Default http.DefaultClient.
	HTTPClient *http.Client

	// MaxAttempts bounds the total tries per Admit call (first attempt
	// included). Default 4.
	MaxAttempts int

	// BaseBackoff is the first retry's backoff ceiling; attempt i
	// draws uniformly from [0, min(BaseBackoff·2^i, MaxBackoff)] (full
	// jitter). Defaults 50ms and 2s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// Seed fixes the jitter sequence for reproducible tests; 0 keeps
	// the deterministic default stream.
	Seed int64

	// OnAttempt, when set, observes every attempt's HTTP status (0
	// for transport errors). The load harness counts sheds and
	// transient failures through it — retries would otherwise hide
	// them from the final outcome.
	OnAttempt func(status int)
}

// Client posts admission requests with retries. It is safe for
// concurrent use.
type Client struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand
}

// StatusError is returned when the daemon answers with a terminal
// non-2xx status; Resp carries the decoded body when there was one.
type StatusError struct {
	Status int
	Resp   *serve.Response

	// retryAfter carries the daemon's Retry-After hint on sheds, so
	// backoff can honor it.
	retryAfter time.Duration
}

func (e *StatusError) Error() string {
	if e.Resp != nil && e.Resp.Error != "" {
		return fmt.Sprintf("client: daemon answered %d: %s", e.Status, e.Resp.Error)
	}
	return fmt.Sprintf("client: daemon answered %d", e.Status)
}

// New builds a Client for the daemon at cfg.BaseURL.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("client: BaseURL required")
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Client{cfg: cfg, rng: rand.New(rand.NewSource(seed))}, nil
}

// retryable reports whether a status is worth another attempt: shed
// (429), transient daemon trouble (500), drain (503) and server-side
// deadline expiry (504, the retry may catch a calmer queue).
func retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests,
		http.StatusInternalServerError,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	default:
		return false
	}
}

// Admit posts req, retrying transient failures while ctx's deadline
// budget lasts. On success the daemon's response is returned along
// with the number of attempts spent. On a terminal failure the error
// is a *StatusError when the daemon answered, and the last transport
// error otherwise; a nil Response is returned alongside.
func (c *Client) Admit(ctx context.Context, req *serve.Request) (*serve.Response, int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, 0, fmt.Errorf("client: marshal request: %w", err)
	}
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, c.backoff(attempt-1, lastErr)); err != nil {
				return nil, attempt, fmt.Errorf("client: deadline budget exhausted after %d attempts: %w (last: %v)", attempt, err, lastErr)
			}
		}
		resp, err := c.post(ctx, body)
		switch {
		case err == nil:
			return resp, attempt + 1, nil
		case ctx.Err() != nil:
			return nil, attempt + 1, fmt.Errorf("client: %w (last: %v)", ctx.Err(), err)
		}
		lastErr = err
		var se *StatusError
		if asStatus(err, &se) && !retryable(se.Status) {
			return nil, attempt + 1, err
		}
	}
	return nil, c.cfg.MaxAttempts, fmt.Errorf("client: gave up after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// post performs one attempt.
func (c *Client) post(ctx context.Context, body []byte) (*serve.Response, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+"/v1/admit", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("client: build request: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hr, err := c.cfg.HTTPClient.Do(hreq)
	if err != nil {
		if c.cfg.OnAttempt != nil {
			c.cfg.OnAttempt(0)
		}
		return nil, fmt.Errorf("client: %w", err)
	}
	defer hr.Body.Close()
	if c.cfg.OnAttempt != nil {
		c.cfg.OnAttempt(hr.StatusCode)
	}
	var resp serve.Response
	decodeErr := json.NewDecoder(hr.Body).Decode(&resp)
	if hr.StatusCode >= 200 && hr.StatusCode < 300 {
		if decodeErr != nil {
			return nil, fmt.Errorf("client: decode response: %w", decodeErr)
		}
		return &resp, nil
	}
	se := &StatusError{Status: hr.StatusCode}
	if decodeErr == nil {
		se.Resp = &resp
	}
	if hr.StatusCode == http.StatusTooManyRequests {
		if secs, err := strconv.Atoi(hr.Header.Get("Retry-After")); err == nil && secs > 0 {
			se.retryAfter = time.Duration(secs) * time.Second
		}
	}
	return nil, se
}

// backoff draws the sleep before retry number attempt+1: full jitter
// over an exponentially growing, capped ceiling — or the daemon's own
// Retry-After hint when the previous answer was a shed.
func (c *Client) backoff(attempt int, lastErr error) time.Duration {
	var se *StatusError
	if asStatus(lastErr, &se) && se.retryAfter > 0 {
		return se.retryAfter
	}
	ceil := c.cfg.BaseBackoff << uint(attempt)
	if ceil > c.cfg.MaxBackoff || ceil <= 0 {
		ceil = c.cfg.MaxBackoff
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.rng.Int63n(int64(ceil) + 1))
}

// sleep waits for d unless the remaining deadline budget cannot cover
// it, failing fast instead of burning the caller's budget on a nap.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) < d {
		return context.DeadlineExceeded
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// asStatus unwraps err into *StatusError, reporting success.
func asStatus(err error, target **StatusError) bool {
	se, ok := err.(*StatusError)
	if ok {
		*target = se
	}
	return ok
}
