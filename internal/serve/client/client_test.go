package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"catpa/internal/mc"
	"catpa/internal/serve"
	"catpa/internal/taskgen"
)

func testSet(tb testing.TB) *mc.TaskSet {
	tb.Helper()
	cfg := taskgen.DefaultConfig()
	cfg.M, cfg.K, cfg.NSU = 4, 2, 0.5
	cfg.N = taskgen.IntRange{Lo: 16, Hi: 16}
	return taskgen.GenerateIndexed(&cfg, 11, 0)
}

// scriptServer answers each request with the next scripted status; a
// 200 carries an admitted verdict.
func scriptServer(tb testing.TB, script []int) (*httptest.Server, *atomic.Int64) {
	tb.Helper()
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(calls.Add(1)) - 1
		status := http.StatusOK
		if n < len(script) {
			status = script[n]
		}
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		resp := serve.Response{Verdict: serve.VerdictUncertain, Error: "scripted failure"}
		if status == http.StatusOK {
			resp = serve.Response{Admitted: true, Verdict: serve.VerdictAdmitted}
		}
		if err := json.NewEncoder(w).Encode(&resp); err != nil {
			tb.Errorf("encode: %v", err)
		}
	}))
	tb.Cleanup(hs.Close)
	return hs, &calls
}

func newClient(tb testing.TB, hs *httptest.Server, cfg Config) *Client {
	tb.Helper()
	cfg.BaseURL = hs.URL
	cfg.HTTPClient = hs.Client()
	if cfg.BaseBackoff == 0 {
		cfg.BaseBackoff = time.Millisecond
	}
	if cfg.MaxBackoff == 0 {
		cfg.MaxBackoff = 5 * time.Millisecond
	}
	c, err := New(cfg)
	if err != nil {
		tb.Fatalf("New: %v", err)
	}
	return c
}

func TestAdmitRetriesTransientFailures(t *testing.T) {
	hs, calls := scriptServer(t, []int{http.StatusServiceUnavailable, http.StatusInternalServerError})
	var seen []int
	var mu sync.Mutex
	c := newClient(t, hs, Config{OnAttempt: func(status int) {
		mu.Lock()
		seen = append(seen, status)
		mu.Unlock()
	}})
	resp, attempts, err := c.Admit(context.Background(), &serve.Request{})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if !resp.Admitted || attempts != 3 || calls.Load() != 3 {
		t.Errorf("resp=%+v attempts=%d calls=%d", resp, attempts, calls.Load())
	}
	want := []int{503, 500, 200}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != len(want) {
		t.Fatalf("observer saw %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("observer[%d] = %d, want %d", i, seen[i], want[i])
		}
	}
}

func TestAdmitDoesNotRetryClientErrors(t *testing.T) {
	hs, calls := scriptServer(t, []int{http.StatusBadRequest})
	c := newClient(t, hs, Config{})
	_, attempts, err := c.Admit(context.Background(), &serve.Request{})
	if err == nil || attempts != 1 || calls.Load() != 1 {
		t.Fatalf("err=%v attempts=%d calls=%d", err, attempts, calls.Load())
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusBadRequest {
		t.Errorf("error %v is not a 400 StatusError", err)
	}
	if se.Resp == nil || se.Resp.Error != "scripted failure" {
		t.Errorf("StatusError body %+v", se.Resp)
	}
}

func TestAdmitGivesUpAfterMaxAttempts(t *testing.T) {
	hs, calls := scriptServer(t, []int{503, 503, 503, 503, 503, 503})
	c := newClient(t, hs, Config{MaxAttempts: 3})
	_, attempts, err := c.Admit(context.Background(), &serve.Request{})
	if err == nil || attempts != 3 || calls.Load() != 3 {
		t.Fatalf("err=%v attempts=%d calls=%d", err, attempts, calls.Load())
	}
}

func TestAdmitHonorsRetryAfterOnShed(t *testing.T) {
	hs, _ := scriptServer(t, []int{http.StatusTooManyRequests})
	c := newClient(t, hs, Config{})
	// The daemon said "come back in 1s" but the caller only has
	// ~50ms of budget: the client must fail fast, not sleep through
	// the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := c.Admit(ctx, &serve.Request{})
	if err == nil {
		t.Fatal("expected a budget failure")
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("client slept %v into a 50ms budget", elapsed)
	}
}

func TestAdmitDeadlineBudgetExhaustion(t *testing.T) {
	hs, _ := scriptServer(t, []int{503, 503, 503, 503})
	c := newClient(t, hs, Config{
		MaxAttempts: 10,
		BaseBackoff: 40 * time.Millisecond,
		MaxBackoff:  40 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	_, attempts, err := c.Admit(ctx, &serve.Request{})
	if err == nil {
		t.Fatal("expected deadline exhaustion")
	}
	if attempts >= 10 {
		t.Errorf("spent all %d attempts despite a 60ms budget", attempts)
	}
}

func TestBackoffJitterIsCappedAndDeterministic(t *testing.T) {
	mk := func() *Client {
		c, err := New(Config{BaseURL: "http://x", BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(), mk()
	for attempt := 0; attempt < 12; attempt++ {
		da := a.backoff(attempt, nil)
		if db := b.backoff(attempt, nil); da != db {
			t.Fatalf("attempt %d: same seed diverged (%v vs %v)", attempt, da, db)
		}
		if da < 0 || da > 80*time.Millisecond {
			t.Errorf("attempt %d: backoff %v outside [0, cap]", attempt, da)
		}
	}
	// A shed's Retry-After overrides jitter entirely.
	shed := &StatusError{Status: http.StatusTooManyRequests, retryAfter: 3 * time.Second}
	if got := a.backoff(0, shed); got != 3*time.Second {
		t.Errorf("Retry-After backoff = %v", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted an empty BaseURL")
	}
}

// TestClientAgainstRealDaemon closes the loop: the retrying client
// talking to the real serve.Server, shed until the queue drains.
func TestClientAgainstRealDaemon(t *testing.T) {
	s := serve.NewServer(serve.Config{})
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		hs.Close()
		if err := s.Shutdown(context.Background()); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	c, err := New(Config{BaseURL: hs.URL, HTTPClient: hs.Client()})
	if err != nil {
		t.Fatal(err)
	}
	resp, attempts, err := c.Admit(context.Background(), &serve.Request{TaskSet: testSet(t), M: 4, Tag: "e2e"})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if attempts != 1 || resp.Tag != "e2e" || resp.Verdict == "" {
		t.Errorf("attempts=%d resp=%+v", attempts, resp)
	}
}

func TestRunLoadAgainstRealDaemon(t *testing.T) {
	s := serve.NewServer(serve.Config{})
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		hs.Close()
		if err := s.Shutdown(context.Background()); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	c, err := New(Config{BaseURL: hs.URL, HTTPClient: hs.Client()})
	if err != nil {
		t.Fatal(err)
	}
	ts := testSet(t)
	rep, err := RunLoad(context.Background(), LoadConfig{
		Client:   c,
		Corpus:   []*serve.Request{{TaskSet: ts, M: 4}, {TaskSet: ts, M: 1}},
		RPS:      200,
		Duration: 250 * time.Millisecond,
		Conns:    8,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Offered == 0 || rep.Attempts == 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	if got := rep.Admitted + rep.Rejected + rep.Uncertain + rep.Failed; got != rep.Offered {
		t.Errorf("outcomes %d != offered %d", got, rep.Offered)
	}
	if rep.P50MS > rep.P95MS+1e-9 || rep.P95MS > rep.P99MS+1e-9 || rep.P99MS > rep.MaxMS+1e-9 {
		t.Errorf("percentiles not monotone: %+v", rep)
	}
	if rep.Failed > 0 {
		t.Errorf("healthy daemon failed %d requests", rep.Failed)
	}
}

func TestRunLoadValidation(t *testing.T) {
	c, err := New(Config{BaseURL: "http://x"})
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range map[string]LoadConfig{
		"no client":   {Corpus: []*serve.Request{{}}, RPS: 1, Duration: time.Second},
		"no corpus":   {Client: c, RPS: 1, Duration: time.Second},
		"no rate":     {Client: c, Corpus: []*serve.Request{{}}, Duration: time.Second},
		"no duration": {Client: c, Corpus: []*serve.Request{{}}, RPS: 1},
	} {
		if _, err := RunLoad(context.Background(), cfg); err == nil {
			t.Errorf("%s: RunLoad accepted a bad config", name)
		}
	}
}

func TestPercentileMS(t *testing.T) {
	sorted := []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond, 4 * time.Millisecond}
	cases := []struct {
		p    int
		want float64
	}{{50, 2}, {95, 4}, {99, 4}, {1, 1}, {100, 4}}
	for _, tc := range cases {
		if got := percentileMS(sorted, tc.p); got != tc.want {
			t.Errorf("p%d = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := percentileMS(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}
