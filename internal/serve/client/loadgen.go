package client

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"catpa/internal/serve"
)

// LoadConfig drives one open-loop load run: requests are offered at a
// fixed rate regardless of how fast the daemon answers (the wrk
// model), so queue growth, shedding and degradation show up as they
// would in production rather than being absorbed by a closed loop
// slowing down.
type LoadConfig struct {
	// Client posts the requests (its retry policy is part of the
	// system under test).
	Client *Client

	// Corpus holds the admission requests to offer, round-robin.
	Corpus []*serve.Request

	// RPS is the offered load in requests per second.
	RPS float64

	// Duration bounds the run.
	Duration time.Duration

	// Conns is the number of concurrent senders draining the offer
	// queue. Default 16.
	Conns int

	// RequestBudget is each request's end-to-end deadline (retries
	// included). Default 1s.
	RequestBudget time.Duration
}

// LoadReport summarizes one load run. All rates are fractions of
// Offered.
type LoadReport struct {
	OfferedRPS float64 `json:"offered_rps"`
	DurationS  float64 `json:"duration_s"`
	Offered    int     `json:"offered"`

	// Final request outcomes (after retries).
	Admitted  int `json:"admitted"`
	Rejected  int `json:"rejected"`
	Uncertain int `json:"uncertain"`
	Failed    int `json:"failed"`

	// Response flavors among completed requests.
	Degraded int `json:"degraded"`
	Partial  int `json:"partial"`
	Cached   int `json:"cached"`

	// Per-attempt observations (retries visible).
	Attempts int `json:"attempts"`
	Shed429  int `json:"shed_429"`
	Err5xx   int `json:"err_5xx"`

	DegradedRate float64 `json:"degraded_rate"`
	ShedRate     float64 `json:"shed_rate"`

	// End-to-end latency percentiles in milliseconds (retries and
	// backoff included).
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

// RunLoad offers cfg.Corpus at cfg.RPS for cfg.Duration and reports
// outcome counts and latency percentiles. The attempt counters are
// collected through the client's OnAttempt observer, which RunLoad
// installs; an already-installed observer is chained.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	switch {
	case cfg.Client == nil:
		return nil, fmt.Errorf("client: RunLoad needs a Client")
	case len(cfg.Corpus) == 0:
		return nil, fmt.Errorf("client: RunLoad needs a request corpus")
	case cfg.RPS <= 0 || cfg.Duration <= 0:
		return nil, fmt.Errorf("client: RunLoad needs positive RPS and Duration")
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 16
	}
	if cfg.RequestBudget <= 0 {
		cfg.RequestBudget = time.Second
	}

	rep := &LoadReport{OfferedRPS: cfg.RPS, DurationS: cfg.Duration.Seconds()}
	var mu sync.Mutex
	var latencies []time.Duration

	prev := cfg.Client.cfg.OnAttempt
	cfg.Client.cfg.OnAttempt = func(status int) {
		mu.Lock()
		rep.Attempts++
		switch {
		case status == http.StatusTooManyRequests:
			rep.Shed429++
		case status >= 500:
			rep.Err5xx++
		}
		mu.Unlock()
		if prev != nil {
			prev(status)
		}
	}
	defer func() { cfg.Client.cfg.OnAttempt = prev }()

	offers := make(chan *serve.Request, cfg.Conns)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for req := range offers {
				start := time.Now()
				rctx, cancel := context.WithTimeout(ctx, cfg.RequestBudget)
				resp, _, err := cfg.Client.Admit(rctx, req)
				cancel()
				elapsed := time.Since(start)
				mu.Lock()
				latencies = append(latencies, elapsed)
				switch {
				case err != nil:
					rep.Failed++
				case resp.Verdict == serve.VerdictAdmitted:
					rep.Admitted++
				case resp.Verdict == serve.VerdictRejected:
					rep.Rejected++
				default:
					rep.Uncertain++
				}
				if err == nil {
					if resp.Degraded {
						rep.Degraded++
					}
					if resp.Partial {
						rep.Partial++
					}
					if resp.Cached {
						rep.Cached++
					}
				}
				mu.Unlock()
			}
		}()
	}

	// The offer clock: one request per tick, dropped ticks are still
	// counted as offered so overload cannot flatter the report.
	interval := time.Duration(float64(time.Second) / cfg.RPS)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	ticker := time.NewTicker(interval)
	stop := time.NewTimer(cfg.Duration)
	defer ticker.Stop()
	defer stop.Stop()
	next := 0
offer:
	for {
		select {
		case <-ticker.C:
			rep.Offered++
			select {
			case offers <- cfg.Corpus[next%len(cfg.Corpus)]:
			default:
				// Every sender is busy and the hand-off buffer is
				// full: the request is offered but immediately lost,
				// exactly like a connection the server never accepted.
				mu.Lock()
				rep.Failed++
				mu.Unlock()
			}
			next++
		case <-stop.C:
			break offer
		case <-ctx.Done():
			break offer
		}
	}
	close(offers)
	wg.Wait()

	if rep.Offered > 0 {
		mu.Lock()
		rep.DegradedRate = float64(rep.Degraded) / float64(rep.Offered)
		rep.ShedRate = float64(rep.Shed429) / float64(rep.Offered)
		mu.Unlock()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep.P50MS = percentileMS(latencies, 50)
	rep.P95MS = percentileMS(latencies, 95)
	rep.P99MS = percentileMS(latencies, 99)
	if n := len(latencies); n > 0 {
		rep.MaxMS = float64(latencies[n-1]) / float64(time.Millisecond)
	}
	if ctx.Err() != nil {
		return rep, ctx.Err()
	}
	return rep, nil
}

// percentileMS is the nearest-rank percentile of sorted durations, in
// milliseconds.
func percentileMS(sorted []time.Duration, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return float64(sorted[rank-1]) / float64(time.Millisecond)
}
