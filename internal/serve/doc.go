// Package serve is the admission-control daemon behind cmd/mcserved:
// a long-running HTTP/JSON service that answers the paper's
// partitioning question — "can this task set be admitted, and onto
// which cores?" — under concurrent load, on pooled reusable
// partition.Partitioners (one per worker per analysis backend, so the
// steady-state partitioning hot path keeps its 0 allocs/op). The
// pooled Partitioners also carry the online session protocol
// (StartIncremental / Admit / Release), and the two modes interleave
// freely on one instance: every batch entry point re-prepares and
// clears any session state, a property the pooled-reuse regression
// (partition.TestPooledSessionThenBatch) pins bitwise.
//
// Robustness is layered, in request order:
//
//   - Deadlines. A timeout middleware derives every request's work
//     context from r.Context(); the deadline is plumbed through
//     Partitioner evaluation (partition.RunContext), and a deadline
//     that fires mid-batch yields a partial-verdict response carrying
//     the schemes that did complete.
//   - Backpressure. Admission work flows through a fixed-capacity
//     queue; when it is full the daemon answers 429 with Retry-After
//     instead of growing goroutines without bound.
//   - Graceful degradation. Past a queue-depth watermark, requests
//     downgrade from full backend analysis to the probe-only
//     utilization screen (Screen): certified fast rejects and honest
//     "uncertain" verdicts, labeled "degraded": true — never a false
//     admit. Clients that cannot act on a probe-only verdict set
//     "require_full": true to opt out and take queue backpressure
//     instead.
//   - Panic quarantine. A panic while serving one request is
//     recovered, counted in the metrics registry, and answered with
//     500; unrelated in-flight requests and the daemon itself keep
//     going (the runner's per-set quarantine philosophy).
//   - Drain. Shutdown flips /readyz to 503, stops accepting work and
//     drains the queue, so a rolling restart loses nothing.
//
// The Hooks seam exists for the chaos suite only: scripted panics,
// stalls and slow-backend delays (in the spirit of
// internal/runner/faultinject) prove the layers above under -race.
// Nothing in production code installs a hook.
package serve
