package serve

import (
	"fmt"
	"time"

	"catpa/internal/mc"
	"catpa/internal/partition"
)

// Request is the admission question posed to POST /v1/admit.
type Request struct {
	// TaskSet is the candidate workload. It must validate (positive
	// periods, monotone WCET vectors, unique IDs) and be non-empty.
	TaskSet *mc.TaskSet `json:"task_set"`

	// M is the number of cores to partition onto.
	M int `json:"m"`

	// K is the number of system criticality levels; 0 defaults to the
	// set's own maximum criticality.
	K int `json:"k,omitempty"`

	// Schemes names the partitioning heuristics to try, in order
	// (partition.ParseScheme forms, e.g. "CA-TPA", "FFD"). Empty
	// defaults to CA-TPA alone.
	Schemes []string `json:"schemes,omitempty"`

	// Backend names the per-core analysis backend ("edfvd", "amcrtb");
	// empty selects the default EDF-VD analysis.
	Backend string `json:"backend,omitempty"`

	// TimeoutMS optionally tightens this request's deadline below the
	// server-wide request timeout (it can never extend it).
	TimeoutMS int `json:"timeout_ms,omitempty"`

	// RequireFull opts out of graceful degradation: a client that
	// cannot act on a probe-only verdict asks for the full analysis
	// and accepts backpressure (429) instead when the daemon is past
	// its watermark.
	RequireFull bool `json:"require_full,omitempty"`

	// Tag is an opaque client label echoed in the response; the chaos
	// suite also scripts fault injection by tag.
	Tag string `json:"tag,omitempty"`
}

// Verdict is the outcome of one scheme's partitioning attempt.
type Verdict struct {
	// Scheme is the heuristic's canonical name.
	Scheme string `json:"scheme"`
	// Admitted reports whether every task was placed on a core that
	// passes the backend's schedulability analysis.
	Admitted bool `json:"admitted"`
	// Usys, Uavg and Imbalance are the Eq. 10/11/16 aggregates of the
	// resulting partition (meaningful when Admitted).
	Usys      float64 `json:"usys"`
	Uavg      float64 `json:"uavg"`
	Imbalance float64 `json:"imbalance"`
	// Assignment maps task index to core for the first admitted
	// scheme of the response (omitted otherwise).
	Assignment []int `json:"assignment,omitempty"`
}

// Verdict labels used in Response.Verdict.
const (
	// VerdictAdmitted: at least one scheme produced a feasible
	// partition under the full backend analysis.
	VerdictAdmitted = "admitted"
	// VerdictRejected: no tried scheme admits the set. In degraded
	// mode this label is only used for certified screen rejects.
	VerdictRejected = "rejected"
	// VerdictUncertain: the degraded tier could not certify a reject
	// and full analysis was not run; retry later for a real verdict.
	VerdictUncertain = "uncertain"
)

// Response is the daemon's answer to an admission request.
type Response struct {
	// Admitted is true only when a full-analysis verdict admitted the
	// set; degraded and partial responses never set it spuriously.
	Admitted bool `json:"admitted"`
	// Verdict is one of the Verdict* labels.
	Verdict string `json:"verdict"`
	// Verdicts holds the per-scheme outcomes that completed.
	Verdicts []Verdict `json:"verdicts,omitempty"`
	// Degraded marks a load-shed verdict from the probe-only screen
	// (no full analysis ran).
	Degraded bool `json:"degraded,omitempty"`
	// Partial marks a response whose deadline fired mid-batch:
	// Verdicts carries only the schemes that completed in time.
	Partial bool `json:"partial,omitempty"`
	// Cached marks a verdict served from the daemon's verdict cache.
	Cached bool `json:"cached,omitempty"`
	// Reason explains rejected/uncertain verdicts.
	Reason string `json:"reason,omitempty"`
	// TaskSetHash is the canonical mc.TaskSetHash of the request's
	// set, in hex — the verdict-cache identity.
	TaskSetHash string `json:"task_set_hash,omitempty"`
	// Tag echoes Request.Tag.
	Tag string `json:"tag,omitempty"`
	// Error carries the failure description on non-2xx responses.
	Error string `json:"error,omitempty"`
}

// admitJob is a validated, normalized admission request.
type admitJob struct {
	ts          *mc.TaskSet
	m, k        int
	schemes     []partition.Scheme
	backend     string
	tag         string
	hash        uint64
	timeout     time.Duration // 0: server default
	requireFull bool
}

// normalize validates req against the server limits and resolves every
// default, returning the executable job or a client error.
func normalize(req *Request, maxTasks, maxCores int) (*admitJob, error) {
	if req.TaskSet == nil || req.TaskSet.Len() == 0 {
		return nil, fmt.Errorf("task_set must hold at least one task")
	}
	if n := req.TaskSet.Len(); n > maxTasks {
		return nil, fmt.Errorf("task_set has %d tasks; the server accepts at most %d", n, maxTasks)
	}
	if err := req.TaskSet.Validate(); err != nil {
		return nil, fmt.Errorf("invalid task_set: %v", err)
	}
	if req.M < 1 || req.M > maxCores {
		return nil, fmt.Errorf("m must be in 1..%d, got %d", maxCores, req.M)
	}
	k := req.K
	maxCrit := req.TaskSet.MaxCrit()
	if k == 0 {
		k = maxCrit
	}
	if k < maxCrit {
		return nil, fmt.Errorf("k=%d below the task set's criticality %d", k, maxCrit)
	}
	backend := req.Backend
	if backend == "" {
		backend = partition.DefaultBackend
	}
	be, err := partition.NewBackend(backend)
	if err != nil {
		return nil, fmt.Errorf("unknown backend %q (registered: %v)", backend, partition.BackendNames())
	}
	if maxK := be.MaxLevels(); maxK > 0 && k > maxK {
		return nil, fmt.Errorf("backend %q supports at most K=%d levels, got %d", backend, maxK, k)
	}
	names := req.Schemes
	if len(names) == 0 {
		names = []string{partition.CATPA.String()}
	}
	schemes := make([]partition.Scheme, 0, len(names))
	for _, name := range names {
		s, err := partition.ParseScheme(name)
		if err != nil {
			return nil, fmt.Errorf("unknown scheme %q", name)
		}
		schemes = append(schemes, s)
	}
	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("timeout_ms must be non-negative, got %d", req.TimeoutMS)
	}
	return &admitJob{
		ts:          req.TaskSet,
		m:           req.M,
		k:           k,
		schemes:     schemes,
		backend:     backend,
		tag:         req.Tag,
		hash:        mc.TaskSetHash(req.TaskSet),
		timeout:     time.Duration(req.TimeoutMS) * time.Millisecond,
		requireFull: req.RequireFull,
	}, nil
}

// schemeNames renders the job's scheme list canonically (cache key and
// verdict labels).
func (j *admitJob) schemeNames() string {
	out := ""
	for i, s := range j.schemes {
		if i > 0 {
			out += ","
		}
		out += s.String()
	}
	return out
}
