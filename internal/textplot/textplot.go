// Package textplot renders experiment results as aligned text tables,
// ASCII line charts and CSV, so every figure of the paper can be
// regenerated on a terminal without plotting dependencies.
package textplot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one labelled line of a chart: Y values over the shared X
// axis of a Chart.
type Series struct {
	Label string
	Y     []float64
}

// Chart is a set of series over a common X axis.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// Table renders the chart as an aligned text table: one row per X
// value, one column per series.
func (c *Chart) Table() string {
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	// Header.
	fmt.Fprintf(&b, "%-10s", c.XLabel)
	for _, s := range c.Series {
		fmt.Fprintf(&b, " %12s", s.Label)
	}
	b.WriteByte('\n')
	for i, x := range c.X {
		fmt.Fprintf(&b, "%-10s", trimFloat(x))
		for _, s := range c.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, " %12.4f", s.Y[i])
			} else {
				fmt.Fprintf(&b, " %12s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the chart as comma-separated values with a header row.
func (c *Chart) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(c.XLabel))
	for _, s := range c.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Label))
	}
	b.WriteByte('\n')
	for i, x := range c.X {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range c.Series {
			b.WriteByte(',')
			if i < len(s.Y) {
				fmt.Fprintf(&b, "%g", s.Y[i])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Plot renders an ASCII line chart of the series, height rows tall
// (minimum 5; 0 selects 16). Each series is drawn with its own marker
// character; a legend follows the chart.
func (c *Chart) Plot(height int) string {
	if height <= 0 {
		height = 16
	}
	if height < 5 {
		height = 5
	}
	width := len(c.X)
	if width == 0 || len(c.Series) == 0 {
		return "(empty chart)\n"
	}
	colWidth := 3
	lo, hi := c.yRange()
	if hi-lo < 1e-12 {
		hi = lo + 1
	}
	markers := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width*colWidth))
	}
	for si, s := range c.Series {
		mark := markers[si%len(markers)]
		for i, y := range s.Y {
			if i >= width || math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			row := int(math.Round((hi - y) / (hi - lo) * float64(height-1)))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][i*colWidth+1] = mark
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for r, rowBytes := range grid {
		yVal := hi - (hi-lo)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%8.3f |%s\n", yVal, string(rowBytes))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", width*colWidth))
	fmt.Fprintf(&b, "%8s  ", "")
	for _, x := range c.X {
		lbl := trimFloat(x)
		if len(lbl) > colWidth {
			lbl = lbl[:colWidth]
		}
		fmt.Fprintf(&b, "%-*s", colWidth, lbl)
	}
	b.WriteByte('\n')
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%8s  %c %s\n", "", markers[si%len(markers)], s.Label)
	}
	return b.String()
}

func (c *Chart) yRange() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, y := range s.Y {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			if y < lo {
				lo = y
			}
			if y > hi {
				hi = y
			}
		}
	}
	if math.IsInf(lo, 1) {
		lo, hi = 0, 1
	}
	return lo, hi
}

// trimFloat formats a float compactly ("0.6", "16", "0.45").
func trimFloat(x float64) string {
	s := fmt.Sprintf("%.4g", x)
	return s
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// AlignedTable renders rows of cells with left-aligned, padded
// columns; the first row is treated as a header and underlined.
func AlignedTable(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(rows[0])
	total := -2
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range rows[1:] {
		writeRow(row)
	}
	return b.String()
}

// SortedKeys returns the sorted keys of a string-keyed map; a helper
// for deterministic output.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
