package textplot

import (
	"math"
	"strings"
	"testing"
)

func sampleChart() *Chart {
	return &Chart{
		Title:  "Fig. X(a) schedulability ratio",
		XLabel: "NSU",
		YLabel: "ratio",
		X:      []float64{0.4, 0.5, 0.6, 0.7, 0.8},
		Series: []Series{
			{Label: "CA-TPA", Y: []float64{1, 0.98, 0.9, 0.6, 0.2}},
			{Label: "FFD", Y: []float64{1, 0.95, 0.8, 0.45, 0.1}},
		},
	}
}

func TestTable(t *testing.T) {
	out := sampleChart().Table()
	for _, want := range []string{"NSU", "CA-TPA", "FFD", "0.4", "0.9000"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 7 { // title + header + 5 rows
		t.Errorf("table has %d lines, want 7", len(lines))
	}
}

func TestTableRaggedSeries(t *testing.T) {
	c := sampleChart()
	c.Series[1].Y = c.Series[1].Y[:3]
	out := c.Table()
	if !strings.Contains(out, "-") {
		t.Error("ragged series not padded with '-'")
	}
}

func TestCSV(t *testing.T) {
	out := sampleChart().CSV()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("CSV has %d lines, want 6", len(lines))
	}
	if lines[0] != "NSU,CA-TPA,FFD" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0.4,1,1") {
		t.Errorf("row 1 = %q", lines[1])
	}
}

func TestCSVEscaping(t *testing.T) {
	c := &Chart{
		XLabel: `x,with"comma`,
		X:      []float64{1},
		Series: []Series{{Label: "ok", Y: []float64{2}}},
	}
	out := c.CSV()
	if !strings.Contains(out, `"x,with""comma"`) {
		t.Errorf("escaping broken: %q", out)
	}
}

func TestPlot(t *testing.T) {
	out := sampleChart().Plot(10)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("plot missing series markers")
	}
	if !strings.Contains(out, "CA-TPA") {
		t.Error("plot missing legend")
	}
	// 10 grid rows + axis + labels + title + 2 legend lines.
	lines := strings.Count(out, "\n")
	if lines < 14 {
		t.Errorf("plot has %d lines", lines)
	}
}

func TestPlotDegenerate(t *testing.T) {
	empty := &Chart{}
	if out := empty.Plot(0); !strings.Contains(out, "empty") {
		t.Errorf("empty chart: %q", out)
	}
	flat := &Chart{
		X:      []float64{1, 2},
		Series: []Series{{Label: "flat", Y: []float64{3, 3}}},
	}
	if out := flat.Plot(6); out == "" {
		t.Error("flat chart empty output")
	}
	nan := &Chart{
		X:      []float64{1, 2},
		Series: []Series{{Label: "nan", Y: []float64{math.NaN(), math.Inf(1)}}},
	}
	if out := nan.Plot(6); out == "" {
		t.Error("nan chart empty output")
	}
}

func TestPlotHeightClamped(t *testing.T) {
	out := sampleChart().Plot(2)
	if strings.Count(out, "|") < 5 {
		t.Error("height not clamped up to 5")
	}
}

func TestAlignedTable(t *testing.T) {
	out := AlignedTable([][]string{
		{"scheme", "ratio"},
		{"CA-TPA", "0.91"},
		{"FFD", "0.85"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "scheme") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("separator = %q", lines[1])
	}
	if AlignedTable(nil) != "" {
		t.Error("nil rows should render empty")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("SortedKeys = %v", got)
	}
}
