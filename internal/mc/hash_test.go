package mc

import (
	"math"
	"math/rand"
	"testing"
)

func hashFixture(t *testing.T) *TaskSet {
	t.Helper()
	return NewTaskSet(
		MustTask(1, "a", 100, 10, 25),
		MustTask(2, "b", 50, 15),
		MustTask(3, "c", 200, 20, 20, 60),
		MustTask(4, "d", 50, 15), // duplicate parameters of task 2
	)
}

func TestTaskSetHashPermutationInvariant(t *testing.T) {
	ts := hashFixture(t)
	want := TaskSetHash(ts)

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		perm := ts.Clone()
		rng.Shuffle(len(perm.Tasks), func(i, j int) {
			perm.Tasks[i], perm.Tasks[j] = perm.Tasks[j], perm.Tasks[i]
		})
		if got := TaskSetHash(perm); got != want {
			t.Fatalf("trial %d: permuted hash %#x != %#x", trial, got, want)
		}
	}
}

func TestTaskSetHashIgnoresLabels(t *testing.T) {
	ts := hashFixture(t)
	relabeled := ts.Clone()
	for i := range relabeled.Tasks {
		relabeled.Tasks[i].ID = 100 + i
		relabeled.Tasks[i].Name = "renamed"
	}
	if TaskSetHash(relabeled) != TaskSetHash(ts) {
		t.Error("hash depends on task IDs or names")
	}
}

func TestTaskSetHashQuantization(t *testing.T) {
	ts := hashFixture(t)
	want := TaskSetHash(ts)

	// Sub-quantum representation noise hashes identically.
	wiggled := ts.Clone()
	wiggled.Tasks[0].Period += HashQuantum / 8
	wiggled.Tasks[1].WCET[0] -= HashQuantum / 8
	if TaskSetHash(wiggled) != want {
		t.Error("sub-quantum noise changed the hash")
	}

	// A change of several quanta is a different set.
	moved := ts.Clone()
	moved.Tasks[0].Period += 1e-6
	if TaskSetHash(moved) == want {
		t.Error("1e-6 period change did not change the hash")
	}
}

func TestTaskSetHashSensitivity(t *testing.T) {
	base := hashFixture(t)
	want := TaskSetHash(base)

	mutations := map[string]func(*TaskSet){
		"wcet":         func(ts *TaskSet) { ts.Tasks[0].WCET[1] += 1 },
		"period":       func(ts *TaskSet) { ts.Tasks[2].Period *= 2 },
		"crit":         func(ts *TaskSet) { ts.Tasks[1].Crit = 2; ts.Tasks[1].WCET = []float64{15, 30} },
		"dropped task": func(ts *TaskSet) { ts.Tasks = ts.Tasks[:len(ts.Tasks)-1] },
		"extra task":   func(ts *TaskSet) { ts.Tasks = append(ts.Tasks, MustTask(9, "", 75, 5)) },
	}
	for name, mutate := range mutations {
		mut := base.Clone()
		mutate(mut)
		if TaskSetHash(mut) == want {
			t.Errorf("%s mutation did not change the hash", name)
		}
	}
}

func TestTaskSetHashDuplicatesCount(t *testing.T) {
	// A multiset hash must distinguish one copy from two: the XOR
	// pitfall this implementation's sorted fold exists to avoid.
	one := NewTaskSet(MustTask(1, "", 50, 15))
	two := NewTaskSet(MustTask(1, "", 50, 15), MustTask(2, "", 50, 15))
	three := NewTaskSet(MustTask(1, "", 50, 15), MustTask(2, "", 50, 15), MustTask(3, "", 50, 15))
	if TaskSetHash(one) == TaskSetHash(two) || TaskSetHash(two) == TaskSetHash(three) {
		t.Error("duplicate multiplicity does not influence the hash")
	}
}

func TestTaskSetHashEmptyAndNil(t *testing.T) {
	if TaskSetHash(nil) != TaskSetHash(&TaskSet{}) {
		t.Error("nil and empty set hash differently")
	}
	if TaskSetHash(nil) == TaskSetHash(hashFixture(t)) {
		t.Error("empty hash collides with a populated set")
	}
}

func TestTaskSetHashTotalOnNonFinite(t *testing.T) {
	// Invalid sets never reach the cache, but the hash must still be
	// total; exercise the non-finite fallback directly.
	bad := &TaskSet{Tasks: []Task{{ID: 1, Period: math.Inf(1), Crit: 1, WCET: []float64{math.NaN()}}}}
	if TaskSetHash(bad) == TaskSetHash(&TaskSet{}) {
		t.Error("non-finite parameters collapse to the empty hash")
	}
}
