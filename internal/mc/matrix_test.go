package mc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUtilMatrixAddRemove(t *testing.T) {
	m := NewUtilMatrix(2)
	t1 := mkTask(1, 10, 1, 3)    // LO, u(1)=0.3
	t2 := mkTask(2, 20, 2, 4, 8) // HI, u(1)=0.2, u(2)=0.4
	m.Add(&t1)
	m.Add(&t2)
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	if !almost(m.At(1, 1), 0.3) {
		t.Errorf("U_1(1) = %v", m.At(1, 1))
	}
	if !almost(m.At(2, 1), 0.2) {
		t.Errorf("U_2(1) = %v", m.At(2, 1))
	}
	if !almost(m.At(2, 2), 0.4) {
		t.Errorf("U_2(2) = %v", m.At(2, 2))
	}
	if !almost(m.TotalAt(1), 0.5) {
		t.Errorf("U(1) = %v", m.TotalAt(1))
	}
	if !almost(m.TotalAt(2), 0.4) {
		t.Errorf("U(2) = %v", m.TotalAt(2))
	}
	if !almost(m.OwnLevelLoad(), 0.7) {
		t.Errorf("OwnLevelLoad = %v", m.OwnLevelLoad())
	}
	m.Remove(&t1)
	if m.Len() != 1 || !almost(m.At(1, 1), 0) {
		t.Errorf("after remove: Len=%d U_1(1)=%v", m.Len(), m.At(1, 1))
	}
}

func TestUtilMatrixMatchesTaskSet(t *testing.T) {
	ts := dualSet()
	m := MatrixOf(ts, 2)
	for j := 1; j <= 2; j++ {
		for k := 1; k <= 2; k++ {
			if !almost(m.At(j, k), ts.LevelUtil(j, k)) {
				t.Errorf("U_%d(%d): matrix %v != set %v", j, k, m.At(j, k), ts.LevelUtil(j, k))
			}
		}
	}
	for k := 1; k <= 2; k++ {
		if !almost(m.TotalAt(k), ts.TotalUtilAt(k)) {
			t.Errorf("U(%d): matrix %v != set %v", k, m.TotalAt(k), ts.TotalUtilAt(k))
		}
	}
}

func TestUtilMatrixCloneAndReset(t *testing.T) {
	m := NewUtilMatrix(3)
	tk := mkTask(1, 10, 2, 1, 2)
	m.Add(&tk)
	c := m.Clone()
	m.Reset()
	if m.Len() != 0 || !almost(m.At(2, 1), 0) {
		t.Error("Reset did not clear")
	}
	if c.Len() != 1 || !almost(c.At(2, 1), 0.1) {
		t.Error("Clone affected by Reset")
	}
}

func TestUtilMatrixPanics(t *testing.T) {
	m := NewUtilMatrix(2)
	mustPanic(t, "At out of range", func() { m.At(0, 1) })
	mustPanic(t, "At out of range high", func() { m.At(1, 3) })
	tk := mkTask(1, 10, 3, 1, 2, 3)
	mustPanic(t, "Add crit above K", func() { m.Add(&tk) })
	mustPanic(t, "NewUtilMatrix(0)", func() { NewUtilMatrix(0) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

// TestUtilMatrixIncrementalProperty: a random add/remove trace leaves
// the matrix identical to recomputing from the surviving tasks.
func TestUtilMatrixIncrementalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const K = 4
		m := NewUtilMatrix(K)
		var live []Task
		for op := 0; op < 60; op++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(live))
				m.Remove(&live[i])
				live = append(live[:i], live[i+1:]...)
				continue
			}
			crit := 1 + rng.Intn(K)
			p := 1 + rng.Float64()*100
			w := make([]float64, crit)
			c := rng.Float64() * p * 0.5
			if c <= 0 {
				c = 0.01
			}
			for k := range w {
				w[k] = c
				c *= 1.3
			}
			tk := Task{ID: op + 1, Period: p, Crit: crit, WCET: w}
			m.Add(&tk)
			live = append(live, tk)
		}
		ref := NewUtilMatrix(K)
		for i := range live {
			ref.Add(&live[i])
		}
		if m.Len() != ref.Len() {
			return false
		}
		for j := 1; j <= K; j++ {
			for k := 1; k <= K; k++ {
				if math.Abs(m.At(j, k)-ref.At(j, k)) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilMatrixString(t *testing.T) {
	m := NewUtilMatrix(2)
	tk := mkTask(1, 10, 2, 1, 2)
	m.Add(&tk)
	if s := m.String(); s == "" {
		t.Error("empty String()")
	}
}
