package mc

import (
	"math"
	"sort"
)

// HashQuantum is the grid the canonical task-set hash quantizes every
// floating-point parameter to before hashing. Two parameter values
// closer than half a quantum hash identically, mirroring the Eps
// tolerance of the utilization algebra: sets that the analysis cannot
// tell apart should not miss a verdict cache on representation noise.
const HashQuantum = 1e-9

// TaskSetHash returns the canonical 64-bit hash of a task set: the
// identity key of the admission daemon's verdict cache and of the
// future sharded-sweep point identity.
//
// The hash is a function of the multiset of (Crit, Period, WCET
// vector) triples only:
//
//   - permutation-invariant — tasks are folded in a canonical sorted
//     order, so reordering Tasks never changes the hash;
//   - quantized — every float is snapped to the HashQuantum grid
//     first, so sub-tolerance representation noise (a 1e-12 wiggle
//     from a different parser or platform) hashes identically;
//   - label-blind — Task.ID and Task.Name do not contribute, since
//     neither influences any analysis verdict.
//
// Collisions are possible in principle (it is a 64-bit digest); cache
// consumers that cannot tolerate them must verify the full set.
func TaskSetHash(ts *TaskSet) uint64 {
	if ts == nil || len(ts.Tasks) == 0 {
		return fnvOffset
	}
	// Hash each task independently, then fold the per-task digests in
	// sorted order: sorting 8-byte digests is cheaper and simpler than
	// defining a total order on variable-length WCET vectors, and any
	// canonical order makes the fold permutation-invariant.
	digests := make([]uint64, len(ts.Tasks))
	for i := range ts.Tasks {
		digests[i] = taskHash(&ts.Tasks[i])
	}
	sort.Slice(digests, func(i, j int) bool { return digests[i] < digests[j] })
	h := uint64(fnvOffset)
	for _, d := range digests {
		h = fnvMix(h, d)
	}
	return fnvMix(h, uint64(len(ts.Tasks)))
}

// taskHash digests one task's analysis-relevant parameters.
func taskHash(t *Task) uint64 {
	h := uint64(fnvOffset)
	h = fnvMix(h, uint64(t.Crit))
	h = fnvMix(h, quantize(t.Period))
	for _, c := range t.WCET {
		h = fnvMix(h, quantize(c))
	}
	return h
}

// quantize snaps v to the HashQuantum grid and returns a stable bit
// pattern for it. Values whose quotient overflows the grid (or is not
// finite) fall back to the raw IEEE-754 bits — such parameters never
// validate anyway, but the hash must still be total.
func quantize(v float64) uint64 {
	q := math.Round(v / HashQuantum)
	if math.IsNaN(q) || q > math.MaxInt64 || q < math.MinInt64 {
		return math.Float64bits(v)
	}
	return uint64(int64(q))
}

// FNV-1a, 64 bit, folded word-wise: each 64-bit word is mixed in as
// its eight little-endian bytes.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h, w uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= w & 0xff
		h *= fnvPrime
		w >>= 8
	}
	return h
}
