package mc

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Eps is the tolerance used for all floating-point comparisons in the
// utilization algebra. Utilizations are O(1) quantities, so an absolute
// tolerance is appropriate.
const Eps = 1e-9

// Task is a periodic implicit-deadline mixed-criticality task
// tau_i = (C_i, p_i, l_i) in the Vestal model.
//
// WCET holds the worst-case execution times indexed by criticality
// level minus one: WCET[k-1] = c_i(k) for k = 1..Crit. The vector must
// be non-decreasing. Period is both the inter-arrival time and the
// relative deadline (implicit deadlines).
type Task struct {
	// ID is the task index used for tie-breaking in the ordering
	// operator; smaller IDs win ties. IDs should be unique within a
	// task set.
	ID int `json:"id"`

	// Name is an optional human-readable label.
	Name string `json:"name,omitempty"`

	// WCET[k-1] is the level-k worst-case execution time c_i(k).
	WCET []float64 `json:"wcet"`

	// Period is the task period and relative deadline p_i.
	Period float64 `json:"period"`

	// Crit is the task criticality level l_i, 1-based. It must equal
	// len(WCET).
	Crit int `json:"crit"`
}

// C returns the level-k WCET c_i(k) for k = 1..Crit. For k > Crit it
// returns the task's own-level WCET c_i(l_i): by convention a task is
// never required to execute beyond its own-criticality budget, and
// levels above l_i are not reached by the task (it is dropped), so the
// saturated value is only used by bookkeeping code that iterates over
// all K levels.
//
//mc:allocfree called per probe inside the allocator's inner loop
func (t *Task) C(k int) float64 {
	if k < 1 {
		panic(fmt.Sprintf("mc: level %d out of range for task %d", k, t.ID))
	}
	if k > t.Crit {
		k = t.Crit
	}
	return t.WCET[k-1]
}

// Util returns the level-k utilization u_i(k) = c_i(k)/p_i. Like C, it
// saturates at the task's own criticality level.
//
//mc:allocfree called per probe inside the allocator's inner loop
func (t *Task) Util(k int) float64 {
	return t.C(k) / t.Period
}

// UtilRow fills dst[k-1] = u_i(k) for k = 1..kmax, saturating at the
// task's own criticality level like Util. dst must have length at
// least kmax. The values are bitwise those of Util, so matrices built
// from precomputed rows (UtilMatrix.AddRow) match matrices built from
// Add exactly.
//
//mc:allocfree fills caller-owned storage
func (t *Task) UtilRow(kmax int, dst []float64) {
	for k := 1; k <= kmax; k++ {
		dst[k-1] = t.Util(k)
	}
}

// MaxUtil returns the task's utilization at its own criticality level,
// u_i(l_i) — the "maximum utilization" used by the classical FFD, BFD
// and WFD heuristics.
//
//mc:allocfree called per comparison in the ordering sorts
func (t *Task) MaxUtil() float64 {
	return t.Util(t.Crit)
}

// Validate checks the structural invariants of the task: positive
// period, Crit >= 1, len(WCET) == Crit, strictly positive WCETs, and a
// non-decreasing WCET vector.
func (t *Task) Validate() error {
	switch {
	case t.Period <= 0 || math.IsNaN(t.Period) || math.IsInf(t.Period, 0):
		return fmt.Errorf("task %d: non-positive period %v", t.ID, t.Period)
	case t.Crit < 1:
		return fmt.Errorf("task %d: criticality %d < 1", t.ID, t.Crit)
	case len(t.WCET) != t.Crit:
		return fmt.Errorf("task %d: %d WCETs for criticality %d", t.ID, len(t.WCET), t.Crit)
	}
	prev := 0.0
	for k, c := range t.WCET {
		if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("task %d: non-positive WCET c(%d)=%v", t.ID, k+1, c)
		}
		if c+Eps < prev {
			return fmt.Errorf("task %d: WCET vector decreases at level %d (%v < %v)", t.ID, k+1, c, prev)
		}
		prev = c
	}
	if t.Util(t.Crit) > 1+Eps {
		return fmt.Errorf("task %d: own-level utilization %.4f > 1", t.ID, t.Util(t.Crit))
	}
	return nil
}

// Clone returns a deep copy of the task.
func (t *Task) Clone() Task {
	c := *t
	c.WCET = append([]float64(nil), t.WCET...)
	return c
}

// Label returns the task's name if set, otherwise "tau<ID>".
func (t *Task) Label() string {
	if t.Name != "" {
		return t.Name
	}
	return fmt.Sprintf("tau%d", t.ID)
}

// String renders the task in the compact form
// "tau3{C=<2 4.5>, p=10, l=2}".
func (t *Task) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s{C=<", t.Label())
	for k, c := range t.WCET {
		if k > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%g", c)
	}
	fmt.Fprintf(&b, ">, p=%g, l=%d}", t.Period, t.Crit)
	return b.String()
}

// ErrEmptyTaskSet is returned by operations that require at least one task.
var ErrEmptyTaskSet = errors.New("mc: empty task set")
