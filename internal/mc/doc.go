// Package mc implements the mixed-criticality (MC) task model used
// throughout the repository: Vestal-style periodic implicit-deadline
// tasks with per-criticality-level worst-case execution times, the
// utilization algebra of Han et al. (ICPP 2016), Eqs. (1)-(3), the
// utilization-contribution metric of Eqs. (12)-(13), and the total
// ordering operator used by CA-TPA to sort tasks before allocation.
//
// Criticality levels are 1-based: level 1 is the lowest criticality,
// level K the highest. A task of criticality L carries L worst-case
// execution times c(1) <= c(2) <= ... <= c(L); its jobs are expected to
// signal completion within c(k) when the system operates at level k,
// and a run past c(k) (k < L) triggers a mode switch to level k+1.
package mc
