package mc

// This file is the repository's single sanctioned home for exact
// floating-point equality: the tolerant comparison helpers below are
// what the rest of the codebase uses instead of == / !=. It is
// allowlisted by the mclint/floateq check; everywhere else a float
// equality comparison is a lint finding.

import "math"

// ApproxEq reports whether a and b are equal within the package
// tolerance Eps. Exactly equal values (including equal infinities)
// compare true even where a-b is NaN.
func ApproxEq(a, b float64) bool {
	return a == b || math.Abs(a-b) <= Eps
}

// ApproxEqTol is ApproxEq with a caller-chosen absolute tolerance.
func ApproxEqTol(a, b, tol float64) bool {
	return a == b || math.Abs(a-b) <= tol
}

// ApproxZero reports whether a is within Eps of zero.
func ApproxZero(a float64) bool {
	return math.Abs(a) <= Eps
}

// SameFloat reports exact bit-level-meaningful equality: true when a
// and b are numerically equal or both NaN. It exists for code (tests,
// determinism checks) that deliberately needs exact comparison without
// tripping the floateq lint.
func SameFloat(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}
