package mc

import (
	"math"
	"testing"
)

func TestNewTaskValid(t *testing.T) {
	tk, err := NewTask(3, "ctl", 50, 8, 20)
	if err != nil {
		t.Fatalf("NewTask: %v", err)
	}
	if tk.ID != 3 || tk.Name != "ctl" || tk.Period != 50 || tk.Crit != 2 {
		t.Fatalf("unexpected task %+v", tk)
	}
	if len(tk.WCET) != 2 || tk.WCET[0] != 8 || tk.WCET[1] != 20 {
		t.Fatalf("unexpected WCET %v", tk.WCET)
	}
}

func TestNewTaskCopiesWCET(t *testing.T) {
	w := []float64{1, 2}
	tk, err := NewTask(1, "", 10, w...)
	if err != nil {
		t.Fatal(err)
	}
	w[0] = 99
	if tk.WCET[0] != 1 {
		t.Fatalf("WCET aliases caller slice: %v", tk.WCET)
	}
}

func TestNewTaskRejectsInvalid(t *testing.T) {
	cases := []struct {
		name   string
		period float64
		wcet   []float64
	}{
		{"no wcet", 10, nil},
		{"non-positive period", 0, []float64{1}},
		{"nan period", math.NaN(), []float64{1}},
		{"decreasing wcet", 10, []float64{3, 1}},
		{"non-positive wcet", 10, []float64{0, 1}},
		{"overutilized", 10, []float64{5, 20}},
	}
	for _, c := range cases {
		if _, err := NewTask(1, "x", c.period, c.wcet...); err == nil {
			t.Errorf("%s: NewTask accepted invalid input", c.name)
		}
	}
}

func TestMustTaskPanicsWithPrefix(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustTask did not panic")
		}
		s, ok := r.(string)
		if !ok || len(s) < 4 || s[:4] != "mc: " {
			t.Fatalf("panic message %q lacks \"mc: \" prefix", r)
		}
	}()
	MustTask(1, "bad", -1, 1)
}

func TestNewTaskSetCap(t *testing.T) {
	ts := NewTaskSetCap(8)
	if ts.Len() != 0 {
		t.Fatalf("non-empty set: %d", ts.Len())
	}
	if cap(ts.Tasks) != 8 {
		t.Fatalf("capacity %d, want 8", cap(ts.Tasks))
	}
	ts.Tasks = append(ts.Tasks, MustTask(1, "", 10, 2))
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApproxHelpers(t *testing.T) {
	if !ApproxEq(1, 1+Eps/2) || ApproxEq(1, 1+1e-3) {
		t.Error("ApproxEq tolerance wrong")
	}
	if !ApproxEq(math.Inf(1), math.Inf(1)) {
		t.Error("ApproxEq must accept equal infinities")
	}
	if !ApproxEqTol(1, 1.5, 0.6) || ApproxEqTol(1, 1.5, 0.4) {
		t.Error("ApproxEqTol tolerance wrong")
	}
	if !ApproxZero(Eps/2) || ApproxZero(1e-3) {
		t.Error("ApproxZero tolerance wrong")
	}
	if !SameFloat(math.NaN(), math.NaN()) || SameFloat(1, 2) || !SameFloat(2, 2) {
		t.Error("SameFloat wrong")
	}
}
