package mc

import (
	"encoding/json"
	"fmt"
	"sort"
)

// TaskSet is an ordered collection of MC tasks (the set Psi of the
// paper). The zero value is an empty, usable set.
type TaskSet struct {
	Tasks []Task `json:"tasks"`
}

// NewTaskSet builds a task set from tasks, assigning sequential IDs
// starting at 1 to any task whose ID is zero.
func NewTaskSet(tasks ...Task) *TaskSet {
	ts := &TaskSet{Tasks: append([]Task(nil), tasks...)}
	for i := range ts.Tasks {
		if ts.Tasks[i].ID == 0 {
			ts.Tasks[i].ID = i + 1
		}
	}
	return ts
}

// Len returns the number of tasks N.
//
//mc:allocfree trivial accessor
func (ts *TaskSet) Len() int { return len(ts.Tasks) }

// MaxCrit returns the highest criticality level K present in the set
// (0 for an empty set). The paper calls this the system criticality
// level; tasks need not populate every level below K.
//
//mc:allocfree scans the task slice only
func (ts *TaskSet) MaxCrit() int {
	k := 0
	for i := range ts.Tasks {
		if ts.Tasks[i].Crit > k {
			k = ts.Tasks[i].Crit
		}
	}
	return k
}

// Validate checks every task and the uniqueness of IDs.
func (ts *TaskSet) Validate() error {
	seen := make(map[int]bool, len(ts.Tasks))
	for i := range ts.Tasks {
		t := &ts.Tasks[i]
		if err := t.Validate(); err != nil {
			return err
		}
		if seen[t.ID] {
			return fmt.Errorf("mc: duplicate task ID %d", t.ID)
		}
		seen[t.ID] = true
	}
	return nil
}

// LevelUtil returns U_j(k), the level-k utilization of the tasks whose
// own criticality is exactly j (Eq. 1). Only tasks with l_i = j
// contribute, and k must not exceed j to be meaningful; the method
// saturates per Task.Util.
//
//mc:allocfree scans the task slice only
func (ts *TaskSet) LevelUtil(j, k int) float64 {
	var u float64
	for i := range ts.Tasks {
		if ts.Tasks[i].Crit == j {
			u += ts.Tasks[i].Util(k)
		}
	}
	return u
}

// TotalUtilAt returns U(k), the total level-k utilization of all tasks
// with criticality level k or higher (Eq. 2).
//
//mc:allocfree scans the task slice only
func (ts *TaskSet) TotalUtilAt(k int) float64 {
	var u float64
	for i := range ts.Tasks {
		if ts.Tasks[i].Crit >= k {
			u += ts.Tasks[i].Util(k)
		}
	}
	return u
}

// RawUtil returns the aggregate level-1 utilization of all tasks; the
// paper's normalized system utilization is NSU = RawUtil/M.
func (ts *TaskSet) RawUtil() float64 {
	var u float64
	for i := range ts.Tasks {
		u += ts.Tasks[i].Util(1)
	}
	return u
}

// MaxLoad returns the sum over tasks of their own-level utilizations,
// i.e. the left-hand side of the pessimistic per-core condition (Eq. 4)
// applied to the whole set.
func (ts *TaskSet) MaxLoad() float64 {
	var u float64
	for i := range ts.Tasks {
		u += ts.Tasks[i].MaxUtil()
	}
	return u
}

// ByLevel partitions task indices by their own criticality level;
// result[j] holds the indices of L_j for j = 1..MaxCrit (index 0 is
// unused).
func (ts *TaskSet) ByLevel() [][]int {
	k := ts.MaxCrit()
	out := make([][]int, k+1)
	for i := range ts.Tasks {
		l := ts.Tasks[i].Crit
		out[l] = append(out[l], i)
	}
	return out
}

// Clone returns a deep copy of the task set.
func (ts *TaskSet) Clone() *TaskSet {
	out := &TaskSet{Tasks: make([]Task, len(ts.Tasks))}
	for i := range ts.Tasks {
		out.Tasks[i] = ts.Tasks[i].Clone()
	}
	return out
}

// SortStable sorts the tasks in place with the given less function,
// preserving the relative order of equal elements.
func (ts *TaskSet) SortStable(less func(a, b *Task) bool) {
	sort.SliceStable(ts.Tasks, func(i, j int) bool {
		return less(&ts.Tasks[i], &ts.Tasks[j])
	})
}

// MarshalJSON implements json.Marshaler.
func (ts *TaskSet) MarshalJSON() ([]byte, error) {
	type alias TaskSet
	return json.Marshal((*alias)(ts))
}

// UnmarshalJSON implements json.Unmarshaler and validates the decoded set.
func (ts *TaskSet) UnmarshalJSON(data []byte) error {
	type alias TaskSet
	if err := json.Unmarshal(data, (*alias)(ts)); err != nil {
		return err
	}
	return ts.Validate()
}

// String summarizes the set as "TaskSet{N=5, K=2, U(1)=1.23}".
func (ts *TaskSet) String() string {
	return fmt.Sprintf("TaskSet{N=%d, K=%d, U(1)=%.3f}", ts.Len(), ts.MaxCrit(), ts.RawUtil())
}
