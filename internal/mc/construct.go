package mc

import "fmt"

// NewTask constructs a validated task. The criticality level is
// inferred from the length of the WCET vector (Validate requires
// len(WCET) == Crit), so a task cannot be built with a mismatched
// level. The WCET slice is copied; id may be zero when the task will
// be handed to NewTaskSet, which assigns sequential IDs.
//
// NewTask (or MustTask) is the only sanctioned way to build a Task
// outside this package: constructing raw Task literals elsewhere
// bypasses the WCET-monotonicity and utilization invariants and is
// rejected by the mclint/rawtask check.
func NewTask(id int, name string, period float64, wcet ...float64) (Task, error) {
	t := Task{
		ID:     id,
		Name:   name,
		Period: period,
		Crit:   len(wcet),
		WCET:   append([]float64(nil), wcet...),
	}
	if err := t.Validate(); err != nil {
		return Task{}, err
	}
	return t, nil
}

// MustTask is NewTask panicking on invalid parameters. It is intended
// for hand-built workloads and generators whose parameters are valid
// by construction.
func MustTask(id int, name string, period float64, wcet ...float64) Task {
	t, err := NewTask(id, name, period, wcet...)
	if err != nil {
		panic(fmt.Sprintf("mc: MustTask: %v", err))
	}
	return t
}

// NewTaskSetCap returns an empty task set whose backing slice has the
// given capacity, for builders that append tasks one by one.
func NewTaskSetCap(capacity int) *TaskSet {
	return &TaskSet{Tasks: make([]Task, 0, capacity)}
}

// NewTaskSlab is NewTask without the defensive WCET copy: the returned
// task aliases wcet directly. It exists for slab-backed generators that
// carve per-task WCET vectors out of one reusable arena; the caller
// must not mutate wcet for the lifetime of the task. Validation is
// identical to NewTask.
func NewTaskSlab(id int, name string, period float64, wcet []float64) (Task, error) {
	t := Task{
		ID:     id,
		Name:   name,
		Period: period,
		Crit:   len(wcet),
		WCET:   wcet,
	}
	if err := t.Validate(); err != nil {
		return Task{}, err
	}
	return t, nil
}

// MustTaskSlab is NewTaskSlab panicking on invalid parameters.
func MustTaskSlab(id int, name string, period float64, wcet []float64) Task {
	t, err := NewTaskSlab(id, name, period, wcet)
	if err != nil {
		panic(fmt.Sprintf("mc: MustTaskSlab: %v", err))
	}
	return t
}

// TaskSlabTrusted is NewTaskSlab without the per-task Validate pass,
// for generators whose outputs are valid by construction (positive
// period, positive non-decreasing WCETs capped at the period). The
// validation loop is measurable in generation-bound sweeps — it reads
// every WCET and divides once per task — and proves nothing for a
// generator that enforces the invariants structurally. Callers outside
// such generators must use NewTaskSlab or MustTaskSlab; an invalid
// task built here fails later analysis in undefined ways.
//
//mc:allocfree a struct literal over the caller's slab
func TaskSlabTrusted(id int, period float64, wcet []float64) Task {
	return Task{
		ID:     id,
		Period: period,
		Crit:   len(wcet),
		WCET:   wcet,
	}
}
