package mc

import (
	"math"
	"strings"
	"testing"
)

func mkTask(id int, period float64, crit int, wcet ...float64) Task {
	return Task{ID: id, Period: period, Crit: crit, WCET: wcet}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestTaskUtil(t *testing.T) {
	tk := mkTask(1, 10, 2, 2, 5)
	if !almost(tk.Util(1), 0.2) {
		t.Errorf("u(1) = %v, want 0.2", tk.Util(1))
	}
	if !almost(tk.Util(2), 0.5) {
		t.Errorf("u(2) = %v, want 0.5", tk.Util(2))
	}
	if !almost(tk.MaxUtil(), 0.5) {
		t.Errorf("MaxUtil = %v, want 0.5", tk.MaxUtil())
	}
}

func TestTaskUtilSaturates(t *testing.T) {
	tk := mkTask(1, 10, 1, 3)
	// Levels above the task's own criticality saturate at c(l_i).
	for k := 1; k <= 4; k++ {
		if !almost(tk.Util(k), 0.3) {
			t.Errorf("u(%d) = %v, want 0.3", k, tk.Util(k))
		}
	}
}

func TestTaskCLevelZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("C(0) did not panic")
		}
	}()
	tk := mkTask(1, 10, 1, 3)
	tk.C(0)
}

func TestTaskValidate(t *testing.T) {
	cases := []struct {
		name string
		task Task
		ok   bool
	}{
		{"valid dual", mkTask(1, 10, 2, 2, 4), true},
		{"valid single", mkTask(1, 5, 1, 1), true},
		{"equal consecutive WCETs", mkTask(1, 10, 2, 3, 3), true},
		{"zero period", mkTask(1, 0, 1, 1), false},
		{"negative period", mkTask(1, -3, 1, 1), false},
		{"nan period", mkTask(1, math.NaN(), 1, 1), false},
		{"inf period", mkTask(1, math.Inf(1), 1, 1), false},
		{"crit zero", mkTask(1, 10, 0), false},
		{"wcet count mismatch", mkTask(1, 10, 2, 1), false},
		{"zero wcet", mkTask(1, 10, 1, 0), false},
		{"negative wcet", mkTask(1, 10, 2, 1, -1), false},
		{"decreasing wcet", mkTask(1, 10, 2, 4, 2), false},
		{"own util above one", mkTask(1, 10, 2, 2, 15), false},
		{"own util exactly one", mkTask(1, 10, 2, 2, 10), true},
	}
	for _, c := range cases {
		err := c.task.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected error, got nil", c.name)
		}
	}
}

func TestTaskClone(t *testing.T) {
	a := mkTask(1, 10, 2, 2, 4)
	b := a.Clone()
	b.WCET[0] = 99
	if a.WCET[0] != 2 {
		t.Fatal("Clone shares WCET storage")
	}
}

func TestTaskLabelAndString(t *testing.T) {
	a := mkTask(3, 10, 2, 2, 4.5)
	if a.Label() != "tau3" {
		t.Errorf("Label = %q", a.Label())
	}
	a.Name = "flight_ctl"
	if a.Label() != "flight_ctl" {
		t.Errorf("Label = %q", a.Label())
	}
	s := a.String()
	for _, want := range []string{"flight_ctl", "2 4.5", "p=10", "l=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
