package mc

// Contribution holds the utilization contributions of one task with
// respect to a whole task set (Eqs. 12-13): PerLevel[k-1] = C_i(k) =
// u_i(k)/U(k) for k = 1..l_i, and Max = C_i = max_k C_i(k).
type Contribution struct {
	PerLevel []float64
	Max      float64
}

// Contributions computes the utilization contribution of every task in
// ts with respect to the system-wide totals U(k) of ts itself
// (Eq. 12). Levels whose total utilization U(k) is zero cannot occur
// for k <= l_i of any task (the task itself contributes to U(k)), so
// no division by zero arises for valid sets.
//
// The returned slice is indexed like ts.Tasks.
func Contributions(ts *TaskSet) []Contribution {
	k := ts.MaxCrit()
	totals := make([]float64, k+1) // totals[j] = U(j), 1-based
	for j := 1; j <= k; j++ {
		totals[j] = ts.TotalUtilAt(j)
	}
	out := make([]Contribution, len(ts.Tasks))
	for i := range ts.Tasks {
		t := &ts.Tasks[i]
		c := Contribution{PerLevel: make([]float64, t.Crit)}
		for lev := 1; lev <= t.Crit; lev++ {
			v := 0.0
			if totals[lev] > 0 {
				v = t.Util(lev) / totals[lev]
			}
			c.PerLevel[lev-1] = v
			if v > c.Max {
				c.Max = v
			}
		}
		out[i] = c
	}
	return out
}

// Precedes reports whether task a strictly precedes task b in the
// CA-TPA ordering operator (the relation written a ≻ b in the paper):
//
//  1. larger utilization contribution first;
//  2. ties broken in favor of the higher criticality level;
//  3. remaining ties broken in favor of the smaller task ID.
//
// ca and cb are the respective Max contributions. The relation is a
// strict total order for tasks with distinct IDs.
func Precedes(a *Task, ca float64, b *Task, cb float64) bool {
	if diff := ca - cb; diff > Eps || diff < -Eps {
		return diff > 0
	}
	if a.Crit != b.Crit {
		return a.Crit > b.Crit
	}
	return a.ID < b.ID
}

// SortByContribution returns the indices of ts.Tasks sorted by
// decreasing ordering priority (the allocation order used by CA-TPA,
// Section III-A). ts itself is not modified.
func SortByContribution(ts *TaskSet) []int {
	contrib := Contributions(ts)
	idx := make([]int, len(ts.Tasks))
	for i := range idx {
		idx[i] = i
	}
	// Insertion-style comparison via sort with the strict relation.
	sortIdx(idx, func(i, j int) bool {
		return Precedes(&ts.Tasks[i], contrib[i].Max, &ts.Tasks[j], contrib[j].Max)
	})
	return idx
}

// SortByMaxUtil returns the indices of ts.Tasks sorted by decreasing
// own-level utilization u_i(l_i) — the classical "decreasing" order
// used by FFD/BFD/WFD. Ties are broken by higher criticality, then by
// smaller ID, mirroring the CA-TPA tie rules so that comparisons
// between heuristics differ only in the primary key.
func SortByMaxUtil(ts *TaskSet) []int {
	idx := make([]int, len(ts.Tasks))
	for i := range idx {
		idx[i] = i
	}
	sortIdx(idx, func(i, j int) bool {
		a, b := &ts.Tasks[i], &ts.Tasks[j]
		if diff := a.MaxUtil() - b.MaxUtil(); diff > Eps || diff < -Eps {
			return diff > 0
		}
		if a.Crit != b.Crit {
			return a.Crit > b.Crit
		}
		return a.ID < b.ID
	})
	return idx
}

// sortIdx sorts idx with the provided less relation over element
// values. A tiny wrapper so the call sites read naturally.
func sortIdx(idx []int, less func(i, j int) bool) {
	// sort.Slice on the index slice, translating positions to values.
	quicksortIdx(idx, less)
}

// quicksortIdx is a simple deterministic in-place sort (median-of-three
// quicksort with insertion sort for small runs). It exists to keep the
// hot partitioning path free of interface conversions; the relation
// must be a strict weak order.
func quicksortIdx(idx []int, less func(a, b int) bool) {
	for len(idx) > 12 {
		// Median of three on values at the ends and middle.
		m := len(idx) / 2
		if less(idx[m], idx[0]) {
			idx[m], idx[0] = idx[0], idx[m]
		}
		if less(idx[len(idx)-1], idx[0]) {
			idx[len(idx)-1], idx[0] = idx[0], idx[len(idx)-1]
		}
		if less(idx[len(idx)-1], idx[m]) {
			idx[len(idx)-1], idx[m] = idx[m], idx[len(idx)-1]
		}
		pivot := idx[m]
		i, j := 0, len(idx)-1
		for i <= j {
			for less(idx[i], pivot) {
				i++
			}
			for less(pivot, idx[j]) {
				j--
			}
			if i <= j {
				idx[i], idx[j] = idx[j], idx[i]
				i++
				j--
			}
		}
		// Recurse into the smaller half, loop on the larger.
		if j+1 < len(idx)-i {
			quicksortIdx(idx[:j+1], less)
			idx = idx[i:]
		} else {
			quicksortIdx(idx[i:], less)
			idx = idx[:j+1]
		}
	}
	// Insertion sort for the remainder.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && less(idx[j], idx[j-1]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}
