package mc

// Contribution holds the utilization contributions of one task with
// respect to a whole task set (Eqs. 12-13): PerLevel[k-1] = C_i(k) =
// u_i(k)/U(k) for k = 1..l_i, and Max = C_i = max_k C_i(k).
type Contribution struct {
	PerLevel []float64
	Max      float64
}

// Contributions computes the utilization contribution of every task in
// ts with respect to the system-wide totals U(k) of ts itself
// (Eq. 12). Levels whose total utilization U(k) is zero cannot occur
// for k <= l_i of any task (the task itself contributes to U(k)), so
// no division by zero arises for valid sets.
//
// The returned slice is indexed like ts.Tasks.
func Contributions(ts *TaskSet) []Contribution {
	k := ts.MaxCrit()
	totals := make([]float64, k+1) // totals[j] = U(j), 1-based
	for j := 1; j <= k; j++ {
		totals[j] = ts.TotalUtilAt(j)
	}
	out := make([]Contribution, len(ts.Tasks))
	for i := range ts.Tasks {
		t := &ts.Tasks[i]
		c := Contribution{PerLevel: make([]float64, t.Crit)}
		for lev := 1; lev <= t.Crit; lev++ {
			v := 0.0
			if totals[lev] > 0 {
				v = t.Util(lev) / totals[lev]
			}
			c.PerLevel[lev-1] = v
			if v > c.Max {
				c.Max = v
			}
		}
		out[i] = c
	}
	return out
}

// Precedes reports whether task a strictly precedes task b in the
// CA-TPA ordering operator (the relation written a ≻ b in the paper):
//
//  1. larger utilization contribution first;
//  2. ties broken in favor of the higher criticality level;
//  3. remaining ties broken in favor of the smaller task ID.
//
// ca and cb are the respective Max contributions. The relation is a
// strict total order for tasks with distinct IDs.
//
//mc:allocfree the comparator of every ordering sort
func Precedes(a *Task, ca float64, b *Task, cb float64) bool {
	if diff := ca - cb; diff > Eps || diff < -Eps {
		return diff > 0
	}
	if a.Crit != b.Crit {
		return a.Crit > b.Crit
	}
	return a.ID < b.ID
}

// MaxContributionsInto fills key[i] with task i's maximum utilization
// contribution C_i (Eq. 12) without allocating per-task slices. key is
// reused when its capacity suffices; the (possibly re-grown) slice is
// returned. The values are bitwise those of Contributions().Max.
//
//mc:allocfree totals live in a stack array up to K=16, keys in caller scratch
func MaxContributionsInto(ts *TaskSet, key []float64) []float64 {
	k := ts.MaxCrit()
	var totalsArr [16]float64
	totals := totalsArr[:]
	if cap(totals) < k+1 {
		totals = make([]float64, k+1)
	}
	for j := 1; j <= k; j++ {
		totals[j] = 0
	}
	// One task-major pass over the set instead of K TotalUtilAt scans.
	// For each level j the additions still run in task-index order, so
	// every totals[j] is bitwise TotalUtilAt(j). Levels at most Crit
	// never saturate, so WCET[lev-1]/Period is exactly Util(lev).
	for i := range ts.Tasks {
		t := &ts.Tasks[i]
		p := t.Period
		for lev := 1; lev <= t.Crit; lev++ {
			totals[lev] += t.WCET[lev-1] / p
		}
	}
	key = resizeFloats(key, len(ts.Tasks))
	for i := range ts.Tasks {
		t := &ts.Tasks[i]
		maxC := 0.0
		for lev := 1; lev <= t.Crit; lev++ {
			v := 0.0
			if totals[lev] > 0 {
				v = t.WCET[lev-1] / t.Period / totals[lev]
			}
			if v > maxC {
				maxC = v
			}
		}
		key[i] = maxC
	}
	return key
}

// MaxUtilsInto fills key[i] with task i's own-level utilization
// u_i(l_i), the primary key of the classical decreasing orders. key is
// reused when its capacity suffices.
//
//mc:allocfree fills caller scratch
func MaxUtilsInto(ts *TaskSet, key []float64) []float64 {
	key = resizeFloats(key, len(ts.Tasks))
	for i := range ts.Tasks {
		// WCET[Crit-1]/Period is exactly MaxUtil() without the C()
		// saturation branch.
		t := &ts.Tasks[i]
		key[i] = t.WCET[t.Crit-1] / t.Period
	}
	return key
}

// sortIndexByKey fills idx with 0..N-1 sorted by decreasing key, ties
// broken by higher criticality and then smaller ID — the shared tie
// rules of every ordering in the paper. idx is reused when its
// capacity suffices. key (len(ts.Tasks) entries, key[i] the key of
// task i) is permuted alongside idx, so on return key[r] is the key of
// task idx[r]: keeping the arrays parallel makes the hot comparison a
// single position-aligned load per side instead of an indirection
// through idx.
//
//mc:allocfree sorts caller scratch in place
func sortIndexByKey(ts *TaskSet, idx []int, key []float64) []int {
	n := len(ts.Tasks)
	if cap(idx) < n {
		idx = make([]int, n)
	}
	idx = idx[:n]
	for i := range idx {
		idx[i] = i
	}
	quicksortTaskIdx(idx, key, ts)
	return idx
}

// ordLess compares two order elements — explicit (task index, key)
// pairs of the parallel arrays — bitwise the Precedes relation: the
// common case (keys apart by more than Eps) never touches the task
// structs; ties fall through to the criticality and ID rules.
//
//mc:allocfree three comparisons
func ordLess(ts *TaskSet, ai int, ak float64, bi int, bk float64) bool {
	if diff := ak - bk; diff > Eps || diff < -Eps {
		return diff > 0
	}
	a, b := &ts.Tasks[ai], &ts.Tasks[bi]
	if a.Crit != b.Crit {
		return a.Crit > b.Crit
	}
	return a.ID < b.ID
}

// SortByContributionInto is SortByContribution with caller-provided
// scratch: idx receives the order; key carries the max contributions
// through the sort and comes back permuted into that order (key[r] is
// the contribution of task idx[r]). Both are reused when their
// capacity suffices, making the call allocation-free at steady state.
// It returns the order slice.
//
//mc:allocfree the per-point ordering step of every sweep
func SortByContributionInto(ts *TaskSet, idx []int, key []float64) ([]int, []float64) {
	key = MaxContributionsInto(ts, key)
	return sortIndexByKey(ts, idx, key), key
}

// SortByMaxUtilInto is SortByMaxUtil with caller-provided scratch,
// mirroring SortByContributionInto.
//
//mc:allocfree the per-point ordering step of every sweep
func SortByMaxUtilInto(ts *TaskSet, idx []int, key []float64) ([]int, []float64) {
	key = MaxUtilsInto(ts, key)
	return sortIndexByKey(ts, idx, key), key
}

// SortByContribution returns the indices of ts.Tasks sorted by
// decreasing ordering priority (the allocation order used by CA-TPA,
// Section III-A). ts itself is not modified.
func SortByContribution(ts *TaskSet) []int {
	idx, _ := SortByContributionInto(ts, nil, nil)
	return idx
}

// SortByMaxUtil returns the indices of ts.Tasks sorted by decreasing
// own-level utilization u_i(l_i) — the classical "decreasing" order
// used by FFD/BFD/WFD. Ties are broken by higher criticality, then by
// smaller ID, mirroring the CA-TPA tie rules so that comparisons
// between heuristics differ only in the primary key.
func SortByMaxUtil(ts *TaskSet) []int {
	idx, _ := SortByMaxUtilInto(ts, nil, nil)
	return idx
}

// resizeFloats returns s resized to n, reallocating only when the
// capacity is insufficient.
//
//mc:allocfree amortized: reallocates only on growth
func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// quicksortTaskIdx is a simple deterministic in-place sort (median-of-
// three quicksort with insertion sort for small runs) specialized to
// the ordLess relation, moving idx and key together. It exists to keep
// the hot partitioning path free of interface conversions and closure
// calls; the relation is a strict total order (IDs are unique), so the
// result is the same for any comparison order.
//
//mc:allocfree in-place; recursion bounded by the smaller-half rule
func quicksortTaskIdx(idx []int, key []float64, ts *TaskSet) {
	for len(idx) > 12 {
		// Median of three on values at the ends and middle.
		m := len(idx) / 2
		last := len(idx) - 1
		if ordLess(ts, idx[m], key[m], idx[0], key[0]) {
			idx[m], idx[0] = idx[0], idx[m]
			key[m], key[0] = key[0], key[m]
		}
		if ordLess(ts, idx[last], key[last], idx[0], key[0]) {
			idx[last], idx[0] = idx[0], idx[last]
			key[last], key[0] = key[0], key[last]
		}
		if ordLess(ts, idx[last], key[last], idx[m], key[m]) {
			idx[last], idx[m] = idx[m], idx[last]
			key[last], key[m] = key[m], key[last]
		}
		pi, pk := idx[m], key[m]
		i, j := 0, last
		for i <= j {
			for ordLess(ts, idx[i], key[i], pi, pk) {
				i++
			}
			for ordLess(ts, pi, pk, idx[j], key[j]) {
				j--
			}
			if i <= j {
				idx[i], idx[j] = idx[j], idx[i]
				key[i], key[j] = key[j], key[i]
				i++
				j--
			}
		}
		// Recurse into the smaller half, loop on the larger.
		if j+1 < len(idx)-i {
			quicksortTaskIdx(idx[:j+1], key[:j+1], ts)
			idx, key = idx[i:], key[i:]
		} else {
			quicksortTaskIdx(idx[i:], key[i:], ts)
			idx, key = idx[:j+1], key[:j+1]
		}
	}
	// Insertion sort for the remainder: hold the moving element and
	// shift, instead of swapping pairwise.
	for i := 1; i < len(idx); i++ {
		e, ek := idx[i], key[i]
		j := i
		for j > 0 && ordLess(ts, e, ek, idx[j-1], key[j-1]) {
			idx[j] = idx[j-1]
			key[j] = key[j-1]
			j--
		}
		idx[j] = e
		key[j] = ek
	}
}
