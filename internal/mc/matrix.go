package mc

import (
	"fmt"
	"strings"
)

// UtilMatrix maintains the per-level utilization sums U_j^Psi(k) of a
// subset Psi of tasks (the tasks allocated to one core), for a system
// with K criticality levels (Eq. 3). It supports O(K) incremental
// addition and removal of tasks so that probing every core for a
// candidate task — the inner loop of CA-TPA — never rescans task lists.
//
// The matrix is indexed 1-based on both axes: At(j, k) = U_j^Psi(k),
// the level-k utilization of the subset's tasks whose own criticality
// is exactly j. Entries with k > j are stored saturated (equal to
// At(j, j)) but are not used by the analysis.
type UtilMatrix struct {
	k int
	// u[(j-1)*k + (k'-1)] = U_j(k'); row-major, K x K.
	u []float64
	// n is the number of tasks currently accumulated.
	n int
}

// NewUtilMatrix returns an empty matrix for a system with k >= 1
// criticality levels.
func NewUtilMatrix(k int) *UtilMatrix {
	if k < 1 {
		panic(fmt.Sprintf("mc: invalid criticality level count %d", k))
	}
	return &UtilMatrix{k: k, u: make([]float64, k*k)}
}

// K returns the number of criticality levels the matrix was built for.
//
//mc:allocfree trivial accessor
func (m *UtilMatrix) K() int { return m.k }

// Len returns the number of tasks accumulated in the subset.
//
//mc:allocfree trivial accessor
func (m *UtilMatrix) Len() int { return m.n }

// At returns U_j^Psi(k), for 1 <= j, k <= K.
//
//mc:allocfree read per level inside the feasibility screens
func (m *UtilMatrix) At(j, k int) float64 {
	m.check(j, k)
	return m.u[(j-1)*m.k+(k-1)]
}

// Add accumulates task t into the subset.
//
//mc:allocfree O(K) updates on preallocated rows
func (m *UtilMatrix) Add(t *Task) {
	m.apply(t, +1)
}

// Remove removes task t from the subset. The caller must only remove
// tasks previously added; sums may otherwise go negative.
//
//mc:allocfree O(K) updates on preallocated rows
func (m *UtilMatrix) Remove(t *Task) {
	m.apply(t, -1)
}

//mc:allocfree shared body of Add and Remove
func (m *UtilMatrix) apply(t *Task, sign float64) {
	if t.Crit > m.k {
		panic(fmt.Sprintf("mc: task %d criticality %d exceeds matrix K=%d", t.ID, t.Crit, m.k))
	}
	row := (t.Crit - 1) * m.k
	for k := 1; k <= m.k; k++ {
		m.u[row+k-1] += sign * t.Util(k)
	}
	m.n += int(sign)
}

// AddRow accumulates a task with criticality level crit whose
// per-level utilizations were precomputed with Task.UtilRow:
// urow[k-1] = u(k) for k = 1..K. It performs exactly the additions of
// Add in the same order, so the resulting sums are bit-identical;
// it exists so hot paths can amortize the K divisions of Task.Util
// across many matrix operations.
//
//mc:allocfree the probe loop's commit step
func (m *UtilMatrix) AddRow(crit int, urow []float64) {
	m.applyRow(crit, urow, +1)
}

// RemoveRow undoes AddRow arithmetically (like Remove, the sums may
// carry floating-point residue; prefer SaveRow/RestoreRow for exact
// probing).
//
//mc:allocfree the probe loop's undo step
func (m *UtilMatrix) RemoveRow(crit int, urow []float64) {
	m.applyRow(crit, urow, -1)
}

//mc:allocfree shared body of AddRow and RemoveRow
func (m *UtilMatrix) applyRow(crit int, urow []float64, sign float64) {
	if crit > m.k {
		panic(fmt.Sprintf("mc: criticality %d exceeds matrix K=%d", crit, m.k))
	}
	row := m.u[(crit-1)*m.k : (crit-1)*m.k+m.k]
	for k := range row {
		row[k] += sign * urow[k]
	}
	m.n += int(sign)
}

// SaveRow copies the row U_j(1..K) into dst (which must have length at
// least K). Together with RestoreRow it lets a probe undo a temporary
// Add exactly: unlike Add-then-Remove, whose (u+x)-x arithmetic can
// leave one-ulp residue in the sums, a restored row is bitwise
// identical to the pre-probe state.
//
//mc:allocfree copies into caller-owned scratch
func (m *UtilMatrix) SaveRow(j int, dst []float64) {
	m.check(j, 1)
	copy(dst[:m.k], m.u[(j-1)*m.k:(j-1)*m.k+m.k])
}

// RestoreRow writes back a row captured by SaveRow and decrements the
// task count, exactly undoing one Add (or AddRow) of a task with
// criticality j performed since the save.
//
//mc:allocfree copies from caller-owned scratch
func (m *UtilMatrix) RestoreRow(j int, src []float64) {
	m.check(j, 1)
	copy(m.u[(j-1)*m.k:(j-1)*m.k+m.k], src[:m.k])
	m.n--
}

// Data exposes the backing row-major K x K utilization sums:
// Data()[(j-1)*K + (k-1)] = U_j^Psi(k). It exists so the schedulability
// analysis can read the matrix without per-entry bounds checks; callers
// must treat the slice as read-only.
//
//mc:allocfree returns the backing slice without copying
func (m *UtilMatrix) Data() []float64 { return m.u }

// TotalAt returns U^Psi(k) = sum_{j>=k} U_j^Psi(k), the subset
// counterpart of Eq. 2.
//
//mc:allocfree summed per probe
func (m *UtilMatrix) TotalAt(k int) float64 {
	m.check(k, k)
	var s float64
	for j := k; j <= m.k; j++ {
		s += m.u[(j-1)*m.k+(k-1)]
	}
	return s
}

// OwnLevelLoad returns sum_k U_k^Psi(k), the left-hand side of the
// pessimistic schedulability condition Eq. 4 for this subset.
//
//mc:allocfree summed per core comparison in the classical schemes
func (m *UtilMatrix) OwnLevelLoad() float64 {
	var s float64
	for k := 1; k <= m.k; k++ {
		s += m.u[(k-1)*m.k+(k-1)]
	}
	return s
}

// Clone returns a deep copy of the matrix.
func (m *UtilMatrix) Clone() *UtilMatrix {
	return &UtilMatrix{k: m.k, u: append([]float64(nil), m.u...), n: m.n}
}

// Reset zeroes the matrix in place.
//
//mc:allocfree zeroes in place between allocation passes
func (m *UtilMatrix) Reset() {
	for i := range m.u {
		m.u[i] = 0
	}
	m.n = 0
}

// MatrixOf accumulates all tasks of ts into a fresh matrix with the
// given number of levels k (which must be >= ts.MaxCrit()).
func MatrixOf(ts *TaskSet, k int) *UtilMatrix {
	m := NewUtilMatrix(k)
	for i := range ts.Tasks {
		m.Add(&ts.Tasks[i])
	}
	return m
}

//mc:allocfree bounds guard on every matrix access
func (m *UtilMatrix) check(j, k int) {
	if j < 1 || j > m.k || k < 1 || k > m.k {
		panic(fmt.Sprintf("mc: index (%d,%d) out of range for K=%d", j, k, m.k))
	}
}

// String renders the matrix rows U_j(1..K) for debugging.
func (m *UtilMatrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "UtilMatrix{K=%d, n=%d", m.k, m.n)
	for j := 1; j <= m.k; j++ {
		fmt.Fprintf(&b, ", U_%d=[", j)
		for k := 1; k <= m.k; k++ {
			if k > 1 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.3f", m.At(j, k))
		}
		b.WriteByte(']')
	}
	b.WriteByte('}')
	return b.String()
}
