package mc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestContributions(t *testing.T) {
	ts := dualSet() // U(1)=0.60, U(2)=0.65
	cs := Contributions(ts)
	// tau1: C(1) = 0.30/0.60 = 0.5
	if !almost(cs[0].Max, 0.5) {
		t.Errorf("C_1 = %v, want 0.5", cs[0].Max)
	}
	// tau2: C(1) = 0.20/0.60 = 1/3, C(2) = 0.40/0.65 ≈ 0.6154
	if !almost(cs[1].PerLevel[0], 0.2/0.6) {
		t.Errorf("C_2(1) = %v", cs[1].PerLevel[0])
	}
	if !almost(cs[1].PerLevel[1], 0.4/0.65) {
		t.Errorf("C_2(2) = %v", cs[1].PerLevel[1])
	}
	if !almost(cs[1].Max, 0.4/0.65) {
		t.Errorf("C_2 = %v", cs[1].Max)
	}
	// tau3: max(0.1/0.6, 0.25/0.65) = 0.25/0.65.
	if !almost(cs[2].Max, 0.25/0.65) {
		t.Errorf("C_3 = %v", cs[2].Max)
	}
}

func TestPrecedesRules(t *testing.T) {
	a := mkTask(1, 10, 1, 1)
	b := mkTask(2, 10, 2, 1, 2)
	// Rule 1: larger contribution wins.
	if !Precedes(&a, 0.9, &b, 0.5) {
		t.Error("larger contribution should precede")
	}
	if Precedes(&a, 0.5, &b, 0.9) {
		t.Error("smaller contribution should not precede")
	}
	// Rule 2: tie broken by criticality.
	if !Precedes(&b, 0.5, &a, 0.5) {
		t.Error("higher criticality should precede on tie")
	}
	if Precedes(&a, 0.5, &b, 0.5) {
		t.Error("lower criticality should not precede on tie")
	}
	// Rule 3: same contribution and criticality -> smaller ID.
	c := mkTask(3, 20, 1, 2)
	if !Precedes(&a, 0.5, &c, 0.5) {
		t.Error("smaller ID should precede on full tie")
	}
	if Precedes(&c, 0.5, &a, 0.5) {
		t.Error("larger ID should not precede on full tie")
	}
}

func TestSortByContributionOrder(t *testing.T) {
	ts := dualSet()
	idx := SortByContribution(ts)
	// Contributions: tau2 ≈ 0.615, tau1 = 0.5, tau3 ≈ 0.385.
	want := []int{1, 0, 2}
	for i, w := range want {
		if idx[i] != w {
			t.Fatalf("order = %v, want %v", idx, want)
		}
	}
}

func TestSortByMaxUtilOrder(t *testing.T) {
	ts := dualSet()
	idx := SortByMaxUtil(ts)
	// MaxUtil: tau2 = 0.40, tau1 = 0.30, tau3 = 0.25.
	want := []int{1, 0, 2}
	for i, w := range want {
		if idx[i] != w {
			t.Fatalf("order = %v, want %v", idx, want)
		}
	}
}

// TestSortByContributionIsPermutation checks, property-style, that the
// returned index slice is always a permutation and is sorted w.r.t. the
// strict ordering relation.
func TestSortByContributionIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		ts := &TaskSet{}
		for i := 0; i < n; i++ {
			crit := 1 + rng.Intn(3)
			p := 10 + rng.Float64()*90
			w := make([]float64, crit)
			c := (0.05 + rng.Float64()*0.3) * p
			for k := range w {
				w[k] = c
				c *= 1 + rng.Float64()*0.5
			}
			// Cap utilization at 1.
			if w[crit-1] > p {
				continue
			}
			ts.Tasks = append(ts.Tasks, Task{ID: i + 1, Period: p, Crit: crit, WCET: w})
		}
		if len(ts.Tasks) == 0 {
			return true
		}
		idx := SortByContribution(ts)
		seen := make(map[int]bool)
		for _, i := range idx {
			if i < 0 || i >= len(ts.Tasks) || seen[i] {
				return false
			}
			seen[i] = true
		}
		contrib := Contributions(ts)
		for i := 1; i < len(idx); i++ {
			a, b := idx[i-1], idx[i]
			// The later element must not strictly precede the earlier.
			if Precedes(&ts.Tasks[b], contrib[b].Max, &ts.Tasks[a], contrib[a].Max) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPrecedesTotalOrder verifies antisymmetry of the relation on
// random pairs: exactly one of a≻b, b≻a holds for distinct IDs.
func TestPrecedesTotalOrder(t *testing.T) {
	f := func(ca, cb float64, critA, critB uint8) bool {
		a := mkTask(1, 10, 1+int(critA%3), 1, 1, 1)
		a.WCET = a.WCET[:a.Crit]
		b := mkTask(2, 10, 1+int(critB%3), 1, 1, 1)
		b.WCET = b.WCET[:b.Crit]
		ab := Precedes(&a, ca, &b, cb)
		ba := Precedes(&b, cb, &a, ca)
		return ab != ba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestContributionsSingleTask(t *testing.T) {
	ts := NewTaskSet(mkTask(1, 10, 3, 1, 2, 3))
	cs := Contributions(ts)
	// A lone task contributes 100% at every level.
	for k, v := range cs[0].PerLevel {
		if !almost(v, 1.0) {
			t.Errorf("C(%d) = %v, want 1", k+1, v)
		}
	}
	if !almost(cs[0].Max, 1.0) {
		t.Errorf("Max = %v, want 1", cs[0].Max)
	}
}
