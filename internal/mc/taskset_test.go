package mc

import (
	"encoding/json"
	"testing"
)

// dualSet returns a small dual-criticality set with known utilizations:
//
//	tau1: LO, u(1)=0.30
//	tau2: HI, u(1)=0.20, u(2)=0.40
//	tau3: HI, u(1)=0.10, u(2)=0.25
func dualSet() *TaskSet {
	return NewTaskSet(
		mkTask(1, 10, 1, 3),
		mkTask(2, 20, 2, 4, 8),
		mkTask(3, 40, 2, 4, 10),
	)
}

func TestTaskSetLevelUtil(t *testing.T) {
	ts := dualSet()
	if got := ts.LevelUtil(1, 1); !almost(got, 0.30) {
		t.Errorf("U_1(1) = %v, want 0.30", got)
	}
	if got := ts.LevelUtil(2, 1); !almost(got, 0.30) {
		t.Errorf("U_2(1) = %v, want 0.30", got)
	}
	if got := ts.LevelUtil(2, 2); !almost(got, 0.65) {
		t.Errorf("U_2(2) = %v, want 0.65", got)
	}
}

func TestTaskSetTotalUtilAt(t *testing.T) {
	ts := dualSet()
	// U(1) = all tasks at level 1.
	if got := ts.TotalUtilAt(1); !almost(got, 0.60) {
		t.Errorf("U(1) = %v, want 0.60", got)
	}
	// U(2) = only HI tasks, at level 2.
	if got := ts.TotalUtilAt(2); !almost(got, 0.65) {
		t.Errorf("U(2) = %v, want 0.65", got)
	}
	if got := ts.RawUtil(); !almost(got, 0.60) {
		t.Errorf("RawUtil = %v, want 0.60", got)
	}
	if got := ts.MaxLoad(); !almost(got, 0.95) {
		t.Errorf("MaxLoad = %v, want 0.95", got)
	}
}

func TestTaskSetMaxCrit(t *testing.T) {
	if got := dualSet().MaxCrit(); got != 2 {
		t.Errorf("MaxCrit = %d, want 2", got)
	}
	if got := (&TaskSet{}).MaxCrit(); got != 0 {
		t.Errorf("empty MaxCrit = %d, want 0", got)
	}
}

func TestTaskSetByLevel(t *testing.T) {
	lv := dualSet().ByLevel()
	if len(lv) != 3 {
		t.Fatalf("ByLevel len = %d, want 3", len(lv))
	}
	if len(lv[1]) != 1 || lv[1][0] != 0 {
		t.Errorf("L_1 = %v, want [0]", lv[1])
	}
	if len(lv[2]) != 2 {
		t.Errorf("L_2 = %v, want two entries", lv[2])
	}
}

func TestTaskSetValidateDuplicateID(t *testing.T) {
	ts := NewTaskSet(mkTask(7, 10, 1, 1), mkTask(7, 10, 1, 1))
	if err := ts.Validate(); err == nil {
		t.Fatal("duplicate IDs not rejected")
	}
}

func TestNewTaskSetAssignsIDs(t *testing.T) {
	ts := NewTaskSet(
		Task{Period: 10, Crit: 1, WCET: []float64{1}},
		Task{Period: 20, Crit: 1, WCET: []float64{2}},
	)
	if ts.Tasks[0].ID != 1 || ts.Tasks[1].ID != 2 {
		t.Errorf("IDs = %d,%d, want 1,2", ts.Tasks[0].ID, ts.Tasks[1].ID)
	}
}

func TestTaskSetJSONRoundTrip(t *testing.T) {
	ts := dualSet()
	data, err := json.Marshal(ts)
	if err != nil {
		t.Fatal(err)
	}
	var back TaskSet
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != ts.Len() {
		t.Fatalf("round trip lost tasks: %d != %d", back.Len(), ts.Len())
	}
	for i := range ts.Tasks {
		if !almost(back.Tasks[i].Util(1), ts.Tasks[i].Util(1)) {
			t.Errorf("task %d changed in round trip", i)
		}
	}
}

func TestTaskSetJSONRejectsInvalid(t *testing.T) {
	bad := []byte(`{"tasks":[{"id":1,"wcet":[4,2],"period":10,"crit":2}]}`)
	var ts TaskSet
	if err := json.Unmarshal(bad, &ts); err == nil {
		t.Fatal("decreasing WCET vector accepted by UnmarshalJSON")
	}
}

func TestTaskSetCloneIsDeep(t *testing.T) {
	ts := dualSet()
	cl := ts.Clone()
	cl.Tasks[0].WCET[0] = 999
	if ts.Tasks[0].WCET[0] != 3 {
		t.Fatal("Clone shares task storage")
	}
}

func TestTaskSetSortStable(t *testing.T) {
	ts := dualSet()
	ts.SortStable(func(a, b *Task) bool { return a.Period > b.Period })
	if ts.Tasks[0].ID != 3 || ts.Tasks[2].ID != 1 {
		t.Errorf("sorted order = %d,%d,%d", ts.Tasks[0].ID, ts.Tasks[1].ID, ts.Tasks[2].ID)
	}
}
