// Package stats provides the small statistical toolkit used by the
// experiment harness: streaming mean/variance accumulators (Welford),
// Bernoulli ratio accumulators with normal-approximation confidence
// intervals, and order-independent merging so that parallel workers
// can be combined deterministically.
package stats

import (
	"fmt"
	"math"
)

// Mean is a streaming mean/variance accumulator using Welford's
// algorithm. The zero value is ready to use.
type Mean struct {
	n    int64
	mean float64
	m2   float64
}

// Add accumulates one observation.
func (a *Mean) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of observations.
func (a *Mean) N() int64 { return a.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (a *Mean) Mean() float64 { return a.mean }

// Var returns the unbiased sample variance.
func (a *Mean) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the sample standard deviation.
func (a *Mean) Std() float64 { return math.Sqrt(a.Var()) }

// SE returns the standard error of the mean.
func (a *Mean) SE() float64 {
	if a.n == 0 {
		return 0
	}
	return a.Std() / math.Sqrt(float64(a.n))
}

// CI95 returns the half-width of the 95% confidence interval for the
// mean (normal approximation).
func (a *Mean) CI95() float64 { return 1.96 * a.SE() }

// Merge folds another accumulator into a (Chan et al. parallel update).
func (a *Mean) Merge(b *Mean) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.mean += d * float64(b.n) / float64(n)
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	a.n = n
}

// String renders "mean ± ci95 (n)".
func (a *Mean) String() string {
	return fmt.Sprintf("%.4f±%.4f (n=%d)", a.Mean(), a.CI95(), a.n)
}

// Ratio accumulates Bernoulli outcomes (e.g. schedulable / not).
type Ratio struct {
	hits, total int64
}

// Add accumulates one outcome.
func (r *Ratio) Add(hit bool) {
	r.total++
	if hit {
		r.hits++
	}
}

// AddN accumulates a batch.
func (r *Ratio) AddN(hits, total int64) {
	r.hits += hits
	r.total += total
}

// Hits returns the number of positive outcomes; N the total.
func (r *Ratio) Hits() int64 { return r.hits }

// N returns the number of trials.
func (r *Ratio) N() int64 { return r.total }

// Value returns the ratio (0 for empty).
func (r *Ratio) Value() float64 {
	if r.total == 0 {
		return 0
	}
	return float64(r.hits) / float64(r.total)
}

// CI95 returns the half-width of the 95% Wald interval.
func (r *Ratio) CI95() float64 {
	if r.total == 0 {
		return 0
	}
	p := r.Value()
	return 1.96 * math.Sqrt(p*(1-p)/float64(r.total))
}

// Merge folds b into r.
func (r *Ratio) Merge(b *Ratio) {
	r.hits += b.hits
	r.total += b.total
}

// String renders "0.8123±0.0034 (n)".
func (r *Ratio) String() string {
	return fmt.Sprintf("%.4f±%.4f (n=%d)", r.Value(), r.CI95(), r.total)
}
