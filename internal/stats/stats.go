// Package stats provides the small statistical toolkit used by the
// experiment harness: streaming mean/variance accumulators with
// Kahan-compensated sums, Bernoulli ratio accumulators with
// normal-approximation confidence intervals, and merging so that
// parallel workers can be combined near-deterministically — the
// compensated sums make the mean insensitive (to ~1e-12 relative) to
// how observations are striped across workers.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
)

// Mean is a streaming mean/variance accumulator. Sums of x and x² are
// kept with Kahan compensation, so the mean is nearly independent of
// accumulation order: splitting a population across any number of
// parallel workers and merging changes the result by at most a few
// ulps. The zero value is ready to use.
type Mean struct {
	n      int64
	sum    float64 // compensated sum of x
	comp   float64 // running compensation (negated low-order error) of sum
	sumsq  float64 // compensated sum of x*x
	compsq float64
}

// kadd performs one Kahan step: *s += x with error carried in *c
// (the true total is *s - *c).
func kadd(s, c *float64, x float64) {
	y := x - *c
	t := *s + y
	*c = (t - *s) - y
	*s = t
}

// Add accumulates one observation.
func (a *Mean) Add(x float64) {
	a.n++
	kadd(&a.sum, &a.comp, x)
	kadd(&a.sumsq, &a.compsq, x*x)
}

// N returns the number of observations.
func (a *Mean) N() int64 { return a.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (a *Mean) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Var returns the unbiased sample variance (sum-of-squares form; the
// compensated sums keep cancellation in check for the well-scaled
// metrics this package accumulates).
func (a *Mean) Var() float64 {
	if a.n < 2 {
		return 0
	}
	v := (a.sumsq - a.sum*a.sum/float64(a.n)) / float64(a.n-1)
	if v < 0 { // guard against cancellation residue near zero variance
		return 0
	}
	return v
}

// Std returns the sample standard deviation.
func (a *Mean) Std() float64 { return math.Sqrt(a.Var()) }

// SE returns the standard error of the mean.
func (a *Mean) SE() float64 {
	if a.n == 0 {
		return 0
	}
	return a.Std() / math.Sqrt(float64(a.n))
}

// CI95 returns the half-width of the 95% confidence interval for the
// mean (normal approximation).
func (a *Mean) CI95() float64 { return 1.96 * a.SE() }

// Merge folds another accumulator into a. The merged sums fold in b's
// compensation terms, so chained merges stay compensated.
func (a *Mean) Merge(b *Mean) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	a.n += b.n
	kadd(&a.sum, &a.comp, b.sum)
	kadd(&a.sum, &a.comp, -b.comp)
	kadd(&a.sumsq, &a.compsq, b.sumsq)
	kadd(&a.sumsq, &a.compsq, -b.compsq)
}

// String renders "mean ± ci95 (n)".
func (a *Mean) String() string {
	return fmt.Sprintf("%.4f±%.4f (n=%d)", a.Mean(), a.CI95(), a.n)
}

// meanState is the serialized form of a Mean. Every internal field —
// including the Kahan compensation terms — is preserved, and Go's JSON
// encoder emits the shortest float64 representation that parses back to
// the identical bits, so Marshal/Unmarshal round-trips are exact: a
// checkpointed accumulator resumes bit-identical to the live one.
type meanState struct {
	N      int64   `json:"n"`
	Sum    float64 `json:"sum"`
	Comp   float64 `json:"comp"`
	Sumsq  float64 `json:"sumsq"`
	Compsq float64 `json:"compsq"`
}

// MarshalJSON implements json.Marshaler, preserving the accumulator
// state exactly (see meanState).
func (a *Mean) MarshalJSON() ([]byte, error) {
	return json.Marshal(meanState{N: a.n, Sum: a.sum, Comp: a.comp, Sumsq: a.sumsq, Compsq: a.compsq})
}

// UnmarshalJSON implements json.Unmarshaler; the inverse of MarshalJSON.
func (a *Mean) UnmarshalJSON(b []byte) error {
	var s meanState
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	*a = Mean{n: s.N, sum: s.Sum, comp: s.Comp, sumsq: s.Sumsq, compsq: s.Compsq}
	return nil
}

// Ratio accumulates Bernoulli outcomes (e.g. schedulable / not).
type Ratio struct {
	hits, total int64
}

// Add accumulates one outcome.
func (r *Ratio) Add(hit bool) {
	r.total++
	if hit {
		r.hits++
	}
}

// AddN accumulates a batch.
func (r *Ratio) AddN(hits, total int64) {
	r.hits += hits
	r.total += total
}

// Hits returns the number of positive outcomes; N the total.
func (r *Ratio) Hits() int64 { return r.hits }

// N returns the number of trials.
func (r *Ratio) N() int64 { return r.total }

// Value returns the ratio (0 for empty).
func (r *Ratio) Value() float64 {
	if r.total == 0 {
		return 0
	}
	return float64(r.hits) / float64(r.total)
}

// CI95 returns the half-width of the 95% Wald interval.
func (r *Ratio) CI95() float64 {
	if r.total == 0 {
		return 0
	}
	p := r.Value()
	return 1.96 * math.Sqrt(p*(1-p)/float64(r.total))
}

// Merge folds b into r.
func (r *Ratio) Merge(b *Ratio) {
	r.hits += b.hits
	r.total += b.total
}

// String renders "0.8123±0.0034 (n)".
func (r *Ratio) String() string {
	return fmt.Sprintf("%.4f±%.4f (n=%d)", r.Value(), r.CI95(), r.total)
}

// ratioState is the serialized form of a Ratio (integer counts, so the
// round-trip is trivially exact).
type ratioState struct {
	Hits  int64 `json:"hits"`
	Total int64 `json:"total"`
}

// MarshalJSON implements json.Marshaler.
func (r *Ratio) MarshalJSON() ([]byte, error) {
	return json.Marshal(ratioState{Hits: r.hits, Total: r.total})
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *Ratio) UnmarshalJSON(b []byte) error {
	var s ratioState
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	*r = Ratio{hits: s.Hits, total: s.Total}
	return nil
}
