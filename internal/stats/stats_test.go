package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanBasics(t *testing.T) {
	var m Mean
	for _, x := range []float64{1, 2, 3, 4, 5} {
		m.Add(x)
	}
	if m.N() != 5 {
		t.Fatalf("N = %d", m.N())
	}
	if !almost(m.Mean(), 3, 1e-12) {
		t.Errorf("mean = %v", m.Mean())
	}
	if !almost(m.Var(), 2.5, 1e-12) {
		t.Errorf("var = %v", m.Var())
	}
	if !almost(m.Std(), math.Sqrt(2.5), 1e-12) {
		t.Errorf("std = %v", m.Std())
	}
	if m.String() == "" {
		t.Error("empty String")
	}
}

func TestMeanEmpty(t *testing.T) {
	var m Mean
	if m.Mean() != 0 || m.Var() != 0 || m.SE() != 0 || m.CI95() != 0 {
		t.Error("empty accumulator not all-zero")
	}
}

func TestMeanSingle(t *testing.T) {
	var m Mean
	m.Add(7)
	if m.Var() != 0 {
		t.Errorf("var of single obs = %v", m.Var())
	}
}

// TestMeanMergeEquivalence: merging two accumulators equals
// accumulating the concatenation.
func TestMeanMergeEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var a, b, all Mean
		na, nb := 1+rng.Intn(50), 1+rng.Intn(50)
		for i := 0; i < na; i++ {
			x := rng.NormFloat64()*3 + 1
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < nb; i++ {
			x := rng.NormFloat64()*0.5 - 2
			b.Add(x)
			all.Add(x)
		}
		a.Merge(&b)
		return a.N() == all.N() &&
			almost(a.Mean(), all.Mean(), 1e-9) &&
			almost(a.Var(), all.Var(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanMergeEmptyCases(t *testing.T) {
	var a, b Mean
	a.Add(5)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 5 {
		t.Error("merge with empty changed accumulator")
	}
	var c Mean
	c.Merge(&a) // merging into empty copies
	if c.N() != 1 || c.Mean() != 5 {
		t.Error("merge into empty did not copy")
	}
}

func TestRatioBasics(t *testing.T) {
	var r Ratio
	for i := 0; i < 10; i++ {
		r.Add(i < 7)
	}
	if r.N() != 10 || r.Hits() != 7 {
		t.Fatalf("N=%d hits=%d", r.N(), r.Hits())
	}
	if !almost(r.Value(), 0.7, 1e-12) {
		t.Errorf("value = %v", r.Value())
	}
	want := 1.96 * math.Sqrt(0.7*0.3/10)
	if !almost(r.CI95(), want, 1e-12) {
		t.Errorf("ci = %v, want %v", r.CI95(), want)
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestRatioEmpty(t *testing.T) {
	var r Ratio
	if r.Value() != 0 || r.CI95() != 0 {
		t.Error("empty ratio not zero")
	}
}

func TestRatioMergeAndAddN(t *testing.T) {
	var a, b Ratio
	a.AddN(3, 10)
	b.AddN(4, 5)
	a.Merge(&b)
	if a.N() != 15 || a.Hits() != 7 {
		t.Fatalf("merged N=%d hits=%d", a.N(), a.Hits())
	}
}

// TestCIShrinks: the confidence interval half-width decreases with
// sample size.
func TestCIShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var small, large Mean
	for i := 0; i < 20; i++ {
		small.Add(rng.NormFloat64())
	}
	for i := 0; i < 2000; i++ {
		large.Add(rng.NormFloat64())
	}
	if large.CI95() >= small.CI95() {
		t.Errorf("ci did not shrink: %v -> %v", small.CI95(), large.CI95())
	}
}

// TestMeanStripingInvariance: striping one population across any
// number of accumulators and merging yields (to within a few ulps)
// the same mean as serial accumulation — the property the parallel
// sweep harness relies on to make results independent of the worker
// count.
func TestMeanStripingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	xs := make([]float64, 10007)
	for i := range xs {
		xs[i] = 0.1 + rng.Float64() // well-scaled, like the sweep metrics
	}
	var serial Mean
	for _, x := range xs {
		serial.Add(x)
	}
	for _, workers := range []int{1, 2, 3, 4, 7, 16, 64} {
		rows := make([]Mean, workers)
		for i, x := range xs {
			rows[i%workers].Add(x)
		}
		var merged Mean
		for w := range rows {
			merged.Merge(&rows[w])
		}
		if merged.N() != serial.N() {
			t.Fatalf("workers=%d: N=%d want %d", workers, merged.N(), serial.N())
		}
		if d := math.Abs(merged.Mean() - serial.Mean()); d > 1e-12 {
			t.Errorf("workers=%d: mean drift %v", workers, d)
		}
		if d := math.Abs(merged.Var() - serial.Var()); d > 1e-9 {
			t.Errorf("workers=%d: var drift %v", workers, d)
		}
	}
}

// TestMeanJSONRoundTripExact: checkpoint/resume depends on the
// serialized accumulator state being bit-identical after a JSON
// round-trip, compensation terms included.
func TestMeanJSONRoundTripExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var m Mean
	for i := 0; i < 1000; i++ {
		m.Add(0.001 + rng.Float64())
	}
	b, err := json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	var back Mean
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Fatalf("round-trip changed state:\n got %+v\nwant %+v", back, m)
	}
	// Continuing to accumulate after the round-trip must track the
	// original bit for bit.
	for i := 0; i < 100; i++ {
		x := rng.Float64()
		m.Add(x)
		back.Add(x)
	}
	if back != m {
		t.Fatalf("post-round-trip accumulation diverged:\n got %+v\nwant %+v", back, m)
	}
}

func TestRatioJSONRoundTripExact(t *testing.T) {
	var r Ratio
	r.AddN(123, 456)
	b, err := json.Marshal(&r)
	if err != nil {
		t.Fatal(err)
	}
	var back Ratio
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != r {
		t.Fatalf("round-trip changed state: got %+v want %+v", back, r)
	}
}
