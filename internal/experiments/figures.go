package experiments

import (
	"fmt"

	"catpa/internal/fpamc"
	"catpa/internal/partition"
	"catpa/internal/taskgen"
)

// Figure returns the sweep definition reproducing the given figure of
// the paper (1..5) or the repository's backend-comparison extension
// (6), with the requested population size per point and seed. Panics
// on an unknown figure number.
//
//	Fig. 1: varying normalized system utilization NSU
//	Fig. 2: varying WCET increment factor IFC
//	Fig. 3: varying imbalance threshold alpha (CA-TPA only reacts)
//	Fig. 4: varying core count M
//	Fig. 5: varying criticality levels K
//	Fig. 6: EDF-VD vs AMC-rtb analysis backends, varying NSU
func Figure(n, sets int, seed int64) *Sweep {
	s := &Sweep{Sets: sets, Seed: seed}
	switch n {
	case 1:
		s.Name, s.Title, s.Param = "fig1", "Fig. 1: varying NSU", "NSU"
		s.Values = []float64{0.4, 0.5, 0.6, 0.7, 0.8}
		s.Apply = func(p *Params, x float64) { p.NSU = x }
	case 2:
		s.Name, s.Title, s.Param = "fig2", "Fig. 2: varying IFC", "IFC"
		s.Values = []float64{0.3, 0.4, 0.5, 0.6, 0.7}
		s.Apply = func(p *Params, x float64) { p.IFC = taskgen.Range{Lo: x, Hi: x} }
	case 3:
		s.Name, s.Title, s.Param = "fig3", "Fig. 3: varying alpha", "alpha"
		s.Values = []float64{0.1, 0.2, 0.3, 0.4, 0.5}
		s.Apply = func(p *Params, x float64) { p.Alpha = x }
	case 4:
		s.Name, s.Title, s.Param = "fig4", "Fig. 4: varying M", "M"
		s.Values = []float64{2, 4, 8, 16, 32}
		s.Apply = func(p *Params, x float64) { p.M = int(x) }
	case 5:
		s.Name, s.Title, s.Param = "fig5", "Fig. 5: varying K", "K"
		s.Values = []float64{2, 3, 4, 5, 6}
		s.Apply = func(p *Params, x float64) { p.K = int(x) }
	case 6:
		// Not in the paper: the same heuristics under the two analysis
		// backends, on dual-criticality populations both can analyze
		// (AMC-rtb is dual-criticality only, and its per-task RTA fixed
		// points want smaller sets than the paper's N ~ U[40,200]).
		s.Name, s.Title, s.Param = "fig6", "Fig. 6: EDF-VD vs AMC-rtb backends", "NSU"
		s.Values = []float64{0.4, 0.5, 0.6, 0.7, 0.8}
		s.Apply = func(p *Params, x float64) {
			p.NSU = x
			p.K = 2
			p.M = 4
			p.N = taskgen.IntRange{Lo: 20, Hi: 60}
		}
		for _, be := range []string{"", fpamc.BackendName} {
			for _, sch := range []partition.Scheme{partition.CATPA, partition.FFD, partition.Hybrid} {
				s.Variants = append(s.Variants, Variant{Scheme: sch, Backend: be})
			}
		}
	default:
		panic(fmt.Sprintf("experiments: unknown figure %d", n))
	}
	return s
}

// Figures lists the valid figure numbers: the paper's five plus the
// backend-comparison extension.
var Figures = []int{1, 2, 3, 4, 5, 6}
