package experiments

import (
	"fmt"
	"time"

	"catpa/internal/fpamc"
	"catpa/internal/mc"
	"catpa/internal/obs"
	"catpa/internal/partition"
	"catpa/internal/stats"
	"catpa/internal/taskgen"
	"catpa/internal/textplot"
)

// OnlineScenario evaluates each replication as an open, arrival-driven
// system instead of a one-shot task set: the replication's task
// universe is generated once, an arrival process turns it into a
// merged event stream (taskgen.StreamBuilder), and every variant
// replays the stream through an admission session — Admit on arrival
// (a failed admit is a shed: the task is turned away and never
// retried), Release on departure of an admitted task. The recorded
// family is arrival-resolved: admission rate, shed rate, standing
// occupancy, and core utilization over scenario time in Buckets
// equal-width time buckets (see OnlineCell).
//
// Determinism matches the static protocol: (Seed, point, set) address
// the universe and the event stream bit for bit, admission counts are
// exact integers independent of the worker count, and the
// time-weighted means are compensated, so fixed-seed goldens hold.
type OnlineScenario struct {
	// NewSource constructs each worker's task source; nil selects the
	// paper's Table-IV generator.
	NewSource func() taskgen.TaskSource
	// Process draws inter-arrival gaps and lifetimes (required).
	Process taskgen.ArrivalProcess
	// Horizon is the scenario length in task-period time units; events
	// at or past it are not generated (required, positive).
	Horizon float64
	// Buckets is the resolution of the over-time curves; 0 selects 16.
	Buckets int
}

// Kind implements Scenario; "online" joins the checkpoint identity.
func (o *OnlineScenario) Kind() string { return "online" }

func (o *OnlineScenario) buckets() int {
	if o.Buckets <= 0 {
		return 16
	}
	return o.Buckets
}

func (o *OnlineScenario) validate() error {
	if o.Process == nil {
		return fmt.Errorf("experiments: online scenario: nil arrival process")
	}
	if err := o.Process.Validate(); err != nil {
		return fmt.Errorf("experiments: online scenario: %v", err)
	}
	if o.Horizon <= 0 {
		return fmt.Errorf("experiments: online scenario: horizon %v <= 0", o.Horizon)
	}
	return nil
}

func (o *OnlineScenario) newWorker() scenarioWorker {
	src := taskgen.TaskSource(nil)
	if o.NewSource != nil {
		src = o.NewSource()
	}
	if src == nil {
		src = taskgen.NewGenerator()
	}
	return &onlineWorker{
		o:     o,
		src:   src,
		sb:    taskgen.NewStreamBuilder(),
		parts: make(map[string]*partition.Partitioner),
	}
}

// OnlineCell is the arrival-resolved aggregate of one (point, variant)
// cell of an online sweep, accumulated over the point's replications.
type OnlineCell struct {
	// Admitted counts admission verdicts over arrivals: Value() is the
	// admission rate, 1 - Value() the shed rate. Counts are exact, so
	// they are independent of the worker count.
	Admitted stats.Ratio `json:"admitted"`
	// Occupancy is the time-weighted mean number of tasks standing in
	// the system over the horizon, one observation per replication.
	Occupancy stats.Mean `json:"occupancy"`
	// CoreUtil is the end-of-horizon average core utilization, one
	// observation per replication.
	CoreUtil stats.Mean `json:"core_util"`
	// AdmitOverTime splits the admission verdicts by arrival time into
	// equal-width horizon buckets.
	AdmitOverTime []stats.Ratio `json:"admit_over_time"`
	// UtilOverTime samples the average core utilization at the end of
	// each horizon bucket (sample-and-hold across empty buckets).
	UtilOverTime []stats.Mean `json:"util_over_time"`
}

func newOnlineCell(buckets int) *OnlineCell {
	return &OnlineCell{
		AdmitOverTime: make([]stats.Ratio, buckets),
		UtilOverTime:  make([]stats.Mean, buckets),
	}
}

func (c *OnlineCell) merge(o *OnlineCell) {
	c.Admitted.Merge(&o.Admitted)
	c.Occupancy.Merge(&o.Occupancy)
	c.CoreUtil.Merge(&o.CoreUtil)
	for b := range c.AdmitOverTime {
		if b >= len(o.AdmitOverTime) {
			break
		}
		c.AdmitOverTime[b].Merge(&o.AdmitOverTime[b])
	}
	for b := range c.UtilOverTime {
		if b >= len(o.UtilOverTime) {
			break
		}
		c.UtilOverTime[b].Merge(&o.UtilOverTime[b])
	}
}

// shedRate is the complement of the admission rate, 0 when no arrival
// was observed (an empty stream sheds nothing).
func (c *OnlineCell) shedRate() float64 {
	n := c.Admitted.N()
	if n == 0 {
		return 0
	}
	return float64(n-c.Admitted.Hits()) / float64(n)
}

// onlineWorker is one worker's online scratch state: a task source, a
// stream builder and one pooled Partitioner per analysis backend, all
// slab-backed, so steady-state replay performs no heap allocations
// (TestOnlineScenarioZeroAllocs).
type onlineWorker struct {
	o     *OnlineScenario
	src   taskgen.TaskSource
	sb    *taskgen.StreamBuilder
	parts map[string]*partition.Partitioner
}

func (w *onlineWorker) arm(jb *job) {
	armWorker(w.parts, jb)
	for vi := range jb.row {
		if jb.row[vi].Online == nil {
			jb.row[vi].Online = newOnlineCell(w.o.buckets())
		}
	}
}

// evalSet evaluates one online replication: generate the universe and
// its event stream, then replay the stream once per variant. Like the
// static runSet, a panic anywhere — hook, source, stream, session —
// quarantines the replication, and accumulation per variant happens
// inside replay only on its success path.
func (w *onlineWorker) evalSet(jb *job, set int) (q *Quarantine) {
	defer func() {
		if r := recover(); r != nil {
			q = &Quarantine{Point: jb.point, X: jb.x, Set: set, Seed: jb.seed, Err: fmt.Sprint(r)}
		}
	}()
	if jb.hook != nil {
		jb.hook.BeforeSet(jb.point, set)
	}
	m := jb.metrics
	var ts *mc.TaskSet
	var events []taskgen.Event
	if m == nil {
		ts = w.src.Generate(jb.cfg, jb.seed, set)
		events = w.sb.Build(w.o.Process, len(ts.Tasks), w.o.Horizon, jb.seed, set)
	} else {
		sp := obs.StartSpan(m.genSeconds)
		ts = w.src.Generate(jb.cfg, jb.seed, set)
		events = w.sb.Build(w.o.Process, len(ts.Tasks), w.o.Horizon, jb.seed, set)
		sp.End()
		m.observeEvents(len(events))
	}
	for _, g := range jb.groups {
		part := w.parts[g.backend]
		for i, s := range g.schemes {
			vi := g.idx[i]
			if m == nil {
				w.replay(jb, part, s, ts, events, vi)
			} else {
				t0 := time.Now()
				w.replay(jb, part, s, ts, events, vi)
				m.partSeconds.Observe(time.Since(t0))
			}
		}
	}
	return nil
}

// replay drives one variant's admission session over the event stream
// and accumulates the replication's aggregates into its cell: per-
// arrival admission verdicts (whole-horizon and per time bucket), the
// time-weighted standing occupancy, utilization sampled at bucket
// boundaries, and — for clean replications, where no arrival was shed
// — the end-of-horizon system state into the static metric columns, so
// Sched keeps its "fully accommodated" meaning. Every update is slab
// or atomic storage; the replay itself allocates nothing.
//
//mc:deterministic the scenario driver feeds checkpointed aggregates and golden CSVs
func (w *onlineWorker) replay(jb *job, part *partition.Partitioner, scheme partition.Scheme, ts *mc.TaskSet, events []taskgen.Event, vi int) {
	o := w.o
	buckets := o.buckets()
	bw := o.Horizon / float64(buckets)
	cell := &jb.row[vi]
	oc := cell.Online
	m := jb.metrics

	part.StartIncremental(ts, scheme, jb.opts)
	var arrivals, admitted int64
	occ := 0
	occInt, lastT := 0.0, 0.0
	b := 0
	for ei := range events {
		e := &events[ei]
		// Close every bucket whose end we just passed, sampling the
		// committed utilization the session held through it.
		if float64(b+1)*bw <= e.Time {
			u := part.Summarize().Uavg
			for b < buckets && float64(b+1)*bw <= e.Time {
				oc.UtilOverTime[b].Add(u)
				b++
			}
		}
		occInt += float64(occ) * (e.Time - lastT)
		lastT = e.Time
		if e.Arrive {
			arrivals++
			_, ok := part.Admit(e.Task)
			oc.AdmitOverTime[b].Add(ok)
			if ok {
				admitted++
				occ++
				m.observeAdmit(vi, e.Time)
			} else {
				m.observeShed(vi, e.Time)
			}
		} else if part.Assigned(e.Task) >= 0 {
			// Departure of an admitted task; shed tasks never entered,
			// so their departure is a no-op.
			part.Release(e.Task)
			occ--
		}
	}
	occInt += float64(occ) * (o.Horizon - lastT)
	fin := part.Summarize()
	for ; b < buckets; b++ {
		oc.UtilOverTime[b].Add(fin.Uavg)
	}

	oc.Admitted.AddN(admitted, arrivals)
	oc.Occupancy.Add(occInt / o.Horizon)
	oc.CoreUtil.Add(fin.Uavg)
	clean := admitted == arrivals
	cell.Sched.Add(clean)
	if clean {
		cell.Usys.Add(fin.Usys)
		cell.Uavg.Add(fin.Uavg)
		cell.Imb.Add(fin.Imbalance)
	}
	if m != nil {
		if clean {
			m.accepted[vi].Inc()
		} else {
			m.rejected[vi].Inc()
		}
	}
}

// OnlineMetricNames maps the four online sub-figures to captions,
// mirroring MetricNames for the static family.
var OnlineMetricNames = []string{
	"(a) admission rate",
	"(b) shed rate",
	"(c) mean occupancy",
	"(d) core utilization over time",
}

// onlineCharts renders the online chart family: admission rate, shed
// rate and mean occupancy against the sweep axis, plus core
// utilization against scenario time (bucket midpoints), aggregated
// over every sweep point.
//
//mc:deterministic chart series order is part of the golden output
func (r *Result) onlineCharts(o *OnlineScenario) []*textplot.Chart {
	variants := r.Sweep.ActiveVariants()
	buckets := o.buckets()
	out := make([]*textplot.Chart, 0, len(OnlineMetricNames))
	for mi, caption := range OnlineMetricNames[:3] {
		ch := &textplot.Chart{
			Title:  fmt.Sprintf("%s %s", r.Sweep.Title, caption),
			XLabel: r.Sweep.Param,
			YLabel: caption,
			X:      r.Sweep.Values,
		}
		for vi, v := range variants {
			series := textplot.Series{Label: v.String(), Y: make([]float64, len(r.Points))}
			for pi := range r.Points {
				oc := r.Points[pi].Cells[vi].Online
				if oc == nil {
					continue
				}
				switch mi {
				case 0:
					series.Y[pi] = oc.Admitted.Value()
				case 1:
					series.Y[pi] = oc.shedRate()
				case 2:
					series.Y[pi] = oc.Occupancy.Mean()
				}
			}
			ch.Series = append(ch.Series, series)
		}
		out = append(out, ch)
	}

	over := &textplot.Chart{
		Title:  fmt.Sprintf("%s %s", r.Sweep.Title, OnlineMetricNames[3]),
		XLabel: "t",
		YLabel: OnlineMetricNames[3],
		X:      make([]float64, buckets),
	}
	for b := 0; b < buckets; b++ {
		over.X[b] = (float64(b) + 0.5) * o.Horizon / float64(buckets)
	}
	for _, v := range variants {
		over.Series = append(over.Series, textplot.Series{Label: v.String(), Y: make([]float64, buckets)})
	}
	for vi := range variants {
		for b := 0; b < buckets; b++ {
			var agg stats.Mean
			for pi := range r.Points {
				oc := r.Points[pi].Cells[vi].Online
				if oc == nil || b >= len(oc.UtilOverTime) {
					continue
				}
				agg.Merge(&oc.UtilOverTime[b])
			}
			over.Series[vi].Y[b] = agg.Mean()
		}
	}
	return append(out, over)
}

// OnlineFigure returns the repository's online companion experiment
// "onl1": the NSU axis of Fig. 1 replayed as an open system. Dual-
// criticality universes of 64 tasks on 8 cores arrive by a Poisson
// process whose standing load (Little's law: Rate x MeanLifetime = 80
// tasks, capped by the universe) keeps the system saturated, so the
// admission rate falls and the shed rate rises as NSU scales the
// universe's utilization — the online counterpart of the paper's
// schedulability cliff. CA-TPA, FFD and Hybrid run on the default
// EDF-VD backend plus CA-TPA on AMC-rtb, exercising the delta
// machinery of both backends.
func OnlineFigure(sets int, seed int64) *Sweep {
	return &Sweep{
		Name:   "onl1",
		Title:  "Online 1: admission under varying NSU",
		Param:  "NSU",
		Values: []float64{0.8, 1.0, 1.2, 1.4, 1.6},
		Apply: func(p *Params, x float64) {
			p.NSU = x
			p.K = 2
			p.M = 8
			p.N = taskgen.IntRange{Lo: 64, Hi: 64}
		},
		Sets: sets,
		Seed: seed,
		Variants: []Variant{
			{Scheme: partition.CATPA},
			{Scheme: partition.FFD},
			{Scheme: partition.Hybrid},
			{Scheme: partition.CATPA, Backend: fpamc.BackendName},
		},
		Scenario: &OnlineScenario{
			Process: taskgen.Poisson{Rate: 0.08, MeanLifetime: 1000},
			Horizon: 4000,
		},
	}
}
