package experiments

import (
	"context"
	"testing"

	"catpa/internal/obs"
	"catpa/internal/partition"
	"catpa/internal/taskgen"
)

// TestSweepMetricsAgreeWithCells proves the metrics layer's counting
// invariant against the sweep's own aggregates: for every scheme, the
// accepted counter equals the summed Sched hits across points, the
// rejected counter the summed misses, and accepted + rejected equals
// sweep.sets.total. The cells are what the CSV output renders, so this
// is the metrics/CSV agreement proof at the worker-pool level.
func TestSweepMetricsAgreeWithCells(t *testing.T) {
	s := smallSweep(90, 3)
	base := s.Apply
	s.Apply = func(p *Params, x float64) { shrink(p); base(p, x) }

	m := NewSweepMetrics(obs.NewRegistry())
	res, err := s.RunContext(context.Background(), &RunConfig{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}

	wantTotal := int64(s.Sets * len(s.Values))
	if got := m.SetsTotal(); got != wantTotal {
		t.Errorf("sweep.sets.total = %d, want %d", got, wantTotal)
	}
	if got := m.Quarantined(); got != 0 {
		t.Errorf("sweep.sets.quarantined = %d, want 0", got)
	}
	for si, sch := range partition.Schemes {
		var hits, n int64
		for _, p := range res.Points {
			hits += p.Cells[si].Sched.Hits()
			n += p.Cells[si].Sched.N()
		}
		if got := m.Accepted(sch); got != hits {
			t.Errorf("%s: accepted = %d, want %d (summed cell hits)", sch, got, hits)
		}
		if got := m.Rejected(sch); got != n-hits {
			t.Errorf("%s: rejected = %d, want %d (summed cell misses)", sch, got, n-hits)
		}
		if m.Accepted(sch)+m.Rejected(sch) != m.SetsTotal() {
			t.Errorf("%s: accepted + rejected = %d, want sets.total = %d",
				sch, m.Accepted(sch)+m.Rejected(sch), m.SetsTotal())
		}
	}

	// Every set contributes exactly one observation per stage.
	for _, h := range []*obs.Histogram{m.genSeconds, m.partSeconds, m.anaSeconds} {
		if got := h.Count(); got != wantTotal {
			t.Errorf("%s: count = %d, want %d", h.Name(), got, wantTotal)
		}
	}
}

// TestInstrumentedResultsMatchUninstrumented: attaching metrics must
// not change a single verdict or mean — the instrumented path is the
// same Prepare/Place/Summarize sequence with clock reads around it.
func TestInstrumentedResultsMatchUninstrumented(t *testing.T) {
	mk := func() *Sweep {
		s := smallSweep(60, 2)
		base := s.Apply
		s.Apply = func(p *Params, x float64) { shrink(p); base(p, x) }
		return s
	}
	plain := mk().Run()
	inst, err := mk().RunContext(context.Background(),
		&RunConfig{Metrics: NewSweepMetrics(obs.NewRegistry())})
	if err != nil {
		t.Fatal(err)
	}
	for pi := range plain.Points {
		for si := range plain.Points[pi].Cells {
			a, b := plain.Points[pi].Cells[si], inst.Points[pi].Cells[si]
			if a != b {
				t.Errorf("point %d scheme %d: instrumented cell %+v != plain %+v", pi, si, b, a)
			}
		}
	}
}

// TestQuarantineCountsAsRejectedEverywhere: a quarantined set bumps
// sets.total, sets.quarantined and every scheme's rejected counter —
// exactly mirroring the Sched.Add(false) markers in the cells.
func TestQuarantineCountsAsRejectedEverywhere(t *testing.T) {
	s := smallSweep(30, 2)
	base := s.Apply
	s.Apply = func(p *Params, x float64) { shrink(p); base(p, x) }

	m := NewSweepMetrics(obs.NewRegistry())
	res, err := s.RunContext(context.Background(), &RunConfig{
		Metrics: m,
		Hook:    panicOnSet{point: 1, set: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 1 {
		t.Fatalf("quarantined = %v, want exactly one", res.Quarantined)
	}
	if got := m.Quarantined(); got != 1 {
		t.Errorf("sweep.sets.quarantined = %d, want 1", got)
	}
	wantTotal := int64(s.Sets * len(s.Values))
	if got := m.SetsTotal(); got != wantTotal {
		t.Errorf("sweep.sets.total = %d, want %d (quarantined sets still count)", got, wantTotal)
	}
	for si, sch := range partition.Schemes {
		var hits int64
		for _, p := range res.Points {
			hits += p.Cells[si].Sched.Hits()
		}
		if got := m.Accepted(sch); got != hits {
			t.Errorf("%s: accepted = %d, want %d", sch, got, hits)
		}
		if m.Accepted(sch)+m.Rejected(sch) != wantTotal {
			t.Errorf("%s: accepted + rejected = %d, want %d", sch, m.Accepted(sch)+m.Rejected(sch), wantTotal)
		}
	}
}

// panicOnSet is a minimal fault hook (the full-featured one lives in
// internal/runner/faultinject, which this package cannot import).
type panicOnSet struct{ point, set int }

func (h panicOnSet) BeforeSet(point, set int) {
	if point == h.point && set == h.set {
		panic("metrics test: injected")
	}
}

// TestInstrumentedSetEvaluationZeroAllocs proves the tentpole's hot
// path guarantee: runSet with metrics attached performs zero heap
// allocations in the steady state, preserving the worker pool's
// allocation-free contract from the persistent-pipeline work.
func TestInstrumentedSetEvaluationZeroAllocs(t *testing.T) {
	params := DefaultParams()
	shrink(&params)
	cfg := params.genConfig()
	opts := partition.Options{Alpha: params.Alpha}
	m := NewSweepMetrics(obs.NewRegistry())
	variants := DefaultVariants()
	jb := job{
		cfg:      &cfg,
		seed:     7,
		m:        params.M,
		k:        params.K,
		opts:     &opts,
		variants: variants,
		groups:   buildGroups(variants),
		sets:     1 << 20,
		metrics:  m,
		row:      make([]Cell, len(variants)),
	}
	gen := taskgen.NewGenerator()
	parts := make(map[string]*partition.Partitioner)
	armWorker(parts, &jb)
	var evals []partition.Eval
	// Warm up across the N range so every amortized buffer reaches its
	// steady-state size, then revisit an already-seen set index (the
	// same discipline as the taskgen steady-state test).
	for set := 0; set < 64; set++ {
		if q := runSet(gen, parts, &evals, &jb, set); q != nil {
			t.Fatalf("unexpected quarantine: %v", q)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if q := runSet(gen, parts, &evals, &jb, 3); q != nil {
			t.Fatalf("unexpected quarantine: %v", q)
		}
	})
	if allocs != 0 {
		t.Fatalf("instrumented runSet allocates %v times per set, want 0", allocs)
	}
}

// TestVariantAccessorsAndResume exercises the variant-addressed
// counter accessors and the checkpoint fallback path directly: resumed
// cells restore exact per-variant totals, unknown variants read zero.
func TestVariantAccessorsAndResume(t *testing.T) {
	variants := []Variant{
		{Scheme: partition.CATPA},
		{Scheme: partition.CATPA, Backend: "amcrtb"},
	}
	m := NewSweepMetrics(obs.NewRegistry(), variants...)

	cells := make([]Cell, len(variants))
	for i := 0; i < 10; i++ {
		cells[0].Sched.Add(i < 7)
		cells[1].Sched.Add(i < 4)
	}
	m.AddResumedPoint(cells, 2)

	if got := m.SetsTotal(); got != 10 {
		t.Errorf("SetsTotal = %d, want 10", got)
	}
	if got := m.Quarantined(); got != 2 {
		t.Errorf("Quarantined = %d, want 2", got)
	}
	if a, r := m.AcceptedVariant(variants[0]), m.RejectedVariant(variants[0]); a != 7 || r != 3 {
		t.Errorf("default variant: accepted %d rejected %d, want 7/3", a, r)
	}
	if a, r := m.AcceptedVariant(variants[1]), m.RejectedVariant(variants[1]); a != 4 || r != 6 {
		t.Errorf("amcrtb variant: accepted %d rejected %d, want 4/6", a, r)
	}
	// The scheme-addressed accessors resolve to the default variant.
	if got := m.Accepted(partition.CATPA); got != 7 {
		t.Errorf("Accepted(CATPA) = %d, want 7", got)
	}
	// A variant outside the sweep reads zero, not a panic or mix-up.
	other := Variant{Scheme: partition.WFD}
	if m.AcceptedVariant(other) != 0 || m.RejectedVariant(other) != 0 {
		t.Error("unknown variant should read 0")
	}

	// An empty resumed record (no cells) only counts quarantines.
	m.AddResumedPoint(nil, 1)
	if got := m.Quarantined(); got != 3 {
		t.Errorf("Quarantined after empty record = %d, want 3", got)
	}
	if got := m.SetsTotal(); got != 10 {
		t.Errorf("SetsTotal after empty record = %d, want 10", got)
	}
}

// TestQuarantineString pins the reproduction-triple rendering the CLI
// prints for quarantined sets.
func TestQuarantineString(t *testing.T) {
	q := Quarantine{Point: 1, Set: 7, Seed: 9, Err: "boom"}
	if got, want := q.String(), "seed=9 point=1 set=7: boom"; got != want {
		t.Errorf("Quarantine.String() = %q, want %q", got, want)
	}
}
