// Package experiments is the evaluation harness that regenerates every
// figure of Han et al. (ICPP 2016), Section IV: parameter sweeps over
// synthetic task-set populations, comparing the five partitioning
// schemes on four metrics:
//
//	(a) schedulability ratio,
//	(b) system utilization U_sys        (schedulable sets only),
//	(c) average core utilization U_avg  (schedulable sets only),
//	(d) workload imbalance factor       (schedulable sets only).
//
// Each data point aggregates Sets independently generated task sets;
// all schemes are evaluated on the same sets (paired comparison, as in
// the paper). Generation is deterministic in (Seed, point, set index),
// so results are reproducible and independent of the worker count for
// the schedulability ratio (exact counts) and reproducible for a fixed
// worker count for the mean metrics.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"catpa/internal/obs"
	"catpa/internal/partition"
	"catpa/internal/stats"
	"catpa/internal/taskgen"
	"catpa/internal/textplot"
)

// Params is one experimental parameter point (the paper's defaults
// plus the value under study).
type Params struct {
	M     int
	K     int
	NSU   float64
	Alpha float64
	IFC   taskgen.Range
	N     taskgen.IntRange
}

// DefaultParams returns the paper's default point: M=8, K=4, NSU=0.6,
// alpha=0.7, IFC=0.4, N ~ U[40,200].
func DefaultParams() Params {
	return Params{
		M:     8,
		K:     4,
		NSU:   0.6,
		Alpha: partition.DefaultAlpha,
		IFC:   taskgen.Range{Lo: 0.4, Hi: 0.4},
		N:     taskgen.IntRange{Lo: 40, Hi: 200},
	}
}

// genConfig converts the point to a generator configuration.
func (p Params) genConfig() taskgen.Config {
	cfg := taskgen.DefaultConfig()
	cfg.M = p.M
	cfg.K = p.K
	cfg.NSU = p.NSU
	cfg.IFC = p.IFC
	cfg.N = p.N
	return cfg
}

// Sweep describes one figure: a parameter axis and the population per
// point.
type Sweep struct {
	// Name identifies the experiment ("fig1".."fig5").
	Name string
	// Title is the figure caption.
	Title string
	// Param is the varied parameter's axis label.
	Param string
	// Values is the X axis.
	Values []float64
	// Apply installs one X value into a parameter point.
	Apply func(*Params, float64)
	// Sets is the number of task sets per point (the paper uses
	// 50,000; the CLI default is lower for turnaround).
	Sets int
	// Seed roots the deterministic generation.
	Seed int64
	// Workers bounds the worker pool; 0 selects GOMAXPROCS.
	Workers int
	// Variants lists the (scheme, backend) pairs to compare; nil
	// selects all five schemes on the default EDF-VD backend.
	Variants []Variant
	// Scenario selects the evaluation protocol per replication; nil
	// selects the paper's static protocol (generate, partition once,
	// record the verdict).
	Scenario Scenario
}

// ActiveVariants resolves the sweep's variant list: Variants when set,
// the five default-backend schemes otherwise. Cells, metrics and
// chart series are indexed like this list.
func (s *Sweep) ActiveVariants() []Variant {
	if len(s.Variants) > 0 {
		return s.Variants
	}
	return DefaultVariants()
}

// Cell aggregates one (point, variant) cell of a sweep. For online
// sweeps Sched counts clean replications (no arrival shed) and the
// conditional means aggregate the end-of-horizon system state of clean
// replications, so the four static charts keep their meaning; Online
// carries the arrival-resolved aggregates. Static sweeps leave Online
// nil, which the checkpoint journal omits — version-1 records decode
// and re-encode byte-identically.
type Cell struct {
	Sched  stats.Ratio
	Usys   stats.Mean
	Uavg   stats.Mean
	Imb    stats.Mean
	Online *OnlineCell `json:"Online,omitempty"`
}

func (c *Cell) merge(o *Cell) {
	c.Sched.Merge(&o.Sched)
	c.Usys.Merge(&o.Usys)
	c.Uavg.Merge(&o.Uavg)
	c.Imb.Merge(&o.Imb)
	if o.Online != nil {
		if c.Online == nil {
			c.Online = newOnlineCell(len(o.Online.UtilOverTime))
		}
		c.Online.merge(o.Online)
	}
}

// Point is one X value's results across variants (indexed like the
// sweep's variant list).
type Point struct {
	X     float64
	Cells []Cell
}

// Result is a finished sweep. Points whose evaluation was skipped (via
// RunConfig.Skip) or not reached before cancellation carry a nil Cells
// slice; the fault-tolerant runner fills skipped points from its
// checkpoint before the result is consumed.
type Result struct {
	Sweep  *Sweep
	Points []Point
	// Quarantined lists every task set whose evaluation panicked,
	// ordered by (point, set index). Each quarantined set is counted
	// as unschedulable for every scheme, so totals stay exact.
	Quarantined []Quarantine
}

// SetHook observes the start of every task-set evaluation. It runs in
// the worker goroutine immediately before the (point, set) pair is
// generated and partitioned, and it may panic or stall: the harness
// must quarantine the former and tolerate the latter without altering
// any count. Production runs pass a nil hook; the only implementation
// lives in internal/runner/faultinject.
type SetHook interface {
	BeforeSet(point, set int)
}

// Quarantine is the reproduction handle of one task set whose
// evaluation panicked: regenerating GenerateIndexed(cfg, Seed, Set) at
// the point's parameters replays the exact input. The set is counted
// as unschedulable for every scheme in its point's cells.
type Quarantine struct {
	// Point is the index into Sweep.Values; X its parameter value.
	Point int     `json:"point"`
	X     float64 `json:"x"`
	// Set is the task-set index within the point.
	Set int `json:"set"`
	// Seed is the sweep seed the set was generated from.
	Seed int64 `json:"seed"`
	// Err is the recovered panic value, rendered as text.
	Err string `json:"err"`
}

// String renders the reproduction triple and the panic message.
func (q Quarantine) String() string {
	return fmt.Sprintf("seed=%d point=%d set=%d: %s", q.Seed, q.Point, q.Set, q.Err)
}

// RunConfig tunes RunContext beyond the sweep definition itself. The
// zero value (or a nil *RunConfig) reproduces Run's behaviour.
type RunConfig struct {
	// Skip reports whether the point at the given index is already
	// complete and must not be recomputed (checkpoint resume). Skipped
	// points keep a nil Cells slice in the result.
	Skip func(point int) bool
	// OnPoint runs after each point completes, in sweep order, with
	// the point's results and its quarantined sets. The callback runs
	// on the sweep goroutine: the checkpoint journal is flushed before
	// the next point starts.
	OnPoint func(point int, p *Point, quarantined []Quarantine)
	// Hook is the fault-injection surface; nil in production.
	Hook SetHook
	// Metrics attaches the observability surface (counters and stage
	// timings, see NewSweepMetrics); nil runs without instrumentation.
	Metrics *SweepMetrics
}

// job is one stripe of one sweep point: the worker evaluates every
// set index congruent to first modulo stride and accumulates into its
// private row (and quarantine list), then signals done.
type job struct {
	cfg      *taskgen.Config
	seed     int64
	m, k     int
	opts     *partition.Options
	variants []Variant
	groups   []backendGroup
	sets     int
	first    int
	stride   int
	point    int
	x        float64
	hook     SetHook
	metrics  *SweepMetrics
	row      []Cell
	quar     *[]Quarantine
	done     *sync.WaitGroup
}

// pool is a persistent worker pool. Each worker owns one scenario
// worker — for the static protocol, one taskgen.Generator and one
// partition.Partitioner per analysis backend — for its whole lifetime,
// so the steady state of a sweep — generate, partition, aggregate —
// performs no heap allocations regardless of how many points and
// figures are executed (on backends whose analysis is itself
// allocation-free). Jobs are stripes of set indices; determinism is
// preserved because stripe membership depends only on the worker
// count, not on scheduling order, and rows are merged in stripe order.
type pool struct {
	sc   Scenario
	jobs chan job
}

func newPool(workers int, sc Scenario) *pool {
	p := &pool{sc: sc, jobs: make(chan job)}
	for w := 0; w < workers; w++ {
		go p.worker()
	}
	return p
}

// close shuts the pool down; idle workers exit.
func (p *pool) close() { close(p.jobs) }

func (p *pool) worker() {
	sw := p.sc.newWorker()
	// jb lives for the goroutine: passing its address through the
	// scenario interface would otherwise heap-allocate every job.
	var jb job
	for jb = range p.jobs {
		sw.arm(&jb)
		for set := jb.first; set < jb.sets; set += jb.stride {
			q := sw.evalSet(&jb, set)
			if m := jb.metrics; m != nil {
				m.setsTotal.Inc()
			}
			if q == nil {
				continue
			}
			// Panic quarantine: the set counts as unschedulable for
			// every variant, so per-variant totals stay exact, and the
			// reproduction triple is recorded. The scenario worker's
			// scratch state may have been abandoned mid-update, so the
			// pool discards it and arms a fresh one before the next
			// set.
			*jb.quar = append(*jb.quar, *q)
			for vi := range jb.variants {
				jb.row[vi].Sched.Add(false)
			}
			if m := jb.metrics; m != nil {
				m.setsQuarantined.Inc()
				for vi := range jb.variants {
					m.rejected[vi].Inc()
				}
			}
			sw = p.sc.newWorker()
			sw.arm(&jb)
		}
		jb.done.Done()
	}
}

// armWorker ensures the worker owns one correctly-dimensioned
// Partitioner per backend group of the job, creating missing ones and
// re-dimensioning survivors. RunContext validates every backend
// against the registry upfront, so the lookup cannot fail here.
func armWorker(parts map[string]*partition.Partitioner, jb *job) {
	for _, g := range jb.groups {
		if part, ok := parts[g.backend]; ok {
			part.Reset(jb.m, jb.k)
			continue
		}
		be, err := partition.NewBackend(g.backend)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		parts[g.backend] = partition.NewWithBackend(jb.m, jb.k, be)
	}
}

// runSet evaluates one (point, set) pair, converting a panic — from
// the fault-injection hook, the generator or the partitioning analysis
// — into a Quarantine instead of taking down the process. Accumulation
// into the row happens only after evaluation returns, so a quarantined
// set contributes nothing but its Sched.Add(false) markers (and its
// rejected counters, added by the worker loop).
func runSet(gen *taskgen.Generator, parts map[string]*partition.Partitioner, evals *[]partition.Eval, jb *job, set int) (q *Quarantine) {
	defer func() {
		if r := recover(); r != nil {
			q = &Quarantine{Point: jb.point, X: jb.x, Set: set, Seed: jb.seed, Err: fmt.Sprint(r)}
		}
	}()
	if jb.hook != nil {
		jb.hook.BeforeSet(jb.point, set)
	}
	if cap(*evals) < len(jb.variants) {
		*evals = make([]partition.Eval, len(jb.variants))
	} else {
		*evals = (*evals)[:len(jb.variants)]
	}
	m := jb.metrics
	if m == nil {
		ts := gen.Generate(jb.cfg, jb.seed, set)
		for _, g := range jb.groups {
			// Prepare + Place + Summarize is exactly EvaluateAll's body,
			// so each group's verdicts are bit-identical to EvaluateAll
			// over its schemes; the set is prepared once per backend.
			part := parts[g.backend]
			part.Prepare(ts)
			for i, s := range g.schemes {
				part.Place(s, jb.opts)
				(*evals)[g.idx[i]] = part.Summarize()
			}
		}
	} else {
		// Instrumented path: identical call sequence, with per-stage
		// spans accumulated into one observation per stage per set
		// (preparation counts as placing, as before). Everything here
		// is atomics on preallocated storage — zero allocations.
		sp := obs.StartSpan(m.genSeconds)
		ts := gen.Generate(jb.cfg, jb.seed, set)
		sp.End()
		var placing, analyzing time.Duration
		for _, g := range jb.groups {
			part := parts[g.backend]
			tp := time.Now()
			part.Prepare(ts)
			placing += time.Since(tp)
			for i, s := range g.schemes {
				t0 := time.Now()
				part.Place(s, jb.opts)
				t1 := time.Now()
				ev := part.Summarize()
				analyzing += time.Since(t1)
				placing += t1.Sub(t0)
				(*evals)[g.idx[i]] = ev
			}
		}
		m.partSeconds.Observe(placing)
		m.anaSeconds.Observe(analyzing)
	}
	for vi := range jb.variants {
		ev, cell := &(*evals)[vi], &jb.row[vi]
		cell.Sched.Add(ev.Feasible)
		if ev.Feasible {
			cell.Usys.Add(ev.Usys)
			cell.Uavg.Add(ev.Uavg)
			cell.Imb.Add(ev.Imbalance)
		}
		if m != nil {
			if ev.Feasible {
				m.accepted[vi].Inc()
			} else {
				m.rejected[vi].Inc()
			}
		}
	}
	return nil
}

// Run executes the sweep to completion. It is RunContext with a
// background context and default configuration.
func (s *Sweep) Run() *Result {
	res, err := s.RunContext(context.Background(), nil)
	if err != nil {
		// Unreachable: a background context never cancels and no other
		// error path exists.
		panic(fmt.Sprintf("experiments: Run: %v", err))
	}
	return res
}

// RunContext executes the sweep under a context, point by point.
// Cancellation is honoured at point boundaries: the in-flight point
// drains (its workers finish their stripes, keeping its counts exact),
// OnPoint fires for it, and the remaining points are left with nil
// Cells; the partial result is returned together with ctx.Err(). A nil
// cfg selects the defaults (no skipping, no callbacks, no hook).
func (s *Sweep) RunContext(ctx context.Context, cfg *RunConfig) (*Result, error) {
	if cfg == nil {
		cfg = &RunConfig{}
	}
	variants := s.ActiveVariants()
	if err := s.validateVariants(variants); err != nil {
		return nil, err
	}
	sc := s.scenario()
	if err := sc.validate(); err != nil {
		return nil, err
	}
	groups := buildGroups(variants)
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pl := newPool(workers, sc)
	defer pl.close()
	res := &Result{Sweep: s, Points: make([]Point, len(s.Values))}
	for pi, x := range s.Values {
		res.Points[pi] = Point{X: x}
		if cfg.Skip != nil && cfg.Skip(pi) {
			continue
		}
		if err := ctx.Err(); err != nil {
			return res, err
		}
		var quar []Quarantine
		res.Points[pi], quar = s.runPoint(pl, pi, x, variants, groups, workers, cfg.Hook, cfg.Metrics)
		res.Quarantined = append(res.Quarantined, quar...)
		if cfg.OnPoint != nil {
			cfg.OnPoint(pi, &res.Points[pi], quar)
		}
	}
	return res, nil
}

// validateVariants checks every variant's backend against the
// registry and every sweep point's K against the backend's level
// bound, so misconfiguration surfaces as one error before any worker
// runs (a K overflow inside the pool would crash the process, not
// quarantine).
func (s *Sweep) validateVariants(variants []Variant) error {
	backends := make(map[string]partition.Backend)
	for _, v := range variants {
		name := v.backendName()
		if _, ok := backends[name]; ok {
			continue
		}
		be, err := partition.NewBackend(name)
		if err != nil {
			return fmt.Errorf("experiments: variant %s: %v", v, err)
		}
		backends[name] = be
	}
	for _, x := range s.Values {
		params := DefaultParams()
		if s.Apply != nil {
			s.Apply(&params, x)
		}
		for name, be := range backends {
			if maxK := be.MaxLevels(); maxK > 0 && params.K > maxK {
				return fmt.Errorf("experiments: point %s=%v needs K=%d but backend %s supports at most K=%d",
					s.Param, x, params.K, name, maxK)
			}
		}
	}
	return nil
}

// runPoint evaluates one X value: Sets task sets, each partitioned by
// every variant. The schedulability counts are exact and therefore
// independent of the worker count; the mean metrics use compensated
// accumulation, so they agree across worker counts to ~1e-9 even
// though the per-stripe summation order differs.
func (s *Sweep) runPoint(pl *pool, pi int, x float64, variants []Variant, groups []backendGroup, workers int, hook SetHook, metrics *SweepMetrics) (Point, []Quarantine) {
	params := DefaultParams()
	if s.Apply != nil {
		s.Apply(&params, x)
	}
	cfg := params.genConfig()
	// All points share the seed stream: points whose generator config
	// coincides (e.g. the alpha sweep, which only changes a heuristic
	// knob) then evaluate literally identical task-set populations,
	// reproducing the paper's flat baseline curves in Fig. 3 exactly.
	pointSeed := s.Seed
	opts := partition.Options{Alpha: params.Alpha}

	// Each worker accumulates a private cell row (and quarantine list)
	// over its stripe of set indices, then rows are merged in stripe
	// order.
	rows := make([][]Cell, workers)
	quars := make([][]Quarantine, workers)
	var done sync.WaitGroup
	done.Add(workers)
	for w := 0; w < workers; w++ {
		rows[w] = make([]Cell, len(variants))
		pl.jobs <- job{
			cfg:      &cfg,
			seed:     pointSeed,
			m:        params.M,
			k:        params.K,
			opts:     &opts,
			variants: variants,
			groups:   groups,
			sets:     s.Sets,
			first:    w,
			stride:   workers,
			point:    pi,
			x:        x,
			hook:     hook,
			metrics:  metrics,
			row:      rows[w],
			quar:     &quars[w],
			done:     &done,
		}
	}
	done.Wait()

	p := Point{X: x, Cells: make([]Cell, len(variants))}
	var quar []Quarantine
	for w := 0; w < workers; w++ {
		for vi := range variants {
			p.Cells[vi].merge(&rows[w][vi])
		}
		quar = append(quar, quars[w]...)
	}
	// Stripe membership depends on the worker count; sorting by set
	// index makes the quarantine report deterministic regardless.
	sort.Slice(quar, func(i, j int) bool { return quar[i].Set < quar[j].Set })
	return p, quar
}

// Metric identifies one of the four sub-figures.
type Metric int

// The four metrics of every figure.
const (
	SchedRatio Metric = iota
	Usys
	Uavg
	Imbalance
)

// MetricNames maps metrics to sub-figure letters and captions.
var MetricNames = map[Metric]string{
	SchedRatio: "(a) schedulability ratio",
	Usys:       "(b) system utilization U_sys",
	Uavg:       "(c) average core utilization U_avg",
	Imbalance:  "(d) workload imbalance factor",
}

// Metrics lists the four metrics in sub-figure order.
var Metrics = []Metric{SchedRatio, Usys, Uavg, Imbalance}

// value extracts a metric from a cell.
func (c *Cell) value(m Metric) float64 {
	switch m {
	case SchedRatio:
		return c.Sched.Value()
	case Usys:
		return c.Usys.Mean()
	case Uavg:
		return c.Uavg.Mean()
	case Imbalance:
		return c.Imb.Mean()
	default:
		panic(fmt.Sprintf("experiments: unknown metric %d", m))
	}
}

// Chart converts one metric of the result into a textplot chart.
//
//mc:deterministic chart series order is part of the golden output
func (r *Result) Chart(m Metric) *textplot.Chart {
	variants := r.Sweep.ActiveVariants()
	ch := &textplot.Chart{
		Title:  fmt.Sprintf("%s %s", r.Sweep.Title, MetricNames[m]),
		XLabel: r.Sweep.Param,
		YLabel: MetricNames[m],
		X:      r.Sweep.Values,
	}
	for vi, v := range variants {
		series := textplot.Series{Label: v.String(), Y: make([]float64, len(r.Points))}
		for pi := range r.Points {
			series.Y[pi] = r.Points[pi].Cells[vi].value(m)
		}
		ch.Series = append(ch.Series, series)
	}
	return ch
}

// Charts returns all four sub-figures: the static metric family, or
// the arrival-resolved online family when the sweep ran an
// OnlineScenario.
//
//mc:deterministic chart order is part of the golden output
func (r *Result) Charts() []*textplot.Chart {
	if o, ok := r.Sweep.scenario().(*OnlineScenario); ok {
		return r.onlineCharts(o)
	}
	out := make([]*textplot.Chart, 0, len(Metrics))
	for _, m := range Metrics {
		out = append(out, r.Chart(m))
	}
	return out
}

// Value returns the metric for (point index, scheme index); a typed
// accessor for tests and reports.
func (r *Result) Value(pi, si int, m Metric) float64 {
	return r.Points[pi].Cells[si].value(m)
}
