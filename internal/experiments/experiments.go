// Package experiments is the evaluation harness that regenerates every
// figure of Han et al. (ICPP 2016), Section IV: parameter sweeps over
// synthetic task-set populations, comparing the five partitioning
// schemes on four metrics:
//
//	(a) schedulability ratio,
//	(b) system utilization U_sys        (schedulable sets only),
//	(c) average core utilization U_avg  (schedulable sets only),
//	(d) workload imbalance factor       (schedulable sets only).
//
// Each data point aggregates Sets independently generated task sets;
// all schemes are evaluated on the same sets (paired comparison, as in
// the paper). Generation is deterministic in (Seed, point, set index),
// so results are reproducible and independent of the worker count for
// the schedulability ratio (exact counts) and reproducible for a fixed
// worker count for the mean metrics.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"catpa/internal/partition"
	"catpa/internal/stats"
	"catpa/internal/taskgen"
	"catpa/internal/textplot"
)

// Params is one experimental parameter point (the paper's defaults
// plus the value under study).
type Params struct {
	M     int
	K     int
	NSU   float64
	Alpha float64
	IFC   taskgen.Range
	N     taskgen.IntRange
}

// DefaultParams returns the paper's default point: M=8, K=4, NSU=0.6,
// alpha=0.7, IFC=0.4, N ~ U[40,200].
func DefaultParams() Params {
	return Params{
		M:     8,
		K:     4,
		NSU:   0.6,
		Alpha: partition.DefaultAlpha,
		IFC:   taskgen.Range{Lo: 0.4, Hi: 0.4},
		N:     taskgen.IntRange{Lo: 40, Hi: 200},
	}
}

// genConfig converts the point to a generator configuration.
func (p Params) genConfig() taskgen.Config {
	cfg := taskgen.DefaultConfig()
	cfg.M = p.M
	cfg.K = p.K
	cfg.NSU = p.NSU
	cfg.IFC = p.IFC
	cfg.N = p.N
	return cfg
}

// Sweep describes one figure: a parameter axis and the population per
// point.
type Sweep struct {
	// Name identifies the experiment ("fig1".."fig5").
	Name string
	// Title is the figure caption.
	Title string
	// Param is the varied parameter's axis label.
	Param string
	// Values is the X axis.
	Values []float64
	// Apply installs one X value into a parameter point.
	Apply func(*Params, float64)
	// Sets is the number of task sets per point (the paper uses
	// 50,000; the CLI default is lower for turnaround).
	Sets int
	// Seed roots the deterministic generation.
	Seed int64
	// Workers bounds the worker pool; 0 selects GOMAXPROCS.
	Workers int
	// Schemes lists the heuristics to compare; nil selects all five.
	Schemes []partition.Scheme
}

// Cell aggregates one (point, scheme) cell of a sweep.
type Cell struct {
	Sched stats.Ratio
	Usys  stats.Mean
	Uavg  stats.Mean
	Imb   stats.Mean
}

func (c *Cell) merge(o *Cell) {
	c.Sched.Merge(&o.Sched)
	c.Usys.Merge(&o.Usys)
	c.Uavg.Merge(&o.Uavg)
	c.Imb.Merge(&o.Imb)
}

// Point is one X value's results across schemes (indexed like the
// sweep's scheme list).
type Point struct {
	X     float64
	Cells []Cell
}

// Result is a finished sweep.
type Result struct {
	Sweep  *Sweep
	Points []Point
}

// job is one stripe of one sweep point: the worker evaluates every
// set index congruent to first modulo stride and accumulates into its
// private row, then signals done.
type job struct {
	cfg     *taskgen.Config
	seed    int64
	m, k    int
	opts    *partition.Options
	schemes []partition.Scheme
	sets    int
	first   int
	stride  int
	row     []Cell
	done    *sync.WaitGroup
}

// pool is a persistent worker pool. Each worker owns one
// taskgen.Generator and one partition.Partitioner for its whole
// lifetime, so the steady state of a sweep — generate, partition,
// aggregate — performs no heap allocations regardless of how many
// points and figures are executed. Jobs are stripes of set indices;
// determinism is preserved because stripe membership depends only on
// the worker count, not on scheduling order, and rows are merged in
// stripe order.
type pool struct {
	jobs chan job
}

func newPool(workers int) *pool {
	p := &pool{jobs: make(chan job)}
	for w := 0; w < workers; w++ {
		go p.worker()
	}
	return p
}

// close shuts the pool down; idle workers exit.
func (p *pool) close() { close(p.jobs) }

func (p *pool) worker() {
	gen := taskgen.NewGenerator()
	var part *partition.Partitioner
	var evals []partition.Eval
	for jb := range p.jobs {
		if part == nil {
			part = partition.New(jb.m, jb.k)
		} else {
			part.Reset(jb.m, jb.k)
		}
		for set := jb.first; set < jb.sets; set += jb.stride {
			ts := gen.Generate(jb.cfg, jb.seed, set)
			evals = part.EvaluateAll(ts, jb.schemes, jb.opts, evals[:0])
			for si := range jb.schemes {
				ev, cell := &evals[si], &jb.row[si]
				cell.Sched.Add(ev.Feasible)
				if ev.Feasible {
					cell.Usys.Add(ev.Usys)
					cell.Uavg.Add(ev.Uavg)
					cell.Imb.Add(ev.Imbalance)
				}
			}
		}
		jb.done.Done()
	}
}

// Run executes the sweep.
func (s *Sweep) Run() *Result {
	schemes := s.Schemes
	if len(schemes) == 0 {
		schemes = partition.Schemes
	}
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pl := newPool(workers)
	defer pl.close()
	res := &Result{Sweep: s, Points: make([]Point, len(s.Values))}
	for pi, x := range s.Values {
		res.Points[pi] = s.runPoint(pl, x, schemes, workers)
	}
	return res
}

// runPoint evaluates one X value: Sets task sets, each partitioned by
// every scheme. The schedulability counts are exact and therefore
// independent of the worker count; the mean metrics use compensated
// accumulation, so they agree across worker counts to ~1e-9 even
// though the per-stripe summation order differs.
func (s *Sweep) runPoint(pl *pool, x float64, schemes []partition.Scheme, workers int) Point {
	params := DefaultParams()
	if s.Apply != nil {
		s.Apply(&params, x)
	}
	cfg := params.genConfig()
	// All points share the seed stream: points whose generator config
	// coincides (e.g. the alpha sweep, which only changes a heuristic
	// knob) then evaluate literally identical task-set populations,
	// reproducing the paper's flat baseline curves in Fig. 3 exactly.
	pointSeed := s.Seed
	opts := partition.Options{Alpha: params.Alpha}

	// Each worker accumulates a private cell row over its stripe of
	// set indices, then rows are merged in stripe order.
	rows := make([][]Cell, workers)
	var done sync.WaitGroup
	done.Add(workers)
	for w := 0; w < workers; w++ {
		rows[w] = make([]Cell, len(schemes))
		pl.jobs <- job{
			cfg:     &cfg,
			seed:    pointSeed,
			m:       params.M,
			k:       params.K,
			opts:    &opts,
			schemes: schemes,
			sets:    s.Sets,
			first:   w,
			stride:  workers,
			row:     rows[w],
			done:    &done,
		}
	}
	done.Wait()

	p := Point{X: x, Cells: make([]Cell, len(schemes))}
	for w := 0; w < workers; w++ {
		for si := range schemes {
			p.Cells[si].merge(&rows[w][si])
		}
	}
	return p
}

// Metric identifies one of the four sub-figures.
type Metric int

// The four metrics of every figure.
const (
	SchedRatio Metric = iota
	Usys
	Uavg
	Imbalance
)

// MetricNames maps metrics to sub-figure letters and captions.
var MetricNames = map[Metric]string{
	SchedRatio: "(a) schedulability ratio",
	Usys:       "(b) system utilization U_sys",
	Uavg:       "(c) average core utilization U_avg",
	Imbalance:  "(d) workload imbalance factor",
}

// Metrics lists the four metrics in sub-figure order.
var Metrics = []Metric{SchedRatio, Usys, Uavg, Imbalance}

// value extracts a metric from a cell.
func (c *Cell) value(m Metric) float64 {
	switch m {
	case SchedRatio:
		return c.Sched.Value()
	case Usys:
		return c.Usys.Mean()
	case Uavg:
		return c.Uavg.Mean()
	case Imbalance:
		return c.Imb.Mean()
	default:
		panic(fmt.Sprintf("experiments: unknown metric %d", m))
	}
}

// Chart converts one metric of the result into a textplot chart.
func (r *Result) Chart(m Metric) *textplot.Chart {
	schemes := r.Sweep.Schemes
	if len(schemes) == 0 {
		schemes = partition.Schemes
	}
	ch := &textplot.Chart{
		Title:  fmt.Sprintf("%s %s", r.Sweep.Title, MetricNames[m]),
		XLabel: r.Sweep.Param,
		YLabel: MetricNames[m],
		X:      r.Sweep.Values,
	}
	for si, scheme := range schemes {
		series := textplot.Series{Label: scheme.String(), Y: make([]float64, len(r.Points))}
		for pi := range r.Points {
			series.Y[pi] = r.Points[pi].Cells[si].value(m)
		}
		ch.Series = append(ch.Series, series)
	}
	return ch
}

// Charts returns all four sub-figures.
func (r *Result) Charts() []*textplot.Chart {
	out := make([]*textplot.Chart, 0, len(Metrics))
	for _, m := range Metrics {
		out = append(out, r.Chart(m))
	}
	return out
}

// Value returns the metric for (point index, scheme index); a typed
// accessor for tests and reports.
func (r *Result) Value(pi, si int, m Metric) float64 {
	return r.Points[pi].Cells[si].value(m)
}
