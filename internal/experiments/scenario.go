package experiments

import (
	"catpa/internal/partition"
	"catpa/internal/taskgen"
)

// Scenario is the evaluation protocol of a sweep: what "evaluate one
// (point, set) replication" means. The paper's protocol — generate a
// static task set, partition it once, record the verdict — is the
// static scenario every sweep uses by default; OnlineScenario replays
// an arrival-driven event stream through admission sessions instead.
// Implementations live in this package (the worker contract is
// unexported): the sweep machinery — striping, quarantine, checkpoint,
// metrics — is scenario-agnostic and shared.
type Scenario interface {
	// Kind names the protocol in the checkpoint identity. The static
	// scenario is "" so version-1 journals (written before scenarios
	// existed) resume unchanged.
	Kind() string
	// validate reports a configuration error before any worker runs.
	validate() error
	// newWorker returns the per-worker scratch state (generators,
	// partitioners, builders). Workers are confined to one goroutine;
	// after a quarantined replication the pool discards the worker and
	// builds a fresh one, so scratch state abandoned mid-update is
	// never reused.
	newWorker() scenarioWorker
}

// scenarioWorker is one worker's view of a scenario: arm for a job,
// then evaluate its stripe of replications.
type scenarioWorker interface {
	// arm readies the worker for a job (dimension partitioners, size
	// row state). Called once per job and again after a quarantine
	// rebuild, always before evalSet.
	arm(jb *job)
	// evalSet evaluates replication set of the job, accumulating into
	// jb.row, and converts a panic into a Quarantine (nil on success).
	// The caller adds the quarantined set's Sched/rejected markers.
	evalSet(jb *job, set int) *Quarantine
}

// scenario resolves the sweep's protocol: Scenario when set, the
// static paper protocol otherwise.
func (s *Sweep) scenario() Scenario {
	if s.Scenario != nil {
		return s.Scenario
	}
	return staticScenario{}
}

// ScenarioKind names the sweep's protocol for the checkpoint header:
// "" for static sweeps (the version-1 identity), the scenario's kind
// otherwise.
func (s *Sweep) ScenarioKind() string { return s.scenario().Kind() }

// staticScenario is the paper's Table-IV protocol as a Scenario: each
// replication generates one task set and partitions it once per
// variant. Its worker is the original pool worker state, so the
// refactored pipeline evaluates static sweeps bit-identically to the
// pre-scenario harness (the figure goldens prove it).
type staticScenario struct{}

func (staticScenario) Kind() string { return "" }

func (staticScenario) validate() error { return nil }

func (staticScenario) newWorker() scenarioWorker {
	return &staticWorker{
		gen:   taskgen.NewGenerator(),
		parts: make(map[string]*partition.Partitioner),
	}
}

// staticWorker owns one Table-IV generator and one Partitioner per
// analysis backend for its whole lifetime, so the steady state of a
// static sweep — generate, partition, aggregate — performs no heap
// allocations (see TestInstrumentedSetEvaluationZeroAllocs).
type staticWorker struct {
	gen   *taskgen.Generator
	parts map[string]*partition.Partitioner
	evals []partition.Eval
}

func (w *staticWorker) arm(jb *job) { armWorker(w.parts, jb) }

func (w *staticWorker) evalSet(jb *job, set int) *Quarantine {
	return runSet(w.gen, w.parts, &w.evals, jb, set)
}
