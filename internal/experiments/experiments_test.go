package experiments

import (
	"math"
	"strings"
	"testing"

	"catpa/internal/partition"
	"catpa/internal/taskgen"
)

// smallSweep returns a fast two-point sweep for tests.
func smallSweep(sets, workers int) *Sweep {
	return &Sweep{
		Name:     "test",
		Title:    "test sweep",
		Param:    "NSU",
		Values:   []float64{0.4, 0.7},
		Apply:    func(p *Params, x float64) { p.NSU = x },
		Sets:     sets,
		Seed:     1,
		Workers:  workers,
		Variants: DefaultVariants(),
	}
}

func shrink(p *Params) {
	p.M = 4
	p.N = taskgen.IntRange{Lo: 20, Hi: 40}
	p.K = 3
}

func TestSweepRunShape(t *testing.T) {
	s := smallSweep(60, 2)
	base := s.Apply
	s.Apply = func(p *Params, x float64) { shrink(p); base(p, x) }
	r := s.Run()
	if len(r.Points) != 2 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for pi, p := range r.Points {
		if len(p.Cells) != len(partition.Schemes) {
			t.Fatalf("point %d: cells = %d", pi, len(p.Cells))
		}
		for si, c := range p.Cells {
			if c.Sched.N() != 60 {
				t.Errorf("point %d scheme %d: n = %d, want 60", pi, si, c.Sched.N())
			}
		}
	}
}

// TestSchedRatioFallsWithNSU: the headline monotone trend — higher
// load means lower acceptance for every scheme.
func TestSchedRatioFallsWithNSU(t *testing.T) {
	s := &Sweep{
		Param:  "NSU",
		Values: []float64{0.4, 0.8},
		Apply: func(p *Params, x float64) {
			shrink(p)
			p.NSU = x
		},
		Sets:    150,
		Seed:    7,
		Workers: 2,
	}
	r := s.Run()
	for si := range partition.Schemes {
		lo := r.Value(0, si, SchedRatio)
		hi := r.Value(1, si, SchedRatio)
		if hi > lo {
			t.Errorf("scheme %v: ratio rose with load (%.3f -> %.3f)", partition.Schemes[si], lo, hi)
		}
	}
}

// TestDeterministicAcrossWorkerCounts: the schedulability counts are
// exact and must not depend on parallelism.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	a := smallSweep(40, 1)
	b := smallSweep(40, 4)
	wrap := func(s *Sweep) {
		base := s.Apply
		s.Apply = func(p *Params, x float64) { shrink(p); base(p, x) }
	}
	wrap(a)
	wrap(b)
	ra, rb := a.Run(), b.Run()
	for pi := range ra.Points {
		for si := range ra.Points[pi].Cells {
			ha := ra.Points[pi].Cells[si].Sched.Hits()
			hb := rb.Points[pi].Cells[si].Sched.Hits()
			if ha != hb {
				t.Errorf("point %d scheme %d: hits %d != %d across worker counts", pi, si, ha, hb)
			}
		}
	}
}

func TestChartsRender(t *testing.T) {
	s := smallSweep(20, 2)
	base := s.Apply
	s.Apply = func(p *Params, x float64) { shrink(p); base(p, x) }
	r := s.Run()
	charts := r.Charts()
	if len(charts) != 4 {
		t.Fatalf("charts = %d", len(charts))
	}
	for _, ch := range charts {
		tbl := ch.Table()
		if !strings.Contains(tbl, "CA-TPA") {
			t.Errorf("chart table missing CA-TPA:\n%s", tbl)
		}
		if ch.CSV() == "" || ch.Plot(8) == "" {
			t.Error("empty CSV or plot")
		}
	}
}

func TestFigureDefinitions(t *testing.T) {
	for _, n := range Figures {
		s := Figure(n, 10, 1)
		if len(s.Values) != 5 {
			t.Errorf("figure %d has %d values", n, len(s.Values))
		}
		if s.Apply == nil || s.Name == "" || s.Param == "" {
			t.Errorf("figure %d incomplete", n)
		}
		// Apply must install the value without panicking.
		p := DefaultParams()
		s.Apply(&p, s.Values[0])
	}
}

func TestFigurePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Figure(9, 10, 1)
}

func TestFigureApplyEffects(t *testing.T) {
	cases := []struct {
		fig   int
		check func(p Params, x float64) bool
	}{
		{1, func(p Params, x float64) bool { return p.NSU == x }},
		{2, func(p Params, x float64) bool { return p.IFC.Lo == x && p.IFC.Hi == x }},
		{3, func(p Params, x float64) bool { return p.Alpha == x }},
		{4, func(p Params, x float64) bool { return p.M == int(x) }},
		{5, func(p Params, x float64) bool { return p.K == int(x) }},
	}
	for _, c := range cases {
		s := Figure(c.fig, 1, 1)
		p := DefaultParams()
		x := s.Values[len(s.Values)-1]
		s.Apply(&p, x)
		if !c.check(p, x) {
			t.Errorf("figure %d: Apply did not install %v (params %+v)", c.fig, x, p)
		}
	}
}

// TestAlphaOnlyAffectsCATPA: in a fig-3-style sweep, baseline scheme
// results are identical across alpha points (same seeds, alpha unused).
func TestAlphaOnlyAffectsCATPA(t *testing.T) {
	s := &Sweep{
		Param:  "alpha",
		Values: []float64{0.1, 0.5},
		Apply: func(p *Params, x float64) {
			shrink(p)
			p.Alpha = x
			p.NSU = 0.65
		},
		Sets:    80,
		Seed:    3,
		Workers: 2,
	}
	r := s.Run()
	for si, scheme := range partition.Schemes {
		if scheme == partition.CATPA {
			continue
		}
		h0 := r.Points[0].Cells[si].Sched.Hits()
		h1 := r.Points[1].Cells[si].Sched.Hits()
		if h0 != h1 {
			t.Errorf("%v: hits differ across alpha (%d vs %d)", scheme, h0, h1)
		}
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.M != 8 || p.K != 4 || p.NSU != 0.6 || p.Alpha != 0.7 {
		t.Errorf("unexpected defaults: %+v", p)
	}
	cfg := p.genConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCellValuePanicsOnUnknownMetric(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	var c Cell
	c.value(Metric(42))
}

// TestMeansAgreeAcrossWorkerCounts: the mean metrics use compensated
// accumulation, so splitting the population across workers (which
// changes the per-stripe summation order) moves them by at most 1e-9.
func TestMeansAgreeAcrossWorkerCounts(t *testing.T) {
	build := func(workers int) *Result {
		s := smallSweep(120, workers)
		base := s.Apply
		s.Apply = func(p *Params, x float64) { shrink(p); base(p, x) }
		return s.Run()
	}
	ref := build(1)
	for _, workers := range []int{2, 3, 5, 8} {
		r := build(workers)
		for pi := range ref.Points {
			for si := range ref.Points[pi].Cells {
				for _, m := range []Metric{Usys, Uavg, Imbalance} {
					a := ref.Value(pi, si, m)
					b := r.Value(pi, si, m)
					if d := math.Abs(a - b); d > 1e-9 {
						t.Errorf("workers=%d point %d scheme %d metric %v: drift %v",
							workers, pi, si, m, d)
					}
				}
				ha := ref.Points[pi].Cells[si].Sched.Hits()
				hb := r.Points[pi].Cells[si].Sched.Hits()
				if ha != hb {
					t.Errorf("workers=%d point %d scheme %d: hits %d != %d", workers, pi, si, ha, hb)
				}
			}
		}
	}
}

// TestPoolReuseAcrossPoints stresses the persistent pool: many points
// with differing (M, K) dimensions on the same workers, so Partitioner
// Reset and Generator reuse are exercised across jobs (and, under
// -race, concurrent access to the shared job/config state is checked).
func TestPoolReuseAcrossPoints(t *testing.T) {
	s := &Sweep{
		Param:  "M",
		Values: []float64{2, 4, 8, 4, 2},
		Apply: func(p *Params, x float64) {
			shrink(p)
			p.M = int(x)
			p.K = 2 + int(x)%3
		},
		Sets:    48,
		Seed:    11,
		Workers: 6,
	}
	r := s.Run()
	serial := &Sweep{Param: s.Param, Values: s.Values, Apply: s.Apply,
		Sets: s.Sets, Seed: s.Seed, Workers: 1}
	want := serial.Run()
	for pi := range r.Points {
		for si := range r.Points[pi].Cells {
			ha := r.Points[pi].Cells[si].Sched.Hits()
			hb := want.Points[pi].Cells[si].Sched.Hits()
			if ha != hb {
				t.Errorf("point %d scheme %d: pooled hits %d != serial %d", pi, si, ha, hb)
			}
		}
	}
}
