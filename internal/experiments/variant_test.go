package experiments

import (
	"context"
	"testing"

	"catpa/internal/fpamc"
	"catpa/internal/partition"
	"catpa/internal/taskgen"
)

func TestVariantStringLabelRoundTrip(t *testing.T) {
	cases := []struct {
		v     Variant
		str   string
		label string
	}{
		{Variant{Scheme: partition.WFD}, "WFD", "wfd"},
		{Variant{Scheme: partition.CATPA}, "CA-TPA", "ca-tpa"},
		{Variant{Scheme: partition.CATPA, Backend: "edfvd"}, "CA-TPA", "ca-tpa"},
		{Variant{Scheme: partition.FFD, Backend: "amcrtb"}, "FFD@amcrtb", "ffd-amcrtb"},
		{Variant{Scheme: partition.CATPA, Backend: "amcrtb"}, "CA-TPA@amcrtb", "ca-tpa-amcrtb"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.str {
			t.Errorf("%+v: String = %q, want %q", c.v, got, c.str)
		}
		if got := c.v.Label(); got != c.label {
			t.Errorf("%+v: Label = %q, want %q", c.v, got, c.label)
		}
		back, err := ParseVariant(c.v.String())
		if err != nil {
			t.Errorf("%+v: ParseVariant(%q): %v", c.v, c.v.String(), err)
			continue
		}
		if back.Scheme != c.v.Scheme || back.backendName() != c.v.backendName() {
			t.Errorf("ParseVariant(%q) = %+v, want %+v", c.v.String(), back, c.v)
		}
	}
	for _, bad := range []string{"", "XXX", "FFD@", "FFD@EDF-VD", "FFD@no@pe"} {
		if v, err := ParseVariant(bad); err == nil {
			t.Errorf("ParseVariant(%q) accepted as %+v", bad, v)
		}
	}
}

func TestBuildGroups(t *testing.T) {
	variants := []Variant{
		{Scheme: partition.CATPA},
		{Scheme: partition.FFD, Backend: "amcrtb"},
		{Scheme: partition.FFD},
		{Scheme: partition.CATPA, Backend: "amcrtb"},
	}
	groups := buildGroups(variants)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if groups[0].backend != "edfvd" || groups[1].backend != "amcrtb" {
		t.Fatalf("group backends = %s, %s", groups[0].backend, groups[1].backend)
	}
	if got, want := groups[0].idx, []int{0, 2}; got[0] != want[0] || got[1] != want[1] {
		t.Errorf("edfvd idx = %v, want %v", got, want)
	}
	if got, want := groups[1].idx, []int{1, 3}; got[0] != want[0] || got[1] != want[1] {
		t.Errorf("amcrtb idx = %v, want %v", got, want)
	}
}

// dualShrink installs small dual-criticality populations both backends
// can analyze.
func dualShrink(p *Params) {
	p.M = 4
	p.K = 2
	p.N = taskgen.IntRange{Lo: 15, Hi: 30}
}

// TestMixedBackendSweep runs a two-backend sweep and proves (a) the
// cell layout follows the variant list, and (b) the default-backend
// cells are bit-identical to the same sweep run without the backend
// axis — adding AMC-rtb variants must not perturb EDF-VD results.
func TestMixedBackendSweep(t *testing.T) {
	mk := func(variants []Variant) *Sweep {
		return &Sweep{
			Param:    "NSU",
			Values:   []float64{0.4, 0.7},
			Apply:    func(p *Params, x float64) { dualShrink(p); p.NSU = x },
			Sets:     60,
			Seed:     5,
			Workers:  2,
			Variants: variants,
		}
	}
	mixed := mk([]Variant{
		{Scheme: partition.CATPA},
		{Scheme: partition.CATPA, Backend: fpamc.BackendName},
		{Scheme: partition.FFD},
		{Scheme: partition.FFD, Backend: fpamc.BackendName},
	})
	plain := mk([]Variant{{Scheme: partition.CATPA}, {Scheme: partition.FFD}})
	rm, rp := mixed.Run(), plain.Run()
	for pi := range rm.Points {
		if len(rm.Points[pi].Cells) != 4 {
			t.Fatalf("point %d: cells = %d, want 4", pi, len(rm.Points[pi].Cells))
		}
		// Variant positions 0, 2 of the mixed sweep are the plain sweep.
		for i, vi := range []int{0, 2} {
			if rm.Points[pi].Cells[vi] != rp.Points[pi].Cells[i] {
				t.Errorf("point %d: default-backend cell %d differs from plain sweep:\n%+v\n%+v",
					pi, vi, rm.Points[pi].Cells[vi], rp.Points[pi].Cells[i])
			}
		}
		// The AMC-rtb variants must evaluate the same populations.
		for _, vi := range []int{1, 3} {
			if n := rm.Points[pi].Cells[vi].Sched.N(); n != 60 {
				t.Errorf("point %d variant %d: n = %d, want 60", pi, vi, n)
			}
		}
	}
	// Chart series labels carry the backend suffix.
	ch := rm.Chart(SchedRatio)
	if got := ch.Series[1].Label; got != "CA-TPA@amcrtb" {
		t.Errorf("series label = %q, want CA-TPA@amcrtb", got)
	}
}

// TestSweepRejectsBadVariants: unknown backends and K overflows
// surface as RunContext errors before any evaluation.
func TestSweepRejectsBadVariants(t *testing.T) {
	s := &Sweep{
		Param:    "NSU",
		Values:   []float64{0.5},
		Apply:    func(p *Params, x float64) { dualShrink(p); p.NSU = x },
		Sets:     1,
		Seed:     1,
		Workers:  1,
		Variants: []Variant{{Scheme: partition.FFD, Backend: "nosuch"}},
	}
	if _, err := s.RunContext(context.Background(), nil); err == nil {
		t.Error("unknown backend accepted")
	}
	s.Variants = []Variant{{Scheme: partition.FFD, Backend: fpamc.BackendName}}
	s.Apply = func(p *Params, x float64) { p.K = 4 } // exceeds AMC's dual-criticality bound
	if _, err := s.RunContext(context.Background(), nil); err == nil {
		t.Error("K=4 on the dual-criticality backend accepted")
	}
}

// TestFig6Definition pins the backend-comparison figure's shape.
func TestFig6Definition(t *testing.T) {
	s := Figure(6, 10, 1)
	if len(s.Variants) != 6 {
		t.Fatalf("fig6 variants = %d, want 6", len(s.Variants))
	}
	p := DefaultParams()
	s.Apply(&p, 0.6)
	if p.K != 2 || p.M != 4 || p.NSU != 0.6 {
		t.Errorf("fig6 Apply: %+v", p)
	}
	seen := map[string]bool{}
	for _, v := range s.Variants {
		seen[v.String()] = true
	}
	for _, want := range []string{"CA-TPA", "FFD", "Hybrid", "CA-TPA@amcrtb", "FFD@amcrtb", "Hybrid@amcrtb"} {
		if !seen[want] {
			t.Errorf("fig6 missing variant %s (has %v)", want, seen)
		}
	}
}
