package experiments

import (
	"strings"

	"catpa/internal/obs"
	"catpa/internal/partition"
)

// Metrics is the observability surface of the sweep worker pool: set
// and per-scheme accept/reject counters plus per-stage duration
// histograms, all registered in one obs.Registry. Every update on the
// hot path is an atomic on preallocated storage, so instrumentation
// preserves the pool's steady-state 0 allocs/op guarantee (proven by
// TestInstrumentedSetEvaluationZeroAllocs).
//
// The counting invariant, cross-checked against the CSV output in
// tests: for every scheme s of a sweep,
//
//	accepted(s) + rejected(s) == sweep.sets.total
//
// with quarantined sets counted as rejected for every scheme, exactly
// mirroring how Cell.Sched counts them.
type SweepMetrics struct {
	setsTotal       *obs.Counter
	setsQuarantined *obs.Counter
	accepted        []*obs.Counter // indexed by partition.Scheme
	rejected        []*obs.Counter // indexed by partition.Scheme
	genSeconds      *obs.Histogram
	partSeconds     *obs.Histogram
	anaSeconds      *obs.Histogram
}

// NewSweepMetrics registers the sweep metrics in reg and returns the
// surface. Each registry supports exactly one NewSweepMetrics call
// (names register exactly once); use a fresh registry per run.
func NewSweepMetrics(reg *obs.Registry) *SweepMetrics {
	m := &SweepMetrics{
		setsTotal:       reg.Counter("sweep.sets.total"),
		setsQuarantined: reg.Counter("sweep.sets.quarantined"),
		genSeconds:      reg.Histogram("sweep.stage.generate.seconds", nil),
		partSeconds:     reg.Histogram("sweep.stage.partition.seconds", nil),
		anaSeconds:      reg.Histogram("sweep.stage.analyze.seconds", nil),
		accepted:        make([]*obs.Counter, len(partition.Schemes)),
		rejected:        make([]*obs.Counter, len(partition.Schemes)),
	}
	for _, s := range partition.Schemes {
		m.accepted[s] = reg.LabeledCounter("sweep.sets.accepted", SchemeLabel(s))
		m.rejected[s] = reg.LabeledCounter("sweep.sets.rejected", SchemeLabel(s))
	}
	return m
}

// SchemeLabel renders a scheme as a metric-name label ("ca-tpa").
func SchemeLabel(s partition.Scheme) string {
	return strings.ToLower(s.String())
}

// SetsTotal returns the number of task-set evaluations counted so far
// (including quarantined sets and totals merged from a resumed run).
func (m *SweepMetrics) SetsTotal() int64 { return m.setsTotal.Value() }

// Quarantined returns the number of quarantined task sets counted.
func (m *SweepMetrics) Quarantined() int64 { return m.setsQuarantined.Value() }

// Accepted returns the number of sets scheme s accepted (partitioned
// feasibly); Rejected the number it rejected.
func (m *SweepMetrics) Accepted(s partition.Scheme) int64 { return m.accepted[s].Value() }

// Rejected returns the number of sets scheme s rejected, including
// quarantined sets.
func (m *SweepMetrics) Rejected(s partition.Scheme) int64 { return m.rejected[s].Value() }

// AddResumedPoint folds a checkpointed point's exact counts into the
// counters: the fallback restoration path for journals whose embedded
// metrics snapshot is missing or was dropped as torn. cells must be
// indexed like schemes (the sweep's scheme list).
func (m *SweepMetrics) AddResumedPoint(schemes []partition.Scheme, cells []Cell, quarantined int) {
	if len(cells) > 0 {
		m.setsTotal.Add(cells[0].Sched.N())
	}
	for si, s := range schemes {
		if si >= len(cells) {
			break
		}
		hits := cells[si].Sched.Hits()
		m.accepted[s].Add(hits)
		m.rejected[s].Add(cells[si].Sched.N() - hits)
	}
	m.setsQuarantined.Add(int64(quarantined))
}
