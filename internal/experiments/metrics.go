package experiments

import (
	"strings"

	"catpa/internal/obs"
	"catpa/internal/partition"
)

// Metrics is the observability surface of the sweep worker pool: set
// and per-variant accept/reject counters plus per-stage duration
// histograms, all registered in one obs.Registry. Every update on the
// hot path is an atomic on preallocated storage, so instrumentation
// preserves the pool's steady-state 0 allocs/op guarantee (proven by
// TestInstrumentedSetEvaluationZeroAllocs).
//
// The counting invariant, cross-checked against the CSV output in
// tests: for every variant v of a sweep,
//
//	accepted(v) + rejected(v) == sweep.sets.total
//
// with quarantined sets counted as rejected for every variant, exactly
// mirroring how Cell.Sched counts them.
type SweepMetrics struct {
	variants        []Variant
	setsTotal       *obs.Counter
	setsQuarantined *obs.Counter
	accepted        []*obs.Counter // indexed like variants
	rejected        []*obs.Counter // indexed like variants
	genSeconds      *obs.Histogram
	partSeconds     *obs.Histogram
	anaSeconds      *obs.Histogram
}

// NewSweepMetrics registers the sweep metrics in reg and returns the
// surface. The variant list must match the sweep's (ActiveVariants);
// an empty list selects the defaults, whose metric labels are the
// plain scheme labels ("wfd".."ca-tpa"), unchanged from when sweeps
// had no backend axis. Each registry supports exactly one
// NewSweepMetrics call (names register exactly once); use a fresh
// registry per run.
func NewSweepMetrics(reg *obs.Registry, variants ...Variant) *SweepMetrics {
	if len(variants) == 0 {
		variants = DefaultVariants()
	}
	m := &SweepMetrics{
		variants:        variants,
		setsTotal:       reg.Counter("sweep.sets.total"),
		setsQuarantined: reg.Counter("sweep.sets.quarantined"),
		genSeconds:      reg.Histogram("sweep.stage.generate.seconds", nil),
		partSeconds:     reg.Histogram("sweep.stage.partition.seconds", nil),
		anaSeconds:      reg.Histogram("sweep.stage.analyze.seconds", nil),
		accepted:        make([]*obs.Counter, len(variants)),
		rejected:        make([]*obs.Counter, len(variants)),
	}
	for vi, v := range variants {
		m.accepted[vi] = reg.LabeledCounter("sweep.sets.accepted", v.Label())
		m.rejected[vi] = reg.LabeledCounter("sweep.sets.rejected", v.Label())
	}
	return m
}

// SchemeLabel renders a scheme as a metric-name label ("ca-tpa").
func SchemeLabel(s partition.Scheme) string {
	return strings.ToLower(s.String())
}

// SetsTotal returns the number of task-set evaluations counted so far
// (including quarantined sets and totals merged from a resumed run).
func (m *SweepMetrics) SetsTotal() int64 { return m.setsTotal.Value() }

// Quarantined returns the number of quarantined task sets counted.
func (m *SweepMetrics) Quarantined() int64 { return m.setsQuarantined.Value() }

// variantIndex locates v in the metric's variant list, -1 when absent.
func (m *SweepMetrics) variantIndex(v Variant) int {
	for vi := range m.variants {
		if m.variants[vi].Scheme == v.Scheme && m.variants[vi].backendName() == v.backendName() {
			return vi
		}
	}
	return -1
}

// Accepted returns the number of sets scheme s (on the default
// backend) accepted, i.e. partitioned feasibly; Rejected the number it
// rejected. The variant-addressed accessors cover non-default
// backends.
func (m *SweepMetrics) Accepted(s partition.Scheme) int64 {
	return m.AcceptedVariant(Variant{Scheme: s})
}

// Rejected returns the number of sets scheme s (on the default
// backend) rejected, including quarantined sets.
func (m *SweepMetrics) Rejected(s partition.Scheme) int64 {
	return m.RejectedVariant(Variant{Scheme: s})
}

// AcceptedVariant returns the number of sets variant v accepted, or 0
// when v is not part of the sweep.
func (m *SweepMetrics) AcceptedVariant(v Variant) int64 {
	if vi := m.variantIndex(v); vi >= 0 {
		return m.accepted[vi].Value()
	}
	return 0
}

// RejectedVariant returns the number of sets variant v rejected
// (including quarantined sets), or 0 when v is not part of the sweep.
func (m *SweepMetrics) RejectedVariant(v Variant) int64 {
	if vi := m.variantIndex(v); vi >= 0 {
		return m.rejected[vi].Value()
	}
	return 0
}

// AddResumedPoint folds a checkpointed point's exact counts into the
// counters: the fallback restoration path for journals whose embedded
// metrics snapshot is missing or was dropped as torn. cells must be
// indexed like the metric's variant list (the sweep's ActiveVariants).
func (m *SweepMetrics) AddResumedPoint(cells []Cell, quarantined int) {
	if len(cells) > 0 {
		m.setsTotal.Add(cells[0].Sched.N())
	}
	for vi := range m.variants {
		if vi >= len(cells) {
			break
		}
		hits := cells[vi].Sched.Hits()
		m.accepted[vi].Add(hits)
		m.rejected[vi].Add(cells[vi].Sched.N() - hits)
	}
	m.setsQuarantined.Add(int64(quarantined))
}
