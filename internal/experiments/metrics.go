package experiments

import (
	"strings"
	"time"

	"catpa/internal/obs"
	"catpa/internal/partition"
)

// Metrics is the observability surface of the sweep worker pool: set
// and per-variant accept/reject counters plus per-stage duration
// histograms, all registered in one obs.Registry. Every update on the
// hot path is an atomic on preallocated storage, so instrumentation
// preserves the pool's steady-state 0 allocs/op guarantee (proven by
// TestInstrumentedSetEvaluationZeroAllocs).
//
// The counting invariant, cross-checked against the CSV output in
// tests: for every variant v of a sweep,
//
//	accepted(v) + rejected(v) == sweep.sets.total
//
// with quarantined sets counted as rejected for every variant, exactly
// mirroring how Cell.Sched counts them.
type SweepMetrics struct {
	variants        []Variant
	setsTotal       *obs.Counter
	setsQuarantined *obs.Counter
	accepted        []*obs.Counter // indexed like variants
	rejected        []*obs.Counter // indexed like variants
	genSeconds      *obs.Histogram
	partSeconds     *obs.Histogram
	anaSeconds      *obs.Histogram
	online          *onlineMetrics // nil for static sweeps
}

// onlineMetrics is the observability surface of the online scenario:
// event and per-variant admit/shed counters, plus two histograms
// bucketed over scenario time (one bound per horizon bucket), so the
// admission and shed timelines are readable from a metrics snapshot
// without the cells. Registered only for online sweeps — a static
// sweep's snapshot is byte-identical to the pre-scenario harness.
type onlineMetrics struct {
	events    *obs.Counter
	admitted  []*obs.Counter // indexed like variants
	shed      []*obs.Counter // indexed like variants
	admitTime *obs.Histogram
	shedTime  *obs.Histogram
}

// scenarioDuration renders scenario time (task-period units) on the
// histogram's duration axis at one millisecond per unit, matching the
// bounds laid by scenarioTimeBounds.
//
//mc:allocfree
func scenarioDuration(t float64) time.Duration {
	return time.Duration(t * float64(time.Millisecond))
}

// scenarioTimeBounds lays one histogram bound per horizon bucket, so
// the obs histograms of the online family are time-bucketed exactly
// like the cells' over-time curves.
func scenarioTimeBounds(o *OnlineScenario) []time.Duration {
	buckets := o.buckets()
	bounds := make([]time.Duration, buckets)
	for b := 0; b < buckets; b++ {
		bounds[b] = scenarioDuration(float64(b+1) * o.Horizon / float64(buckets))
	}
	return bounds
}

// NewSweepMetricsFor registers the metrics surface matching the
// sweep's scenario: the static family always, plus the online family
// for online sweeps. Like NewSweepMetrics, each registry supports one
// call.
func NewSweepMetricsFor(reg *obs.Registry, sw *Sweep) *SweepMetrics {
	m := NewSweepMetrics(reg, sw.ActiveVariants()...)
	o, ok := sw.scenario().(*OnlineScenario)
	if !ok {
		return m
	}
	bounds := scenarioTimeBounds(o)
	om := &onlineMetrics{
		events:    reg.Counter("online.events.total"),
		admitTime: reg.Histogram("online.admit.scenario.time", bounds),
		shedTime:  reg.Histogram("online.shed.scenario.time", bounds),
		admitted:  make([]*obs.Counter, len(m.variants)),
		shed:      make([]*obs.Counter, len(m.variants)),
	}
	for vi, v := range m.variants {
		om.admitted[vi] = reg.LabeledCounter("online.arrivals.admitted", v.Label())
		om.shed[vi] = reg.LabeledCounter("online.arrivals.shed", v.Label())
	}
	m.online = om
	return m
}

// observeEvents counts one replication's replayed events; no-op on a
// nil receiver or a static sweep's surface.
func (m *SweepMetrics) observeEvents(n int) {
	if m == nil || m.online == nil {
		return
	}
	m.online.events.Add(int64(n))
}

// observeAdmit records one admitted arrival at scenario time t.
//
//mc:allocfree atomics on preallocated storage
func (m *SweepMetrics) observeAdmit(vi int, t float64) {
	if m == nil || m.online == nil {
		return
	}
	m.online.admitted[vi].Inc()
	m.online.admitTime.Observe(scenarioDuration(t))
}

// observeShed records one shed arrival at scenario time t.
//
//mc:allocfree atomics on preallocated storage
func (m *SweepMetrics) observeShed(vi int, t float64) {
	if m == nil || m.online == nil {
		return
	}
	m.online.shed[vi].Inc()
	m.online.shedTime.Observe(scenarioDuration(t))
}

// EventsTotal returns the number of replayed online events counted, 0
// for a static sweep's surface.
func (m *SweepMetrics) EventsTotal() int64 {
	if m.online == nil {
		return 0
	}
	return m.online.events.Value()
}

// AdmittedArrivals returns the number of admitted arrivals counted for
// variant index vi, 0 for a static sweep's surface.
func (m *SweepMetrics) AdmittedArrivals(vi int) int64 {
	if m.online == nil {
		return 0
	}
	return m.online.admitted[vi].Value()
}

// ShedArrivals returns the number of shed arrivals counted for variant
// index vi, 0 for a static sweep's surface.
func (m *SweepMetrics) ShedArrivals(vi int) int64 {
	if m.online == nil {
		return 0
	}
	return m.online.shed[vi].Value()
}

// NewSweepMetrics registers the sweep metrics in reg and returns the
// surface. The variant list must match the sweep's (ActiveVariants);
// an empty list selects the defaults, whose metric labels are the
// plain scheme labels ("wfd".."ca-tpa"), unchanged from when sweeps
// had no backend axis. Each registry supports exactly one
// NewSweepMetrics call (names register exactly once); use a fresh
// registry per run.
func NewSweepMetrics(reg *obs.Registry, variants ...Variant) *SweepMetrics {
	if len(variants) == 0 {
		variants = DefaultVariants()
	}
	m := &SweepMetrics{
		variants:        variants,
		setsTotal:       reg.Counter("sweep.sets.total"),
		setsQuarantined: reg.Counter("sweep.sets.quarantined"),
		genSeconds:      reg.Histogram("sweep.stage.generate.seconds", nil),
		partSeconds:     reg.Histogram("sweep.stage.partition.seconds", nil),
		anaSeconds:      reg.Histogram("sweep.stage.analyze.seconds", nil),
		accepted:        make([]*obs.Counter, len(variants)),
		rejected:        make([]*obs.Counter, len(variants)),
	}
	for vi, v := range variants {
		m.accepted[vi] = reg.LabeledCounter("sweep.sets.accepted", v.Label())
		m.rejected[vi] = reg.LabeledCounter("sweep.sets.rejected", v.Label())
	}
	return m
}

// SchemeLabel renders a scheme as a metric-name label ("ca-tpa").
func SchemeLabel(s partition.Scheme) string {
	return strings.ToLower(s.String())
}

// SetsTotal returns the number of task-set evaluations counted so far
// (including quarantined sets and totals merged from a resumed run).
func (m *SweepMetrics) SetsTotal() int64 { return m.setsTotal.Value() }

// Quarantined returns the number of quarantined task sets counted.
func (m *SweepMetrics) Quarantined() int64 { return m.setsQuarantined.Value() }

// variantIndex locates v in the metric's variant list, -1 when absent.
func (m *SweepMetrics) variantIndex(v Variant) int {
	for vi := range m.variants {
		if m.variants[vi].Scheme == v.Scheme && m.variants[vi].backendName() == v.backendName() {
			return vi
		}
	}
	return -1
}

// Accepted returns the number of sets scheme s (on the default
// backend) accepted, i.e. partitioned feasibly; Rejected the number it
// rejected. The variant-addressed accessors cover non-default
// backends.
func (m *SweepMetrics) Accepted(s partition.Scheme) int64 {
	return m.AcceptedVariant(Variant{Scheme: s})
}

// Rejected returns the number of sets scheme s (on the default
// backend) rejected, including quarantined sets.
func (m *SweepMetrics) Rejected(s partition.Scheme) int64 {
	return m.RejectedVariant(Variant{Scheme: s})
}

// AcceptedVariant returns the number of sets variant v accepted, or 0
// when v is not part of the sweep.
func (m *SweepMetrics) AcceptedVariant(v Variant) int64 {
	if vi := m.variantIndex(v); vi >= 0 {
		return m.accepted[vi].Value()
	}
	return 0
}

// RejectedVariant returns the number of sets variant v rejected
// (including quarantined sets), or 0 when v is not part of the sweep.
func (m *SweepMetrics) RejectedVariant(v Variant) int64 {
	if vi := m.variantIndex(v); vi >= 0 {
		return m.rejected[vi].Value()
	}
	return 0
}

// AddResumedPoint folds a checkpointed point's exact counts into the
// counters: the fallback restoration path for journals whose embedded
// metrics snapshot is missing or was dropped as torn. cells must be
// indexed like the metric's variant list (the sweep's ActiveVariants).
func (m *SweepMetrics) AddResumedPoint(cells []Cell, quarantined int) {
	if len(cells) > 0 {
		m.setsTotal.Add(cells[0].Sched.N())
	}
	for vi := range m.variants {
		if vi >= len(cells) {
			break
		}
		hits := cells[vi].Sched.Hits()
		m.accepted[vi].Add(hits)
		m.rejected[vi].Add(cells[vi].Sched.N() - hits)
	}
	m.setsQuarantined.Add(int64(quarantined))
}
