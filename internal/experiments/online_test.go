package experiments

import (
	"context"
	"math"
	"testing"

	"catpa/internal/fpamc"
	"catpa/internal/mc"
	"catpa/internal/obs"
	"catpa/internal/partition"
	"catpa/internal/taskgen"
)

func testOnlineSweep(sets, workers int) *Sweep {
	return &Sweep{
		Name:   "onltest",
		Title:  "online test",
		Param:  "NSU",
		Values: []float64{1.0, 1.4},
		Apply: func(p *Params, x float64) {
			p.NSU = x
			p.K = 2
			p.M = 4
			p.N = taskgen.IntRange{Lo: 24, Hi: 24}
		},
		Sets:    sets,
		Seed:    99,
		Workers: workers,
		Variants: []Variant{
			{Scheme: partition.CATPA},
			{Scheme: partition.FFD, Backend: fpamc.BackendName},
		},
		Scenario: &OnlineScenario{
			Process: taskgen.Poisson{Rate: 0.05, MeanLifetime: 400},
			Horizon: 1000,
			Buckets: 8,
		},
	}
}

// TestOnlineScenarioValidation checks that scenario misconfiguration
// surfaces as one error before any worker runs.
func TestOnlineScenarioValidation(t *testing.T) {
	cases := []struct {
		name string
		sc   *OnlineScenario
		want string
	}{
		{"nil process", &OnlineScenario{Horizon: 100}, "experiments: online scenario: nil arrival process"},
		{"bad process", &OnlineScenario{Process: taskgen.Poisson{}, Horizon: 100}, "experiments: online scenario: taskgen: poisson: rate 0 <= 0"},
		{"bad horizon", &OnlineScenario{Process: taskgen.Poisson{Rate: 1, MeanLifetime: 1}}, "experiments: online scenario: horizon 0 <= 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sw := testOnlineSweep(1, 1)
			sw.Scenario = tc.sc
			_, err := sw.RunContext(context.Background(), nil)
			if err == nil || err.Error() != tc.want {
				t.Fatalf("error:\n got: %v\nwant: %s", err, tc.want)
			}
		})
	}
}

// TestOnlineSweepAggregates runs a small online sweep end to end and
// checks the aggregate invariants: every replication counted, verdicts
// conserved (admitted + shed = arrivals, whole-horizon and per
// bucket), occupancy within [0, universe], utilization curves within
// [0, 1], and saturation monotonicity — the heavier NSU point sheds at
// least as much as the lighter one.
func TestOnlineSweepAggregates(t *testing.T) {
	sets := 12
	sw := testOnlineSweep(sets, 3)
	res := sw.Run()
	if len(res.Quarantined) != 0 {
		t.Fatalf("unexpected quarantines: %v", res.Quarantined)
	}
	for pi := range res.Points {
		for vi := range sw.Variants {
			cell := &res.Points[pi].Cells[vi]
			if got := cell.Sched.N(); got != int64(sets) {
				t.Fatalf("point %d variant %d: %d replications counted, want %d", pi, vi, got, sets)
			}
			oc := cell.Online
			if oc == nil {
				t.Fatalf("point %d variant %d: nil online cell", pi, vi)
			}
			var bucketHits, bucketN int64
			for b := range oc.AdmitOverTime {
				bucketHits += oc.AdmitOverTime[b].Hits()
				bucketN += oc.AdmitOverTime[b].N()
			}
			if bucketHits != oc.Admitted.Hits() || bucketN != oc.Admitted.N() {
				t.Fatalf("point %d variant %d: bucket verdicts %d/%d disagree with totals %d/%d",
					pi, vi, bucketHits, bucketN, oc.Admitted.Hits(), oc.Admitted.N())
			}
			if oc.Admitted.N() == 0 {
				t.Fatalf("point %d variant %d: no arrivals observed", pi, vi)
			}
			if occ := oc.Occupancy.Mean(); occ < 0 || occ > 24 {
				t.Fatalf("point %d variant %d: occupancy %v outside [0, 24]", pi, vi, occ)
			}
			if u := oc.CoreUtil.Mean(); u < 0 || u > 1+1e-9 {
				t.Fatalf("point %d variant %d: core utilization %v outside [0, 1]", pi, vi, u)
			}
			for b := range oc.UtilOverTime {
				if n := oc.UtilOverTime[b].N(); n != int64(sets) {
					t.Fatalf("point %d variant %d bucket %d: %d samples, want %d", pi, vi, b, n, sets)
				}
				if u := oc.UtilOverTime[b].Mean(); u < 0 || u > 1+1e-9 {
					t.Fatalf("point %d variant %d bucket %d: utilization %v outside [0, 1]", pi, vi, b, u)
				}
			}
		}
	}
	for vi := range sw.Variants {
		light := res.Points[0].Cells[vi].Online
		heavy := res.Points[1].Cells[vi].Online
		if heavy.shedRate() < light.shedRate() {
			t.Errorf("variant %d: heavier point sheds less (%v) than lighter (%v)",
				vi, heavy.shedRate(), light.shedRate())
		}
	}
}

// TestOnlineSweepWorkerCountDeterminism checks the striping contract
// for online sweeps: admission and shed counts are exact integers
// independent of the worker count, and the compensated means agree to
// ~1e-9 across worker counts.
func TestOnlineSweepWorkerCountDeterminism(t *testing.T) {
	a := testOnlineSweep(10, 1).Run()
	b := testOnlineSweep(10, 4).Run()
	for pi := range a.Points {
		for vi := range a.Points[pi].Cells {
			ca, cb := a.Points[pi].Cells[vi].Online, b.Points[pi].Cells[vi].Online
			if ca.Admitted.Hits() != cb.Admitted.Hits() || ca.Admitted.N() != cb.Admitted.N() {
				t.Fatalf("point %d variant %d: admission counts differ across worker counts: %d/%d vs %d/%d",
					pi, vi, ca.Admitted.Hits(), ca.Admitted.N(), cb.Admitted.Hits(), cb.Admitted.N())
			}
			if math.Abs(ca.Occupancy.Mean()-cb.Occupancy.Mean()) > 1e-9 {
				t.Fatalf("point %d variant %d: occupancy %v vs %v across worker counts",
					pi, vi, ca.Occupancy.Mean(), cb.Occupancy.Mean())
			}
			if math.Abs(ca.CoreUtil.Mean()-cb.CoreUtil.Mean()) > 1e-9 {
				t.Fatalf("point %d variant %d: core utilization %v vs %v across worker counts",
					pi, vi, ca.CoreUtil.Mean(), cb.CoreUtil.Mean())
			}
			for bkt := range ca.AdmitOverTime {
				if ca.AdmitOverTime[bkt].Hits() != cb.AdmitOverTime[bkt].Hits() {
					t.Fatalf("point %d variant %d bucket %d: bucket verdicts differ across worker counts", pi, vi, bkt)
				}
			}
		}
	}
}

// TestOnlineSweepMetrics checks the online observability surface: the
// counting invariant per variant (admitted + shed arrivals = the
// cells' totals), the event counter, and that the static accepted/
// rejected counters keep their meaning (clean replications).
func TestOnlineSweepMetrics(t *testing.T) {
	sw := testOnlineSweep(8, 2)
	reg := obs.NewRegistry()
	m := NewSweepMetricsFor(reg, sw)
	res, err := sw.RunContext(context.Background(), &RunConfig{Metrics: m})
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if got, want := m.SetsTotal(), int64(8*len(sw.Values)); got != want {
		t.Fatalf("SetsTotal = %d, want %d", got, want)
	}
	if m.EventsTotal() == 0 {
		t.Fatal("EventsTotal = 0, want > 0")
	}
	for vi := range sw.Variants {
		var hits, n, clean int64
		for pi := range res.Points {
			oc := res.Points[pi].Cells[vi].Online
			hits += oc.Admitted.Hits()
			n += oc.Admitted.N()
			clean += res.Points[pi].Cells[vi].Sched.Hits()
		}
		if got := m.AdmittedArrivals(vi); got != hits {
			t.Fatalf("variant %d: AdmittedArrivals = %d, want %d", vi, got, hits)
		}
		if got := m.ShedArrivals(vi); got != n-hits {
			t.Fatalf("variant %d: ShedArrivals = %d, want %d", vi, got, n-hits)
		}
		if got := m.AcceptedVariant(sw.Variants[vi]); got != clean {
			t.Fatalf("variant %d: accepted = %d, want %d clean replications", vi, got, clean)
		}
		if got := m.RejectedVariant(sw.Variants[vi]); got != int64(8*len(sw.Values))-clean {
			t.Fatalf("variant %d: rejected = %d, want %d", vi, got, int64(8*len(sw.Values))-clean)
		}
	}
	// Static surfaces read zero on the online accessors.
	ms := NewSweepMetricsFor(obs.NewRegistry(), &Sweep{})
	if ms.EventsTotal() != 0 || ms.AdmittedArrivals(0) != 0 || ms.ShedArrivals(0) != 0 {
		t.Fatal("static surface's online accessors must read zero")
	}
}

// TestOnlineCharts checks the online chart family: four charts, the
// first three on the sweep axis, the last on bucket-midpoint scenario
// time, all with one series per variant.
func TestOnlineCharts(t *testing.T) {
	sw := testOnlineSweep(6, 2)
	res := sw.Run()
	charts := res.Charts()
	if len(charts) != 4 {
		t.Fatalf("%d charts, want 4", len(charts))
	}
	for ci, ch := range charts {
		if len(ch.Series) != len(sw.Variants) {
			t.Fatalf("chart %d: %d series, want %d", ci, len(ch.Series), len(sw.Variants))
		}
	}
	for ci := 0; ci < 3; ci++ {
		if got, want := len(charts[ci].X), len(sw.Values); got != want {
			t.Fatalf("chart %d: %d X values, want %d", ci, got, want)
		}
	}
	if got := len(charts[3].X); got != 8 {
		t.Fatalf("over-time chart: %d X values, want 8 buckets", got)
	}
	if charts[3].X[0] != 62.5 || charts[3].X[7] != 937.5 {
		t.Fatalf("over-time bucket midpoints wrong: %v", charts[3].X)
	}
	for vi := range sw.Variants {
		for pi := range sw.Values {
			admit := charts[0].Series[vi].Y[pi]
			shed := charts[1].Series[vi].Y[pi]
			if math.Abs(admit+shed-1) > 1e-12 {
				t.Fatalf("variant %d point %d: admission %v + shed %v != 1", vi, pi, admit, shed)
			}
		}
	}
}

// panicSource quarantine-tests the online path: generation of one
// specific replication panics.
type panicSource struct {
	g   *taskgen.Generator
	bad int
}

func (p *panicSource) Generate(cfg *taskgen.Config, baseSeed int64, idx int) *mc.TaskSet {
	if idx == p.bad {
		panic("panicSource: injected fault")
	}
	return p.g.Generate(cfg, baseSeed, idx)
}

// TestOnlineQuarantine checks that a panicking replication quarantines
// instead of crashing, counts as unclean for every variant, and leaves
// totals exact.
func TestOnlineQuarantine(t *testing.T) {
	sets := 6
	sw := testOnlineSweep(sets, 2)
	sw.Scenario.(*OnlineScenario).NewSource = func() taskgen.TaskSource {
		return &panicSource{g: taskgen.NewGenerator(), bad: 3}
	}
	res := sw.Run()
	if got, want := len(res.Quarantined), len(sw.Values); got != want {
		t.Fatalf("%d quarantines, want %d (one per point)", got, want)
	}
	for _, q := range res.Quarantined {
		if q.Set != 3 {
			t.Fatalf("quarantined set %d, want 3", q.Set)
		}
	}
	for pi := range res.Points {
		for vi := range res.Points[pi].Cells {
			if got := res.Points[pi].Cells[vi].Sched.N(); got != int64(sets) {
				t.Fatalf("point %d variant %d: %d replications counted, want %d", pi, vi, got, sets)
			}
		}
	}
}

// TestOnlineScenarioZeroAllocs proves the online hot path's slab
// contract: steady-state replication evaluation — generate, build the
// stream, replay per variant, with instrumentation attached — performs
// no heap allocations.
func TestOnlineScenarioZeroAllocs(t *testing.T) {
	sw := testOnlineSweep(1, 1)
	reg := obs.NewRegistry()
	m := NewSweepMetricsFor(reg, sw)
	variants := sw.ActiveVariants()
	params := DefaultParams()
	sw.Apply(&params, sw.Values[0])
	cfg := params.genConfig()
	opts := partition.Options{Alpha: params.Alpha}
	jb := job{
		cfg:      &cfg,
		seed:     sw.Seed,
		m:        params.M,
		k:        params.K,
		opts:     &opts,
		variants: variants,
		groups:   buildGroups(variants),
		sets:     1 << 20,
		metrics:  m,
		row:      make([]Cell, len(variants)),
	}
	w := sw.scenario().newWorker()
	w.arm(&jb)
	for set := 0; set < 16; set++ {
		if q := w.evalSet(&jb, set); q != nil {
			t.Fatalf("unexpected quarantine: %v", q)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if q := w.evalSet(&jb, 5); q != nil {
			t.Fatalf("unexpected quarantine: %v", q)
		}
	})
	if allocs != 0 {
		t.Fatalf("online evalSet allocates %v times per replication, want 0", allocs)
	}
}
