package experiments

import (
	"fmt"
	"strings"

	"catpa/internal/partition"
)

// Variant is one cell of the heuristic x analysis cross-product a
// sweep compares: a partitioning scheme running atop a per-core
// schedulability backend. The zero Backend selects the default EDF-VD
// analysis, so a plain scheme list lifts into variants without naming
// the backend anywhere — default sweeps keep their historical
// identity (series labels, metric labels, checkpoint headers).
type Variant struct {
	Scheme  partition.Scheme
	Backend string
}

// backendName resolves the empty-string default.
func (v Variant) backendName() string {
	if v.Backend == "" {
		return partition.DefaultBackend
	}
	return v.Backend
}

// String renders the variant's canonical name: the scheme name alone
// on the default backend ("CA-TPA"), scheme@backend otherwise
// ("CA-TPA@amcrtb"). The form round-trips through ParseVariant and is
// the identity used in chart legends, CSV headers and checkpoint
// journals.
func (v Variant) String() string {
	if v.backendName() == partition.DefaultBackend {
		return v.Scheme.String()
	}
	return v.Scheme.String() + "@" + v.Backend
}

// Label renders the variant as a metric-name label: the scheme label
// alone on the default backend ("ca-tpa"), suffixed with the backend
// otherwise ("ca-tpa-amcrtb").
func (v Variant) Label() string {
	if v.backendName() == partition.DefaultBackend {
		return SchemeLabel(v.Scheme)
	}
	return SchemeLabel(v.Scheme) + "-" + v.Backend
}

// ParseVariant parses the String form: a scheme name, optionally
// followed by "@backend". The backend must be registered; RunContext
// re-validates against the registry and additionally checks each
// point's criticality-level count against the backend's MaxLevels.
func ParseVariant(name string) (Variant, error) {
	schemeName, backend, found := strings.Cut(name, "@")
	s, err := partition.ParseScheme(schemeName)
	if err != nil {
		return Variant{}, fmt.Errorf("experiments: bad variant %q: %v", name, err)
	}
	if found {
		if !partition.ValidBackendName(backend) {
			return Variant{}, fmt.Errorf("experiments: bad variant %q: invalid backend name %q", name, backend)
		}
		if _, err := partition.NewBackend(backend); err != nil {
			return Variant{}, fmt.Errorf("experiments: bad variant %q: %v", name, err)
		}
		if backend == partition.DefaultBackend {
			backend = "" // normalize to the zero-value default
		}
	}
	return Variant{Scheme: s, Backend: backend}, nil
}

// DefaultVariants returns the five paper schemes on the default
// EDF-VD backend, in presentation order.
func DefaultVariants() []Variant {
	out := make([]Variant, len(partition.Schemes))
	for i, s := range partition.Schemes {
		out[i] = Variant{Scheme: s}
	}
	return out
}

// backendGroup batches the variants of one backend so a worker
// prepares each task set once per backend and then places every
// scheme of the group, mirroring how EvaluateAll shares per-set
// preparation across schemes.
type backendGroup struct {
	backend string
	schemes []partition.Scheme
	idx     []int // variant index of each scheme, into the sweep's variant list
}

// buildGroups partitions variants by backend, preserving first-seen
// backend order and within-backend variant order.
func buildGroups(variants []Variant) []backendGroup {
	var groups []backendGroup
	pos := make(map[string]int)
	for vi, v := range variants {
		name := v.backendName()
		gi, ok := pos[name]
		if !ok {
			gi = len(groups)
			pos[name] = gi
			groups = append(groups, backendGroup{backend: name})
		}
		groups[gi].schemes = append(groups[gi].schemes, v.Scheme)
		groups[gi].idx = append(groups[gi].idx, vi)
	}
	return groups
}
