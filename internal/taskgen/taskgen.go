// Package taskgen generates synthetic mixed-criticality task sets
// following the protocol of Han et al. (ICPP 2016), Section IV-A and
// Table IV:
//
//   - base level-1 utilization u_base = NSU * M / N;
//   - per task: period drawn from one of three ranges ([50,200],
//     [200,500], [500,2000]), itself chosen uniformly at random;
//   - c_i(1) uniform in [0.2, 1.8] * p_i * u_base;
//   - criticality level l_i uniform in {1..K};
//   - c_i(k) = c_i(k-1) * (1 + IFC), with the increment factor IFC
//     either fixed or drawn per task from a range.
//
// Generation is fully deterministic given a Config and a seed, and a
// (seed, index) pair identifies one task set of a replicated
// experiment, so parallel and serial sweeps produce identical sets.
package taskgen

import (
	"fmt"
	"math/rand"

	"catpa/internal/mc"
)

// Range is a closed interval [Lo, Hi].
type Range struct {
	Lo, Hi float64
}

// Contains reports whether v lies in the range (inclusive).
func (r Range) Contains(v float64) bool { return v >= r.Lo && v <= r.Hi }

// sample draws uniformly from the range.
func (r Range) sample(rng *rand.Rand) float64 {
	return r.Lo + rng.Float64()*(r.Hi-r.Lo)
}

// IntRange is a closed integer interval.
type IntRange struct {
	Lo, Hi int
}

func (r IntRange) sample(rng *rand.Rand) int {
	if r.Hi <= r.Lo {
		return r.Lo
	}
	return r.Lo + rng.Intn(r.Hi-r.Lo+1)
}

// DefaultPeriodRanges are the three period ranges of Table IV.
func DefaultPeriodRanges() []Range {
	return []Range{{50, 200}, {200, 500}, {500, 2000}}
}

// Config describes one workload family. The zero value is not valid;
// use DefaultConfig and override fields.
type Config struct {
	// M is the number of cores the set is meant for (used only to
	// scale u_base; the generator does not partition).
	M int

	// K is the number of system criticality levels.
	K int

	// N is the number-of-tasks range; the paper draws N uniformly
	// from [40, 200] unless a specific N is under study.
	N IntRange

	// NSU is the normalized system utilization: aggregate level-1
	// utilization divided by M.
	NSU float64

	// IFC is the WCET increment-factor range; a degenerate range
	// (Lo == Hi) yields the fixed default 0.4 of the paper.
	IFC Range

	// Periods lists the candidate period ranges; one is chosen
	// uniformly per task.
	Periods []Range

	// CritSpread forces criticality levels to be drawn uniformly from
	// {1..K} (the paper's rule). It exists so tests can pin levels.
	// When non-nil, CritOf(i, rng) overrides the draw for task i.
	CritOf func(i int, rng *rand.Rand) int
}

// DefaultConfig returns the paper's default parameter point:
// M=8, K=4, NSU=0.6, IFC=0.4, N ~ U[40,200], Table IV periods.
func DefaultConfig() Config {
	return Config{
		M:       8,
		K:       4,
		N:       IntRange{40, 200},
		NSU:     0.6,
		IFC:     Range{0.4, 0.4},
		Periods: DefaultPeriodRanges(),
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.M < 1:
		return fmt.Errorf("taskgen: M=%d < 1", c.M)
	case c.K < 1:
		return fmt.Errorf("taskgen: K=%d < 1", c.K)
	case c.N.Lo < 1 || c.N.Hi < c.N.Lo:
		return fmt.Errorf("taskgen: invalid N range [%d,%d]", c.N.Lo, c.N.Hi)
	case c.NSU <= 0:
		return fmt.Errorf("taskgen: NSU=%v <= 0", c.NSU)
	case c.IFC.Lo < 0 || c.IFC.Hi < c.IFC.Lo:
		return fmt.Errorf("taskgen: invalid IFC range [%v,%v]", c.IFC.Lo, c.IFC.Hi)
	case len(c.Periods) == 0:
		return fmt.Errorf("taskgen: no period ranges")
	}
	for _, p := range c.Periods {
		if p.Lo <= 0 || p.Hi < p.Lo {
			return fmt.Errorf("taskgen: invalid period range [%v,%v]", p.Lo, p.Hi)
		}
	}
	return nil
}

// Generate produces one task set from the config using the given
// random source. WCET vectors are capped so that no task's own-level
// utilization exceeds 1 (an unschedulable-by-construction task would
// make the whole set trivially infeasible for every heuristic and
// carry no information; the paper's parameters make such draws rare).
func Generate(cfg *Config, rng *rand.Rand) *mc.TaskSet {
	if err := cfg.Validate(); err != nil {
		//lint:ignore mclint/panicmsg Validate errors already carry the "taskgen: " prefix
		panic(err)
	}
	n := cfg.N.sample(rng)
	uBase := cfg.NSU * float64(cfg.M) / float64(n)
	ts := mc.NewTaskSetCap(n)
	for i := 0; i < n; i++ {
		ts.Tasks = append(ts.Tasks, genTask(cfg, rng, i+1, uBase, nil))
	}
	return ts
}

// GenerateIndexed produces the idx-th task set of a replicated
// experiment rooted at baseSeed. Each index gets an independent,
// deterministic stream, so replication can be parallelized while
// remaining reproducible.
func GenerateIndexed(cfg *Config, baseSeed int64, idx int) *mc.TaskSet {
	rng := rand.New(newSplitmix(mix(baseSeed, int64(idx))))
	return Generate(cfg, rng)
}

// splitmix is the SplitMix64 random source behind GenerateIndexed and
// Generator (rand.Source64). Seeding is one word where the stdlib
// source refills a 607-word table per Seed — a cost that dominated
// per-set generation in the sweep hot loop, since every set of a
// replicated experiment reseeds for its independent stream.
// Generation stays fully deterministic: a (cfg, seed, index) triple
// identifies one task set, bit for bit, across serial, parallel and
// resumed sweeps.
type splitmix struct{ s uint64 }

func newSplitmix(seed int64) *splitmix { return &splitmix{s: uint64(seed)} }

// Seed implements rand.Source.
//
//mc:allocfree one store
func (s *splitmix) Seed(seed int64) { s.s = uint64(seed) }

// Uint64 implements rand.Source64 (the SplitMix64 finalizer).
//
//mc:allocfree mixing arithmetic
func (s *splitmix) Uint64() uint64 {
	s.s += 0x9E3779B97F4A7C15
	z := s.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
//
//mc:allocfree mixing arithmetic
func (s *splitmix) Int63() int64 { return int64(s.Uint64() >> 1) }

// float64 draws exactly the value rand.Rand.Float64 would draw from
// this source — float64(Int63())/2^63, resampling the (measure-zero)
// 1.0 — without the per-draw interface dispatch through rand.Rand.
// The generator's hot path draws several floats per task, and the
// dispatch was a visible slice of sweep generation time.
//
//mc:allocfree pure arithmetic
func (s *splitmix) float64() float64 {
	for {
		f := float64(s.Int63()) / (1 << 63)
		//lint:ignore mclint/floateq deliberately exact: replicates rand.Rand.Float64's resample-on-1.0 guard bit for bit
		if f != 1 {
			return f
		}
	}
}

// intn draws exactly the value rand.Rand.Intn would draw from this
// source for 0 < n < 2^31: the power-of-two mask or the rejection
// loop of Int31n, bit for bit.
//
//mc:allocfree pure arithmetic
func (s *splitmix) intn(n int) int {
	if n&(n-1) == 0 { // power of two: mask
		return int(int32(s.Int63()>>32) & int32(n-1))
	}
	max := int32((1 << 31) - 1 - (1<<31)%uint32(n))
	v := int32(s.Int63() >> 32)
	for v > max {
		v = int32(s.Int63() >> 32)
	}
	return int(v % int32(n))
}

// genTask draws one task, backing its WCET vector with w (which must
// have capacity for cfg.K entries when taken from an arena, or be
// nil to allocate fresh storage).
func genTask(cfg *Config, rng *rand.Rand, id int, uBase float64, w []float64) mc.Task {
	pr := cfg.Periods[rng.Intn(len(cfg.Periods))]
	p := pr.sample(rng)
	c1 := (0.2 + rng.Float64()*1.6) * p * uBase
	crit := 1 + rng.Intn(cfg.K)
	if cfg.CritOf != nil {
		crit = cfg.CritOf(id-1, rng)
	}
	ifc := cfg.IFC.sample(rng)
	if w == nil {
		w = make([]float64, crit)
	} else {
		w = w[:crit]
	}
	c := c1
	for k := 0; k < crit; k++ {
		w[k] = c
		c *= 1 + ifc
	}
	// Cap the own-level utilization at 1 by truncating the WCET
	// growth; the level-1 value is preserved so NSU stays exact.
	for k := 1; k < crit; k++ {
		if w[k] > p {
			w[k] = p
		}
	}
	if w[0] > p {
		w[0] = p
		for k := 1; k < crit; k++ {
			w[k] = p
		}
	}
	if cfg.CritOf != nil {
		// Pinned criticalities come from an arbitrary test hook; keep
		// the validated constructor on that path.
		return mc.MustTaskSlab(id, "", p, w)
	}
	// The draws above enforce every Task invariant structurally:
	// positive period, positive geometrically non-decreasing WCETs,
	// own-level utilization capped at 1 by the period clamp.
	return mc.TaskSlabTrusted(id, p, w)
}

// Generator amortizes workload generation: it owns a reusable seeded
// random source, a task-slice buffer, and a WCET arena from which each
// task's vector is carved (mc.MustTaskSlab), so that steady-state
// generation performs no heap allocations. For a given (cfg, baseSeed,
// idx) it produces exactly the task set of GenerateIndexed, bit for
// bit — the experiment harness relies on this to keep parallel sweeps
// deterministic while reusing one Generator per worker.
//
// The returned task set and every task's WCET vector alias the
// generator's internal storage: they are valid only until the next
// Generate call. A Generator must not be shared between goroutines.
type Generator struct {
	src   *splitmix
	rng   *rand.Rand
	arena []float64
	ts    mc.TaskSet
}

// NewGenerator returns an empty generator; the seed is installed per
// Generate call.
func NewGenerator() *Generator {
	src := newSplitmix(1)
	return &Generator{src: src, rng: rand.New(src)}
}

// Generate produces the idx-th task set of the replicated experiment
// rooted at baseSeed, identical to GenerateIndexed(cfg, baseSeed, idx)
// but reusing all internal storage. See the type comment for the
// aliasing contract.
//
// Draws go through the source's direct float64/intn replicas of the
// rand.Rand algorithms — the same values in the same order, without
// per-draw dispatch — except under a CritOf hook, whose callback
// receives a *rand.Rand and therefore keeps the generic path.
func (g *Generator) Generate(cfg *Config, baseSeed int64, idx int) *mc.TaskSet {
	if err := cfg.Validate(); err != nil {
		//lint:ignore mclint/panicmsg Validate errors already carry the "taskgen: " prefix
		panic(err)
	}
	g.src.Seed(mix(baseSeed, int64(idx)))
	if cfg.CritOf != nil {
		n := cfg.N.sample(g.rng)
		uBase := cfg.NSU * float64(cfg.M) / float64(n)
		g.sizeFor(n, cfg.K)
		for i := 0; i < n; i++ {
			w := g.arena[i*cfg.K : i*cfg.K+cfg.K]
			g.ts.Tasks = append(g.ts.Tasks, genTask(cfg, g.rng, i+1, uBase, w))
		}
		return &g.ts
	}
	src := g.src
	n := cfg.N.Lo
	if cfg.N.Hi > cfg.N.Lo {
		n += src.intn(cfg.N.Hi - cfg.N.Lo + 1)
	}
	uBase := cfg.NSU * float64(cfg.M) / float64(n)
	g.sizeFor(n, cfg.K)
	for i := 0; i < n; i++ {
		w := g.arena[i*cfg.K : i*cfg.K+cfg.K]
		g.ts.Tasks = append(g.ts.Tasks, genTaskDirect(cfg, src, i+1, uBase, w))
	}
	return &g.ts
}

// sizeFor readies the arena and task buffer for n tasks of up to k
// levels.
//
//mc:allocfree amortized: reallocates only on growth
func (g *Generator) sizeFor(n, k int) {
	if need := n * k; cap(g.arena) < need {
		g.arena = make([]float64, need)
	}
	if cap(g.ts.Tasks) < n {
		g.ts.Tasks = make([]mc.Task, 0, n)
	}
	g.ts.Tasks = g.ts.Tasks[:0]
}

// genTaskDirect is genTask drawing straight from the splitmix source:
// the draw sequence — period-range pick, period, c(1) factor,
// criticality, IFC — replicates genTask's rand.Rand calls value for
// value, so Generator output stays bitwise GenerateIndexed's.
//
//mc:allocfree slab-backed task construction
func genTaskDirect(cfg *Config, src *splitmix, id int, uBase float64, w []float64) mc.Task {
	pr := cfg.Periods[src.intn(len(cfg.Periods))]
	p := pr.Lo + src.float64()*(pr.Hi-pr.Lo)
	c1 := (0.2 + src.float64()*1.6) * p * uBase
	crit := 1 + src.intn(cfg.K)
	ifc := cfg.IFC.Lo + src.float64()*(cfg.IFC.Hi-cfg.IFC.Lo)
	w = w[:crit]
	c := c1
	for k := 0; k < crit; k++ {
		w[k] = c
		c *= 1 + ifc
	}
	for k := 1; k < crit; k++ {
		if w[k] > p {
			w[k] = p
		}
	}
	if w[0] > p {
		w[0] = p
		for k := 1; k < crit; k++ {
			w[k] = p
		}
	}
	return mc.TaskSlabTrusted(id, p, w)
}

// mix combines a base seed and an index into a well-spread 63-bit
// seed (SplitMix64 finalizer).
func mix(seed, idx int64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(idx) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z &^ (1 << 63))
}
