package taskgen

import (
	"math"
	"testing"
)

func testCDFSource(t testing.TB) *CDFSource {
	t.Helper()
	util := MustCDF([]float64{0.2, 0.6, 0.9, 1}, []float64{0.01, 0.05, 0.2, 0.6})
	period := MustCDF([]float64{0.3, 0.7, 1}, []float64{10, 100, 1000})
	s, err := NewCDFSource(util, period, []float64{0.6, 1})
	if err != nil {
		t.Fatalf("NewCDFSource: %v", err)
	}
	return s
}

// TestNewCDFSourceValidation pins the exact rejection messages of the
// source-level checks layered on top of NewCDF.
func TestNewCDFSourceValidation(t *testing.T) {
	util := MustCDF([]float64{1}, []float64{0.5})
	period := MustCDF([]float64{1}, []float64{100})
	zeroMin := MustCDF([]float64{0.5, 1}, []float64{0, 100})
	negUtil := MustCDF([]float64{0.5, 1}, []float64{-1, 0.5})
	zeroUtil := MustCDF([]float64{1}, []float64{0})
	cases := []struct {
		name    string
		util    *CDF
		period  *CDF
		critMix []float64
		want    string
	}{
		{"nil util", nil, period, []float64{1}, "taskgen: cdf source: nil utilization CDF"},
		{"nil period", util, nil, []float64{1}, "taskgen: cdf source: nil period CDF"},
		{"zero period", util, zeroMin, []float64{1}, "taskgen: cdf source: period support must be positive, got min 0"},
		{"negative util", negUtil, period, []float64{1}, "taskgen: cdf source: utilization support must be non-negative, got min -1"},
		{"all-zero util", zeroUtil, period, []float64{1}, "taskgen: cdf source: utilization support must reach above 0, got max 0"},
		{"empty mix", util, period, nil, "taskgen: cdf source: empty criticality mix"},
		{"mix out of range", util, period, []float64{1.5}, "taskgen: cdf source: critMix[0] = 1.5 outside [0, 1]"},
		{"mix decreasing", util, period, []float64{0.8, 0.5, 1}, "taskgen: cdf source: critMix not non-decreasing: critMix[1] = 0.5 < critMix[0] = 0.8"},
		{"mix short of one", util, period, []float64{0.5, 0.9}, "taskgen: cdf source: last critMix entry must be 1, got 0.9"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewCDFSource(tc.util, tc.period, tc.critMix)
			if err == nil {
				t.Fatal("accepted invalid source configuration")
			}
			if err.Error() != tc.want {
				t.Fatalf("error message:\n got: %s\nwant: %s", err, tc.want)
			}
		})
	}
}

// TestCDFSourceDeterministic checks the TaskSource addressing contract:
// (cfg, baseSeed, idx) names one task universe bit for bit, independent
// of call order and of which source instance serves it.
func TestCDFSourceDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.M, cfg.K, cfg.NSU = 4, 2, 0.5
	cfg.N = IntRange{Lo: 20, Hi: 40}

	a := testCDFSource(t)
	b := testCDFSource(t)
	// Warm a with other indices so slab reuse is exercised.
	a.Generate(&cfg, 2016, 7)
	a.Generate(&cfg, 2016, 3)

	for _, idx := range []int{0, 3, 11} {
		got := a.Generate(&cfg, 2016, idx).Clone()
		want := b.Generate(&cfg, 2016, idx)
		if len(got.Tasks) != len(want.Tasks) {
			t.Fatalf("idx %d: %d vs %d tasks", idx, len(got.Tasks), len(want.Tasks))
		}
		for i := range got.Tasks {
			g, w := &got.Tasks[i], &want.Tasks[i]
			if g.Period != w.Period || g.Crit != w.Crit || len(g.WCET) != len(w.WCET) {
				t.Fatalf("idx %d task %d: %+v vs %+v", idx, i, g, w)
			}
			for k := range g.WCET {
				if g.WCET[k] != w.WCET[k] {
					t.Fatalf("idx %d task %d WCET[%d]: %v vs %v", idx, i, k, g.WCET[k], w.WCET[k])
				}
			}
		}
	}
}

// TestCDFSourceShape checks the protocol semantics: the aggregate
// level-1 utilization lands on NSU*M (when no task hits the cap), every
// period comes from the period support, criticalities honour the mix
// bounds, and WCET vectors are monotone and period-capped.
func TestCDFSourceShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.M, cfg.K, cfg.NSU = 4, 2, 0.5
	cfg.N = IntRange{Lo: 30, Hi: 60}

	s := testCDFSource(t)
	for idx := 0; idx < 20; idx++ {
		ts := s.Generate(&cfg, 1, idx)
		if err := ts.Validate(); err != nil {
			t.Fatalf("idx %d: invalid set: %v", idx, err)
		}
		if n := len(ts.Tasks); n < cfg.N.Lo || n > cfg.N.Hi {
			t.Fatalf("idx %d: n = %d outside [%d, %d]", idx, n, cfg.N.Lo, cfg.N.Hi)
		}
		sumU, capped := 0.0, false
		for i := range ts.Tasks {
			task := &ts.Tasks[i]
			if task.Period < 10 || task.Period > 1000 {
				t.Fatalf("idx %d task %d: period %v outside loaded support", idx, i, task.Period)
			}
			if task.Crit < 1 || task.Crit > cfg.K {
				t.Fatalf("idx %d task %d: crit %d outside [1, %d]", idx, i, task.Crit, cfg.K)
			}
			for k := 1; k < len(task.WCET); k++ {
				if task.WCET[k] < task.WCET[k-1] {
					t.Fatalf("idx %d task %d: WCET not monotone: %v", idx, i, task.WCET)
				}
			}
			if task.WCET[len(task.WCET)-1] > task.Period {
				t.Fatalf("idx %d task %d: WCET %v exceeds period %v", idx, i, task.WCET[len(task.WCET)-1], task.Period)
			}
			if task.WCET[0] >= task.Period {
				capped = true
			}
			sumU += task.WCET[0] / task.Period
		}
		if want := cfg.NSU * float64(cfg.M); !capped && math.Abs(sumU-want) > 1e-9 {
			t.Fatalf("idx %d: level-1 utilization %v, want %v", idx, sumU, want)
		}
	}
}

// TestCDFSourceZeroAllocs proves the slab contract: steady-state
// generation performs no heap allocations.
func TestCDFSourceZeroAllocs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.M, cfg.K, cfg.NSU = 4, 2, 0.5
	cfg.N = IntRange{Lo: 20, Hi: 40}
	s := testCDFSource(t)
	// Warm the slabs with the largest shape in play.
	for idx := 0; idx < 8; idx++ {
		s.Generate(&cfg, 9, idx)
	}
	avg := testing.AllocsPerRun(100, func() {
		s.Generate(&cfg, 9, 4)
	})
	if avg != 0 {
		t.Fatalf("CDFSource.Generate allocates %v per run, want 0", avg)
	}
}

// TestCDFSourceCritFold checks that a trace mix with more levels than
// cfg.K folds the excess levels into K instead of overflowing WCET
// vectors.
func TestCDFSourceCritFold(t *testing.T) {
	util := MustCDF([]float64{1}, []float64{0.1})
	period := MustCDF([]float64{1}, []float64{100})
	s, err := NewCDFSource(util, period, []float64{0.3, 0.6, 0.8, 1})
	if err != nil {
		t.Fatalf("NewCDFSource: %v", err)
	}
	cfg := DefaultConfig()
	cfg.M, cfg.K, cfg.NSU = 2, 2, 0.4
	cfg.N = IntRange{Lo: 50, Hi: 50}
	ts := s.Generate(&cfg, 5, 0)
	for i := range ts.Tasks {
		if c := ts.Tasks[i].Crit; c < 1 || c > 2 {
			t.Fatalf("task %d: crit %d not folded into [1, 2]", i, c)
		}
	}
}
