package taskgen

import (
	"fmt"
	"math"
)

// CDF is a validated empirical cumulative distribution function given
// as a quantile table: P(X <= Values[i]) = Probs[i]. Sampling inverts
// the table (inverse-transform sampling with linear interpolation
// between entries), so every sampled value lies inside the loaded
// support [Values[0], Values[len-1]] — the invariant FuzzCDFSource
// pins. The table is the pattern real-trace drivers load from CSV
// (chain length / inter-arrival / CV tables); this repo keeps the
// loading format to the caller and validates only the mathematics.
//
// A CDF is immutable after construction and safe for concurrent use.
type CDF struct {
	probs  []float64
	values []float64
}

// NewCDF validates a quantile table and returns the CDF over it. The
// table must be non-empty, every entry finite, probs strictly
// increasing within (0, 1] and ending at exactly 1, and values
// non-decreasing (a non-monotone quantile table is not a distribution).
// The slices are copied; the caller may reuse its storage.
func NewCDF(probs, values []float64) (*CDF, error) {
	if len(probs) == 0 || len(values) == 0 {
		return nil, fmt.Errorf("taskgen: cdf: empty quantile table")
	}
	if len(probs) != len(values) {
		return nil, fmt.Errorf("taskgen: cdf: %d probs vs %d values", len(probs), len(values))
	}
	for i, p := range probs {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			return nil, fmt.Errorf("taskgen: cdf: prob[%d] = %v is not finite", i, p)
		}
		if p <= 0 || p > 1 {
			return nil, fmt.Errorf("taskgen: cdf: prob[%d] = %v outside (0, 1]", i, p)
		}
		if i > 0 && p <= probs[i-1] {
			return nil, fmt.Errorf("taskgen: cdf: probs not strictly increasing: prob[%d] = %v <= prob[%d] = %v", i, p, i-1, probs[i-1])
		}
	}
	//lint:ignore mclint/floateq deliberately exact: a table not ending at exactly 1 leaves probability mass undefined
	if last := probs[len(probs)-1]; last != 1 {
		return nil, fmt.Errorf("taskgen: cdf: last prob must be 1, got %v", last)
	}
	for i, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("taskgen: cdf: value[%d] = %v is not finite", i, v)
		}
		if i > 0 && v < values[i-1] {
			return nil, fmt.Errorf("taskgen: cdf: non-monotone quantiles: value[%d] = %v < value[%d] = %v", i, v, i-1, values[i-1])
		}
	}
	return &CDF{
		probs:  append([]float64(nil), probs...),
		values: append([]float64(nil), values...),
	}, nil
}

// MustCDF is NewCDF panicking on error, for tables written in source.
func MustCDF(probs, values []float64) *CDF {
	c, err := NewCDF(probs, values)
	if err != nil {
		//lint:ignore mclint/panicmsg NewCDF errors already carry the "taskgen: " prefix
		panic(err)
	}
	return c
}

// Quantile returns the value at cumulative probability u, clamping u
// into [0, 1]: below the first table entry it interpolates from the
// support minimum Values[0] (the empirical distribution has no mass
// below it), between entries it interpolates linearly, and at u = 1 it
// returns the support maximum. The result always lies inside
// [Min(), Max()].
//
//mc:allocfree pure arithmetic over the immutable table
func (c *CDF) Quantile(u float64) float64 {
	if u <= 0 {
		return c.values[0]
	}
	if u >= 1 {
		return c.values[len(c.values)-1]
	}
	// Binary search for the first entry with probs[i] >= u. Hand-rolled
	// for the same reason as obs.Histogram.Observe: sort.Search's
	// closure would cost the hot path its zero-allocation guarantee.
	lo, hi := 0, len(c.probs)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.probs[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	p1, v1 := c.probs[lo], c.values[lo]
	p0, v0 := 0.0, c.values[0]
	if lo > 0 {
		p0, v0 = c.probs[lo-1], c.values[lo-1]
	}
	//lint:ignore mclint/floateq deliberately exact: guards the 0/0 interpolation, and table probs are strictly increasing otherwise
	if p1 == p0 {
		return v1
	}
	return v0 + (v1-v0)*(u-p0)/(p1-p0)
}

// Min returns the support minimum Values[0].
func (c *CDF) Min() float64 { return c.values[0] }

// Max returns the support maximum Values[len-1].
func (c *CDF) Max() float64 { return c.values[len(c.values)-1] }

// Len returns the number of table entries.
func (c *CDF) Len() int { return len(c.probs) }
