package taskgen

import (
	"sort"
	"testing"
)

// TestArrivalProcessValidate pins the configuration errors of both
// processes.
func TestArrivalProcessValidate(t *testing.T) {
	pos := MustCDF([]float64{1}, []float64{5})
	neg := MustCDF([]float64{0.5, 1}, []float64{-1, 5})
	cases := []struct {
		name string
		p    ArrivalProcess
		want string // "" means valid
	}{
		{"poisson ok", Poisson{Rate: 0.1, MeanLifetime: 100}, ""},
		{"poisson zero rate", Poisson{Rate: 0, MeanLifetime: 100}, "taskgen: poisson: rate 0 <= 0"},
		{"poisson bad lifetime", Poisson{Rate: 0.1, MeanLifetime: -2}, "taskgen: poisson: mean lifetime -2 <= 0"},
		{"trace ok", &TraceArrivals{InterArrival: pos, Lifetime: pos}, ""},
		{"trace nil gap", &TraceArrivals{Lifetime: pos}, "taskgen: trace arrivals: nil inter-arrival CDF"},
		{"trace nil lifetime", &TraceArrivals{InterArrival: pos}, "taskgen: trace arrivals: nil lifetime CDF"},
		{"trace negative gap", &TraceArrivals{InterArrival: neg, Lifetime: pos}, "taskgen: trace arrivals: inter-arrival support must be non-negative, got min -1"},
		{"trace negative lifetime", &TraceArrivals{InterArrival: pos, Lifetime: neg}, "taskgen: trace arrivals: lifetime support must be non-negative, got min -1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || err.Error() != tc.want {
				t.Fatalf("error:\n got: %v\nwant: %s", err, tc.want)
			}
		})
	}
}

// TestStreamDeterministic checks the addressing contract: (process, n,
// horizon, baseSeed, idx) names one event stream bit for bit, across
// builder instances and interleaved call orders, and distinct indices
// produce distinct streams.
func TestStreamDeterministic(t *testing.T) {
	p := Poisson{Rate: 0.05, MeanLifetime: 400}
	a, b := NewStreamBuilder(), NewStreamBuilder()
	a.Build(p, 64, 2000, 2016, 9) // perturb a's slab state

	for _, idx := range []int{0, 1, 17} {
		got := append([]Event(nil), a.Build(p, 64, 2000, 2016, idx)...)
		want := b.Build(p, 64, 2000, 2016, idx)
		if len(got) != len(want) {
			t.Fatalf("idx %d: %d vs %d events", idx, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("idx %d event %d: %+v vs %+v", idx, i, got[i], want[i])
			}
		}
	}

	s0 := append([]Event(nil), a.Build(p, 64, 2000, 2016, 0)...)
	s1 := a.Build(p, 64, 2000, 2016, 1)
	if len(s0) == len(s1) {
		same := true
		for i := range s0 {
			if s0[i] != s1[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("indices 0 and 1 produced identical streams")
		}
	}
}

// TestStreamInvariants checks the stream's structural contract: sorted
// by the documented order, every timestamp inside [0, horizon), each
// task arriving at most once, and departures only for tasks that
// arrived, strictly after their arrival.
func TestStreamInvariants(t *testing.T) {
	sb := NewStreamBuilder()
	byTime := eventsByTime(nil)
	for idx := 0; idx < 10; idx++ {
		ev := sb.Build(Poisson{Rate: 0.1, MeanLifetime: 50}, 100, 500, 7, idx)
		byTime = ev
		for i := 1; i < len(ev); i++ {
			if byTimeLess := (&byTime).Less(i, i-1); byTimeLess {
				t.Fatalf("idx %d: events %d,%d out of order: %+v then %+v", idx, i-1, i, ev[i-1], ev[i])
			}
		}
		arrived := map[int]float64{}
		departed := map[int]bool{}
		for _, e := range ev {
			if e.Time < 0 || e.Time >= 500 {
				t.Fatalf("idx %d: event time %v outside [0, horizon)", idx, e.Time)
			}
			if e.Arrive {
				if _, dup := arrived[e.Task]; dup {
					t.Fatalf("idx %d: task %d arrived twice", idx, e.Task)
				}
				arrived[e.Task] = e.Time
			} else {
				at, ok := arrived[e.Task]
				if !ok {
					t.Fatalf("idx %d: task %d departed before arriving", idx, e.Task)
				}
				if departed[e.Task] {
					t.Fatalf("idx %d: task %d departed twice", idx, e.Task)
				}
				if e.Time <= at {
					t.Fatalf("idx %d: task %d departed at %v, arrived at %v", idx, e.Task, e.Time, at)
				}
				departed[e.Task] = true
			}
		}
	}
}

// TestStreamTieBreak checks the documented equal-timestamp order
// directly on the sorter: departures first, then ascending task index.
func TestStreamTieBreak(t *testing.T) {
	ev := eventsByTime{
		{Time: 5, Task: 2, Arrive: true},
		{Time: 5, Task: 1, Arrive: false},
		{Time: 5, Task: 0, Arrive: true},
		{Time: 5, Task: 3, Arrive: false},
	}
	want := []Event{
		{Time: 5, Task: 1, Arrive: false},
		{Time: 5, Task: 3, Arrive: false},
		{Time: 5, Task: 0, Arrive: true},
		{Time: 5, Task: 2, Arrive: true},
	}
	sort.Sort(&ev)
	for i := range want {
		if ev[i] != want[i] {
			t.Fatalf("tie-break order: got %+v at %d, want %+v", ev[i], i, want[i])
		}
	}
}

// TestStreamZeroAllocs proves the builder's slab contract: steady-state
// stream construction performs no heap allocations.
func TestStreamZeroAllocs(t *testing.T) {
	sb := NewStreamBuilder()
	// Box the process into the interface once, as a scenario holding an
	// ArrivalProcess field does; per-call conversion would count as the
	// caller's allocation, not the builder's.
	var p ArrivalProcess = Poisson{Rate: 0.05, MeanLifetime: 400}
	for idx := 0; idx < 8; idx++ {
		sb.Build(p, 64, 2000, 3, idx)
	}
	avg := testing.AllocsPerRun(100, func() {
		sb.Build(p, 64, 2000, 3, 4)
	})
	if avg != 0 {
		t.Fatalf("StreamBuilder.Build allocates %v per run, want 0", avg)
	}
}

// TestStreamBadInputs checks that invalid processes and horizons are
// rejected by panic before any draw.
func TestStreamBadInputs(t *testing.T) {
	sb := NewStreamBuilder()
	mustPanic(t, "invalid process", func() { sb.Build(Poisson{}, 10, 100, 1, 0) })
	mustPanic(t, "zero horizon", func() { sb.Build(Poisson{Rate: 1, MeanLifetime: 1}, 10, 0, 1, 0) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: no panic", name)
		}
	}()
	fn()
}
