package taskgen

import (
	"fmt"

	"catpa/internal/mc"
)

// TaskSource produces the task universes a scenario evaluates: the
// idx-th call of a replicated experiment rooted at baseSeed must return
// the same set bit for bit, across serial, parallel and resumed runs.
// The returned set and every task's WCET vector may alias the source's
// internal storage — valid only until the next Generate call — and a
// TaskSource must not be shared between goroutines. *Generator (the
// Table-IV protocol of the paper) is the canonical implementation;
// CDFSource drives generation from empirical trace shapes instead.
type TaskSource interface {
	// Generate produces the idx-th task universe of the replicated
	// experiment rooted at baseSeed. cfg supplies the family parameters
	// every source honours (M, K, N, NSU, IFC); how the per-task
	// quantities are drawn is the source's own protocol.
	Generate(cfg *Config, baseSeed int64, idx int) *mc.TaskSet
}

// Compile-time proof that the Table-IV generator is a TaskSource.
var _ TaskSource = (*Generator)(nil)

// CDFSource generates task sets whose per-task utilization, period and
// criticality mix follow loaded empirical distributions instead of the
// paper's uniform Table-IV draws — the real-trace workload shape the
// related work (Lupu et al.) shows reorders partitioning heuristics.
//
//   - period: drawn from the Period CDF (support must be positive);
//   - utilization shape: drawn from the Util CDF, then the whole set is
//     scaled by one factor so the aggregate level-1 utilization hits
//     exactly NSU * M — the sweep axis keeps its meaning while the
//     relative shape (heavy tails and all) is the trace's;
//   - criticality: drawn from the CritMix table, CritMix[j-1] being the
//     cumulative probability of levels <= j (CritMix[K-1] == 1);
//   - WCET growth: geometric with a per-task IFC drawn uniformly from
//     cfg.IFC, capped at the period exactly like the Table-IV path.
//
// Like Generator, a CDFSource owns a reusable SplitMix64 stream, a
// task-slice buffer and a WCET arena, so steady-state generation
// performs no heap allocations, and (cfg, baseSeed, idx) addresses one
// task set bit for bit. Not safe for concurrent use.
type CDFSource struct {
	util    *CDF
	period  *CDF
	critMix []float64

	src   *splitmix
	arena []float64
	uraw  []float64
	ts    mc.TaskSet
}

// NewCDFSource validates the distributions and returns a source.
// critMix must have one cumulative probability per criticality level,
// non-decreasing and ending at exactly 1; the period support must be
// strictly positive and the utilization support non-negative.
func NewCDFSource(util, period *CDF, critMix []float64) (*CDFSource, error) {
	switch {
	case util == nil:
		return nil, fmt.Errorf("taskgen: cdf source: nil utilization CDF")
	case period == nil:
		return nil, fmt.Errorf("taskgen: cdf source: nil period CDF")
	case period.Min() <= 0:
		return nil, fmt.Errorf("taskgen: cdf source: period support must be positive, got min %v", period.Min())
	case util.Min() < 0:
		return nil, fmt.Errorf("taskgen: cdf source: utilization support must be non-negative, got min %v", util.Min())
	case util.Max() <= 0:
		return nil, fmt.Errorf("taskgen: cdf source: utilization support must reach above 0, got max %v", util.Max())
	case len(critMix) == 0:
		return nil, fmt.Errorf("taskgen: cdf source: empty criticality mix")
	}
	for j, p := range critMix {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("taskgen: cdf source: critMix[%d] = %v outside [0, 1]", j, p)
		}
		if j > 0 && p < critMix[j-1] {
			return nil, fmt.Errorf("taskgen: cdf source: critMix not non-decreasing: critMix[%d] = %v < critMix[%d] = %v", j, p, j-1, critMix[j-1])
		}
	}
	//lint:ignore mclint/floateq deliberately exact: a mix not ending at exactly 1 leaves probability mass undefined
	if last := critMix[len(critMix)-1]; last != 1 {
		return nil, fmt.Errorf("taskgen: cdf source: last critMix entry must be 1, got %v", last)
	}
	return &CDFSource{
		util:    util,
		period:  period,
		critMix: append([]float64(nil), critMix...),
		src:     newSplitmix(1),
	}, nil
}

// Generate implements TaskSource. The criticality-mix table is
// truncated at cfg.K: levels past it fold into K, so a dual-criticality
// sweep point can reuse a richer trace table.
func (s *CDFSource) Generate(cfg *Config, baseSeed int64, idx int) *mc.TaskSet {
	if err := cfg.Validate(); err != nil {
		//lint:ignore mclint/panicmsg Validate errors already carry the "taskgen: " prefix
		panic(err)
	}
	src := s.src
	src.Seed(mix(baseSeed, int64(idx)))
	n := cfg.N.Lo
	if cfg.N.Hi > cfg.N.Lo {
		n += src.intn(cfg.N.Hi - cfg.N.Lo + 1)
	}
	s.sizeFor(n, cfg.K)

	// Pass 1: draw the raw utilization shape and sum it, so pass 2 can
	// scale every task by the one factor that lands the aggregate
	// level-1 utilization on NSU * M (exactly, up to the same per-task
	// cap at utilization 1 the Table-IV generator applies).
	sumU := 0.0
	for i := 0; i < n; i++ {
		u := s.util.Quantile(src.float64())
		s.uraw[i] = u
		sumU += u
	}
	scale := 1.0
	if sumU > 0 {
		scale = cfg.NSU * float64(cfg.M) / sumU
	}

	for i := 0; i < n; i++ {
		p := s.period.Quantile(src.float64())
		crit := s.drawCrit(src, cfg.K)
		ifc := cfg.IFC.Lo + src.float64()*(cfg.IFC.Hi-cfg.IFC.Lo)
		w := s.arena[i*cfg.K : i*cfg.K+crit]
		c := s.uraw[i] * scale * p
		for k := 0; k < crit; k++ {
			w[k] = c
			c *= 1 + ifc
		}
		// Cap own-level utilization at 1 exactly like the Table-IV
		// generator: truncate WCET growth at the period, and clamp the
		// whole vector if even c(1) overflows.
		for k := 1; k < crit; k++ {
			if w[k] > p {
				w[k] = p
			}
		}
		if w[0] > p {
			for k := 0; k < crit; k++ {
				w[k] = p
			}
		}
		s.ts.Tasks = append(s.ts.Tasks, mc.TaskSlabTrusted(i+1, p, w))
	}
	return &s.ts
}

// drawCrit inverts the cumulative criticality mix, folding trace
// levels beyond k into k.
//
//mc:allocfree linear scan over a short table
func (s *CDFSource) drawCrit(src *splitmix, k int) int {
	u := src.float64()
	for j, p := range s.critMix {
		if u < p {
			if j+1 > k {
				return k
			}
			return j + 1
		}
	}
	// Unreachable: float64() < 1 and the last entry is exactly 1.
	return k
}

// sizeFor readies the slabs for n tasks of up to k levels.
//
//mc:allocfree amortized: reallocates only on growth
func (s *CDFSource) sizeFor(n, k int) {
	if need := n * k; cap(s.arena) < need {
		s.arena = make([]float64, need)
	}
	if cap(s.uraw) < n {
		s.uraw = make([]float64, n)
	}
	s.uraw = s.uraw[:n]
	if cap(s.ts.Tasks) < n {
		s.ts.Tasks = make([]mc.Task, 0, n)
	}
	s.ts.Tasks = s.ts.Tasks[:0]
}
