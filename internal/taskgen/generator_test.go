package taskgen_test

import (
	"testing"

	"catpa/internal/mc"
	"catpa/internal/taskgen"
)

// sameSet fails unless a and b contain bit-identical tasks.
func sameSet(t *testing.T, ctx string, a, b *mc.TaskSet) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: %d tasks vs %d", ctx, a.Len(), b.Len())
	}
	for i := range a.Tasks {
		ta, tb := &a.Tasks[i], &b.Tasks[i]
		if ta.ID != tb.ID || ta.Period != tb.Period || ta.Crit != tb.Crit || len(ta.WCET) != len(tb.WCET) {
			t.Fatalf("%s: task %d header (%d,%v,%d) vs (%d,%v,%d)",
				ctx, i, ta.ID, ta.Period, ta.Crit, tb.ID, tb.Period, tb.Crit)
		}
		for k := range ta.WCET {
			if ta.WCET[k] != tb.WCET[k] {
				t.Fatalf("%s: task %d WCET[%d] %v vs %v", ctx, i, k, ta.WCET[k], tb.WCET[k])
			}
		}
	}
}

// TestGeneratorMatchesGenerateIndexed asserts the reusable Generator
// regenerates exactly the task set of the one-shot GenerateIndexed for
// every (seed, idx), including when indices are revisited out of order
// after the internal arena has been resized by larger sets.
func TestGeneratorMatchesGenerateIndexed(t *testing.T) {
	gen := taskgen.NewGenerator()
	for _, k := range []int{2, 4, 6} {
		cfg := taskgen.DefaultConfig()
		cfg.K = k
		for _, seed := range []int64{1, 2016, 1 << 40} {
			for idx := 0; idx < 30; idx++ {
				want := taskgen.GenerateIndexed(&cfg, seed, idx)
				got := gen.Generate(&cfg, seed, idx)
				sameSet(t, "forward", want, got)
			}
			// Revisit earlier indices: the reseeded source must not
			// carry state across calls.
			for _, idx := range []int{17, 0, 29, 5} {
				want := taskgen.GenerateIndexed(&cfg, seed, idx)
				got := gen.Generate(&cfg, seed, idx)
				sameSet(t, "revisit", want, got)
			}
		}
	}
}

// TestGeneratorSteadyStateAllocs asserts the arena and task buffer are
// actually reused once warmed up.
func TestGeneratorSteadyStateAllocs(t *testing.T) {
	cfg := taskgen.DefaultConfig()
	gen := taskgen.NewGenerator()
	for idx := 0; idx < 50; idx++ { // warm up across the N range
		gen.Generate(&cfg, 7, idx)
	}
	allocs := testing.AllocsPerRun(100, func() {
		gen.Generate(&cfg, 7, 3)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Generate allocates %v times per call, want 0", allocs)
	}
}

// TestGeneratorValidates mirrors the legacy entry points' config check.
func TestGeneratorValidates(t *testing.T) {
	cfg := taskgen.DefaultConfig()
	cfg.NSU = -1
	gen := taskgen.NewGenerator()
	defer func() {
		if recover() == nil {
			t.Fatal("Generate with invalid config should panic")
		}
	}()
	gen.Generate(&cfg, 1, 0)
}
