package taskgen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.M = 0 },
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.N = IntRange{0, 10} },
		func(c *Config) { c.N = IntRange{10, 5} },
		func(c *Config) { c.NSU = 0 },
		func(c *Config) { c.IFC = Range{-0.1, 0.4} },
		func(c *Config) { c.IFC = Range{0.5, 0.4} },
		func(c *Config) { c.Periods = nil },
		func(c *Config) { c.Periods = []Range{{0, 10}} },
		func(c *Config) { c.Periods = []Range{{10, 5}} },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		ts := Generate(&cfg, rng)
		if err := ts.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if n := ts.Len(); n < cfg.N.Lo || n > cfg.N.Hi {
			t.Fatalf("trial %d: N=%d outside [%d,%d]", trial, n, cfg.N.Lo, cfg.N.Hi)
		}
		for i := range ts.Tasks {
			task := &ts.Tasks[i]
			if task.Crit < 1 || task.Crit > cfg.K {
				t.Fatalf("trial %d: crit %d outside [1,%d]", trial, task.Crit, cfg.K)
			}
			inRange := false
			for _, pr := range cfg.Periods {
				if pr.Contains(task.Period) {
					inRange = true
					break
				}
			}
			if !inRange {
				t.Fatalf("trial %d: period %v outside all ranges", trial, task.Period)
			}
			if task.MaxUtil() > 1+1e-9 {
				t.Fatalf("trial %d: own-level utilization %v > 1", trial, task.MaxUtil())
			}
		}
	}
}

// TestNSUAchieved: the mean normalized system utilization over many
// sets must approximate the configured NSU (the c1 multiplier is
// uniform on [0.2,1.8] with mean 1.0).
func TestNSUAchieved(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NSU = 0.6
	rng := rand.New(rand.NewSource(2))
	sum, sets := 0.0, 200
	for i := 0; i < sets; i++ {
		ts := Generate(&cfg, rng)
		sum += ts.RawUtil() / float64(cfg.M)
	}
	mean := sum / float64(sets)
	if math.Abs(mean-cfg.NSU) > 0.02 {
		t.Errorf("mean NSU = %v, want ~%v", mean, cfg.NSU)
	}
}

// TestIFCRatioRespected: with a fixed IFC, consecutive WCETs grow by
// exactly (1+IFC) unless capped at the period.
func TestIFCRatioRespected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IFC = Range{0.5, 0.5}
	rng := rand.New(rand.NewSource(3))
	ts := Generate(&cfg, rng)
	for i := range ts.Tasks {
		task := &ts.Tasks[i]
		for k := 1; k < task.Crit; k++ {
			capped := task.WCET[k] == task.Period
			ratio := task.WCET[k] / task.WCET[k-1]
			if !capped && math.Abs(ratio-1.5) > 1e-9 {
				t.Fatalf("task %d: WCET ratio %v, want 1.5", task.ID, ratio)
			}
		}
	}
}

func TestCritLevelsCoverRange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.K = 5
	rng := rand.New(rand.NewSource(4))
	seen := make(map[int]int)
	for i := 0; i < 20; i++ {
		ts := Generate(&cfg, rng)
		for j := range ts.Tasks {
			seen[ts.Tasks[j].Crit]++
		}
	}
	for k := 1; k <= 5; k++ {
		if seen[k] == 0 {
			t.Errorf("criticality level %d never drawn", k)
		}
	}
}

func TestCritOfOverride(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CritOf = func(i int, _ *rand.Rand) int { return 1 + i%2 }
	rng := rand.New(rand.NewSource(5))
	ts := Generate(&cfg, rng)
	for i := range ts.Tasks {
		want := 1 + i%2
		if ts.Tasks[i].Crit != want {
			t.Fatalf("task %d crit = %d, want %d", i, ts.Tasks[i].Crit, want)
		}
	}
}

// TestGenerateIndexedDeterministic: the same (seed, idx) pair always
// yields the same set; different indices yield different sets.
func TestGenerateIndexedDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a := GenerateIndexed(&cfg, 77, 3)
	b := GenerateIndexed(&cfg, 77, 3)
	if a.Len() != b.Len() {
		t.Fatal("same (seed,idx) produced different N")
	}
	for i := range a.Tasks {
		if a.Tasks[i].Period != b.Tasks[i].Period || a.Tasks[i].WCET[0] != b.Tasks[i].WCET[0] {
			t.Fatal("same (seed,idx) produced different tasks")
		}
	}
	c := GenerateIndexed(&cfg, 77, 4)
	same := a.Len() == c.Len()
	if same {
		for i := range a.Tasks {
			if a.Tasks[i].Period != c.Tasks[i].Period {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different indices produced identical sets")
	}
}

// TestMixSpreads: the seed mixer must be injective-ish over small
// inputs (no collisions in a modest window) and never negative.
func TestMixSpreads(t *testing.T) {
	seen := make(map[int64]bool)
	for seed := int64(0); seed < 10; seed++ {
		for idx := int64(0); idx < 1000; idx++ {
			v := mix(seed, idx)
			if v < 0 {
				t.Fatalf("mix(%d,%d) = %d < 0", seed, idx, v)
			}
			if seen[v] {
				t.Fatalf("mix collision at (%d,%d)", seed, idx)
			}
			seen[v] = true
		}
	}
}

// TestGeneratedSetsAreUsable: property — every generated set validates
// and has MaxCrit <= K.
func TestGeneratedSetsAreUsable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = IntRange{5, 30}
	f := func(seed int64) bool {
		ts := GenerateIndexed(&cfg, seed, 0)
		return ts.Validate() == nil && ts.MaxCrit() <= cfg.K
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratePanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.M = 0
	Generate(&cfg, rand.New(rand.NewSource(1)))
}

func TestIntRangeDegenerate(t *testing.T) {
	r := IntRange{7, 7}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5; i++ {
		if got := r.sample(rng); got != 7 {
			t.Fatalf("sample = %d, want 7", got)
		}
	}
}
