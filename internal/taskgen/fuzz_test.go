package taskgen

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"catpa/internal/mc"
)

// FuzzGenerate drives the generator across its whole parameter space
// and checks the guarantees the rest of the pipeline relies on:
//
//   - every generated set passes mc.TaskSet.Validate (positive
//     non-decreasing WCET vectors, per-task own-level utilization <= 1);
//   - N, criticality levels and periods land inside the configured
//     ranges;
//   - per-task level-1 utilizations respect the [0.2, 1.8] * u_base
//     band of Table IV (after the cap at 1), and so the aggregate
//     level-1 utilization lands within the band implied by the
//     requested NSU;
//   - (seed, index)-addressed generation is deterministic.
func FuzzGenerate(f *testing.F) {
	// The paper's default point (M=8, K=4, NSU=0.6, IFC=0.4).
	f.Add(int64(1), uint8(8), uint8(4), uint8(40), uint8(160), uint16(600), uint8(40), uint8(0))
	// Degenerate single-core, single-level, single-task family.
	f.Add(int64(42), uint8(1), uint8(1), uint8(1), uint8(0), uint16(100), uint8(0), uint8(0))
	// Overload: NSU close to the cap with a wide IFC range.
	f.Add(int64(7), uint8(4), uint8(5), uint8(10), uint8(20), uint16(1900), uint8(150), uint8(99))
	f.Fuzz(func(t *testing.T, seed int64, mB, kB, nLoB, nSpanB uint8, nsuPm uint16, ifcLoB, ifcSpanB uint8) {
		cfg := Config{
			M:       1 + int(mB%16),
			K:       1 + int(kB%8),
			N:       IntRange{Lo: 1 + int(nLoB%200)},
			NSU:     float64(1+nsuPm%2000) / 1000, // (0, 2]
			IFC:     Range{Lo: float64(ifcLoB%200) / 100},
			Periods: DefaultPeriodRanges(),
		}
		cfg.N.Hi = cfg.N.Lo + int(nSpanB%100)
		cfg.IFC.Hi = cfg.IFC.Lo + float64(ifcSpanB%100)/100
		if err := cfg.Validate(); err != nil {
			t.Fatalf("constructed config does not validate: %v", err)
		}

		ts := Generate(&cfg, rand.New(rand.NewSource(seed)))
		if err := ts.Validate(); err != nil {
			t.Fatalf("generated set invalid: %v\nconfig: %+v", err, cfg)
		}
		n := ts.Len()
		if n < cfg.N.Lo || n > cfg.N.Hi {
			t.Fatalf("N = %d outside [%d, %d]", n, cfg.N.Lo, cfg.N.Hi)
		}

		// Per-task band of Table IV: c_i(1) in [0.2, 1.8] * p_i * u_base,
		// capped so the own-level utilization never exceeds 1.
		uBase := cfg.NSU * float64(cfg.M) / float64(n)
		loBand := math.Min(0.2*uBase, 1)
		hiBand := math.Min(1.8*uBase, 1)
		const tol = 1e-9
		sumU1 := 0.0
		for i := range ts.Tasks {
			task := &ts.Tasks[i]
			if task.Crit < 1 || task.Crit > cfg.K {
				t.Fatalf("task %d criticality %d outside [1, %d]", task.ID, task.Crit, cfg.K)
			}
			inRange := false
			for _, pr := range cfg.Periods {
				if pr.Contains(task.Period) {
					inRange = true
					break
				}
			}
			if !inRange {
				t.Fatalf("task %d period %v outside every configured range", task.ID, task.Period)
			}
			for k := 1; k < task.Crit; k++ {
				if task.WCET[k] < task.WCET[k-1] {
					t.Fatalf("task %d WCET not monotone: %v", task.ID, task.WCET)
				}
			}
			if mu := task.MaxUtil(); mu > 1+tol {
				t.Fatalf("task %d own-level utilization %v > 1", task.ID, mu)
			}
			u1 := task.Util(1)
			if u1 < loBand-tol || u1 > hiBand+tol {
				t.Fatalf("task %d u(1) = %v outside band [%v, %v] (u_base = %v)",
					task.ID, u1, loBand, hiBand, uBase)
			}
			sumU1 += u1
		}

		// Aggregate level-1 utilization: each u_i(1) is in the band, so
		// the total must land within n * band of the requested NSU * M
		// target (exact equality is not promised — the draw is uniform
		// per task, not normalized).
		if sumU1 < float64(n)*loBand-1e-6 || sumU1 > float64(n)*hiBand+1e-6 {
			t.Fatalf("aggregate u(1) = %v outside [%v, %v] for NSU = %v, M = %d, n = %d",
				sumU1, float64(n)*loBand, float64(n)*hiBand, cfg.NSU, cfg.M, n)
		}

		// Determinism: the same (seed, index) pair yields the same set,
		// byte for byte.
		a := GenerateIndexed(&cfg, seed, 3)
		b := GenerateIndexed(&cfg, seed, 3)
		if !reflect.DeepEqual(a, b) {
			t.Fatal("GenerateIndexed is not deterministic for identical (seed, index)")
		}
		// And sequential IDs are assigned 1..n.
		for i := range ts.Tasks {
			if ts.Tasks[i].ID != i+1 {
				t.Fatalf("task at index %d has ID %d, want %d", i, ts.Tasks[i].ID, i+1)
			}
		}
		_ = mc.MatrixOf(ts, cfg.K) // must not panic: all levels fit K
	})
}
