package taskgen

import (
	"math"
	"sort"
	"testing"
)

// TestNewCDFValidation pins the exact error message of every rejected
// table shape: these strings are the API surface a trace-loading CLI
// would surface to users, so they are part of the contract.
func TestNewCDFValidation(t *testing.T) {
	cases := []struct {
		name   string
		probs  []float64
		values []float64
		want   string // "" means valid
	}{
		{"valid", []float64{0.5, 1}, []float64{1, 2}, ""},
		{"valid single", []float64{1}, []float64{7}, ""},
		{"valid flat values", []float64{0.25, 0.5, 1}, []float64{3, 3, 3}, ""},
		{"empty", nil, nil, "taskgen: cdf: empty quantile table"},
		{"length mismatch", []float64{0.5, 1}, []float64{1}, "taskgen: cdf: 2 probs vs 1 values"},
		{"nan prob", []float64{math.NaN(), 1}, []float64{1, 2}, "taskgen: cdf: prob[0] = NaN is not finite"},
		{"inf value", []float64{0.5, 1}, []float64{1, math.Inf(1)}, "taskgen: cdf: value[1] = +Inf is not finite"},
		{"nan value", []float64{0.5, 1}, []float64{math.NaN(), 2}, "taskgen: cdf: value[0] = NaN is not finite"},
		{"prob zero", []float64{0, 1}, []float64{1, 2}, "taskgen: cdf: prob[0] = 0 outside (0, 1]"},
		{"prob above one", []float64{0.5, 1.5}, []float64{1, 2}, "taskgen: cdf: prob[1] = 1.5 outside (0, 1]"},
		{"probs not increasing", []float64{0.5, 0.5, 1}, []float64{1, 2, 3}, "taskgen: cdf: probs not strictly increasing: prob[1] = 0.5 <= prob[0] = 0.5"},
		{"last prob short", []float64{0.5, 0.9}, []float64{1, 2}, "taskgen: cdf: last prob must be 1, got 0.9"},
		{"non-monotone quantiles", []float64{0.5, 1}, []float64{2, 1}, "taskgen: cdf: non-monotone quantiles: value[1] = 1 < value[0] = 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := NewCDF(tc.probs, tc.values)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if c == nil {
					t.Fatal("valid table returned nil CDF")
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted invalid table %v / %v", tc.probs, tc.values)
			}
			if err.Error() != tc.want {
				t.Fatalf("error message:\n got: %s\nwant: %s", err, tc.want)
			}
		})
	}
}

// TestCDFQuantile checks the inverse-transform mathematics: exact table
// hits, linear interpolation between entries, and clamping at the
// support edges.
func TestCDFQuantile(t *testing.T) {
	c := MustCDF([]float64{0.25, 0.5, 1}, []float64{10, 20, 40})
	cases := []struct{ u, want float64 }{
		{-1, 10}, {0, 10}, {0.25, 10}, {0.5, 20}, {1, 40},
		{0.125, 10}, // below the first entry: flat at the support minimum
		{0.375, 15}, // halfway between the first two entries
		{0.75, 30},  // halfway up the last segment
		{1.5, 40},   // clamped above
	}
	for _, tc := range cases {
		if got := c.Quantile(tc.u); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.u, got, tc.want)
		}
	}
	if c.Min() != 10 || c.Max() != 40 || c.Len() != 3 {
		t.Errorf("Min/Max/Len = %v/%v/%d, want 10/40/3", c.Min(), c.Max(), c.Len())
	}
}

// TestCDFQuantileMonotone checks that the quantile function is
// non-decreasing over a dense u grid (the property inverse-transform
// sampling needs).
func TestCDFQuantileMonotone(t *testing.T) {
	c := MustCDF([]float64{0.1, 0.2, 0.7, 1}, []float64{-5, -5, 3, 100})
	prev := math.Inf(-1)
	for i := 0; i <= 1000; i++ {
		u := float64(i) / 1000
		v := c.Quantile(u)
		if v < prev {
			t.Fatalf("Quantile not monotone at u=%v: %v < %v", u, v, prev)
		}
		prev = v
	}
}

// FuzzCDFSource is the support gate of the empirical sampling path: a
// CDF built from arbitrary fuzzed tables must keep every sampled value
// inside the loaded support [Min, Max], and a CDFSource driven by such
// tables must keep every drawn period inside its period support. This
// is the invariant that makes trace-shaped generation safe: no fuzzed
// table can make the sampler extrapolate outside the data it was given.
func FuzzCDFSource(f *testing.F) {
	f.Add(int64(1), 0.3, 10.0, 0.7, 50.0, 1.0, 200.0)
	f.Add(int64(99), 0.01, 0.5, 0.02, 0.5, 0.5, 1e6)
	f.Add(int64(-7), 1.0, 42.0, 2.0, 42.0, 3.0, 42.0)
	f.Fuzz(func(t *testing.T, seed int64, p1, v1, p2, v2, p3, v3 float64) {
		probs := []float64{p1, p2, p3}
		values := []float64{v1, v2, v3}
		// Repair the fuzzed table into a candidate: sort both columns,
		// then let NewCDF decide. Tables it rejects are out of scope —
		// the gate is about what validated tables can produce.
		sort.Float64s(probs)
		sort.Float64s(values)
		c, err := NewCDF(probs, values)
		if err != nil {
			t.Skip()
		}
		lo, hi := c.Min(), c.Max()
		src := newSplitmix(seed)
		for i := 0; i < 500; i++ {
			v := c.Quantile(src.float64())
			if v < lo || v > hi {
				t.Fatalf("Quantile left the support: %v outside [%v, %v] (table %v / %v)", v, lo, hi, probs, values)
			}
		}

		// The same gate through a full CDFSource, when the support can
		// serve as periods (positive).
		if lo <= 0 {
			return
		}
		srcCfg := DefaultConfig()
		srcCfg.N = IntRange{Lo: 8, Hi: 16}
		cs, err := NewCDFSource(c, c, []float64{0.5, 1})
		if err != nil {
			t.Fatalf("valid CDFs rejected by NewCDFSource: %v", err)
		}
		srcCfg.K = 2
		ts := cs.Generate(&srcCfg, seed, 0)
		for i := range ts.Tasks {
			p := ts.Tasks[i].Period
			if p < lo || p > hi {
				t.Fatalf("task %d period %v outside loaded support [%v, %v]", i, p, lo, hi)
			}
		}
		if err := ts.Validate(); err != nil {
			t.Fatalf("CDF-generated set invalid: %v", err)
		}
	})
}
