package taskgen

import (
	"fmt"
	"math/rand"
	"sort"
)

// Event is one entry of an online scenario's merged event stream: task
// Task (an index into the replication's task universe) arrives or
// departs at scenario time Time.
type Event struct {
	// Time is the event timestamp in scenario time units (the same
	// units as task periods).
	Time float64
	// Task indexes the replication's task universe.
	Task int
	// Arrive is true for an arrival, false for a departure.
	Arrive bool
}

// ArrivalProcess draws the timing of an online workload: for each
// successive arrival, the gap since the previous arrival and the
// lifetime the arriving task stays in the system. Implementations must
// be deterministic functions of the rng stream and safe to share
// between StreamBuilders (they hold no draw state).
type ArrivalProcess interface {
	// Next draws the inter-arrival gap to this arrival and its
	// lifetime. Both must be non-negative.
	Next(rng *rand.Rand) (gap, lifetime float64)
	// Validate reports a configuration error, if any.
	Validate() error
}

// Poisson is the memoryless arrival process: exponential inter-arrival
// gaps with the given rate and exponential lifetimes with the given
// mean, the M/M/∞-style open-loop workload of queueing models. By
// Little's law the standing occupancy targets Rate * MeanLifetime
// tasks (capped by the universe size).
type Poisson struct {
	// Rate is the arrival intensity (arrivals per time unit).
	Rate float64
	// MeanLifetime is the expected time an admitted task stays.
	MeanLifetime float64
}

// Next implements ArrivalProcess.
//
//mc:allocfree two exponential draws
func (p Poisson) Next(rng *rand.Rand) (float64, float64) {
	return rng.ExpFloat64() / p.Rate, rng.ExpFloat64() * p.MeanLifetime
}

// Validate implements ArrivalProcess.
func (p Poisson) Validate() error {
	if p.Rate <= 0 {
		return fmt.Errorf("taskgen: poisson: rate %v <= 0", p.Rate)
	}
	if p.MeanLifetime <= 0 {
		return fmt.Errorf("taskgen: poisson: mean lifetime %v <= 0", p.MeanLifetime)
	}
	return nil
}

// TraceArrivals draws inter-arrival gaps and lifetimes from loaded
// empirical CDFs — the trace-shaped counterpart of Poisson, so bursty
// or heavy-tailed real-world arrival patterns replay deterministically.
type TraceArrivals struct {
	// InterArrival is the gap distribution; support must be
	// non-negative.
	InterArrival *CDF
	// Lifetime is the sojourn-time distribution; support must be
	// non-negative.
	Lifetime *CDF
}

// Next implements ArrivalProcess.
//
//mc:allocfree two quantile lookups
func (t *TraceArrivals) Next(rng *rand.Rand) (float64, float64) {
	return t.InterArrival.Quantile(rng.Float64()), t.Lifetime.Quantile(rng.Float64())
}

// Validate implements ArrivalProcess.
func (t *TraceArrivals) Validate() error {
	switch {
	case t.InterArrival == nil:
		return fmt.Errorf("taskgen: trace arrivals: nil inter-arrival CDF")
	case t.Lifetime == nil:
		return fmt.Errorf("taskgen: trace arrivals: nil lifetime CDF")
	case t.InterArrival.Min() < 0:
		return fmt.Errorf("taskgen: trace arrivals: inter-arrival support must be non-negative, got min %v", t.InterArrival.Min())
	case t.Lifetime.Min() < 0:
		return fmt.Errorf("taskgen: trace arrivals: lifetime support must be non-negative, got min %v", t.Lifetime.Min())
	}
	return nil
}

// arrivalSalt decorrelates the event-stream draw sequence from the
// task-universe generation: both are addressed by (baseSeed, idx), and
// without the salt the stream would replay the universe's draws.
const arrivalSalt = 0x6A09E667F3BCC909

// StreamBuilder amortizes event-stream construction: it owns a seeded
// source and a reusable event slab, so building the stream of one
// replication performs no heap allocations in the steady state. Like
// Generator, a StreamBuilder must not be shared between goroutines,
// and the returned slice aliases internal storage valid until the next
// Build call.
type StreamBuilder struct {
	src    *splitmix
	rng    *rand.Rand
	events []Event
}

// NewStreamBuilder returns an empty builder; the seed is installed per
// Build call.
func NewStreamBuilder() *StreamBuilder {
	src := newSplitmix(1)
	return &StreamBuilder{src: src, rng: rand.New(src)}
}

// Build produces the merged arrival/departure event stream of the
// idx-th replication rooted at baseSeed: task i of the universe is the
// i-th arrival (gaps and lifetimes drawn from p), arrivals past the
// horizon are dropped along with the rest of the universe, and a
// departure past the horizon is simply never emitted (the task stays
// admitted to the end). The stream is sorted by time with a
// deterministic tie-break — departures before arrivals, then by task
// index — so replaying it is reproducible across worker counts, runs
// and machines; (p, n, horizon, baseSeed, idx) addresses one stream
// bit for bit.
//
//mc:deterministic the event stream is replayed into checkpointed aggregates and golden CSVs
func (b *StreamBuilder) Build(p ArrivalProcess, n int, horizon float64, baseSeed int64, idx int) []Event {
	if err := p.Validate(); err != nil {
		//lint:ignore mclint/panicmsg Validate errors already carry the "taskgen: " prefix
		panic(err)
	}
	if horizon <= 0 {
		panic(fmt.Sprintf("taskgen: stream: horizon %v <= 0", horizon))
	}
	b.src.Seed(mix(baseSeed, int64(idx)) ^ arrivalSalt)
	if cap(b.events) < 2*n {
		b.events = make([]Event, 0, 2*n)
	}
	b.events = b.events[:0]
	t := 0.0
	for i := 0; i < n; i++ {
		gap, life := p.Next(b.rng)
		t += gap
		if t >= horizon {
			break
		}
		b.events = append(b.events, Event{Time: t, Task: i, Arrive: true})
		if dep := t + life; dep < horizon {
			b.events = append(b.events, Event{Time: dep, Task: i, Arrive: false})
		}
	}
	// sort.Sort over a pointer receiver keeps the build allocation-free
	// (sort.Slice's closure would escape).
	sort.Sort((*eventsByTime)(&b.events))
	return b.events
}

// eventsByTime orders events by (Time, departures-first, Task): at
// equal timestamps a departure frees capacity before the arrival is
// screened, and the task index breaks the remaining ties so the order
// is total and deterministic.
type eventsByTime []Event

func (e *eventsByTime) Len() int { return len(*e) }

func (e *eventsByTime) Swap(i, j int) { (*e)[i], (*e)[j] = (*e)[j], (*e)[i] }

func (e *eventsByTime) Less(i, j int) bool {
	a, b := &(*e)[i], &(*e)[j]
	if a.Time < b.Time {
		return true
	}
	if b.Time < a.Time {
		return false
	}
	if a.Arrive != b.Arrive {
		return !a.Arrive // departures first
	}
	return a.Task < b.Task
}
