#!/usr/bin/env bash
# loadtest.sh — build mcserved + mcserveload, start the daemon with a
# deliberately small queue, offer load at several rates through the
# retrying client, and write the latency/shedding report to
# BENCH_PR8.json. Pure Go toolchain; no external load tools.
#
# Usage: scripts/loadtest.sh [duration-per-level] [out-file]
#   duration-per-level  default 5s
#   out-file            default BENCH_PR8.json

set -euo pipefail
cd "$(dirname "$0")/.."

DURATION="${1:-5s}"
OUT="${2:-BENCH_PR8.json}"
ADDR="localhost:8379"
BIN="$(mktemp -d)"
trap 'rm -rf "$BIN"' EXIT

echo "== build"
go build -o "$BIN/mcserved" ./cmd/mcserved
go build -o "$BIN/mcserveload" ./cmd/mcserveload

# A small queue and few workers so overload behavior (429 sheds and
# degraded screen verdicts) appears at rates a CI box can offer.
echo "== start mcserved on $ADDR"
"$BIN/mcserved" -addr "$ADDR" -queue 16 -workers 1 -timeout 250ms -cache -1 &
SERVED_PID=$!
trap 'kill "$SERVED_PID" 2>/dev/null || true; rm -rf "$BIN"' EXIT

for _ in $(seq 1 50); do
    if curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
curl -fsS "http://$ADDR/readyz" >/dev/null

echo "== offered load sweep"
"$BIN/mcserveload" \
    -url "http://$ADDR" \
    -pr 8 \
    -rps 100,2000 \
    -duration "$DURATION" \
    -conns 64 \
    -budget 500ms \
    -n 96 \
    -schemes "WFD,FFD,BFD,Hybrid,CA-TPA" \
    -require-full-frac 0.5 \
    -description "mcserved (queue=16, 1 worker, 250ms deadline, cache off) answering 5-scheme admissions on 96-task sets at moderate (100 rps) and overload (2000 rps) offered rates; half the corpus refuses degraded verdicts (require_full) and takes 429 backpressure instead" \
    > "$OUT"

echo "== graceful drain"
kill -INT "$SERVED_PID"
wait "$SERVED_PID"
echo "== wrote $OUT"
